// Quickstart: protect a flooded link with FLoc in ~40 lines.
//
// Builds a tiny network — two client domains, one of them hosting a botnet —
// sends TCP transfers and a CBR flood across a shared 10 Mbps link guarded
// by a FlocQueue, and prints who got how much bandwidth.
//
//   $ ./quickstart
#include <cstdio>

#include "topology/tree_scenario.h"

using namespace floc;

int main() {
  TreeScenarioConfig cfg;
  cfg.tree_degree = 2;
  cfg.tree_height = 1;            // two leaf domains
  cfg.legit_per_leaf = 4;         // four TCP users per domain
  cfg.attack_leaf_count = 1;      // one domain is bot-contaminated
  cfg.attack_per_leaf = 8;        // eight bots there
  cfg.attack = AttackType::kCbr;
  cfg.attack_rate = mbps(2.0);    // each bot floods at 2 Mbps (16 Mbps total)
  cfg.target_link = mbps(10);     // through a 10 Mbps link
  cfg.scheme = DefenseScheme::kFloc;
  cfg.duration = 30.0;
  cfg.measure_start = 10.0;
  cfg.measure_end = 30.0;

  TreeScenario scenario(cfg);
  scenario.run();

  const auto bw = scenario.class_bandwidth();
  std::printf("10 Mbps link under a 16 Mbps CBR flood, FLoc enabled:\n");
  std::printf("  legitimate flows, clean domain     : %6.2f Mbps\n",
              bw.legit_legit_bps / 1e6);
  std::printf("  legitimate flows, bot-infested dom.: %6.2f Mbps\n",
              bw.legit_attack_bps / 1e6);
  std::printf("  attack flows                       : %6.2f Mbps\n",
              bw.attack_bps / 1e6);
  std::printf("\nThe clean domain keeps its guaranteed half of the link; the\n"
              "flood is confined to (at most) the contaminated domain's share.\n");
  return 0;
}
