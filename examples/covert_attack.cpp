// Covert attack demo (Section IV-B.3 / VI-D).
//
// Each bot opens `k` low-rate, individually legitimate-looking connections
// to distinct destinations through the target link. With capability slots
// enabled (n_max), FLoc folds all of a source's flows into n_max accounting
// flows and the source is handled as a single high-rate attacker.
//
//   $ ./covert_attack [connections_per_bot] [n_max] [scale]
#include <cstdio>
#include <cstdlib>

#include "topology/tree_scenario.h"

using namespace floc;

namespace {

TreeScenario::ClassBandwidth run_once(int connections, int n_max,
                                      double scale) {
  TreeScenarioConfig cfg;
  cfg.attack = AttackType::kCovert;
  cfg.covert_connections = connections;
  cfg.attack_rate = mbps(0.2);  // per-connection: exactly a fair flow's rate
  cfg.scale = scale;
  cfg.scheme = DefenseScheme::kFloc;
  cfg.floc.n_max = n_max;
  cfg.duration = 50.0;
  cfg.measure_start = 15.0;
  cfg.measure_end = 50.0;
  TreeScenario scenario(cfg);
  scenario.run();
  return scenario.class_bandwidth();
}

}  // namespace

int main(int argc, char** argv) {
  const int connections = argc > 1 ? std::atoi(argv[1]) : 8;
  const int n_max = argc > 2 ? std::atoi(argv[2]) : 2;
  const double scale = argc > 3 ? std::atof(argv[3]) : 0.12;

  std::printf("covert attack: %d connections/bot at 0.2 Mbps each\n\n",
              connections);

  const auto off = run_once(connections, /*n_max=*/0, scale);
  const auto on = run_once(connections, n_max, scale);

  std::printf("%-34s %14s %14s\n", "", "slots off", "slots on");
  std::printf("%-34s %11.2f M %11.2f M\n", "legit flows (legit paths)",
              off.legit_legit_bps / 1e6, on.legit_legit_bps / 1e6);
  std::printf("%-34s %11.2f M %11.2f M\n", "legit flows (attack paths)",
              off.legit_attack_bps / 1e6, on.legit_attack_bps / 1e6);
  std::printf("%-34s %11.2f M %11.2f M\n", "covert attack flows",
              off.attack_bps / 1e6, on.attack_bps / 1e6);
  std::printf("\nWith n_max=%d each bot's %d \"legitimate\" flows collapse onto"
              " %d accounting\nflows, so the fan-out no longer multiplies the "
              "bot's bandwidth claim.\n",
              n_max, connections, n_max);
  return 0;
}
