// Internet-scale simulation demo (Section VII).
//
// Generates a skitter-like AS routing tree, places bots with CBL-like skew,
// and compares link-access policies at the 16,000 packet/tick target link.
//
//   $ ./internet_scale [preset] [attack_ases] [scale]
//     preset: f-root | h-root | jpn       (default f-root)
//     attack_ases: 100 (localized) or 300 (wide)   (default 100)
//     scale: population/capacity scale    (default 0.05)
#include <cstdio>
#include <cstdlib>

#include "inetsim/inet_experiment.h"

using namespace floc;

int main(int argc, char** argv) {
  InetExperimentConfig cfg;
  cfg.preset = argc > 1 ? preset_from_string(argv[1]) : SkitterPreset::kFRoot;
  cfg.attack_ases = argc > 2 ? std::atoi(argv[2]) : 100;
  cfg.scale = argc > 3 ? std::atof(argv[3]) : 0.05;
  cfg.ticks = 1500;

  const TopologyStats st = topology_stats(cfg);
  std::printf("topology %s: %d ASes, depth mean %.1f / max %d\n", st.preset.c_str(),
              st.ases, st.mean_depth, st.max_depth);
  std::printf("bots: %d attack ASes, top 17%% of them hold %.0f%% of bots, "
              "%d legit sources inside attack ASes\n\n",
              st.attack_ases, 100.0 * st.bot_concentration_top17pct,
              st.legit_in_attack_ases);

  std::printf("%-8s %18s %18s %12s %12s\n", "policy", "legit(legit-AS)%",
              "legit(attack-AS)%", "attack%", "paths");
  for (const auto& row : run_inet_experiment(cfg)) {
    std::printf("%-8s %17.1f%% %17.1f%% %11.1f%% %12d\n", row.label.c_str(),
                100.0 * row.results.legit_legit_frac,
                100.0 * row.results.legit_attack_frac,
                100.0 * row.results.attack_frac,
                row.results.aggregate_count);
  }
  std::printf("\nND floods out legitimate traffic; FF caps it near its fair\n"
              "share; FLoc (NA) localizes the attack to its domains, and\n"
              "aggregation (A-*) returns contaminated domains' bandwidth to\n"
              "legitimate ones.\n");
  return 0;
}
