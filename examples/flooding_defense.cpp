// Flooding-defense comparison on the paper's Fig. 5 topology.
//
// Runs the Section VI scenario (27 domains, 6 bot-contaminated) under a
// selectable attack and defense scheme and prints per-path and per-class
// bandwidth. Use it to reproduce any single cell of Figs. 6-8 interactively.
//
//   $ ./flooding_defense [scheme] [attack] [attack_mbps] [scale]
//     scheme: floc | pushback | red-pd | red | droptail   (default floc)
//     attack: cbr | shrew | tcp-population | covert | none (default cbr)
//     attack_mbps: per-bot rate (default 2.0)
//     scale: topology scale factor (default 0.15)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "topology/tree_scenario.h"

using namespace floc;

namespace {

AttackType attack_from(const std::string& s) {
  if (s == "cbr") return AttackType::kCbr;
  if (s == "shrew") return AttackType::kShrew;
  if (s == "tcp-population") return AttackType::kTcpPopulation;
  if (s == "covert") return AttackType::kCovert;
  if (s == "none") return AttackType::kNone;
  std::fprintf(stderr, "unknown attack '%s'\n", s.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  TreeScenarioConfig cfg;
  cfg.scheme = argc > 1 ? scheme_from_string(argv[1]) : DefenseScheme::kFloc;
  cfg.attack = argc > 2 ? attack_from(argv[2]) : AttackType::kCbr;
  cfg.attack_rate = mbps(argc > 3 ? std::atof(argv[3]) : 2.0);
  cfg.scale = argc > 4 ? std::atof(argv[4]) : 0.15;
  cfg.duration = 60.0;
  cfg.measure_start = 20.0;
  cfg.measure_end = 60.0;

  std::printf("Fig. 5 topology: %d paths, scheme=%s attack=%s rate=%.1f Mbps "
              "scale=%.2f\n\n",
              27, to_string(cfg.scheme), to_string(cfg.attack),
              cfg.attack_rate / 1e6, cfg.scale);

  TreeScenario scenario(cfg);
  scenario.run();

  const double fair_path =
      scenario.scaled_target_bw() / scenario.leaf_count();
  std::printf("%-6s %-8s %12s %10s\n", "path", "type", "Mbps", "vs fair");
  const auto per_path = scenario.per_path_bps();
  for (int leaf = 0; leaf < scenario.leaf_count(); ++leaf) {
    const std::string name = "L" + std::to_string(leaf);
    const auto it = per_path.find(name);
    const double bps = it == per_path.end() ? 0.0 : it->second;
    std::printf("%-6s %-8s %12.3f %9.2fx\n", name.c_str(),
                scenario.leaf_is_attack(leaf) ? "attack" : "legit",
                bps / 1e6, bps / fair_path);
  }

  const auto bw = scenario.class_bandwidth();
  std::printf("\nclass bandwidth (Mbps):\n");
  std::printf("  legit flows / legit paths  %8.3f\n", bw.legit_legit_bps / 1e6);
  std::printf("  legit flows / attack paths %8.3f\n", bw.legit_attack_bps / 1e6);
  std::printf("  attack flows               %8.3f\n", bw.attack_bps / 1e6);
  std::printf("  link capacity              %8.3f\n",
              scenario.scaled_target_bw() / 1e6);

  const Cdf cdf = scenario.legit_path_flow_cdf();
  std::printf("\nlegit-path per-flow bandwidth: p10=%.0f kbps  median=%.0f kbps"
              "  p90=%.0f kbps\n",
              cdf.quantile(0.1) / 1e3, cdf.quantile(0.5) / 1e3,
              cdf.quantile(0.9) / 1e3);
  return 0;
}
