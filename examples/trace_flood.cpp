// Packet-level tracing of a flooded link (ns-2 style).
//
// Wraps a FlocQueue in a TracedQueue, floods it through a tiny topology and
// prints (a) drop statistics per reason/flow class and (b) the tail of the
// drop-event trace — the raw material for debugging a defense policy.
//
//   $ ./trace_flood [max_lines]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "netsim/trace.h"
#include "topology/tree_scenario.h"

using namespace floc;

int main(int argc, char** argv) {
  const int max_lines = argc > 1 ? std::atoi(argv[1]) : 12;

  TreeScenarioConfig cfg;
  cfg.tree_degree = 2;
  cfg.tree_height = 1;
  cfg.legit_per_leaf = 3;
  cfg.attack_leaf_count = 1;
  cfg.attack_per_leaf = 6;
  cfg.attack = AttackType::kCbr;
  cfg.attack_rate = mbps(2.0);
  cfg.target_link = mbps(10);
  cfg.scheme = DefenseScheme::kFloc;
  cfg.duration = 20.0;
  cfg.measure_start = 5.0;
  cfg.measure_end = 20.0;
  TreeScenario scenario(cfg);

  // Interpose the recorder between the link and the FLoc queue: take the
  // scenario's queue out of the link and re-wrap it.
  TraceRecorder recorder(/*max_records=*/200000);
  recorder.set_filter(
      [](const TraceRecord& r) { return r.event == TraceEvent::kDrop; });
  {
    // The scenario owns the link; swap in the decorated queue before any
    // traffic flows.
    Link* link = scenario.target_link();
    auto inner = std::make_unique<FlocQueue>([&] {
      FlocConfig fc;
      fc.link_bandwidth = scenario.scaled_target_bw();
      fc.buffer_packets = 150;
      return fc;
    }());
    link->set_queue(std::make_unique<TracedQueue>(std::move(inner), &recorder));
  }

  scenario.run();

  std::printf("trace totals: %llu enqueued, %llu dequeued, %llu dropped\n\n",
              static_cast<unsigned long long>(recorder.count(TraceEvent::kEnqueue)),
              static_cast<unsigned long long>(recorder.count(TraceEvent::kDequeue)),
              static_cast<unsigned long long>(recorder.count(TraceEvent::kDrop)));

  // Drop breakdown by reason and flow class.
  std::map<std::string, int> by_reason;
  std::map<std::string, int> by_class;
  for (const auto& r : recorder.records()) {
    by_reason[to_string(r.reason)]++;
    const auto& label = scenario.monitor().label(r.flow);
    by_class[label.cls == FlowClass::kAttack ? "attack" : "legit"]++;
  }
  std::printf("drops by reason:\n");
  for (const auto& [reason, n] : by_reason)
    std::printf("  %-14s %8d\n", reason.c_str(), n);
  std::printf("drops by flow class:\n");
  for (const auto& [cls, n] : by_class)
    std::printf("  %-14s %8d\n", cls.c_str(), n);

  std::printf("\nlast %d drop events:\n", max_lines);
  const auto& recs = recorder.records();
  const std::size_t start =
      recs.size() > static_cast<std::size_t>(max_lines)
          ? recs.size() - static_cast<std::size_t>(max_lines)
          : 0;
  for (std::size_t i = start; i < recs.size(); ++i) {
    std::printf("  %s\n", TraceRecorder::format(recs[i]).c_str());
  }
  return 0;
}
