#include "telemetry/event_journal.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "telemetry/file_util.h"

namespace floc::telemetry {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kModeTransition: return "mode-transition";
    case EventKind::kAttackLatch: return "attack-latch";
    case EventKind::kAttackRelease: return "attack-release";
    case EventKind::kKeyRotation: return "key-rotation";
    case EventKind::kCapReissue: return "cap-reissue";
    case EventKind::kReboot: return "reboot";
    case EventKind::kRecoveryEnd: return "recovery-end";
    case EventKind::kDrop: return "drop";
    case EventKind::kFault: return "fault";
    case EventKind::kInvariantViolation: return "invariant-violation";
    case EventKind::kBlacklistAdd: return "blacklist-add";
    case EventKind::kBlacklistExpire: return "blacklist-expire";
    case EventKind::kBackoffEscalate: return "backoff-escalate";
    case EventKind::kStateEvict: return "state-evict";
    case EventKind::kOverloadEnter: return "overload-enter";
    case EventKind::kOverloadExit: return "overload-exit";
  }
  return "?";
}

bool from_string(const std::string& name, EventKind* out) {
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    const EventKind k = static_cast<EventKind>(i);
    if (name == to_string(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

EventJournal::EventJournal(std::size_t max_events)
    : max_events_(std::max<std::size_t>(1, max_events)) {
  std::fill(enabled_, enabled_ + kEventKindCount, true);
}

void EventJournal::record(TimeSec time, EventKind kind, std::string component,
                          std::string detail, std::uint64_t a, double value) {
  ++counts_[static_cast<std::size_t>(kind)];
  ++total_;
  const std::uint64_t seq = next_seq_++;
  if (!enabled_[static_cast<std::size_t>(kind)]) return;
  if (events_.size() >= max_events_) {
    events_.pop_front();
    ++overwritten_;
  }
  events_.push_back(DefenseEvent{time, seq, kind, std::move(component),
                                 std::move(detail), a, value});
}

std::vector<const DefenseEvent*> EventJournal::of_kind(EventKind k) const {
  std::vector<const DefenseEvent*> out;
  for (const DefenseEvent& e : events_) {
    if (e.kind == k) out.push_back(&e);
  }
  return out;
}

void EventJournal::clear() {
  events_.clear();
  std::fill(counts_, counts_ + kEventKindCount, 0);
  total_ = 0;
  next_seq_ = 0;
  overwritten_ = 0;
}

std::string EventJournal::format(const DefenseEvent& e) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%.6f %-19s [%s] %s (a=%llu value=%g)",
                e.time, to_string(e.kind), e.component.c_str(),
                e.detail.c_str(), static_cast<unsigned long long>(e.a),
                e.value);
  return buf;
}

std::string EventJournal::dump() const {
  std::string out;
  out.reserve(events_.size() * 64);
  for (const DefenseEvent& e : events_) {
    out += format(e);
    out += '\n';
  }
  return out;
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

}  // namespace

std::string EventJournal::to_json() const {
  std::string out;
  char buf[160];
  // Header first: a consumer can tell a complete journal (overwritten == 0)
  // from a clipped one without scanning the event array.
  std::snprintf(buf, sizeof(buf),
                "{\n\"total\": %llu, \"stored\": %zu, \"overwritten\": %llu,\n"
                "\"events\": [\n",
                static_cast<unsigned long long>(total_), events_.size(),
                static_cast<unsigned long long>(overwritten_));
  out += buf;
  bool first = true;
  for (const DefenseEvent& e : events_) {
    if (!first) out += ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "  {\"time\": %.9g, \"seq\": %llu, \"kind\": \"%s\", ",
                  e.time, static_cast<unsigned long long>(e.seq),
                  to_string(e.kind));
    out += buf;
    out += "\"component\": \"";
    append_json_escaped(out, e.component);
    out += "\", \"detail\": \"";
    append_json_escaped(out, e.detail);
    // JSON has no inf/nan literal; events can carry one (e.g. an infinite
    // rate ratio), and "%g" would emit it verbatim, corrupting the file.
    if (std::isfinite(e.value)) {
      std::snprintf(buf, sizeof(buf), "\", \"a\": %llu, \"value\": %.9g}",
                    static_cast<unsigned long long>(e.a), e.value);
    } else {
      std::snprintf(buf, sizeof(buf), "\", \"a\": %llu, \"value\": null}",
                    static_cast<unsigned long long>(e.a));
    }
    out += buf;
  }
  out += "\n]\n}\n";
  return out;
}

bool EventJournal::save(const std::string& path, std::string* err) const {
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  return write_text_file(path, json ? to_json() : dump(), err);
}

}  // namespace floc::telemetry
