#include "telemetry/perf_baseline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "telemetry/file_util.h"
#include "util/json.h"

namespace floc::telemetry {

PerfMetric* PerfReport::add(const std::string& name, double value,
                            const std::string& unit, double noise,
                            bool higher_is_better, bool gate) {
  PerfMetric m;
  m.name = name;
  m.value = value;
  m.unit = unit;
  m.noise = noise;
  m.higher_is_better = higher_is_better;
  m.gate = gate;
  metrics.push_back(std::move(m));
  return &metrics.back();
}

const PerfMetric* PerfReport::find(const std::string& name) const {
  for (const PerfMetric& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

namespace {

std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string PerfReport::to_json() const {
  std::string out = "{\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "  \"schema_version\": %d,\n",
                schema_version);
  out += buf;
  out += "  \"bench\": \"" + escaped(bench) + "\",\n";
  out += "  \"git\": \"" + escaped(git) + "\",\n";
  out += "  \"mode\": \"" + escaped(mode) + "\",\n";
  std::snprintf(buf, sizeof(buf), "  \"seed\": %llu,\n  \"repeats\": %d,\n",
                static_cast<unsigned long long>(seed), repeats);
  out += buf;
  out += "  \"metrics\": [\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const PerfMetric& m = metrics[i];
    out += "    {\"name\": \"" + escaped(m.name) + "\", ";
    std::snprintf(buf, sizeof(buf), "\"value\": %.9g, ", m.value);
    out += buf;
    out += "\"unit\": \"" + escaped(m.unit) + "\", ";
    std::snprintf(buf, sizeof(buf),
                  "\"noise\": %.6g, \"higher_is_better\": %s, \"gate\": %s}",
                  m.noise, m.higher_is_better ? "true" : "false",
                  m.gate ? "true" : "false");
    out += buf;
    out += i + 1 == metrics.size() ? "\n" : ",\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool PerfReport::parse(const std::string& text, PerfReport* out,
                       std::string* err) {
  json::Value root;
  if (!json::parse(text, &root, err)) return false;
  if (!root.is_object()) {
    if (err != nullptr) *err = "perf report: top level is not an object";
    return false;
  }
  const json::Value* version = root.get("schema_version");
  if (version == nullptr || !version->is_number()) {
    if (err != nullptr) *err = "perf report: missing schema_version";
    return false;
  }
  PerfReport r;
  r.schema_version = static_cast<int>(version->number);
  r.bench = root.string_or("bench", "");
  r.git = root.string_or("git", "");
  r.mode = root.string_or("mode", "");
  r.seed = static_cast<std::uint64_t>(root.number_or("seed", 0.0));
  r.repeats = static_cast<int>(root.number_or("repeats", 0.0));
  const json::Value* metrics = root.get("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    if (err != nullptr) *err = "perf report: missing metrics array";
    return false;
  }
  for (const json::Value& mv : metrics->items) {
    if (!mv.is_object() || mv.get("name") == nullptr ||
        !mv.get("name")->is_string() || mv.get("value") == nullptr ||
        !mv.get("value")->is_number()) {
      if (err != nullptr) {
        *err = "perf report: metric entries need a string name and a "
               "numeric value";
      }
      return false;
    }
    PerfMetric m;
    m.name = mv.get("name")->str;
    m.value = mv.get("value")->number;
    m.unit = mv.string_or("unit", "");
    m.noise = mv.number_or("noise", 0.0);
    m.higher_is_better = mv.bool_or("higher_is_better", false);
    m.gate = mv.bool_or("gate", false);
    r.metrics.push_back(std::move(m));
  }
  *out = std::move(r);
  return true;
}

bool PerfReport::save(const std::string& path, std::string* err) const {
  return write_text_file(path, to_json(), err);
}

bool PerfReport::load(const std::string& path, PerfReport* out,
                      std::string* err) {
  std::string text;
  if (!read_text_file(path, &text, err)) return false;
  if (parse(text, out, err)) return true;
  if (err != nullptr) *err = path + ": " + *err;
  return false;
}

const char* to_string(PerfVerdict v) {
  switch (v) {
    case PerfVerdict::kOk: return "ok";
    case PerfVerdict::kImproved: return "improved";
    case PerfVerdict::kRegressed: return "REGRESSED";
    case PerfVerdict::kMissing: return "MISSING";
    case PerfVerdict::kNew: return "new";
  }
  return "?";
}

PerfComparison compare_perf(const PerfReport& baseline,
                            const PerfReport& current,
                            const PerfCompareOptions& opts) {
  PerfComparison out;
  out.schema_mismatch = baseline.schema_version != current.schema_version;

  for (const PerfMetric& b : baseline.metrics) {
    PerfDelta d;
    d.name = b.name;
    d.unit = b.unit;
    d.baseline = b.value;
    d.gated = opts.gate_all || b.gate;
    const PerfMetric* c = current.find(b.name);
    if (c == nullptr) {
      d.verdict = PerfVerdict::kMissing;
      ++out.missing;
      out.deltas.push_back(std::move(d));
      continue;
    }
    d.current = c->value;
    d.tolerance =
        std::max(opts.min_rel, opts.noise_mult * (b.noise + c->noise));
    const double denom = std::abs(b.value);
    d.rel_delta = denom > 0.0 ? (c->value - b.value) / denom
                              : (c->value == b.value ? 0.0 : 1.0);
    // "Worse" is up for lower-is-better metrics, down for higher-is-better.
    const double worse = b.higher_is_better ? -d.rel_delta : d.rel_delta;
    if (worse > d.tolerance) {
      d.verdict = PerfVerdict::kRegressed;
      ++out.regressions;
      if (d.gated) ++out.gated_regressions;
    } else if (worse < -d.tolerance) {
      d.verdict = PerfVerdict::kImproved;
      ++out.improvements;
    }
    out.deltas.push_back(std::move(d));
  }
  for (const PerfMetric& c : current.metrics) {
    if (baseline.find(c.name) != nullptr) continue;
    PerfDelta d;
    d.name = c.name;
    d.unit = c.unit;
    d.current = c.value;
    d.gated = opts.gate_all || c.gate;
    d.verdict = PerfVerdict::kNew;
    out.deltas.push_back(std::move(d));
  }
  return out;
}

namespace {

std::string format_value(double v) {
  char buf[32];
  if (v == 0.0) {
    std::snprintf(buf, sizeof(buf), "0");
  } else if (std::abs(v) >= 1e6 || std::abs(v) < 1e-2) {
    std::snprintf(buf, sizeof(buf), "%.3e", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

}  // namespace

std::string PerfComparison::table() const {
  std::string out;
  char buf[224];
  std::snprintf(buf, sizeof(buf), "%-38s %12s %12s %8s %6s  %s\n", "metric",
                "baseline", "current", "delta%", "tol%", "verdict");
  out += buf;
  for (const PerfDelta& d : deltas) {
    std::string verdict = to_string(d.verdict);
    if (!d.gated && d.verdict != PerfVerdict::kOk &&
        d.verdict != PerfVerdict::kNew) {
      verdict = "[" + verdict + "]";  // informational: outside the gate
    }
    std::snprintf(buf, sizeof(buf), "%-38s %12s %12s %+7.1f%% %5.0f%%  %s\n",
                  d.name.c_str(), format_value(d.baseline).c_str(),
                  format_value(d.current).c_str(), 100.0 * d.rel_delta,
                  100.0 * d.tolerance, verdict.c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "\n%d gated regression(s), %d regression(s) total, "
                "%d improvement(s), %d missing%s\n",
                gated_regressions, regressions, improvements, missing,
                schema_mismatch ? ", SCHEMA VERSION MISMATCH" : "");
  out += buf;
  return out;
}

}  // namespace floc::telemetry
