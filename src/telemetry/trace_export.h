// Exporters for Tracer spans.
//
// chrome_trace_json() emits the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
// so any run can be opened in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing:
//   * "M" metadata events name the processes (pid = simulator node);
//   * overlapping span kinds — TCP segment lifetimes and queue residencies,
//     which interleave arbitrarily on one lane — become async "b"/"e" pairs
//     keyed by span id;
//   * link serialization spans become "X" complete events;
//   * every event carries the causal ids (trace/span/parent), the byte count,
//     the status, and the accumulated component annotations in "args", so the
//     FLoc admission verdict is one click away in the UI.
// Timestamps are simulated seconds scaled to the format's microseconds.
//
// spans_csv() is the compact flat dump of the same data for ad-hoc grepping
// and spreadsheet analysis: one row per closed span.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/tracing.h"

namespace floc::telemetry {

struct TraceExportOptions {
  // pid -> human-readable process name, emitted as "M" metadata events.
  std::vector<std::pair<std::int32_t, std::string>> process_names;
};

std::string chrome_trace_json(const Tracer& tracer,
                              const TraceExportOptions& opts = {});
bool write_chrome_trace(const Tracer& tracer, const std::string& path,
                        const TraceExportOptions& opts = {},
                        std::string* err = nullptr);

// Header: trace,span,parent,kind,pid,tid,begin,end,seq,bytes,status,annot
std::string spans_csv(const Tracer& tracer);
bool write_spans_csv(const Tracer& tracer, const std::string& path,
                     std::string* err = nullptr);

}  // namespace floc::telemetry
