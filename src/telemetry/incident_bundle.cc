#include "telemetry/incident_bundle.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/json.h"

namespace floc::telemetry {

const char* to_string(IncidentTrigger::Source s) {
  switch (s) {
    case IncidentTrigger::Source::kAlert: return "alert";
    case IncidentTrigger::Source::kInvariant: return "invariant";
    case IncidentTrigger::Source::kGate: return "gate";
    case IncidentTrigger::Source::kManual: return "manual";
  }
  return "?";
}

void IncidentBundle::to_json(json::JsonWriter& w) const {
  w.begin_object();

  w.key("trigger").begin_object();
  w.field("source", to_string(trigger.source));
  w.field("time", trigger.time);
  w.field("name", trigger.name);
  w.field("detail", trigger.detail);
  w.field("observed", trigger.observed);
  w.end_object();

  w.field("short_since", short_since);
  w.field("long_since", long_since);

  w.key("metrics").begin_array();
  for (const MetricDelta& d : metrics) {
    w.begin_object();
    w.field("name", d.name);
    w.field("value", d.value);
    w.key("delta_short");
    if (d.have_short) w.value(d.delta_short); else w.value_null();
    w.key("delta_long");
    if (d.have_long) w.value(d.delta_long); else w.value_null();
    w.end_object();
  }
  w.end_array();

  w.field("journal_total", journal_total);
  w.key("journal_tail").begin_array();
  for (const DefenseEvent& e : journal_tail) {
    w.begin_object();
    w.field("time", e.time);
    w.field("seq", e.seq);
    w.field("kind", to_string(e.kind));
    w.field("component", e.component);
    w.field("detail", e.detail);
    w.field("a", e.a);
    w.field("value", e.value);
    w.end_object();
  }
  w.end_array();

  w.key("spans").begin_array();
  for (const Span& s : spans) {
    w.begin_object();
    w.field("trace", s.trace);
    w.field("span", s.id);
    w.field("parent", s.parent);
    w.field("kind", to_string(s.kind));
    w.field("pid", static_cast<std::int64_t>(s.pid));
    w.field("tid", s.tid);
    w.field("begin", s.begin);
    w.field("end", s.end);
    w.field("seq", s.seq);
    w.field("bytes", s.bytes);
    w.field("status", static_cast<std::uint64_t>(s.status));
    w.field("annot", s.annot);
    w.end_object();
  }
  w.end_array();

  w.key("state").begin_object();
  for (const auto& [name, rendered] : states) {
    w.key(name).raw(rendered);
  }
  w.end_object();

  w.end_object();
}

namespace {

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

const json::Value* incidents_of(const json::Value& v) {
  const json::Value* inc = v.get("incidents");
  return inc != nullptr && inc->is_array() ? inc : nullptr;
}

std::string trigger_line(const json::Value& inc) {
  const json::Value* t = inc.get("trigger");
  if (t == nullptr) return "(no trigger)";
  std::string line = t->string_or("source", "?");
  line += " \"" + t->string_or("name", "?") + "\" at t=";
  line += fmt("%.3f", t->number_or("time", 0.0));
  line += " (observed " + fmt("%g", t->number_or("observed", 0.0)) + ")";
  return line;
}

std::size_t array_size(const json::Value& inc, const char* key) {
  const json::Value* a = inc.get(key);
  return a != nullptr && a->is_array() ? a->items.size() : 0;
}

}  // namespace

std::string summarize_bundle_file(const json::Value& v) {
  std::string out;
  out += "bench: " + v.string_or("bench", "?") + "\n";
  out += "schema: " + v.string_or("schema", "?") + "\n";
  const json::Value* inc = incidents_of(v);
  const std::size_t n = inc != nullptr ? inc->items.size() : 0;
  out += "incidents: " + std::to_string(n) + "\n";
  for (std::size_t i = 0; i < n; ++i) {
    const json::Value& b = inc->items[i];
    out += "\nincident " + std::to_string(i) + ": " + trigger_line(b) + "\n";
    const json::Value* trig = b.get("trigger");
    if (trig != nullptr) {
      const std::string detail = trig->string_or("detail", "");
      if (!detail.empty()) out += "  detail: " + detail + "\n";
    }
    out += "  journal tail: " + std::to_string(array_size(b, "journal_tail")) +
           " events (total " +
           fmt("%.0f", b.number_or("journal_total", 0.0)) + "), spans: " +
           std::to_string(array_size(b, "spans")) + "\n";
    const json::Value* st = b.get("state");
    if (st != nullptr && st->is_object()) {
      out += "  state dumps:";
      for (const auto& [name, dump] : st->fields) out += " " + name;
      out += "\n";
    }
    // Largest short-window movers, most movement first.
    const json::Value* ms = b.get("metrics");
    if (ms != nullptr && ms->is_array()) {
      std::vector<std::pair<double, const json::Value*>> movers;
      for (const json::Value& m : ms->items) {
        const json::Value* d = m.get("delta_short");
        if (d != nullptr && d->is_number() && d->number != 0.0) {
          movers.emplace_back(std::fabs(d->number), &m);
        }
      }
      std::sort(movers.begin(), movers.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      const std::size_t top = std::min<std::size_t>(movers.size(), 5);
      if (top > 0) {
        out += "  top short-window movers:\n";
        for (std::size_t k = 0; k < top; ++k) {
          const json::Value& m = *movers[k].second;
          const double delta = m.get("delta_short")->number;
          out += "    " + m.string_or("name", "?") + " " +
                 (delta >= 0 ? "+" : "") + fmt("%g", delta) + " (now " +
                 fmt("%g", m.number_or("value", 0.0)) + ")\n";
        }
      }
    }
  }
  return out;
}

std::string timeline_table(const json::Value& v) {
  struct Row {
    double time;
    double seq;  // tiebreak within an incident's journal tail
    std::string incident;
    std::string kind;
    std::string who;
    std::string detail;
  };
  std::vector<Row> rows;
  const json::Value* inc = incidents_of(v);
  const std::size_t n = inc != nullptr ? inc->items.size() : 0;
  for (std::size_t i = 0; i < n; ++i) {
    const json::Value& b = inc->items[i];
    const json::Value* t = b.get("trigger");
    if (t != nullptr) {
      rows.push_back(Row{t->number_or("time", 0.0),
                         1e18,  // trigger sorts after same-time journal events
                         std::to_string(i), "TRIGGER",
                         t->string_or("source", "?") + ":" +
                             t->string_or("name", "?"),
                         t->string_or("detail", "")});
    }
    const json::Value* tail = b.get("journal_tail");
    if (tail != nullptr && tail->is_array()) {
      for (const json::Value& e : tail->items) {
        rows.push_back(Row{e.number_or("time", 0.0), e.number_or("seq", 0.0),
                           std::to_string(i), e.string_or("kind", "?"),
                           e.string_or("component", "?"),
                           e.string_or("detail", "")});
      }
    }
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
  std::string out = "time      inc  kind               who                 detail\n";
  for (const Row& r : rows) {
    char line[256];
    std::snprintf(line, sizeof(line), "%-9.3f %-4s %-18s %-19s %s\n", r.time,
                  r.incident.c_str(), r.kind.c_str(), r.who.c_str(),
                  r.detail.c_str());
    out += line;
  }
  return out;
}

bool diff_bundle_files(const json::Value& a, const json::Value& b,
                       std::string* out) {
  bool differ = false;
  std::string& o = *out;
  const auto note = [&](const std::string& line) {
    differ = true;
    o += line + "\n";
  };

  if (a.string_or("bench", "") != b.string_or("bench", "")) {
    note("bench: " + a.string_or("bench", "?") + " vs " +
         b.string_or("bench", "?"));
  }
  const json::Value* ia = incidents_of(a);
  const json::Value* ib = incidents_of(b);
  const std::size_t na = ia != nullptr ? ia->items.size() : 0;
  const std::size_t nb = ib != nullptr ? ib->items.size() : 0;
  if (na != nb) {
    note("incident count: " + std::to_string(na) + " vs " +
         std::to_string(nb));
  }
  const std::size_t n = std::min(na, nb);
  for (std::size_t i = 0; i < n; ++i) {
    const json::Value& x = ia->items[i];
    const json::Value& y = ib->items[i];
    const std::string where = "incident " + std::to_string(i) + ": ";
    if (trigger_line(x) != trigger_line(y)) {
      note(where + "trigger " + trigger_line(x) + " vs " + trigger_line(y));
    }
    // Metric values by name (first file's order; names only in one side are
    // reported as missing).
    const json::Value* mx = x.get("metrics");
    const json::Value* my = y.get("metrics");
    if (mx != nullptr && mx->is_array() && my != nullptr && my->is_array()) {
      for (const json::Value& m : mx->items) {
        const std::string name = m.string_or("name", "?");
        const json::Value* other = nullptr;
        for (const json::Value& cand : my->items) {
          if (cand.string_or("name", "") == name) {
            other = &cand;
            break;
          }
        }
        if (other == nullptr) {
          note(where + "metric " + name + " only in first");
          continue;
        }
        const double va = m.number_or("value", 0.0);
        const double vb = other->number_or("value", 0.0);
        if (va != vb) {
          note(where + "metric " + name + " " + fmt("%g", va) + " vs " +
               fmt("%g", vb));
        }
      }
      for (const json::Value& m : my->items) {
        const std::string name = m.string_or("name", "?");
        bool found = false;
        for (const json::Value& cand : mx->items) {
          if (cand.string_or("name", "") == name) {
            found = true;
            break;
          }
        }
        if (!found) note(where + "metric " + name + " only in second");
      }
    }
    for (const char* key : {"journal_tail", "spans"}) {
      const std::size_t sa = array_size(x, key);
      const std::size_t sb = array_size(y, key);
      if (sa != sb) {
        note(where + std::string(key) + " size " + std::to_string(sa) +
             " vs " + std::to_string(sb));
      }
    }
    // State dumps: byte-for-byte via re-serialization of the parsed values
    // is lossy for doubles, so compare the dumps structurally by field
    // presence and scalar rendering — flag by name.
    const json::Value* sx = x.get("state");
    const json::Value* sy = y.get("state");
    if (sx != nullptr && sx->is_object() && sy != nullptr &&
        sy->is_object()) {
      for (const auto& [name, dump] : sx->fields) {
        const json::Value* other = sy->get(name);
        if (other == nullptr) {
          note(where + "state " + name + " only in first");
          continue;
        }
        // Compare the scheme + top-level scalar fields cheaply.
        for (const auto& [fname, fval] : dump.fields) {
          const json::Value* oval = other->get(fname);
          if (oval == nullptr) {
            note(where + "state " + name + "." + fname + " only in first");
          } else if (fval.kind == json::Value::kNumber &&
                     oval->kind == json::Value::kNumber &&
                     fval.number != oval->number) {
            note(where + "state " + name + "." + fname + " " +
                 fmt("%g", fval.number) + " vs " + fmt("%g", oval->number));
          } else if (fval.kind == json::Value::kString &&
                     oval->kind == json::Value::kString &&
                     fval.str != oval->str) {
            note(where + "state " + name + "." + fname + " \"" + fval.str +
                 "\" vs \"" + oval->str + "\"");
          }
        }
      }
      for (const auto& [name, dump] : sy->fields) {
        if (sx->get(name) == nullptr) {
          note(where + "state " + name + " only in second");
        }
      }
    }
  }
  if (!differ) o += "identical\n";
  return differ;
}

}  // namespace floc::telemetry
