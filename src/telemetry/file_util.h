// One shared "write this string to that file" helper so every telemetry
// exporter (time-series CSV, journal JSON, trace JSON, manifests) reports
// I/O failures the same way instead of silently returning false — or worse,
// hand-rolling an unchecked ofstream block per bench.
#pragma once

#include <string>

namespace floc::telemetry {

// Writes `text` to `path` (truncating). Returns true on success; on failure
// returns false and, when `err` is non-null, fills it with
// "<path>: <strerror>" so callers can report without touching errno.
bool write_text_file(const std::string& path, const std::string& text,
                     std::string* err = nullptr);

}  // namespace floc::telemetry
