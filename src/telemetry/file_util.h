// Shared "write this string to that file" / "read that file into a string"
// helpers so every telemetry exporter (time-series CSV, journal JSON, trace
// JSON, manifests, perf reports) reports I/O failures the same way instead
// of silently returning false — or worse, hand-rolling an unchecked
// ofstream block per bench.
#pragma once

#include <string>

namespace floc::telemetry {

// Writes `text` to `path` (truncating). Returns true on success; on failure
// returns false and, when `err` is non-null, fills it with
// "<path>: <strerror>" so callers can report without touching errno.
bool write_text_file(const std::string& path, const std::string& text,
                     std::string* err = nullptr);

// Reads all of `path` into *text. Same error contract as write_text_file.
bool read_text_file(const std::string& path, std::string* text,
                    std::string* err = nullptr);

}  // namespace floc::telemetry
