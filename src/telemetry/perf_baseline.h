// Perf-trajectory model: the schema-versioned BENCH_perf.json report the
// canonical perf suite (bench/perf_suite) emits, and the noise-tolerant
// comparison the regression gate (bench/perf_compare, scripts/check.sh perf
// leg, CI) runs between two reports.
//
// Design (docs/INTERNALS.md, "Perf trajectory & regression gating"):
//  * every metric records its own `noise` — the relative MAD (median absolute
//    deviation / median) across the suite's repeats — so the compare
//    tolerance is derived from the measurement's actual stability, not a
//    global fudge factor;
//  * metrics declare a direction (`higher_is_better`) and whether they are
//    `gate`d: machine-portable metrics (allocation counts, relative-cost
//    ratios like floc-vs-droptail) gate CI; absolute wall-clock metrics
//    (ns/op, packets/sec) are recorded for the trajectory but do not fail a
//    run on a different machine by default (perf_compare --gate-all flips
//    that for same-machine A/B runs);
//  * a metric present in the baseline but absent from the current report is
//    schema drift and fails the compare — a rename must refresh the
//    committed baseline, never silently drop trajectory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace floc::telemetry {

inline constexpr int kPerfSchemaVersion = 1;

struct PerfMetric {
  std::string name;   // dotted, e.g. "queue.floc.cbr.ns_per_pkt"
  double value = 0.0;
  std::string unit;   // "ns/op", "pkts/s", "allocs/kpkt", "ratio", "x"
  double noise = 0.0;            // relative MAD across repeats, >= 0
  bool higher_is_better = false;
  bool gate = false;             // participates in the regression gate
};

struct PerfReport {
  int schema_version = kPerfSchemaVersion;
  std::string bench = "perf_suite";
  std::string git;      // source revision of the emitting binary
  std::string mode;     // "quick" | "full"
  std::uint64_t seed = 0;
  int repeats = 0;      // noise-estimation repeats per metric
  std::vector<PerfMetric> metrics;

  // Appends and returns the new metric (pointer valid until next append).
  PerfMetric* add(const std::string& name, double value,
                  const std::string& unit, double noise,
                  bool higher_is_better, bool gate);
  const PerfMetric* find(const std::string& name) const;

  std::string to_json() const;
  // Parses a report emitted by to_json(). False + human error in *err on
  // malformed JSON or schema violations (missing fields, wrong types).
  static bool parse(const std::string& text, PerfReport* out,
                    std::string* err = nullptr);

  bool save(const std::string& path, std::string* err = nullptr) const;
  static bool load(const std::string& path, PerfReport* out,
                   std::string* err = nullptr);
};

struct PerfCompareOptions {
  // Per-metric relative tolerance:
  //   tol = max(min_rel, noise_mult * (baseline.noise + current.noise)).
  double noise_mult = 3.0;
  double min_rel = 0.15;
  // Gate every metric, not just the ones flagged `gate` (same-machine A/B).
  bool gate_all = false;
};

enum class PerfVerdict : std::uint8_t {
  kOk,         // within tolerance
  kImproved,   // beyond tolerance in the good direction
  kRegressed,  // beyond tolerance in the bad direction
  kMissing,    // in baseline, absent from current (schema drift)
  kNew,        // in current only (starts its trajectory)
};

const char* to_string(PerfVerdict v);

struct PerfDelta {
  std::string name;
  std::string unit;
  double baseline = 0.0;
  double current = 0.0;
  double rel_delta = 0.0;  // (current - baseline) / |baseline|
  double tolerance = 0.0;
  bool gated = false;
  PerfVerdict verdict = PerfVerdict::kOk;
};

struct PerfComparison {
  std::vector<PerfDelta> deltas;  // baseline order, then new metrics
  int gated_regressions = 0;
  int regressions = 0;  // including ungated ones
  int improvements = 0;
  int missing = 0;
  bool schema_mismatch = false;  // schema_version differs

  // The gate: schema matches, nothing gated regressed, nothing went missing.
  bool ok() const {
    return !schema_mismatch && gated_regressions == 0 && missing == 0;
  }

  // Human delta table, one row per metric:
  //   metric  base  current  delta%  tol%  verdict
  // Ungated rows print their verdict in brackets ("[regressed]") so a noisy
  // wall-clock shift is visible without failing the gate.
  std::string table() const;
};

PerfComparison compare_perf(const PerfReport& baseline,
                            const PerfReport& current,
                            const PerfCompareOptions& opts = {});

}  // namespace floc::telemetry
