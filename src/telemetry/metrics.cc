#include "telemetry/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace floc::telemetry {

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kGaugeFn: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

// --- LogHistogram -----------------------------------------------------------

LogHistogram::LogHistogram(double relative_error, double min_value)
    : eps_(std::clamp(relative_error, 1e-6, 0.5)), min_value_(min_value) {
  gamma_ = (1.0 + eps_) / (1.0 - eps_);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
  midpoint_factor_ = 2.0 * gamma_ / (gamma_ + 1.0);
}

int LogHistogram::bucket_index(double v) const {
  return static_cast<int>(std::ceil(std::log(v) * inv_log_gamma_));
}

double LogHistogram::bucket_value(int index) const {
  // Midpoint of (gamma^(i-1), gamma^i]: within eps of anything in the bucket.
  return std::pow(gamma_, index - 1) * midpoint_factor_;
}

void LogHistogram::observe(double v) {
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  if (!(v >= min_value_)) {  // negatives and NaN also land here
    ++zero_count_;
    return;
  }
  const int idx = bucket_index(v);
  if (counts_.empty()) {
    offset_ = idx;
    counts_.push_back(0);
  } else if (idx < offset_) {
    counts_.insert(counts_.begin(), static_cast<std::size_t>(offset_ - idx), 0);
    offset_ = idx;
  } else if (idx >= offset_ + static_cast<int>(counts_.size())) {
    counts_.resize(static_cast<std::size_t>(idx - offset_) + 1, 0);
  }
  ++counts_[static_cast<std::size_t>(idx - offset_)];
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Zero-based rank of the order statistic we are after.
  const std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1) + 0.5);
  if (rank < zero_count_) return 0.0;
  std::uint64_t seen = zero_count_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (rank < seen) return bucket_value(offset_ + static_cast<int>(i));
  }
  return max_;  // unreachable unless counts drifted; be safe
}

void LogHistogram::reset() {
  zero_count_ = 0;
  offset_ = 0;
  counts_.clear();
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

// --- MetricRegistry ---------------------------------------------------------

MetricRegistry::Metric* MetricRegistry::get_or_create(const std::string& name,
                                                      MetricKind kind) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    Metric* m = metrics_[it->second].get();
    assert(m->kind == kind && "metric re-registered under a different kind");
    return m;
  }
  auto m = std::make_unique<Metric>();
  m->name = name;
  m->kind = kind;
  Metric* raw = m.get();
  index_.emplace(name, metrics_.size());
  metrics_.push_back(std::move(m));
  return raw;
}

Counter* MetricRegistry::counter(const std::string& name) {
  Metric* m = get_or_create(name, MetricKind::kCounter);
  if (!m->counter) m->counter = std::make_unique<Counter>();
  return m->counter.get();
}

Gauge* MetricRegistry::gauge(const std::string& name) {
  Metric* m = get_or_create(name, MetricKind::kGauge);
  if (!m->gauge) m->gauge = std::make_unique<Gauge>();
  return m->gauge.get();
}

void MetricRegistry::gauge_fn(const std::string& name,
                              std::function<double()> fn) {
  Metric* m = get_or_create(name, MetricKind::kGaugeFn);
  m->fn = std::move(fn);
}

LogHistogram* MetricRegistry::histogram(const std::string& name,
                                        double relative_error) {
  Metric* m = get_or_create(name, MetricKind::kHistogram);
  if (!m->histogram)
    m->histogram = std::make_unique<LogHistogram>(relative_error);
  return m->histogram.get();
}

const MetricRegistry::Metric* MetricRegistry::find(
    const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : metrics_[it->second].get();
}

double MetricRegistry::value(const std::string& name) const {
  const Metric* m = find(name);
  if (m == nullptr) return 0.0;
  switch (m->kind) {
    case MetricKind::kCounter: return static_cast<double>(m->counter->value());
    case MetricKind::kGauge: return m->gauge->value();
    case MetricKind::kGaugeFn: return m->fn ? m->fn() : 0.0;
    case MetricKind::kHistogram:
      return static_cast<double>(m->histogram->count());
  }
  return 0.0;
}

}  // namespace floc::telemetry
