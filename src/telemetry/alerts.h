// Sliding-window storm alerting over the MetricRegistry.
//
// The AlertEngine turns the registry's cumulative counters into operator
// signals the way production monitors do: each rule watches one metric and
// compares a short-window average rate against a long-window one (the
// netdata "packets storm" shape — 10s average vs 1-minute average with a
// minimum-rate floor so idle links never page), or a raw value against a
// threshold. Rules have hysteresis: a distinct clear condition, so a rate
// hovering at the trigger does not flap.
//
// Everything is driven by the simulation clock through sample(now) — the
// engine holds no threads and no wall-clock state, so alert firings are as
// deterministic and --jobs-invariant as the simulation itself. Firing
// history exports as JSON (".alerts.json" scorecard artifacts), and the
// whole registry renders in the Prometheus text exposition format for
// scrape-style consumption.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "util/units.h"

namespace floc::telemetry {

class FlightRecorder;

enum class AlertKind : std::uint8_t {
  kRateRatio,   // short-window avg rate vs long-window avg rate
  kThreshold,   // instantaneous value vs fixed threshold
};

const char* to_string(AlertKind k);

struct AlertRule {
  std::string name;    // e.g. "floc_state_evict_storm"
  std::string metric;  // registry metric to watch (cumulative for kRateRatio)
  AlertKind kind = AlertKind::kRateRatio;

  // kRateRatio: fire when avg rate over `short_window` is both >= `min_rate`
  // (the idle floor: a ratio over a near-zero baseline is noise) and >=
  // `ratio` times the avg rate over `long_window`; clear when it falls to
  // `clear_ratio` times the long average (or under the floor).
  TimeSec short_window = 10.0;
  TimeSec long_window = 60.0;
  double ratio = 3.0;
  double clear_ratio = 1.5;
  double min_rate = 10.0;

  // kThreshold: fire at value >= `threshold`, clear at value <=
  // `clear_threshold` (set clear below fire for hysteresis).
  double threshold = 0.0;
  double clear_threshold = 0.0;
};

// One edge of a rule's firing state, stamped with the observed measurement
// (the short-window rate or the value) that caused it.
struct AlertEvent {
  TimeSec time = 0.0;
  std::string rule;
  bool firing = false;  // true = fired, false = cleared
  double observed = 0.0;
};

class AlertEngine {
 public:
  // The registry must outlive the engine; metrics may register after the
  // engine (missing names read as 0 until they appear).
  explicit AlertEngine(const MetricRegistry* registry) : reg_(registry) {}

  void add_rule(AlertRule rule);

  // Attach an incident flight recorder: every rule FIRE edge (not clears)
  // triggers a capture, stamped with the rule name and the observed
  // measurement. nullptr detaches. The recorder must outlive the engine.
  void set_flight_recorder(FlightRecorder* recorder) { recorder_ = recorder; }

  // Read every watched metric, advance the sliding windows, evaluate the
  // rules. Call on the simulation clock (e.g. alongside the sampler).
  void sample(TimeSec now);

  bool firing(const std::string& rule) const;
  std::size_t firing_count() const;
  // Fire edges ever observed for `rule` (0 for unknown names).
  std::uint64_t fired(const std::string& rule) const;
  std::uint64_t fired_total() const;
  const std::vector<AlertEvent>& history() const { return history_; }
  std::size_t rule_count() const { return rules_.size(); }

  // {"rules": [{name, metric, kind, firing, fired}...],
  //  "events": [{time, rule, firing, observed}...]}
  std::string to_json() const;
  // Write to_json() to `path`; false + "<path>: <strerror>" in *err on
  // failure.
  bool save(const std::string& path, std::string* err = nullptr) const;

  // Prometheus text exposition of every scalar metric in `reg` (dots and
  // other illegal characters become '_'; histograms expose _count, _sum and
  // p50/p99 quantile series). Stand-alone so benches can scrape-export a
  // registry without constructing an engine.
  static std::string render_prometheus(const MetricRegistry& reg);
  // render_prometheus(registry) plus one floc_alert_firing{alert="..."}
  // series per rule.
  std::string render_prometheus_with_alerts() const;

 private:
  struct RuleState {
    AlertRule rule;
    // (time, cumulative value) samples covering at least long_window.
    std::deque<std::pair<TimeSec, double>> window;
    bool firing = false;
    std::uint64_t fire_edges = 0;
  };

  // Average rate of the rule's metric over the trailing `span` seconds,
  // from the two window samples bracketing it. Returns 0 until two samples
  // exist.
  static double window_rate(const RuleState& rs, TimeSec span);
  void evaluate(RuleState& rs, TimeSec now);

  const MetricRegistry* reg_;
  std::vector<RuleState> rules_;
  std::vector<AlertEvent> history_;
  std::uint64_t fired_total_ = 0;
  FlightRecorder* recorder_ = nullptr;
};

}  // namespace floc::telemetry
