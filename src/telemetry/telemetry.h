// The per-run telemetry context: one MetricRegistry plus one EventJournal,
// passed to components as a single nullable pointer.
//
//   telemetry::Telemetry tele;
//   floc_queue.attach_telemetry(&tele);          // registers + journals
//   link->register_metrics(tele.registry, "link.target");
//   telemetry::TimeSeriesSampler sampler(&tele.registry, 0.25);
//   sampler.attach(&sim, duration);
//   ...run...
//   sampler.write_csv("run.csv");
//   puts(tele.journal.dump().c_str());
//
// Components must treat a null Telemetry* / EventJournal* as "telemetry off"
// and keep that path free of allocation and virtual dispatch.
#pragma once

#include "telemetry/event_journal.h"
#include "telemetry/metrics.h"
#include "telemetry/time_series.h"

namespace floc::telemetry {

struct Telemetry {
  MetricRegistry registry;
  EventJournal journal;
};

}  // namespace floc::telemetry
