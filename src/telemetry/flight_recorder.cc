#include "telemetry/flight_recorder.h"

#include "telemetry/event_journal.h"
#include "telemetry/file_util.h"
#include "telemetry/metrics.h"
#include "telemetry/tracing.h"
#include "util/json.h"

namespace floc::telemetry {

namespace {

// Scalar value of one metric, matching MetricRegistry::value() semantics
// (histograms report their count) without the name lookup.
double scalar_of(const MetricRegistry::Metric& m) {
  switch (m.kind) {
    case MetricKind::kCounter:
      return static_cast<double>(m.counter->value());
    case MetricKind::kGauge:
      return m.gauge->value();
    case MetricKind::kGaugeFn:
      return m.fn ? m.fn() : 0.0;
    case MetricKind::kHistogram:
      return static_cast<double>(m.histogram->count());
  }
  return 0.0;
}

}  // namespace

FlightRecorder::FlightRecorder(const MetricRegistry* registry)
    : FlightRecorder(registry, Config()) {}

FlightRecorder::FlightRecorder(const MetricRegistry* registry, Config cfg)
    : registry_(registry), cfg_(cfg) {}

void FlightRecorder::add_state(std::string name, StateDumper fn) {
  dumpers_.emplace_back(std::move(name), std::move(fn));
}

void FlightRecorder::sample(TimeSec now) {
  SampleRow row;
  row.time = now;
  if (registry_ != nullptr) {
    const auto& ms = registry_->metrics();
    row.values.reserve(ms.size());
    for (const auto& m : ms) row.values.push_back(scalar_of(*m));
  }
  ring_.push_back(std::move(row));
  while (ring_.size() > cfg_.metric_ring) ring_.pop_front();
}

const FlightRecorder::SampleRow* FlightRecorder::bracket(TimeSec t) const {
  if (ring_.empty()) return nullptr;
  const SampleRow* best = &ring_.front();  // clipped-window fallback
  for (const SampleRow& row : ring_) {
    if (row.time > t) break;
    best = &row;
  }
  return best;
}

const IncidentBundle* FlightRecorder::capture(const IncidentTrigger& trig) {
  ++captured_total_;
  if (incidents_.size() >= cfg_.max_incidents) {
    ++suppressed_;
    return nullptr;
  }

  IncidentBundle b;
  b.trigger = trig;
  const TimeSec now = trig.time;

  const SampleRow* s = bracket(now - cfg_.short_window);
  const SampleRow* l = bracket(now - cfg_.long_window);
  b.short_since = s != nullptr ? s->time : -1.0;
  b.long_since = l != nullptr ? l->time : -1.0;
  if (registry_ != nullptr) {
    const auto& ms = registry_->metrics();
    b.metrics.reserve(ms.size());
    for (std::size_t i = 0; i < ms.size(); ++i) {
      MetricDelta d;
      d.name = ms[i]->name;
      d.value = scalar_of(*ms[i]);
      // Metrics registered after a row was sampled have no column there.
      if (s != nullptr && i < s->values.size()) {
        d.have_short = true;
        d.delta_short = d.value - s->values[i];
      }
      if (l != nullptr && i < l->values.size()) {
        d.have_long = true;
        d.delta_long = d.value - l->values[i];
      }
      b.metrics.push_back(std::move(d));
    }
  }

  if (journal_ != nullptr) {
    b.journal_total = journal_->total();
    const auto& events = journal_->events();
    const std::size_t n =
        events.size() > cfg_.journal_tail ? cfg_.journal_tail : events.size();
    b.journal_tail.assign(events.end() - static_cast<std::ptrdiff_t>(n),
                          events.end());
  }

  if (tracer_ != nullptr) {
    const auto& spans = tracer_->spans();
    const std::size_t n =
        spans.size() > cfg_.span_tail ? cfg_.span_tail : spans.size();
    b.spans.assign(spans.end() - static_cast<std::ptrdiff_t>(n), spans.end());
  }

  b.states.reserve(dumpers_.size());
  for (const auto& [name, fn] : dumpers_) {
    json::JsonWriter w;
    fn(w, now);
    b.states.emplace_back(name, w.str());
  }

  incidents_.push_back(std::move(b));
  return &incidents_.back();
}

std::string FlightRecorder::to_json() const {
  json::JsonWriter w;
  w.begin_object();
  w.field("schema", "floc-incident-v1");
  w.field("bench", bench_);
  w.field("captured_total", captured_total_);
  w.field("suppressed", suppressed_);
  w.key("incidents").begin_array();
  for (const IncidentBundle& b : incidents_) b.to_json(w);
  w.end_array();
  w.end_object();
  return w.str();
}

bool FlightRecorder::save(const std::string& path, std::string* err) const {
  return write_text_file(path, to_json(), err);
}

}  // namespace floc::telemetry
