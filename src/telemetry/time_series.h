// TimeSeriesSampler: periodic snapshots of every registered metric into an
// in-memory time series, with CSV/JSON export.
//
// The sampler is driven by the simulation clock, not wall time: attach() to
// any scheduler exposing `now()` / `schedule_at(t, cb)` (the netsim
// Simulator, or a test double) and it samples at exactly t0, t0+period,
// t0+2*period, ... — sample times are computed as t0 + k*period from the
// attach time, never accumulated, so long runs stay aligned with simulated
// time to fp precision.
//
// Columns: one per scalar metric (counter / gauge / polled gauge), and for
// each histogram the derived columns <name>.count, .p50, .p90, .p99, .p999.
// Metrics registered after sampling started join with NaN backfill for the
// rows they missed. Counters sample cumulatively; add_rate_column() derives
// a per-interval rate column "<name>.rate" at export/query time.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "util/units.h"

namespace floc::telemetry {

class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(MetricRegistry* registry, TimeSec period);

  // Snapshot every registered metric at `now` (one row). Usable standalone
  // (tests, manual schedules) or via attach().
  void sample(TimeSec now);

  // Drive sample() off a simulation scheduler every `period` until `until`
  // (first sample at the current time). Sched must outlive the run.
  template <typename Sched>
  void attach(Sched* sched, TimeSec until) {
    sample(sched->now());
    schedule_next(sched, sched->now(), until, 1);
  }

  TimeSec period() const { return period_; }
  std::size_t rows() const { return times_.size(); }
  const std::vector<TimeSec>& times() const { return times_; }
  const std::vector<std::string>& columns() const { return columns_; }

  // Derived per-interval rate column over a sampled cumulative metric:
  // rate[i] = (v[i] - v[i-1]) / (t[i] - t[i-1]), NaN for row 0. Call any
  // time before export/query; `name` must be a sampled column.
  void add_rate_column(const std::string& name);

  // Value at (row, column); NaN when the column was not yet registered at
  // that row or the column is unknown.
  double value(std::size_t row, const std::string& column) const;

  // header line "time,<col>,<col>,..." then one row per sample.
  std::string to_csv() const;
  // [{"time": t, "<col>": v, ...}, ...]; NaN exported as null.
  std::string to_json() const;
  // Write to_csv() to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  // Write the series to `path`, choosing the format from the extension
  // (".json" -> to_json(), anything else -> to_csv()). On failure returns
  // false and fills `err` ("<path>: <strerror>") when non-null, so benches
  // can report instead of silently producing nothing.
  bool save(const std::string& path, std::string* err = nullptr) const;

 private:
  template <typename Sched>
  void schedule_next(Sched* sched, TimeSec t0, TimeSec until, std::uint64_t k) {
    const TimeSec t = t0 + static_cast<double>(k) * period_;
    if (t > until) return;
    sched->schedule_at(t, [this, sched, t0, until, k] {
      sample(sched->now());
      schedule_next(sched, t0, until, k + 1);
    });
  }

  void refresh_columns();
  // Matrix cell with NaN default; row data is dense per row.
  struct Row {
    std::vector<double> values;  // aligned with columns_ prefix at sample time
  };

  MetricRegistry* registry_;
  TimeSec period_;
  std::vector<std::string> columns_;      // stable order, grows at the tail
  std::vector<TimeSec> times_;
  std::vector<Row> rows_;
  std::vector<std::string> rate_columns_;  // source column names
};

}  // namespace floc::telemetry
