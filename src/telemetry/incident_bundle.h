// Incident bundle: the self-contained capture a FlightRecorder writes when
// something fires — the trigger, short/long-window metric deltas, the journal
// tail, the last-N trace spans, and full structured state dumps of every
// registered component.
//
// The model lives apart from the recorder so the reader side (the
// floc_inspect CLI) can load, summarize, diff, and timeline bundles through
// the same unit-tested helpers, over the json::Value the util/json parser
// produces. Bundle content is gated by the --jobs determinism contract:
// everything in it derives from simulated time and sorted-key state dumps —
// no wall clock, no hash iteration order.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/event_journal.h"
#include "telemetry/tracing.h"
#include "util/units.h"

namespace floc::json {
class JsonWriter;
struct Value;
}

namespace floc::telemetry {

// What fired. `name` is the alert rule / monitor check / bench gate;
// `observed` is the measurement that crossed (ratio, occupancy, gate value).
struct IncidentTrigger {
  enum class Source : std::uint8_t { kAlert, kInvariant, kGate, kManual };
  Source source = Source::kManual;
  TimeSec time = 0.0;
  std::string name;
  std::string detail;
  double observed = 0.0;
};

const char* to_string(IncidentTrigger::Source s);

// One metric at capture time, with its change over the recorder's short and
// long pre-incident windows (have_* false when the ring held no sample to
// bracket against).
struct MetricDelta {
  std::string name;
  double value = 0.0;
  bool have_short = false;
  double delta_short = 0.0;
  bool have_long = false;
  double delta_long = 0.0;
};

struct IncidentBundle {
  IncidentTrigger trigger;
  // Oldest ring-sample times the deltas are measured against (< 0 = none).
  TimeSec short_since = -1.0;
  TimeSec long_since = -1.0;
  std::vector<MetricDelta> metrics;
  std::vector<DefenseEvent> journal_tail;
  std::uint64_t journal_total = 0;  // events ever recorded (tail may clip)
  std::vector<Span> spans;
  // Component state dumps: (name, pre-rendered JSON object), in registration
  // order (fixed by the bench wiring, so deterministic).
  std::vector<std::pair<std::string, std::string>> states;

  // Emit this bundle as one JSON object into `w`.
  void to_json(json::JsonWriter& w) const;
};

// --- Reader-side helpers (floc_inspect) ------------------------------------
// All operate on a parsed bundle *file* ({"schema": "floc-incident-v1",
// "bench": ..., "incidents": [...]}) and tolerate missing fields, so a
// foreign or truncated file degrades to empty sections, not a crash.

// Human summary: per incident, the trigger line, section sizes, and the
// largest short-window metric movements.
std::string summarize_bundle_file(const json::Value& v);

// Chronological table (time, source, kind, component/name, detail) merging
// each incident's trigger with its journal tail.
std::string timeline_table(const json::Value& v);

// Renders a field-level diff of two bundle files into *out; returns true
// when they differ materially (triggers, metric values, state dumps, or
// section sizes), false when equivalent.
bool diff_bundle_files(const json::Value& a, const json::Value& b,
                       std::string* out);

}  // namespace floc::telemetry
