#include "telemetry/alerts.h"

#include <algorithm>
#include <cstdio>

#include "telemetry/file_util.h"
#include "telemetry/flight_recorder.h"

namespace floc::telemetry {

const char* to_string(AlertKind k) {
  switch (k) {
    case AlertKind::kRateRatio: return "rate-ratio";
    case AlertKind::kThreshold: return "threshold";
  }
  return "?";
}

void AlertEngine::add_rule(AlertRule rule) {
  RuleState rs;
  rs.rule = std::move(rule);
  rules_.push_back(std::move(rs));
}

double AlertEngine::window_rate(const RuleState& rs, TimeSec span) {
  if (rs.window.size() < 2) return 0.0;
  const auto& newest = rs.window.back();
  const TimeSec cutoff = newest.first - span;
  // Oldest sample at or after the cutoff — the window front is pruned to
  // just-cover long_window, so this scan is O(short samples), and the
  // denominator uses the ACTUAL elapsed span (a window still filling up
  // reports the rate over the data it has, not an inflated one).
  const std::pair<TimeSec, double>* base = &rs.window.front();
  for (const auto& s : rs.window) {
    if (s.first >= cutoff) {
      base = &s;
      break;
    }
  }
  const TimeSec dt = newest.first - base->first;
  if (dt <= 0.0) return 0.0;
  return (newest.second - base->second) / dt;
}

void AlertEngine::evaluate(RuleState& rs, TimeSec now) {
  double observed = 0.0;
  bool fire = rs.firing;
  if (rs.rule.kind == AlertKind::kRateRatio) {
    const double short_rate = window_rate(rs, rs.rule.short_window);
    const double long_rate = window_rate(rs, rs.rule.long_window);
    observed = short_rate;
    if (!rs.firing) {
      // Fire on a genuine burst: above the idle floor AND `ratio` times the
      // long-window baseline. A baseline of ~0 (burst from idle) fires on
      // the floor alone — that is the storm case, not an exemption.
      fire = short_rate >= rs.rule.min_rate &&
             short_rate >= rs.rule.ratio * long_rate;
    } else {
      fire = short_rate >= rs.rule.min_rate &&
             short_rate > rs.rule.clear_ratio * long_rate;
    }
  } else {
    observed = rs.window.empty() ? 0.0 : rs.window.back().second;
    fire = rs.firing ? observed > rs.rule.clear_threshold
                     : observed >= rs.rule.threshold;
  }
  if (fire == rs.firing) return;
  rs.firing = fire;
  if (fire) {
    ++rs.fire_edges;
    ++fired_total_;
    if (recorder_ != nullptr) {
      IncidentTrigger trig;
      trig.source = IncidentTrigger::Source::kAlert;
      trig.time = now;
      trig.name = rs.rule.name;
      trig.detail = std::string("metric=") + rs.rule.metric +
                    " kind=" + to_string(rs.rule.kind);
      trig.observed = observed;
      recorder_->capture(trig);
    }
  }
  history_.push_back(AlertEvent{now, rs.rule.name, fire, observed});
}

void AlertEngine::sample(TimeSec now) {
  for (RuleState& rs : rules_) {
    rs.window.emplace_back(now, reg_->value(rs.rule.metric));
    // Keep one sample older than the long window so window_rate's bracketing
    // base never vanishes mid-window.
    const TimeSec keep_from = now - rs.rule.long_window;
    while (rs.window.size() > 2 && rs.window[1].first <= keep_from) {
      rs.window.pop_front();
    }
    evaluate(rs, now);
  }
}

bool AlertEngine::firing(const std::string& rule) const {
  for (const RuleState& rs : rules_) {
    if (rs.rule.name == rule) return rs.firing;
  }
  return false;
}

std::size_t AlertEngine::firing_count() const {
  std::size_t n = 0;
  for (const RuleState& rs : rules_) n += rs.firing ? 1 : 0;
  return n;
}

std::uint64_t AlertEngine::fired(const std::string& rule) const {
  for (const RuleState& rs : rules_) {
    if (rs.rule.name == rule) return rs.fire_edges;
  }
  return 0;
}

std::uint64_t AlertEngine::fired_total() const { return fired_total_; }

std::string AlertEngine::to_json() const {
  std::string out = "{\n\"rules\": [\n";
  char buf[192];
  bool first = true;
  for (const RuleState& rs : rules_) {
    if (!first) out += ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "  {\"name\": \"%s\", \"metric\": \"%s\", \"kind\": \"%s\", "
                  "\"firing\": %s, \"fired\": %llu}",
                  rs.rule.name.c_str(), rs.rule.metric.c_str(),
                  to_string(rs.rule.kind), rs.firing ? "true" : "false",
                  static_cast<unsigned long long>(rs.fire_edges));
    out += buf;
  }
  out += "\n],\n\"events\": [\n";
  first = true;
  for (const AlertEvent& e : history_) {
    if (!first) out += ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "  {\"time\": %.9g, \"rule\": \"%s\", \"firing\": %s, "
                  "\"observed\": %.9g}",
                  e.time, e.rule.c_str(), e.firing ? "true" : "false",
                  e.observed);
    out += buf;
  }
  out += "\n]\n}\n";
  return out;
}

bool AlertEngine::save(const std::string& path, std::string* err) const {
  return write_text_file(path, to_json(), err);
}

namespace {

// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted names
// map dots (and anything else illegal) to '_'.
std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9' && !out.empty()) || c == '_';
    out += ok ? c : '_';
  }
  return out.empty() ? std::string("_") : out;
}

// Label VALUES are free-form UTF-8; the text-format spec requires exactly
// backslash -> \\, double quote -> \", and line feed -> \n to be escaped
// (other bytes, tabs included, pass through raw).
std::string prom_label_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// Exposition-format block for one sample: `# HELP` first, then `# TYPE`,
// then the sample line, per the Prometheus text-format grammar. The help
// string carries the original dotted registry name so operators can map an
// exported series back to its in-process metric.
void append_sample(std::string& out, const std::string& name,
                   const char* type, double value, const std::string& help) {
  char buf[64];
  out += "# HELP " + name + " " + help + "\n";
  out += "# TYPE " + name + " " + type + "\n";
  std::snprintf(buf, sizeof(buf), " %.9g\n", value);
  out += name;
  out += buf;
}

}  // namespace

std::string AlertEngine::render_prometheus(const MetricRegistry& reg) {
  std::string out;
  out.reserve(reg.size() * 64);
  for (const auto& m : reg.metrics()) {
    const std::string name = prom_name(m->name);
    const std::string src = "FLoc metric " + m->name;
    switch (m->kind) {
      case MetricKind::kCounter: {
        // Counters get the conventional `_total` suffix — unless the dotted
        // name already carries one (floc.drops.total), which must not double.
        const bool suffixed =
            name.size() >= 6 &&
            name.compare(name.size() - 6, 6, "_total") == 0;
        append_sample(out, suffixed ? name : name + "_total", "counter",
                      static_cast<double>(m->counter->value()), src);
        break;
      }
      case MetricKind::kGauge:
        append_sample(out, name, "gauge", m->gauge->value(), src);
        break;
      case MetricKind::kGaugeFn:
        append_sample(out, name, "gauge", m->fn(), src);
        break;
      case MetricKind::kHistogram: {
        append_sample(out, name + "_count", "counter",
                      static_cast<double>(m->histogram->count()),
                      src + " (sample count)");
        append_sample(out, name + "_sum", "counter", m->histogram->sum(),
                      src + " (sample sum)");
        append_sample(out, name + "_p50", "gauge",
                      m->histogram->quantile(0.5), src + " (p50)");
        append_sample(out, name + "_p99", "gauge",
                      m->histogram->quantile(0.99), src + " (p99)");
        break;
      }
    }
  }
  return out;
}

std::string AlertEngine::render_prometheus_with_alerts() const {
  std::string out =
      reg_ != nullptr ? render_prometheus(*reg_) : std::string();
  if (!rules_.empty()) {
    out += "# HELP floc_alert_firing 1 while the named alert rule fires\n";
    out += "# TYPE floc_alert_firing gauge\n";
    for (const RuleState& rs : rules_) {
      // The rule name goes in as a label VALUE, escaped per the spec —
      // mangling through prom_name here would silently alias rules like
      // "a.b" and "a b".
      out += "floc_alert_firing{alert=\"" + prom_label_escape(rs.rule.name) +
             "\"} ";
      out += rs.firing ? "1\n" : "0\n";
    }
  }
  return out;
}

}  // namespace floc::telemetry
