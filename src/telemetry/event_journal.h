// Structured journal of semantically meaningful defense events.
//
// Where the MetricRegistry answers "how many / how much", the journal answers
// "what happened, when, and why": FlocQueue mode transitions with the queue
// measurement that triggered them, attack-aggregate latch/unlatch, capability
// key rotations and re-issues, reboots and recovery completion, per-reason
// drops, fault-plan activations, and SimMonitor invariant violations — each
// stamped with event-time, a monotonic sequence number (total order even
// among same-timestamp events), the emitting component, and a kind-specific
// measurement.
//
// The journal is a bounded ring: old events are evicted under pressure, but
// per-kind counts keep covering everything ever recorded. High-frequency
// kinds (kDrop during a flood) can be disabled per kind; disabled kinds are
// still counted, just not stored.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/units.h"

namespace floc::telemetry {

enum class EventKind : std::uint8_t {
  kModeTransition,      // FlocQueue uncongested/congested/flooding change
  kAttackLatch,         // aggregate latched as an attack path
  kAttackRelease,       // aggregate released after calm intervals
  kKeyRotation,         // capability secret rotated
  kCapReissue,          // capability re-stamped during a rotation grace window
  kReboot,              // router soft state wiped
  kRecoveryEnd,         // post-reboot relearn window expired
  kDrop,                // packet dropped; `a` holds the DropReason ordinal
  kFault,               // fault-plan event fired (link flap, corruption, ...)
  kInvariantViolation,  // SimMonitor check failed
  kBlacklistAdd,        // sender added to the offender blacklist (hardening)
  kBlacklistExpire,     // offender blacklist entry expired
  kBackoffEscalate,     // re-latch doubled a path's release requirement
  kStateEvict,          // bounded-table eviction round (state budgets)
  kOverloadEnter,       // a state table crossed its high-watermark
  kOverloadExit,        // occupancy fell back below the low-watermark
};
inline constexpr std::size_t kEventKindCount = 16;

const char* to_string(EventKind k);
// Inverse of to_string; returns false (and leaves *out alone) for unknown
// names. Round-tripped exhaustively in tests.
bool from_string(const std::string& name, EventKind* out);

struct DefenseEvent {
  TimeSec time = 0.0;
  std::uint64_t seq = 0;  // total order; ties in `time` keep recording order
  EventKind kind = EventKind::kFault;
  std::string component;  // emitting instance, e.g. "floc", "link.target"
  std::string detail;     // human-readable context; may be empty
  std::uint64_t a = 0;    // kind-specific ordinal (mode, DropReason, ...)
  double value = 0.0;     // kind-specific measurement (queue length, MTD, ...)
};

class EventJournal {
 public:
  explicit EventJournal(std::size_t max_events = std::size_t{1} << 16);

  void record(TimeSec time, EventKind kind, std::string component,
              std::string detail = std::string(), std::uint64_t a = 0,
              double value = 0.0);

  // Storage gate per kind (counts are unaffected). All kinds start enabled.
  void set_enabled(EventKind k, bool on) {
    enabled_[static_cast<std::size_t>(k)] = on;
  }
  bool enabled(EventKind k) const {
    return enabled_[static_cast<std::size_t>(k)];
  }

  const std::deque<DefenseEvent>& events() const { return events_; }
  std::vector<const DefenseEvent*> of_kind(EventKind k) const;

  // Events ever recorded of `k`, including evicted and disabled ones.
  std::uint64_t count(EventKind k) const {
    return counts_[static_cast<std::size_t>(k)];
  }
  std::uint64_t total() const { return total_; }
  // Stored events silently pushed out of the bounded ring to make room for
  // newer ones. A nonzero count means events()/dump()/to_json() show a
  // *suffix* of the run, not the whole story — the JSON export surfaces it
  // so downstream tooling can tell a complete journal from a clipped one.
  std::uint64_t overwritten() const { return overwritten_; }
  bool overflowed() const { return overwritten_ > 0; }
  void clear();

  // One event per line: "<time> <kind> [component] detail (a=..., value=...)".
  std::string dump() const;
  // JSON object {"total": N, "stored": S, "overwritten": O, "events": [...]}.
  std::string to_json() const;
  static std::string format(const DefenseEvent& e);

  // Write the journal to `path`, choosing the format from the extension
  // (".json" -> to_json(), anything else -> dump()). On failure returns
  // false and fills `err` ("<path>: <strerror>") when non-null.
  bool save(const std::string& path, std::string* err = nullptr) const;

 private:
  std::size_t max_events_;
  std::deque<DefenseEvent> events_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t counts_[kEventKindCount] = {};
  std::uint64_t total_ = 0;
  bool enabled_[kEventKindCount];
  std::uint64_t overwritten_ = 0;
};

}  // namespace floc::telemetry
