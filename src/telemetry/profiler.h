// Wall-clock profiler: attribute the simulator's real CPU time to named
// components (event dispatch, each queue-disc class, TCP processing,
// capability verification) so benches can print where a run's seconds went.
//
// A component asks the Profiler for a named Section once at attach time and
// keeps the raw pointer; hot paths then open a ScopedTimer on that pointer.
// The pointer is null by default — the same fast path contract as Tracer and
// MetricRegistry: a detached component pays one pointer-null test and zero
// allocations (pinned by tests/telemetry_fastpath_test.cc).
//
// Every section feeds a per-call latency LogHistogram registered in the
// MetricRegistry as "<prefix>.<name>.ns" (when a registry is attached), so
// profiler data exports through the same samplers as everything else, and
// report() prints the human table benches show at exit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/metrics.h"

namespace floc::telemetry {

// Monotonic wall clock in nanoseconds.
std::uint64_t clock_ns();

class Profiler {
 public:
  struct Section {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    LogHistogram* hist = nullptr;  // per-call ns; null without a registry

    void record(std::uint64_t ns) {
      ++calls;
      total_ns += ns;
      if (hist != nullptr) hist->observe(static_cast<double>(ns));
    }
  };

  // When `registry` is non-null, each section registers a histogram named
  // "<prefix>.<section>.ns".
  explicit Profiler(MetricRegistry* registry = nullptr,
                    std::string prefix = "prof");

  // Get-or-create; the returned pointer is stable for the Profiler's
  // lifetime. Not for hot paths — call once at attach time.
  Section* section(const std::string& name);

  const std::vector<std::unique_ptr<Section>>& sections() const {
    return sections_;
  }
  std::uint64_t total_ns() const;

  // Human-readable table, one row per section, sorted by total time:
  //   section  calls  total  %  mean  p50  p99
  // Percentages are of the profiler-attributed total (sections may nest, so
  // rows can legitimately sum past 100%).
  std::string report() const;

  void reset();

 private:
  MetricRegistry* registry_;
  std::string prefix_;
  std::vector<std::unique_ptr<Section>> sections_;
  std::unordered_map<std::string, std::size_t> index_;
};

// RAII: times its scope into a Section. A null section is a no-op, so hot
// paths can open one unconditionally on their (maybe-null) section pointer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Profiler::Section* section)
      : section_(section), start_ns_(section != nullptr ? clock_ns() : 0) {}
  ~ScopedTimer() {
    if (section_ != nullptr) section_->record(clock_ns() - start_ns_);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Profiler::Section* section_;
  std::uint64_t start_ns_;
};

}  // namespace floc::telemetry
