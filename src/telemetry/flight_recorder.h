// FlightRecorder: bounded pre-incident capture for "why did that gate trip".
//
// The recorder continuously keeps a small ring of sampled metric values (one
// row per sample() call, driven by the simulation clock like the
// TimeSeriesSampler), and on a trigger — an AlertEngine rule fire, a
// SimMonitor invariant violation, a bench gate failure, or an explicit
// capture() — freezes a self-contained IncidentBundle: the trigger,
// short/long-window metric deltas bracketed against the ring, the journal
// tail, the last-N trace spans, and a full structured state dump of every
// registered component (QueueDisc::snapshot_state). save() writes all
// captured incidents as one `<bench>.incident.json` file.
//
// Contracts, same as the rest of the telemetry stack:
//  * detached is free: the recorder touches nothing on the packet path —
//    components never see it; sample()/capture() run from the control plane
//    (schedulers, probe loops, gate checks). The zero-alloc parity test
//    (tests/telemetry_fastpath_test.cc) pins that an existing recorder adds
//    no packet-path allocations;
//  * bundles are --jobs byte-identical: every field derives from simulated
//    time, registration order, or sorted-key state dumps — never wall clock
//    or hash iteration order.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/incident_bundle.h"
#include "util/units.h"

namespace floc::json {
class JsonWriter;
}

namespace floc::telemetry {

class MetricRegistry;
class EventJournal;
class Tracer;

class FlightRecorder {
 public:
  struct Config {
    std::size_t metric_ring = 256;   // pre-incident sample rows kept
    std::size_t journal_tail = 64;   // journal events per bundle
    std::size_t span_tail = 64;      // closed spans per bundle
    std::size_t max_incidents = 8;   // bundles kept (further captures counted)
    TimeSec short_window = 2.0;      // delta horizons, in sim seconds
    TimeSec long_window = 10.0;
  };

  // Two overloads rather than a defaulted Config argument: a nested
  // aggregate's member initializers are not usable in a default argument
  // until the enclosing class is complete.
  explicit FlightRecorder(const MetricRegistry* registry);
  FlightRecorder(const MetricRegistry* registry, Config cfg);

  // Optional sections; null leaves the section empty in captured bundles.
  void set_journal(const EventJournal* journal) { journal_ = journal; }
  void set_tracer(const Tracer* tracer) { tracer_ = tracer; }
  // Stamped into the bundle file ("bench" field and default save name).
  void set_bench(std::string bench) { bench_ = std::move(bench); }

  // Register a component state dump. `fn` must emit exactly one JSON value
  // into the writer (QueueDisc::snapshot_state does). Dump order in bundles
  // follows registration order.
  using StateDumper = std::function<void(json::JsonWriter&, TimeSec)>;
  void add_state(std::string name, StateDumper fn);

  // Convenience for anything with snapshot_state(JsonWriter&, TimeSec) —
  // a template so telemetry needs no dependency on netsim's QueueDisc.
  template <typename Q>
  void add_queue(std::string name, const Q* q) {
    add_state(std::move(name), [q](json::JsonWriter& w, TimeSec now) {
      q->snapshot_state(w, now);
    });
  }

  // Snapshot every registered metric into the pre-incident ring (one row).
  void sample(TimeSec now);

  // Drive sample() off a simulation scheduler every `period` until `until`,
  // aligned as t0 + k*period (the TimeSeriesSampler idiom). Sched must
  // outlive the run.
  template <typename Sched>
  void attach(Sched* sched, TimeSec period, TimeSec until) {
    sample(sched->now());
    schedule_next(sched, sched->now(), period, until, 1);
  }

  // Freeze a bundle for `trig`. Returns the stored bundle, or nullptr when
  // max_incidents bundles are already held (the capture is still counted in
  // captured_total / suppressed, so a storm of triggers stays bounded).
  const IncidentBundle* capture(const IncidentTrigger& trig);

  const std::deque<IncidentBundle>& incidents() const { return incidents_; }
  std::uint64_t captured_total() const { return captured_total_; }
  std::uint64_t suppressed() const { return suppressed_; }
  std::size_t ring_rows() const { return ring_.size(); }

  // {"schema": "floc-incident-v1", "bench": ..., "captured_total": N,
  //  "suppressed": M, "incidents": [...]}.
  std::string to_json() const;
  // Write to_json() to `path`; error contract of telemetry::write_text_file.
  bool save(const std::string& path, std::string* err = nullptr) const;

 private:
  struct SampleRow {
    TimeSec time = 0.0;
    std::vector<double> values;  // registry metrics()-order prefix
  };

  template <typename Sched>
  void schedule_next(Sched* sched, TimeSec t0, TimeSec period, TimeSec until,
                     std::uint64_t k) {
    const TimeSec t = t0 + static_cast<double>(k) * period;
    if (t > until) return;
    sched->schedule_at(t, [this, sched, t0, period, until, k] {
      sample(sched->now());
      schedule_next(sched, t0, period, until, k + 1);
    });
  }

  // Latest row sampled at or before `t`; falls back to the oldest row (a
  // clipped window) when the ring does not reach back that far. Null only
  // when the ring is empty.
  const SampleRow* bracket(TimeSec t) const;

  const MetricRegistry* registry_;
  Config cfg_;
  const EventJournal* journal_ = nullptr;
  const Tracer* tracer_ = nullptr;
  std::string bench_ = "bench";

  std::vector<std::pair<std::string, StateDumper>> dumpers_;
  std::deque<SampleRow> ring_;
  std::deque<IncidentBundle> incidents_;
  std::uint64_t captured_total_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace floc::telemetry
