#include "telemetry/tracing.h"

#include <algorithm>

namespace floc::telemetry {

const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kTcpHandshake: return "tcp.syn";
    case SpanKind::kTcpSend: return "tcp.send";
    case SpanKind::kQueue: return "queue";
    case SpanKind::kLinkTx: return "link.tx";
    case SpanKind::kOther: return "other";
  }
  return "?";
}

bool from_string(const std::string& name, SpanKind* out) {
  for (std::size_t i = 0; i < kSpanKindCount; ++i) {
    const SpanKind k = static_cast<SpanKind>(i);
    if (name == to_string(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

Tracer::Tracer(std::size_t max_spans)
    : max_spans_(std::max<std::size_t>(1, max_spans)) {}

SpanId Tracer::begin(TimeSec now, std::uint64_t trace, SpanId parent,
                     SpanKind kind, std::int32_t pid, std::uint64_t tid,
                     std::uint64_t seq, int bytes) {
  const SpanId id = next_id_++;
  Span s;
  s.trace = trace;
  s.id = id;
  s.parent = parent;
  s.kind = kind;
  s.pid = pid;
  s.tid = tid;
  s.begin = now;
  s.seq = seq;
  s.bytes = bytes;
  open_.emplace(id, std::move(s));
  ++begun_;
  ++kind_counts_[static_cast<std::size_t>(kind)];
  return id;
}

void Tracer::annotate(SpanId id, const char* key, const char* value) {
  const auto it = open_.find(id);
  if (it == open_.end()) return;
  std::string& a = it->second.annot;
  if (!a.empty()) a += ';';
  a += key;
  a += '=';
  a += value;
}

void Tracer::end(SpanId id, TimeSec now) {
  const auto it = open_.find(id);
  if (it == open_.end()) return;
  Span s = std::move(it->second);
  open_.erase(it);
  s.end = now;
  push_closed(std::move(s));
}

void Tracer::end_dropped(SpanId id, TimeSec now, std::uint32_t status,
                         const char* reason) {
  const auto it = open_.find(id);
  if (it == open_.end()) return;
  annotate(id, "drop", reason);
  Span s = std::move(it->second);
  open_.erase(it);
  s.end = now;
  s.status = status;
  ++dropped_;
  push_closed(std::move(s));
}

SpanId Tracer::complete(TimeSec begin, TimeSec end, std::uint64_t trace,
                        SpanId parent, SpanKind kind, std::int32_t pid,
                        std::uint64_t tid, std::uint64_t seq, int bytes) {
  const SpanId id = next_id_++;
  Span s;
  s.trace = trace;
  s.id = id;
  s.parent = parent;
  s.kind = kind;
  s.pid = pid;
  s.tid = tid;
  s.begin = begin;
  s.end = end;
  s.seq = seq;
  s.bytes = bytes;
  ++begun_;
  ++kind_counts_[static_cast<std::size_t>(kind)];
  push_closed(std::move(s));
  return id;
}

void Tracer::push_closed(Span&& s) {
  if (closed_.size() >= max_spans_) {
    closed_.pop_front();
    overflowed_ = true;
  }
  ++closed_count_;
  closed_.push_back(std::move(s));
}

const Span* Tracer::find(SpanId id) const {
  for (const Span& s : closed_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

void Tracer::clear() {
  open_.clear();
  closed_.clear();
  begun_ = closed_count_ = dropped_ = 0;
  std::fill(kind_counts_, kind_counts_ + kSpanKindCount, 0);
  overflowed_ = false;
  next_id_ = 1;
}

}  // namespace floc::telemetry
