#include "telemetry/alloc_counter.h"

namespace floc::telemetry {

AllocCounters& alloc_counters() {
  // Constant-initialized function-local: no static-init-order hazard even
  // though operator new replacements may run before main().
  static AllocCounters counters;
  return counters;
}

}  // namespace floc::telemetry
