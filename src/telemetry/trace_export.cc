#include "telemetry/trace_export.h"

#include <cinttypes>
#include <cstdio>

#include "telemetry/file_util.h"

namespace floc::telemetry {

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

// Shared "pid":..,"tid":..,"ts":.. suffix; ts is microseconds of sim time.
void append_lane(std::string& out, const Span& s, TimeSec t) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "\"pid\": %d, \"tid\": %" PRIu64 ", \"ts\": %.3f",
                s.pid, s.tid, t * 1e6);
  out += buf;
}

void append_args(std::string& out, const Span& s) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "\"args\": {\"trace\": %" PRIu64 ", \"span\": %" PRIu64
                ", \"parent\": %" PRIu64 ", \"seq\": %" PRIu64
                ", \"bytes\": %d, \"status\": %u, \"annot\": \"",
                s.trace, s.id, s.parent, s.seq, s.bytes, s.status);
  out += buf;
  append_json_escaped(out, s.annot);
  out += "\"}";
}

void append_event_prefix(std::string& out, const Span& s, char ph) {
  char buf[64];
  out += "{\"name\": \"";
  out += to_string(s.kind);
  out += "\", \"cat\": \"";
  out += to_string(s.kind);
  std::snprintf(buf, sizeof(buf), "\", \"ph\": \"%c\", ", ph);
  out += buf;
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer,
                              const TraceExportOptions& opts) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  const auto sep = [&out, &first] {
    if (!first) out += ",\n";
    first = false;
    out += "  ";
  };

  char buf[128];
  for (const auto& [pid, name] : opts.process_names) {
    sep();
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, "
                  "\"args\": {\"name\": \"",
                  pid);
    out += buf;
    append_json_escaped(out, name);
    out += "\"}}";
  }

  for (const Span& s : tracer.spans()) {
    if (s.kind == SpanKind::kLinkTx) {
      // Serialization intervals render as complete slices.
      sep();
      append_event_prefix(out, s, 'X');
      append_lane(out, s, s.begin);
      std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f, ",
                    s.duration() * 1e6);
      out += buf;
      append_args(out, s);
      out += '}';
      continue;
    }
    // Everything else overlaps arbitrarily on its lane (many segments in
    // flight per flow, many packets resident per queue): async pairs keyed
    // by the span id keep them individually addressable.
    sep();
    append_event_prefix(out, s, 'b');
    std::snprintf(buf, sizeof(buf), "\"id\": \"0x%" PRIx64 "\", ", s.id);
    out += buf;
    append_lane(out, s, s.begin);
    out += ", ";
    append_args(out, s);
    out += '}';
    sep();
    append_event_prefix(out, s, 'e');
    std::snprintf(buf, sizeof(buf), "\"id\": \"0x%" PRIx64 "\", ", s.id);
    out += buf;
    append_lane(out, s, s.end);
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const Tracer& tracer, const std::string& path,
                        const TraceExportOptions& opts, std::string* err) {
  return write_text_file(path, chrome_trace_json(tracer, opts), err);
}

std::string spans_csv(const Tracer& tracer) {
  std::string out = "trace,span,parent,kind,pid,tid,begin,end,seq,bytes,status,annot\n";
  char buf[192];
  for (const Span& s : tracer.spans()) {
    std::snprintf(buf, sizeof(buf),
                  "%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%s,%d,%" PRIu64
                  ",%.9g,%.9g,%" PRIu64 ",%d,%u,",
                  s.trace, s.id, s.parent, to_string(s.kind), s.pid, s.tid,
                  s.begin, s.end, s.seq, s.bytes, s.status);
    out += buf;
    // Annotations are "key=value;..." — no commas/quotes by construction,
    // but guard anyway so a hostile annotation cannot corrupt the CSV.
    for (char c : s.annot) out += (c == ',' || c == '\n') ? ';' : c;
    out += '\n';
  }
  return out;
}

bool write_spans_csv(const Tracer& tracer, const std::string& path,
                     std::string* err) {
  return write_text_file(path, spans_csv(tracer), err);
}

}  // namespace floc::telemetry
