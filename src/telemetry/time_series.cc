#include "telemetry/time_series.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "telemetry/file_util.h"

namespace floc::telemetry {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

double histogram_column(const LogHistogram& h, int which) {
  switch (which) {
    case 0: return static_cast<double>(h.count());
    case 1: return h.quantile(0.50);
    case 2: return h.quantile(0.90);
    case 3: return h.quantile(0.99);
    case 4: return h.quantile(0.999);
  }
  return kNaN;
}

const char* kHistSuffix[5] = {".count", ".p50", ".p90", ".p99", ".p999"};
}  // namespace

TimeSeriesSampler::TimeSeriesSampler(MetricRegistry* registry, TimeSec period)
    : registry_(registry), period_(period) {}

void TimeSeriesSampler::refresh_columns() {
  // The registry only appends, so existing column indices never move; new
  // metrics extend the column list at the tail.
  std::size_t expect = 0;
  for (const auto& m : registry_->metrics()) {
    expect += m->kind == MetricKind::kHistogram ? 5 : 1;
  }
  if (expect == columns_.size()) return;
  columns_.clear();
  columns_.reserve(expect);
  for (const auto& m : registry_->metrics()) {
    if (m->kind == MetricKind::kHistogram) {
      for (const char* suffix : kHistSuffix) columns_.push_back(m->name + suffix);
    } else {
      columns_.push_back(m->name);
    }
  }
}

void TimeSeriesSampler::sample(TimeSec now) {
  refresh_columns();
  Row row;
  row.values.reserve(columns_.size());
  for (const auto& m : registry_->metrics()) {
    switch (m->kind) {
      case MetricKind::kCounter:
        row.values.push_back(static_cast<double>(m->counter->value()));
        break;
      case MetricKind::kGauge:
        row.values.push_back(m->gauge->value());
        break;
      case MetricKind::kGaugeFn:
        row.values.push_back(m->fn ? m->fn() : kNaN);
        break;
      case MetricKind::kHistogram:
        for (int i = 0; i < 5; ++i)
          row.values.push_back(histogram_column(*m->histogram, i));
        break;
    }
  }
  times_.push_back(now);
  rows_.push_back(std::move(row));
}

void TimeSeriesSampler::add_rate_column(const std::string& name) {
  if (std::find(rate_columns_.begin(), rate_columns_.end(), name) ==
      rate_columns_.end()) {
    rate_columns_.push_back(name);
  }
}

double TimeSeriesSampler::value(std::size_t row, const std::string& column) const {
  if (row >= rows_.size()) return kNaN;
  // Derived rate column?
  for (const std::string& src : rate_columns_) {
    if (column == src + ".rate") {
      if (row == 0) return kNaN;
      const double v1 = value(row, src);
      const double v0 = value(row - 1, src);
      const double dt = times_[row] - times_[row - 1];
      return dt > 0.0 ? (v1 - v0) / dt : kNaN;
    }
  }
  const auto it = std::find(columns_.begin(), columns_.end(), column);
  if (it == columns_.end()) return kNaN;
  const std::size_t col = static_cast<std::size_t>(it - columns_.begin());
  if (col >= rows_[row].values.size()) return kNaN;  // registered later
  return rows_[row].values[col];
}

std::string TimeSeriesSampler::to_csv() const {
  std::string out = "time";
  for (const std::string& c : columns_) {
    out += ',';
    out += c;
  }
  for (const std::string& src : rate_columns_) {
    out += ',';
    out += src;
    out += ".rate";
  }
  out += '\n';
  char buf[64];
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    std::snprintf(buf, sizeof(buf), "%.9g", times_[r]);
    out += buf;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const double v = c < rows_[r].values.size() ? rows_[r].values[c] : kNaN;
      if (std::isnan(v)) {
        out += ",";
      } else {
        std::snprintf(buf, sizeof(buf), ",%.9g", v);
        out += buf;
      }
    }
    for (const std::string& src : rate_columns_) {
      const double v = value(r, src + ".rate");
      if (std::isnan(v)) {
        out += ",";
      } else {
        std::snprintf(buf, sizeof(buf), ",%.9g", v);
        out += buf;
      }
    }
    out += '\n';
  }
  return out;
}

std::string TimeSeriesSampler::to_json() const {
  std::string out = "[\n";
  char buf[64];
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += r == 0 ? "  {" : ",\n  {";
    std::snprintf(buf, sizeof(buf), "\"time\": %.9g", times_[r]);
    out += buf;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const double v = c < rows_[r].values.size() ? rows_[r].values[c] : kNaN;
      out += ", \"";
      out += columns_[c];
      out += "\": ";
      if (std::isnan(v)) {
        out += "null";
      } else {
        std::snprintf(buf, sizeof(buf), "%.9g", v);
        out += buf;
      }
    }
    for (const std::string& src : rate_columns_) {
      const double v = value(r, src + ".rate");
      out += ", \"";
      out += src;
      out += ".rate\": ";
      if (std::isnan(v)) {
        out += "null";
      } else {
        std::snprintf(buf, sizeof(buf), "%.9g", v);
        out += buf;
      }
    }
    out += '}';
  }
  out += "\n]\n";
  return out;
}

bool TimeSeriesSampler::write_csv(const std::string& path) const {
  return write_text_file(path, to_csv());
}

namespace {
bool has_suffix(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}
}  // namespace

bool TimeSeriesSampler::save(const std::string& path, std::string* err) const {
  return write_text_file(path, has_suffix(path, ".json") ? to_json() : to_csv(),
                         err);
}

}  // namespace floc::telemetry
