// Scoped allocation counting for fast-path guarantees.
//
// The repo's telemetry contract says a detached component allocates nothing
// on the packet path, and the perf suite tracks "allocations per kilopacket"
// as a gated BENCH_perf.json metric. Both need a way to count global
// operator new/delete calls — but replacing those operators is program-wide,
// so the replacement cannot live in a library that every binary links.
//
// Split: this header/cc owns the process-wide atomic counters and the
// snapshot-delta guard; a binary that wants counting (bench/perf_suite, the
// fastpath test) opts in by placing FLOC_DEFINE_COUNTING_ALLOCATOR once at
// namespace scope in exactly one of its TUs, which defines operator
// new/delete replacements that tick the counters. In a binary without the
// macro the counters never move: ScopedAllocCount still constructs, reports
// zero deltas, and — being two u64 loads — is itself allocation-free either
// way (pinned by tests/telemetry_fastpath_test.cc).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace floc::telemetry {

// Process-wide counters. Relaxed ordering: totals only, no synchronization.
struct AllocCounters {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> bytes{0};
};

AllocCounters& alloc_counters();

// Called from the FLOC_DEFINE_COUNTING_ALLOCATOR operator replacements.
inline void note_alloc(std::size_t bytes) {
  AllocCounters& c = alloc_counters();
  c.allocs.fetch_add(1, std::memory_order_relaxed);
  c.bytes.fetch_add(bytes, std::memory_order_relaxed);
}

inline void note_free() {
  alloc_counters().frees.fetch_add(1, std::memory_order_relaxed);
}

// Snapshot-delta guard: construct before the measured region, read deltas
// after. No heap use of its own.
class ScopedAllocCount {
 public:
  ScopedAllocCount() { reset(); }

  void reset() {
    const AllocCounters& c = alloc_counters();
    allocs0_ = c.allocs.load(std::memory_order_relaxed);
    frees0_ = c.frees.load(std::memory_order_relaxed);
    bytes0_ = c.bytes.load(std::memory_order_relaxed);
  }

  std::uint64_t allocs() const {
    return alloc_counters().allocs.load(std::memory_order_relaxed) - allocs0_;
  }
  std::uint64_t frees() const {
    return alloc_counters().frees.load(std::memory_order_relaxed) - frees0_;
  }
  std::uint64_t bytes() const {
    return alloc_counters().bytes.load(std::memory_order_relaxed) - bytes0_;
  }

 private:
  std::uint64_t allocs0_ = 0;
  std::uint64_t frees0_ = 0;
  std::uint64_t bytes0_ = 0;
};

}  // namespace floc::telemetry

// Place once, at namespace scope, in ONE translation unit of a binary that
// wants real counts. (Definitions of replaceable global operators must not be
// inline, hence a macro rather than a header definition.)
#define FLOC_DEFINE_COUNTING_ALLOCATOR                                   \
  void* operator new(std::size_t n) {                                    \
    ::floc::telemetry::note_alloc(n);                                    \
    if (void* p = std::malloc(n ? n : 1)) return p;                      \
    throw std::bad_alloc();                                              \
  }                                                                      \
  void operator delete(void* p) noexcept {                               \
    if (p != nullptr) {                                                  \
      ::floc::telemetry::note_free();                                    \
      std::free(p);                                                      \
    }                                                                    \
  }                                                                      \
  void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
