#include "telemetry/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace floc::telemetry {

std::uint64_t clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Profiler::Profiler(MetricRegistry* registry, std::string prefix)
    : registry_(registry), prefix_(std::move(prefix)) {}

Profiler::Section* Profiler::section(const std::string& name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return sections_[it->second].get();
  auto s = std::make_unique<Section>();
  s->name = name;
  if (registry_ != nullptr) {
    s->hist = registry_->histogram(prefix_ + "." + name + ".ns");
  }
  index_.emplace(name, sections_.size());
  sections_.push_back(std::move(s));
  return sections_.back().get();
}

std::uint64_t Profiler::total_ns() const {
  std::uint64_t total = 0;
  for (const auto& s : sections_) total += s->total_ns;
  return total;
}

namespace {

std::string format_ns(double ns) {
  char buf[32];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  }
  return buf;
}

}  // namespace

std::string Profiler::report() const {
  std::vector<const Section*> rows;
  rows.reserve(sections_.size());
  for (const auto& s : sections_) rows.push_back(s.get());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Section* a, const Section* b) {
                     return a->total_ns > b->total_ns;
                   });

  const double total = static_cast<double>(std::max<std::uint64_t>(1, total_ns()));
  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%-28s %12s %10s %6s %9s %9s %9s %9s\n",
                "section", "calls", "total", "%", "mean", "p50", "p95", "p99");
  out += buf;
  for (const Section* s : rows) {
    const double mean =
        s->calls ? static_cast<double>(s->total_ns) / static_cast<double>(s->calls) : 0.0;
    // Percentiles come from the per-section registry histogram; without an
    // attached registry there is no distribution to quote, only totals.
    const bool dist = s->hist != nullptr;
    std::snprintf(buf, sizeof(buf),
                  "%-28s %12llu %10s %5.1f%% %9s %9s %9s %9s\n",
                  s->name.c_str(), static_cast<unsigned long long>(s->calls),
                  format_ns(static_cast<double>(s->total_ns)).c_str(),
                  100.0 * static_cast<double>(s->total_ns) / total,
                  format_ns(mean).c_str(),
                  dist ? format_ns(s->hist->quantile(0.50)).c_str() : "-",
                  dist ? format_ns(s->hist->quantile(0.95)).c_str() : "-",
                  dist ? format_ns(s->hist->quantile(0.99)).c_str() : "-");
    out += buf;
  }
  return out;
}

void Profiler::reset() {
  for (const auto& s : sections_) {
    s->calls = 0;
    s->total_ns = 0;
    if (s->hist != nullptr) s->hist->reset();
  }
}

}  // namespace floc::telemetry
