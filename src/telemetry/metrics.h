// Metric primitives and the MetricRegistry: the naming/ownership layer every
// simulator component publishes its numbers through.
//
// Design constraints (see docs/INTERNALS.md, "Observability"):
//  * hot paths pay a single pointer-null test when telemetry is off — all
//    metric handles are plain pointers into the registry, no virtual calls;
//  * polled gauges (gauge_fn) cost *nothing* on the hot path: the component
//    exposes an accessor and the TimeSeriesSampler evaluates it at sample
//    time, so instrumenting an existing counter never duplicates its state;
//  * histograms are log-bucketed (DDSketch-style) with a configurable bound
//    on the relative error of any reported quantile, so p50/p90/p99/p999 of
//    values spanning nanoseconds to seconds stay cheap and accurate.
//
// Metric names are hierarchical dotted strings, lowercase, with the component
// instance first: "floc.drops.token", "link.target.bytes_sent",
// "sim.event_ns". Registering the same name twice returns the same handle.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/units.h"

namespace floc::telemetry {

// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Log-bucketed histogram with bounded relative error (DDSketch-style).
//
// Bucket i covers (gamma^(i-1), gamma^i] with gamma = (1+eps)/(1-eps); the
// bucket midpoint 2*gamma^i/(gamma+1) is within relative error eps of every
// value in the bucket, so quantile() is eps-accurate for any q. Values below
// `min_value` (including zero) land in a dedicated zero bucket reported as
// 0.0. Negative values are clamped to the zero bucket.
class LogHistogram {
 public:
  explicit LogHistogram(double relative_error = 0.01,
                        double min_value = 1e-9);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double relative_error() const { return eps_; }

  // Value at quantile q in [0, 1], within `relative_error` of the exact
  // order statistic. q <= 0 returns ~min, q >= 1 returns ~max.
  double quantile(double q) const;

  void reset();

 private:
  int bucket_index(double v) const;
  double bucket_value(int index) const;

  double eps_;
  double min_value_;
  double gamma_;
  double inv_log_gamma_;
  double midpoint_factor_;  // 2*gamma/(gamma+1), applied to gamma^(i-1)

  std::uint64_t zero_count_ = 0;
  int offset_ = 0;                     // bucket index of counts_[0]
  std::vector<std::uint64_t> counts_;  // dense, grown on demand

  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kGaugeFn, kHistogram };

const char* to_string(MetricKind k);

// Owns all metrics of one run; components register by name and keep the
// returned raw pointer (stable for the registry's lifetime).
class MetricRegistry {
 public:
  struct Metric {
    std::string name;
    MetricKind kind;
    // Exactly one of these is non-null / non-empty, per `kind`.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::function<double()> fn;
    std::unique_ptr<LogHistogram> histogram;
  };

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  // Polled gauge: `fn` is evaluated at sample/export time only. Re-registering
  // an existing name replaces the callback (components outlive samplers, but
  // a rebuilt component must be able to re-point its gauge).
  void gauge_fn(const std::string& name, std::function<double()> fn);
  LogHistogram* histogram(const std::string& name, double relative_error = 0.01);

  // Registration order; stable across the registry's lifetime.
  const std::vector<std::unique_ptr<Metric>>& metrics() const { return metrics_; }
  const Metric* find(const std::string& name) const;
  std::size_t size() const { return metrics_.size(); }

  // Current value of a scalar metric (counter/gauge/gauge_fn); histograms
  // report their count. Missing names return 0.
  double value(const std::string& name) const;

 private:
  Metric* get_or_create(const std::string& name, MetricKind kind);

  std::vector<std::unique_ptr<Metric>> metrics_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace floc::telemetry
