#include "telemetry/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace floc::telemetry {

namespace {

void fill_err(std::string* err, const std::string& path) {
  if (err != nullptr) *err = path + ": " + std::strerror(errno);
}

}  // namespace

bool write_text_file(const std::string& path, const std::string& text,
                     std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    fill_err(err, path);
    return false;
  }
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  if (!wrote) fill_err(err, path);
  const bool closed = std::fclose(f) == 0;
  if (wrote && !closed) fill_err(err, path);
  return wrote && closed;
}

}  // namespace floc::telemetry
