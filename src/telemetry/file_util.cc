#include "telemetry/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace floc::telemetry {

namespace {

void fill_err(std::string* err, const std::string& path) {
  if (err != nullptr) *err = path + ": " + std::strerror(errno);
}

}  // namespace

bool write_text_file(const std::string& path, const std::string& text,
                     std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    fill_err(err, path);
    return false;
  }
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  if (!wrote) fill_err(err, path);
  const bool closed = std::fclose(f) == 0;
  if (wrote && !closed) fill_err(err, path);
  return wrote && closed;
}

bool read_text_file(const std::string& path, std::string* text,
                    std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    fill_err(err, path);
    return false;
  }
  text->clear();
  char buf[1 << 14];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text->append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  if (!read_ok) fill_err(err, path);
  std::fclose(f);
  return read_ok;
}

}  // namespace floc::telemetry
