// Causal span tracing: follow one packet (or one flow) through
// source -> queue -> link -> ... -> ACK, with begin/end timestamps and
// component annotations, so "which packets survive the flooded link and why"
// can be answered per packet instead of only in aggregate.
//
// A span is a timed interval owned by one component: a TCP segment's
// send-to-ACK lifetime, a packet's residency in a queue discipline, a link
// serialization+propagation. Spans form a causal tree via parent ids; the
// packet carries its current span in `Packet::span` (a plain
// `floc::SpanContext`, three words, zero when tracing is detached), so each
// hop parents its span under the previous one without any global lookup.
//
// Layering: this header is component-agnostic — it knows nothing about
// Packet, Link, or DropReason. The netsim/transport/core glue begins, ends,
// and annotates spans behind the same pointer-null fast path the metric
// registry established: a component holds a `Tracer*` that is null by
// default, and the detached packet path performs zero tracing work and zero
// allocations (pinned by tests/telemetry_fastpath_test.cc).
//
// Storage is a bounded ring of closed spans (oldest evicted under pressure;
// per-kind counts keep covering everything) plus an open-span table keyed by
// span id. `end()` on an unknown or already-closed id is a no-op, so two
// layers may both try to close a span (e.g. a queue's drop hook and the link
// that offered the packet) without coordination.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/units.h"

namespace floc::telemetry {

using SpanId = std::uint64_t;

enum class SpanKind : std::uint8_t {
  kTcpHandshake,  // SYN sent -> SYN-ACK received
  kTcpSend,       // data segment transmitted -> covering ACK received
  kQueue,         // offered to a queue discipline -> dequeued (or dropped)
  kLinkTx,        // serialization start -> delivery at the far node
  kOther,         // glue-defined
};
inline constexpr std::size_t kSpanKindCount = 5;

const char* to_string(SpanKind k);
// Inverse of to_string; returns false (and leaves *out alone) for unknown
// names. Exhaustively round-tripped in tests so new kinds cannot print "?".
bool from_string(const std::string& name, SpanKind* out);

struct Span {
  std::uint64_t trace = 0;  // trace id; by convention the flow id
  SpanId id = 0;
  SpanId parent = 0;        // 0 = root
  SpanKind kind = SpanKind::kOther;
  std::int32_t pid = 0;     // owning process lane; by convention the node id
  std::uint64_t tid = 0;    // sub-lane; by convention the link ordinal or flow
  TimeSec begin = 0.0;
  TimeSec end = -1.0;       // < 0 while the span is still open
  std::uint64_t seq = 0;    // transport sequence number, when meaningful
  int bytes = 0;
  // 0 = completed normally; nonzero = terminated abnormally with a
  // glue-defined code (the queue glue uses DropReason ordinal + 1).
  std::uint32_t status = 0;
  // Accumulated "key=value" annotations, ';'-separated, appended by
  // annotate(). Components put their verdicts here (FLoc: admission mode,
  // token-bucket fill, capability check, drop reason).
  std::string annot;

  bool open() const { return end < 0.0; }
  double duration() const { return open() ? 0.0 : end - begin; }
};

class Tracer {
 public:
  explicit Tracer(std::size_t max_spans = std::size_t{1} << 18);

  // Open a span; returns its id (never 0). `parent` 0 makes it a root.
  SpanId begin(TimeSec now, std::uint64_t trace, SpanId parent, SpanKind kind,
               std::int32_t pid, std::uint64_t tid, std::uint64_t seq = 0,
               int bytes = 0);

  // Append "key=value" to an open span's annotation. No-op once closed.
  void annotate(SpanId id, const char* key, const char* value);
  void annotate(SpanId id, const char* key, const std::string& value) {
    annotate(id, key, value.c_str());
  }

  // Close a span normally. Unknown / already-closed ids are a no-op, so
  // multiple layers can race to close the same span safely.
  void end(SpanId id, TimeSec now);

  // Close a span abnormally: status code plus a "drop=<reason>" annotation.
  void end_dropped(SpanId id, TimeSec now, std::uint32_t status,
                   const char* reason);

  // Record a span whose interval is already known (e.g. link serialization,
  // where the landing time is computed at transmission start).
  SpanId complete(TimeSec begin, TimeSec end, std::uint64_t trace,
                  SpanId parent, SpanKind kind, std::int32_t pid,
                  std::uint64_t tid, std::uint64_t seq = 0, int bytes = 0);

  // Closed spans, oldest first (ring-bounded: see overflowed()).
  const std::deque<Span>& spans() const { return closed_; }
  std::size_t open_count() const { return open_.size(); }

  // Lookup a CLOSED span by id (tests, exporters); nullptr if evicted/open.
  const Span* find(SpanId id) const;

  // Lifetime counters; unaffected by ring eviction.
  std::uint64_t begun() const { return begun_; }
  std::uint64_t closed() const { return closed_count_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t count(SpanKind k) const {
    return kind_counts_[static_cast<std::size_t>(k)];
  }
  bool overflowed() const { return overflowed_; }

  void clear();

 private:
  void push_closed(Span&& s);

  std::size_t max_spans_;
  SpanId next_id_ = 1;
  std::unordered_map<SpanId, Span> open_;
  std::deque<Span> closed_;
  std::uint64_t begun_ = 0;
  std::uint64_t closed_count_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t kind_counts_[kSpanKindCount] = {};
  bool overflowed_ = false;
};

}  // namespace floc::telemetry
