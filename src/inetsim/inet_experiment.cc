#include "inetsim/inet_experiment.h"

#include <cmath>

#include "topology/bot_distribution.h"

namespace floc {
namespace {

struct BuiltWorld {
  AsGraph graph;
  SourcePlacement placement;
  TickConfig base;
};

BuiltWorld build_world(const InetExperimentConfig& cfg) {
  SkitterConfig scfg;
  scfg.preset = cfg.preset;
  scfg.as_count = std::max(300, static_cast<int>(2000 * std::sqrt(cfg.scale)));
  scfg.seed = cfg.seed;
  BuiltWorld w{generate_skitter_tree(scfg), {}, {}};

  PlacementConfig pcfg;
  pcfg.legit_sources = std::max(100, static_cast<int>(10000 * cfg.scale));
  pcfg.legit_ases = std::max(20, static_cast<int>(200 * std::sqrt(cfg.scale)));
  pcfg.attack_sources = std::max(1000, static_cast<int>(100000 * cfg.scale));
  pcfg.attack_ases =
      std::max(10, static_cast<int>(cfg.attack_ases * std::sqrt(cfg.scale)));
  pcfg.legit_overlap = cfg.legit_overlap;
  pcfg.seed = cfg.seed ^ 0xB07;
  w.placement = place_sources(w.graph, pcfg);

  TickConfig t;
  t.bottleneck_capacity = std::max(200, static_cast<int>(16000 * cfg.scale));
  t.internal_capacity = 4 * t.bottleneck_capacity;
  t.ticks = cfg.ticks;
  t.warmup_ticks = cfg.ticks / 3;
  t.seed = cfg.seed ^ 0x51;
  w.base = t;
  return w;
}

}  // namespace

std::vector<InetScenarioRow> run_inet_experiment(
    const InetExperimentConfig& cfg) {
  BuiltWorld w = build_world(cfg);

  // Aggregation budgets: the paper's A-200 / A-100 are fractions of the
  // ~500 active origin ASes; keep the same proportion under scaling.
  const int active_paths =
      static_cast<int>(w.placement.legit_as_ids.size() +
                       w.placement.attack_as_ids.size());
  const int a_hi = std::max(4, active_paths * 200 / 500);
  const int a_lo = std::max(2, active_paths * 100 / 500);

  struct Spec {
    std::string label;
    TickPolicy policy;
    int guaranteed;
  };
  const Spec specs[] = {
      {"ND", TickPolicy::kNoDefense, 0},
      {"FF", TickPolicy::kFairPriority, 0},
      {"NA", TickPolicy::kFloc, 0},
      {"A-" + std::to_string(a_hi), TickPolicy::kFloc, a_hi},
      {"A-" + std::to_string(a_lo), TickPolicy::kFloc, a_lo},
  };

  std::vector<InetScenarioRow> rows;
  for (const Spec& s : specs) {
    TickConfig t = w.base;
    t.policy = s.policy;
    t.guaranteed_paths = s.guaranteed;
    TickSim sim(w.graph, w.placement, t);
    rows.push_back(InetScenarioRow{s.label, sim.run()});
  }
  return rows;
}

TopologyStats topology_stats(const InetExperimentConfig& cfg) {
  BuiltWorld w = build_world(cfg);
  TopologyStats st;
  st.preset = to_string(cfg.preset);
  st.ases = w.graph.size();
  st.max_depth = w.graph.max_depth();
  st.mean_depth = w.graph.mean_depth();
  st.attack_ases = static_cast<int>(w.placement.attack_as_ids.size());
  st.legit_in_attack_ases = w.placement.legit_in_attack_ases();
  st.bot_concentration_top17pct = w.placement.bot_concentration(0.17);
  double ad = 0.0;
  for (int as : w.placement.attack_as_ids) ad += w.graph.node(as).depth;
  st.mean_attack_depth =
      st.attack_ases ? ad / st.attack_ases : 0.0;
  double ld = 0.0;
  for (int as : w.placement.legit_as_ids) ld += w.graph.node(as).depth;
  st.mean_legit_depth = w.placement.legit_as_ids.empty()
                            ? 0.0
                            : ld / static_cast<double>(w.placement.legit_as_ids.size());
  return st;
}

}  // namespace floc
