// One-call driver for a Section VII experiment: topology preset + source
// placement + policy matrix, with a scale knob so the default bench suite
// completes quickly while --paper reproduces the published scale
// (10k legitimate sources / 200 ASes, 100k bots / 100 or 300 ASes,
// 16,000 packets-per-tick bottleneck).
#pragma once

#include <string>
#include <vector>

#include "inetsim/tick_sim.h"
#include "topology/skitter_gen.h"

namespace floc {

struct InetExperimentConfig {
  SkitterPreset preset = SkitterPreset::kFRoot;
  int attack_ases = 100;       // 100 localized (Fig. 13) / 300 wide (Fig. 14)
  double legit_overlap = 0.3;  // 0.0 for the separated topologies (Fig. 15)
  double scale = 1.0;          // scales populations and capacity together
  int ticks = 3000;
  std::uint64_t seed = 5;
};

struct InetScenarioRow {
  std::string label;  // ND / FF / NA / A-200 / A-100
  TickResults results;
};

// Runs the paper's five-policy comparison (ND, FF, FLoc-NA, A-200, A-100)
// on the configured topology. Aggregation budgets scale with `scale`.
std::vector<InetScenarioRow> run_inet_experiment(const InetExperimentConfig& cfg);

// Topology statistics used by the Fig. 11/12 harness.
struct TopologyStats {
  std::string preset;
  int ases = 0;
  int max_depth = 0;
  double mean_depth = 0.0;
  int attack_ases = 0;
  double mean_attack_depth = 0.0;
  double mean_legit_depth = 0.0;
  double bot_concentration_top17pct = 0.0;  // CBL-skew check
  int legit_in_attack_ases = 0;
};

TopologyStats topology_stats(const InetExperimentConfig& cfg);

}  // namespace floc
