// Internet-scale discrete-time simulator (Section VII-B).
//
// Faithful to the paper's design: time advances in ticks (≈5 ms); every
// packet moves exactly one router (AS) hop per tick; a router processes all
// packets that arrived within a tick at once and, when drops are necessary,
// removes uniformly random packets from that tick's pool. The bottleneck
// (target) link serves `bottleneck_capacity` packets per tick — 16,000 in
// the paper, corresponding to a 40 Gbps OC-768 at 5 ms ticks.
//
// Sources: legitimate flows follow a coarse TCP window model (w packets per
// RTT epoch; halve on any drop in the epoch, else +1), attack bots send at a
// constant per-tick rate. Defense policies at the target link:
//   * kNoDefense  — FIFO, uniform random overflow drops (paper "ND");
//   * kFairPriority — per-flow fairness via two priorities: legitimate
//     packets high, attack packets high only within their per-flow fair
//     share (paper "FF");
//   * kFloc — per-origin-AS (path) fair allocation with conformance-driven
//     aggregation (reusing core::Aggregator) and MTD-style preferential
//     service probability min{1, fair/rate} for over-rate flows (paper
//     "NA" with guaranteed_paths=0, "A-200"/"A-100" otherwise).
#pragma once

#include <cstdint>
#include <vector>

#include "topology/as_graph.h"
#include "topology/bot_distribution.h"
#include "util/rng.h"

namespace floc {

enum class TickPolicy { kNoDefense, kFairPriority, kFloc };

const char* to_string(TickPolicy p);

struct TickConfig {
  TickPolicy policy = TickPolicy::kFloc;
  int guaranteed_paths = 0;        // 0 = no aggregation; else |S|_max
  int bottleneck_capacity = 16000; // packets per tick at the target link
  // Internal (transit) links are provisioned above the target link so the
  // attack's chosen bottleneck is the target; links inside heavily
  // contaminated subtrees can still clog and shed bot traffic early.
  int internal_capacity = 64000;   // packets per tick on every other link
  int queue_buffer_factor = 2;     // carryover buffer = factor * capacity
  int ticks = 2000;
  int warmup_ticks = 400;
  double bot_rate = 0.5;           // packets per tick per bot
  int legit_max_window = 64;
  // Router-level hops per AS-level hop: the paper's Skitter paths are
  // router paths (~15-30 hops, 75-150 ms at 5 ms ticks), while our topology
  // is AS-level; this factor restores realistic RTTs for the TCP model.
  int router_hops_per_as = 2;
  int control_every = 50;          // ticks between FLoc control updates
  double conformance_beta = 0.2;
  double attack_over_rate = 2.0;   // flow classified attack beyond this
  double e_th = 0.5;
  std::uint64_t seed = 3;
};

struct TickResults {
  // Fractions of the bottleneck link capacity over the measured interval.
  double legit_legit_frac = 0.0;   // legitimate flows, legitimate-AS origin
  double legit_attack_frac = 0.0;  // legitimate flows inside attack ASes
  double attack_frac = 0.0;        // bot traffic
  double utilization = 0.0;        // everything delivered / capacity

  std::uint64_t delivered_legit_legit = 0;
  std::uint64_t delivered_legit_attack = 0;
  std::uint64_t delivered_attack = 0;
  std::uint64_t dropped_internal = 0;  // drops before the target link
  std::uint64_t dropped_target = 0;
  int aggregate_count = 0;             // path identifiers after aggregation
  double mean_legit_window = 0.0;
};

class TickSim {
 public:
  TickSim(const AsGraph& graph, const SourcePlacement& placement,
          TickConfig cfg);

  TickResults run();

  // Introspection (tests / diagnostics).
  struct AsView {
    double conformance;
    int flows;
    int group;
    double group_weight;
  };
  AsView as_view(int as) const {
    const auto& st = as_state_[static_cast<std::size_t>(as)];
    return AsView{st.conformance, st.flows, st.agg_group,
                  st.agg_group >= 0
                      ? group_weight_[static_cast<std::size_t>(st.agg_group)]
                      : 0.0};
  }
  int group_count() const { return group_count_; }

 private:
  struct Flow {
    std::int32_t origin_as;
    bool is_bot;
    bool in_attack_as;
    // Legit TCP model:
    double window = 1.0;
    int rtt_ticks = 8;
    int next_epoch = 0;
    bool dropped_this_epoch = false;
    // Bot emission accumulator:
    double emit_credit = 0.0;
    // Measured send rate (EWMA pkts/tick) for FLoc classification:
    double rate_est = 0.0;
    std::uint64_t arrived_interval = 0;
  };

  void emit_sources(int tick);
  void forward_internal(int tick);
  void target_link_service(int tick, bool measuring);
  void floc_control(int tick);

  const AsGraph& graph_;
  TickConfig cfg_;
  Rng rng_;

  std::vector<Flow> flows_;
  // Per-AS egress state: carryover queue + this-tick arrivals (flow ids).
  std::vector<std::vector<std::int32_t>> queue_;
  std::vector<std::vector<std::int32_t>> arrivals_;
  std::vector<std::vector<std::int32_t>> arrivals_next_;

  // FLoc per-origin-AS state.
  struct AsState {
    double conformance = 1.0;
    int flows = 0;
    std::int32_t agg_group = -1;  // index into group weights
  };
  std::vector<AsState> as_state_;
  std::vector<double> group_weight_;  // bandwidth shares per aggregate group
  std::vector<double> group_flows_;   // accounting flows per group
  std::vector<double> group_credit_;  // DRR carryover credit (packets)
  std::vector<std::int32_t> spare_candidates_;  // scratch (target link)
  int group_count_ = 0;

  TickResults results_;
};

}  // namespace floc
