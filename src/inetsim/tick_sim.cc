#include "inetsim/tick_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "core/aggregation.h"

namespace floc {

const char* to_string(TickPolicy p) {
  switch (p) {
    case TickPolicy::kNoDefense: return "ND";
    case TickPolicy::kFairPriority: return "FF";
    case TickPolicy::kFloc: return "FLoc";
  }
  return "?";
}

TickSim::TickSim(const AsGraph& graph, const SourcePlacement& placement,
                 TickConfig cfg)
    : graph_(graph), cfg_(cfg), rng_(cfg.seed) {
  const auto n_as = static_cast<std::size_t>(graph_.size());
  queue_.resize(n_as);
  arrivals_.resize(n_as);
  arrivals_next_.resize(n_as);
  as_state_.resize(n_as);

  for (int as = 0; as < graph_.size(); ++as) {
    const bool attack_as = placement.bots_per_as[static_cast<std::size_t>(as)] > 0;
    const int rtt = std::max(
        2, 2 * graph_.node(as).depth * cfg_.router_hops_per_as + 2);
    for (int i = 0; i < placement.legit_per_as[static_cast<std::size_t>(as)]; ++i) {
      Flow f;
      f.origin_as = as;
      f.is_bot = false;
      f.in_attack_as = attack_as;
      f.rtt_ticks = rtt;
      f.next_epoch = static_cast<int>(rng_.uniform_int(static_cast<std::uint64_t>(rtt)));
      flows_.push_back(f);
      as_state_[static_cast<std::size_t>(as)].flows++;
    }
    for (int i = 0; i < placement.bots_per_as[static_cast<std::size_t>(as)]; ++i) {
      Flow f;
      f.origin_as = as;
      f.is_bot = true;
      f.in_attack_as = true;
      f.emit_credit = rng_.uniform();  // desynchronize bot emissions
      flows_.push_back(f);
      as_state_[static_cast<std::size_t>(as)].flows++;
    }
  }

  // Initial grouping: every active origin AS is its own path identifier.
  group_count_ = 0;
  for (int as = 0; as < graph_.size(); ++as) {
    auto& st = as_state_[static_cast<std::size_t>(as)];
    if (st.flows > 0) {
      st.agg_group = group_count_++;
    }
  }
  group_weight_.assign(static_cast<std::size_t>(group_count_), 1.0);
  group_flows_.assign(static_cast<std::size_t>(group_count_), 0.0);
  for (int as = 0; as < graph_.size(); ++as) {
    const auto& st = as_state_[static_cast<std::size_t>(as)];
    if (st.agg_group >= 0)
      group_flows_[static_cast<std::size_t>(st.agg_group)] += st.flows;
  }
}

void TickSim::emit_sources(int tick) {
  for (std::size_t fi = 0; fi < flows_.size(); ++fi) {
    Flow& f = flows_[fi];
    int emit = 0;
    if (f.is_bot) {
      f.emit_credit += cfg_.bot_rate;
      emit = static_cast<int>(f.emit_credit);
      f.emit_credit -= emit;
    } else {
      if (tick >= f.next_epoch) {
        // Epoch boundary: window update for the finished epoch (halve on any
        // drop, else +1 — the coarse AIMD model of Section VII-B).
        if (f.dropped_this_epoch) {
          f.window = std::max(1.0, f.window / 2.0);
        } else {
          f.window = std::min<double>(cfg_.legit_max_window, f.window + 1.0);
        }
        f.dropped_this_epoch = false;
        f.next_epoch = tick + f.rtt_ticks;
      }
      // Self-clocked emission: the window is spread across the RTT rather
      // than released as one burst (TCP ack pacing).
      f.emit_credit += f.window / f.rtt_ticks;
      emit = static_cast<int>(f.emit_credit);
      f.emit_credit -= emit;
    }
    if (emit > 0) {
      auto& arr = arrivals_[static_cast<std::size_t>(f.origin_as)];
      for (int k = 0; k < emit; ++k) arr.push_back(static_cast<std::int32_t>(fi));
      f.arrived_interval += static_cast<std::uint64_t>(emit);
    }
  }
}

namespace {

// Fisher-Yates shuffle of a flow-id vector.
void shuffle(std::vector<std::int32_t>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_int(i);
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace

void TickSim::forward_internal(int tick) {
  (void)tick;
  const auto cap = static_cast<std::size_t>(cfg_.internal_capacity);
  const std::size_t buffer = cap * static_cast<std::size_t>(cfg_.queue_buffer_factor);

  for (int as = graph_.size() - 1; as >= 1; --as) {
    auto& carry = queue_[static_cast<std::size_t>(as)];
    auto& arr = arrivals_[static_cast<std::size_t>(as)];
    if (carry.empty() && arr.empty()) continue;
    // New arrivals are served in random order behind the carryover — drops
    // hit a uniformly random subset of the tick's packets (Section VII-B).
    shuffle(arr, rng_);
    const int parent = graph_.node(as).parent;
    auto& out = arrivals_next_[static_cast<std::size_t>(parent)];

    std::size_t sent = 0;
    while (sent < cap && !carry.empty()) {
      out.push_back(carry[sent]);
      ++sent;
      if (sent >= carry.size()) break;
    }
    if (sent > 0 || !carry.empty()) {
      carry.erase(carry.begin(),
                  carry.begin() + static_cast<long>(std::min(sent, carry.size())));
    }
    std::size_t ai = 0;
    while (sent < cap && ai < arr.size()) {
      out.push_back(arr[ai]);
      ++ai;
      ++sent;
    }
    // Remaining arrivals buffer up to the carryover limit; the rest drop.
    while (ai < arr.size() && carry.size() < buffer) {
      carry.push_back(arr[ai]);
      ++ai;
    }
    for (; ai < arr.size(); ++ai) {
      flows_[static_cast<std::size_t>(arr[ai])].dropped_this_epoch = true;
      ++results_.dropped_internal;
    }
    arr.clear();
  }
}

void TickSim::target_link_service(int tick, bool measuring) {
  (void)tick;
  auto& carry = queue_[static_cast<std::size_t>(graph_.root())];
  auto& arr = arrivals_[static_cast<std::size_t>(graph_.root())];
  const auto cap = static_cast<std::size_t>(cfg_.bottleneck_capacity);
  const std::size_t buffer = cap * static_cast<std::size_t>(cfg_.queue_buffer_factor);

  shuffle(arr, rng_);
  std::vector<std::int32_t> pool;
  pool.reserve(carry.size() + arr.size());
  pool.insert(pool.end(), carry.begin(), carry.end());
  pool.insert(pool.end(), arr.begin(), arr.end());
  carry.clear();
  arr.clear();

  std::vector<std::int32_t> delivered;
  delivered.reserve(cap);
  std::vector<std::int32_t> leftover;

  switch (cfg_.policy) {
    case TickPolicy::kNoDefense: {
      for (std::int32_t p : pool) {
        if (delivered.size() < cap) {
          delivered.push_back(p);
        } else {
          leftover.push_back(p);
        }
      }
      break;
    }
    case TickPolicy::kFairPriority: {
      // Legit packets are high priority; bot packets high only within their
      // per-flow fair share (probabilistic in-profile marking).
      const double fair =
          static_cast<double>(cfg_.bottleneck_capacity) /
          std::max<std::size_t>(1, flows_.size());
      std::vector<std::int32_t> high, low;
      for (std::int32_t p : pool) {
        const Flow& f = flows_[static_cast<std::size_t>(p)];
        const bool in_profile =
            !f.is_bot ||
            rng_.chance(std::min(1.0, fair / std::max(1e-9, f.rate_est)));
        (in_profile ? high : low).push_back(p);
      }
      for (std::int32_t p : high) {
        if (delivered.size() < cap) delivered.push_back(p);
        else leftover.push_back(p);
      }
      for (std::int32_t p : low) {
        if (delivered.size() < cap) delivered.push_back(p);
        else leftover.push_back(p);
      }
      break;
    }
    case TickPolicy::kFloc: {
      // Per-path-identifier fair allocation with preferential service.
      double total_weight = 0.0;
      for (double w : group_weight_) total_weight += w;
      if (total_weight <= 0.0) total_weight = 1.0;

      // DRR-style quota accounting: each path identifier's per-tick share
      // accrues as credit (capped at several ticks' worth — the analogue of
      // the enlarged bucket N', Eq. IV.3) so the AIMD sawtooth of legitimate
      // flows averages out to the full share instead of being peak-clipped.
      if (group_credit_.size() != group_weight_.size())
        group_credit_.assign(group_weight_.size(), 0.0);
      std::vector<double> group_quota(group_weight_.size());
      for (std::size_t g = 0; g < group_weight_.size(); ++g) {
        const double share =
            cfg_.bottleneck_capacity * group_weight_[g] / total_weight;
        group_credit_[g] = std::min(6.0 * share, group_credit_[g] + share);
        group_quota[g] = share;
      }
      for (std::int32_t p : pool) {
        Flow& f = flows_[static_cast<std::size_t>(p)];
        const auto g = static_cast<std::size_t>(
            as_state_[static_cast<std::size_t>(f.origin_as)].agg_group);
        const double fair =
            group_quota[g] / std::max(1.0, group_flows_[g]);
        // Preferential service probability: min{1, fair/rate} — the tick-
        // level analogue of min{1, MTD/(n*T)} (Eq. IV.5). Only flows beyond
        // the attack classification threshold are filtered; responsive flows
        // probing modestly above fair are left alone (Section IV-B.2).
        const bool preferred =
            f.rate_est <= cfg_.attack_over_rate * fair ||
            rng_.chance(std::min(1.0, fair / std::max(1e-9, f.rate_est)));
        if (preferred && group_credit_[g] >= 1.0 && delivered.size() < cap) {
          group_credit_[g] -= 1.0;
          delivered.push_back(p);
        } else if (preferred) {
          spare_candidates_.push_back(p);  // conformant, quota exhausted
        } else {
          leftover.push_back(p);
        }
      }
      // Work conservation: spare capacity first serves conformant flows
      // whose path quota ran out (the preferential principle extends to
      // spare bandwidth), then anything else, randomly. Conformant packets
      // that still don't fit go to the FRONT of the carryover buffer — they
      // are queued, not dropped, mirroring how the router buffer absorbs
      // legitimate bursts in the packet-level design.
      shuffle(spare_candidates_, rng_);
      std::vector<std::int32_t> preferred_wait;
      for (std::int32_t p : spare_candidates_) {
        if (delivered.size() < cap) delivered.push_back(p);
        else preferred_wait.push_back(p);
      }
      spare_candidates_.clear();
      shuffle(leftover, rng_);
      std::vector<std::int32_t> still_left;
      for (std::int32_t p : leftover) {
        if (delivered.size() < cap) delivered.push_back(p);
        else still_left.push_back(p);
      }
      leftover = std::move(still_left);
      // Prepend conformant waiters so the following carryover fill keeps
      // them preferentially.
      preferred_wait.insert(preferred_wait.end(), leftover.begin(),
                            leftover.end());
      leftover = std::move(preferred_wait);
      break;
    }
  }

  for (std::int32_t p : delivered) {
    const Flow& f = flows_[static_cast<std::size_t>(p)];
    if (!measuring) continue;
    if (f.is_bot) {
      ++results_.delivered_attack;
    } else if (f.in_attack_as) {
      ++results_.delivered_legit_attack;
    } else {
      ++results_.delivered_legit_legit;
    }
  }
  // Carryover up to the buffer; the rest drop (and signal the TCP model).
  std::size_t kept = 0;
  for (std::int32_t p : leftover) {
    if (kept < buffer) {
      carry.push_back(p);
      ++kept;
    } else {
      flows_[static_cast<std::size_t>(p)].dropped_this_epoch = true;
      ++results_.dropped_target;
    }
  }
}

void TickSim::floc_control(int tick) {
  (void)tick;
  // Rate estimates.
  for (Flow& f : flows_) {
    const double inst =
        static_cast<double>(f.arrived_interval) / cfg_.control_every;
    f.rate_est = 0.7 * f.rate_est + 0.3 * inst;
    f.arrived_interval = 0;
  }
  if (cfg_.policy != TickPolicy::kFloc) return;

  // Conformance per origin AS.
  double total_weight = 0.0;
  for (double w : group_weight_) total_weight += w;
  if (total_weight <= 0.0) total_weight = 1.0;

  std::vector<int> attack_count(static_cast<std::size_t>(graph_.size()), 0);
  std::vector<int> flow_count(static_cast<std::size_t>(graph_.size()), 0);
  for (const Flow& f : flows_) {
    const auto as = static_cast<std::size_t>(f.origin_as);
    const auto g = static_cast<std::size_t>(as_state_[as].agg_group);
    const double fair =
        cfg_.bottleneck_capacity * group_weight_[g] /
        (total_weight * std::max(1.0, group_flows_[g]));
    ++flow_count[as];
    if (f.rate_est > cfg_.attack_over_rate * std::max(fair, 1e-6))
      ++attack_count[as];
  }
  for (int as = 0; as < graph_.size(); ++as) {
    auto& st = as_state_[static_cast<std::size_t>(as)];
    if (st.flows == 0) continue;
    const double legit_frac =
        1.0 - static_cast<double>(attack_count[static_cast<std::size_t>(as)]) /
                  std::max(1, flow_count[static_cast<std::size_t>(as)]);
    st.conformance = cfg_.conformance_beta * legit_frac +
                     (1.0 - cfg_.conformance_beta) * st.conformance;
  }

  // Aggregation (A-N variants): reuse the core planner over AS paths. An AS
  // whose offered load exceeds its equal-split path allocation is "suspect"
  // (the covert pattern: individually conformant flows, collectively
  // over-subscribed) and is never merged into a legitimate aggregate.
  std::vector<double> as_lambda(static_cast<std::size_t>(graph_.size()), 0.0);
  for (const Flow& f : flows_) {
    as_lambda[static_cast<std::size_t>(f.origin_as)] += f.rate_est;
  }
  int active_paths = 0;
  for (int as = 0; as < graph_.size(); ++as) {
    if (as_state_[static_cast<std::size_t>(as)].flows > 0) ++active_paths;
  }
  const double path_alloc =
      static_cast<double>(cfg_.bottleneck_capacity) / std::max(1, active_paths);

  std::vector<PathSnapshot> snaps;
  std::vector<int> snap_as;
  for (int as = 0; as < graph_.size(); ++as) {
    const auto& st = as_state_[static_cast<std::size_t>(as)];
    if (st.flows == 0) continue;
    const bool suspect =
        as_lambda[static_cast<std::size_t>(as)] > 1.5 * path_alloc;
    snaps.push_back(PathSnapshot{graph_.path_of(as), st.conformance,
                                 static_cast<double>(st.flows), suspect});
    snap_as.push_back(as);
  }

  AggregationConfig acfg;
  acfg.s_max = cfg_.guaranteed_paths > 0 ? cfg_.guaranteed_paths : (1 << 30);
  acfg.e_th = cfg_.e_th;
  // A tight budget needs legitimate-path aggregation too (e.g. A-100 with
  // 200+ legitimate origin ASes, Section VII-C).
  acfg.aggregate_legit = cfg_.guaranteed_paths > 0;
  acfg.aggregate_attack = cfg_.guaranteed_paths > 0;
  Aggregator aggregator(acfg);
  const AggregationPlan plan = aggregator.plan(snaps);

  std::unordered_map<std::uint64_t, int> group_of_agg;
  group_count_ = 0;
  group_weight_.clear();
  group_flows_.clear();
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    const auto& entry = plan.mapping.at(snaps[i].path.key());
    const std::uint64_t akey = entry.group_key();
    auto [it, inserted] = group_of_agg.try_emplace(akey, group_count_);
    if (inserted) {
      ++group_count_;
      group_weight_.push_back(entry.share_weight);
      group_flows_.push_back(0.0);
    }
    as_state_[static_cast<std::size_t>(snap_as[i])].agg_group = it->second;
    group_flows_[static_cast<std::size_t>(it->second)] += snaps[i].flows;
  }
  results_.aggregate_count = group_count_;
}

TickResults TickSim::run() {
  std::uint64_t measured_ticks = 0;
  for (int tick = 0; tick < cfg_.ticks; ++tick) {
    const bool measuring = tick >= cfg_.warmup_ticks;
    if (measuring) ++measured_ticks;
    emit_sources(tick);
    forward_internal(tick);
    target_link_service(tick, measuring);
    for (std::size_t as = 0; as < arrivals_.size(); ++as) {
      std::swap(arrivals_[as], arrivals_next_[as]);
      arrivals_next_[as].clear();
    }
    if ((tick + 1) % cfg_.control_every == 0) floc_control(tick);
  }

  const double denom = static_cast<double>(measured_ticks) *
                       static_cast<double>(cfg_.bottleneck_capacity);
  results_.legit_legit_frac = results_.delivered_legit_legit / denom;
  results_.legit_attack_frac = results_.delivered_legit_attack / denom;
  results_.attack_frac = results_.delivered_attack / denom;
  results_.utilization = results_.legit_legit_frac +
                         results_.legit_attack_frac + results_.attack_frac;
  double wsum = 0.0;
  std::size_t wn = 0;
  for (const Flow& f : flows_) {
    if (!f.is_bot) {
      wsum += f.window;
      ++wn;
    }
  }
  results_.mean_legit_window = wn ? wsum / static_cast<double>(wn) : 0.0;
  if (cfg_.policy != TickPolicy::kFloc) results_.aggregate_count = group_count_;
  return results_;
}

}  // namespace floc
