#include "core/traffic_tree.h"

#include <cassert>

namespace floc {

TrafficTree::TrafficTree(const std::vector<PathSnapshot>& paths)
    : paths_(paths) {
  nodes_.push_back(Node{});  // root: empty prefix (the router's own domain)
  for (std::size_t pi = 0; pi < paths_.size(); ++pi) {
    const PathId& p = paths_[pi].path;
    int cur = 0;
    for (int h = 0; h < p.length(); ++h) {
      const AsNumber as = p.at(h);
      int next = child_with_as(cur, as);
      if (next < 0) {
        next = static_cast<int>(nodes_.size());
        Node n;
        n.prefix = nodes_[static_cast<std::size_t>(cur)].prefix;
        n.prefix.push_origin(as);
        n.parent = cur;
        nodes_.push_back(std::move(n));
        nodes_[static_cast<std::size_t>(cur)].children.push_back(next);
      }
      cur = next;
    }
    assert(nodes_[static_cast<std::size_t>(cur)].leaf_index < 0 &&
           "duplicate path in snapshot");
    nodes_[static_cast<std::size_t>(cur)].leaf_index = static_cast<int>(pi);
    // Accumulate along the ancestor chain.
    for (int a = cur; a != -1; a = nodes_[static_cast<std::size_t>(a)].parent) {
      Node& n = nodes_[static_cast<std::size_t>(a)];
      n.leaf_count += 1;
      n.conf_sum += paths_[pi].conformance;
      n.flow_sum += paths_[pi].flows;
      n.conf_flow_sum += paths_[pi].conformance * paths_[pi].flows;
    }
  }
}

int TrafficTree::child_with_as(int node, AsNumber as) const {
  for (int c : nodes_[static_cast<std::size_t>(node)].children) {
    const PathId& pfx = nodes_[static_cast<std::size_t>(c)].prefix;
    if (pfx.at(pfx.length() - 1) == as) return c;
  }
  return -1;
}

double TrafficTree::mean_conformance(int i) const {
  const Node& n = nodes_[static_cast<std::size_t>(i)];
  return n.leaf_count ? n.conf_sum / n.leaf_count : 1.0;
}

double TrafficTree::legit_aggregation_cost(int i) const {
  const Node& n = nodes_[static_cast<std::size_t>(i)];
  if (n.leaf_count == 0 || n.flow_sum <= 0.0) return 0.0;
  const double mean = n.conf_sum / n.leaf_count;
  const double weighted = n.conf_flow_sum / n.flow_sum;
  return mean - weighted;
}

int TrafficTree::reduction(int i) const {
  const Node& n = nodes_[static_cast<std::size_t>(i)];
  return n.leaf_count > 0 ? n.leaf_count - 1 : 0;
}

bool TrafficTree::is_ancestor(int a, int b) const {
  for (int cur = b; cur != -1; cur = nodes_[static_cast<std::size_t>(cur)].parent) {
    if (cur == a) return true;
  }
  return false;
}

std::vector<int> TrafficTree::internal_nodes(bool include_root) const {
  std::vector<int> out;
  for (int i = include_root ? 0 : 1; i < node_count(); ++i) {
    const Node& n = nodes_[static_cast<std::size_t>(i)];
    if (n.leaf_count >= 2) out.push_back(i);
  }
  return out;
}

std::vector<int> TrafficTree::paths_under(int i) const {
  std::vector<int> out;
  std::vector<int> stack{i};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<std::size_t>(v)];
    if (n.leaf_index >= 0) out.push_back(n.leaf_index);
    for (int c : n.children) stack.push_back(c);
  }
  return out;
}

std::string TrafficTree::to_string() const {
  std::string out;
  for (int i = 0; i < node_count(); ++i) {
    const Node& n = nodes_[static_cast<std::size_t>(i)];
    out += n.prefix.to_string() + " leaves=" + std::to_string(n.leaf_count) +
           (n.leaf_index >= 0 ? " [path]" : "") + "\n";
  }
  return out;
}

}  // namespace floc
