#include "core/floc_queue.h"

#include "core/conformance.h"
#include "telemetry/tracing.h"
#include "util/json.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

namespace floc {

namespace {

// Deterministic signed unit value in [-1, 1) from a key — used for the
// per-aggregate period jitter. Hashing (akey, tick, seed) instead of drawing
// from rng_ keeps the jitter independent of unordered_map iteration order
// and leaves the RNG stream untouched, so jitter=0 runs are bit-identical
// to the unhardened baseline.
double signed_unit_hash(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<double>(x >> 11) * (1.0 / 4503599627370496.0) - 1.0;
}

}  // namespace

FlocQueue::FlocQueue(FlocConfig cfg)
    : cfg_(cfg),
      issuer_(cfg.secret, cfg.n_max),
      rng_(cfg.rng_seed),
      q_min_(static_cast<std::size_t>(cfg.qmin_frac *
                                      static_cast<double>(cfg.buffer_packets))),
      q_max_(cfg.buffer_packets),
      relatch_(mix64(cfg.rng_seed ^ 0x5EBA5EBA5EBA5EBAULL)) {
  if (cfg_.use_scalable_filter) {
    filter_ = std::make_unique<ScalableDropFilter>(cfg_.filter);
  }
}

FlocQueue::Mode FlocQueue::mode() const {
  if (q_.size() > q_max_) return Mode::kFlooding;
  if (q_.size() > q_min_) return Mode::kCongested;
  return Mode::kUncongested;
}

const char* FlocQueue::mode_name(Mode m) {
  switch (m) {
    case Mode::kUncongested: return "uncongested";
    case Mode::kCongested: return "congested";
    case Mode::kFlooding: return "flooding";
  }
  return "?";
}

void FlocQueue::attach_telemetry(telemetry::Telemetry* t,
                                 const std::string& prefix) {
  journal_ = t != nullptr ? &t->journal : nullptr;
  if (t == nullptr) return;
  last_mode_ = mode();

  telemetry::MetricRegistry& reg = t->registry;
  reg.gauge_fn(prefix + ".mode", [this] {
    return static_cast<double>(static_cast<int>(mode()));
  });
  reg.gauge_fn(prefix + ".queue.packets",
               [this] { return static_cast<double>(q_.size()); });
  reg.gauge_fn(prefix + ".queue.bytes",
               [this] { return static_cast<double>(q_bytes_); });
  reg.gauge_fn(prefix + ".queue.q_min",
               [this] { return static_cast<double>(q_min_); });
  reg.gauge_fn(prefix + ".queue.q_max",
               [this] { return static_cast<double>(q_max_); });
  reg.gauge_fn(prefix + ".admissions",
               [this] { return static_cast<double>(admissions()); });
  reg.gauge_fn(prefix + ".dequeues",
               [this] { return static_cast<double>(dequeues_); });
  reg.gauge_fn(prefix + ".drops.total",
               [this] { return static_cast<double>(drops()); });
  for (std::size_t i = 0; i < kDropReasonCount; ++i) {
    const DropReason r = static_cast<DropReason>(i);
    reg.gauge_fn(prefix + ".drops." + to_string(r), [this, r] {
      return static_cast<double>(drops_by_reason(r));
    });
  }
  reg.gauge_fn(prefix + ".cap.violations",
               [this] { return static_cast<double>(cap_violations_); });
  reg.gauge_fn(prefix + ".cap.reissues",
               [this] { return static_cast<double>(cap_reissues_); });
  reg.gauge_fn(prefix + ".reboots",
               [this] { return static_cast<double>(reboots_); });
  reg.gauge_fn(prefix + ".paths.origins",
               [this] { return static_cast<double>(origins_.size()); });
  reg.gauge_fn(prefix + ".paths.aggregates",
               [this] { return static_cast<double>(aggregates_.size()); });
  reg.gauge_fn(prefix + ".paths.attack", [this] {
    double n = 0.0;
    for (const auto& [k, agg] : aggregates_) n += agg.attack ? 1.0 : 0.0;
    return n;
  });
  reg.gauge_fn(prefix + ".hardening.offenders",
               [this] { return static_cast<double>(offenders_.size()); });
  reg.gauge_fn(prefix + ".hardening.backoff_paths",
               [this] { return static_cast<double>(offense_.size()); });
  reg.gauge_fn(prefix + ".hardening.backoff_max", [this] {
    double m = 1.0;
    for (const auto& [k, po] : offense_)
      m = std::max(m, static_cast<double>(po.multiplier));
    return m;
  });
  register_state_gauges(reg);
}

void FlocQueue::register_metrics(telemetry::MetricRegistry& reg,
                                 const std::string& prefix) const {
  QueueDisc::register_metrics(reg, prefix);
  register_state_gauges(reg);
}

void FlocQueue::register_state_gauges(telemetry::MetricRegistry& reg) const {
  // Fixed (prefix-free) names: these are the RSS-proxy series every bench
  // CSV and the storm-alert rules key on, regardless of how the queue was
  // mounted (attach_telemetry's "floc" prefix or a link's register_metrics).
  reg.gauge_fn("floc.origins",
               [this] { return static_cast<double>(origins_.size()); });
  reg.gauge_fn("floc.aggregates",
               [this] { return static_cast<double>(aggregates_.size()); });
  reg.gauge_fn("floc.offense",
               [this] { return static_cast<double>(offense_.size()); });
  reg.gauge_fn("floc.offenders",
               [this] { return static_cast<double>(offenders_.size()); });
  reg.gauge_fn("flow_table.size",
               [this] { return static_cast<double>(flow_record_count()); });
  reg.gauge_fn("floc.state.occupancy", [this] { return state_occupancy(); });
  reg.gauge_fn("floc.state.evictions",
               [this] { return static_cast<double>(state_evictions()); });
  reg.gauge_fn("floc.state.overload",
               [this] { return overloaded_ ? 1.0 : 0.0; });
}

std::size_t FlocQueue::flow_record_count() const {
  std::size_t n = 0;
  for (const auto& [okey, op] : origins_) n += op.flow_count();
  return n;
}

std::size_t FlocQueue::max_path_flow_count() const {
  std::size_t n = 0;
  for (const auto& [okey, op] : origins_) n = std::max(n, op.flow_count());
  return n;
}

double FlocQueue::state_occupancy() const {
  double occ = 0.0;
  const auto frac = [](std::size_t size, const StateBudgetConfig& b) {
    return b.enabled()
               ? static_cast<double>(size) / static_cast<double>(b.capacity)
               : 0.0;
  };
  occ = std::max(occ, frac(origins_.size(), cfg_.origin_budget));
  occ = std::max(occ, frac(offense_.size(), cfg_.offense_budget));
  occ = std::max(occ, frac(offenders_.size(), cfg_.offender_budget));
  if (cfg_.flow_budget.enabled()) {
    occ = std::max(occ, frac(max_path_flow_count(), cfg_.flow_budget));
  }
  return occ;
}

namespace {

// Sorted keys of an unordered_map: incident bundles must not leak hash
// iteration order into gated artifacts (--jobs byte-identity).
template <typename Map>
std::vector<typename Map::key_type> sorted_keys(const Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  for (const auto& [k, v] : m) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

void dump_budget(json::JsonWriter& w, const char* name,
                 const StateBudgetConfig& b, std::size_t size) {
  w.key(name).begin_object();
  w.field("capacity", static_cast<std::uint64_t>(b.capacity));
  w.field("policy", to_string(b.policy));
  w.field("size", static_cast<std::uint64_t>(size));
  w.end_object();
}

}  // namespace

void FlocQueue::snapshot_state(json::JsonWriter& w, TimeSec now) const {
  w.begin_object();
  w.field("scheme", "floc");

  w.key("mode").begin_object();
  w.field("name", mode_name(mode()));
  w.field("queue_packets", static_cast<std::uint64_t>(q_.size()));
  w.field("queue_bytes", static_cast<std::uint64_t>(q_bytes_));
  w.field("q_min", static_cast<std::uint64_t>(q_min_));
  w.field("q_max", static_cast<std::uint64_t>(q_max_));
  w.field("control_ticks", static_cast<std::int64_t>(control_ticks_));
  w.field("in_recovery", in_recovery(now));
  w.field("recovery_until", recovery_until_);
  w.field("reboots", reboots_);
  w.field("flushed", flushed_);
  w.field("dequeues", dequeues_);
  w.end_object();

  w.key("drops").begin_object();
  w.field("total", drops());
  for (std::size_t i = 0; i < kDropReasonCount; ++i) {
    w.field(to_string(static_cast<DropReason>(i)), drop_counts_[i]);
  }
  w.end_object();

  w.key("capabilities").begin_object();
  w.field("enabled", cfg_.enable_capabilities);
  w.field("secret", "redacted");  // provisioned key material, never dumped
  w.field("n_max", issuer_.n_max());
  w.field("rotations", issuer_.rotations());
  w.field("in_grace", issuer_.in_grace(now));
  w.field("violations", cap_violations_);
  w.field("reissues", cap_reissues_);
  w.end_object();

  w.key("aggregates").begin_array();
  for (const std::uint64_t akey : sorted_keys(aggregates_)) {
    const Aggregate& agg = aggregates_.at(akey);
    w.begin_object();
    w.field("path", agg.id.to_string());
    w.field("key", akey);
    w.field("attack", agg.attack);
    w.field("weight", agg.weight);
    w.field("n", agg.n);
    w.field("n_estimated", agg.n_estimated);
    w.field("rtt", agg.rtt);
    w.field("c_bps", agg.c);
    w.field("lambda_bps", agg.lambda_bps);
    w.field("attack_streak", static_cast<std::int64_t>(agg.attack_streak));
    w.field("calm_streak", static_cast<std::int64_t>(agg.calm_streak));
    w.field("dip_strict", agg.dip_strict);
    w.field("arrivals_interval", agg.arrivals_interval);
    w.field("drops_interval", agg.drops_interval);
    w.field("token_misses_interval", agg.token_misses_interval);
    w.key("params").begin_object();
    w.field("period", agg.params.period);
    w.field("bucket_packets", agg.params.bucket_packets);
    w.field("bucket_packets_incr", agg.params.bucket_packets_incr);
    w.field("peak_window", agg.params.peak_window);
    w.field("ref_mtd", agg.params.ref_mtd);
    w.end_object();
    w.key("bucket").begin_object();
    w.field("configured", agg.bucket.configured());
    w.field("tokens_base", agg.bucket.peek_tokens(now, false));
    w.field("tokens_incr", agg.bucket.peek_tokens(now, true));
    w.field("capacity_base", agg.bucket.capacity_bytes(false));
    w.field("capacity_incr", agg.bucket.capacity_bytes(true));
    w.field("refills", agg.bucket.refills());
    w.end_object();
    std::vector<std::uint64_t> members = agg.members;
    std::sort(members.begin(), members.end());
    w.key("members").begin_array();
    for (const std::uint64_t m : members) w.value(m);
    w.end_array();
    w.end_object();
  }
  w.end_array();

  // Per-origin flow tables can be large under churn; bound the per-path dump
  // and say how much was omitted rather than truncating silently.
  constexpr std::size_t kMaxFlowsPerOrigin = 32;
  w.key("origins").begin_array();
  for (const std::uint64_t okey : sorted_keys(origins_)) {
    const OriginPathState& op = origins_.at(okey);
    w.begin_object();
    w.field("path", op.path().to_string());
    w.field("key", okey);
    w.field("aggregate_key", op.aggregate_key);
    w.field("conformance", op.conformance());
    w.field("has_rtt", op.has_rtt());
    w.field("mean_rtt", op.mean_rtt(cfg_.default_rtt));
    w.field("bytes_arrived", op.bytes_arrived);
    w.field("pkts_arrived", op.pkts_arrived);
    w.field("drops", op.drops);
    w.field("token_misses", op.token_misses);
    w.field("flow_count", static_cast<std::uint64_t>(op.flow_count()));
    std::vector<std::uint64_t> fkeys = sorted_keys(op.flows());
    const std::size_t shown = std::min(fkeys.size(), kMaxFlowsPerOrigin);
    w.field("flows_omitted",
            static_cast<std::uint64_t>(fkeys.size() - shown));
    w.key("flows").begin_array();
    for (std::size_t i = 0; i < shown; ++i) {
      const FlowRecord& fr = op.flows().at(fkeys[i]);
      w.begin_object();
      w.field("acct_key", fkeys[i]);
      w.field("first_seen", fr.first_seen);
      w.field("last_seen", fr.last_seen);
      w.field("rtt_sampled", fr.rtt_sampled);
      w.field("rate_bps", fr.rate_bps);
      w.field("bytes_arrived", fr.bytes_arrived);
      w.field("drops_interval", fr.drops);
      w.field("total_drops", fr.total_drops);
      w.field("mtd_window", fr.mtd.window());
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("plan").begin_array();
  for (const std::uint64_t okey : sorted_keys(plan_map_)) {
    w.begin_object();
    w.field("origin", okey);
    w.field("aggregate", plan_map_.at(okey));
    w.end_object();
  }
  w.end_array();

  w.key("offense").begin_array();
  for (const std::uint64_t pkey : sorted_keys(offense_)) {
    const PathOffense& po = offense_.at(pkey);
    w.begin_object();
    w.field("path_key", pkey);
    w.field("multiplier", static_cast<std::int64_t>(po.multiplier));
    w.field("ever_latched", po.ever_latched);
    w.field("attack", po.attack);
    w.field("next_decay", po.next_decay);
    w.field("last_release", po.last_release);
    w.end_object();
  }
  w.end_array();

  w.key("offenders").begin_array();
  for (const HostAddr src : sorted_keys(offenders_)) {
    const Offender& off = offenders_.at(src);
    w.begin_object();
    w.field("src", static_cast<std::uint64_t>(src));
    w.field("strikes", static_cast<std::int64_t>(off.strikes));
    w.field("blacklisted", now < off.blacklisted_until);
    w.field("blacklisted_until", off.blacklisted_until);
    w.field("last_strike", off.last_strike);
    w.end_object();
  }
  w.end_array();

  w.key("state_budget").begin_object();
  w.field("occupancy", state_occupancy());
  w.field("overloaded", overloaded_);
  w.field("overload_entries", overload_entries_);
  w.field("evicted_origins", evict_origins_);
  w.field("evicted_flows", evict_flows_);
  w.field("evicted_offense", evict_offense_);
  w.field("evicted_offenders", evict_offenders_);
  w.field("sketch_marks", relatch_.marks());
  dump_budget(w, "origin_budget", cfg_.origin_budget, origins_.size());
  dump_budget(w, "flow_budget", cfg_.flow_budget, max_path_flow_count());
  dump_budget(w, "offense_budget", cfg_.offense_budget, offense_.size());
  dump_budget(w, "offender_budget", cfg_.offender_budget, offenders_.size());
  w.end_object();

  w.end_object();
}

void FlocQueue::journal_mode(TimeSec now) {
  const Mode m = mode();
  if (m == last_mode_) return;
  char detail[96];
  std::snprintf(detail, sizeof(detail), "%s->%s q=%zu q_min=%zu q_max=%zu",
                mode_name(last_mode_), mode_name(m), q_.size(), q_min_,
                q_max_);
  journal_->record(now, telemetry::EventKind::kModeTransition, "floc", detail,
                   static_cast<std::uint64_t>(static_cast<int>(m)),
                   static_cast<double>(q_.size()));
  last_mode_ = m;
}

void FlocQueue::journal_drop(const Packet& p, DropReason r, TimeSec now) {
  journal_->record(now, telemetry::EventKind::kDrop, "floc", std::string(),
                   static_cast<std::uint64_t>(r),
                   static_cast<double>(p.size_bytes));
}

void FlocQueue::set_profiler(telemetry::Profiler* prof,
                             const std::string& prefix) {
  prof_enqueue_ = prof != nullptr ? prof->section(prefix + ".enqueue") : nullptr;
  prof_dequeue_ = prof != nullptr ? prof->section(prefix + ".dequeue") : nullptr;
  prof_control_ = prof != nullptr ? prof->section(prefix + ".control") : nullptr;
  prof_cap_verify_ =
      prof != nullptr ? prof->section(prefix + ".cap_verify") : nullptr;
}

void FlocQueue::trace_verdict(const Packet& p, const Aggregate& agg,
                              TimeSec now, const char* verdict) {
  telemetry::Tracer* t = tracer();
  t->annotate(p.span.span, "mode", mode_name(mode()));
  t->annotate(p.span.span, "verdict", verdict);
  if (agg.bucket.configured()) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.0f/%.0f",
                  agg.bucket.peek_tokens(now, true),
                  agg.bucket.capacity_bytes(true));
    t->annotate(p.span.span, "tokens", buf);
  }
  t->annotate(p.span.span, "path", p.path.to_string());
}

OriginPathState& FlocQueue::origin_state(const PathId& path, bool cap_backed) {
  const std::uint64_t key = path.key();
  auto it = origins_.find(key);
  if (it == origins_.end()) {
    // Overload mode: NEW per-path state is learned at router-side prefix
    // granularity, so an identity-churning adversary collapses into a
    // handful of coarse entries while established fine-grained paths (found
    // above) keep their granularity. Depth-1 recursion: the coarse path's
    // length equals the prefix.
    //
    // Traffic backed by a VERIFIED capability is exempt: a legitimate path
    // whose origin entry was erased mid-overload (flows stalled and expired)
    // must re-learn fine-grained, or it lands in the attacker-polluted
    // coarse prefix and inherits that aggregate's attack verdict for the
    // rest of the overload episode. Churned identities cannot mint valid
    // capabilities for paths they never completed a handshake on, so the
    // exemption is not an evasion route.
    if (!cap_backed && overloaded_ && cfg_.overload_path_prefix > 0 &&
        path.length() > cfg_.overload_path_prefix) {
      PathId coarse = path;
      coarse.truncate_to(cfg_.overload_path_prefix);
      return origin_state(coarse);
    }
    enforce_origin_budget();
    it = origins_.emplace(key, OriginPathState(path, cfg_.beta)).first;
  }
  it->second.touch_stamp = ++touch_seq_;
  return it->second;
}

void FlocQueue::enforce_origin_budget() {
  if (!cfg_.origin_budget.enabled()) return;
  evict_origins_ += enforce_budget(
      origins_, cfg_.origin_budget, evict_salt(),
      [this](std::uint64_t, const OriginPathState& op) {
        // kLowestOffenseFirst pins latched / latching paths (and, softly,
        // low-conformance ones): churned innocents go first, so an attacker
        // cannot push its own verdict state out through fresh identities.
        double score = 1.0 - op.conformance();
        const auto ait = aggregates_.find(op.aggregate_key);
        if (ait != aggregates_.end()) {
          if (ait->second.attack) {
            score += 4.0;
          } else if (ait->second.attack_streak > 0) {
            score += 2.0;
          }
        }
        return EvictRank{score, op.touch_stamp};
      },
      [this](std::uint64_t okey, const OriginPathState& op) {
        evict_origin(okey, op);
      });
}

void FlocQueue::evict_origin(std::uint64_t okey, const OriginPathState& op) {
  std::uint64_t akey = op.aggregate_key;
  if (akey == 0) {
    const auto pit = plan_map_.find(okey);
    akey = pit != plan_map_.end() ? pit->second : okey;
  }
  plan_map_.erase(okey);
  bool guilty = false;
  const auto ait = aggregates_.find(akey);
  if (ait != aggregates_.end()) {
    Aggregate& agg = ait->second;
    guilty = agg.attack || agg.attack_streak > 0;
    auto& m = agg.members;
    m.erase(std::remove(m.begin(), m.end(), okey), m.end());
    // An aggregate with no remaining member origins is dead weight; its
    // verdict is persisted below (sketch) and in offense_, so dropping it
    // keeps aggregates_ bounded by the origin budget.
    if (m.empty()) aggregates_.erase(ait);
  }
  const auto poit = offense_.find(akey);
  if (poit != offense_.end() && poit->second.attack) guilty = true;
  if (guilty) {
    relatch_.mark(okey);
    if (akey != okey) relatch_.mark(akey);
  }
}

void FlocQueue::enforce_offense_budget() {
  if (!cfg_.offense_budget.enabled()) return;
  evict_offense_ += enforce_budget(
      offense_, cfg_.offense_budget, evict_salt(),
      [](std::uint64_t, const PathOffense& po) {
        // Keep escalated and currently-latched verdicts longest.
        return EvictRank{static_cast<double>(po.multiplier) +
                             (po.attack ? 1000.0 : 0.0),
                         po.touch_stamp};
      },
      [this](std::uint64_t akey, const PathOffense& po) {
        if (po.attack) relatch_.mark(akey);
      });
}

void FlocQueue::enforce_offender_budget(TimeSec now) {
  if (!cfg_.offender_budget.enabled()) return;
  evict_offenders_ += enforce_budget(
      offenders_, cfg_.offender_budget, evict_salt(),
      [now](HostAddr, const Offender& o) {
        // Actively-sentenced senders rank far above mere strike carriers.
        return EvictRank{static_cast<double>(o.strikes) +
                             (now < o.blacklisted_until ? 1e6 : 0.0),
                         o.touch_stamp};
      },
      [this, now](HostAddr src, const Offender& o) {
        if (now < o.blacklisted_until) {
          relatch_.mark(offender_sketch_key(src));
        }
      });
}

FlocQueue::Aggregate& FlocQueue::aggregate_for(OriginPathState& op) {
  const std::uint64_t okey = op.path().key();
  auto pit = plan_map_.find(okey);
  std::uint64_t akey;
  if (pit == plan_map_.end()) {
    // New origin since the last aggregation run: identity mapping.
    akey = okey;
    plan_map_[okey] = akey;
  } else {
    akey = pit->second;
  }
  op.aggregate_key = akey;
  auto it = aggregates_.find(akey);
  if (it == aggregates_.end()) {
    Aggregate agg;
    agg.id = op.path();
    agg.weight = 1.0;
    agg.rtt = cfg_.default_rtt * cfg_.rtt_damping;
    agg.c = cfg_.link_bandwidth /
            static_cast<double>(aggregates_.size() + 1);
    agg.params = model::compute_params(agg.c, agg.rtt, 1.0, cfg_.pkt_bytes);
    agg.bucket.configure(agg.params, cfg_.pkt_bytes);
    agg.members.push_back(okey);
    restore_offense(agg, akey);
    it = aggregates_.emplace(akey, std::move(agg)).first;
  }
  return it->second;
}

void FlocQueue::restore_offense(Aggregate& agg, std::uint64_t akey) const {
  if (cfg_.backoff_release) {
    const auto it = offense_.find(akey);
    if (it != offense_.end() && it->second.attack) agg.attack = true;
  }
  // Eviction-safe re-latch: if this path's verdict state was evicted while
  // guilty, the sketch remembers. Seed the streak one short of the latch so
  // a resumed flood re-latches within ONE control interval instead of
  // re-earning the full hysteresis from zero.
  if (!agg.attack && relatch_enabled() && relatch_.test(akey)) {
    agg.attack_streak = std::max(agg.attack_streak, cfg_.attack_latch - 1);
  }
}

void FlocQueue::strike(HostAddr src, TimeSec now) {
  auto it = offenders_.find(src);
  if (it == offenders_.end()) {
    enforce_offender_budget(now);
    it = offenders_.emplace(src, Offender{}).first;
    // Eviction-safe re-latch: a sender whose active sentence was evicted
    // re-enters one strike short of the threshold, so its next strike
    // restores the blacklist instead of restarting the count.
    if (cfg_.offender_budget.enabled() &&
        relatch_.test(offender_sketch_key(src))) {
      it->second.strikes = std::max(0, cfg_.blacklist_strikes - 1);
    }
  }
  Offender& o = it->second;
  o.touch_stamp = ++touch_seq_;
  if (now < o.blacklisted_until) return;  // already serving a sentence
  // One strike per control interval: a TCP loss burst (many drops, one
  // interval) counts once; a flood dropping every interval counts every
  // interval and reaches the threshold in strikes*interval seconds.
  if (o.last_strike >= 0.0 &&
      now - o.last_strike < 0.9 * cfg_.control_interval) {
    return;
  }
  o.last_strike = now;
  if (++o.strikes >= cfg_.blacklist_strikes) {
    o.strikes = 0;
    o.blacklisted_until = now + cfg_.blacklist_duration;
    if (journal_ != nullptr) {
      char detail[48];
      std::snprintf(detail, sizeof(detail), "src=%u until t=%.3f",
                    static_cast<unsigned>(src), o.blacklisted_until);
      journal_->record(now, telemetry::EventKind::kBlacklistAdd, "floc",
                       detail, src, cfg_.blacklist_duration);
    }
  }
}

std::uint64_t FlocQueue::acct_key(const Packet& p) const {
  if (cfg_.enable_capabilities && cfg_.n_max > 0)
    return issuer_.accounting_key(p);
  return p.flow;
}

TimeSec FlocQueue::measured_flow_mtd(const OriginPathState&, std::uint64_t key,
                                     FlowRecord& fr, const Aggregate& agg,
                                     TimeSec now) {
  if (cfg_.use_scalable_filter) {
    // Scalable mode: MTD approximated from the drop filter's over-rate
    // estimate; a flow at u times its fair rate has MTD = ref / u.
    const double u = filter_->over_rate(key, now, agg.params.ref_mtd);
    return agg.params.ref_mtd / std::max(1.0, u);
  }
  fr.mtd.set_window(
      std::max(cfg_.mtd_window_factor, 1.0) * agg.params.ref_mtd);
  return fr.mtd.mtd(now);
}

void FlocQueue::on_drop(const Packet& p, DropReason r, OriginPathState& op,
                        Aggregate& agg, FlowRecord* fr, TimeSec now) {
  if (tracer() != nullptr && p.span.active()) {
    trace_verdict(p, agg, now, "drop");  // DropReason added by the base hook
  }
  if (journal_ != nullptr) journal_drop(p, r, now);
  drop_counts_[static_cast<std::size_t>(r)]++;
  op.drops++;
  if (fr != nullptr) {
    fr->drops++;
    fr->total_drops++;
    if (cfg_.use_scalable_filter) {
      filter_->record_drop(acct_key(p), now, agg.params.ref_mtd);
    } else {
      fr->mtd.record_drop(now);
    }
  }
  note_drop(p, r, now);
}

bool FlocQueue::enqueue(Packet&& p, TimeSec now) {
  telemetry::ScopedTimer timer(prof_enqueue_);
  const bool admitted = enqueue_impl(std::move(p), now);
  // Telemetry off: one pointer test. On: detect mode transitions caused by
  // this arrival (queue growth or a control-tick q_max change).
  if (journal_ != nullptr) journal_mode(now);
  return admitted;
}

bool FlocQueue::enqueue_impl(Packet&& p, TimeSec now) {
  if (now >= next_control_) control(now);

  switch (p.type) {
    case PacketType::kSyn: {
      OriginPathState& op = origin_state(p.path);
      // Overload tightening, handshake side: per-origin-path SYN budget.
      // The gate sits BEFORE the flow touch so a shed SYN plants no flow
      // record — a handshake storm can neither fill the flow table nor pin
      // its occupancy (and with it the overload latch) at 1.0.
      if (overloaded_ && cfg_.overload_syn_rate > 0.0 &&
          !op.syn_gate_admit(now, cfg_.overload_syn_rate,
                             cfg_.overload_syn_burst)) {
        if (journal_ != nullptr) journal_drop(p, DropReason::kOverload, now);
        drop_counts_[static_cast<std::size_t>(DropReason::kOverload)]++;
        note_drop(p, DropReason::kOverload, now);
        return false;
      }
      FlowRecord& fr =
          op.touch_flow(acct_key(p), now, &cfg_.flow_budget,
                        mix64(cfg_.rng_seed) ^ touch_seq_, &evict_flows_);
      fr.syn_time = now;
      fr.rtt_sampled = false;
      if (cfg_.enable_capabilities) {
        const auto caps = issuer_.issue(p.src, p.dst, p.path);
        p.cap0 = caps.cap0;
        p.cap1 = caps.cap1;
      }
      if (q_.size() >= cfg_.buffer_packets) {
        if (journal_ != nullptr) journal_drop(p, DropReason::kQueueFull, now);
        drop_counts_[static_cast<std::size_t>(DropReason::kQueueFull)]++;
        note_drop(p, DropReason::kQueueFull, now);
        return false;
      }
      break;  // admit
    }
    case PacketType::kSynAck:
    case PacketType::kAck: {
      if (q_.size() >= cfg_.buffer_packets) {
        if (journal_ != nullptr) journal_drop(p, DropReason::kQueueFull, now);
        drop_counts_[static_cast<std::size_t>(DropReason::kQueueFull)]++;
        note_drop(p, DropReason::kQueueFull, now);
        return false;
      }
      break;  // admit transit control traffic
    }
    case PacketType::kData: {
      if (!admit_data(p, now)) return false;
      break;
    }
  }

  q_bytes_ += static_cast<std::size_t>(p.size_bytes);
  q_.push_back(std::move(p));
  note_admit();
  return true;
}

bool FlocQueue::admit_data(Packet& p, TimeSec now) {
  // Only consulted by the overload coarsening rule in origin_state (a valid
  // capability proves a completed handshake on this path); skipped entirely
  // outside overload so the baseline does no extra verification work.
  bool cap_backed = false;
  if (overloaded_ && cfg_.enable_capabilities && p.cap0 != 0) {
    telemetry::ScopedTimer timer(prof_cap_verify_);
    cap_backed =
        issuer_.verify_at(p, now) == CapabilityIssuer::VerifyResult::kOk;
  }
  OriginPathState& op = origin_state(p.path, cap_backed);
  Aggregate& agg = aggregate_for(op);
  const std::uint64_t key = acct_key(p);
  FlowRecord& fr =
      op.touch_flow(key, now, &cfg_.flow_budget,
                    mix64(cfg_.rng_seed) ^ touch_seq_, &evict_flows_);

  // RTT sample: capability issue (SYN) to first use (Section V-A).
  if (!fr.rtt_sampled && fr.syn_time >= 0.0) {
    const TimeSec sample = now - fr.syn_time;
    if (sample > 0.0) op.add_rtt_sample(sample);
    fr.rtt_sampled = true;
  }

  op.bytes_arrived += p.size_bytes;
  op.pkts_arrived++;
  fr.bytes_arrived += p.size_bytes;

  // Offender blacklist (hardening): a sentenced sender is dropped on sight.
  // The check sits AFTER arrival accounting on purpose: the blacklisted
  // traffic keeps counting toward the path's offered load, so the path
  // stays latched and a duty-cycling sender cannot launder the release by
  // getting itself blacklisted.
  if (cfg_.enable_blacklist) {
    const auto bit = offenders_.find(p.src);
    if (bit != offenders_.end() && now < bit->second.blacklisted_until) {
      on_drop(p, DropReason::kBlacklist, op, agg, &fr, now);
      return false;
    }
  }

  // Overload mode tightens admission to capability-carrying traffic: state
  // pressure means identities are churning faster than they can complete
  // handshakes, and data without a capability is exactly the traffic class
  // doing the churning. Established legitimate flows echo the capability
  // stamped on their SYN-ACK and pass untouched.
  if (overloaded_ && cfg_.overload_require_caps && cfg_.enable_capabilities &&
      p.cap0 == 0) {
    on_drop(p, DropReason::kOverload, op, agg, &fr, now);
    return false;
  }

  // Capability verification: forged identifiers are rejected outright —
  // except inside a key-rotation grace window, where a miss is re-stamped
  // under the new secret instead (dropping would cut off every established
  // legitimate flow whose source still echoes pre-rotation capabilities).
  if (cfg_.enable_capabilities && p.cap0 != 0) {
    CapabilityIssuer::VerifyResult vr;
    {
      telemetry::ScopedTimer timer(prof_cap_verify_);
      vr = issuer_.verify_at(p, now);
    }
    const bool traced = tracer() != nullptr && p.span.active();
    if (vr != CapabilityIssuer::VerifyResult::kOk) {
      if (issuer_.in_grace(now)) {
        const auto caps = issuer_.issue(p.src, p.dst, p.path);
        p.cap0 = caps.cap0;
        p.cap1 = caps.cap1;
        ++cap_reissues_;
        if (traced) tracer()->annotate(p.span.span, "cap", "reissued");
        if (journal_ != nullptr) {
          journal_->record(now, telemetry::EventKind::kCapReissue, "floc",
                           std::string(), p.flow, 0.0);
        }
      } else {
        ++cap_violations_;
        if (traced) trace_verdict(p, agg, now, "drop");
        if (journal_ != nullptr) journal_drop(p, DropReason::kCapability, now);
        drop_counts_[static_cast<std::size_t>(DropReason::kCapability)]++;
        note_drop(p, DropReason::kCapability, now);
        return false;
      }
    } else if (traced) {
      tracer()->annotate(p.span.span, "cap", "ok");
    }
  }

  if (q_.size() >= cfg_.buffer_packets) {
    on_drop(p, DropReason::kQueueFull, op, agg, &fr, now);
    return false;
  }

  const std::size_t q_len = q_.size();
  bool flooding = q_len > q_max_;
  // An identified attack path stays under token control regardless of the
  // queue: its fixed bucket limits the path's traffic even when the queue
  // is momentarily empty (Fig. 6(b): "the fixed token-bucket sizes limit
  // the traffic on these paths").
  bool congested = q_len > q_min_ || agg.attack;
  if (!congested) {
    // Early congested-mode entry for over-subscribed paths:
    // Q > Q_min * min{1, C_Si/lambda_Si} (Section V-A, uncongested mode).
    const double ratio =
        agg.lambda_bps > 0.0 ? std::min(1.0, agg.c / agg.lambda_bps) : 1.0;
    congested = static_cast<double>(q_len) >
                static_cast<double>(q_min_) * ratio;
    if (!congested) {
      // Uncongested: serviced regardless of token availability — but the
      // token state is still accounted so attack-path identification keeps
      // its signal through idle-queue periods.
      if (!agg.bucket.try_consume(p.size_bytes, now,
                                  !cfg_.force_base_bucket)) {
        op.token_misses++;
      }
      if (tracer() != nullptr && p.span.active()) {
        trace_verdict(p, agg, now, "admit");
      }
      return true;
    }
  }

  // Preferential drop for identified attack flows (Eq. IV.5): only applied
  // on attack paths, so legitimate-path flows are never penalized by it.
  // Within an attack path, only flows sending ABOVE their fair share are
  // candidates (the policy targets flows with over-rate alpha > 1); a
  // misidentified flow that reduces its rate immediately regains service.
  if (cfg_.enable_preferential_drop && agg.attack) {
    const double fair_bps = agg.c / std::max(agg.n, 1.0);
    if (fr.rate_bps > fair_bps) {
      const TimeSec mtd = measured_flow_mtd(op, key, fr, agg, now);
      const double p_serviced =
          std::min(1.0, mtd / std::max(agg.params.ref_mtd, 1e-9));
      if (!rng_.chance(p_serviced)) {
        on_drop(p, DropReason::kPreferential, op, agg, &fr, now);
        // Strike only flows the paper's MTD test identifies as attacks:
        // a TCP flow transiently over its fair share backs off on loss and
        // keeps a large MTD, so it never accumulates strikes.
        if (cfg_.enable_blacklist &&
            is_attack_mtd(mtd, agg.params.ref_mtd, cfg_.attack_mtd_factor)) {
          strike(p.src, now);
        }
        return false;
      }
    }
  }

  // Token-bucket admission. Over-subscribed paths (lambda > C — the attack
  // paths whose token control activated early) are held to their bucket
  // strictly, with the base size N once identified as attack paths: this is
  // what confines CBR/Shrew floods to their path allocation (Fig. 6(b)
  // discussion). The enlarged bucket N' applies in congested mode, the base
  // bucket N in flooding mode (Section V-A).
  // Strict-audit (dip) ticks measure against the base bucket N, like
  // flooding mode: the audit asks "does this path fit its allocation", not
  // the congested-mode benefit-of-the-doubt N'.
  const bool use_increased =
      !flooding && !agg.attack && !agg.dip_strict && !cfg_.force_base_bucket;
  bool token_ok;
  if (agg.attack) {
    // Identified attack path: a flow's access to the path's tokens is
    // filtered to its fair rate — Eq. IV.5's I(f) ("a token is available to
    // flow f") realized probabilistically so an aggressive flow cannot
    // monopolize the bucket against conformant flows, while conformant
    // (rate <= fair) flows pass unfiltered.
    const double fair_bps = agg.c / std::max(agg.n, 1.0);
    const bool fair_ok =
        fr.rate_bps <= fair_bps ||
        rng_.chance(fair_bps / std::max(fr.rate_bps, 1e-9));
    token_ok =
        fair_ok && agg.bucket.try_consume(p.size_bytes, now, use_increased);
  } else {
    token_ok = agg.bucket.try_consume(p.size_bytes, now, use_increased);
  }
  if (token_ok) {
    if (tracer() != nullptr && p.span.active()) {
      trace_verdict(p, agg, now, "admit-token");
    }
    return true;
  }

  // Post-reboot relearn window: parameters and attack flags are cold, so the
  // usual mode-derived strictness is unreliable. The configured policy picks
  // the failure direction — open (neutral drops only, below) or closed
  // (strict token drops) — until the state is warm again.
  bool strict = flooding || agg.attack || agg.dip_strict;
  if (now < recovery_until_) {
    strict = cfg_.recovery_policy == RecoveryPolicy::kFailClosed;
  }
  if (strict) {
    on_drop(p, DropReason::kToken, op, agg, &fr, now);
    // Strikes only for senders over their fair share on a latched path
    // whose MTD identifies them as unresponsive (attack) flows: conformant
    // flows sharing the path back off on loss and never accumulate strikes.
    if (cfg_.enable_blacklist && agg.attack &&
        fr.rate_bps > agg.c / std::max(agg.n, 1.0) &&
        is_attack_mtd(measured_flow_mtd(op, key, fr, agg, now),
                      agg.params.ref_mtd, cfg_.attack_mtd_factor)) {
      strike(p.src, now);
    }
    return false;
  }
  // Congested mode, path within its allocation but momentarily out of
  // tokens (the parameters are deliberately under-estimated): neutral
  // random-threshold drop. A queue threshold is drawn uniformly from
  // [Q_min, Q_max]; the packet is dropped only if the queue exceeds it
  // (early-congestion-notification analogue, Section V-A).
  const double q_th = rng_.uniform(static_cast<double>(q_min_),
                                   static_cast<double>(q_max_));
  if (static_cast<double>(q_len) > q_th) {
    on_drop(p, DropReason::kRandomEarly, op, agg, &fr, now);
    return false;
  }
  op.token_misses++;  // shortfall admitted neutrally: still an MTD signal
  if (tracer() != nullptr && p.span.active()) {
    trace_verdict(p, agg, now, "admit-neutral");
  }
  return true;
}

std::optional<Packet> FlocQueue::dequeue(TimeSec now) {
  telemetry::ScopedTimer timer(prof_dequeue_);
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  q_bytes_ -= static_cast<std::size_t>(p.size_bytes);
  ++dequeues_;
  if (journal_ != nullptr) journal_mode(now);
  return p;
}

void FlocQueue::reboot(TimeSec now, bool preserve_queue) {
  origins_.clear();
  aggregates_.clear();
  plan_map_.clear();
  if (filter_) filter_ = std::make_unique<ScalableDropFilter>(cfg_.filter);
  if (!preserve_queue) {
    flushed_ += q_.size();
    q_.clear();
    q_bytes_ = 0;
  }
  control_ticks_ = 0;
  next_control_ = now;  // re-estimate parameters on the next arrival
  recovery_until_ =
      now + cfg_.recovery_intervals * cfg_.control_interval;
  ++reboots_;
  if (journal_ != nullptr) {
    char detail[80];
    std::snprintf(detail, sizeof(detail),
                  "%s queue, recovery until t=%.3f",
                  preserve_queue ? "preserved" : "flushed", recovery_until_);
    journal_->record(now, telemetry::EventKind::kReboot, "floc", detail,
                     reboots_, static_cast<double>(flushed_));
    recovery_pending_journal_ = true;
    journal_mode(now);  // a queue wipe can leave congested/flooding mode
  }
}

void FlocQueue::rotate_secret(std::uint64_t new_secret, TimeSec now) {
  issuer_.rotate(new_secret, now, cfg_.control_interval);
  if (journal_ != nullptr) {
    char detail[64];
    std::snprintf(detail, sizeof(detail), "grace until t=%.3f",
                  now + cfg_.control_interval);
    journal_->record(now, telemetry::EventKind::kKeyRotation, "floc", detail);
  }
}

void FlocQueue::control(TimeSec now) {
  telemetry::ScopedTimer timer(prof_control_);
  const TimeSec interval = cfg_.control_interval;
  // Hardening: jitter the measurement boundary so an adversary cannot phase
  // its pulses against a predictable control clock. Gated so that the
  // default (jitter=0) consumes no RNG values at all.
  if (cfg_.interval_jitter > 0.0) {
    next_control_ =
        now + interval * (1.0 + rng_.uniform(-cfg_.interval_jitter,
                                             cfg_.interval_jitter));
  } else {
    next_control_ = now + interval;
  }
  ++control_ticks_;

  if (journal_ != nullptr && recovery_pending_journal_ &&
      now >= recovery_until_) {
    recovery_pending_journal_ = false;
    journal_->record(now, telemetry::EventKind::kRecoveryEnd, "floc",
                     cfg_.recovery_policy == RecoveryPolicy::kFailOpen
                         ? "fail-open window over"
                         : "fail-closed window over",
                     reboots_);
  }

  // --- Expire idle flows; drop empty origin paths ------------------------
  for (auto it = origins_.begin(); it != origins_.end();) {
    it->second.expire_flows(now, cfg_.flow_timeout);
    if (it->second.flow_count() == 0) {
      plan_map_.erase(it->first);
      it = origins_.erase(it);
    } else {
      ++it;
    }
  }

  // --- Rebuild aggregates from the current plan --------------------------
  std::unordered_map<std::uint64_t, Aggregate> fresh;
  for (auto& [okey, op] : origins_) {
    auto pit = plan_map_.find(okey);
    const std::uint64_t akey = (pit != plan_map_.end()) ? pit->second : okey;
    plan_map_[okey] = akey;
    op.aggregate_key = akey;

    auto fit = fresh.find(akey);
    if (fit == fresh.end()) {
      Aggregate agg;
      auto old = aggregates_.find(akey);
      if (old != aggregates_.end()) {
        agg.id = old->second.id;
        agg.weight = old->second.weight;
        agg.bucket = old->second.bucket;  // keep token state across ticks
        agg.params = old->second.params;
        agg.attack = old->second.attack;
        agg.attack_streak = old->second.attack_streak;
        agg.calm_streak = old->second.calm_streak;
        agg.n_estimated = old->second.n_estimated;
      } else {
        agg.id = op.path();
        agg.weight = 1.0;
        restore_offense(agg, akey);  // re-latch relearned offender paths
      }
      agg.n = 0.0;
      fit = fresh.emplace(akey, std::move(agg)).first;
    }
    Aggregate& agg = fit->second;
    agg.members.push_back(okey);
    agg.n += static_cast<double>(op.flow_count());
    agg.lambda_bps += op.bytes_arrived * kBitsPerByte / interval;
    agg.drops_interval += op.drops;
    // Aggregate MTD signal: realized drops of the path plus token
    // shortfalls that the neutral/uncongested policies admitted anyway.
    agg.token_misses_interval += op.token_misses + op.drops;
    agg.arrivals_interval += op.pkts_arrived;
  }
  aggregates_ = std::move(fresh);

  // --- Per-aggregate parameters, attack-path detection --------------------
  double total_weight = 0.0;
  for (auto& [k, agg] : aggregates_) total_weight += agg.weight;
  if (total_weight <= 0.0) total_weight = 1.0;

  double q_max_extra = 0.0;
  for (auto& [akey, agg] : aggregates_) {
    // RTT: flow-weighted mean over member origins, damped (Section V-A).
    double rtt_sum = 0.0, rtt_w = 0.0;
    for (std::uint64_t okey : agg.members) {
      const auto& op = origins_.at(okey);
      const double w = std::max<double>(1.0, op.flow_count());
      rtt_sum += op.mean_rtt(cfg_.default_rtt) * w;
      rtt_w += w;
    }
    agg.rtt = (rtt_w > 0.0 ? rtt_sum / rtt_w : cfg_.default_rtt) *
              cfg_.rtt_damping;
    agg.c = cfg_.link_bandwidth * agg.weight / total_weight;
    if (cfg_.estimate_flow_count) {
      // Section V-B.1: n from the aggregate drop rate (inverting the Reno
      // drop model), smoothed for stability. Works only while the path has
      // drops; otherwise the previous estimate (or exact count) persists.
      const double drop_rate =
          static_cast<double>(agg.drops_interval) / interval;
      if (drop_rate > 0.0) {
        const double n_inst = model::estimate_flow_count(
            agg.c, agg.rtt, drop_rate, cfg_.pkt_bytes);
        agg.n_estimated = agg.n_estimated > 0.0
                              ? 0.7 * agg.n_estimated + 0.3 * n_inst
                              : n_inst;
      }
      if (agg.n_estimated > 0.0) agg.n = std::max(1.0, agg.n_estimated);
    }
    agg.params = model::compute_params(agg.c, agg.rtt, std::max(agg.n, 1.0),
                                       cfg_.pkt_bytes);
    // Detection thresholds are taken from the UN-jittered parameters:
    // jitter exists to move the attacker-visible refill boundaries, not to
    // randomize the latch condition — a scaled period would drag marginal
    // legitimate paths over (or under) the detection line at random.
    const TimeSec detect_period = agg.params.period;
    if (cfg_.interval_jitter > 0.0) {
      // Hardening: scatter each aggregate's effective token period around
      // T_Si, re-drawn every tick, so drop-spacing measurements never
      // converge. Bucket sizes scale with the period: the long-run rate
      // (bucket/period) is exactly preserved, only the boundaries move.
      // Hashed, not drawn from rng_: independent of map iteration order.
      const double f =
          1.0 + cfg_.interval_jitter *
                    signed_unit_hash(akey ^
                                     static_cast<std::uint64_t>(control_ticks_) *
                                         0x9E3779B97F4A7C15ULL ^
                                     cfg_.rng_seed);
      agg.params.period *= f;
      agg.params.bucket_packets *= f;
      agg.params.bucket_packets_incr *= f;
    }
    agg.dip_strict = false;
    if (cfg_.jitter_dip_prob > 0.0) {
      // Feedback poisoning (see FlocConfig): an occasional one-tick bucket
      // dip with the period untouched, so the tick's admitted volume
      // genuinely drops at a time no admission-edge prober can predict. On
      // paths under probation (any offense record — they latched at least
      // once) the dip tick also enforces tokens strictly: the shortfall
      // becomes real losses instead of the congested-mode neutral
      // fallback, which is the signal a loss-averse closed-loop attacker
      // cannot ignore. Clean paths (a flash crowd never latches) are never
      // audited strictly and only ever see the milder bucket dip.
      const std::uint64_t tick_word =
          static_cast<std::uint64_t>(control_ticks_) * 0x9E3779B97F4A7C15ULL ^
          cfg_.rng_seed;
      const double u = 0.5 * (1.0 + signed_unit_hash(
                                        akey ^ tick_word ^
                                        0xD1D0D1D0D1D0D1D0ULL));
      if (u < cfg_.jitter_dip_prob) {
        const double v = 0.5 * (1.0 + signed_unit_hash(
                                          akey ^ tick_word ^
                                          0x5CA1AB1E5CA1AB1EULL));
        const double f =
            cfg_.jitter_dip_floor + (1.0 - cfg_.jitter_dip_floor) * v;
        agg.params.bucket_packets *= f;
        agg.params.bucket_packets_incr *= f;
        agg.dip_strict = offense_.find(akey) != offense_.end();
      }
    }
    agg.bucket.configure(agg.params, cfg_.pkt_bytes);

    // Attack path (Section IV-B.1): aggregate MTD below the token period
    // while the offered load exceeds the allocation plus the reference drop
    // rate — lambda_Si > C_Si + 1/T_Si, all in packets per second. The MTD
    // here is measured over token-shortfall events (requests the bucket
    // could not cover): under the paper's strict admission these ARE the
    // drops; counting shortfalls keeps the signal causal even while the
    // neutral congested-mode policy admits some token-less packets.
    const TimeSec agg_mtd =
        agg.token_misses_interval > 0
            ? interval / static_cast<double>(agg.token_misses_interval)
            : std::numeric_limits<TimeSec>::infinity();
    const double c_pkts = agg.c / (kBitsPerByte * cfg_.pkt_bytes);
    const double lambda_pkts =
        agg.lambda_bps / (kBitsPerByte * cfg_.pkt_bytes);
    const bool condition = agg_mtd < detect_period &&
                           lambda_pkts > c_pkts + 1.0 / detect_period;
#ifdef FLOC_DEBUG_DETECT
    std::fprintf(stderr,
                 "detect t=%.2f agg=%s mtd=%.4f T=%.4f lam=%.0f thr=%.0f "
                 "cond=%d streak=%d\n",
                 now, agg.id.to_string().c_str(), agg_mtd, detect_period,
                 lambda_pkts, c_pkts + 1.0 / detect_period, condition,
                 agg.attack_streak);
#endif
    // Hysteresis: a flood holds the condition every interval; a legitimate
    // path crossing it transiently (TCP probing) does not latch. With
    // backoff_release, a path that has latched before must stay calm
    // `attack_release * multiplier` intervals — each re-latch doubles the
    // multiplier, so duty-cycled floods face geometrically growing quiet
    // requirements instead of a fixed, learnable one.
    const bool was_attack = agg.attack;
    int release_required = cfg_.attack_release;
    if (cfg_.backoff_release) {
      const auto poit = offense_.find(akey);
      if (poit != offense_.end()) release_required *= poit->second.multiplier;
    }
    if (condition) {
      agg.attack_streak++;
      agg.calm_streak = 0;
      if (agg.attack_streak >= cfg_.attack_latch) agg.attack = true;
    } else {
      agg.calm_streak++;
      agg.attack_streak = 0;
      if (agg.calm_streak >= release_required) agg.attack = false;
    }
    if (agg.attack != was_attack) {
      if (journal_ != nullptr) {
        journal_->record(now,
                         agg.attack ? telemetry::EventKind::kAttackLatch
                                    : telemetry::EventKind::kAttackRelease,
                         "floc", agg.id.to_string(), akey, agg_mtd);
      }
      if (cfg_.backoff_release) {
        auto poit = offense_.find(akey);
        if (poit == offense_.end()) {
          enforce_offense_budget();
          poit = offense_.emplace(akey, PathOffense{}).first;
        }
        PathOffense& po = poit->second;
        po.touch_stamp = ++touch_seq_;
        po.attack = agg.attack;
        po.next_decay = now + cfg_.backoff_decay;
        if (agg.attack) {
          // Escalate only on a fast relapse: re-latching within
          // backoff_relapse of the previous release is the signature of an
          // attacker timing its quiet phase to the release hysteresis. A
          // legitimate path whose marginal latches are spread out keeps
          // multiplier 1 no matter how many times it latches.
          if (po.ever_latched && po.multiplier < cfg_.backoff_cap &&
              po.last_release >= 0.0 &&
              now - po.last_release <= cfg_.backoff_relapse &&
              lambda_pkts > cfg_.backoff_lambda_factor *
                                (c_pkts + 1.0 / detect_period)) {
            po.multiplier = std::min(cfg_.backoff_cap, po.multiplier * 2);
            if (journal_ != nullptr) {
              journal_->record(now, telemetry::EventKind::kBackoffEscalate,
                               "floc", agg.id.to_string(), akey,
                               static_cast<double>(po.multiplier));
            }
          }
          po.ever_latched = true;
        } else {
          po.last_release = now;
        }
      }
    }

    q_max_extra += std::sqrt(std::max(agg.n, 1.0)) * agg.params.peak_window;
  }
  // Q_max = Q_min + sum sqrt(n_i)*W_i, floored at 10% of the buffer above
  // Q_min so a freshly started (or idle) queue is never stuck with
  // Q_max == Q_min, and capped at the physical buffer.
  const std::size_t headroom_floor =
      std::max<std::size_t>(1, cfg_.buffer_packets / 10);
  q_max_ = std::min(
      cfg_.buffer_packets,
      q_min_ + std::max(headroom_floor, static_cast<std::size_t>(q_max_extra)));

  // --- Conformance update per origin path (Eq. IV.6) ----------------------
  for (auto& [okey, op] : origins_) {
    const Aggregate& agg = aggregates_.at(op.aggregate_key);
    const double fair_bps = agg.c / std::max(agg.n, 1.0);
    std::size_t n_attack = 0;
    for (auto& [fkey, fr] : op.flows()) {
      // Refresh the smoothed per-flow arrival-rate estimate.
      const double inst = fr.bytes_arrived * kBitsPerByte / interval;
      fr.rate_bps = fr.rate_bps > 0.0 ? 0.5 * fr.rate_bps + 0.5 * inst : inst;

#ifdef FLOC_DEBUG_CONF
      fr.mtd.set_window(std::max(cfg_.mtd_window_factor, 1.0) *
                        agg.params.ref_mtd);
      std::fprintf(stderr,
                   "conf t=%.2f path=%s flow=%llu rate=%.0f fair=%.0f "
                   "mtd=%.4f ref=%.4f drops=%llu\n",
                   now, op.path().to_string().c_str(),
                   (unsigned long long)fkey, fr.rate_bps, fair_bps,
                   fr.mtd.mtd(now), agg.params.ref_mtd,
                   (unsigned long long)fr.total_drops);
#endif
      if (fr.rate_bps <= fair_bps) continue;  // within fair share: legit
      TimeSec mtd;
      if (cfg_.use_scalable_filter) {
        const double u = filter_->over_rate(fkey, now, agg.params.ref_mtd);
        mtd = agg.params.ref_mtd / std::max(1.0, u);
      } else {
        fr.mtd.set_window(std::max(cfg_.mtd_window_factor, 1.0) *
                          agg.params.ref_mtd);
        mtd = fr.mtd.mtd(now);
      }
      if (is_attack_mtd(mtd, agg.params.ref_mtd, cfg_.attack_mtd_factor))
        ++n_attack;
    }
    op.update_conformance(legitimate_fraction(n_attack, op.flow_count()));
  }

  // --- Hardening housekeeping ---------------------------------------------
  if (cfg_.backoff_release) {
    // A path that stays unlatched earns one multiplier halving per
    // backoff_decay window; fully decayed records are forgotten (the next
    // latch is treated as a first offense again).
    for (auto it = offense_.begin(); it != offense_.end();) {
      PathOffense& po = it->second;
      if (!po.attack && now >= po.next_decay) {
        if (po.multiplier > 1) {
          po.multiplier /= 2;
          po.next_decay = now + cfg_.backoff_decay;
          ++it;
        } else {
          it = offense_.erase(it);
        }
      } else {
        ++it;
      }
    }
  }
  if (cfg_.enable_blacklist) {
    for (auto it = offenders_.begin(); it != offenders_.end();) {
      Offender& o = it->second;
      if (o.blacklisted_until >= 0.0) {
        if (now >= o.blacklisted_until) {
          if (journal_ != nullptr) {
            char detail[32];
            std::snprintf(detail, sizeof(detail), "src=%u",
                          static_cast<unsigned>(it->first));
            journal_->record(now, telemetry::EventKind::kBlacklistExpire,
                             "floc", detail, it->first);
          }
          it = offenders_.erase(it);
        } else {
          ++it;
        }
      } else {
        // Un-sentenced strikes halve every tick the sender goes without a
        // new strike, so transient loss episodes of legitimate flows wash
        // out while a persistent flood keeps accumulating.
        if (now - o.last_strike >= cfg_.control_interval) o.strikes /= 2;
        if (o.strikes == 0) {
          it = offenders_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  // --- Aggregation run (Section IV-C) -------------------------------------
  if (cfg_.enable_aggregation &&
      control_ticks_ % std::max(1, cfg_.aggregation_every) == 0) {
    run_aggregation(now);
  }

  // --- Reset interval counters --------------------------------------------
  for (auto& [okey, op] : origins_) {
    op.bytes_arrived = 0.0;
    op.pkts_arrived = 0;
    op.drops = 0;
    op.token_misses = 0;
    for (auto& [fkey, fr] : op.flows()) {
      fr.bytes_arrived = 0.0;
      fr.drops = 0;
    }
  }
  // Aggregate counters are recomputed from origin sums at the next rebuild;
  // lambda_bps intentionally persists as "last measured offered load" for
  // the early congested-mode test.

  // --- Bounded-state housekeeping ------------------------------------------
  if (cfg_.enable_overload_mode) update_overload(now);
  if (relatch_enabled() && cfg_.sketch_rotate_ticks > 0 &&
      control_ticks_ % cfg_.sketch_rotate_ticks == 0) {
    // Age the re-latch sketch two rotation windows after the mark: long
    // enough for any realistic resume, short enough that a false positive
    // (hash collision with an innocent key) cannot haunt a path forever.
    relatch_.rotate();
  }
  if (journal_ != nullptr && state_evictions() != journal_evict_mark_) {
    // Batched per control tick — per-victim events would let an eviction
    // storm flood the journal ring.
    char detail[128];
    std::snprintf(detail, sizeof(detail),
                  "origins=%llu flows=%llu offense=%llu offenders=%llu",
                  static_cast<unsigned long long>(evict_origins_),
                  static_cast<unsigned long long>(evict_flows_),
                  static_cast<unsigned long long>(evict_offense_),
                  static_cast<unsigned long long>(evict_offenders_));
    journal_->record(now, telemetry::EventKind::kStateEvict, "floc", detail,
                     state_evictions() - journal_evict_mark_,
                     state_occupancy());
    journal_evict_mark_ = state_evictions();
  }
}

void FlocQueue::update_overload(TimeSec now) {
  const double occ = state_occupancy();
  if (!overloaded_ && occ >= cfg_.overload_enter) {
    overloaded_ = true;
    ++overload_entries_;
    if (journal_ != nullptr) {
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    "occupancy=%.3f origins=%zu offense=%zu offenders=%zu",
                    occ, origins_.size(), offense_.size(), offenders_.size());
      journal_->record(now, telemetry::EventKind::kOverloadEnter, "floc",
                       detail, overload_entries_, occ);
    }
  } else if (overloaded_ && occ <= cfg_.overload_exit) {
    overloaded_ = false;
    if (journal_ != nullptr) {
      char detail[48];
      std::snprintf(detail, sizeof(detail), "occupancy=%.3f", occ);
      journal_->record(now, telemetry::EventKind::kOverloadExit, "floc",
                       detail, overload_entries_, occ);
    }
  }
}

void FlocQueue::run_aggregation(TimeSec) {
  std::vector<PathSnapshot> snaps;
  snaps.reserve(origins_.size());
  for (const auto& [okey, op] : origins_) {
    const auto ait = aggregates_.find(op.aggregate_key);
    const bool suspect =
        ait != aggregates_.end() &&
        (ait->second.attack || ait->second.attack_streak > 0);
    snaps.push_back(PathSnapshot{op.path(), op.conformance(),
                                 static_cast<double>(op.flow_count()),
                                 suspect});
  }
  AggregationConfig acfg;
  acfg.s_max = cfg_.s_max;
  acfg.e_th = cfg_.e_th;
  acfg.legit_max_increase = cfg_.legit_max_increase;
  Aggregator aggregator(acfg);
  const AggregationPlan plan = aggregator.plan(snaps);

  plan_map_.clear();
  std::unordered_map<std::uint64_t, const AggregationPlan::Entry*> by_agg;
  for (const auto& [okey, entry] : plan.mapping) {
    const std::uint64_t akey = entry.group_key();
    plan_map_[okey] = akey;
    by_agg[akey] = &entry;
  }
  // Seed / update aggregate identities and weights so the next rebuild (and
  // on-demand lookups until then) see the new plan.
  for (const auto& [akey, entry] : by_agg) {
    auto it = aggregates_.find(akey);
    if (it == aggregates_.end()) {
      Aggregate agg;
      agg.id = entry->aggregate;
      agg.weight = entry->share_weight;
      agg.rtt = cfg_.default_rtt * cfg_.rtt_damping;
      agg.c = cfg_.link_bandwidth /
              static_cast<double>(std::max<std::size_t>(1, aggregates_.size()));
      agg.params = model::compute_params(agg.c, agg.rtt, 1.0, cfg_.pkt_bytes);
      agg.bucket.configure(agg.params, cfg_.pkt_bytes);
      restore_offense(agg, akey);
      aggregates_.emplace(akey, std::move(agg));
    } else {
      it->second.weight = entry->share_weight;
    }
  }
}

bool FlocQueue::audit(TimeSec now, std::string* why) const {
  const auto fail = [why](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  // (1) Byte accounting matches the queued packets.
  std::size_t bytes = 0;
  for (const Packet& p : q_) bytes += static_cast<std::size_t>(p.size_bytes);
  if (bytes != q_bytes_) {
    return fail("queued bytes " + std::to_string(bytes) +
                " != accounted q_bytes " + std::to_string(q_bytes_));
  }
  if (q_.size() > cfg_.buffer_packets) {
    return fail("queue length " + std::to_string(q_.size()) +
                " exceeds buffer " + std::to_string(cfg_.buffer_packets));
  }
  // (2) Token counts within [0, N'] for every aggregate.
  for (const auto& [akey, agg] : aggregates_) {
    if (!agg.bucket.configured()) continue;
    const double cap = agg.bucket.capacity_bytes(true);
    const double t = agg.bucket.peek_tokens(now, true);
    if (t < -1e-6 || t > cap + 1e-6) {
      return fail("aggregate " + agg.id.to_string() + " tokens " +
                  std::to_string(t) + " outside [0, " + std::to_string(cap) +
                  "]");
    }
  }
  // (3) Packet conservation: every admission was serviced, lost to a reboot
  // queue wipe, or is still queued.
  if (admissions() != dequeues_ + flushed_ + q_.size()) {
    return fail("admissions " + std::to_string(admissions()) +
                " != dequeues " + std::to_string(dequeues_) + " + flushed " +
                std::to_string(flushed_) + " + queued " +
                std::to_string(q_.size()));
  }
  // (4) Drop ledger: the per-reason counters sum to the total drop count.
  std::uint64_t by_reason = 0;
  for (std::uint64_t c : drop_counts_) by_reason += c;
  if (by_reason != drops()) {
    return fail("drop reasons sum " + std::to_string(by_reason) +
                " != total drops " + std::to_string(drops()));
  }
  // (5) State budgets hold: enforced-before-insert means a table can never
  // exceed its capacity, at any instant. Aggregates are bounded derivatively
  // (rebuilt from live origins each tick, erased when their last member
  // evicts), so they can exceed the origin capacity only by the origins
  // admitted since the last rebuild — 2x is a safe ceiling.
  if (cfg_.origin_budget.enabled()) {
    if (origins_.size() > cfg_.origin_budget.capacity) {
      return fail("origins " + std::to_string(origins_.size()) +
                  " exceed budget " +
                  std::to_string(cfg_.origin_budget.capacity));
    }
    if (aggregates_.size() > 2 * cfg_.origin_budget.capacity) {
      return fail("aggregates " + std::to_string(aggregates_.size()) +
                  " exceed 2x origin budget " +
                  std::to_string(2 * cfg_.origin_budget.capacity));
    }
  }
  if (cfg_.flow_budget.enabled() &&
      max_path_flow_count() > cfg_.flow_budget.capacity) {
    return fail("per-path flows " + std::to_string(max_path_flow_count()) +
                " exceed budget " + std::to_string(cfg_.flow_budget.capacity));
  }
  if (cfg_.offense_budget.enabled() &&
      offense_.size() > cfg_.offense_budget.capacity) {
    return fail("offense records " + std::to_string(offense_.size()) +
                " exceed budget " +
                std::to_string(cfg_.offense_budget.capacity));
  }
  if (cfg_.offender_budget.enabled() &&
      offenders_.size() > cfg_.offender_budget.capacity) {
    return fail("offender records " + std::to_string(offenders_.size()) +
                " exceed budget " +
                std::to_string(cfg_.offender_budget.capacity));
  }
  return true;
}

// --- Introspection ---------------------------------------------------------

bool FlocQueue::is_attack_path(const PathId& origin) const {
  const auto oit = origins_.find(origin.key());
  if (oit == origins_.end()) return false;
  const auto ait = aggregates_.find(oit->second.aggregate_key);
  return ait != aggregates_.end() && ait->second.attack;
}

bool FlocQueue::is_aggregated(const PathId& origin) const {
  const auto oit = origins_.find(origin.key());
  if (oit == origins_.end()) return false;
  return oit->second.aggregate_key != origin.key();
}

double FlocQueue::conformance(const PathId& origin) const {
  const auto oit = origins_.find(origin.key());
  return oit == origins_.end() ? 1.0 : oit->second.conformance();
}

const model::TokenBucketParams* FlocQueue::params_for(
    const PathId& origin) const {
  const auto oit = origins_.find(origin.key());
  if (oit == origins_.end()) return nullptr;
  const auto ait = aggregates_.find(oit->second.aggregate_key);
  return ait == aggregates_.end() ? nullptr : &ait->second.params;
}

double FlocQueue::flow_mtd(const PathId& origin, std::uint64_t key,
                           TimeSec now) {
  auto oit = origins_.find(origin.key());
  if (oit == origins_.end()) return std::numeric_limits<double>::infinity();
  auto ait = aggregates_.find(oit->second.aggregate_key);
  if (ait == aggregates_.end()) return std::numeric_limits<double>::infinity();
  FlowRecord* fr = oit->second.find_flow(key);
  if (fr == nullptr) return std::numeric_limits<double>::infinity();
  return measured_flow_mtd(oit->second, key, *fr, ait->second, now);
}

std::size_t FlocQueue::path_flow_count(const PathId& origin) const {
  const auto oit = origins_.find(origin.key());
  return oit == origins_.end() ? 0 : oit->second.flow_count();
}

int FlocQueue::backoff_multiplier(const PathId& origin) const {
  if (!cfg_.backoff_release) return 1;
  const auto oit = origins_.find(origin.key());
  const std::uint64_t akey =
      oit != origins_.end() ? oit->second.aggregate_key : origin.key();
  const auto poit = offense_.find(akey);
  return poit == offense_.end() ? 1 : poit->second.multiplier;
}

int FlocQueue::release_required(const PathId& origin) const {
  return cfg_.attack_release * backoff_multiplier(origin);
}

bool FlocQueue::is_blacklisted(HostAddr src, TimeSec now) const {
  const auto it = offenders_.find(src);
  return it != offenders_.end() && now < it->second.blacklisted_until;
}

std::size_t FlocQueue::blacklist_size(TimeSec now) const {
  std::size_t n = 0;
  for (const auto& [src, o] : offenders_) {
    if (now < o.blacklisted_until) ++n;
  }
  return n;
}

}  // namespace floc
