// Per-origin-path flow accounting: active-flow tracking with expiry, RTT
// sampling (capability issue -> first use, Section V-A), per-interval arrival
// and drop counters, and per-flow MTD trackers.
//
// "Accounting flows" are the unit FLoc allocates fair bandwidth to. Normally
// one per transport flow; with the covert-attack defense enabled (n_max > 0)
// all of a source's flows hashing to the same capability slot share one
// accounting flow (Section IV-B.3), so a high-fanout source looks like a
// single high-rate flow.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "core/mtd_tracker.h"
#include "core/state_budget.h"
#include "netsim/packet.h"
#include "util/stats.h"
#include "util/units.h"

namespace floc {

struct FlowRecord {
  TimeSec first_seen = 0.0;
  TimeSec last_seen = 0.0;
  TimeSec syn_time = -1.0;   // when this flow's SYN passed the router
  bool rtt_sampled = false;  // true once the SYN->first-data sample was taken
  MtdTracker mtd;
  double bytes_arrived = 0.0;  // current control interval
  std::uint64_t drops = 0;     // current control interval
  std::uint64_t total_drops = 0;
  double rate_bps = 0.0;       // smoothed arrival-rate estimate
  std::uint64_t touch_stamp = 0;  // monotone per-path LRU stamp
};

// State of one *origin* (full, unaggregated) path identifier.
class OriginPathState {
 public:
  explicit OriginPathState(PathId path, double conformance_beta)
      : path_(std::move(path)), conformance_(conformance_beta, 1.0),
        rtt_(0.2) {
    conformance_.set(1.0);  // paths start fully conformant (Eq. IV.6)
  }

  const PathId& path() const { return path_; }

  // Find-or-create the accounting-flow record for `acct_key`. With a
  // non-null enabled `budget`, creating a record in a full table first
  // evicts down to the budget's shrink target (kLru: coldest records;
  // kLowestOffenseFirst: fewest lifetime drops first, so the MTD history of
  // offending flows survives identity churn; kProbabilisticDecay: seeded
  // uniform victims). `evicted` (optional) accumulates the eviction count.
  FlowRecord& touch_flow(std::uint64_t acct_key, TimeSec now,
                         const StateBudgetConfig* budget = nullptr,
                         std::uint64_t decay_salt = 0,
                         std::uint64_t* evicted = nullptr);
  FlowRecord* find_flow(std::uint64_t acct_key);

  // Remove flows idle longer than `timeout`; returns surviving count.
  std::size_t expire_flows(TimeSec now, TimeSec timeout);

  std::size_t flow_count() const { return flows_.size(); }
  std::unordered_map<std::uint64_t, FlowRecord>& flows() { return flows_; }
  const std::unordered_map<std::uint64_t, FlowRecord>& flows() const {
    return flows_;
  }

  void add_rtt_sample(TimeSec s) { rtt_.add(s); }
  bool has_rtt() const { return rtt_.seeded(); }
  TimeSec mean_rtt(TimeSec fallback) const {
    return rtt_.seeded() ? rtt_.value() : fallback;
  }

  // Conformance EWMA E_Ri (Eq. IV.6): fed 1 - n_attack/n each interval.
  void update_conformance(double legit_fraction) {
    conformance_.add(legit_fraction);
  }
  double conformance() const { return conformance_.value(); }

  // Interval counters (reset by the control loop).
  double bytes_arrived = 0.0;
  std::uint64_t pkts_arrived = 0;
  std::uint64_t drops = 0;
  // Packets that found no token available (whether or not the neutral
  // congested-mode policy ultimately dropped them): the MTD signal for
  // attack-path identification (Section IV-B.1).
  std::uint64_t token_misses = 0;

  // Overload-mode SYN gate: a per-path token bucket the owner queue consults
  // ONLY while overloaded. Handshakes are normally admitted unconditionally,
  // but an identity-churn attacker escalates into a pure SYN storm (each
  // rotation is a fresh handshake); under overload its coarsened identities
  // funnel through a handful of paths, so a per-path budget confines the
  // storm while legitimate leaf paths — with their own, barely-touched
  // buckets — keep opening connections.
  bool syn_gate_admit(TimeSec now, double rate, double burst) {
    if (syn_stamp_ >= 0.0) {
      syn_tokens_ = std::min(burst, syn_tokens_ + (now - syn_stamp_) * rate);
    } else {
      syn_tokens_ = burst;  // first consult: a full burst allowance
    }
    syn_stamp_ = now;
    if (syn_tokens_ < 1.0) return false;
    syn_tokens_ -= 1.0;
    return true;
  }

  // Key of the aggregate this path currently maps to.
  std::uint64_t aggregate_key = 0;

  // Monotone touch stamp maintained by the owner (FlocQueue) for origin-table
  // LRU ranking; 0 until first stamped.
  std::uint64_t touch_stamp = 0;

 private:
  PathId path_;
  std::unordered_map<std::uint64_t, FlowRecord> flows_;
  Ewma conformance_;
  Ewma rtt_;
  std::uint64_t touch_counter_ = 0;  // per-path LRU clock for flow records
  double syn_tokens_ = 0.0;          // overload-mode SYN gate bucket
  TimeSec syn_stamp_ = -1.0;         // <0 = gate never consulted
};

}  // namespace floc
