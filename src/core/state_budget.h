// Bounded-state policy for the defense's own bookkeeping tables.
//
// FLoc's dependability rests on per-path and per-sender state (origin paths,
// flow records, offense records, the offender blacklist). Left unbounded, an
// adversary that churns path identifiers or sender addresses exhausts the
// *defense's* memory long before the link floods — a state-exhaustion attack
// on the protection itself. This header provides the reusable pieces every
// bounded table shares:
//
//  * StateBudgetConfig — a capacity (0 = unbounded, the default: baseline
//    behavior is bit-identical with budgets off) plus an eviction policy;
//  * enforce_budget() — deterministic batch eviction down to a shrink
//    target. Victim selection never depends on unordered_map iteration
//    order: candidates are ranked by (policy primary, recency, key) — a
//    strict total order — so the evicted SET (and the callback order) is a
//    pure function of table contents, independent of hashing, insertion
//    history, or --jobs;
//  * EvictionSketch — a two-bank bloom-style sketch of recently evicted
//    *guilty* keys, giving eviction-safe re-latch semantics: an offender
//    whose verdict state was evicted under pressure and who resumes
//    attacking is re-detected within one MTD (control) interval instead of
//    enjoying a fresh hysteresis run-up. False positives are harmless — a
//    colliding innocent path only loses latch hysteresis, the detection
//    condition itself must still hold for it to be penalized.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/seed.h"

namespace floc {

// Who gets evicted first when a table is over budget.
enum class EvictionPolicy : std::uint8_t {
  kLru,                // least-recently-touched entries first
  kLowestOffenseFirst, // least-offending entries first (offenders stay pinned)
  kProbabilisticDecay, // uniform pseudo-random victims (seeded, deterministic)
};
inline constexpr std::size_t kEvictionPolicyCount = 3;

const char* to_string(EvictionPolicy p);
// Inverse of to_string; returns false (and leaves *out alone) for unknown
// names. Round-tripped exhaustively in tests.
bool from_string(const std::string& name, EvictionPolicy* out);

struct StateBudgetConfig {
  // Maximum entries the table may hold. 0 = unbounded (bounding off); the
  // default, so baseline runs are bit-identical to the un-budgeted code.
  std::size_t capacity = 0;
  EvictionPolicy policy = EvictionPolicy::kLru;
  // Batch eviction: when an insert finds the table at capacity, shrink to
  // `evict_to * capacity` in one pass, amortizing the O(n) candidate scan
  // over the next (1 - evict_to) * capacity inserts.
  double evict_to = 0.9;

  bool enabled() const { return capacity > 0; }
  std::size_t shrink_target() const;
};

// Per-entry rank supplied by the table owner. Smaller evicts first.
struct EvictRank {
  double score = 0.0;        // kLowestOffenseFirst primary (offense level)
  std::uint64_t recency = 0; // kLru primary; monotone touch stamp
};

namespace detail {
struct EvictCandidate {
  double primary = 0.0;
  std::uint64_t secondary = 0;
  std::uint64_t key_bits = 0;  // unique final tiebreak
};
inline bool evicts_before(const EvictCandidate& a, const EvictCandidate& b) {
  if (a.primary != b.primary) return a.primary < b.primary;
  if (a.secondary != b.secondary) return a.secondary < b.secondary;
  return a.key_bits < b.key_bits;
}
// Ranks per-policy: (primary, secondary) before the key tiebreak.
inline EvictCandidate make_candidate(EvictionPolicy policy,
                                     std::uint64_t key_bits,
                                     const EvictRank& r,
                                     std::uint64_t decay_salt) {
  EvictCandidate c;
  c.key_bits = key_bits;
  switch (policy) {
    case EvictionPolicy::kLru:
      c.primary = 0.0;
      c.secondary = r.recency;
      break;
    case EvictionPolicy::kLowestOffenseFirst:
      c.primary = r.score;
      c.secondary = r.recency;
      break;
    case EvictionPolicy::kProbabilisticDecay:
      c.primary = 0.0;
      c.secondary = mix64(key_bits ^ decay_salt);
      break;
  }
  return c;
}
}  // namespace detail

// Shrinks `map` to the budget's shrink target if (and only if) it has
// reached capacity. `rank_of(key, value)` supplies the EvictRank;
// `on_evict(key, value)` runs for each victim, in deterministic
// evicts-first order, immediately before erasure. `decay_salt` seeds the
// kProbabilisticDecay hash (vary it per enforcement round so repeated
// pressure does not re-target the same survivors). Returns evicted count.
//
// Call this BEFORE inserting a new entry: the post-insert size is then
// <= shrink_target + 1 <= capacity, so a bounded table never exceeds its
// configured budget at any observable point.
template <typename Map, typename RankFn, typename EvictFn>
std::size_t enforce_budget(Map& map, const StateBudgetConfig& budget,
                           std::uint64_t decay_salt, RankFn&& rank_of,
                           EvictFn&& on_evict) {
  if (!budget.enabled() || map.size() < budget.capacity) return 0;
  const std::size_t target = budget.shrink_target();
  if (map.size() <= target) return 0;
  const std::size_t victims = map.size() - target;

  std::vector<std::pair<detail::EvictCandidate, typename Map::key_type>> ranked;
  ranked.reserve(map.size());
  for (const auto& [key, value] : map) {
    const std::uint64_t key_bits = static_cast<std::uint64_t>(key);
    ranked.emplace_back(
        detail::make_candidate(budget.policy, key_bits, rank_of(key, value),
                               decay_salt),
        key);
  }
  std::nth_element(ranked.begin(),
                   ranked.begin() + static_cast<std::ptrdiff_t>(victims - 1),
                   ranked.end(), [](const auto& a, const auto& b) {
                     return detail::evicts_before(a.first, b.first);
                   });
  // Deterministic callback order within the victim prefix (it is small).
  std::sort(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(victims),
            [](const auto& a, const auto& b) {
              return detail::evicts_before(a.first, b.first);
            });
  for (std::size_t i = 0; i < victims; ++i) {
    const auto it = map.find(ranked[i].second);
    on_evict(it->first, it->second);
    map.erase(it);
  }
  return victims;
}

// Two-bank bloom-style membership sketch over evicted-offender keys. mark()
// writes into the fresh bank; test() consults both; rotate() retires the
// older bank, so a mark survives between one and two rotation periods —
// long enough to cover an attacker that pauses briefly after pushing its
// own verdict out of the table, without remembering stale verdicts forever.
// Fixed 2 x 8 KiB footprint: the whole point is state that cannot be
// inflated by the adversary.
class EvictionSketch {
 public:
  explicit EvictionSketch(std::uint64_t seed = 0, std::size_t bits = 1 << 16);

  void mark(std::uint64_t key);
  bool test(std::uint64_t key) const;
  void rotate();
  void clear();

  std::uint64_t marks() const { return marks_; }

 private:
  void probes(std::uint64_t key, std::size_t* i1, std::size_t* i2) const;
  static bool get(const std::vector<std::uint64_t>& bank, std::size_t bit);
  static void set(std::vector<std::uint64_t>& bank, std::size_t bit);

  std::size_t mask_;
  std::uint64_t seed_;
  std::vector<std::uint64_t> banks_[2];
  int fresh_ = 0;
  std::uint64_t marks_ = 0;
};

}  // namespace floc
