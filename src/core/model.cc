#include "core/model.h"

#include <algorithm>
#include <cmath>

namespace floc::model {

double peak_window(BitsPerSec c_bps, TimeSec rtt, double n, int pkt_bytes) {
  const double c_pkts = c_bps / (kBitsPerByte * pkt_bytes);
  return 4.0 * c_pkts * rtt / (3.0 * n);
}

TimeSec flow_mtd(double w, TimeSec rtt) { return (w / 2.0) * rtt; }

TimeSec token_period(double w, TimeSec rtt, double n) {
  return flow_mtd(w, rtt) / n;
}

double bucket_packets(BitsPerSec c_bps, TimeSec period, int pkt_bytes) {
  return c_bps * period / (kBitsPerByte * pkt_bytes);
}

double bucket_increase_factor(double n) {
  return 1.0 + 2.0 / (3.0 * std::sqrt(std::max(n, 1.0)));
}

double drop_ratio(double w) {
  return 8.0 / (3.0 * w * (w + 2.0));
}

double aggregate_drop_rate(double w, TimeSec rtt, double n) {
  return n / flow_mtd(w, rtt);
}

double estimate_flow_count(BitsPerSec c_bps, TimeSec rtt, double drops_per_sec,
                           int pkt_bytes) {
  // With W = 4·c_pkts·RTT/(3n) and rate = n / ((W/2)·RTT):
  //   rate = n² · 3 / (2·c_pkts·RTT²)  =>  n = sqrt(rate·2·c_pkts·RTT²/3).
  const double c_pkts = c_bps / (kBitsPerByte * pkt_bytes);
  return std::sqrt(std::max(0.0, drops_per_sec * 2.0 * c_pkts * rtt * rtt / 3.0));
}

double synchronized_utilization() { return 0.75; }
double synchronized_peak_to_trough() { return 2.0; }

TokenBucketParams compute_params(BitsPerSec c_bps, TimeSec rtt, double n,
                                 int pkt_bytes, TimeSec min_period,
                                 TimeSec max_period) {
  TokenBucketParams p;
  n = std::max(n, 1.0);
  p.peak_window = std::max(2.0, peak_window(c_bps, rtt, n, pkt_bytes));
  // The period must be long enough for at least two full packets of tokens
  // to accumulate (N = C*T >= 2 packets): one-packet buckets would both
  // over-serve the path through integer rounding and deterministically drop
  // the second packet of every back-to-back TCP pair, and the reference
  // drop rate 1/T would exceed the service rate itself.
  const double c_pkts = c_bps / (kBitsPerByte * pkt_bytes);
  const double two_packet_period = c_pkts > 0.0 ? 2.0 / c_pkts : max_period;
  const double lo = std::max(min_period, std::min(two_packet_period, max_period));
  p.period = std::clamp(token_period(p.peak_window, rtt, n), lo, max_period);
  p.bucket_packets = std::max(1.0, bucket_packets(c_bps, p.period, pkt_bytes));
  p.bucket_packets_incr = p.bucket_packets * bucket_increase_factor(n);
  p.ref_mtd = n * p.period;
  return p;
}

}  // namespace floc::model
