#include "core/mtd_tracker.h"

namespace floc {

void MtdTracker::record_drop(TimeSec now) {
  prune(now);
  if (drops_.size() >= max_records_) drops_.pop_front();
  drops_.push_back(now);
  ++total_drops_;
}

void MtdTracker::prune(TimeSec now) {
  while (!drops_.empty() && drops_.front() < now - window_) drops_.pop_front();
}

std::size_t MtdTracker::drops_in_window(TimeSec now) {
  prune(now);
  return drops_.size();
}

TimeSec MtdTracker::mtd(TimeSec now) {
  prune(now);
  if (drops_.empty()) return std::numeric_limits<TimeSec>::infinity();
  return window_ / static_cast<TimeSec>(drops_.size());
}

}  // namespace floc
