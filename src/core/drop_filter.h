// Scalable attack-flow accounting (Section V-B.2 – V-B.5).
//
// A router cannot keep exact per-flow state for millions of attack flows, so
// packet drops are recorded in a count-min-style filter of m arrays x 2^b
// entries. Each entry holds
//   t_created — when the record was created (ticks of t_base granularity)
//   t_l       — last update time (ticks)
//   d         — number of *extra* packet drops (saturating counter)
// The drop counter is decremented once per congestion epoch ((W/2)*RTT) since
// a conformant flow takes exactly one drop per epoch; what remains counts the
// flow's over-rate, because drops are proportional to send rate. The
// sequence number t_s of the paper is derived as elapsed epochs since
// creation, saturating at 2^ts_bits - 1 and frozen while 2^k * t_s < d (the
// high-rate regime, Section V-B.3).
//
// Preferential drop ratio (Eq. V.1 as interpreted in DESIGN.md):
//   a flow with d extra drops over t_s epochs sends (t_s + d)/t_s times its
//   fair share, so dropping P = d/(t_s + d) of its packets caps it at fair.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/siphash.h"
#include "util/units.h"

namespace floc {

struct DropFilterConfig {
  int arrays = 4;      // m
  int bits = 20;       // b: 2^b entries per array
  int ts_bits = 4;     // sequence-number width (saturation 2^ts_bits - 1)
  int drop_bits = 8;   // extra-drop counter width
  double tick = 0.01;  // t_base time granularity (seconds)
  // Probabilistic filter update (V-B.4): a flow estimated at u times its
  // fair rate updates the filter with probability 1/u and weight u.
  bool probabilistic_update = false;
  std::uint64_t seed = 0x0DD5;
};

class ScalableDropFilter {
 public:
  explicit ScalableDropFilter(DropFilterConfig cfg);

  // Record one packet drop of flow `key`; `epoch` = (W/2)*RTT of its path.
  void record_drop(std::uint64_t key, TimeSec now, TimeSec epoch);

  struct Estimate {
    double epochs = 1.0;       // t_s: congestion epochs since record creation
    double extra_drops = 0.0;  // d: drops beyond one per epoch
  };
  // Count-min query (minimum d across arrays), with lazy per-epoch decay.
  Estimate query(std::uint64_t key, TimeSec now, TimeSec epoch) const;

  // Query for a flow recorded via record_drop_attack_domain: the minimum is
  // taken over the same deterministic k-array subset the updates used.
  Estimate query_attack_domain(std::uint64_t key, TimeSec now,
                               TimeSec epoch) const;

  // P_pd = d / (t_s + d), in [0, 1).
  double preferential_drop_prob(std::uint64_t key, TimeSec now,
                                TimeSec epoch) const;

  // Estimated over-rate multiple (send rate / fair rate) = 1 + d/t_s.
  double over_rate(std::uint64_t key, TimeSec now, TimeSec epoch) const;

  // V-B.5: flows of highly populated attack domains update only k of the m
  // arrays to bound the false-positive ratio for everyone else. Returns the
  // smallest k such that the *effective* load n - n_attack + n_attack*k/m
  // stays below n_threshold (k = m when even k = 1 cannot achieve it).
  static int arrays_for_attack_domains(double n_total, double n_attack,
                                       int m, double n_threshold);

  // Classic Bloom false-positive ratio for n flows: (1 - e^{-n/2^b})^m.
  static double false_positive_ratio(double n_flows, int m, int b);

  // Bytes of memory the configured filter occupies.
  std::size_t memory_bytes() const;

  // Restrict subsequent updates for `key`s flagged attack-domain to k arrays.
  void set_attack_domain_arrays(int k) { attack_k_ = k; }
  // Record a drop for a flow of a populous attack domain (uses k arrays and,
  // with probabilistic update, compensating weight m/k).
  void record_drop_attack_domain(std::uint64_t key, TimeSec now, TimeSec epoch);

  std::uint64_t updates() const { return updates_; }

 private:
  struct Entry {
    std::uint32_t t_created = 0;  // ticks
    std::uint32_t t_l = 0;        // ticks
    float d = 0.0f;               // extra drops (saturating)
    bool used = false;
  };

  std::size_t index(int array, std::uint64_t key) const;
  bool in_subset(std::uint64_t key, int array, int k_arrays) const;
  Estimate query_impl(std::uint64_t key, TimeSec now, TimeSec epoch,
                      int k_arrays) const;
  void update_entry(Entry& e, std::uint32_t now_ticks, double epoch_ticks,
                    double weight);
  Estimate read_entry(const Entry& e, std::uint32_t now_ticks,
                      double epoch_ticks) const;
  void record_impl(std::uint64_t key, TimeSec now, TimeSec epoch, int k_arrays);

  DropFilterConfig cfg_;
  double d_cap_;
  double ts_cap_;
  std::vector<std::vector<Entry>> tables_;
  std::vector<SipKey> hash_keys_;
  mutable Rng rng_;
  int attack_k_;
  std::uint64_t updates_ = 0;
};

}  // namespace floc
