// The FLoc router subsystem (Sections III–V) packaged as a queue discipline
// for the congested link.
//
// Responsibilities:
//  * per-path token buckets sized from (C_Si, RTT_i, n_i) — Eqs. IV.1–IV.3;
//  * capability issuance on SYNs and verification on data (Section III-A);
//  * RTT estimation from capability issue to first use (Section V-A);
//  * three queue modes — uncongested / congested / flooding — with early
//    congested-mode entry for over-subscribed paths and the random-threshold
//    neutral drop policy (Section V-A);
//  * per-flow MTD measurement and the preferential-drop admission policy
//    Pr(serviced) = I_token * min{1, MTD/(n_i*T_Si)} — Eqs. IV.4–IV.5;
//  * path conformance tracking (Eq. IV.6) and attack/legitimate path
//    aggregation (Section IV-C) against the |S|_max budget;
//  * covert-attack slot accounting via n_max capability slots (IV-B.3);
//  * optional scalable mode where MTD state lives in a bloom-style drop
//    filter instead of exact per-flow records (Section V-B).
//
// The control loop (parameter re-estimation, conformance update, aggregation)
// runs lazily off packet arrivals every `control_interval`, so the queue
// needs no timers and composes with any simulator driving enqueue/dequeue.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/aggregation.h"
#include "core/capability.h"
#include "core/drop_filter.h"
#include "core/flow_table.h"
#include "core/model.h"
#include "core/state_budget.h"
#include "core/token_bucket.h"
#include "netsim/queue_disc.h"
#include "telemetry/profiler.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"

namespace floc {

// Degradation stance while soft state is being relearned after a reboot
// (Section "Fault model" in docs/INTERNALS.md): fail-open favors legitimate
// traffic continuity (token shortfalls fall back to the neutral
// random-threshold policy), fail-closed favors attack confinement (strict
// token drops even before paths are re-identified).
enum class RecoveryPolicy { kFailOpen, kFailClosed };

struct FlocConfig {
  BitsPerSec link_bandwidth = mbps(500);
  std::size_t buffer_packets = 1000;
  double qmin_frac = 0.2;      // Q_min as a fraction of the buffer
  int pkt_bytes = 1500;

  // Bandwidth guarantees / aggregation.
  int s_max = 1 << 30;         // |S|_max
  double e_th = 0.5;           // attack-tree conformance threshold
  double beta = 0.2;           // conformance smoothing (Eq. IV.6)
  double legit_max_increase = 0.5;
  bool enable_aggregation = true;

  // Attack identification.
  double attack_mtd_factor = 0.5;  // flow is attack if MTD < factor*refMTD
  double mtd_window_factor = 2.0;  // k = factor*n_i periods (k >= n_i)
  bool enable_preferential_drop = true;
  // Hysteresis on the attack-path flag: latch after `attack_latch`
  // consecutive positive intervals, release after `attack_release` calm ones.
  int attack_latch = 4;
  int attack_release = 4;
  // Ablation knob: always use the base bucket N instead of the enlarged N'
  // (Eq. IV.3) in congested mode — quantifies what the increase buys.
  bool force_base_bucket = false;

  // Estimation.
  double rtt_damping = 0.5;    // divide measured path RTT (Section V-A)
  TimeSec default_rtt = 0.1;   // before any sample exists
  TimeSec flow_timeout = 2.0;  // active-flow expiry
  TimeSec control_interval = 0.25;
  int aggregation_every = 4;   // control ticks between aggregation runs

  // Capabilities / covert defense.
  bool enable_capabilities = true;
  int n_max = 0;               // capability slots per source (0 = off)
  std::uint64_t secret = 0xF10CF10CF10CULL;

  // Fault tolerance (driven by src/faultsim): relearn window after reboot().
  RecoveryPolicy recovery_policy = RecoveryPolicy::kFailOpen;
  int recovery_intervals = 2;  // control intervals of post-reboot grace

  // --- Hardening against closed-loop (detector-gaming) adversaries ---------
  // All knobs default OFF; the baseline reproduction is bit-identical with
  // them disabled (jitter=0 draws no RNG values).
  //
  // Seeded jitter on the measurement clock: every control tick the interval
  // length and each aggregate's effective token period are scaled by
  // 1 + U(-j, +j), so a pulse attacker that locked onto T_Si from observed
  // drop spacing keeps mis-phasing. Period and bucket size are scaled
  // together: the long-run token rate (bucket/period) is unchanged, only the
  // refill boundaries move, so conformant flows see the same throughput.
  double interval_jitter = 0.0;
  // Exponential-backoff release: a path that re-latches within
  // `backoff_relapse` seconds of its last release doubles its calm-streak
  // release requirement (multiplier capped at `backoff_cap`); the
  // multiplier halves for every `backoff_decay` seconds the path stays
  // unlatched. Defeats duty-cycled attackers that time their quiet phases
  // to the fixed attack_release — they must relapse fast to gain anything —
  // while legitimate paths whose sporadic marginal latches are minutes or
  // seconds apart never escalate. The per-path offense record — and the
  // latched flag itself — survives reboot()/relearn: it is an issued
  // verdict, not re-derivable soft state.
  bool backoff_release = false;
  int backoff_cap = 16;
  TimeSec backoff_relapse = 3.0;
  TimeSec backoff_decay = 10.0;
  // Escalation additionally requires the offered load at latch time to
  // exceed `backoff_lambda_factor` times the latch threshold: an attack
  // blast arrives at several times the path allocation, while a legitimate
  // path dragged over the detection line by flooding-mode collateral
  // crosses it marginally — and both relapse on the *attacker's* cycle, so
  // timing alone cannot tell them apart.
  double backoff_lambda_factor = 2.0;
  // Per-sender offender table: a sender whose packets are dropped on a
  // latched path while it sends above its fair share with an attack-grade
  // MTD accumulates strikes — at most one per control interval, so a
  // single TCP loss burst (many drops, one interval) counts once, while a
  // flood striking every interval reaches `blacklist_strikes` in
  // strikes*interval seconds. Strikes halve every interval the sender goes
  // without a new one, so transients wash out. At `blacklist_strikes` the
  // sender is blacklisted for `blacklist_duration` seconds and every data
  // packet it sends is dropped on sight. Entries survive reboot(), closing
  // the relearn window that flow-id-rotating attackers otherwise exploit.
  bool enable_blacklist = false;
  int blacklist_strikes = 12;
  TimeSec blacklist_duration = 8.0;
  // Feedback poisoning: with probability `jitter_dip_prob` per aggregate
  // per control tick, the effective bucket for that tick is additionally
  // scaled by a factor drawn uniformly from [jitter_dip_floor, 1) — the
  // period is NOT scaled, so the tick's admitted volume genuinely dips.
  // On paths under probation (carrying an offense record, i.e. they have
  // latched at least once; requires backoff_release) a dip tick also
  // enforces tokens strictly, turning the shortfall into real losses. A
  // loss-averse closed-loop attacker probing the admission edge (shrink on
  // any lossy epoch, creep up on clean ones) sees losses at unpredictable
  // times, so its search contracts toward its floor instead of converging
  // just under the bucket. Paths that never latch — a flash crowd — are
  // never audited strictly: they only ever see the milder bucket dip,
  // where a token shortfall still falls back to the congested-mode neutral
  // policy and responsive flows retransmit what the dip costs them. Drawn
  // from the same order-independent hash as the period jitter (distinct
  // salt), so runs stay reproducible and --jobs invariant.
  double jitter_dip_prob = 0.0;
  double jitter_dip_floor = 0.5;

  // --- Bounded state / overload resilience --------------------------------
  // All knobs default OFF (capacity 0 = unbounded, overload mode disabled);
  // the baseline is bit-identical with them off. With budgets on, each table
  // never exceeds its capacity at any observable point: an insert into a
  // full table first batch-evicts down to the budget's shrink target, with
  // deterministic (iteration-order-independent) victim selection. Evicted
  // *guilty* state (latched paths, sentenced senders) is remembered in a
  // fixed-size two-bank sketch, so an offender that churns identities to
  // push its own verdict out of the table re-latches within one MTD
  // (control) interval of resuming instead of re-earning a fresh hysteresis
  // run-up. The sketch — like the offense/offender verdict tables — survives
  // reboot().
  StateBudgetConfig origin_budget;    // origins_ (aggregates_/plan_map_ are
                                      // derivative: bounding origins bounds
                                      // them, enforced by audit())
  StateBudgetConfig flow_budget;      // per-origin accounting-flow records
  StateBudgetConfig offense_budget;   // per-path offense records
  StateBudgetConfig offender_budget;  // per-sender strike/blacklist records
  // Overload mode: when the worst bounded-table occupancy crosses
  // `overload_enter`, the queue degrades gracefully instead of thrashing —
  // NEW per-path state is learned at router-side prefix granularity
  // `overload_path_prefix` (churned identities collapse into a handful of
  // coarse entries while established paths keep full granularity), and
  // admission tightens to capability-carrying traffic (churned identities
  // never complete a handshake, so their data carries no capability).
  // Exits — with hysteresis — when occupancy falls below `overload_exit`.
  bool enable_overload_mode = false;
  double overload_enter = 0.9;
  double overload_exit = 0.7;
  int overload_path_prefix = 1;
  bool overload_require_caps = true;
  // While overloaded, SYNs are also budgeted per origin path (token bucket:
  // `overload_syn_rate`/s, burst `overload_syn_burst`): identity churn
  // escalates into a pure handshake storm, and its coarsened identities
  // funnel through a few paths while legitimate leaf paths keep their own
  // barely-touched buckets. 0 disables the gate. Shed SYNs plant no flow
  // record, so the storm cannot pin the flow-table occupancy either.
  double overload_syn_rate = 50.0;
  double overload_syn_burst = 20.0;
  // Control ticks between re-latch sketch rotations; a mark survives one to
  // two rotation periods. 0 disables rotation (marks live forever).
  int sketch_rotate_ticks = 64;

  // Scalable mode (Section V-B): MTD from the drop filter.
  bool use_scalable_filter = false;
  DropFilterConfig filter;
  // Section V-B.1: estimate the number of competing flows per path from the
  // observed drop rate instead of exact per-flow counting — the high-speed
  // design where per-flow state is unaffordable. Blends with the previous
  // estimate (EWMA) for stability; exact counting remains the default.
  bool estimate_flow_count = false;

  std::uint64_t rng_seed = 42;
};

class FlocQueue : public QueueDisc {
 public:
  explicit FlocQueue(FlocConfig cfg);

  bool enqueue(Packet&& p, TimeSec now) override;
  std::optional<Packet> dequeue(TimeSec now) override;
  bool empty() const override { return q_.empty(); }
  std::size_t packet_count() const override { return q_.size(); }
  std::size_t byte_count() const override { return q_bytes_; }

  // --- Introspection (tests, experiments) --------------------------------
  enum class Mode { kUncongested, kCongested, kFlooding };
  Mode mode() const;
  static const char* mode_name(Mode m);
  std::size_t q_min() const { return q_min_; }
  std::size_t q_max() const { return q_max_; }

  int active_aggregate_count() const { return static_cast<int>(aggregates_.size()); }
  int active_origin_path_count() const { return static_cast<int>(origins_.size()); }
  bool is_attack_path(const PathId& origin) const;
  bool is_aggregated(const PathId& origin) const;
  double conformance(const PathId& origin) const;
  // Token parameters of the aggregate serving `origin` (if active).
  const model::TokenBucketParams* params_for(const PathId& origin) const;
  double flow_mtd(const PathId& origin, std::uint64_t acct_key, TimeSec now);
  std::size_t path_flow_count(const PathId& origin) const;
  const CapabilityIssuer& issuer() const { return issuer_; }

  std::uint64_t drops_by_reason(DropReason r) const {
    return drop_counts_[static_cast<std::size_t>(r)];
  }
  std::uint64_t capability_violations() const { return cap_violations_; }

  // --- Hardening introspection (tests, benches) --------------------------
  // Calm intervals currently required to release `origin` (attack_release
  // times the path's backoff multiplier).
  int release_required(const PathId& origin) const;
  int backoff_multiplier(const PathId& origin) const;
  bool is_blacklisted(HostAddr src, TimeSec now) const;
  std::size_t blacklist_size(TimeSec now) const;

  // --- State-budget / overload introspection (tests, benches) ------------
  bool overloaded() const { return overloaded_; }
  std::uint64_t overload_entries() const { return overload_entries_; }
  std::size_t offense_size() const { return offense_.size(); }
  std::size_t offender_size() const { return offenders_.size(); }
  // Accounting-flow records across all origin paths ("flow_table.size").
  std::size_t flow_record_count() const;
  // Largest per-origin flow table (the flow_budget bound applies per path).
  std::size_t max_path_flow_count() const;
  std::uint64_t evicted_origins() const { return evict_origins_; }
  std::uint64_t evicted_flows() const { return evict_flows_; }
  std::uint64_t evicted_offense() const { return evict_offense_; }
  std::uint64_t evicted_offenders() const { return evict_offenders_; }
  std::uint64_t state_evictions() const {
    return evict_origins_ + evict_flows_ + evict_offense_ + evict_offenders_;
  }
  // Worst occupancy fraction over the enabled budgets (0 when none enabled).
  double state_occupancy() const;

  // --- Fault / churn surface (src/faultsim) ------------------------------
  // Simulate a router reboot at `now`: all soft state — origin paths,
  // aggregates, the aggregation plan, flow tables, RTT estimates, the
  // scalable filter — is lost, and unless `preserve_queue` so are the
  // buffered packets. The capability secret survives (it is provisioned
  // configuration, not learned state), as do the hardening verdict tables
  // (path offense records and the sender blacklist): with backoff_release
  // on, a path latched before the reboot re-latches as soon as it is
  // relearned instead of enjoying a fresh hysteresis run-up. For the next
  // `recovery_intervals` control intervals the queue degrades per
  // `recovery_policy`.
  void reboot(TimeSec now, bool preserve_queue = false);
  std::uint64_t reboots() const { return reboots_; }
  bool in_recovery(TimeSec now) const { return now < recovery_until_; }

  // Rotate the capability secret at `now`. Capabilities issued under the
  // old secret verify for one more control interval; within that window
  // unverifiable data packets are re-stamped under the new secret instead
  // of dropped (re-issue-on-miss), so established legitimate flows are not
  // all cut off at once.
  void rotate_secret(std::uint64_t new_secret, TimeSec now);
  std::uint64_t cap_reissues() const { return cap_reissues_; }

  std::uint64_t dequeues() const { return dequeues_; }

  // SimMonitor invariants: byte accounting, token bounds, packet
  // conservation, drop-ledger consistency.
  bool audit(TimeSec now, std::string* why) const override;

  // Force a control-loop pass at `now` (tests).
  void run_control(TimeSec now) {
    control(now);
    if (journal_ != nullptr) journal_mode(now);
  }

  // --- Telemetry (src/telemetry) -----------------------------------------
  // Publish the queue's counters as polled gauges under `prefix` and start
  // journaling defense events (mode transitions with the triggering queue
  // measurement, attack-path latch/release with the triggering MTD, key
  // rotations, capability re-issues, reboots, recovery completion, and every
  // drop with its DropReason). Detached (the default) the hot path pays one
  // pointer-null test; nullptr detaches again.
  void attach_telemetry(telemetry::Telemetry* t,
                        const std::string& prefix = "floc");

  // Base queue gauges plus the state-size gauges ("floc.origins",
  // "floc.aggregates", "floc.offense", "floc.offenders", "flow_table.size"),
  // so table growth is visible in every bench CSV that samples the queue.
  void register_metrics(telemetry::MetricRegistry& reg,
                        const std::string& prefix) const override;

  // Full decision-state dump for incident bundles: mode machine, every
  // aggregate with its token-bucket levels and members, origin paths with
  // conformance / RTT / per-flow MTD records, the offense ledger, the
  // offender blacklist, state-budget occupancy and drop ledger. The
  // capability secret is redacted. Maps are emitted in sorted key order
  // (--jobs byte-identity); capture-time only, never on the packet path.
  void snapshot_state(json::JsonWriter& w, TimeSec now) const override;

  // Attribute the queue's wall-clock cost to profiler sections
  // "<prefix>.enqueue", ".dequeue", ".control" (the lazy control loop) and
  // ".cap_verify" (SipHash capability verification). nullptr detaches.
  void set_profiler(telemetry::Profiler* prof,
                    const std::string& prefix = "floc");

 private:
  struct Aggregate {
    PathId id;
    double weight = 1.0;            // bandwidth shares
    bool attack = false;
    PathTokenBucket bucket;
    model::TokenBucketParams params;
    // Cached per-control-interval values:
    double n = 1.0;                 // accounting flows
    TimeSec rtt = 0.1;              // damped estimate
    BitsPerSec c = 0.0;             // guaranteed bandwidth
    double lambda_bps = 0.0;        // offered load last interval
    std::uint64_t drops_interval = 0;
    std::uint64_t token_misses_interval = 0;
    std::uint64_t arrivals_interval = 0;
    int attack_streak = 0;          // consecutive intervals condition held
    int calm_streak = 0;            // consecutive intervals condition clear
    bool dip_strict = false;        // this tick is a strict-audit (dip) tick
    double n_estimated = 0.0;       // smoothed drop-rate-based flow estimate
    std::vector<std::uint64_t> members;  // origin-path keys
  };

  // Persistent (reboot-surviving) offense record per aggregate path.
  struct PathOffense {
    int multiplier = 1;        // release-requirement scaling (1, 2, 4, ...)
    bool ever_latched = false; // first latch does not escalate
    bool attack = false;       // persisted latch verdict (restored on relearn)
    TimeSec next_decay = 0.0;  // when unlatched, halve multiplier at this time
    TimeSec last_release = -1.0;  // relapse-window anchor for escalation
    std::uint64_t touch_stamp = 0;  // monotone LRU stamp (state budgets)
  };
  // Per-sender strike/blacklist record (reboot-surviving).
  struct Offender {
    int strikes = 0;
    TimeSec blacklisted_until = -1.0;
    TimeSec last_strike = -1.0;  // strikes rate-limited to 1/control interval
    std::uint64_t touch_stamp = 0;  // monotone LRU stamp (state budgets)
  };

  OriginPathState& origin_state(const PathId& path, bool cap_backed = false);
  Aggregate& aggregate_for(OriginPathState& op);
  std::uint64_t acct_key(const Packet& p) const;
  void restore_offense(Aggregate& agg, std::uint64_t akey) const;
  void strike(HostAddr src, TimeSec now);

  // --- Bounded-state plumbing ---------------------------------------------
  bool relatch_enabled() const {
    return cfg_.origin_budget.enabled() || cfg_.offense_budget.enabled() ||
           cfg_.offender_budget.enabled();
  }
  std::uint64_t evict_salt() { return mix64(cfg_.rng_seed) ^ ++evict_rounds_; }
  static std::uint64_t offender_sketch_key(HostAddr src) {
    return 0x0FFE6DE20FFE6DE2ULL ^ static_cast<std::uint64_t>(src);
  }
  // Side effects of evicting one origin: plan/aggregate cleanup, sketch
  // marking of guilty (latched / latching) paths.
  void evict_origin(std::uint64_t okey, const OriginPathState& op);
  void enforce_origin_budget();
  void enforce_offense_budget();
  void enforce_offender_budget(TimeSec now);
  void update_overload(TimeSec now);
  void register_state_gauges(telemetry::MetricRegistry& reg) const;

  bool enqueue_impl(Packet&& p, TimeSec now);
  bool admit_data(Packet& p, TimeSec now);
  // Journal slow paths; callers gate on `journal_ != nullptr`.
  void journal_mode(TimeSec now);
  void journal_drop(const Packet& p, DropReason r, TimeSec now);
  // Span-annotation slow path: record the admission verdict (mode, verdict,
  // token-bucket fill, path) on the packet's queue span. Callers gate on
  // `tracer() != nullptr && p.span.active()`.
  void trace_verdict(const Packet& p, const Aggregate& agg, TimeSec now,
                     const char* verdict);
  void on_drop(const Packet& p, DropReason r, OriginPathState& op,
               Aggregate& agg, FlowRecord* fr, TimeSec now);
  void control(TimeSec now);
  void run_aggregation(TimeSec now);
  TimeSec measured_flow_mtd(const OriginPathState& op, std::uint64_t key,
                            FlowRecord& fr, const Aggregate& agg, TimeSec now);

  FlocConfig cfg_;
  CapabilityIssuer issuer_;
  Rng rng_;
  std::unique_ptr<ScalableDropFilter> filter_;

  std::deque<Packet> q_;
  std::size_t q_bytes_ = 0;
  std::size_t q_min_;
  std::size_t q_max_;

  // Origin-path states keyed by full PathId::key().
  std::unordered_map<std::uint64_t, OriginPathState> origins_;
  // Aggregates keyed by aggregate PathId::key().
  std::unordered_map<std::uint64_t, Aggregate> aggregates_;
  // Current plan mapping origin key -> aggregate key.
  std::unordered_map<std::uint64_t, std::uint64_t> plan_map_;
  // Hardening state. Both tables survive reboot() deliberately (see the
  // FlocConfig comments); they stay empty while the knobs are off.
  std::unordered_map<std::uint64_t, PathOffense> offense_;
  std::unordered_map<HostAddr, Offender> offenders_;

  // Bounded-state machinery. The sketch survives reboot() like the verdict
  // tables it backs up; the counters are cumulative.
  EvictionSketch relatch_;
  bool overloaded_ = false;
  std::uint64_t overload_entries_ = 0;
  std::uint64_t touch_seq_ = 0;     // global LRU clock (origins/offense/offenders)
  std::uint64_t evict_rounds_ = 0;  // enforcement rounds (decay-policy salt)
  std::uint64_t evict_origins_ = 0;
  std::uint64_t evict_flows_ = 0;
  std::uint64_t evict_offense_ = 0;
  std::uint64_t evict_offenders_ = 0;
  std::uint64_t journal_evict_mark_ = 0;  // evictions already journaled

  TimeSec next_control_ = 0.0;
  int control_ticks_ = 0;
  std::uint64_t drop_counts_[kDropReasonCount] = {};
  std::uint64_t cap_violations_ = 0;
  std::uint64_t cap_reissues_ = 0;
  std::uint64_t dequeues_ = 0;
  std::uint64_t flushed_ = 0;  // packets lost to reboot queue wipes
  std::uint64_t reboots_ = 0;
  TimeSec recovery_until_ = -1.0;

  // Telemetry (null = off; the hot path must stay allocation-free then).
  telemetry::EventJournal* journal_ = nullptr;
  Mode last_mode_ = Mode::kUncongested;
  bool recovery_pending_journal_ = false;

  // Profiler sections (null = off).
  telemetry::Profiler::Section* prof_enqueue_ = nullptr;
  telemetry::Profiler::Section* prof_dequeue_ = nullptr;
  telemetry::Profiler::Section* prof_control_ = nullptr;
  telemetry::Profiler::Section* prof_cap_verify_ = nullptr;
};

}  // namespace floc
