// Per-flow "mean time to drop" measurement (Eq. IV.4): MTD over a sliding
// window of k token periods. Attack flows — whose drop rate is proportional
// to their send rate — show MTDs well below the reference n_i·T_Si.
#pragma once

#include <deque>
#include <limits>

#include "util/units.h"

namespace floc {

class MtdTracker {
 public:
  // `window` = k·T_Si, the measurement horizon; may be adjusted as token
  // parameters change. `max_records` bounds memory per flow.
  explicit MtdTracker(TimeSec window = 1.0, std::size_t max_records = 512)
      : window_(window), max_records_(max_records) {}

  void set_window(TimeSec w) { window_ = w; }
  TimeSec window() const { return window_; }

  void record_drop(TimeSec now);

  // Drops inside the window ending at `now`.
  std::size_t drops_in_window(TimeSec now);

  // MTD(f) = window / drops; +infinity when no drop was observed.
  TimeSec mtd(TimeSec now);

  std::size_t total_drops() const { return total_drops_; }

 private:
  void prune(TimeSec now);

  TimeSec window_;
  std::size_t max_records_;
  std::deque<TimeSec> drops_;
  std::size_t total_drops_ = 0;
};

}  // namespace floc
