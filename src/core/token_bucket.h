// Per-path token bucket (Section IV-A): N tokens are generated at the start
// of each period T and unused tokens of the previous period are discarded.
// Refills are computed lazily from the clock, so no timer events are needed.
#pragma once

#include <cstdint>

#include "core/model.h"
#include "util/units.h"

namespace floc {

class PathTokenBucket {
 public:
  PathTokenBucket() = default;

  // Install new parameters; `pkt_bytes` converts packet-denominated bucket
  // sizes into byte-denominated tokens. Takes effect at the next refill.
  void configure(const model::TokenBucketParams& params, int pkt_bytes);

  // Try to take `bytes` of tokens at time `now`. `use_increased` selects the
  // enlarged bucket N' (congested mode) over the base bucket N (flooding
  // mode). Returns true and consumes on success.
  bool try_consume(double bytes, TimeSec now, bool use_increased);

  // Tokens currently available (after lazy refill with the given bucket).
  double tokens(TimeSec now, bool use_increased);

  // As `tokens()` but without mutating refill state — for invariant audits.
  double peek_tokens(TimeSec now, bool use_increased) const;

  // Capacity of the selected bucket in token bytes.
  double capacity_bytes(bool use_increased) const { return cap_bytes(use_increased); }

  const model::TokenBucketParams& params() const { return params_; }
  bool configured() const { return configured_; }
  std::uint64_t refills() const { return refills_; }

 private:
  void refill(TimeSec now, bool use_increased);
  double cap_bytes(bool use_increased) const;

  model::TokenBucketParams params_;
  int pkt_bytes_ = 1500;
  bool configured_ = false;
  double tokens_bytes_ = 0.0;
  std::int64_t last_period_ = -1;
  std::uint64_t refills_ = 0;
};

}  // namespace floc
