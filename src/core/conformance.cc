#include "core/conformance.h"

namespace floc {

bool is_attack_mtd(TimeSec flow_mtd, TimeSec reference_mtd,
                   double attack_factor) {
  return flow_mtd < attack_factor * reference_mtd;
}

double legitimate_fraction(std::size_t n_attack, std::size_t n_total) {
  if (n_total == 0) return 1.0;
  if (n_attack > n_total) n_attack = n_total;
  return 1.0 - static_cast<double>(n_attack) / static_cast<double>(n_total);
}

}  // namespace floc
