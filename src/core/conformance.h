// Path conformance (Eq. IV.6): the smoothed fraction of legitimate flows in
// a path,  E(t_k) = beta*(1 - n_attack/n) + (1-beta)*E(t_{k-1}).
//
// The EWMA itself lives in OriginPathState; this header provides the attack
// flow classifier shared by the conformance update and the preferential-drop
// policy, plus a pure helper for the per-interval legitimate fraction.
#pragma once

#include <cstddef>

#include "util/units.h"

namespace floc {

// A flow is classified as an attack flow when its measured MTD is below
// `attack_factor` times the reference MTD n_i*T_Si (Section IV-B): legitimate
// flows under congestion sit near the reference; attack flows fall below it
// in proportion to their over-rate.
bool is_attack_mtd(TimeSec flow_mtd, TimeSec reference_mtd,
                   double attack_factor);

// Legitimate fraction 1 - n_attack/n with the n = 0 edge handled (empty
// paths count as fully conformant).
double legitimate_fraction(std::size_t n_attack, std::size_t n_total);

}  // namespace floc
