#include "core/token_bucket.h"

#include <algorithm>
#include <cmath>

namespace floc {

void PathTokenBucket::configure(const model::TokenBucketParams& params,
                                int pkt_bytes) {
  params_ = params;
  pkt_bytes_ = pkt_bytes;
  if (!configured_) {
    // First configuration: start with a full (increased) bucket so a path
    // entering congestion is not instantly starved.
    tokens_bytes_ = cap_bytes(true);
    configured_ = true;
  } else {
    // Reconfiguration mid-period: tokens carried over from the previous
    // parameters must not exceed the new bucket, or a path whose allocation
    // was just cut keeps spending the old, larger budget until the next
    // refill.
    tokens_bytes_ = std::min(tokens_bytes_, cap_bytes(true));
  }
}

double PathTokenBucket::cap_bytes(bool use_increased) const {
  const double pkts =
      use_increased ? params_.bucket_packets_incr : params_.bucket_packets;
  return pkts * pkt_bytes_;
}

void PathTokenBucket::refill(TimeSec now, bool use_increased) {
  const auto period_idx = static_cast<std::int64_t>(now / params_.period);
  if (period_idx != last_period_) {
    tokens_bytes_ = cap_bytes(use_increased);
    last_period_ = period_idx;
    ++refills_;
  }
}

bool PathTokenBucket::try_consume(double bytes, TimeSec now,
                                  bool use_increased) {
  refill(now, use_increased);
  if (tokens_bytes_ + 1e-9 >= bytes) {
    tokens_bytes_ -= bytes;
    return true;
  }
  return false;
}

double PathTokenBucket::tokens(TimeSec now, bool use_increased) {
  refill(now, use_increased);
  return tokens_bytes_;
}

double PathTokenBucket::peek_tokens(TimeSec now, bool use_increased) const {
  const auto period_idx = static_cast<std::int64_t>(now / params_.period);
  if (period_idx != last_period_) return cap_bytes(use_increased);
  return tokens_bytes_;
}

}  // namespace floc
