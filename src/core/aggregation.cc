#include "core/aggregation.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace floc {
namespace {

// Identity entry: path keeps its own identifier and one bandwidth share.
AggregationPlan::Entry identity(const PathSnapshot& s, bool attack) {
  return {s.path, 1.0, 1, attack};
}

}  // namespace

AggregationPlan Aggregator::plan(const std::vector<PathSnapshot>& paths) const {
  AggregationPlan out;

  std::vector<PathSnapshot> legit, attack;
  for (const auto& p : paths) {
    (p.conformance < cfg_.e_th ? attack : legit).push_back(p);
  }

  // Default: identity mapping for everyone.
  for (const auto& p : legit) out.mapping[p.path.key()] = identity(p, false);
  for (const auto& p : attack) out.mapping[p.path.key()] = identity(p, true);

  // --- Attack-path aggregation (Algorithm 1) -----------------------------
  // Constraint: sum of attack identifiers <= s_max - |S^L|.
  if (cfg_.aggregate_attack && !attack.empty()) {
    const int budget =
        std::max(1, cfg_.s_max - static_cast<int>(legit.size()));
    const int needed = static_cast<int>(attack.size()) - budget;
    if (needed > 0) {
      TrafficTree tree(attack);
      const std::vector<int> nodes = choose_attack_nodes(tree, needed);
      apply_attack_plan(tree, nodes, &out);
    }
  }

  // --- Legitimate-path aggregation (Eq. IV.8) ----------------------------
  if (cfg_.aggregate_legit && legit.size() >= 2) {
    plan_legit(legit, &out);
  }

  auto count_ids = [&out] {
    std::unordered_map<std::uint64_t, int> seen;
    for (const auto& [k, e] : out.mapping) seen[e.group_key()] = 1;
    return static_cast<int>(seen.size());
  };
  out.identifier_count = count_ids();

  // --- Budget enforcement over legitimate identifiers --------------------
  // Iterated: each pass merges disjoint subtrees; re-running over the merged
  // units lets their ancestors combine further until the budget holds or no
  // merge remains.
  if (cfg_.enforce_budget && cfg_.aggregate_legit && legit.size() >= 2) {
    for (int pass = 0; pass < 6 && out.identifier_count > cfg_.s_max; ++pass) {
      const int before = out.identifier_count;
      enforce_legit_budget(legit, &out);
      out.identifier_count = count_ids();
      if (out.identifier_count == before) break;  // no progress possible
    }
  }
  return out;
}

std::vector<int> Aggregator::choose_attack_nodes(const TrafficTree& tree,
                                                 int needed_reduction) const {
  // Candidates: internal nodes (>= 2 paths beneath). Aggregation "starts from
  // nearby domains (longest postfix-matching path identifiers)": among equal
  // costs, prefer deeper (longer-prefix) nodes — they localize attack effects
  // and keep RTT-homogeneous flows together.
  std::vector<int> candidates = tree.internal_nodes(/*include_root=*/true);
  std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    const double ca = tree.mean_conformance(a);
    const double cb = tree.mean_conformance(b);
    if (ca != cb) return ca < cb;
    return tree.node(a).prefix.length() > tree.node(b).prefix.length();
  });

  std::vector<int> chosen;
  int reduction = 0;
  double total_cost = 0.0;
  for (int cand : candidates) {
    if (reduction >= needed_reduction) break;
    bool overlaps = false;
    for (int c : chosen) {
      if (tree.is_ancestor(c, cand) || tree.is_ancestor(cand, c)) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;
    chosen.push_back(cand);
    reduction += tree.reduction(cand);
    total_cost += tree.mean_conformance(cand);
  }

  // Replacement step (Algorithm 1, step 2): a single node whose subtree
  // covers the whole current solution replaces it when its cost is lower
  // than the solution's total cost and it reduces at least as much.
  if (chosen.size() >= 2) {
    int best = -1;
    double best_cost = total_cost;
    for (int cand : candidates) {
      bool covers_all = true;
      for (int c : chosen) {
        if (!tree.is_ancestor(cand, c)) {
          covers_all = false;
          break;
        }
      }
      if (!covers_all) continue;
      if (tree.reduction(cand) < needed_reduction) continue;
      const double cost = tree.mean_conformance(cand);
      if (cost < best_cost) {
        best = cand;
        best_cost = cost;
      }
    }
    if (best >= 0) chosen = {best};
  }

  // Fallback: if the needed reduction is still not met (degenerate trees),
  // aggregate everything at the root.
  int total_reduction = 0;
  for (int c : chosen) total_reduction += tree.reduction(c);
  if (total_reduction < needed_reduction) chosen = {tree.root()};
  return chosen;
}

void Aggregator::apply_attack_plan(const TrafficTree& tree,
                                   const std::vector<int>& nodes,
                                   AggregationPlan* plan) const {
  for (int node : nodes) {
    const auto members = tree.paths_under(node);
    if (members.size() < 2) continue;
    const PathId agg_id = tree.node(node).prefix;
    for (int pi : members) {
      const PathSnapshot& s = tree.paths()[static_cast<std::size_t>(pi)];
      // An attack aggregate receives a SINGLE bandwidth share regardless of
      // member count: that is the penalty that returns bandwidth to
      // legitimate paths (Section III-C).
      plan->mapping[s.path.key()] =
          AggregationPlan::Entry{agg_id, 1.0, static_cast<int>(members.size()),
                                 /*is_attack=*/true};
    }
    plan->attack_cost += tree.mean_conformance(node);
    ++plan->attack_aggregations;
  }
}

void Aggregator::plan_legit(const std::vector<PathSnapshot>& legit,
                            AggregationPlan* plan) const {
  TrafficTree tree(legit);
  // Consider internal nodes bottom-up (deepest first) so the most specific
  // beneficial merge wins; a path joins at most one aggregate.
  std::vector<int> candidates = tree.internal_nodes(/*include_root=*/false);
  std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    return tree.node(a).prefix.length() > tree.node(b).prefix.length();
  });

  std::vector<bool> taken(legit.size(), false);
  for (int node : candidates) {
    // Eq. IV.8: aggregate where the net conformance change is <= 0 (merging
    // cannot lower the flow-weighted conformance of the link).
    if (tree.legit_aggregation_cost(node) > 1e-12) continue;

    const auto members = tree.paths_under(node);
    if (members.size() < 2) continue;
    bool any_taken = false;
    bool any_suspect = false;
    double flow_sum = 0.0;
    for (int pi : members) {
      if (taken[static_cast<std::size_t>(pi)]) any_taken = true;
      if (tree.paths()[static_cast<std::size_t>(pi)].suspect) any_suspect = true;
      flow_sum += tree.paths()[static_cast<std::size_t>(pi)].flows;
    }
    if (any_taken || any_suspect || flow_sum <= 0.0) continue;

    // Covert guard: per-flow bandwidth of member j changes by factor
    // k*n_j/sum(n); reject the merge if any member gains more than
    // 1 + legit_max_increase (Section IV-C.2).
    const double k = static_cast<double>(members.size());
    bool guard_ok = true;
    for (int pi : members) {
      const double nj = tree.paths()[static_cast<std::size_t>(pi)].flows;
      if (nj <= 0.0) continue;
      const double factor = k * nj / flow_sum;
      if (factor > 1.0 + cfg_.legit_max_increase + 1e-12) {
        guard_ok = false;
        break;
      }
    }
    if (!guard_ok) continue;

    const PathId agg_id = tree.node(node).prefix;
    for (int pi : members) {
      taken[static_cast<std::size_t>(pi)] = true;
      const PathSnapshot& s = tree.paths()[static_cast<std::size_t>(pi)];
      // A legitimate aggregate keeps the member paths' combined shares:
      // bandwidth proportional to the number of aggregated paths.
      plan->mapping[s.path.key()] = AggregationPlan::Entry{
          agg_id, k, static_cast<int>(members.size()), /*is_attack=*/false};
    }
    ++plan->legit_aggregations;
  }
}

void Aggregator::enforce_legit_budget(const std::vector<PathSnapshot>& legit,
                                      AggregationPlan* plan) const {
  // Representative snapshot per current legitimate identifier: origin paths
  // already merged by plan_legit act as one unit at their aggregate prefix.
  std::unordered_map<std::uint64_t, PathSnapshot> reps;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> members_of;
  int attack_ids = 0;
  {
    std::unordered_map<std::uint64_t, int> seen_attack;
    for (const auto& s : legit) {
      const auto& e = plan->mapping.at(s.path.key());
      auto [it, inserted] = reps.try_emplace(e.aggregate.key());
      if (inserted) {
        it->second.path = e.aggregate;
        it->second.conformance = 0.0;
        it->second.flows = 0.0;
        it->second.suspect = false;
      }
      it->second.flows += s.flows;
      it->second.conformance =
          std::max(it->second.conformance, s.conformance);
      it->second.suspect = it->second.suspect || s.suspect;
      members_of[e.aggregate.key()].push_back(s.path.key());
    }
    for (const auto& [k, e] : plan->mapping) {
      if (e.is_attack) seen_attack[e.aggregate.key()] = 1;
    }
    attack_ids = static_cast<int>(seen_attack.size());
  }

  int legit_budget = cfg_.s_max - attack_ids;
  if (legit_budget < 1) legit_budget = 1;
  if (static_cast<int>(reps.size()) <= legit_budget) return;

  std::vector<PathSnapshot> units;
  units.reserve(reps.size());
  for (auto& [k, s] : reps) units.push_back(s);

  TrafficTree tree(units);
  // Candidates ordered by flow imbalance (the covert-guard metric): merge
  // the most balanced subtrees first, deeper prefixes before shallower.
  struct Cand {
    int node;
    double imbalance;
  };
  std::vector<Cand> cands;
  // The root (empty prefix) is excluded: merging every legitimate domain
  // into one identifier would pool flows with widely different RTTs, which
  // Section IV-C.1 explicitly avoids. The budget is met as far as non-root
  // merges allow.
  for (int node : tree.internal_nodes(/*include_root=*/false)) {
    const auto members = tree.paths_under(node);
    double flow_sum = 0.0, max_nj = 0.0;
    for (int pi : members) {
      flow_sum += tree.paths()[static_cast<std::size_t>(pi)].flows;
      max_nj = std::max(max_nj, tree.paths()[static_cast<std::size_t>(pi)].flows);
    }
    const double k = static_cast<double>(members.size());
    cands.push_back(
        Cand{node, flow_sum > 0.0 ? k * max_nj / flow_sum : 1e18});
  }
  std::sort(cands.begin(), cands.end(), [&](const Cand& a, const Cand& b) {
    if (a.imbalance != b.imbalance) return a.imbalance < b.imbalance;
    return tree.node(a.node).prefix.length() > tree.node(b.node).prefix.length();
  });

  int current = static_cast<int>(units.size());
  std::vector<bool> taken(units.size(), false);
  for (const Cand& c : cands) {
    if (current <= legit_budget) break;
    const auto members = tree.paths_under(c.node);
    bool any_taken = false;
    bool any_suspect = false;
    double shares = 0.0;
    for (int pi : members) {
      if (taken[static_cast<std::size_t>(pi)]) any_taken = true;
      if (tree.paths()[static_cast<std::size_t>(pi)].suspect) any_suspect = true;
    }
    if (any_taken || any_suspect || members.size() < 2) continue;
    const PathId agg_id = tree.node(c.node).prefix;
    // Re-map every origin path behind each unit; shares combine.
    int origin_count = 0;
    for (int pi : members) {
      taken[static_cast<std::size_t>(pi)] = true;
      const std::uint64_t unit_key =
          tree.paths()[static_cast<std::size_t>(pi)].path.key();
      origin_count += static_cast<int>(members_of[unit_key].size());
    }
    shares = static_cast<double>(origin_count);
    for (int pi : members) {
      const std::uint64_t unit_key =
          tree.paths()[static_cast<std::size_t>(pi)].path.key();
      for (std::uint64_t okey : members_of[unit_key]) {
        plan->mapping[okey] = AggregationPlan::Entry{
            agg_id, shares, origin_count, /*is_attack=*/false};
      }
    }
    current -= static_cast<int>(members.size()) - 1;
    ++plan->legit_aggregations;
  }
}

}  // namespace floc
