#include "core/state_budget.h"

#include <algorithm>

namespace floc {

const char* to_string(EvictionPolicy p) {
  switch (p) {
    case EvictionPolicy::kLru: return "lru";
    case EvictionPolicy::kLowestOffenseFirst: return "lowest-offense-first";
    case EvictionPolicy::kProbabilisticDecay: return "probabilistic-decay";
  }
  return "?";
}

bool from_string(const std::string& name, EvictionPolicy* out) {
  for (std::size_t i = 0; i < kEvictionPolicyCount; ++i) {
    const EvictionPolicy p = static_cast<EvictionPolicy>(i);
    if (name == to_string(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

std::size_t StateBudgetConfig::shrink_target() const {
  if (!enabled()) return 0;
  const double frac = std::min(std::max(evict_to, 0.0), 1.0);
  const auto target = static_cast<std::size_t>(
      frac * static_cast<double>(capacity));
  // At least one slot must open up, or the insert that triggered the
  // enforcement would push the table back over capacity.
  return std::min(target, capacity - 1);
}

namespace {
std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 64;  // minimum one word
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

EvictionSketch::EvictionSketch(std::uint64_t seed, std::size_t bits)
    : mask_(round_up_pow2(bits) - 1), seed_(seed) {
  const std::size_t words = (mask_ + 1) / 64;
  banks_[0].assign(words, 0);
  banks_[1].assign(words, 0);
}

void EvictionSketch::probes(std::uint64_t key, std::size_t* i1,
                            std::size_t* i2) const {
  const std::uint64_t h = mix64(key ^ seed_ ^ 0xE71C7E71C7E71C71ULL);
  *i1 = static_cast<std::size_t>(h) & mask_;
  *i2 = static_cast<std::size_t>(h >> 32) & mask_;
}

bool EvictionSketch::get(const std::vector<std::uint64_t>& bank,
                         std::size_t bit) {
  return (bank[bit >> 6] >> (bit & 63)) & 1u;
}

void EvictionSketch::set(std::vector<std::uint64_t>& bank, std::size_t bit) {
  bank[bit >> 6] |= std::uint64_t{1} << (bit & 63);
}

void EvictionSketch::mark(std::uint64_t key) {
  std::size_t i1, i2;
  probes(key, &i1, &i2);
  set(banks_[fresh_], i1);
  set(banks_[fresh_], i2);
  ++marks_;
}

bool EvictionSketch::test(std::uint64_t key) const {
  std::size_t i1, i2;
  probes(key, &i1, &i2);
  for (const auto& bank : banks_) {
    if (get(bank, i1) && get(bank, i2)) return true;
  }
  return false;
}

void EvictionSketch::rotate() {
  fresh_ ^= 1;
  std::fill(banks_[fresh_].begin(), banks_[fresh_].end(), 0);
}

void EvictionSketch::clear() {
  std::fill(banks_[0].begin(), banks_[0].end(), 0);
  std::fill(banks_[1].begin(), banks_[1].end(), 0);
  marks_ = 0;
}

}  // namespace floc
