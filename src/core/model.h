// Analytical model of dependable link access (Section IV-A, V-B.1).
//
// Pure functions relating guaranteed bandwidth, RTT, flow count, TCP window
// size, token-bucket parameters and packet-drop statistics. Everything that
// the router computes online is also expressible here, which makes the model
// directly unit-testable and lets benches regenerate Figs. 2 and 4.
#pragma once

#include "util/units.h"

namespace floc::model {

// Peak congestion window (packets) of each of `n` fair-sharing Reno flows on
// a path guaranteed `c_bps` with round-trip time `rtt`: mean window is 3W/4,
// so  c/n = (3W/4)·pkt/RTT  =>  W = 4·c·RTT / (3·n·pkt·8).
double peak_window(BitsPerSec c_bps, TimeSec rtt, double n, int pkt_bytes);

// Mean time to drop of one flow: MTD = (W/2)·RTT  (one drop per half-window
// of RTTs in the AIMD sawtooth).
TimeSec flow_mtd(double peak_window, TimeSec rtt);

// Token generation period T_Si = MTD / n = (W/2)·RTT/n (Eq. IV.1).
TimeSec token_period(double peak_window, TimeSec rtt, double n);

// Base bucket size in packets: N_Si = C·T (Eq. IV.2).
double bucket_packets(BitsPerSec c_bps, TimeSec period, int pkt_bytes);

// Increase factor for i.i.d. unsynchronized flows (Eq. IV.3 with ε = √12):
// N' = (1 + 2/(3√n))·N.
double bucket_increase_factor(double n);

// Packet-drop *ratio* of a Reno flow with peak window W: one drop per
// congestion epoch of (3/8)·W·(W+2) packets  =>  γ = 8 / (3·W·(W+2))
// (Section V-B.1; the exact epoch length for W/2 -> W growth).
double drop_ratio(double peak_window);

// Packet-drop *rate* (drops/sec) of an n-flow aggregate: n drops per epoch of
// (W/2)·RTT seconds.
double aggregate_drop_rate(double peak_window, TimeSec rtt, double n);

// Inverse problem used by the scalable router design: estimate the number of
// flows sharing (c_bps, rtt) from the observed aggregate drop rate.
double estimate_flow_count(BitsPerSec c_bps, TimeSec rtt, double drops_per_sec,
                           int pkt_bytes);

// Fraction of generated tokens consumable when all flows are synchronized in
// phase: 3/4 (Fig. 4 discussion); 1.0 when fully unsynchronized.
double synchronized_utilization();

// Token-request rate multiplier at the synchronized peak (window at W vs the
// post-drop trough at W/2): 2.0.
double synchronized_peak_to_trough();

struct TokenBucketParams {
  TimeSec period = 0.01;          // T_Si
  double bucket_packets = 1.0;    // N_Si
  double bucket_packets_incr = 1.0;  // N'_Si
  double peak_window = 2.0;       // W_i (packets)
  double ref_mtd = 0.1;           // n_i * T_Si
};

// One-stop computation with the clamping the router applies (W >= 2 packets,
// T in [min_period, max_period]).
TokenBucketParams compute_params(BitsPerSec c_bps, TimeSec rtt, double n,
                                 int pkt_bytes, TimeSec min_period = 1e-4,
                                 TimeSec max_period = 1.0);

}  // namespace floc::model
