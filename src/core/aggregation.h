// Path-identifier aggregation (Section IV-C).
//
// Attack-path aggregation (IV-C.1): when the number of outstanding path
// identifiers exceeds |S|_max, the identifiers of the least-conformant
// (most bot-contaminated) domains are collapsed into shared prefixes so that
// every remaining identifier keeps a minimum guaranteed bandwidth. Algorithm 1
// is a greedy solver for the conformance-maximization problem (Eq. IV.7).
//
// Legitimate-path aggregation (IV-C.2): legitimate paths are merged where the
// net conformance change C^L (Eq. IV.8) is non-positive, to give flows of
// differently-populated domains the same per-flow bandwidth — unless merging
// would raise any member path's per-flow allocation by more than
// `legit_max_increase` (the covert-path guard).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/traffic_tree.h"

namespace floc {

struct AggregationConfig {
  int s_max = 1 << 30;           // |S|_max: max bandwidth-guaranteed path ids
  double e_th = 0.5;             // conformance threshold splitting T^A / T^L
  double legit_max_increase = 0.5;  // covert guard: max per-flow bw increase
  bool aggregate_legit = true;
  bool aggregate_attack = true;
  // When the legitimate identifiers alone exceed the budget (|S^L| > s_max,
  // e.g. the paper's A-100 runs with 200 legitimate ASes), merge legitimate
  // paths — most flow-balanced subtrees first — until the budget holds.
  // Merged paths keep their combined bandwidth shares (Section IV-C.2).
  bool enforce_budget = true;
};

struct AggregationPlan {
  struct Entry {
    PathId aggregate;     // identifier the origin path now maps to
    double share_weight;  // bandwidth shares of that aggregate
    int member_count;     // paths folded into the aggregate
    bool is_attack;       // aggregate formed from the attack tree
    // Grouping key for router state: a *merged* attack aggregate and a
    // merged legitimate aggregate may share the same prefix (e.g. both fall
    // back to the root) and must not share a token bucket / quota. Identity
    // mappings keep the plain path key so a path whose conformance crosses
    // the threshold retains its aggregate state (bucket, attack flag).
    std::uint64_t group_key() const {
      const bool merged_attack = is_attack && member_count >= 2;
      return aggregate.key() ^ (merged_attack ? 0x8000000000000000ULL : 0ULL);
    }
  };
  // Keyed by PathId::key() of the *origin* path.
  std::unordered_map<std::uint64_t, Entry> mapping;
  int identifier_count = 0;   // distinct aggregates after the plan
  double attack_cost = 0.0;   // total aggregation cost of the attack plan
  int attack_aggregations = 0;
  int legit_aggregations = 0;

  const Entry& entry_for(const PathId& origin) const {
    return mapping.at(origin.key());
  }
};

class Aggregator {
 public:
  explicit Aggregator(AggregationConfig cfg) : cfg_(cfg) {}

  // Compute an aggregation plan for the given snapshot of origin paths.
  // Every input path appears in the output mapping (identity-mapped with
  // weight 1 if untouched).
  AggregationPlan plan(const std::vector<PathSnapshot>& paths) const;

  const AggregationConfig& config() const { return cfg_; }

 private:
  // Greedy Algorithm 1 over the attack tree: returns chosen node indices.
  std::vector<int> choose_attack_nodes(const TrafficTree& tree,
                                       int needed_reduction) const;

  void apply_attack_plan(const TrafficTree& tree, const std::vector<int>& nodes,
                         AggregationPlan* plan) const;
  void plan_legit(const std::vector<PathSnapshot>& legit,
                  AggregationPlan* plan) const;
  void enforce_legit_budget(const std::vector<PathSnapshot>& legit,
                            AggregationPlan* plan) const;

  AggregationConfig cfg_;
};

}  // namespace floc
