#include "core/capability.h"

namespace floc {

CapabilityIssuer::CapabilityIssuer(std::uint64_t secret, int n_max)
    : k0_{secret, secret ^ 0xC0C0C0C0C0C0C0C0ULL},
      k1_{secret ^ 0x1111111111111111ULL, secret ^ 0x2222222222222222ULL},
      kf_{secret ^ 0xF0F0F0F0F0F0F0F0ULL, secret ^ 0x0F0F0F0F0F0F0F0FULL},
      n_max_(n_max) {}

std::uint64_t CapabilityIssuer::path_word(const PathId& path) const {
  return path.key();
}

int CapabilityIssuer::slot_of(HostAddr dst) const {
  if (n_max_ <= 0) return 0;
  const std::uint64_t h = siphash24_words(kf_, {static_cast<std::uint64_t>(dst)});
  return static_cast<int>(h % static_cast<std::uint64_t>(n_max_));
}

CapabilityIssuer::Caps CapabilityIssuer::issue(HostAddr src, HostAddr dst,
                                               const PathId& path) const {
  Caps c;
  c.cap0 = siphash24_words(
      k0_, {static_cast<std::uint64_t>(src), static_cast<std::uint64_t>(dst),
            path_word(path)});
  const std::uint64_t dest_binding =
      n_max_ > 0 ? static_cast<std::uint64_t>(slot_of(dst))
                 : static_cast<std::uint64_t>(dst);
  c.cap1 = siphash24_words(
      k1_, {static_cast<std::uint64_t>(src), dest_binding, path_word(path)});
  // Hash output 0 is reserved to mean "no capability"; remap.
  if (c.cap0 == 0) c.cap0 = 1;
  if (c.cap1 == 0) c.cap1 = 1;
  return c;
}

bool CapabilityIssuer::verify(const Packet& p) const {
  const Caps expect = issue(p.src, p.dst, p.path);
  return p.cap0 == expect.cap0 && p.cap1 == expect.cap1;
}

std::uint64_t CapabilityIssuer::accounting_key(const Packet& p) const {
  if (n_max_ <= 0) return p.flow;
  // Key on (source, slot): a high-fanout source shares n_max keys.
  return siphash24_words(kf_, {static_cast<std::uint64_t>(p.src),
                               static_cast<std::uint64_t>(slot_of(p.dst)),
                               0xACC0ULL});
}

}  // namespace floc
