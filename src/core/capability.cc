#include "core/capability.h"

namespace floc {

CapabilityIssuer::KeySet CapabilityIssuer::derive_keys(std::uint64_t secret) {
  return KeySet{
      SipKey{secret, secret ^ 0xC0C0C0C0C0C0C0C0ULL},
      SipKey{secret ^ 0x1111111111111111ULL, secret ^ 0x2222222222222222ULL},
      SipKey{secret ^ 0xF0F0F0F0F0F0F0F0ULL, secret ^ 0x0F0F0F0F0F0F0F0FULL}};
}

CapabilityIssuer::CapabilityIssuer(std::uint64_t secret, int n_max)
    : keys_(derive_keys(secret)), prev_keys_(keys_), n_max_(n_max) {}

std::uint64_t CapabilityIssuer::path_word(const PathId& path) const {
  return path.key();
}

int CapabilityIssuer::slot_of(HostAddr dst) const {
  if (n_max_ <= 0) return 0;
  const std::uint64_t h =
      siphash24_words(keys_.kf, {static_cast<std::uint64_t>(dst)});
  return static_cast<int>(h % static_cast<std::uint64_t>(n_max_));
}

CapabilityIssuer::Caps CapabilityIssuer::issue_with(const KeySet& keys,
                                                    HostAddr src, HostAddr dst,
                                                    const PathId& path) const {
  Caps c;
  c.cap0 = siphash24_words(
      keys.k0, {static_cast<std::uint64_t>(src), static_cast<std::uint64_t>(dst),
                path_word(path)});
  std::uint64_t dest_binding = static_cast<std::uint64_t>(dst);
  if (n_max_ > 0) {
    const std::uint64_t h =
        siphash24_words(keys.kf, {static_cast<std::uint64_t>(dst)});
    dest_binding = h % static_cast<std::uint64_t>(n_max_);
  }
  c.cap1 = siphash24_words(
      keys.k1, {static_cast<std::uint64_t>(src), dest_binding, path_word(path)});
  // Hash output 0 is reserved to mean "no capability"; remap.
  if (c.cap0 == 0) c.cap0 = 1;
  if (c.cap1 == 0) c.cap1 = 1;
  return c;
}

CapabilityIssuer::Caps CapabilityIssuer::issue(HostAddr src, HostAddr dst,
                                               const PathId& path) const {
  return issue_with(keys_, src, dst, path);
}

bool CapabilityIssuer::verify(const Packet& p) const {
  const Caps expect = issue_with(keys_, p.src, p.dst, p.path);
  return p.cap0 == expect.cap0 && p.cap1 == expect.cap1;
}

CapabilityIssuer::VerifyResult CapabilityIssuer::verify_at(const Packet& p,
                                                           TimeSec now) const {
  if (verify(p)) return VerifyResult::kOk;
  if (in_grace(now)) {
    const Caps old = issue_with(prev_keys_, p.src, p.dst, p.path);
    if (p.cap0 == old.cap0 && p.cap1 == old.cap1) return VerifyResult::kOkPrevious;
  }
  return VerifyResult::kFail;
}

void CapabilityIssuer::rotate(std::uint64_t new_secret, TimeSec now,
                              TimeSec grace_window) {
  prev_keys_ = keys_;
  keys_ = derive_keys(new_secret);
  grace_until_ = now + grace_window;
  ++rotations_;
}

std::uint64_t CapabilityIssuer::accounting_key(const Packet& p) const {
  if (n_max_ <= 0) return p.flow;
  // Key on (source, slot): a high-fanout source shares n_max keys.
  return siphash24_words(keys_.kf, {static_cast<std::uint64_t>(p.src),
                                    static_cast<std::uint64_t>(slot_of(p.dst)),
                                    0xACC0ULL});
}

}  // namespace floc
