#include "core/flow_table.h"

namespace floc {

FlowRecord& OriginPathState::touch_flow(std::uint64_t acct_key, TimeSec now) {
  auto [it, inserted] = flows_.try_emplace(acct_key);
  if (inserted) it->second.first_seen = now;
  it->second.last_seen = now;
  return it->second;
}

FlowRecord* OriginPathState::find_flow(std::uint64_t acct_key) {
  auto it = flows_.find(acct_key);
  return it == flows_.end() ? nullptr : &it->second;
}

std::size_t OriginPathState::expire_flows(TimeSec now, TimeSec timeout) {
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.last_seen < now - timeout) {
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  return flows_.size();
}

}  // namespace floc
