#include "core/flow_table.h"

namespace floc {

FlowRecord& OriginPathState::touch_flow(std::uint64_t acct_key, TimeSec now,
                                        const StateBudgetConfig* budget,
                                        std::uint64_t decay_salt,
                                        std::uint64_t* evicted) {
  auto it = flows_.find(acct_key);
  if (it == flows_.end()) {
    if (budget != nullptr && budget->enabled()) {
      const std::size_t n = enforce_budget(
          flows_, *budget, decay_salt,
          [](std::uint64_t, const FlowRecord& fr) {
            // kLowestOffenseFirst keeps flows with drop (MTD) history: an
            // attacker churning accounting keys cannot push its own
            // offending records out through innocents.
            return EvictRank{static_cast<double>(fr.total_drops),
                             fr.touch_stamp};
          },
          [](std::uint64_t, const FlowRecord&) {});
      if (evicted != nullptr) *evicted += n;
    }
    it = flows_.try_emplace(acct_key).first;
    it->second.first_seen = now;
  }
  it->second.last_seen = now;
  it->second.touch_stamp = ++touch_counter_;
  return it->second;
}

FlowRecord* OriginPathState::find_flow(std::uint64_t acct_key) {
  auto it = flows_.find(acct_key);
  return it == flows_.end() ? nullptr : &it->second;
}

std::size_t OriginPathState::expire_flows(TimeSec now, TimeSec timeout) {
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.last_seen < now - timeout) {
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  return flows_.size();
}

}  // namespace floc
