#include "core/drop_filter.h"

#include <algorithm>
#include <cmath>

namespace floc {

ScalableDropFilter::ScalableDropFilter(DropFilterConfig cfg)
    : cfg_(cfg),
      d_cap_(std::pow(2.0, cfg.drop_bits) - 1.0),
      ts_cap_(std::pow(2.0, cfg.ts_bits) - 1.0),
      rng_(cfg.seed),
      attack_k_(cfg.arrays) {
  const std::size_t size = std::size_t{1} << cfg_.bits;
  tables_.resize(static_cast<std::size_t>(cfg_.arrays));
  for (auto& t : tables_) t.assign(size, Entry{});
  for (int i = 0; i < cfg_.arrays; ++i) {
    hash_keys_.push_back(SipKey{0x9E3779B97F4A7C15ULL * (i + 1),
                                0xD1B54A32D192ED03ULL ^ (cfg_.seed + i)});
  }
}

std::size_t ScalableDropFilter::index(int array, std::uint64_t key) const {
  const std::uint64_t h =
      siphash24_words(hash_keys_[static_cast<std::size_t>(array)], {key});
  return h & ((std::size_t{1} << cfg_.bits) - 1);
}

void ScalableDropFilter::update_entry(Entry& e, std::uint32_t now_ticks,
                                      double epoch_ticks, double weight) {
  if (!e.used) {
    e.used = true;
    e.t_created = now_ticks;
    e.t_l = now_ticks;
    e.d = static_cast<float>(std::min(weight, d_cap_));
    return;
  }
  // Lazy decay: one conformant drop is forgiven per congestion epoch.
  // (Guard against non-monotonic clocks: never decay into the future.)
  const double elapsed_ticks =
      now_ticks > e.t_l ? static_cast<double>(now_ticks - e.t_l) : 0.0;
  const double elapsed_epochs = elapsed_ticks / std::max(epoch_ticks, 1.0);
  double d = std::max(0.0, static_cast<double>(e.d) - elapsed_epochs);
  if (d <= 0.0 && now_ticks - e.t_l > 8 * epoch_ticks) {
    // Long quiet: restart the record (a legitimate flow's normal drops age
    // out of the filter entirely).
    e.t_created = now_ticks;
  }
  d = std::min(d + weight, d_cap_);
  e.d = static_cast<float>(d);
  e.t_l = now_ticks;
}

ScalableDropFilter::Estimate ScalableDropFilter::read_entry(
    const Entry& e, std::uint32_t now_ticks, double epoch_ticks) const {
  Estimate out;
  if (!e.used) return out;
  const double since_update =
      now_ticks > e.t_l ? static_cast<double>(now_ticks - e.t_l) : 0.0;
  const double elapsed_epochs = since_update / std::max(epoch_ticks, 1.0);
  out.extra_drops = std::max(0.0, static_cast<double>(e.d) - elapsed_epochs);
  const double since_created =
      now_ticks > e.t_created ? static_cast<double>(now_ticks - e.t_created) : 0.0;
  double t_s = std::max(1.0, since_created / std::max(epoch_ticks, 1.0));
  t_s = std::min(t_s, ts_cap_);
  // High-rate regime: freeze t_s while 2^k * t_s < d so the ratio keeps
  // expressing the over-rate instead of washing out (Section V-B.3).
  const double k_factor = std::pow(2.0, cfg_.drop_bits > 2 ? 2 : cfg_.drop_bits);
  if (out.extra_drops > k_factor * t_s) t_s = std::max(1.0, out.extra_drops / k_factor);
  out.epochs = t_s;
  return out;
}

void ScalableDropFilter::record_impl(std::uint64_t key, TimeSec now,
                                     TimeSec epoch, int k_arrays) {
  const auto now_ticks = static_cast<std::uint32_t>(now / cfg_.tick);
  const double epoch_ticks = std::max(1.0, epoch / cfg_.tick);

  double weight = 1.0;
  if (cfg_.probabilistic_update) {
    // Update with probability 1/u and weight u, where u is the flow's
    // estimated over-rate: expected counter value is preserved while memory
    // accesses drop by a factor of u (Section V-B.4).
    const double u = std::max(1.0, over_rate(key, now, epoch));
    if (!rng_.chance(1.0 / u)) return;
    weight = u;
  }
  if (k_arrays < cfg_.arrays) {
    // V-B.5: flows of populous attack domains update the filter with
    // probability k/m and compensating value m/k (expectation preserved,
    // memory-access frequency bounded).
    const double ratio = static_cast<double>(k_arrays) / cfg_.arrays;
    if (!rng_.chance(ratio)) return;
    weight /= ratio;
  }

  for (int a = 0; a < cfg_.arrays; ++a) {
    if (!in_subset(key, a, k_arrays)) continue;
    update_entry(tables_[static_cast<std::size_t>(a)][index(a, key)], now_ticks,
                 epoch_ticks, weight);
  }
  ++updates_;
}

bool ScalableDropFilter::in_subset(std::uint64_t key, int array,
                                   int k_arrays) const {
  if (k_arrays >= cfg_.arrays) return true;
  // Deterministic per-key rotation: arrays (r+0..r+k-1) mod m.
  const std::uint64_t h = siphash24_words(hash_keys_[0], {key, 0xA55AULL});
  const int r = static_cast<int>(h % static_cast<std::uint64_t>(cfg_.arrays));
  const int rel = (array - r + cfg_.arrays) % cfg_.arrays;
  return rel < k_arrays;
}

void ScalableDropFilter::record_drop(std::uint64_t key, TimeSec now,
                                     TimeSec epoch) {
  record_impl(key, now, epoch, cfg_.arrays);
}

void ScalableDropFilter::record_drop_attack_domain(std::uint64_t key,
                                                   TimeSec now, TimeSec epoch) {
  record_impl(key, now, epoch, attack_k_);
}

ScalableDropFilter::Estimate ScalableDropFilter::query_impl(
    std::uint64_t key, TimeSec now, TimeSec epoch, int k_arrays) const {
  const auto now_ticks = static_cast<std::uint32_t>(now / cfg_.tick);
  const double epoch_ticks = std::max(1.0, epoch / cfg_.tick);
  Estimate best;
  bool first = true;
  for (int a = 0; a < cfg_.arrays; ++a) {
    if (!in_subset(key, a, k_arrays)) continue;
    const Entry& e = tables_[static_cast<std::size_t>(a)][index(a, key)];
    const Estimate est = read_entry(e, now_ticks, epoch_ticks);
    if (first || est.extra_drops < best.extra_drops) {
      best = est;
      first = false;
    }
  }
  return best;
}

ScalableDropFilter::Estimate ScalableDropFilter::query(std::uint64_t key,
                                                       TimeSec now,
                                                       TimeSec epoch) const {
  return query_impl(key, now, epoch, cfg_.arrays);
}

ScalableDropFilter::Estimate ScalableDropFilter::query_attack_domain(
    std::uint64_t key, TimeSec now, TimeSec epoch) const {
  return query_impl(key, now, epoch, attack_k_);
}

double ScalableDropFilter::preferential_drop_prob(std::uint64_t key,
                                                  TimeSec now,
                                                  TimeSec epoch) const {
  const Estimate e = query(key, now, epoch);
  if (e.extra_drops <= 0.0) return 0.0;
  return e.extra_drops / (e.epochs + e.extra_drops);
}

double ScalableDropFilter::over_rate(std::uint64_t key, TimeSec now,
                                     TimeSec epoch) const {
  const Estimate e = query(key, now, epoch);
  return 1.0 + e.extra_drops / std::max(1.0, e.epochs);
}

int ScalableDropFilter::arrays_for_attack_domains(double n_total,
                                                  double n_attack, int m,
                                                  double n_threshold) {
  const double n_legit = n_total - n_attack;
  for (int k = 1; k <= m; ++k) {
    const double effective = n_legit + n_attack * k / m;
    if (effective <= n_threshold) return k;
  }
  return m;
}

double ScalableDropFilter::false_positive_ratio(double n_flows, int m, int b) {
  const double cells = std::pow(2.0, b);
  return std::pow(1.0 - std::exp(-n_flows / cells), m);
}

std::size_t ScalableDropFilter::memory_bytes() const {
  return static_cast<std::size_t>(cfg_.arrays) * (std::size_t{1} << cfg_.bits) *
         sizeof(Entry);
}

}  // namespace floc
