// Traffic tree T_R0 (Section IV-C): the prefix tree of the path identifiers
// carried by active flows, rooted at the congested router. Aggregating "at a
// node" collapses every path in that node's subtree into the node's prefix.
//
// The tree is built from a snapshot of per-path statistics and consumed by
// the aggregation planner; it holds no live router state, which keeps the
// aggregation algorithms pure and unit-testable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/packet.h"

namespace floc {

// Snapshot of one origin path as seen at the congested router.
struct PathSnapshot {
  PathId path;
  double conformance = 1.0;  // E_Ri
  double flows = 0.0;        // n_i (accounting flows)
  // Currently attack-flagged or over-subscribed: such a path may still sit
  // above the conformance threshold transiently, but must never be merged
  // into a *legitimate* aggregate (it would dilute the detection signal and
  // soak the merged paths' bandwidth — same rationale as the covert guard).
  bool suspect = false;
};

class TrafficTree {
 public:
  struct Node {
    PathId prefix;            // path identifier of this tree position
    int parent = -1;
    std::vector<int> children;
    int leaf_index = -1;      // >= 0 iff an input path terminates here
    // Subtree accumulations over terminating paths:
    int leaf_count = 0;       // number of paths in the subtree
    double conf_sum = 0.0;    // sum of their conformance values
    double flow_sum = 0.0;    // sum of their flow counts
    double conf_flow_sum = 0.0;  // sum of conformance*flows
  };

  explicit TrafficTree(const std::vector<PathSnapshot>& paths);

  const Node& node(int i) const { return nodes_[static_cast<std::size_t>(i)]; }
  int node_count() const { return static_cast<int>(nodes_.size()); }
  int root() const { return 0; }
  const std::vector<PathSnapshot>& paths() const { return paths_; }

  // Mean conformance of the paths below node i — the aggregation cost C^A
  // (Eq. IV.7 discussion).
  double mean_conformance(int i) const;

  // Net conformance change of aggregating at node i (Eq. IV.8):
  // mean(E_j) - sum(E_j*n_j)/sum(n_j).
  double legit_aggregation_cost(int i) const;

  // Path-count reduction achieved by aggregating at node i.
  int reduction(int i) const;

  // True if a is an ancestor of b (or equal).
  bool is_ancestor(int a, int b) const;

  // Indices of all internal candidate nodes (more than one path beneath,
  // excluding the synthetic root unless it is the only option).
  std::vector<int> internal_nodes(bool include_root = false) const;

  // Leaf path indices (into paths()) under node i.
  std::vector<int> paths_under(int i) const;

  std::string to_string() const;

 private:
  int child_with_as(int node, AsNumber as) const;

  std::vector<Node> nodes_;
  std::vector<PathSnapshot> paths_;
};

}  // namespace floc
