// Network-layer capabilities (Sections III-A, IV-B.3).
//
// A router issues, during connection setup, an authenticated flow identifier
// verifiable only by itself:
//     C0 = Hash(IP_s, IP_d, S_i, K0)          — identifier authenticity
//     C1 = Hash(IP_s, F(IP_d), S_i, K1)       — covert-attack slot binding
// where F(.) maps destinations uniformly onto [0, n_max). C1 restricts each
// source to n_max concurrently usable capability "slots" through this router
// and lets the router account the total bandwidth those slots consume: a
// source fanning out many low-rate flows collapses onto few slots and is
// handled as a single high-rate flow.
#pragma once

#include <cstdint>

#include "netsim/packet.h"
#include "util/siphash.h"

namespace floc {

class CapabilityIssuer {
 public:
  // `n_max` = 0 disables slot accounting (C1 binds the exact destination).
  CapabilityIssuer(std::uint64_t secret, int n_max);

  struct Caps {
    std::uint64_t cap0 = 0;
    std::uint64_t cap1 = 0;
  };

  // Issue capabilities for a connection request (stamped into the SYN).
  Caps issue(HostAddr src, HostAddr dst, const PathId& path) const;

  // Verify the capabilities carried by a data packet.
  bool verify(const Packet& p) const;

  // Capability slot F(IP_d) of a destination for the given source.
  int slot_of(HostAddr dst) const;

  // Accounting-flow key: with slots enabled, all flows of `src` whose
  // destinations share a slot map to one key; otherwise the transport flow.
  std::uint64_t accounting_key(const Packet& p) const;

  int n_max() const { return n_max_; }

 private:
  std::uint64_t path_word(const PathId& path) const;

  SipKey k0_;
  SipKey k1_;
  SipKey kf_;  // key of the slot-mapping function F
  int n_max_;
};

}  // namespace floc
