// Network-layer capabilities (Sections III-A, IV-B.3).
//
// A router issues, during connection setup, an authenticated flow identifier
// verifiable only by itself:
//     C0 = Hash(IP_s, IP_d, S_i, K0)          — identifier authenticity
//     C1 = Hash(IP_s, F(IP_d), S_i, K1)       — covert-attack slot binding
// where F(.) maps destinations uniformly onto [0, n_max). C1 restricts each
// source to n_max concurrently usable capability "slots" through this router
// and lets the router account the total bandwidth those slots consume: a
// source fanning out many low-rate flows collapses onto few slots and is
// handled as a single high-rate flow.
//
// Key rotation: the router may rotate its secret (scheduled hygiene or after
// suspected compromise). Sources hold capabilities issued under the old
// secret until their next SYN, so the issuer keeps the previous key set
// alive for a grace window: within it, old-key capabilities still verify
// (and the caller is told so it can re-stamp the packet); after it they are
// violations like any forgery.
#pragma once

#include <cstdint>

#include "netsim/packet.h"
#include "util/siphash.h"
#include "util/units.h"

namespace floc {

class CapabilityIssuer {
 public:
  // `n_max` = 0 disables slot accounting (C1 binds the exact destination).
  CapabilityIssuer(std::uint64_t secret, int n_max);

  struct Caps {
    std::uint64_t cap0 = 0;
    std::uint64_t cap1 = 0;
  };

  // Issue capabilities for a connection request (stamped into the SYN).
  // Always uses the current key set.
  Caps issue(HostAddr src, HostAddr dst, const PathId& path) const;

  // Verify the capabilities carried by a data packet against the current
  // key set only (no grace semantics).
  bool verify(const Packet& p) const;

  enum class VerifyResult {
    kOk,          // verifies under the current keys
    kOkPrevious,  // verifies only under the pre-rotation keys (in grace)
    kFail,        // verifies under neither applicable key set
  };

  // Time-aware verification honoring the rotation grace window.
  VerifyResult verify_at(const Packet& p, TimeSec now) const;

  // Install a new secret at `now`; capabilities issued under the previous
  // secret keep verifying until `now + grace_window`.
  void rotate(std::uint64_t new_secret, TimeSec now, TimeSec grace_window);
  bool in_grace(TimeSec now) const { return now < grace_until_; }
  std::uint64_t rotations() const { return rotations_; }

  // Capability slot F(IP_d) of a destination for the given source.
  int slot_of(HostAddr dst) const;

  // Accounting-flow key: with slots enabled, all flows of `src` whose
  // destinations share a slot map to one key; otherwise the transport flow.
  // Keyed by the current secret, so rotation also re-keys accounting flows.
  std::uint64_t accounting_key(const Packet& p) const;

  int n_max() const { return n_max_; }

 private:
  struct KeySet {
    SipKey k0;
    SipKey k1;
    SipKey kf;  // key of the slot-mapping function F
  };
  static KeySet derive_keys(std::uint64_t secret);

  Caps issue_with(const KeySet& keys, HostAddr src, HostAddr dst,
                  const PathId& path) const;
  std::uint64_t path_word(const PathId& path) const;

  KeySet keys_;           // current
  KeySet prev_keys_;      // pre-rotation (valid while in grace)
  TimeSec grace_until_ = -1.0;
  std::uint64_t rotations_ = 0;
  int n_max_;
};

}  // namespace floc
