#include "util/rng.h"

#include <cmath>

#include "util/seed.h"

namespace floc {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  // SplitMix64 expansion of the single seed into the four state words,
  // sharing the finalizer with util/seed.h's derive_seed.
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9E3779B97F4A7C15ULL;
    s = mix64(x);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Lemire's nearly-divisionless bounded sampling would be overkill here;
  // modulo bias is negligible for the ranges used in the simulator, but we
  // use rejection to keep streams exactly uniform.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  // Inverse-CDF approximation (continuous Zipf), then clamp to [0, n).
  // Accurate enough for skew modelling of bot populations.
  if (n <= 1) return 0;
  const double u = uniform();
  double v;
  if (std::abs(s - 1.0) < 1e-9) {
    v = std::exp(u * std::log(static_cast<double>(n)));
  } else {
    const double t = std::pow(static_cast<double>(n), 1.0 - s);
    v = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
  }
  auto idx = static_cast<std::uint64_t>(v) - (v >= 1.0 ? 1 : 0);
  if (idx >= n) idx = n - 1;
  return idx;
}

Rng Rng::fork(std::uint64_t salt) {
  return Rng(next_u64() ^ (salt * 0x2545F4914F6CDD1DULL));
}

}  // namespace floc
