// Chunked freelist arena for intrusive nodes.
//
// The event engine allocates one node per scheduled event; at millions of
// events per second a malloc per node is the dominant cost (and what the
// perf suite's alloc.* gates police). The arena mallocs in chunks of
// `ChunkNodes` and recycles released nodes through an intrusive freelist
// threaded over each node's `next` pointer, so the steady-state
// acquire->release cycle touches the heap zero times.
//
// T must be default-constructible and expose a public `T* next` that the
// arena may overwrite while the node is free. Nodes are constructed once
// per chunk and REUSED, not destroyed per release — callers that hold
// owning state in a node (e.g. a captured callback) must clear it before
// release(). Whatever is still alive inside pending nodes is destroyed
// when the arena itself is (the chunks own the nodes), so early-exit paths
// cannot leak.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace floc {

template <typename T, std::size_t ChunkNodes = 256>
class NodeArena {
 public:
  NodeArena() = default;
  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  T* acquire() {
    if (free_ == nullptr) grow();
    T* n = free_;
    free_ = n->next;
    ++in_use_;
    return n;
  }

  void release(T* n) {
    n->next = free_;
    free_ = n;
    --in_use_;
  }

  // Nodes currently acquired and not yet released. With the event engine
  // this equals the number of events physically held by the queue
  // (pending + cancelled-but-unpopped); the leak tests pin it.
  std::size_t in_use() const { return in_use_; }
  std::size_t capacity() const { return chunks_.size() * ChunkNodes; }

 private:
  void grow() {
    chunks_.push_back(std::make_unique<T[]>(ChunkNodes));
    T* chunk = chunks_.back().get();
    for (std::size_t i = ChunkNodes; i-- > 0;) {
      chunk[i].next = free_;
      free_ = &chunk[i];
    }
  }

  std::vector<std::unique_ptr<T[]>> chunks_;
  T* free_ = nullptr;
  std::size_t in_use_ = 0;
};

}  // namespace floc
