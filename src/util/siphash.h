// SipHash-2-4: a keyed pseudo-random function (Aumasson & Bernstein).
//
// FLoc routers issue flow capabilities as keyed hashes over
// (source, destination, path identifier) with a router secret (Section III-A).
// SipHash gives the unforgeability the scheme requires at a cost small enough
// for per-connection-setup use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>

namespace floc {

struct SipKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;
};

// SipHash-2-4 of an arbitrary byte string.
std::uint64_t siphash24(SipKey key, std::span<const std::uint8_t> data);

// Convenience: hash a sequence of 64-bit words (e.g. addresses, AS numbers).
std::uint64_t siphash24_words(SipKey key, std::initializer_list<std::uint64_t> words);
std::uint64_t siphash24_words(SipKey key, std::span<const std::uint64_t> words);

}  // namespace floc
