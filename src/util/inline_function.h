// Small-buffer move-only callable: the scheduler's answer to std::function.
//
// std::function heap-allocates any capture larger than its tiny SBO (GCC:
// 16 bytes), copies on priority_queue round-trips, and requires copyable
// callables. The event engine's steady-state schedule->fire path must do
// none of that, so InlineFunction stores the callable in an in-object
// buffer sized for the repo's largest hot capture (a Link delivery lambda
// carrying a Packet by value), is move-only (so capturing move-only state
// is legal and accidental copies are compile errors), and falls back to a
// single heap cell only for captures that exceed the buffer — correctness
// is never capacity-gated, only the zero-alloc guarantee is (pinned by a
// static_assert at the Link call site and by the alloc-count tests).
//
// Not thread-safe; not const-callable — this is a single-threaded
// simulator core primitive, not a general std::function replacement.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace floc {

template <typename Sig, std::size_t Capacity>
class InlineFunction;  // undefined; use the R(Args...) specialization

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  // Replace the target with `f` (destroying any previous target). Exactly
  // one move (or copy, for lvalues) of `f`; no allocation when it fits.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  void assign(F&& f) {
    reset();
    emplace(std::forward<F>(f));
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(&buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->call(&buf_, std::forward<Args>(args)...);
  }

  // True when a callable of type F lives in the in-object buffer (the
  // zero-allocation path); false means the heap-cell fallback.
  template <typename F>
  static constexpr bool fits_inline() {
    using D = std::decay_t<F>;
    return sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t);
  }

  static constexpr std::size_t capacity() { return Capacity; }

 private:
  struct Ops {
    R (*call)(void*, Args&&...);
    // Move-construct dst from src, then destroy src's target. The target's
    // move constructor must not throw (all simulator captures are trivially
    // movable aggregates; a throwing move would std::terminate here).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(&buf_)) D(std::forward<F>(f));
      static constexpr Ops ops = {
          [](void* p, Args&&... a) -> R {
            return (*std::launder(reinterpret_cast<D*>(p)))(
                std::forward<Args>(a)...);
          },
          [](void* dst, void* src) noexcept {
            D* s = std::launder(reinterpret_cast<D*>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
          },
          [](void* p) noexcept {
            std::launder(reinterpret_cast<D*>(p))->~D();
          },
      };
      ops_ = &ops;
    } else {
      D* heap = new D(std::forward<F>(f));
      std::memcpy(&buf_, &heap, sizeof(heap));
      static constexpr Ops ops = {
          [](void* p, Args&&... a) -> R {
            D* d;
            std::memcpy(&d, p, sizeof(d));
            return (*d)(std::forward<Args>(a)...);
          },
          [](void* dst, void* src) noexcept {
            std::memcpy(dst, src, sizeof(D*));
          },
          [](void* p) noexcept {
            D* d;
            std::memcpy(&d, p, sizeof(d));
            delete d;
          },
      };
      ops_ = &ops;
    }
  }

  void move_from(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(&buf_, &other.buf_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Capacity];
};

}  // namespace floc
