// Deterministic pseudo-random number generation for reproducible simulations.
//
// xoshiro256++ (Blackman & Vigna): fast, high quality, 2^256-1 period.
// All stochastic behaviour in the simulator draws from an explicitly seeded
// Rng instance so every experiment is exactly reproducible.
#pragma once

#include <cstdint>

namespace floc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  // Re-initialise state from a single 64-bit seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  // Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  // Standard normal via Box-Muller (no state caching; two uniforms per call).
  double normal(double mean = 0.0, double stddev = 1.0);

  // Zipf-distributed integer in [0, n) with exponent s (> 0). O(n) setup-free
  // rejection-free inverse-CDF by partial sums is avoided; uses the
  // approximation of Gray et al. which is accurate for s in (0, ~3].
  std::uint64_t zipf(std::uint64_t n, double s);

  // Fork a statistically independent stream (hash of current state + salt).
  Rng fork(std::uint64_t salt);

 private:
  std::uint64_t s_[4];
};

}  // namespace floc
