// Units and conversion helpers used throughout the simulator.
//
// Conventions (chosen once, used everywhere):
//   * simulation time  : double, seconds
//   * bandwidth        : double, bits per second
//   * packet sizes     : int, bytes
//   * token amounts    : double, bytes (a token admits one byte)
#pragma once

namespace floc {

using TimeSec = double;   // simulation time in seconds
using BitsPerSec = double; // link / flow bandwidth
using Bytes = double;      // byte quantities that may be fractional (tokens)

inline constexpr double kBitsPerByte = 8.0;

constexpr BitsPerSec kbps(double v) { return v * 1e3; }
constexpr BitsPerSec mbps(double v) { return v * 1e6; }
constexpr BitsPerSec gbps(double v) { return v * 1e9; }

// Seconds needed to serialize `bytes` onto a link of rate `bw`.
constexpr TimeSec transmission_time(double bytes, BitsPerSec bw) {
  return bytes * kBitsPerByte / bw;
}

// Bytes a link of rate `bw` carries in `dt` seconds.
constexpr Bytes bytes_in(BitsPerSec bw, TimeSec dt) {
  return bw * dt / kBitsPerByte;
}

inline constexpr int kFullPacketBytes = 1500;  // full-sized data packet
inline constexpr int kAckPacketBytes = 40;     // SYN / ACK size (Section III-D)

}  // namespace floc
