#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace floc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Cdf::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Cdf::fraction_below(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::lower_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Cdf::curve(int points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points < 2) return out;
  ensure_sorted();
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / (points - 1);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), width_((hi - lo) / bins), counts_(static_cast<std::size_t>(bins), 0.0) {}

void Histogram::add(double x, double weight) {
  int idx = static_cast<int>((x - lo_) / width_);
  idx = std::clamp(idx, 0, static_cast<int>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

void ThroughputRecorder::record(const std::string& key, double now,
                                double bytes) {
  Series& s = series_[key];
  s.bytes_total += bytes;
  s.points.emplace_back(now, s.bytes_total);
}

double ThroughputRecorder::bytes_between(const Series& s, double t0, double t1) {
  if (s.points.empty() || t1 <= t0) return 0.0;
  auto cum_at = [&s](double t) -> double {
    // Cumulative bytes delivered at time <= t.
    auto it = std::upper_bound(
        s.points.begin(), s.points.end(), t,
        [](double v, const std::pair<double, double>& p) { return v < p.first; });
    if (it == s.points.begin()) return 0.0;
    return std::prev(it)->second;
  };
  return cum_at(t1) - cum_at(t0);
}

double ThroughputRecorder::mean_bps(const std::string& key, double t0,
                                    double t1) const {
  const auto it = series_.find(key);
  if (it == series_.end() || t1 <= t0) return 0.0;
  return bytes_between(it->second, t0, t1) * 8.0 / (t1 - t0);
}

double ThroughputRecorder::total_bps(double t0, double t1) const {
  double total = 0.0;
  for (const auto& [k, s] : series_) total += bytes_between(s, t0, t1);
  return t1 > t0 ? total * 8.0 / (t1 - t0) : 0.0;
}

std::vector<std::string> ThroughputRecorder::keys() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [k, s] : series_) out.push_back(k);
  return out;
}

double jain_fairness(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0, sq = 0.0;
  for (double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

std::string format_row(const std::string& label, const std::vector<double>& values,
                       int width, int precision) {
  std::string out = label;
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), " %*.*f", width, precision, v);
    out += buf;
  }
  return out;
}

}  // namespace floc
