// Minimal JSON value model + recursive-descent parser.
//
// The repo emits JSON from several places (run manifests, Chrome traces,
// event journals, alert histories, BENCH_perf.json perf reports) and needs to
// read it back in exactly two: the perf-regression gate (perf_compare loads
// two BENCH_perf.json files) and the tests that validate emitted artifacts
// are well-formed. This parser covers the JSON subset those emitters produce:
// objects, arrays, strings with simple escapes, numbers, booleans, null.
// It rejects trailing garbage and reports the byte offset of the first error.
//
// Not a general-purpose JSON library: no \uXXXX escapes (no emitter in this
// repo produces them), no duplicate-key policy beyond first-wins, and numbers
// are always doubles.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace floc::json {

struct Value {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> items;               // kArray
  std::map<std::string, Value> fields;    // kObject (first key wins)

  // Object field lookup; nullptr when absent or not an object.
  const Value* get(const std::string& key) const {
    if (kind != kObject) return nullptr;
    const auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }

  bool is_string() const { return kind == kString; }
  bool is_number() const { return kind == kNumber; }
  bool is_array() const { return kind == kArray; }
  bool is_object() const { return kind == kObject; }

  // Typed field accessors with defaults, for tolerant readers.
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;
};

// Parses `text` into *out. Returns true on success; on failure returns false
// and, when `err` is non-null, fills it with "offset N: <what went wrong>".
// The whole input must be one JSON value (trailing garbage is an error).
bool parse(const std::string& text, Value* out, std::string* err = nullptr);

}  // namespace floc::json
