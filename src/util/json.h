// Minimal JSON value model + recursive-descent parser + streaming writer.
//
// The repo emits JSON from several places (run manifests, Chrome traces,
// event journals, alert histories, BENCH_perf.json perf reports, incident
// bundles) and reads it back in a few: the perf-regression gate (perf_compare
// loads two BENCH_perf.json files), the floc_inspect incident-bundle CLI, and
// the tests that validate emitted artifacts are well-formed. The parser
// covers the JSON subset those emitters produce: objects, arrays, strings
// with simple escapes, numbers, booleans, null. It rejects trailing garbage
// and reports the byte offset of the first error.
//
// JsonWriter is the emitting counterpart: a push-style writer producing
// compact output that this parser always accepts. Number formatting is
// deterministic (integers print as integers, doubles through one fixed
// format), so two structurally identical emissions are byte-identical — the
// property the --jobs determinism contract needs from every gated artifact.
//
// Not a general-purpose JSON library: no \uXXXX escapes (no emitter in this
// repo produces them), no duplicate-key policy beyond first-wins, and numbers
// are always doubles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace floc::json {

struct Value {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> items;               // kArray
  std::map<std::string, Value> fields;    // kObject (first key wins)

  // Object field lookup; nullptr when absent or not an object.
  const Value* get(const std::string& key) const {
    if (kind != kObject) return nullptr;
    const auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }

  bool is_string() const { return kind == kString; }
  bool is_number() const { return kind == kNumber; }
  bool is_array() const { return kind == kArray; }
  bool is_object() const { return kind == kObject; }

  // Typed field accessors with defaults, for tolerant readers.
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;
};

// Parses `text` into *out. Returns true on success; on failure returns false
// and, when `err` is non-null, fills it with "offset N: <what went wrong>".
// The whole input must be one JSON value (trailing garbage is an error).
bool parse(const std::string& text, Value* out, std::string* err = nullptr);

// Streaming writer for the same JSON subset the parser accepts.
//
//   JsonWriter w;
//   w.begin_object();
//   w.key("mode").value("flooding");
//   w.key("tokens").value(1234.5);
//   w.key("members").begin_array().value(std::uint64_t{7}).end_array();
//   w.end_object();
//   write_text_file(path, w.str());
//
// Commas and the key/value colon are inserted automatically. Structural
// misuse (a value where a key is due, unbalanced end_*) is clamped to a
// well-formed-but-wrong document rather than UB; ok() reports whether the
// sequence of calls was valid, and tests pin emitted artifacts by parsing
// them back. Non-finite doubles emit null (JSON has no NaN/Inf).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Object member key; must be followed by exactly one value or container.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& s);
  JsonWriter& value(const char* s);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool b);
  JsonWriter& value_null();

  // key(k).value(v) in one call, for flat state dumps.
  template <typename T>
  JsonWriter& field(const std::string& k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  // Splice a pre-rendered JSON value verbatim (already-emitted sub-document).
  JsonWriter& raw(const std::string& json_text);

  // True while every call so far was structurally valid and all containers
  // opened have been closed at the point of asking.
  bool ok() const { return ok_ && depth() == 0; }
  std::size_t depth() const { return stack_.size(); }

  const std::string& str() const { return out_; }

  // Escape `s` for embedding in a JSON string literal (no quotes added).
  static std::string escaped(const std::string& s);

 private:
  enum class Frame : std::uint8_t { kObject, kArray };
  void before_value();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;  // parallel to stack_
  bool key_pending_ = false;     // key() emitted, value due
  bool ok_ = true;
};

}  // namespace floc::json
