// Small statistics toolkit used by experiments and by FLoc's estimators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace floc {

// Welford running mean / variance; O(1) per observation.
class RunningStats {
 public:
  void add(double x);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Exponentially weighted moving average: v' = beta*x + (1-beta)*v.
class Ewma {
 public:
  explicit Ewma(double beta, double initial = 0.0)
      : beta_(beta), value_(initial), seeded_(false) {}

  void add(double x) {
    if (!seeded_) {
      value_ = x;
      seeded_ = true;
    } else {
      value_ = beta_ * x + (1.0 - beta_) * value_;
    }
  }
  void set(double v) {
    value_ = v;
    seeded_ = true;
  }
  double value() const { return value_; }
  bool seeded() const { return seeded_; }

 private:
  double beta_;
  double value_;
  bool seeded_;
};

// Empirical CDF over collected samples.
class Cdf {
 public:
  void add(double x) { samples_.push_back(x); }
  void add_all(const std::vector<double>& xs);

  std::size_t count() const { return samples_.size(); }
  // Value at quantile q in [0,1]; linear interpolation between order stats.
  double quantile(double q) const;
  double fraction_below(double x) const;
  double mean() const;

  // Evenly spaced (x, F(x)) points suitable for plotting, `points` rows.
  std::vector<std::pair<double, double>> curve(int points) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Fixed-width histogram over [lo, hi); out-of-range values clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);
  void add(double x, double weight = 1.0);

  int bins() const { return static_cast<int>(counts_.size()); }
  double bin_lo(int i) const { return lo_ + i * width_; }
  double bin_count(int i) const { return counts_[i]; }
  double total() const { return total_; }

 private:
  double lo_, width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

// Records bytes delivered per (category) over time windows; used to report
// per-path / per-class bandwidth in the experiments.
class ThroughputRecorder {
 public:
  // Count `bytes` delivered for `key` at time `now` (seconds).
  void record(const std::string& key, double now, double bytes);

  // Mean throughput (bits/s) of `key` over [t0, t1].
  double mean_bps(const std::string& key, double t0, double t1) const;

  // Sum over all keys.
  double total_bps(double t0, double t1) const;

  std::vector<std::string> keys() const;

 private:
  struct Series {
    double bytes_total = 0.0;
    // (time, cumulative bytes) checkpoints, appended in time order.
    std::vector<std::pair<double, double>> points;
  };
  // Bytes of `key` delivered in [t0, t1].
  static double bytes_between(const Series& s, double t0, double t1);
  std::map<std::string, Series> series_;
};

// Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1]; 1 = perfectly
// equal allocation. Used to compare per-flow fairness across schemes.
double jain_fairness(const std::vector<double>& allocations);

// Formats a row of numbers with a label; shared by bench table printers.
std::string format_row(const std::string& label, const std::vector<double>& values,
                       int width = 10, int precision = 3);

}  // namespace floc
