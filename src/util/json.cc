#include "util/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace floc::json {

double Value::number_or(const std::string& key, double fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->kind == kNumber ? v->number : fallback;
}

std::string Value::string_or(const std::string& key,
                             const std::string& fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->kind == kString ? v->str : fallback;
}

bool Value::bool_or(const std::string& key, bool fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->kind == kBool ? v->boolean : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(Value* out, std::string* err) {
    skip_ws();
    if (!value(out)) return fail(err);
    skip_ws();
    if (pos_ != s_.size()) {
      what_ = "trailing garbage";
      return fail(err);
    }
    return true;
  }

 private:
  bool fail(std::string* err) {
    if (err != nullptr) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "offset %zu: ", pos_);
      *err = buf + (what_.empty() ? std::string("malformed JSON") : what_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* lit, std::size_t n) {
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool string(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      what_ = "expected string";
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) {
          what_ = "unterminated escape";
          return false;
        }
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default:
            // \uXXXX, \b, \f: no emitter in this repo produces them.
            what_ = std::string("unsupported escape \\") + esc;
            return false;
        }
      }
      *out += c;
    }
    if (pos_ >= s_.size()) {
      what_ = "unterminated string";
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }

  bool value(Value* out) {
    if (pos_ >= s_.size()) {
      what_ = "unexpected end of input";
      return false;
    }
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->kind = Value::kString;
      return string(&out->str);
    }
    if (literal("true", 4)) {
      out->kind = Value::kBool;
      out->boolean = true;
      return true;
    }
    if (literal("false", 5)) {
      out->kind = Value::kBool;
      out->boolean = false;
      return true;
    }
    if (literal("null", 4)) {
      out->kind = Value::kNull;
      return true;
    }
    char* end = nullptr;
    out->number = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) {
      what_ = "expected value";
      return false;
    }
    pos_ = static_cast<std::size_t>(end - s_.c_str());
    out->kind = Value::kNumber;
    return true;
  }

  bool object(Value* out) {
    out->kind = Value::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        what_ = "expected ':'";
        return false;
      }
      ++pos_;
      skip_ws();
      Value v;
      if (!value(&v)) return false;
      out->fields.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) {
        what_ = "unterminated object";
        return false;
      }
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      what_ = "expected ',' or '}'";
      return false;
    }
  }

  bool array(Value* out) {
    out->kind = Value::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      Value v;
      if (!value(&v)) return false;
      out->items.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) {
        what_ = "unterminated array";
        return false;
      }
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      what_ = "expected ',' or ']'";
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string what_;
};

}  // namespace

bool parse(const std::string& text, Value* out, std::string* err) {
  return Parser(text).parse(out, err);
}

}  // namespace floc::json
