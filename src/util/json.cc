#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace floc::json {

double Value::number_or(const std::string& key, double fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->kind == kNumber ? v->number : fallback;
}

std::string Value::string_or(const std::string& key,
                             const std::string& fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->kind == kString ? v->str : fallback;
}

bool Value::bool_or(const std::string& key, bool fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->kind == kBool ? v->boolean : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(Value* out, std::string* err) {
    skip_ws();
    if (!value(out)) return fail(err);
    skip_ws();
    if (pos_ != s_.size()) {
      what_ = "trailing garbage";
      return fail(err);
    }
    return true;
  }

 private:
  bool fail(std::string* err) {
    if (err != nullptr) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "offset %zu: ", pos_);
      *err = buf + (what_.empty() ? std::string("malformed JSON") : what_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* lit, std::size_t n) {
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool string(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      what_ = "expected string";
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) {
          what_ = "unterminated escape";
          return false;
        }
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default:
            // \uXXXX, \b, \f: no emitter in this repo produces them.
            what_ = std::string("unsupported escape \\") + esc;
            return false;
        }
      }
      *out += c;
    }
    if (pos_ >= s_.size()) {
      what_ = "unterminated string";
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }

  bool value(Value* out) {
    if (pos_ >= s_.size()) {
      what_ = "unexpected end of input";
      return false;
    }
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->kind = Value::kString;
      return string(&out->str);
    }
    if (literal("true", 4)) {
      out->kind = Value::kBool;
      out->boolean = true;
      return true;
    }
    if (literal("false", 5)) {
      out->kind = Value::kBool;
      out->boolean = false;
      return true;
    }
    if (literal("null", 4)) {
      out->kind = Value::kNull;
      return true;
    }
    char* end = nullptr;
    out->number = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) {
      what_ = "expected value";
      return false;
    }
    pos_ = static_cast<std::size_t>(end - s_.c_str());
    out->kind = Value::kNumber;
    return true;
  }

  bool object(Value* out) {
    out->kind = Value::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        what_ = "expected ':'";
        return false;
      }
      ++pos_;
      skip_ws();
      Value v;
      if (!value(&v)) return false;
      out->fields.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) {
        what_ = "unterminated object";
        return false;
      }
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      what_ = "expected ',' or '}'";
      return false;
    }
  }

  bool array(Value* out) {
    out->kind = Value::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      Value v;
      if (!value(&v)) return false;
      out->items.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) {
        what_ = "unterminated array";
        return false;
      }
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      what_ = "expected ',' or ']'";
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string what_;
};

}  // namespace

bool parse(const std::string& text, Value* out, std::string* err) {
  // Reset the output first: parsing into a reused Value must not merge with
  // its previous contents (the first-wins fields map would keep stale keys).
  *out = Value{};
  return Parser(text).parse(out, err);
}

std::string JsonWriter::escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        // The parser has no \uXXXX escape, so remaining control bytes are
        // replaced; no emitter in this repo produces them.
        out += static_cast<unsigned char>(c) < 0x20 ? '?' : c;
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    // Top level: only one value is allowed; a second is a structural error
    // but still emitted (the parser will reject trailing garbage).
    if (!out_.empty() && !key_pending_) ok_ = false;
    return;
  }
  if (stack_.back() == Frame::kObject) {
    if (!key_pending_) ok_ = false;  // object member without a key
    key_pending_ = false;
    return;
  }
  if (key_pending_) ok_ = false;  // key() inside an array
  key_pending_ = false;
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject || key_pending_) {
    ok_ = false;
  }
  if (!stack_.empty()) {
    stack_.pop_back();
    has_items_.pop_back();
  }
  key_pending_ = false;
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray || key_pending_) {
    ok_ = false;
  }
  if (!stack_.empty()) {
    stack_.pop_back();
    has_items_.pop_back();
  }
  key_pending_ = false;
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  if (stack_.empty() || stack_.back() != Frame::kObject || key_pending_) {
    ok_ = false;
  }
  if (!stack_.empty() && has_items_.back()) out_ += ',';
  if (!stack_.empty()) has_items_.back() = true;
  out_ += '"';
  out_ += escaped(k);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& s) {
  before_value();
  out_ += '"';
  out_ += escaped(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* s) {
  return value(std::string(s));
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  // Integral doubles print as integers; the rest through one fixed format.
  // One code path per value means identical doubles emit identical bytes —
  // the --jobs byte-identity contract for every gated artifact.
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
    out_ += buf;
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(const std::string& json_text) {
  before_value();
  out_ += json_text;
  return *this;
}

}  // namespace floc::json
