#include "util/siphash.h"

#include <cstring>
#include <vector>

namespace floc {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  explicit SipState(SipKey key)
      : v0(key.k0 ^ 0x736f6d6570736575ULL),
        v1(key.k1 ^ 0x646f72616e646f6dULL),
        v2(key.k0 ^ 0x6c7967656e657261ULL),
        v3(key.k1 ^ 0x7465646279746573ULL) {}

  void round() {
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
  }

  void compress(std::uint64_t m) {
    v3 ^= m;
    round();
    round();
    v0 ^= m;
  }

  std::uint64_t finalize() {
    v2 ^= 0xff;
    round();
    round();
    round();
    round();
    return v0 ^ v1 ^ v2 ^ v3;
  }
};

}  // namespace

std::uint64_t siphash24(SipKey key, std::span<const std::uint8_t> data) {
  SipState st(key);
  const std::size_t n = data.size();
  const std::size_t end = n - (n % 8);
  for (std::size_t i = 0; i < end; i += 8) {
    std::uint64_t m;
    std::memcpy(&m, data.data() + i, 8);
    st.compress(m);
  }
  std::uint64_t last = static_cast<std::uint64_t>(n & 0xff) << 56;
  for (std::size_t i = end; i < n; ++i) {
    last |= static_cast<std::uint64_t>(data[i]) << (8 * (i - end));
  }
  st.compress(last);
  return st.finalize();
}

std::uint64_t siphash24_words(SipKey key, std::span<const std::uint64_t> words) {
  SipState st(key);
  for (std::uint64_t w : words) st.compress(w);
  // Length block, mirroring the byte-oriented padding rule.
  st.compress(static_cast<std::uint64_t>(words.size() * 8) << 56);
  return st.finalize();
}

std::uint64_t siphash24_words(SipKey key,
                              std::initializer_list<std::uint64_t> words) {
  return siphash24_words(key, std::span<const std::uint64_t>(words.begin(), words.size()));
}

}  // namespace floc
