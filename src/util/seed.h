// Deterministic seed derivation for independent simulation runs.
//
// A scenario sweep runs many worlds from one master seed. Deriving the k-th
// world's seed as `master + k` is unsound: adjacent master seeds collide
// (master m, run k and master m+1, run k-1 yield the same world), and the
// xoshiro/SplitMix expansion then produces byte-identical streams. Instead
// every (master, index, salt) triple is pushed through a SplitMix64-style
// finalizer chain, so distinct triples map to statistically independent
// 64-bit seeds with no arithmetic collisions between nearby masters.
//
// `salt` names the logical stream inside a run (topology generation, source
// placement, tick simulation, ...) so sub-components never share a stream
// just because they share a run index. Use the kSeed* constants below for
// repo-wide streams; ad-hoc salts only need to be unique per call site.
#pragma once

#include <cstdint>

namespace floc {

// SplitMix64 finalizer (Steele, Lea & Flood): a bijective avalanche mix.
// Exactly the mix used by Rng::reseed's expansion, shared here so seed
// derivation and state expansion agree on one primitive.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Independent seed for run `index` of logical stream `salt` under `master`.
// Deterministic, collision-free across nearby (master, index) pairs, and
// order-independent of how many other seeds were derived (stateless).
constexpr std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index,
                                    std::uint64_t salt = 0) {
  std::uint64_t h = mix64(master + 0x9E3779B97F4A7C15ULL);
  h = mix64(h ^ (index + 0xD1B54A32D192ED03ULL));
  h = mix64(h ^ (salt + 0x8BB84B93962EEFC9ULL));
  return h;
}

// Repo-wide stream salts (bench/ and tests/ share these so e.g. Fig. 11/12
// renders the same topologies Figs. 13-15 simulate).
inline constexpr std::uint64_t kSeedStreamTreeScenario = 1;
inline constexpr std::uint64_t kSeedStreamInetTopology = 2;
inline constexpr std::uint64_t kSeedStreamInetPlacement = 3;
inline constexpr std::uint64_t kSeedStreamInetTick = 4;
inline constexpr std::uint64_t kSeedStreamFaultPlan = 5;

}  // namespace floc
