#include "topology/as_graph.h"

#include <cassert>

namespace floc {

int AsGraph::add_as(AsNumber asn, int parent, double population) {
  const int id = static_cast<int>(nodes_.size());
  AsNode n;
  n.asn = asn;
  n.parent = parent;
  n.population = population;
  if (parent >= 0) {
    assert(parent < id);
    n.depth = nodes_[static_cast<std::size_t>(parent)].depth + 1;
    nodes_[static_cast<std::size_t>(parent)].children.push_back(id);
  }
  nodes_.push_back(std::move(n));
  return id;
}

PathId AsGraph::path_of(int i) const {
  // Collect ancestors root-side first.
  std::vector<AsNumber> rev;
  for (int cur = i; cur != root() && cur != -1;
       cur = nodes_[static_cast<std::size_t>(cur)].parent) {
    rev.push_back(nodes_[static_cast<std::size_t>(cur)].asn);
  }
  PathId p;
  const int n = std::min<int>(static_cast<int>(rev.size()), PathId::kMaxHops);
  // rev is origin-side first; reverse to nearest-to-root first, and if the
  // chain is deeper than kMaxHops keep the root-side hops (coarser locales).
  for (int k = static_cast<int>(rev.size()) - 1;
       k >= static_cast<int>(rev.size()) - n; --k) {
    p.push_origin(rev[static_cast<std::size_t>(k)]);
  }
  return p;
}

std::vector<int> AsGraph::chain_to_root(int i) const {
  std::vector<int> out;
  for (int cur = i; cur != -1; cur = nodes_[static_cast<std::size_t>(cur)].parent) {
    out.push_back(cur);
    if (cur == root()) break;
  }
  return out;
}

int AsGraph::max_depth() const {
  int d = 0;
  for (const auto& n : nodes_) d = std::max(d, n.depth);
  return d;
}

double AsGraph::mean_depth() const {
  if (nodes_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& n : nodes_) s += n.depth;
  return s / static_cast<double>(nodes_.size());
}

std::string AsGraph::stats_string() const {
  return "ases=" + std::to_string(size()) +
         " max_depth=" + std::to_string(max_depth()) +
         " mean_depth=" + std::to_string(mean_depth());
}

}  // namespace floc
