#include "topology/defense_factory.h"

#include <algorithm>
#include <stdexcept>

namespace floc {

const char* to_string(DefenseScheme s) {
  switch (s) {
    case DefenseScheme::kDropTail: return "droptail";
    case DefenseScheme::kRed: return "red";
    case DefenseScheme::kRedPd: return "red-pd";
    case DefenseScheme::kPushback: return "pushback";
    case DefenseScheme::kPriorityFair: return "fair";
    case DefenseScheme::kDrr: return "drr";
    case DefenseScheme::kFloc: return "floc";
  }
  return "?";
}

DefenseScheme scheme_from_string(const std::string& s) {
  if (s == "droptail") return DefenseScheme::kDropTail;
  if (s == "red") return DefenseScheme::kRed;
  if (s == "red-pd" || s == "redpd") return DefenseScheme::kRedPd;
  if (s == "pushback") return DefenseScheme::kPushback;
  if (s == "fair") return DefenseScheme::kPriorityFair;
  if (s == "drr") return DefenseScheme::kDrr;
  if (s == "floc") return DefenseScheme::kFloc;
  throw std::invalid_argument("unknown defense scheme: " + s);
}

std::unique_ptr<QueueDisc> make_defense_queue(DefenseScheme scheme,
                                              DefenseFactoryConfig cfg) {
  switch (scheme) {
    case DefenseScheme::kDropTail:
      return std::make_unique<DropTailQueue>(cfg.buffer_packets);
    case DefenseScheme::kRed: {
      RedConfig r = cfg.red;
      r.buffer_packets = cfg.buffer_packets;
      r.link_bandwidth = cfg.link_bandwidth;
      r.min_th = 0.2 * static_cast<double>(cfg.buffer_packets);
      r.max_th = 0.6 * static_cast<double>(cfg.buffer_packets);
      r.mean_pkt_bytes = cfg.pkt_bytes;
      r.rng_seed = cfg.seed;
      return std::make_unique<RedQueue>(r);
    }
    case DefenseScheme::kRedPd: {
      RedPdConfig r = cfg.red_pd;
      r.red.buffer_packets = cfg.buffer_packets;
      r.red.link_bandwidth = cfg.link_bandwidth;
      r.red.min_th = 0.2 * static_cast<double>(cfg.buffer_packets);
      r.red.max_th = 0.6 * static_cast<double>(cfg.buffer_packets);
      r.red.mean_pkt_bytes = cfg.pkt_bytes;
      r.rng_seed = cfg.seed;
      return std::make_unique<RedPdQueue>(r);
    }
    case DefenseScheme::kPushback: {
      PushbackConfig p = cfg.pushback;
      p.buffer_packets = cfg.buffer_packets;
      p.link_bandwidth = cfg.link_bandwidth;
      p.rng_seed = cfg.seed;
      return std::make_unique<PushbackQueue>(p);
    }
    case DefenseScheme::kPriorityFair: {
      PriorityFairConfig p = cfg.priority_fair;
      p.buffer_packets = cfg.buffer_packets;
      p.link_bandwidth = cfg.link_bandwidth;
      auto classifier = cfg.legit_classifier
                            ? cfg.legit_classifier
                            : [](FlowId) { return true; };
      return std::make_unique<PriorityFairQueue>(p, classifier);
    }
    case DefenseScheme::kDrr: {
      DrrConfig d = cfg.drr;
      d.buffer_packets = cfg.buffer_packets;
      d.quantum_bytes = cfg.pkt_bytes;
      d.max_flow_queue = std::max<std::size_t>(4, cfg.buffer_packets / 10);
      return std::make_unique<DrrQueue>(d);
    }
    case DefenseScheme::kFloc: {
      FlocConfig f = cfg.floc;
      f.link_bandwidth = cfg.link_bandwidth;
      f.buffer_packets = cfg.buffer_packets;
      f.pkt_bytes = cfg.pkt_bytes;
      f.rng_seed = cfg.seed;
      return std::make_unique<FlocQueue>(f);
    }
  }
  throw std::logic_error("unreachable");
}

}  // namespace floc
