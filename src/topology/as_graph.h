// AS-level routing topology for Internet-scale simulations (Section VII-A).
//
// A Skitter map is a set of routing paths from one vantage point to a few
// hundred thousand hosts — i.e., a routing *tree*. We model it directly as a
// tree of ASes rooted at the attack target's AS; every AS has one route to
// the target (its parent chain), matching how the paper's simulator forwards
// packets one hop per tick toward the destination.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/packet.h"

namespace floc {

class AsGraph {
 public:
  struct AsNode {
    AsNumber asn = 0;
    int parent = -1;            // -1 for the root (target-side AS)
    int depth = 0;              // hops to the root
    std::vector<int> children;
    double population = 1.0;    // relative host population (for placement)
  };

  int add_as(AsNumber asn, int parent, double population);

  int size() const { return static_cast<int>(nodes_.size()); }
  const AsNode& node(int i) const { return nodes_[static_cast<std::size_t>(i)]; }
  AsNode& node(int i) { return nodes_[static_cast<std::size_t>(i)]; }
  int root() const { return 0; }

  // Path identifier of AS i as seen at the root: nearest-to-root AS first
  // (Section III-A ordering), truncated to PathId::kMaxHops.
  PathId path_of(int i) const;

  // Chain of node indices from AS i up to (excluding) the root.
  std::vector<int> chain_to_root(int i) const;

  int max_depth() const;
  double mean_depth() const;
  std::string stats_string() const;

 private:
  std::vector<AsNode> nodes_;
};

}  // namespace floc
