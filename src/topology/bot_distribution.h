// Bot and legitimate-source placement (Section VII-A substitution for the
// Composite Blocking List + GeoLite ASN datasets).
//
// The paper uses CBL only for its AS-level skew — "95% of the IP addresses
// belong to 1.7% of active ASs" — and places 10,000 legitimate sources in
// 200 ASes and 100,000 attack sources in 100 (localized) or 300 (wide)
// ASes, with 30% of legitimate sources intentionally attached to attack
// ASes. This module reproduces exactly that placement process over a
// synthetic AsGraph:
//   * attack ASes: population-weighted random choice; bots distributed
//     Zipf-skewed so a small fraction of attack ASes holds most bots;
//   * legitimate ASes: population-proportional random choice;
//   * configurable legitimate/attack AS overlap.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/as_graph.h"
#include "util/rng.h"

namespace floc {

struct PlacementConfig {
  int legit_sources = 10000;
  int legit_ases = 200;
  int attack_sources = 100000;
  int attack_ases = 100;       // 100 = localized (Fig. 11), 300 = wide (Fig. 12)
  double legit_overlap = 0.3;  // fraction of legit sources inside attack ASes
  double bot_zipf_s = 1.2;     // skew of bots across attack ASes
  // Fraction of bots spread uniformly across the attack ASes before the
  // Zipf skew: every attack AS is meaningfully contaminated, matching the
  // paper's setup (100k bots over 100-300 ASes leaves no near-empty attack
  // AS) while the Zipf remainder preserves the CBL-style concentration.
  double bot_floor_frac = 0.2;
  std::uint64_t seed = 7;
};

struct SourcePlacement {
  // counts indexed by AS id in the graph
  std::vector<int> legit_per_as;
  std::vector<int> bots_per_as;
  std::vector<int> attack_as_ids;  // ASes holding at least one bot
  std::vector<int> legit_as_ids;   // ASes holding at least one legit source

  int total_legit() const;
  int total_bots() const;
  // Legit sources located inside attack (bot-holding) ASes.
  int legit_in_attack_ases() const;
  // Fraction of bots held by the top `frac` of attack ASes (skew check).
  double bot_concentration(double top_frac) const;
};

SourcePlacement place_sources(const AsGraph& g, const PlacementConfig& cfg);

}  // namespace floc
