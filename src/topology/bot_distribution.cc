#include "topology/bot_distribution.h"

#include <algorithm>
#include <numeric>

namespace floc {

int SourcePlacement::total_legit() const {
  return std::accumulate(legit_per_as.begin(), legit_per_as.end(), 0);
}

int SourcePlacement::total_bots() const {
  return std::accumulate(bots_per_as.begin(), bots_per_as.end(), 0);
}

int SourcePlacement::legit_in_attack_ases() const {
  int n = 0;
  for (std::size_t i = 0; i < legit_per_as.size(); ++i) {
    if (bots_per_as[i] > 0) n += legit_per_as[i];
  }
  return n;
}

double SourcePlacement::bot_concentration(double top_frac) const {
  std::vector<int> counts;
  for (int c : bots_per_as) {
    if (c > 0) counts.push_back(c);
  }
  if (counts.empty()) return 0.0;
  std::sort(counts.rbegin(), counts.rend());
  const auto top_n = std::max<std::size_t>(
      1, static_cast<std::size_t>(top_frac * static_cast<double>(counts.size())));
  const double top = std::accumulate(counts.begin(),
                                     counts.begin() + static_cast<long>(top_n), 0.0);
  const double all = std::accumulate(counts.begin(), counts.end(), 0.0);
  return top / all;
}

namespace {

// Population-weighted sample of `k` distinct AS ids (excluding the root and
// any id in `excluded`).
std::vector<int> weighted_distinct_sample(const AsGraph& g, int k, Rng& rng,
                                          const std::vector<int>& excluded = {}) {
  std::vector<bool> skip(static_cast<std::size_t>(g.size()), false);
  for (int e : excluded) skip[static_cast<std::size_t>(e)] = true;
  std::vector<int> ids;
  std::vector<double> weights;
  for (int i = 1; i < g.size(); ++i) {
    if (skip[static_cast<std::size_t>(i)]) continue;
    ids.push_back(i);
    weights.push_back(g.node(i).population);
  }
  std::vector<int> out;
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  k = std::min<int>(k, static_cast<int>(ids.size()));
  for (int n = 0; n < k; ++n) {
    double pick = rng.uniform() * total;
    std::size_t chosen = 0;
    for (std::size_t j = 0; j < ids.size(); ++j) {
      if (weights[j] <= 0.0) continue;
      pick -= weights[j];
      chosen = j;
      if (pick <= 0.0) break;
    }
    out.push_back(ids[chosen]);
    total -= weights[chosen];
    weights[chosen] = 0.0;  // without replacement
  }
  return out;
}

}  // namespace

SourcePlacement place_sources(const AsGraph& g, const PlacementConfig& cfg) {
  Rng rng(cfg.seed);
  SourcePlacement out;
  out.legit_per_as.assign(static_cast<std::size_t>(g.size()), 0);
  out.bots_per_as.assign(static_cast<std::size_t>(g.size()), 0);

  // --- Attack ASes and Zipf-skewed bot placement --------------------------
  std::vector<int> attack_candidates =
      weighted_distinct_sample(g, cfg.attack_ases, rng);
  if (!attack_candidates.empty()) {
    const int floor_total =
        static_cast<int>(cfg.bot_floor_frac * cfg.attack_sources);
    const int per_as_floor =
        floor_total / static_cast<int>(attack_candidates.size());
    int placed = 0;
    for (int as : attack_candidates) {
      out.bots_per_as[static_cast<std::size_t>(as)] += per_as_floor;
      placed += per_as_floor;
    }
    for (int b = placed; b < cfg.attack_sources; ++b) {
      const auto rank = rng.zipf(attack_candidates.size(), cfg.bot_zipf_s);
      out.bots_per_as[static_cast<std::size_t>(
          attack_candidates[static_cast<std::size_t>(rank)])]++;
    }
  }
  // Attack ASes = ASes actually holding bots (the Zipf tail may leave some
  // candidates empty).
  for (int i = 0; i < g.size(); ++i) {
    if (out.bots_per_as[static_cast<std::size_t>(i)] > 0)
      out.attack_as_ids.push_back(i);
  }

  // --- Legitimate ASes ------------------------------------------------------
  // A share of legit sources is intentionally placed inside attack ASes to
  // expose differential guarantees (Section VII-A).
  const int legit_in_attack =
      static_cast<int>(cfg.legit_overlap * cfg.legit_sources);
  if (!out.attack_as_ids.empty()) {
    for (int i = 0; i < legit_in_attack; ++i) {
      const auto idx = rng.uniform_int(out.attack_as_ids.size());
      out.legit_per_as[static_cast<std::size_t>(
          out.attack_as_ids[static_cast<std::size_t>(idx)])]++;
    }
  }
  // The bulk of legitimate sources live in ASes *disjoint* from the attack
  // ASes (the configured overlap above is the only intentional mixing).
  std::vector<int> legit_ases =
      weighted_distinct_sample(g, cfg.legit_ases, rng, out.attack_as_ids);
  if (!legit_ases.empty()) {
    const int remaining = cfg.legit_sources - legit_in_attack;
    // Population-proportional distribution across the chosen legit ASes.
    double total_pop = 0.0;
    for (int as : legit_ases) total_pop += g.node(as).population;
    for (int i = 0; i < remaining; ++i) {
      double pick = rng.uniform() * total_pop;
      int chosen = legit_ases.front();
      for (int as : legit_ases) {
        pick -= g.node(as).population;
        chosen = as;
        if (pick <= 0.0) break;
      }
      out.legit_per_as[static_cast<std::size_t>(chosen)]++;
    }
  }

  for (int i = 0; i < g.size(); ++i) {
    if (out.legit_per_as[static_cast<std::size_t>(i)] > 0)
      out.legit_as_ids.push_back(i);
  }
  return out;
}

}  // namespace floc
