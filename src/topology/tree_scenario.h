// The Section VI functional-evaluation scenario: the Fig. 5 tree topology
// (height 3, degree 3 => 27 leaf domains), 30 legitimate TCP sources per
// leaf, 60 extra attack sources on each of 6 designated attack leaves, and a
// 500 Mbps target link between the tree root and the destination server(s).
//
// A `scale` factor shrinks populations and link capacity together (per-flow
// fair bandwidth is invariant), so the full bench suite runs in minutes while
// `--paper` runs paper-scale parameters.
#pragma once

#include <memory>
#include <vector>

#include "baselines/rate_limiter.h"
#include "netsim/network.h"
#include "netsim/simulator.h"
#include "topology/defense_factory.h"
#include "transport/adaptive_source.h"
#include "transport/cbr_source.h"
#include "transport/flow_monitor.h"
#include "transport/rolling_source.h"
#include "transport/shrew_source.h"
#include "transport/state_exhaust_source.h"
#include "transport/tcp_sink.h"
#include "transport/tcp_source.h"
#include "util/rng.h"

namespace floc {

enum class AttackType {
  kNone,
  kTcpPopulation,  // Fig. 6(a): attack sources are plain persistent TCP
  kCbr,            // Fig. 6(b): fixed-rate unresponsive flood
  kShrew,          // Fig. 6(c): coordinated on/off pulses
  kCovert,         // Fig. 10: many low-rate flows per source, k destinations
  kOnOff,          // timed attack: coordinated long-period on/off bursts
  kRolling,        // timed attack: attack location rotates across domains
  kAdaptiveShrew,  // closed-loop: pulse period searched onto the token period
  kDutyCycle,      // closed-loop: goes quiet when latched, probes the release
  kProbingCovert,  // closed-loop: rotates flow ids/destinations when starved
  kStateExhaust,   // closed-loop: churns path/sender identities to exhaust
                   // the defense's per-path/per-flow/per-sender tables
};
inline constexpr std::size_t kAttackTypeCount = 11;

const char* to_string(AttackType a);
// Inverse of to_string; returns false (and leaves *out alone) for unknown
// names. Round-tripped exhaustively in tests.
bool from_string(const std::string& name, AttackType* out);

struct TreeScenarioConfig {
  // Topology (Fig. 5).
  int tree_degree = 3;
  int tree_height = 3;             // leaves = degree^height
  int legit_per_leaf = 30;
  std::vector<int> legit_per_leaf_override;  // per-leaf counts (Fig. 9)
  int attack_leaf_count = 6;
  int attack_per_leaf = 60;
  double scale = 1.0;              // multiplies populations and link rate

  BitsPerSec target_link = mbps(500);
  BitsPerSec internal_link = mbps(1200);
  BitsPerSec access_link = mbps(20);
  TimeSec hop_delay = 0.005;
  TimeSec access_delay = 0.001;
  std::size_t bottleneck_buffer = 0;  // 0 => sized from bandwidth-delay

  // Traffic.
  std::uint64_t legit_file_bytes = 12'000'000;  // 12 MB per paper
  TimeSec legit_start_spread = 5.0;             // uniform start in [0, spread]
  AttackType attack = AttackType::kCbr;
  BitsPerSec attack_rate = mbps(2.0);           // per-source (peak for Shrew)
  TimeSec attack_start = 5.0;
  double shrew_duty = 0.25;        // burst fraction of the period
  TimeSec shrew_period = 0.05;     // ~ RTT
  int covert_connections = 5;      // flows per covert source
  TimeSec onoff_on = 4.0;          // ON duration (kOnOff)
  TimeSec onoff_off = 8.0;         // OFF duration (kOnOff)
  TimeSec rolling_slot = 5.0;      // per-group active time (kRolling)
  int attack_packet_bytes = 1500;  // attack packet size (Fig. 3 robustness)
  TimeSec adapt_epoch = 0.25;      // kAdaptiveShrew adaptation cadence
  TimeSec duty_quiet = 1.5;        // kDutyCycle initial quiet-period guess
  int probe_pool = 15;             // kProbingCovert flow ids per source
  TimeSec probe_interval = 1.0;    // kProbingCovert rotation cadence
  double state_churn_per_sec = 50.0;  // kStateExhaust initial rotation rate
  int state_identity_pool = 1 << 12;  // kStateExhaust flow ids per source
  bool state_spoof_sender = false;    // kStateExhaust forged source addrs

  // Defense on the target link.
  DefenseScheme scheme = DefenseScheme::kFloc;
  FlocConfig floc;                 // bandwidth/buffer filled by the scenario
  PushbackConfig pushback;
  // Pushback upstream propagation: install rate limiters on the root's
  // child uplinks so aggregate excess is shed one hop earlier.
  bool pushback_upstream = true;
  RedPdConfig red_pd;

  // Run control.
  TimeSec duration = 80.0;
  TimeSec measure_start = 20.0;
  TimeSec measure_end = 80.0;
  bool record_path_series = false;
  TimeSec path_series_bucket = 1.0;
  std::uint64_t seed = 1;
  // Event-queue engine for the scenario's Simulator (golden-trace identity
  // across engines is pinned by the runner determinism tests).
  SimEngine engine = Simulator::default_engine();
};

class TreeScenario {
 public:
  explicit TreeScenario(TreeScenarioConfig cfg);

  // Build the network, run to cfg.duration, take "start"/"end" snapshots.
  void run();

  // --- Result accessors ----------------------------------------------------
  FlowMonitor& monitor() { return monitor_; }
  Simulator& sim() { return sim_; }
  QueueDisc& bottleneck_queue() { return *bottleneck_queue_; }
  FlocQueue* floc_queue();  // nullptr unless scheme == kFloc
  Link* target_link() { return target_link_; }

  struct ClassBandwidth {
    double legit_legit_bps = 0.0;   // legitimate flows on legitimate paths
    double legit_attack_bps = 0.0;  // legitimate flows on attack paths
    double attack_bps = 0.0;        // attack flows
  };
  ClassBandwidth class_bandwidth() const;

  // CDF of per-flow bandwidth of legitimate flows on legitimate paths
  // (Figs. 7 and 9).
  Cdf legit_path_flow_cdf() const;
  Cdf legit_flow_cdf() const;  // all legitimate flows

  // Mean bandwidth per path over the measurement window (Fig. 6).
  std::map<std::string, double> per_path_bps() const;

  int leaf_count() const { return leaf_count_; }
  bool leaf_is_attack(int leaf) const;
  const PathId& leaf_path(int leaf) const {
    return leaf_paths_[static_cast<std::size_t>(leaf)];
  }
  BitsPerSec scaled_target_bw() const { return scaled_target_bw_; }
  int legit_flow_total() const { return legit_flow_total_; }

  // Attack-source introspection (adaptive-adversary tests/benches): the
  // CBR-derived attack sources (incl. adaptive ones) and the probing-covert
  // sources, in construction order.
  const std::vector<std::unique_ptr<CbrSource>>& attack_sources() const {
    return cbr_sources_;
  }
  const std::vector<std::unique_ptr<ProbingCovertSource>>& probing_sources()
      const {
    return probing_sources_;
  }
  const std::vector<std::unique_ptr<StateExhaustSource>>& state_exhaust_sources()
      const {
    return state_exhaust_sources_;
  }

  // Attach causal span tracing to the interesting components: every
  // legitimate TCP source (send/ACK spans) and the target link (queue
  // residency with the defense's admission verdict, wire spans). Call after
  // construction, before run(). Null detaches.
  void attach_tracer(telemetry::Tracer* tracer);

 private:
  void build();
  int scaled(int count) const;

  TreeScenarioConfig cfg_;
  Simulator sim_;
  Network net_;
  Rng rng_;
  FlowMonitor monitor_;

  std::vector<std::unique_ptr<TcpSource>> tcp_sources_;
  std::vector<std::unique_ptr<CbrSource>> cbr_sources_;
  std::vector<std::unique_ptr<ProbingCovertSource>> probing_sources_;
  std::vector<std::unique_ptr<StateExhaustSource>> state_exhaust_sources_;
  std::vector<std::unique_ptr<TcpSink>> sinks_;

  QueueDisc* bottleneck_queue_ = nullptr;
  Link* target_link_ = nullptr;
  std::vector<Link*> depth1_uplinks_;  // root's children -> root
  std::vector<PathId> leaf_paths_;
  std::vector<bool> leaf_attack_;
  int leaf_count_ = 0;
  int legit_flow_total_ = 0;
  BitsPerSec scaled_target_bw_ = 0.0;
  FlowId next_flow_ = 1;
};

}  // namespace floc
