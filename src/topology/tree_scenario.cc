#include "topology/tree_scenario.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

namespace floc {

const char* to_string(AttackType a) {
  switch (a) {
    case AttackType::kNone: return "none";
    case AttackType::kTcpPopulation: return "tcp-population";
    case AttackType::kCbr: return "cbr";
    case AttackType::kShrew: return "shrew";
    case AttackType::kCovert: return "covert";
    case AttackType::kOnOff: return "on-off";
    case AttackType::kRolling: return "rolling";
    case AttackType::kAdaptiveShrew: return "adaptive-shrew";
    case AttackType::kDutyCycle: return "duty-cycle";
    case AttackType::kProbingCovert: return "probing-covert";
    case AttackType::kStateExhaust: return "state-exhaust";
  }
  return "?";
}

bool from_string(const std::string& name, AttackType* out) {
  for (std::size_t i = 0; i < kAttackTypeCount; ++i) {
    const AttackType a = static_cast<AttackType>(i);
    if (name == to_string(a)) {
      *out = a;
      return true;
    }
  }
  return false;
}

TreeScenario::TreeScenario(TreeScenarioConfig cfg)
    : cfg_(cfg), sim_(cfg.engine), net_(&sim_), rng_(cfg.seed) {
  build();
}

int TreeScenario::scaled(int count) const {
  return std::max(1, static_cast<int>(std::lround(count * cfg_.scale)));
}

bool TreeScenario::leaf_is_attack(int leaf) const {
  return leaf_attack_[static_cast<std::size_t>(leaf)];
}

FlocQueue* TreeScenario::floc_queue() {
  return cfg_.scheme == DefenseScheme::kFloc
             ? static_cast<FlocQueue*>(bottleneck_queue_)
             : nullptr;
}

void TreeScenario::build() {
  const int degree = cfg_.tree_degree;
  const int height = cfg_.tree_height;
  leaf_count_ = 1;
  for (int i = 0; i < height; ++i) leaf_count_ *= degree;

  scaled_target_bw_ = cfg_.target_link * cfg_.scale;
  const BitsPerSec internal_bw = cfg_.internal_link * cfg_.scale;

  // --- Routers: root + full tree ------------------------------------------
  // AS numbering: root domain 1; internal/leaf domains numbered by position.
  Router* root = net_.add_router("root", 1);
  std::vector<std::vector<Router*>> levels{{root}};
  AsNumber next_as = 2;
  for (int lvl = 1; lvl <= height; ++lvl) {
    std::vector<Router*> cur;
    for (Router* parent : levels[static_cast<std::size_t>(lvl - 1)]) {
      for (int c = 0; c < degree; ++c) {
        Router* r = net_.add_router(
            "r" + std::to_string(lvl) + "_" + std::to_string(cur.size()),
            next_as++);
        auto d = net_.connect(parent, r, internal_bw, cfg_.hop_delay);
        if (lvl == 1) depth1_uplinks_.push_back(d.ba);  // child -> root
        cur.push_back(r);
      }
    }
    levels.push_back(std::move(cur));
  }
  std::vector<Router*>& leaves = levels[static_cast<std::size_t>(height)];
  assert(static_cast<int>(leaves.size()) == leaf_count_);

  // Path identifier of each leaf: domains from the root's child down to the
  // leaf, nearest-to-router first (Section III-A).
  leaf_paths_.resize(static_cast<std::size_t>(leaf_count_));
  for (int leaf = 0; leaf < leaf_count_; ++leaf) {
    PathId p;
    int idx = leaf;
    std::vector<int> chain;  // node index at each level from top to leaf
    for (int lvl = height; lvl >= 1; --lvl) {
      chain.push_back(idx);
      idx /= degree;
    }
    std::reverse(chain.begin(), chain.end());
    for (int lvl = 1; lvl <= height; ++lvl) {
      p.push_origin(levels[static_cast<std::size_t>(lvl)]
                          [static_cast<std::size_t>(chain[static_cast<std::size_t>(lvl - 1)])]
                              ->as_number());
    }
    leaf_paths_[static_cast<std::size_t>(leaf)] = p;
  }

  // --- Attack leaves: spread across distinct subtrees ---------------------
  leaf_attack_.assign(static_cast<std::size_t>(leaf_count_), false);
  {
    int marked = 0;
    // Step through leaves with a stride that lands in different subtrees.
    const int stride = std::max(1, leaf_count_ / std::max(1, cfg_.attack_leaf_count));
    for (int i = 1; marked < cfg_.attack_leaf_count && marked < leaf_count_;
         i += stride) {
      leaf_attack_[static_cast<std::size_t>(i % leaf_count_)] = true;
      ++marked;
    }
  }

  // --- Server side ----------------------------------------------------------
  Router* server_gw = net_.add_router("server-gw", 1000);
  const int n_servers = (cfg_.attack == AttackType::kCovert ||
                         cfg_.attack == AttackType::kProbingCovert)
                            ? std::max(1, cfg_.covert_connections)
                            : 1;
  std::vector<Host*> servers;
  for (int s = 0; s < n_servers; ++s) {
    Host* h = net_.add_host("server" + std::to_string(s), 1000);
    net_.connect(server_gw, h, internal_bw, cfg_.access_delay);
    sinks_.push_back(std::make_unique<TcpSink>(&sim_, h, &monitor_));
    servers.push_back(h);
  }

  // --- The target (flooded) link root -> server gateway --------------------
  const TimeSec approx_rtt =
      2.0 * (cfg_.access_delay + height * cfg_.hop_delay + cfg_.hop_delay);
  std::size_t buffer = cfg_.bottleneck_buffer;
  if (buffer == 0) {
    // ~1.5x bandwidth-delay product, floor of 100 packets.
    buffer = std::max<std::size_t>(
        100, static_cast<std::size_t>(1.5 * scaled_target_bw_ * approx_rtt /
                                      (kBitsPerByte * kFullPacketBytes)));
  }
  DefenseFactoryConfig fcfg;
  fcfg.link_bandwidth = scaled_target_bw_;
  fcfg.buffer_packets = buffer;
  fcfg.seed = cfg_.seed ^ 0xDEF;
  fcfg.floc = cfg_.floc;
  fcfg.pushback = cfg_.pushback;
  fcfg.red_pd = cfg_.red_pd;
  fcfg.legit_classifier = [this](FlowId f) {
    return monitor_.is_registered(f) &&
           monitor_.label(f).cls == FlowClass::kLegitimate;
  };
  auto qdisc = make_defense_queue(cfg_.scheme, std::move(fcfg));

  auto duplex = net_.connect(root, server_gw, scaled_target_bw_, cfg_.hop_delay);
  duplex.ab->set_queue(std::move(qdisc));
  bottleneck_queue_ = &duplex.ab->queue();
  target_link_ = duplex.ab;

  // Pushback propagation: rate limiters one hop upstream, driven by the
  // congested queue's aggregate limits.
  if (cfg_.scheme == DefenseScheme::kPushback && cfg_.pushback_upstream) {
    std::vector<RateLimiterQueue*> limiters;
    for (Link* up : depth1_uplinks_) {
      auto q = std::make_unique<RateLimiterQueue>(200);
      limiters.push_back(q.get());
      up->set_queue(std::move(q));
    }
    auto* pb = static_cast<PushbackQueue*>(bottleneck_queue_);
    pb->set_pushback_handler(
        [limiters](const PathId& prefix, BitsPerSec rate, TimeSec expires) {
          for (RateLimiterQueue* lq : limiters) {
            lq->install_limit(prefix, rate, expires);
          }
        });
    // Status feedback: report the traffic the upstream limiters shed so the
    // congested queue keeps seeing the aggregates' true offered rates.
    pb->set_shed_probe([limiters](const PathId& prefix) {
      double shed = 0.0;
      for (RateLimiterQueue* lq : limiters) shed += lq->take_shed_bytes(prefix);
      return shed;
    });
  }

  // --- Sources -------------------------------------------------------------
  if (cfg_.record_path_series)
    monitor_.enable_path_series(cfg_.path_series_bucket);

  const std::uint64_t legit_pkts =
      (cfg_.legit_file_bytes + kFullPacketBytes - 1) / kFullPacketBytes;

  for (int leaf = 0; leaf < leaf_count_; ++leaf) {
    Router* lr = leaves[static_cast<std::size_t>(leaf)];
    const PathId& path = leaf_paths_[static_cast<std::size_t>(leaf)];
    const bool attack_leaf = leaf_attack_[static_cast<std::size_t>(leaf)];
    const std::string path_name = "L" + std::to_string(leaf);

    int legit_here = cfg_.legit_per_leaf;
    if (!cfg_.legit_per_leaf_override.empty())
      legit_here = cfg_.legit_per_leaf_override[static_cast<std::size_t>(
          leaf % static_cast<int>(cfg_.legit_per_leaf_override.size()))];
    legit_here = scaled(legit_here);

    // Legitimate TCP sources: 12 MB transfer to the primary server.
    for (int i = 0; i < legit_here; ++i) {
      Host* h = net_.add_host("h" + std::to_string(leaf) + "_" + std::to_string(i),
                              path.origin());
      net_.connect(lr, h, cfg_.access_link, cfg_.access_delay);
      TcpSourceConfig scfg;
      scfg.flow = next_flow_++;
      scfg.dst = servers[0]->addr();
      scfg.path = path;
      scfg.total_packets = legit_pkts;
      auto src = std::make_unique<TcpSource>(&sim_, h, scfg);
      src->start_at(rng_.uniform(0.0, cfg_.legit_start_spread));
      monitor_.register_flow(
          scfg.flow, FlowLabel{FlowClass::kLegitimate, attack_leaf,
                               path.key(), path_name});
      tcp_sources_.push_back(std::move(src));
      ++legit_flow_total_;
    }

    if (!attack_leaf || cfg_.attack == AttackType::kNone) continue;

    // Attack sources.
    int attack_leaf_index = 0;  // rotation group for kRolling
    for (int l2 = 0; l2 < leaf; ++l2) {
      if (leaf_attack_[static_cast<std::size_t>(l2)]) ++attack_leaf_index;
    }
    const int bots = scaled(cfg_.attack_per_leaf);
    for (int i = 0; i < bots; ++i) {
      Host* h = net_.add_host("a" + std::to_string(leaf) + "_" + std::to_string(i),
                              path.origin());
      net_.connect(lr, h, cfg_.access_link, cfg_.access_delay);
      switch (cfg_.attack) {
        case AttackType::kTcpPopulation: {
          TcpSourceConfig scfg;
          scfg.flow = next_flow_++;
          scfg.dst = servers[0]->addr();
          scfg.path = path;
          scfg.total_packets = 0;  // persistent
          auto src = std::make_unique<TcpSource>(&sim_, h, scfg);
          src->start_at(cfg_.attack_start + rng_.uniform(0.0, 1.0));
          monitor_.register_flow(
              scfg.flow,
              FlowLabel{FlowClass::kAttack, true, path.key(), path_name});
          tcp_sources_.push_back(std::move(src));
          break;
        }
        case AttackType::kCbr: {
          CbrConfig ccfg;
          ccfg.flow = next_flow_++;
          ccfg.dst = servers[0]->addr();
          ccfg.path = path;
          ccfg.rate = cfg_.attack_rate;
          ccfg.packet_bytes = cfg_.attack_packet_bytes;
          auto src = std::make_unique<CbrSource>(&sim_, h, ccfg);
          src->start_at(cfg_.attack_start + rng_.uniform(0.0, 0.5));
          monitor_.register_flow(
              ccfg.flow,
              FlowLabel{FlowClass::kAttack, true, path.key(), path_name});
          cbr_sources_.push_back(std::move(src));
          break;
        }
        case AttackType::kShrew: {
          ShrewConfig shcfg;
          shcfg.cbr.flow = next_flow_++;
          shcfg.cbr.dst = servers[0]->addr();
          shcfg.cbr.path = path;
          shcfg.cbr.rate = cfg_.attack_rate;
          shcfg.burst_len = cfg_.shrew_duty * cfg_.shrew_period;
          shcfg.period = cfg_.shrew_period;
          shcfg.phase = 0.0;  // all sources coordinate their bursts
          auto src = std::make_unique<ShrewSource>(&sim_, h, shcfg);
          src->start_at(cfg_.attack_start + rng_.uniform(0.0, 0.5));
          monitor_.register_flow(
              shcfg.cbr.flow,
              FlowLabel{FlowClass::kAttack, true, path.key(), path_name});
          cbr_sources_.push_back(std::move(src));
          break;
        }
        case AttackType::kCovert: {
          // k legitimate-looking low-rate flows to k distinct destinations.
          for (int c = 0; c < cfg_.covert_connections; ++c) {
            CbrConfig ccfg;
            ccfg.flow = next_flow_++;
            ccfg.dst = servers[static_cast<std::size_t>(c % n_servers)]->addr();
            ccfg.path = path;
            ccfg.rate = cfg_.attack_rate;
            auto src = std::make_unique<CbrSource>(&sim_, h, ccfg);
            src->start_at(cfg_.attack_start + rng_.uniform(0.0, 0.5));
            monitor_.register_flow(
                ccfg.flow,
                FlowLabel{FlowClass::kAttack, true, path.key(), path_name});
            cbr_sources_.push_back(std::move(src));
          }
          break;
        }
        case AttackType::kOnOff: {
          OnOffConfig ocfg;
          ocfg.cbr.flow = next_flow_++;
          ocfg.cbr.dst = servers[0]->addr();
          ocfg.cbr.path = path;
          ocfg.cbr.rate = cfg_.attack_rate;
          ocfg.cbr.packet_bytes = cfg_.attack_packet_bytes;
          ocfg.on_time = cfg_.onoff_on;
          ocfg.off_time = cfg_.onoff_off;
          ocfg.phase = 0.0;  // botnet-wide coordination
          auto src = std::make_unique<OnOffSource>(&sim_, h, ocfg);
          src->start_at(cfg_.attack_start + rng_.uniform(0.0, 0.5));
          monitor_.register_flow(
              ocfg.cbr.flow,
              FlowLabel{FlowClass::kAttack, true, path.key(), path_name});
          cbr_sources_.push_back(std::move(src));
          break;
        }
        case AttackType::kRolling: {
          RollingConfig rcfg;
          rcfg.cbr.flow = next_flow_++;
          rcfg.cbr.dst = servers[0]->addr();
          rcfg.cbr.path = path;
          rcfg.cbr.rate = cfg_.attack_rate;
          rcfg.cbr.packet_bytes = cfg_.attack_packet_bytes;
          rcfg.group = attack_leaf_index;
          rcfg.group_count = std::max(1, cfg_.attack_leaf_count);
          rcfg.slot = cfg_.rolling_slot;
          auto src = std::make_unique<RollingSource>(&sim_, h, rcfg);
          src->start_at(cfg_.attack_start + rng_.uniform(0.0, 0.5));
          monitor_.register_flow(
              rcfg.cbr.flow,
              FlowLabel{FlowClass::kAttack, true, path.key(), path_name});
          cbr_sources_.push_back(std::move(src));
          break;
        }
        case AttackType::kAdaptiveShrew: {
          AdaptiveShrewConfig acfg;
          acfg.cbr.flow = next_flow_++;
          acfg.cbr.dst = servers[0]->addr();
          acfg.cbr.path = path;
          acfg.cbr.rate = cfg_.attack_rate;
          acfg.cbr.packet_bytes = cfg_.attack_packet_bytes;
          acfg.init_period = cfg_.shrew_period;
          acfg.duty = cfg_.shrew_duty;
          acfg.epoch = cfg_.adapt_epoch;
          auto src = std::make_unique<AdaptiveShrewSource>(&sim_, h, acfg);
          src->start_at(cfg_.attack_start + rng_.uniform(0.0, 0.5));
          monitor_.register_flow(
              acfg.cbr.flow,
              FlowLabel{FlowClass::kAttack, true, path.key(), path_name});
          cbr_sources_.push_back(std::move(src));
          break;
        }
        case AttackType::kDutyCycle: {
          DutyCycleConfig dycfg;
          dycfg.cbr.flow = next_flow_++;
          dycfg.cbr.dst = servers[0]->addr();
          dycfg.cbr.path = path;
          dycfg.cbr.rate = cfg_.attack_rate;
          dycfg.cbr.packet_bytes = cfg_.attack_packet_bytes;
          dycfg.quiet_base = cfg_.duty_quiet;
          auto src = std::make_unique<DutyCycleSource>(&sim_, h, dycfg);
          src->start_at(cfg_.attack_start + rng_.uniform(0.0, 0.5));
          monitor_.register_flow(
              dycfg.cbr.flow,
              FlowLabel{FlowClass::kAttack, true, path.key(), path_name});
          cbr_sources_.push_back(std::move(src));
          break;
        }
        case AttackType::kProbingCovert: {
          ProbingCovertConfig pcfg;
          pcfg.first_flow = next_flow_;
          next_flow_ += static_cast<FlowId>(cfg_.probe_pool);
          for (Host* s : servers) pcfg.dsts.push_back(s->addr());
          pcfg.path = path;
          pcfg.packet_bytes = cfg_.attack_packet_bytes;
          pcfg.rate = cfg_.attack_rate;
          pcfg.active_flows =
              std::min(std::max(1, cfg_.covert_connections), cfg_.probe_pool);
          pcfg.pool = cfg_.probe_pool;
          pcfg.probe_interval = cfg_.probe_interval;
          auto src = std::make_unique<ProbingCovertSource>(&sim_, h, pcfg);
          src->start_at(cfg_.attack_start + rng_.uniform(0.0, 0.5));
          for (FlowId f : src->flow_pool()) {
            monitor_.register_flow(
                f, FlowLabel{FlowClass::kAttack, true, path.key(), path_name});
          }
          probing_sources_.push_back(std::move(src));
          break;
        }
        case AttackType::kStateExhaust: {
          StateExhaustConfig scfg;
          scfg.first_flow = next_flow_;
          next_flow_ += static_cast<FlowId>(cfg_.state_identity_pool);
          scfg.dst = servers[0]->addr();
          scfg.base_path = path;
          scfg.rate = cfg_.attack_rate;
          scfg.identity_pool = cfg_.state_identity_pool;
          scfg.churn_per_sec = cfg_.state_churn_per_sec;
          scfg.spoof_sender = cfg_.state_spoof_sender;
          // Distinct forged-AS slice per source (16M identities each) so two
          // bots never collide on a path key — colliding bots would SHARE
          // table entries and understate the state pressure.
          scfg.forged_as_base =
              0x40000000u +
              static_cast<std::uint32_t>(state_exhaust_sources_.size()) *
                  0x1000000u;
          auto src = std::make_unique<StateExhaustSource>(&sim_, h, scfg);
          src->start_at(cfg_.attack_start + rng_.uniform(0.0, 0.5));
          for (FlowId f : src->flow_pool()) {
            monitor_.register_flow(
                f, FlowLabel{FlowClass::kAttack, true, path.key(), path_name});
          }
          state_exhaust_sources_.push_back(std::move(src));
          break;
        }
        case AttackType::kNone:
          break;
      }
    }
  }

  net_.build_routes();
}

void TreeScenario::attach_tracer(telemetry::Tracer* tracer) {
  for (auto& src : tcp_sources_) src->set_tracer(tracer);
  // pid = the node receiving the transmission (the server gateway); tid 0 is
  // the lone bottleneck lane.
  target_link_->set_tracer(tracer, target_link_->to()->id(), 0);
}

void TreeScenario::run() {
  sim_.schedule_at(cfg_.measure_start,
                   [this] { monitor_.snapshot("start", sim_.now()); });
  sim_.schedule_at(std::min(cfg_.measure_end, cfg_.duration),
                   [this] { monitor_.snapshot("end", sim_.now()); });
  sim_.run_until(cfg_.duration);
  // Ensure snapshots exist even for short runs.
  if (sim_.now() >= cfg_.duration && cfg_.measure_end > cfg_.duration) {
    monitor_.snapshot("end", sim_.now());
  }
}

TreeScenario::ClassBandwidth TreeScenario::class_bandwidth() const {
  ClassBandwidth out;
  out.legit_legit_bps =
      monitor_.class_bps(FlowMonitor::is_legit_on_legit_path, "start", "end");
  out.legit_attack_bps =
      monitor_.class_bps(FlowMonitor::is_legit_on_attack_path, "start", "end");
  out.attack_bps = monitor_.class_bps(FlowMonitor::is_attack, "start", "end");
  return out;
}

Cdf TreeScenario::legit_path_flow_cdf() const {
  return monitor_.bandwidth_cdf(FlowMonitor::is_legit_on_legit_path, "start",
                                "end");
}

Cdf TreeScenario::legit_flow_cdf() const {
  return monitor_.bandwidth_cdf(
      [](const FlowLabel& l) { return l.cls == FlowClass::kLegitimate; },
      "start", "end");
}

std::map<std::string, double> TreeScenario::per_path_bps() const {
  return monitor_.path_bps("start", "end");
}

}  // namespace floc
