// Factory mapping a defense-scheme selector to a configured queue discipline
// for the flooded link. Central place where experiments swap FLoc for its
// comparison baselines.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "baselines/drr_queue.h"
#include "baselines/priority_fair.h"
#include "baselines/pushback.h"
#include "baselines/red_pd.h"
#include "baselines/red_queue.h"
#include "core/floc_queue.h"
#include "netsim/drop_tail.h"

namespace floc {

enum class DefenseScheme {
  kDropTail,      // no defense
  kRed,           // plain RED (fairness reference, Fig. 7(c) "no attack")
  kRedPd,         // RED with preferential dropping
  kPushback,      // aggregate congestion control
  kPriorityFair,  // oracle per-flow fairness (Section VII "FF" analogue)
  kDrr,           // Deficit Round Robin per-flow fair queueing
  kFloc,          // this paper
};

const char* to_string(DefenseScheme s);
DefenseScheme scheme_from_string(const std::string& s);

struct DefenseFactoryConfig {
  BitsPerSec link_bandwidth = mbps(500);
  std::size_t buffer_packets = 1000;
  int pkt_bytes = 1500;
  std::uint64_t seed = 42;
  // Scheme-specific overrides; the factory fills link/buffer fields.
  FlocConfig floc;
  RedConfig red;
  RedPdConfig red_pd;
  PushbackConfig pushback;
  PriorityFairConfig priority_fair;
  DrrConfig drr;
  PriorityFairQueue::LegitClassifier legit_classifier;  // for kPriorityFair
};

std::unique_ptr<QueueDisc> make_defense_queue(DefenseScheme scheme,
                                              DefenseFactoryConfig cfg);

}  // namespace floc
