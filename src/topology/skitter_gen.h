// Synthetic Skitter-map generator (Section VII-A substitution).
//
// CAIDA Skitter maps (f-root, h-root, JPN) are not redistributable, so we
// generate routing trees with the same load-bearing characteristics:
//   * power-law AS degree via preferential attachment,
//   * realistic AS-path depth (mean ~4-6 AS hops, tail to ~10),
//   * Zipf-distributed AS host populations.
// Three shape presets mimic the qualitative differences the paper reports:
// f-root / h-root (bushier, attack ASes interleaved with legitimate ones)
// and JPN (deeper, attack ASes further from the target and better separated
// from legitimate paths — where aggregation worked best, Section VII-C).
#pragma once

#include <string>

#include "topology/as_graph.h"
#include "util/rng.h"

namespace floc {

enum class SkitterPreset { kFRoot, kHRoot, kJpn };

const char* to_string(SkitterPreset p);
SkitterPreset preset_from_string(const std::string& s);

struct SkitterConfig {
  SkitterPreset preset = SkitterPreset::kFRoot;
  int as_count = 2000;
  double zipf_population_s = 1.1;  // AS population skew
  std::uint64_t seed = 2026;
};

AsGraph generate_skitter_tree(const SkitterConfig& cfg);

}  // namespace floc
