#include "topology/skitter_gen.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace floc {

const char* to_string(SkitterPreset p) {
  switch (p) {
    case SkitterPreset::kFRoot: return "f-root";
    case SkitterPreset::kHRoot: return "h-root";
    case SkitterPreset::kJpn: return "jpn";
  }
  return "?";
}

SkitterPreset preset_from_string(const std::string& s) {
  if (s == "f-root" || s == "froot") return SkitterPreset::kFRoot;
  if (s == "h-root" || s == "hroot") return SkitterPreset::kHRoot;
  if (s == "jpn") return SkitterPreset::kJpn;
  throw std::invalid_argument("unknown skitter preset: " + s);
}

AsGraph generate_skitter_tree(const SkitterConfig& cfg) {
  // Preset shape parameters:
  //   alpha: preferential-attachment strength (higher => heavier hubs)
  //   depth_penalty: per-level attachment discount (lower => deeper tree)
  double alpha = 1.0, depth_penalty = 0.8;
  int max_depth = 8;
  switch (cfg.preset) {
    case SkitterPreset::kFRoot:
      alpha = 1.0;
      depth_penalty = 0.80;
      max_depth = 8;
      break;
    case SkitterPreset::kHRoot:
      alpha = 1.3;           // bushier: heavier hubs near the root
      depth_penalty = 0.75;
      max_depth = 7;
      break;
    case SkitterPreset::kJpn:
      alpha = 0.7;           // deeper, stringier paths
      depth_penalty = 0.95;
      max_depth = 10;
      break;
  }

  Rng rng(cfg.seed ^ (static_cast<std::uint64_t>(cfg.preset) << 32));
  AsGraph g;
  g.add_as(/*asn=*/1, /*parent=*/-1, /*population=*/1.0);

  std::vector<double> weight{1.0};  // attachment weight per existing node
  double total_weight = 1.0;

  for (int i = 1; i < cfg.as_count; ++i) {
    // Weighted parent choice (preferential attachment with depth penalty).
    int parent = 0;
    double pick = rng.uniform() * total_weight;
    for (int j = 0; j < g.size(); ++j) {
      pick -= weight[static_cast<std::size_t>(j)];
      if (pick <= 0.0) {
        parent = j;
        break;
      }
    }
    if (g.node(parent).depth >= max_depth) {
      // Reattach shallow: walk up until under the cap.
      while (g.node(parent).depth >= max_depth) parent = g.node(parent).parent;
    }
    // Zipf population (rank drawn uniformly; weight = 1/rank^s).
    const double rank = 1.0 + rng.uniform() * cfg.as_count;
    const double population = std::pow(rank, -cfg.zipf_population_s) * cfg.as_count;

    const int id = g.add_as(static_cast<AsNumber>(i + 1), parent, population);
    const double w =
        std::pow(static_cast<double>(g.node(parent).children.size()) + 1.0, alpha - 1.0) *
        std::pow(depth_penalty, g.node(id).depth);
    weight.push_back(w);
    total_weight += w;
    // Parent grew a child: bump its attachment weight slightly.
    const double bump = 0.1 * alpha;
    weight[static_cast<std::size_t>(parent)] += bump;
    total_weight += bump;
  }
  return g;
}

}  // namespace floc
