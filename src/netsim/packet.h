// Packet and header types shared across the event-driven simulator.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace floc {

using HostAddr = std::uint32_t;  // simulator-wide unique host address ("IP")
using AsNumber = std::uint32_t;  // autonomous-system number
using FlowId = std::uint64_t;    // simulator-wide unique flow identifier

// Domain-path identifier S_i = {AS_i, AS_{i-1}, ..., AS_1}: the sequence of
// domains from the packet's origin towards the destination (Section III-A).
// In FLoc the BGP speaker of the origin domain writes it; here the scenario
// builder fills it in when creating a source. Fixed inline capacity keeps
// packets cheap to copy per hop.
class PathId {
 public:
  static constexpr int kMaxHops = 12;

  PathId() = default;

  void push_origin(AsNumber as);       // append at the origin end
  void truncate_to(int new_len);       // keep the first new_len entries

  int length() const { return len_; }
  bool empty() const { return len_ == 0; }
  AsNumber at(int i) const { return hops_[static_cast<std::size_t>(i)]; }
  // The domain of origin (last element of S_i in paper notation).
  AsNumber origin() const { return len_ ? hops_[static_cast<std::size_t>(len_ - 1)] : 0; }

  // True if `other` is a (weak) prefix of this path, router-side first.
  bool has_prefix(const PathId& other) const;

  bool operator==(const PathId& o) const;

  // Canonical 64-bit key for use in hash maps (not security sensitive).
  std::uint64_t key() const;

  std::string to_string() const;

  // Convenience builder: path {as.front(), ..., as.back()} in router->origin order.
  static PathId of(std::initializer_list<AsNumber> as);

 private:
  std::array<AsNumber, kMaxHops> hops_{};
  int len_ = 0;
};

enum class PacketType : std::uint8_t {
  kSyn,      // connection/capability request
  kSynAck,   // handshake reply
  kData,     // full-sized data segment
  kAck,      // transport acknowledgement
};

const char* to_string(PacketType t);

// Causal tracing context carried by a packet (see src/telemetry/tracing.h):
// the trace (by convention the flow id) and the packet's current span, so the
// next component can parent its own span under it. All-zero when tracing is
// detached — three words copied per hop, nothing else.
struct SpanContext {
  std::uint64_t trace = 0;
  std::uint64_t span = 0;    // the packet's current (innermost) span
  std::uint64_t parent = 0;  // that span's parent

  bool active() const { return span != 0; }
};

struct Packet {
  FlowId flow = 0;
  HostAddr src = 0;
  HostAddr dst = 0;
  PathId path;             // domain-path identifier written at the origin
  PacketType type = PacketType::kData;
  int size_bytes = 1500;
  std::uint64_t seq = 0;   // data sequence number (packets, not bytes)
  std::uint64_t ack = 0;   // cumulative ack (next expected seq)

  // Capability carried by the packet (written by routers into SYNs, echoed
  // by the source on subsequent packets). Zero means "no capability".
  std::uint64_t cap0 = 0;
  std::uint64_t cap1 = 0;

  double sent_time = 0.0;  // origin timestamp (for RTT sampling)

  SpanContext span;        // causal tracing context; all-zero when detached
};

}  // namespace floc
