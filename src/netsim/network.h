// Network container: owns nodes and links, computes static shortest-path
// routes (BFS per destination host).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "netsim/link.h"
#include "netsim/node.h"
#include "netsim/simulator.h"

namespace floc {

class Network {
 public:
  explicit Network(Simulator* sim) : sim_(sim) {}

  Router* add_router(const std::string& name, AsNumber as);
  Host* add_host(const std::string& name, AsNumber as);

  // Create a duplex connection a<->b. Each direction gets its own Link; the
  // supplied queues default to drop-tail with `default_queue_packets`.
  struct Duplex {
    Link* ab;
    Link* ba;
  };
  Duplex connect(Node* a, Node* b, BitsPerSec bandwidth, TimeSec delay,
                 std::unique_ptr<QueueDisc> q_ab = nullptr,
                 std::unique_ptr<QueueDisc> q_ba = nullptr);

  // Recompute routing tables; must be called after topology changes and
  // before traffic starts.
  void build_routes();

  // Next link out of node `node_id` toward host `dst`, or nullptr.
  Link* next_hop(int node_id, HostAddr dst) const;

  Simulator* sim() const { return sim_; }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t host_count() const { return hosts_.size(); }
  Host* host_by_addr(HostAddr a) const;

  void set_default_queue_packets(std::size_t n) { default_queue_packets_ = n; }

 private:
  Simulator* sim_;
  std::size_t default_queue_packets_ = 100;

  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Host*> hosts_;  // indexed by HostAddr - 1

  // adjacency_[node] = {(neighbor node id, link from node to neighbor)}
  std::vector<std::vector<std::pair<int, Link*>>> adjacency_;

  // routes_[dst_addr - 1][node_id] = next link from node toward dst.
  std::vector<std::vector<Link*>> routes_;
};

}  // namespace floc
