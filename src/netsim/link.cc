#include "netsim/link.h"

#include <cassert>
#include <utility>

#include "netsim/node.h"

namespace floc {

Link::Link(Simulator* sim, Node* to, BitsPerSec bandwidth, TimeSec delay,
           std::unique_ptr<QueueDisc> queue)
    : sim_(sim), to_(to), bandwidth_(bandwidth), delay_(delay),
      queue_(std::move(queue)) {
  assert(queue_ && "link requires a queue discipline");
}

void Link::set_queue(std::unique_ptr<QueueDisc> q) {
  assert(q);
  queue_ = std::move(q);
  queue_->set_tracer(tracer_);
}

void Link::set_tracer(telemetry::Tracer* tracer, std::int32_t pid,
                      std::uint64_t tid) {
  tracer_ = tracer;
  trace_pid_ = pid;
  trace_tid_ = tid;
  queue_->set_tracer(tracer);
}

void Link::send(Packet&& p) {
  if (!up_) {
    ++down_drops_;
    return;
  }
  if (tracer_ != nullptr) trace_enqueue(p);
  bool admitted;
  {
    telemetry::ScopedTimer timer(prof_enqueue_);
    admitted = queue_->enqueue(std::move(p), sim_->now());
  }
  if (admitted) try_transmit();
}

void Link::trace_enqueue(Packet& p) {
  // Untraced traffic (e.g. raw attack sources) still gets a residency span
  // rooted at this hop, keyed by its flow id.
  const std::uint64_t trace = p.span.trace != 0 ? p.span.trace : p.flow;
  const telemetry::SpanId qs =
      tracer_->begin(sim_->now(), trace, p.span.span,
                     telemetry::SpanKind::kQueue, trace_pid_, trace_tid_,
                     p.seq, p.size_bytes);
  p.span = SpanContext{trace, qs, p.span.span};
}

void Link::set_up(bool up, DownQueuePolicy policy) {
  if (up == up_) return;
  up_ = up;
  if (!up_) {
    if (policy == DownQueuePolicy::kDrain) {
      while (queue_->dequeue(sim_->now())) ++down_drops_;
    }
    return;
  }
  try_transmit();
}

void Link::try_transmit() {
  if (busy_ || !up_) return;
  std::optional<Packet> pkt;
  {
    telemetry::ScopedTimer timer(prof_dequeue_);
    pkt = queue_->dequeue(sim_->now());
  }
  if (!pkt) return;
  busy_ = true;
  if (tamper_) tamper_(*pkt);
  const TimeSec tx = transmission_time(pkt->size_bytes, bandwidth_);
  bytes_sent_ += static_cast<std::uint64_t>(pkt->size_bytes);
  ++packets_sent_;
  if (tracer_ != nullptr && pkt->span.active()) trace_transmit(*pkt, tx);
  // Transmitter frees after serialization; the packet lands after the
  // additional propagation delay.
  sim_->schedule_in(tx, [this] {
    busy_ = false;
    try_transmit();
  });
  auto deliver = [this, p = std::move(*pkt)]() mutable {
    to_->receive(std::move(p));
  };
  // The delivery lambda (this + a Packet by value) is the repo's largest
  // per-packet capture; it must stay on the scheduler's zero-alloc inline
  // path. If Packet grows past the inline budget, grow
  // kSimCallbackInlineBytes with it.
  static_assert(Simulator::Callback::fits_inline<decltype(deliver)>());
  sim_->schedule_in(tx + delay_, std::move(deliver));
}

void Link::trace_transmit(Packet& p, TimeSec tx) {
  const TimeSec now = sim_->now();
  // Close the residency span (a no-op if the queue's drop hook already
  // terminated it) and record the pre-known serialization+propagation
  // interval, then hand the packet onward parented under the wire span.
  tracer_->end(p.span.span, now);
  const telemetry::SpanId wire = tracer_->complete(
      now, now + tx + delay_, p.span.trace, p.span.span,
      telemetry::SpanKind::kLinkTx, trace_pid_, trace_tid_, p.seq,
      p.size_bytes);
  p.span.parent = p.span.span;
  p.span.span = wire;
}

void Link::register_metrics(telemetry::MetricRegistry& reg,
                            const std::string& prefix) const {
  reg.gauge_fn(prefix + ".bytes_sent",
               [this] { return static_cast<double>(bytes_sent()); });
  reg.gauge_fn(prefix + ".packets_sent",
               [this] { return static_cast<double>(packets_sent()); });
  reg.gauge_fn(prefix + ".down_drops",
               [this] { return static_cast<double>(down_drops()); });
  reg.gauge_fn(prefix + ".up", [this] { return up() ? 1.0 : 0.0; });
  queue().register_metrics(reg, prefix + ".queue");
}

double Link::utilization(TimeSec t0, TimeSec t1) const {
  if (t1 <= t0) return 0.0;
  return static_cast<double>(bytes_sent_) * kBitsPerByte /
         ((t1 - t0) * bandwidth_);
}

}  // namespace floc
