#include "netsim/link.h"

#include <cassert>
#include <utility>

#include "netsim/node.h"

namespace floc {

Link::Link(Simulator* sim, Node* to, BitsPerSec bandwidth, TimeSec delay,
           std::unique_ptr<QueueDisc> queue)
    : sim_(sim), to_(to), bandwidth_(bandwidth), delay_(delay),
      queue_(std::move(queue)) {
  assert(queue_ && "link requires a queue discipline");
}

void Link::set_queue(std::unique_ptr<QueueDisc> q) {
  assert(q);
  queue_ = std::move(q);
}

void Link::send(Packet&& p) {
  if (!up_) {
    ++down_drops_;
    return;
  }
  if (queue_->enqueue(std::move(p), sim_->now())) {
    try_transmit();
  }
}

void Link::set_up(bool up, DownQueuePolicy policy) {
  if (up == up_) return;
  up_ = up;
  if (!up_) {
    if (policy == DownQueuePolicy::kDrain) {
      while (queue_->dequeue(sim_->now())) ++down_drops_;
    }
    return;
  }
  try_transmit();
}

void Link::try_transmit() {
  if (busy_ || !up_) return;
  auto pkt = queue_->dequeue(sim_->now());
  if (!pkt) return;
  busy_ = true;
  if (tamper_) tamper_(*pkt);
  const TimeSec tx = transmission_time(pkt->size_bytes, bandwidth_);
  bytes_sent_ += static_cast<std::uint64_t>(pkt->size_bytes);
  ++packets_sent_;
  // Transmitter frees after serialization; the packet lands after the
  // additional propagation delay.
  sim_->schedule_in(tx, [this] {
    busy_ = false;
    try_transmit();
  });
  sim_->schedule_in(tx + delay_, [this, p = std::move(*pkt)]() mutable {
    to_->receive(std::move(p));
  });
}

void Link::register_metrics(telemetry::MetricRegistry& reg,
                            const std::string& prefix) const {
  reg.gauge_fn(prefix + ".bytes_sent",
               [this] { return static_cast<double>(bytes_sent()); });
  reg.gauge_fn(prefix + ".packets_sent",
               [this] { return static_cast<double>(packets_sent()); });
  reg.gauge_fn(prefix + ".down_drops",
               [this] { return static_cast<double>(down_drops()); });
  reg.gauge_fn(prefix + ".up", [this] { return up() ? 1.0 : 0.0; });
  queue().register_metrics(reg, prefix + ".queue");
}

double Link::utilization(TimeSec t0, TimeSec t1) const {
  if (t1 <= t0) return 0.0;
  return static_cast<double>(bytes_sent_) * kBitsPerByte /
         ((t1 - t0) * bandwidth_);
}

}  // namespace floc
