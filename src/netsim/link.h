// Unidirectional link: serialization at a fixed rate, propagation delay, and
// an attached queue discipline at the egress port.
//
// Links carry fault state for the fault-injection subsystem (src/faultsim):
// a downed link drops every offered packet; on recovery transmission resumes
// from the (optionally preserved) egress queue. A tamper hook lets fault
// plans corrupt packets on the wire.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "netsim/queue_disc.h"
#include "netsim/simulator.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "telemetry/tracing.h"
#include "util/units.h"

namespace floc {

class Node;

class Link {
 public:
  // What happens to packets already buffered when the link goes down.
  enum class DownQueuePolicy {
    kPreserve,  // line card loses power, buffer memory survives
    kDrain,     // buffer is lost with the link
  };

  Link(Simulator* sim, Node* to, BitsPerSec bandwidth, TimeSec delay,
       std::unique_ptr<QueueDisc> queue);

  // Offer a packet to the egress queue and start transmitting if idle.
  // Offered packets are dropped outright while the link is down.
  void send(Packet&& p);

  // Bring the link down or back up. A packet mid-serialization when the link
  // fails is already on the wire and still delivers; nothing new starts
  // until recovery, which immediately resumes transmission from the queue.
  void set_up(bool up, DownQueuePolicy policy = DownQueuePolicy::kPreserve);
  bool up() const { return up_; }
  // Packets dropped because they were offered to (or drained from) a downed
  // link.
  std::uint64_t down_drops() const { return down_drops_; }

  // Wire-level tamper hook (fault injection): invoked on each packet as it
  // begins serialization, after queueing/admission decisions were made.
  void set_tamper(std::function<void(Packet&)> tamper) {
    tamper_ = std::move(tamper);
  }

  QueueDisc& queue() { return *queue_; }
  const QueueDisc& queue() const { return *queue_; }
  // Replace the queue discipline (must be done before traffic starts).
  void set_queue(std::unique_ptr<QueueDisc> q);

  BitsPerSec bandwidth() const { return bandwidth_; }
  TimeSec delay() const { return delay_; }
  Node* to() const { return to_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t packets_sent() const { return packets_sent_; }

  // Mean utilization of the link over [t0, t1] given recorded bytes; caller
  // supplies the measurement window.
  double utilization(TimeSec t0, TimeSec t1) const;

  // Publish link counters as polled gauges under `prefix` (e.g.
  // "link.target"): bytes_sent, packets_sent, down_drops, up, and the egress
  // queue's depth in packets/bytes plus its drop/admission totals. Polled at
  // sample time only — the transmit path is untouched.
  void register_metrics(telemetry::MetricRegistry& reg,
                        const std::string& prefix) const;

  // Attach causal span tracing: each offered packet gets a kQueue residency
  // span (parented under the packet's current span, closed at dequeue or by
  // the queue's drop hook), and each transmission records a kLinkTx span
  // covering serialization + propagation. `pid`/`tid` label the exported
  // lanes (by convention: pid = receiving node id, tid = link ordinal). The
  // tracer also propagates to the queue discipline so drops terminate the
  // residency span with their DropReason. Null detaches; the detached send
  // path does zero tracing work.
  void set_tracer(telemetry::Tracer* tracer, std::int32_t pid = 0,
                  std::uint64_t tid = 0);

  // Attach wall-clock profiling of the queue discipline's enqueue/dequeue
  // calls (sections from telemetry::Profiler::section); null detaches.
  void set_profiler(telemetry::Profiler::Section* enqueue_section,
                    telemetry::Profiler::Section* dequeue_section) {
    prof_enqueue_ = enqueue_section;
    prof_dequeue_ = dequeue_section;
  }

 private:
  void try_transmit();
  void trace_enqueue(Packet& p);
  void trace_transmit(Packet& p, TimeSec tx);

  Simulator* sim_;
  Node* to_;
  BitsPerSec bandwidth_;
  TimeSec delay_;
  std::unique_ptr<QueueDisc> queue_;
  std::function<void(Packet&)> tamper_;
  telemetry::Tracer* tracer_ = nullptr;
  std::int32_t trace_pid_ = 0;
  std::uint64_t trace_tid_ = 0;
  telemetry::Profiler::Section* prof_enqueue_ = nullptr;
  telemetry::Profiler::Section* prof_dequeue_ = nullptr;
  bool busy_ = false;
  bool up_ = true;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t down_drops_ = 0;
};

}  // namespace floc
