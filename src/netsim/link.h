// Unidirectional link: serialization at a fixed rate, propagation delay, and
// an attached queue discipline at the egress port.
#pragma once

#include <cstdint>
#include <memory>

#include "netsim/queue_disc.h"
#include "netsim/simulator.h"
#include "util/units.h"

namespace floc {

class Node;

class Link {
 public:
  Link(Simulator* sim, Node* to, BitsPerSec bandwidth, TimeSec delay,
       std::unique_ptr<QueueDisc> queue);

  // Offer a packet to the egress queue and start transmitting if idle.
  void send(Packet&& p);

  QueueDisc& queue() { return *queue_; }
  const QueueDisc& queue() const { return *queue_; }
  // Replace the queue discipline (must be done before traffic starts).
  void set_queue(std::unique_ptr<QueueDisc> q);

  BitsPerSec bandwidth() const { return bandwidth_; }
  TimeSec delay() const { return delay_; }
  Node* to() const { return to_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t packets_sent() const { return packets_sent_; }

  // Mean utilization of the link over [t0, t1] given recorded bytes; caller
  // supplies the measurement window.
  double utilization(TimeSec t0, TimeSec t1) const;

 private:
  void try_transmit();

  Simulator* sim_;
  Node* to_;
  BitsPerSec bandwidth_;
  TimeSec delay_;
  std::unique_ptr<QueueDisc> queue_;
  bool busy_ = false;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t packets_sent_ = 0;
};

}  // namespace floc
