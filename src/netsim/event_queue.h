// Event-queue engines behind the Simulator: the legacy binary heap and the
// hierarchical timer wheel that replaced it on the hot path.
//
// Both engines store the SAME arena-backed intrusive EventNode and must
// produce the SAME pop order: strictly (time, seq) — seq is the insertion
// sequence number, so same-timestamp events fire FIFO. That contract is
// what the differential harness (tests/netsim_event_queue_differential_
// test.cc) fuzzes and what keeps golden traces byte-identical across the
// engine switch.
//
//  * HeapEventQueue — the seed engine's std::priority_queue, now over node
//    POINTERS so pop moves nothing (the seed engine copied the whole
//    std::function out of top(); see the no-copy regression test).
//    O(log n) per op; kept alive as the reference implementation.
//
//  * WheelEventQueue — hierarchical timer wheel: kLevels levels of kSlots
//    slots, 1 µs ticks, level L slot spanning 64^L ticks. Insert and the
//    amortized fire path are O(1); per-level occupancy bitmaps make the
//    "jump to next event" a couple of ctz instructions, and events beyond
//    the wheel horizon (~19 simulated hours) park in a calendar of
//    2^36-tick buckets that refills the wheel on arrival. Multiple
//    distinct double timestamps can share one tick, so an expiring slot is
//    drained through a small (time, seq) min-heap of exactly that tick's
//    events — reentrant schedules landing in the tick being processed
//    merge into the same heap, which is how the wheel reproduces the heap
//    engine's ordering bit for bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include "util/arena.h"
#include "util/inline_function.h"
#include "util/units.h"

namespace floc {

// Sized for the largest hot capture in the repo: Link's delivery lambda
// carries a Packet (144 bytes) plus the link pointer. Larger captures still
// work via InlineFunction's heap cell; they just are not zero-alloc
// (link.cc static_asserts its lambdas fit).
inline constexpr std::size_t kSimCallbackInlineBytes = 160;

using SimCallback = InlineFunction<void(), kSimCallbackInlineBytes>;

// One scheduled event. Lives in the Simulator's NodeArena; `next` threads
// the arena freelist while free and a wheel slot / calendar bucket list
// while queued (the heap engine keeps pointers in its own vector instead).
struct EventNode {
  EventNode* next = nullptr;
  std::uint64_t tick = 0;  // time quantized by WheelEventQueue::tick_of
  TimeSec time = 0.0;      // exact requested (post-clamp) fire time
  std::uint64_t seq = 0;   // insertion order; FIFO tie-break within a time
  std::uint64_t gen = 0;   // bumped on release; validates TimerHandles
  bool cancelled = false;  // lazy-cancel flag; popped nodes are discarded
  SimCallback cb;
};

// Fires strictly in (time, seq) order via pop_if_at_or_before/pop_any.
// Ownership: nodes are acquired/released by the Simulator; an engine only
// holds them between push and pop (whatever is still queued when the arena
// dies is destroyed by the arena's chunks, so early exits cannot leak).
class EventQueue {
 public:
  virtual ~EventQueue() = default;

  // n->tick/time/seq must be set; the queue takes the node until popped.
  virtual void push(EventNode* n) = 0;

  // Pop the earliest event if its time is <= limit, else nullptr.
  virtual EventNode* pop_if_at_or_before(TimeSec limit) = 0;

  // Pop the earliest event, nullptr when empty.
  virtual EventNode* pop_any() = 0;

  // Nodes physically held (including lazily-cancelled ones).
  virtual std::size_t nodes() const = 0;
};

class HeapEventQueue final : public EventQueue {
 public:
  HeapEventQueue() {
    std::vector<EventNode*> storage;
    storage.reserve(kReserveNodes);
    pq_ = decltype(pq_)(Later{}, std::move(storage));
  }

  void push(EventNode* n) override { pq_.push(n); }

  EventNode* pop_if_at_or_before(TimeSec limit) override {
    if (pq_.empty() || pq_.top()->time > limit) return nullptr;
    EventNode* n = pq_.top();
    pq_.pop();
    return n;
  }

  EventNode* pop_any() override {
    if (pq_.empty()) return nullptr;
    EventNode* n = pq_.top();
    pq_.pop();
    return n;
  }

  std::size_t nodes() const override { return pq_.size(); }

 private:
  // Construction-time headroom so the first few hundred concurrent events
  // never grow the storage on the fire path (growth past this is amortized
  // as usual). Shared with the wheel's ready heap for symmetry.
  static constexpr std::size_t kReserveNodes = 256;

  struct Later {
    bool operator()(const EventNode* a, const EventNode* b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;
    }
  };
  std::priority_queue<EventNode*, std::vector<EventNode*>, Later> pq_;
};

class WheelEventQueue final : public EventQueue {
 public:
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;  // 64
  static constexpr int kLevels = 6;              // 36 bits of ticks in-wheel
  static constexpr double kTicksPerSec = 1e6;    // 1 µs resolution

  WheelEventQueue() { ready_.reserve(256); }

  // Quantize a (non-negative) simulation time to a wheel tick. Monotone in
  // t; times past the representable range all clamp onto one far-future
  // tick and are then ordered among themselves by exact time in the ready
  // heap, so even absurd horizons fire in the right relative order.
  static std::uint64_t tick_of(TimeSec t) {
    const double scaled = t * kTicksPerSec;
    if (scaled >= kMaxTickAsDouble) return kMaxTick;
    return scaled <= 0.0 ? 0 : static_cast<std::uint64_t>(scaled);
  }

  void push(EventNode* n) override;
  EventNode* pop_if_at_or_before(TimeSec limit) override;
  EventNode* pop_any() override;
  std::size_t nodes() const override { return count_; }

  std::uint64_t current_tick() const { return cur_tick_; }

 private:
  static constexpr std::uint64_t kMaxTick = ~std::uint64_t{0} >> 1;
  static constexpr double kMaxTickAsDouble = 9.2e18;  // < 2^63

  struct SlotList {
    EventNode* head = nullptr;
    EventNode* tail = nullptr;
    void append(EventNode* n) {
      n->next = nullptr;
      if (tail != nullptr) {
        tail->next = n;
      } else {
        head = n;
      }
      tail = n;
    }
    bool empty() const { return head == nullptr; }
  };

  struct ReadyLater {
    bool operator()(const EventNode* a, const EventNode* b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;
    }
  };

  // Route a node to its wheel slot / calendar bucket relative to cur_tick_.
  void place(EventNode* n);
  // Ensure ready_ holds the earliest pending tick's events; false if empty.
  bool prepare_ready();
  EventNode* take_ready();

  SlotList slots_[kLevels][kSlots];
  std::uint64_t occupied_[kLevels] = {};
  // Calendar fallback for events beyond the wheel horizon: 2^36-tick
  // buckets, redistributed into the wheel when the clock reaches them.
  std::map<std::uint64_t, SlotList> calendar_;
  // Events of the single tick currently being fired, as a (time, seq)
  // min-heap; reentrant same-tick schedules merge in here.
  std::vector<EventNode*> ready_;
  std::uint64_t ready_tick_ = 0;  // meaningful only while !ready_.empty()
  std::uint64_t cur_tick_ = 0;
  std::size_t count_ = 0;
};

}  // namespace floc
