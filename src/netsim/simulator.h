// Discrete-event simulation core: a clock plus a time-ordered event queue.
//
// Events are arbitrary callbacks. Ties are broken by insertion order so runs
// are fully deterministic.
//
// Engines: the queue behind the clock is pluggable (SimEngine). The default
// is a hierarchical timer wheel whose steady-state schedule->fire path does
// zero heap allocations (arena-recycled intrusive nodes + small-buffer
// inline callbacks); the seed binary heap survives as the reference engine,
// and the differential harness proves the two produce identical event
// orderings. Select per-instance via the constructor, process-wide via
// set_default_engine(), or externally via FLOC_SIM_ENGINE=heap|wheel.
//
// Observability: set_profiler() attaches a steady-clock hook that records the
// wall-clock nanoseconds spent inside each event callback into a telemetry
// histogram (p50/p99 per-event processing cost); register_metrics() publishes
// the scheduler counters as polled gauges. Both are off (and free) by
// default — the run loop pays one pointer-null test per event.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "netsim/event_queue.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "util/arena.h"
#include "util/units.h"

namespace floc {

enum class SimEngine {
  kHeap,   // seed std::priority_queue engine (reference implementation)
  kWheel,  // hierarchical timer wheel + calendar fallback (default)
};
const char* to_string(SimEngine e);

class Simulator {
 public:
  using Callback = SimCallback;

  // Cancellation handle for a scheduled event. Valid only against the
  // Simulator that issued it; a handle goes stale once its event fires,
  // is cancelled, or the node is recycled (generation-checked, so stale
  // cancels are safe no-ops).
  struct TimerHandle {
    EventNode* node = nullptr;
    std::uint64_t gen = 0;
    explicit operator bool() const { return node != nullptr; }
  };

  explicit Simulator(SimEngine engine = default_engine());
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimEngine engine() const { return engine_kind_; }

  // Engine used by default-constructed Simulators (TreeScenario worlds,
  // benches, tests). Resolution order: set_default_engine() if called,
  // else FLOC_SIM_ENGINE=heap|wheel from the environment, else kWheel.
  static SimEngine default_engine();
  static void set_default_engine(SimEngine engine);

  TimeSec now() const { return now_; }

  // Schedule `cb` at absolute time `t`. A `t` in the past (possible when a
  // callback computes a fire time from stale state) is clamped to `now` and
  // counted in `late_events()` instead of silently reordering time.
  // The callable is emplaced directly into an arena node: one move of the
  // capture, zero heap allocations when it fits the inline buffer.
  template <typename F>
  TimerHandle schedule_at(TimeSec t, F&& cb) {
    EventNode* n = arena_.acquire();
    if constexpr (std::is_same_v<std::decay_t<F>, Callback>) {
      n->cb = std::forward<F>(cb);
    } else {
      n->cb.assign(std::forward<F>(cb));
    }
    return schedule_node(t, n);
  }

  // Schedule `cb` after a delay of `dt` seconds.
  template <typename F>
  TimerHandle schedule_in(TimeSec dt, F&& cb) {
    return schedule_at(now_ + dt, std::forward<F>(cb));
  }

  // Cancel a scheduled event. True if the event was still pending (it will
  // never fire); false for stale/foreign/already-cancelled handles. O(1):
  // the node is flagged and discarded when the queue reaches it, which
  // keeps both engines' pop order — and therefore golden traces —
  // identical.
  bool cancel(TimerHandle h);

  // Run until the event queue drains or the clock passes `t_end`.
  void run_until(TimeSec t_end);

  // Run until the event queue drains.
  void run();

  std::uint64_t events_processed() const { return processed_; }
  // Events whose requested time was already in the past (clamped to now).
  std::uint64_t late_events() const { return late_; }
  // Events cancelled before firing.
  std::uint64_t cancelled_events() const { return cancelled_; }
  bool empty() const { return live_ == 0; }
  // Pending (scheduled, not yet fired, not cancelled) events.
  std::size_t pending_events() const { return live_; }

  // Record wall-clock nanoseconds per event callback into `event_ns`
  // (steady clock; measurement only — simulated time is unaffected).
  // nullptr detaches.
  void set_profiler(telemetry::LogHistogram* event_ns) { profile_ns_ = event_ns; }

  // Attribute event-dispatch wall time to a Profiler section (e.g.
  // "sim.dispatch"); composes with set_profiler(). nullptr detaches.
  void set_profile_section(telemetry::Profiler::Section* section) {
    profile_section_ = section;
  }

  // Publish scheduler counters as polled gauges: <prefix>.events_processed,
  // <prefix>.late_events, <prefix>.cancelled_events, <prefix>.pending_events.
  void register_metrics(telemetry::MetricRegistry& reg,
                        const std::string& prefix = "sim") const;

  // Event nodes currently held by the queue, including lazily-cancelled
  // ones awaiting discard (introspection for the arena-accounting tests).
  std::size_t queued_nodes() const { return queue_->nodes(); }
  std::size_t arena_nodes_in_use() const { return arena_.in_use(); }

 private:
  TimerHandle schedule_node(TimeSec t, EventNode* n);
  void release_node(EventNode* n);
  void dispatch(Callback& cb);

  TimeSec now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t late_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t live_ = 0;
  telemetry::LogHistogram* profile_ns_ = nullptr;
  telemetry::Profiler::Section* profile_section_ = nullptr;
  SimEngine engine_kind_;
  // The arena outlives the queue member below only by declaration order;
  // neither touches the other on destruction (pending callbacks are
  // destroyed by the arena's chunks).
  NodeArena<EventNode> arena_;
  std::unique_ptr<EventQueue> queue_;
};

}  // namespace floc
