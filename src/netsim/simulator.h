// Discrete-event simulation core: a clock plus a time-ordered event queue.
//
// Events are arbitrary callbacks. Ties are broken by insertion order so runs
// are fully deterministic.
//
// Observability: set_profiler() attaches a steady-clock hook that records the
// wall-clock nanoseconds spent inside each event callback into a telemetry
// histogram (p50/p99 per-event processing cost); register_metrics() publishes
// the scheduler counters as polled gauges. Both are off (and free) by
// default — the run loop pays one pointer-null test per event.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "util/units.h"

namespace floc {

class Simulator {
 public:
  using Callback = std::function<void()>;

  TimeSec now() const { return now_; }

  // Schedule `cb` at absolute time `t`. A `t` in the past (possible when a
  // callback computes a fire time from stale state) is clamped to `now` and
  // counted in `late_events()` instead of silently reordering time.
  void schedule_at(TimeSec t, Callback cb);

  // Schedule `cb` after a delay of `dt` seconds.
  void schedule_in(TimeSec dt, Callback cb) { schedule_at(now_ + dt, std::move(cb)); }

  // Run until the event queue drains or the clock passes `t_end`.
  void run_until(TimeSec t_end);

  // Run until the event queue drains.
  void run();

  std::uint64_t events_processed() const { return processed_; }
  // Events whose requested time was already in the past (clamped to now).
  std::uint64_t late_events() const { return late_; }
  bool empty() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }

  // Record wall-clock nanoseconds per event callback into `event_ns`
  // (steady clock; measurement only — simulated time is unaffected).
  // nullptr detaches.
  void set_profiler(telemetry::LogHistogram* event_ns) { profile_ns_ = event_ns; }

  // Attribute event-dispatch wall time to a Profiler section (e.g.
  // "sim.dispatch"); composes with set_profiler(). nullptr detaches.
  void set_profile_section(telemetry::Profiler::Section* section) {
    profile_section_ = section;
  }

  // Publish scheduler counters as polled gauges: <prefix>.events_processed,
  // <prefix>.late_events, <prefix>.pending_events.
  void register_metrics(telemetry::MetricRegistry& reg,
                        const std::string& prefix = "sim") const;

 private:
  void dispatch(Callback& cb);

  struct Event {
    TimeSec time;
    std::uint64_t seq;  // FIFO among same-time events
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  TimeSec now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t late_ = 0;
  telemetry::LogHistogram* profile_ns_ = nullptr;
  telemetry::Profiler::Section* profile_section_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace floc
