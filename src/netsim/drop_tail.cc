#include "netsim/drop_tail.h"

namespace floc {

bool DropTailQueue::enqueue(Packet&& p, TimeSec now) {
  if (q_.size() >= capacity_) {
    note_drop(p, DropReason::kQueueFull, now);
    return false;
  }
  bytes_ += static_cast<std::size_t>(p.size_bytes);
  q_.push_back(std::move(p));
  note_admit();
  return true;
}

std::optional<Packet> DropTailQueue::dequeue(TimeSec) {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= static_cast<std::size_t>(p.size_bytes);
  return p;
}

}  // namespace floc
