#include "netsim/network.h"

#include <cassert>
#include <deque>

#include "netsim/drop_tail.h"

namespace floc {

Router* Network::add_router(const std::string& name, AsNumber as) {
  const int id = static_cast<int>(nodes_.size());
  auto r = std::make_unique<Router>(this, id, name, as);
  Router* out = r.get();
  nodes_.push_back(std::move(r));
  adjacency_.emplace_back();
  return out;
}

Host* Network::add_host(const std::string& name, AsNumber as) {
  const int id = static_cast<int>(nodes_.size());
  const auto addr = static_cast<HostAddr>(hosts_.size() + 1);
  auto h = std::make_unique<Host>(this, id, name, addr, as);
  Host* out = h.get();
  nodes_.push_back(std::move(h));
  adjacency_.emplace_back();
  hosts_.push_back(out);
  return out;
}

Network::Duplex Network::connect(Node* a, Node* b, BitsPerSec bandwidth,
                                 TimeSec delay, std::unique_ptr<QueueDisc> q_ab,
                                 std::unique_ptr<QueueDisc> q_ba) {
  if (!q_ab) q_ab = std::make_unique<DropTailQueue>(default_queue_packets_);
  if (!q_ba) q_ba = std::make_unique<DropTailQueue>(default_queue_packets_);
  auto lab = std::make_unique<Link>(sim_, b, bandwidth, delay, std::move(q_ab));
  auto lba = std::make_unique<Link>(sim_, a, bandwidth, delay, std::move(q_ba));
  Duplex d{lab.get(), lba.get()};
  adjacency_[static_cast<std::size_t>(a->id())].emplace_back(b->id(), d.ab);
  adjacency_[static_cast<std::size_t>(b->id())].emplace_back(a->id(), d.ba);
  links_.push_back(std::move(lab));
  links_.push_back(std::move(lba));
  return d;
}

void Network::build_routes() {
  const std::size_t n = nodes_.size();
  routes_.assign(hosts_.size(), std::vector<Link*>(n, nullptr));

  // BFS outward from each destination host; an edge u->v discovered while
  // expanding v means u reaches dst via its link to v.
  std::vector<int> dist(n);
  std::deque<int> frontier;
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    auto& table = routes_[h];
    std::fill(dist.begin(), dist.end(), -1);
    frontier.clear();
    const int root = hosts_[h]->id();
    dist[static_cast<std::size_t>(root)] = 0;
    frontier.push_back(root);
    while (!frontier.empty()) {
      const int v = frontier.front();
      frontier.pop_front();
      for (const auto& [u, link_uv] : adjacency_[static_cast<std::size_t>(v)]) {
        // adjacency_[v] holds links *out of* v; we need links into v, i.e.
        // from the neighbor u pointing at v. Find u's link to v below.
        (void)link_uv;
        if (dist[static_cast<std::size_t>(u)] != -1) continue;
        dist[static_cast<std::size_t>(u)] = dist[static_cast<std::size_t>(v)] + 1;
        for (const auto& [w, link_uw] : adjacency_[static_cast<std::size_t>(u)]) {
          if (w == v) {
            table[static_cast<std::size_t>(u)] = link_uw;
            break;
          }
        }
        frontier.push_back(u);
      }
    }
  }
}

Link* Network::next_hop(int node_id, HostAddr dst) const {
  const std::size_t h = static_cast<std::size_t>(dst) - 1;
  if (h >= routes_.size()) return nullptr;
  return routes_[h][static_cast<std::size_t>(node_id)];
}

Host* Network::host_by_addr(HostAddr a) const {
  const std::size_t h = static_cast<std::size_t>(a) - 1;
  return h < hosts_.size() ? hosts_[h] : nullptr;
}

}  // namespace floc
