#include "netsim/event_queue.h"

#include <algorithm>
#include <bit>

namespace floc {

namespace {

constexpr std::uint64_t level_mask(int level) {
  // Low bits covered by levels [0, level): e.g. level 1 -> 0x3F.
  return (std::uint64_t{1} << (WheelEventQueue::kSlotBits * level)) - 1;
}

}  // namespace

void WheelEventQueue::push(EventNode* n) {
  ++count_;
  if (!ready_.empty() && n->tick <= ready_tick_) {
    // Reentrant schedule into (or behind) the tick currently firing: merge
    // into the ready heap so (time, seq) order holds against events
    // already drawn out of the slot. "Behind" happens when a bounded
    // run_until peeked ahead of the Simulator clock; no queued event can
    // lie between such a tick and the firing tick (the wheel only ever
    // advances to its minimum), so merging preserves global order.
    ready_.push_back(n);
    std::push_heap(ready_.begin(), ready_.end(), ReadyLater{});
    return;
  }
  place(n);
}

void WheelEventQueue::place(EventNode* n) {
  // Clamp behind-clock ticks onto the clock's own slot: the wheel has
  // already advanced past them (peeking for an event beyond a run_until
  // limit), and since every queued event's tick is >= cur_tick_, firing
  // them with the cur_tick_ batch keeps exact (time, seq) order — the
  // ready heap sorts by the un-quantized timestamp.
  const std::uint64_t eff = n->tick > cur_tick_ ? n->tick : cur_tick_;
  const std::uint64_t diff = eff ^ cur_tick_;
  if ((diff >> (kSlotBits * kLevels)) != 0) {
    calendar_[eff >> (kSlotBits * kLevels)].append(n);
    return;
  }
  // The level of the highest 6-bit group where tick and the clock differ.
  const int level =
      diff == 0 ? 0 : (63 - std::countl_zero(diff)) / kSlotBits;
  const int slot =
      static_cast<int>((eff >> (kSlotBits * level)) & (kSlots - 1));
  slots_[level][slot].append(n);
  occupied_[level] |= std::uint64_t{1} << slot;
}

bool WheelEventQueue::prepare_ready() {
  if (!ready_.empty()) return true;
  for (;;) {
    // Invariant: every queued node sits at or ahead of cur_tick_, and any
    // level-0 node precedes any node at a higher level, so the lowest
    // occupied level's lowest slot is the global minimum tick (or its
    // enclosing block, for levels > 0).
    int level = -1;
    for (int l = 0; l < kLevels; ++l) {
      if (occupied_[l] != 0) {
        level = l;
        break;
      }
    }
    if (level < 0) {
      if (calendar_.empty()) return false;
      const auto it = calendar_.begin();
      SlotList list = it->second;
      cur_tick_ = it->first << (kSlotBits * kLevels);
      calendar_.erase(it);
      for (EventNode* n = list.head; n != nullptr;) {
        EventNode* next = n->next;
        place(n);
        n = next;
      }
      continue;
    }
    const int slot = std::countr_zero(occupied_[level]);
    SlotList list = slots_[level][slot];
    slots_[level][slot] = SlotList{};
    occupied_[level] &= ~(std::uint64_t{1} << slot);
    if (level == 0) {
      // A level-0 slot holds exactly one tick's events (plus any clamped
      // behind-clock stragglers): this is the earliest pending tick.
      // Drain it through the ready heap.
      cur_tick_ = (cur_tick_ & ~level_mask(1)) |
                  static_cast<std::uint64_t>(slot);
      ready_tick_ = cur_tick_;
      for (EventNode* n = list.head; n != nullptr;) {
        EventNode* next = n->next;
        ready_.push_back(n);
        n = next;
      }
      std::make_heap(ready_.begin(), ready_.end(), ReadyLater{});
      return true;
    }
    // Cascade: advance the clock to the slot's base tick and redistribute
    // its events one level (or more) down. Each event cascades at most
    // kLevels times over its lifetime, so the fire path stays O(1)
    // amortized.
    cur_tick_ = (cur_tick_ & ~level_mask(level + 1)) |
                (static_cast<std::uint64_t>(slot) << (kSlotBits * level));
    for (EventNode* n = list.head; n != nullptr;) {
      EventNode* next = n->next;
      place(n);
      n = next;
    }
  }
}

EventNode* WheelEventQueue::take_ready() {
  std::pop_heap(ready_.begin(), ready_.end(), ReadyLater{});
  EventNode* n = ready_.back();
  ready_.pop_back();
  --count_;
  return n;
}

EventNode* WheelEventQueue::pop_if_at_or_before(TimeSec limit) {
  if (!prepare_ready()) return nullptr;
  // Tick granularity is coarser than a double timestamp: the earliest
  // event of the earliest tick can still lie beyond `limit`, in which case
  // it stays in the ready heap for a later run_until slice.
  if (ready_.front()->time > limit) return nullptr;
  return take_ready();
}

EventNode* WheelEventQueue::pop_any() {
  if (!prepare_ready()) return nullptr;
  return take_ready();
}

}  // namespace floc
