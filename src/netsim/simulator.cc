#include "netsim/simulator.h"

#include <cassert>

namespace floc {

void Simulator::schedule_at(TimeSec t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

void Simulator::run_until(TimeSec t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the callback handle (std::function copy) then pop.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.cb();
  }
  if (queue_.empty() && now_ < t_end) now_ = t_end;
}

void Simulator::run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.cb();
  }
}

}  // namespace floc
