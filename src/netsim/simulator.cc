#include "netsim/simulator.h"

namespace floc {

void Simulator::schedule_at(TimeSec t, Callback cb) {
  if (t < now_) {
    // In release builds the old assert compiled away and the event ran
    // "before" already-processed time, corrupting causality; clamp instead.
    ++late_;
    t = now_;
  }
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

void Simulator::run_until(TimeSec t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the callback handle (std::function copy) then pop.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.cb();
  }
  if (queue_.empty() && now_ < t_end) now_ = t_end;
}

void Simulator::run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.cb();
  }
}

}  // namespace floc
