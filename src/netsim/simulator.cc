#include "netsim/simulator.h"

#include <chrono>

namespace floc {

void Simulator::schedule_at(TimeSec t, Callback cb) {
  if (t < now_) {
    // In release builds the old assert compiled away and the event ran
    // "before" already-processed time, corrupting causality; clamp instead.
    ++late_;
    t = now_;
  }
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

void Simulator::dispatch(Callback& cb) {
  if (profile_ns_ == nullptr && profile_section_ == nullptr) {
    cb();
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  cb();
  const auto dt = std::chrono::steady_clock::now() - t0;
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
  if (profile_ns_ != nullptr) profile_ns_->observe(static_cast<double>(ns));
  if (profile_section_ != nullptr) profile_section_->record(ns);
}

void Simulator::run_until(TimeSec t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the callback handle (std::function copy) then pop.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    dispatch(ev.cb);
  }
  if (queue_.empty() && now_ < t_end) now_ = t_end;
}

void Simulator::run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    dispatch(ev.cb);
  }
}

void Simulator::register_metrics(telemetry::MetricRegistry& reg,
                                 const std::string& prefix) const {
  reg.gauge_fn(prefix + ".events_processed",
               [this] { return static_cast<double>(events_processed()); });
  reg.gauge_fn(prefix + ".late_events",
               [this] { return static_cast<double>(late_events()); });
  reg.gauge_fn(prefix + ".pending_events",
               [this] { return static_cast<double>(pending_events()); });
}

}  // namespace floc
