#include "netsim/simulator.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace floc {

namespace {

// 0 = unset (consult FLOC_SIM_ENGINE / fall back to kWheel), else 1 + enum.
std::atomic<int> g_default_engine{0};

SimEngine engine_from_env() {
  const char* v = std::getenv("FLOC_SIM_ENGINE");
  if (v != nullptr && std::strcmp(v, "heap") == 0) return SimEngine::kHeap;
  return SimEngine::kWheel;
}

}  // namespace

const char* to_string(SimEngine e) {
  switch (e) {
    case SimEngine::kHeap:
      return "heap";
    case SimEngine::kWheel:
      return "wheel";
  }
  return "?";
}

SimEngine Simulator::default_engine() {
  const int v = g_default_engine.load(std::memory_order_relaxed);
  if (v != 0) return static_cast<SimEngine>(v - 1);
  return engine_from_env();
}

void Simulator::set_default_engine(SimEngine engine) {
  g_default_engine.store(1 + static_cast<int>(engine),
                         std::memory_order_relaxed);
}

Simulator::Simulator(SimEngine engine) : engine_kind_(engine) {
  if (engine == SimEngine::kHeap) {
    queue_ = std::make_unique<HeapEventQueue>();
  } else {
    queue_ = std::make_unique<WheelEventQueue>();
  }
}

Simulator::TimerHandle Simulator::schedule_node(TimeSec t, EventNode* n) {
  if (t < now_) {
    // In release builds the old assert compiled away and the event ran
    // "before" already-processed time, corrupting causality; clamp instead.
    ++late_;
    t = now_;
  }
  n->tick = WheelEventQueue::tick_of(t);
  n->time = t;
  n->seq = next_seq_++;
  n->cancelled = false;
  ++live_;
  queue_->push(n);
  return TimerHandle{n, n->gen};
}

bool Simulator::cancel(TimerHandle h) {
  if (h.node == nullptr || h.node->gen != h.gen || h.node->cancelled) {
    return false;
  }
  // Flag only: the node stays queued and is discarded when popped, so the
  // surviving events' relative order is untouched in both engines.
  h.node->cancelled = true;
  ++cancelled_;
  --live_;
  return true;
}

void Simulator::release_node(EventNode* n) {
  n->cb.reset();
  ++n->gen;  // invalidate any TimerHandle still pointing here
  arena_.release(n);
}

void Simulator::dispatch(Callback& cb) {
  if (profile_ns_ == nullptr && profile_section_ == nullptr) {
    cb();
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  cb();
  const auto dt = std::chrono::steady_clock::now() - t0;
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
  if (profile_ns_ != nullptr) profile_ns_->observe(static_cast<double>(ns));
  if (profile_section_ != nullptr) profile_section_->record(ns);
}

void Simulator::run_until(TimeSec t_end) {
  while (EventNode* n = queue_->pop_if_at_or_before(t_end)) {
    if (n->cancelled) {
      // Cancelled events neither advance the clock nor count as processed.
      release_node(n);
      continue;
    }
    now_ = n->time;
    --live_;
    ++processed_;
    // Move the callback out and recycle the node BEFORE dispatching: the
    // callback may schedule (acquiring nodes) reentrantly, and this keeps
    // steady-state arena occupancy at exactly the pending-event count.
    Callback cb = std::move(n->cb);
    release_node(n);
    dispatch(cb);
  }
  if (live_ == 0 && now_ < t_end) now_ = t_end;
}

void Simulator::run() {
  while (EventNode* n = queue_->pop_any()) {
    if (n->cancelled) {
      release_node(n);
      continue;
    }
    now_ = n->time;
    --live_;
    ++processed_;
    Callback cb = std::move(n->cb);
    release_node(n);
    dispatch(cb);
  }
}

void Simulator::register_metrics(telemetry::MetricRegistry& reg,
                                 const std::string& prefix) const {
  reg.gauge_fn(prefix + ".events_processed",
               [this] { return static_cast<double>(events_processed()); });
  reg.gauge_fn(prefix + ".late_events",
               [this] { return static_cast<double>(late_events()); });
  reg.gauge_fn(prefix + ".cancelled_events",
               [this] { return static_cast<double>(cancelled_events()); });
  reg.gauge_fn(prefix + ".pending_events",
               [this] { return static_cast<double>(pending_events()); });
}

}  // namespace floc
