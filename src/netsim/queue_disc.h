// Queue-discipline interface: the pluggable policy at a link's egress port.
//
// FLoc, RED, RED-PD, Pushback and drop-tail all implement this interface, so
// an experiment swaps defense schemes by swapping the queue attached to the
// flooded link.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "netsim/packet.h"
#include "util/units.h"

namespace floc {

namespace json {
class JsonWriter;
}
namespace telemetry {
class MetricRegistry;
class Tracer;
}

// Reasons a queue discipline may drop a packet; recorded for diagnostics.
enum class DropReason : std::uint8_t {
  kQueueFull,       // buffer exhausted
  kToken,           // token-bucket admission failure (FLoc)
  kPreferential,    // identified attack flow penalized (FLoc / RED-PD)
  kRandomEarly,     // probabilistic early drop (RED / FLoc congested mode)
  kRateLimit,       // aggregate rate limiter (Pushback)
  kCapability,      // invalid / over-limit capability (FLoc covert defense)
  kBlacklist,       // sender on the FLoc offender blacklist (hardening)
  kOverload,        // non-capability data shed in FLoc overload mode
};
inline constexpr std::size_t kDropReasonCount = 8;

const char* to_string(DropReason r);
// Inverse of to_string; returns false (and leaves *out alone) for unknown
// names. Round-tripped exhaustively in tests.
bool from_string(const std::string& name, DropReason* out);

class QueueDisc {
 public:
  using DropHandler = std::function<void(const Packet&, DropReason, TimeSec)>;

  virtual ~QueueDisc() = default;

  // Offer a packet at time `now`; returns true if buffered, false if dropped.
  // Implementations must invoke the drop handler (if set) on every drop.
  virtual bool enqueue(Packet&& p, TimeSec now) = 0;

  // Next packet to transmit, or nullopt if empty.
  virtual std::optional<Packet> dequeue(TimeSec now) = 0;

  virtual bool empty() const = 0;
  virtual std::size_t packet_count() const = 0;
  virtual std::size_t byte_count() const = 0;

  // Self-check of internal invariants (byte accounting, token bounds, ...)
  // for the SimMonitor (src/faultsim). Returns false and fills `why` on a
  // violation; the default has nothing to check.
  virtual bool audit(TimeSec now, std::string* why) const {
    (void)now;
    (void)why;
    return true;
  }

  // Publish the discipline's state as polled gauges under `prefix`
  // ("<prefix>.packets", ".bytes", ".drops", ".admissions"); overrides add
  // scheme-specific gauges on top. Registration-time only — nothing on the
  // packet path.
  virtual void register_metrics(telemetry::MetricRegistry& reg,
                                const std::string& prefix) const;

  // Dump the discipline's full decision state as one JSON object into `w`,
  // for incident bundles (src/telemetry/flight_recorder). `now` lets
  // time-dependent state (token levels, blacklist sentences) be rendered at
  // the capture instant without mutating anything. The base emits the
  // counters every scheme shares; overrides must emit a complete picture of
  // their verdict state. Capture-time only — never on the packet path — and
  // must iterate internal maps in sorted key order so bundles stay
  // byte-identical across --jobs (see docs/INTERNALS.md).
  virtual void snapshot_state(json::JsonWriter& w, TimeSec now) const;

  void set_drop_handler(DropHandler h) { drop_handler_ = std::move(h); }

  // Attach causal span tracing. A traced drop (any scheme, any reason)
  // terminates the packet's queue span with the DropReason — this base-class
  // hook is the only tracing touchpoint the baseline disciplines need.
  // Virtual so decorators can propagate the tracer to their inner queue.
  virtual void set_tracer(telemetry::Tracer* tracer) { tracer_ = tracer; }

  std::uint64_t drops() const { return drops_; }
  std::uint64_t admissions() const { return admissions_; }

 protected:
  void note_drop(const Packet& p, DropReason r, TimeSec now) {
    ++drops_;
    if (tracer_ != nullptr && p.span.active()) trace_drop(p, r, now);
    if (drop_handler_) drop_handler_(p, r, now);
  }
  void note_admit() { ++admissions_; }

  telemetry::Tracer* tracer() const { return tracer_; }

 private:
  void trace_drop(const Packet& p, DropReason r, TimeSec now);  // out-of-line

  DropHandler drop_handler_;
  telemetry::Tracer* tracer_ = nullptr;
  std::uint64_t drops_ = 0;
  std::uint64_t admissions_ = 0;
};

}  // namespace floc
