#include "netsim/packet.h"

#include <cassert>

#include "util/siphash.h"

namespace floc {

void PathId::push_origin(AsNumber as) {
  assert(len_ < kMaxHops);
  hops_[static_cast<std::size_t>(len_++)] = as;
}

void PathId::truncate_to(int new_len) {
  assert(new_len >= 0 && new_len <= len_);
  len_ = new_len;
}

bool PathId::has_prefix(const PathId& other) const {
  if (other.len_ > len_) return false;
  for (int i = 0; i < other.len_; ++i) {
    if (hops_[static_cast<std::size_t>(i)] != other.hops_[static_cast<std::size_t>(i)])
      return false;
  }
  return true;
}

bool PathId::operator==(const PathId& o) const {
  if (len_ != o.len_) return false;
  for (int i = 0; i < len_; ++i) {
    if (hops_[static_cast<std::size_t>(i)] != o.hops_[static_cast<std::size_t>(i)])
      return false;
  }
  return true;
}

std::uint64_t PathId::key() const {
  static constexpr SipKey kKey{0x464c6f63, 0x50617468};  // fixed, non-secret
  std::array<std::uint64_t, kMaxHops> words{};
  for (int i = 0; i < len_; ++i)
    words[static_cast<std::size_t>(i)] = hops_[static_cast<std::size_t>(i)];
  return siphash24_words(
      kKey, std::span<const std::uint64_t>(words.data(), static_cast<std::size_t>(len_)));
}

std::string PathId::to_string() const {
  std::string out = "{";
  for (int i = 0; i < len_; ++i) {
    if (i) out += ",";
    out += std::to_string(hops_[static_cast<std::size_t>(i)]);
  }
  out += "}";
  return out;
}

PathId PathId::of(std::initializer_list<AsNumber> as) {
  PathId p;
  for (AsNumber a : as) p.push_origin(a);
  return p;
}

const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::kSyn: return "SYN";
    case PacketType::kSynAck: return "SYN-ACK";
    case PacketType::kData: return "DATA";
    case PacketType::kAck: return "ACK";
  }
  return "?";
}

}  // namespace floc
