// ns-2-style packet event tracing.
//
// TraceRecorder collects per-packet events (enqueue / dequeue / drop) with
// timestamps; TracedQueue is a QueueDisc decorator that feeds it from any
// inner queue discipline, so any experiment can capture a packet-level trace
// of the flooded link without touching the queue implementations:
//
//   auto traced = std::make_unique<TracedQueue>(
//       std::make_unique<FlocQueue>(cfg), &recorder);
//   link->set_queue(std::move(traced));
//
// Traces are bounded (ring buffer) and filterable; dump() emits the classic
// one-event-per-line text format.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "netsim/queue_disc.h"

namespace floc {

enum class TraceEvent : std::uint8_t { kEnqueue, kDequeue, kDrop };
inline constexpr std::size_t kTraceEventCount = 3;

const char* to_string(TraceEvent ev);
// Inverse of to_string; returns false (and leaves *out alone) for unknown
// names. Round-tripped exhaustively in tests.
bool from_string(const std::string& name, TraceEvent* out);

struct TraceRecord {
  TimeSec time = 0.0;
  TraceEvent event = TraceEvent::kEnqueue;
  FlowId flow = 0;
  std::uint64_t path_key = 0;
  PacketType type = PacketType::kData;
  int size_bytes = 0;
  DropReason reason = DropReason::kQueueFull;  // meaningful for kDrop only
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t max_records = 1 << 20)
      : max_records_(max_records) {}

  void record(TraceRecord r);

  // Optional filter: only events satisfying the predicate are stored
  // (counts still cover everything).
  using Filter = std::function<bool(const TraceRecord&)>;
  void set_filter(Filter f) { filter_ = std::move(f); }

  const std::deque<TraceRecord>& records() const { return records_; }
  std::uint64_t count(TraceEvent ev) const {
    return counts_[static_cast<std::size_t>(ev)];
  }
  std::uint64_t total() const {
    return counts_[0] + counts_[1] + counts_[2];
  }
  // Aggregate drop count per reason. Counted on every record() call — before
  // filtering and unaffected by ring-buffer eviction — so drop-cause
  // breakdowns never require replaying `records()` (which under-counts once
  // old records are evicted).
  std::uint64_t drops_by_reason(DropReason r) const {
    return drop_reasons_[static_cast<std::size_t>(r)];
  }
  bool overflowed() const { return overflowed_; }
  void clear();

  // One line per event: "<time> <+|-|d> flow=<id> <TYPE> <bytes> [reason]",
  // followed by a "# drops by reason:" summary footer when drops occurred.
  std::string dump() const;
  static std::string format(const TraceRecord& r);

 private:
  std::size_t max_records_;
  std::deque<TraceRecord> records_;
  std::uint64_t counts_[3] = {};
  std::uint64_t drop_reasons_[kDropReasonCount] = {};
  bool overflowed_ = false;
  Filter filter_;
};

// Decorator: forwards everything to the inner queue and records the events.
class TracedQueue : public QueueDisc {
 public:
  TracedQueue(std::unique_ptr<QueueDisc> inner, TraceRecorder* recorder);

  bool enqueue(Packet&& p, TimeSec now) override;
  std::optional<Packet> dequeue(TimeSec now) override;
  bool empty() const override { return inner_->empty(); }
  std::size_t packet_count() const override { return inner_->packet_count(); }
  std::size_t byte_count() const override { return inner_->byte_count(); }

  // The decorator is transparent to observability: metrics, invariant audits
  // and causal tracing all reach the inner discipline.
  void register_metrics(telemetry::MetricRegistry& reg,
                        const std::string& prefix) const override {
    inner_->register_metrics(reg, prefix);
  }
  bool audit(TimeSec now, std::string* why) const override {
    return inner_->audit(now, why);
  }
  void snapshot_state(json::JsonWriter& w, TimeSec now) const override {
    inner_->snapshot_state(w, now);
  }
  void set_tracer(telemetry::Tracer* tracer) override {
    QueueDisc::set_tracer(tracer);
    inner_->set_tracer(tracer);
  }

  QueueDisc& inner() { return *inner_; }

 private:
  std::unique_ptr<QueueDisc> inner_;
  TraceRecorder* recorder_;
};

}  // namespace floc
