#include "netsim/trace.h"

#include <cstdio>

namespace floc {

const char* to_string(TraceEvent ev) {
  switch (ev) {
    case TraceEvent::kEnqueue: return "+";
    case TraceEvent::kDequeue: return "-";
    case TraceEvent::kDrop: return "d";
  }
  return "?";
}

bool from_string(const std::string& name, TraceEvent* out) {
  for (std::size_t i = 0; i < kTraceEventCount; ++i) {
    const TraceEvent ev = static_cast<TraceEvent>(i);
    if (name == to_string(ev)) {
      *out = ev;
      return true;
    }
  }
  return false;
}

void TraceRecorder::record(TraceRecord r) {
  counts_[static_cast<std::size_t>(r.event)]++;
  if (r.event == TraceEvent::kDrop) {
    drop_reasons_[static_cast<std::size_t>(r.reason)]++;
  }
  if (filter_ && !filter_(r)) return;
  if (records_.size() >= max_records_) {
    records_.pop_front();
    overflowed_ = true;
  }
  records_.push_back(r);
}

void TraceRecorder::clear() {
  records_.clear();
  counts_[0] = counts_[1] = counts_[2] = 0;
  for (std::uint64_t& c : drop_reasons_) c = 0;
  overflowed_ = false;
}

std::string TraceRecorder::format(const TraceRecord& r) {
  char buf[128];
  if (r.event == TraceEvent::kDrop) {
    std::snprintf(buf, sizeof(buf), "%.6f %s flow=%llu %s %d %s", r.time,
                  to_string(r.event), static_cast<unsigned long long>(r.flow),
                  to_string(r.type), r.size_bytes, to_string(r.reason));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6f %s flow=%llu %s %d", r.time,
                  to_string(r.event), static_cast<unsigned long long>(r.flow),
                  to_string(r.type), r.size_bytes);
  }
  return buf;
}

std::string TraceRecorder::dump() const {
  std::string out;
  out.reserve(records_.size() * 48);
  for (const auto& r : records_) {
    out += format(r);
    out += '\n';
  }
  if (count(TraceEvent::kDrop) > 0) {
    out += "# drops by reason:";
    for (std::size_t i = 0; i < kDropReasonCount; ++i) {
      if (drop_reasons_[i] == 0) continue;
      char buf[48];
      std::snprintf(buf, sizeof(buf), " %s=%llu",
                    to_string(static_cast<DropReason>(i)),
                    static_cast<unsigned long long>(drop_reasons_[i]));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

TracedQueue::TracedQueue(std::unique_ptr<QueueDisc> inner,
                         TraceRecorder* recorder)
    : inner_(std::move(inner)), recorder_(recorder) {
  // Drops happen inside the inner queue; intercept via its drop handler.
  inner_->set_drop_handler([this](const Packet& p, DropReason reason,
                                  TimeSec now) {
    recorder_->record(TraceRecord{now, TraceEvent::kDrop, p.flow, p.path.key(),
                                  p.type, p.size_bytes, reason});
    note_drop(p, reason, now);
  });
}

bool TracedQueue::enqueue(Packet&& p, TimeSec now) {
  const TraceRecord r{now,    TraceEvent::kEnqueue, p.flow, p.path.key(),
                      p.type, p.size_bytes,         DropReason::kQueueFull};
  const bool ok = inner_->enqueue(std::move(p), now);
  if (ok) {
    recorder_->record(r);
    note_admit();
  }
  return ok;
}

std::optional<Packet> TracedQueue::dequeue(TimeSec now) {
  auto p = inner_->dequeue(now);
  if (p.has_value()) {
    recorder_->record(TraceRecord{now, TraceEvent::kDequeue, p->flow,
                                  p->path.key(), p->type, p->size_bytes,
                                  DropReason::kQueueFull});
  }
  return p;
}

}  // namespace floc
