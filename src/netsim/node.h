// Nodes: routers forward by destination, hosts deliver to transport agents.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "netsim/packet.h"

namespace floc {

class Network;
class Link;

// A transport endpoint attached to a host (TCP source, sink, CBR source...).
class Agent {
 public:
  virtual ~Agent() = default;
  virtual void on_packet(Packet&& p) = 0;
};

class Node {
 public:
  Node(Network* net, int id, std::string name)
      : net_(net), id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  virtual void receive(Packet&& p) = 0;

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  Network* network() const { return net_; }

 protected:
  Network* net_;

 private:
  int id_;
  std::string name_;
};

class Router : public Node {
 public:
  Router(Network* net, int id, std::string name, AsNumber as)
      : Node(net, id, std::move(name)), as_(as) {}

  void receive(Packet&& p) override;

  AsNumber as_number() const { return as_; }
  std::uint64_t unroutable() const { return unroutable_; }

 private:
  AsNumber as_;
  std::uint64_t unroutable_ = 0;
};

class Host : public Node {
 public:
  Host(Network* net, int id, std::string name, HostAddr addr, AsNumber as)
      : Node(net, id, std::move(name)), addr_(addr), as_(as) {}

  void receive(Packet&& p) override;

  // A host forwards received packets to the agent registered for the flow,
  // or to the default agent (servers accept flows they have not seen).
  void register_agent(FlowId flow, Agent* a) { agents_[flow] = a; }
  void set_default_agent(Agent* a) { default_agent_ = a; }

  HostAddr addr() const { return addr_; }
  AsNumber as_number() const { return as_; }
  std::uint64_t undeliverable() const { return undeliverable_; }

 private:
  HostAddr addr_;
  AsNumber as_;
  std::unordered_map<FlowId, Agent*> agents_;
  Agent* default_agent_ = nullptr;
  std::uint64_t undeliverable_ = 0;
};

}  // namespace floc
