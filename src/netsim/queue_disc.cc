#include "netsim/queue_disc.h"

namespace floc {

const char* to_string(DropReason r) {
  switch (r) {
    case DropReason::kQueueFull: return "queue-full";
    case DropReason::kToken: return "token";
    case DropReason::kPreferential: return "preferential";
    case DropReason::kRandomEarly: return "random-early";
    case DropReason::kRateLimit: return "rate-limit";
    case DropReason::kCapability: return "capability";
  }
  return "?";
}

}  // namespace floc
