#include "netsim/queue_disc.h"

#include "telemetry/metrics.h"

namespace floc {

void QueueDisc::register_metrics(telemetry::MetricRegistry& reg,
                                 const std::string& prefix) const {
  reg.gauge_fn(prefix + ".packets",
               [this] { return static_cast<double>(packet_count()); });
  reg.gauge_fn(prefix + ".bytes",
               [this] { return static_cast<double>(byte_count()); });
  reg.gauge_fn(prefix + ".drops",
               [this] { return static_cast<double>(drops()); });
  reg.gauge_fn(prefix + ".admissions",
               [this] { return static_cast<double>(admissions()); });
}

const char* to_string(DropReason r) {
  switch (r) {
    case DropReason::kQueueFull: return "queue-full";
    case DropReason::kToken: return "token";
    case DropReason::kPreferential: return "preferential";
    case DropReason::kRandomEarly: return "random-early";
    case DropReason::kRateLimit: return "rate-limit";
    case DropReason::kCapability: return "capability";
  }
  return "?";
}

}  // namespace floc
