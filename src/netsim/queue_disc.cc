#include "netsim/queue_disc.h"

#include "telemetry/metrics.h"
#include "telemetry/tracing.h"
#include "util/json.h"

namespace floc {

void QueueDisc::trace_drop(const Packet& p, DropReason r, TimeSec now) {
  // Status 0 means "completed normally", so shift the ordinal by one.
  tracer_->end_dropped(p.span.span, now,
                       static_cast<std::uint32_t>(r) + 1, to_string(r));
}

void QueueDisc::register_metrics(telemetry::MetricRegistry& reg,
                                 const std::string& prefix) const {
  reg.gauge_fn(prefix + ".packets",
               [this] { return static_cast<double>(packet_count()); });
  reg.gauge_fn(prefix + ".bytes",
               [this] { return static_cast<double>(byte_count()); });
  reg.gauge_fn(prefix + ".drops",
               [this] { return static_cast<double>(drops()); });
  reg.gauge_fn(prefix + ".admissions",
               [this] { return static_cast<double>(admissions()); });
}

void QueueDisc::snapshot_state(json::JsonWriter& w, TimeSec now) const {
  (void)now;
  w.begin_object();
  w.field("packets", static_cast<std::uint64_t>(packet_count()));
  w.field("bytes", static_cast<std::uint64_t>(byte_count()));
  w.field("drops", drops());
  w.field("admissions", admissions());
  w.end_object();
}

const char* to_string(DropReason r) {
  switch (r) {
    case DropReason::kQueueFull: return "queue-full";
    case DropReason::kToken: return "token";
    case DropReason::kPreferential: return "preferential";
    case DropReason::kRandomEarly: return "random-early";
    case DropReason::kRateLimit: return "rate-limit";
    case DropReason::kCapability: return "capability";
    case DropReason::kBlacklist: return "blacklist";
    case DropReason::kOverload: return "overload";
  }
  return "?";
}

bool from_string(const std::string& name, DropReason* out) {
  for (std::size_t i = 0; i < kDropReasonCount; ++i) {
    const DropReason r = static_cast<DropReason>(i);
    if (name == to_string(r)) {
      *out = r;
      return true;
    }
  }
  return false;
}

}  // namespace floc
