// Plain FIFO drop-tail queue with a packet-count capacity.
#pragma once

#include <deque>

#include "netsim/queue_disc.h"

namespace floc {

class DropTailQueue : public QueueDisc {
 public:
  explicit DropTailQueue(std::size_t capacity_packets)
      : capacity_(capacity_packets) {}

  bool enqueue(Packet&& p, TimeSec now) override;
  std::optional<Packet> dequeue(TimeSec now) override;
  bool empty() const override { return q_.empty(); }
  std::size_t packet_count() const override { return q_.size(); }
  std::size_t byte_count() const override { return bytes_; }

 private:
  std::size_t capacity_;
  std::size_t bytes_ = 0;
  std::deque<Packet> q_;
};

}  // namespace floc
