#include "netsim/node.h"

#include "netsim/link.h"
#include "netsim/network.h"

namespace floc {

void Router::receive(Packet&& p) {
  Link* next = net_->next_hop(id(), p.dst);
  if (next == nullptr) {
    ++unroutable_;
    return;
  }
  next->send(std::move(p));
}

void Host::receive(Packet&& p) {
  auto it = agents_.find(p.flow);
  Agent* a = (it != agents_.end()) ? it->second : default_agent_;
  if (a == nullptr) {
    ++undeliverable_;
    return;
  }
  a->on_packet(std::move(p));
}

}  // namespace floc
