// RED — Random Early Detection (Floyd & Jacobson, 1993).
//
// Baseline active-queue-management scheme: drop probability grows with the
// exponentially averaged queue length between min_th and max_th. Used (a) as
// the fair no-attack reference of Fig. 7(c) and (b) as the substrate of
// RED-PD.
#pragma once

#include <deque>

#include "netsim/queue_disc.h"
#include "util/rng.h"

namespace floc {

struct RedConfig {
  std::size_t buffer_packets = 1000;
  double min_th = 200.0;   // packets
  double max_th = 600.0;   // packets
  double weight = 0.002;   // EWMA weight w_q
  double max_p = 0.1;      // drop probability at max_th
  bool gentle = true;      // linear ramp to 1.0 between max_th and 2*max_th
  int mean_pkt_bytes = 1500;
  BitsPerSec link_bandwidth = mbps(500);  // for idle-time avg decay
  std::uint64_t rng_seed = 7;
};

// The RED computation, reusable by RED-PD without inheriting queue storage.
class RedCore {
 public:
  explicit RedCore(const RedConfig& cfg) : cfg_(cfg), rng_(cfg.rng_seed) {}

  // Decide whether the arriving packet should be early-dropped given the
  // instantaneous queue length (packets).
  bool should_drop(std::size_t q_len, TimeSec now);

  // Track transitions to the empty queue for idle decay.
  void on_queue_empty(TimeSec now) { idle_since_ = now; }

  double avg() const { return avg_; }

 private:
  RedConfig cfg_;
  Rng rng_;
  double avg_ = 0.0;
  int count_ = -1;       // packets since last early drop
  TimeSec idle_since_ = -1.0;
};

class RedQueue : public QueueDisc {
 public:
  explicit RedQueue(RedConfig cfg) : cfg_(cfg), core_(cfg) {}

  bool enqueue(Packet&& p, TimeSec now) override;
  std::optional<Packet> dequeue(TimeSec now) override;
  bool empty() const override { return q_.empty(); }
  std::size_t packet_count() const override { return q_.size(); }
  std::size_t byte_count() const override { return bytes_; }

  double avg_queue() const { return core_.avg(); }

  // Generic queue gauges plus "<prefix>.avg" (the RED EWMA queue estimate).
  void register_metrics(telemetry::MetricRegistry& reg,
                        const std::string& prefix) const override;

  // Minimal incident dump: base counters plus the EWMA estimate and
  // thresholds that drive the drop probability.
  void snapshot_state(json::JsonWriter& w, TimeSec now) const override;

 private:
  RedConfig cfg_;
  RedCore core_;
  std::deque<Packet> q_;
  std::size_t bytes_ = 0;
};

}  // namespace floc
