// Upstream rate-limiter queue for Pushback propagation: a drop-tail FIFO
// with dynamically installable per-path-prefix rate limits (token buckets).
// A congested downstream router "pushes back" an aggregate limit; this queue
// then sheds the aggregate's excess one hop earlier, freeing the downstream
// buffer for other traffic.
#pragma once

#include <deque>
#include <unordered_map>

#include "netsim/queue_disc.h"
#include "util/units.h"

namespace floc {

class RateLimiterQueue : public QueueDisc {
 public:
  explicit RateLimiterQueue(std::size_t capacity_packets)
      : capacity_(capacity_packets) {}

  bool enqueue(Packet&& p, TimeSec now) override;
  std::optional<Packet> dequeue(TimeSec now) override;
  bool empty() const override { return q_.empty(); }
  std::size_t packet_count() const override { return q_.size(); }
  std::size_t byte_count() const override { return bytes_; }

  // Install (or refresh) a limit for packets whose path starts with `prefix`.
  // The limit expires at `expires` (refreshed by subsequent pushback
  // messages while congestion persists).
  void install_limit(const PathId& prefix, BitsPerSec rate, TimeSec expires);
  void release_limit(const PathId& prefix);
  std::size_t active_limits() const { return limits_.size(); }

  // Pushback status feedback: bytes shed for `prefix` since the last call
  // (returns and resets the counter). The congested router adds this to its
  // locally observed arrivals to recover the aggregate's true offered rate.
  double take_shed_bytes(const PathId& prefix);

  // Minimal incident dump: base counters plus the installed prefix limits
  // (sorted by prefix key).
  void snapshot_state(json::JsonWriter& w, TimeSec now) const override;

 private:
  struct Limit {
    PathId prefix;
    double rate_bps;
    double tokens_bytes;
    TimeSec last_refill;
    TimeSec expires;
    double shed_bytes = 0.0;  // dropped since last status report
  };

  std::size_t capacity_;
  std::size_t bytes_ = 0;
  std::deque<Packet> q_;
  std::unordered_map<std::uint64_t, Limit> limits_;  // by prefix key
};

}  // namespace floc
