#include "baselines/priority_fair.h"

#include <algorithm>
#include <vector>

#include "util/json.h"

namespace floc {

PriorityFairQueue::PriorityFairQueue(PriorityFairConfig cfg,
                                     LegitClassifier is_legit)
    : cfg_(cfg), is_legit_(std::move(is_legit)) {}

void PriorityFairQueue::roll_interval(TimeSec now) {
  if (interval_end_ == 0.0) {
    interval_end_ = now + cfg_.rate_interval;
    return;
  }
  if (now < interval_end_) return;
  interval_end_ = now + cfg_.rate_interval;
  flows_seen_ = std::max<std::size_t>(1, bytes_this_interval_.size());
  bytes_this_interval_.clear();
}

bool PriorityFairQueue::enqueue(Packet&& p, TimeSec now) {
  roll_interval(now);

  bool high_priority = true;
  if (p.type == PacketType::kData) {
    double& used = bytes_this_interval_[p.flow];
    used += p.size_bytes;
    if (!is_legit_(p.flow)) {
      // Attack flows keep high priority only within their fair share.
      const double fair_bytes = cfg_.link_bandwidth * cfg_.rate_interval /
                                (kBitsPerByte * static_cast<double>(flows_seen_));
      if (used > fair_bytes) high_priority = false;
    }
  }

  if (high_.size() + low_.size() >= cfg_.buffer_packets) {
    // Make room for a high-priority packet by shedding low-priority load.
    if (high_priority && !low_.empty()) {
      bytes_ -= static_cast<std::size_t>(low_.back().size_bytes);
      note_drop(low_.back(), DropReason::kQueueFull, now);
      low_.pop_back();
    } else {
      note_drop(p, DropReason::kQueueFull, now);
      return false;
    }
  }
  bytes_ += static_cast<std::size_t>(p.size_bytes);
  (high_priority ? high_ : low_).push_back(std::move(p));
  note_admit();
  return true;
}

std::optional<Packet> PriorityFairQueue::dequeue(TimeSec) {
  std::deque<Packet>* src = !high_.empty() ? &high_ : (!low_.empty() ? &low_ : nullptr);
  if (src == nullptr) return std::nullopt;
  Packet p = std::move(src->front());
  src->pop_front();
  bytes_ -= static_cast<std::size_t>(p.size_bytes);
  return p;
}

void PriorityFairQueue::snapshot_state(json::JsonWriter& w, TimeSec now) const {
  (void)now;
  w.begin_object();
  w.field("scheme", "priority-fair");
  w.field("packets", static_cast<std::uint64_t>(packet_count()));
  w.field("bytes", static_cast<std::uint64_t>(byte_count()));
  w.field("drops", drops());
  w.field("admissions", admissions());
  w.field("high_backlog", static_cast<std::uint64_t>(high_.size()));
  w.field("low_backlog", static_cast<std::uint64_t>(low_.size()));
  w.field("flows_seen", static_cast<std::uint64_t>(flows_seen_));
  w.end_object();
}

}  // namespace floc
