// Per-flow fairness by two priority classes (Section VII-C baseline "FF").
//
// The Internet-scale comparison marks legitimate packets high-priority and
// attack packets high-priority only up to their fair share; high-priority
// packets are serviced first and low-priority ones use leftover capacity.
// This queue is the event-driven-simulator counterpart: a strict two-level
// priority queue where a per-flow fair-rate meter demotes out-of-profile
// packets of flows marked "attack capable" to low priority.
//
// It is deliberately an *oracle* baseline: it knows which flows are
// legitimate (via the classifier callback) — the strongest per-flow-fairness
// scheme possible — and still fails against covert attacks, which is the
// paper's point.
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>

#include "netsim/queue_disc.h"
#include "util/units.h"

namespace floc {

struct PriorityFairConfig {
  std::size_t buffer_packets = 1000;
  BitsPerSec link_bandwidth = mbps(500);
  TimeSec rate_interval = 0.5;  // fair-share accounting window
};

class PriorityFairQueue : public QueueDisc {
 public:
  using LegitClassifier = std::function<bool(FlowId)>;

  PriorityFairQueue(PriorityFairConfig cfg, LegitClassifier is_legit);

  bool enqueue(Packet&& p, TimeSec now) override;
  std::optional<Packet> dequeue(TimeSec now) override;
  bool empty() const override { return high_.empty() && low_.empty(); }
  std::size_t packet_count() const override { return high_.size() + low_.size(); }
  std::size_t byte_count() const override { return bytes_; }

  // Minimal incident dump: base counters plus the two priority backlogs and
  // the fair-share denominator.
  void snapshot_state(json::JsonWriter& w, TimeSec now) const override;

 private:
  void roll_interval(TimeSec now);

  PriorityFairConfig cfg_;
  LegitClassifier is_legit_;
  std::deque<Packet> high_;
  std::deque<Packet> low_;
  std::size_t bytes_ = 0;

  TimeSec interval_end_ = 0.0;
  std::unordered_map<FlowId, double> bytes_this_interval_;
  std::size_t flows_seen_ = 1;
};

}  // namespace floc
