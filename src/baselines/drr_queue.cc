#include "baselines/drr_queue.h"

#include <algorithm>
#include <vector>

#include "telemetry/metrics.h"
#include "util/json.h"

namespace floc {

bool DrrQueue::enqueue(Packet&& p, TimeSec now) {
  if (total_packets_ >= cfg_.buffer_packets) {
    note_drop(p, DropReason::kQueueFull, now);
    return false;
  }
  FlowQueue& fq = flows_[p.flow];
  if (fq.q.size() >= cfg_.max_flow_queue) {
    note_drop(p, DropReason::kQueueFull, now);
    return false;
  }
  if (!fq.in_round) {
    fq.in_round = true;
    fq.deficit = 0;
    round_.push_back(p.flow);
  }
  total_bytes_ += static_cast<std::size_t>(p.size_bytes);
  ++total_packets_;
  fq.q.push_back(std::move(p));
  note_admit();
  return true;
}

std::optional<Packet> DrrQueue::dequeue(TimeSec) {
  // Round-robin over active flows; a flow whose deficit cannot cover its
  // head packet is topped up by one quantum and moved to the back. The guard
  // bounds the scan: a packet needs at most ceil(size/quantum) top-ups.
  std::size_t guard =
      (round_.size() + 1) *
      (static_cast<std::size_t>(1500 / std::max(1, cfg_.quantum_bytes)) + 2);
  while (!round_.empty() && guard-- > 0) {
    const FlowId f = round_.front();
    FlowQueue& fq = flows_[f];
    if (fq.q.empty()) {
      fq.in_round = false;
      round_.pop_front();
      flows_.erase(f);
      continue;
    }
    if (fq.deficit < fq.q.front().size_bytes) {
      fq.deficit += cfg_.quantum_bytes;
      round_.splice(round_.end(), round_, round_.begin());
      continue;
    }
    Packet p = std::move(fq.q.front());
    fq.q.pop_front();
    fq.deficit -= p.size_bytes;
    total_bytes_ -= static_cast<std::size_t>(p.size_bytes);
    --total_packets_;
    if (fq.q.empty()) {
      fq.in_round = false;
      round_.pop_front();
      flows_.erase(f);
    }
    return p;
  }
  return std::nullopt;
}

void DrrQueue::register_metrics(telemetry::MetricRegistry& reg,
                                const std::string& prefix) const {
  QueueDisc::register_metrics(reg, prefix);
  reg.gauge_fn(prefix + ".active_flows",
               [this] { return static_cast<double>(active_flows()); });
}

void DrrQueue::snapshot_state(json::JsonWriter& w, TimeSec now) const {
  (void)now;
  w.begin_object();
  w.field("scheme", "drr");
  w.field("packets", static_cast<std::uint64_t>(packet_count()));
  w.field("bytes", static_cast<std::uint64_t>(byte_count()));
  w.field("drops", drops());
  w.field("admissions", admissions());
  w.field("quantum_bytes", static_cast<std::int64_t>(cfg_.quantum_bytes));
  std::vector<FlowId> ids;
  ids.reserve(flows_.size());
  for (const auto& [f, fq] : flows_) ids.push_back(f);
  std::sort(ids.begin(), ids.end());
  w.key("flows").begin_array();
  for (const FlowId f : ids) {
    const FlowQueue& fq = flows_.at(f);
    w.begin_object();
    w.field("flow", f);
    w.field("backlog_packets", static_cast<std::uint64_t>(fq.q.size()));
    w.field("deficit", static_cast<std::int64_t>(fq.deficit));
    w.field("in_round", fq.in_round);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace floc
