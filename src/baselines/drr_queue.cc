#include "baselines/drr_queue.h"

#include "telemetry/metrics.h"

namespace floc {

bool DrrQueue::enqueue(Packet&& p, TimeSec now) {
  if (total_packets_ >= cfg_.buffer_packets) {
    note_drop(p, DropReason::kQueueFull, now);
    return false;
  }
  FlowQueue& fq = flows_[p.flow];
  if (fq.q.size() >= cfg_.max_flow_queue) {
    note_drop(p, DropReason::kQueueFull, now);
    return false;
  }
  if (!fq.in_round) {
    fq.in_round = true;
    fq.deficit = 0;
    round_.push_back(p.flow);
  }
  total_bytes_ += static_cast<std::size_t>(p.size_bytes);
  ++total_packets_;
  fq.q.push_back(std::move(p));
  note_admit();
  return true;
}

std::optional<Packet> DrrQueue::dequeue(TimeSec) {
  // Round-robin over active flows; a flow whose deficit cannot cover its
  // head packet is topped up by one quantum and moved to the back. The guard
  // bounds the scan: a packet needs at most ceil(size/quantum) top-ups.
  std::size_t guard =
      (round_.size() + 1) *
      (static_cast<std::size_t>(1500 / std::max(1, cfg_.quantum_bytes)) + 2);
  while (!round_.empty() && guard-- > 0) {
    const FlowId f = round_.front();
    FlowQueue& fq = flows_[f];
    if (fq.q.empty()) {
      fq.in_round = false;
      round_.pop_front();
      flows_.erase(f);
      continue;
    }
    if (fq.deficit < fq.q.front().size_bytes) {
      fq.deficit += cfg_.quantum_bytes;
      round_.splice(round_.end(), round_, round_.begin());
      continue;
    }
    Packet p = std::move(fq.q.front());
    fq.q.pop_front();
    fq.deficit -= p.size_bytes;
    total_bytes_ -= static_cast<std::size_t>(p.size_bytes);
    --total_packets_;
    if (fq.q.empty()) {
      fq.in_round = false;
      round_.pop_front();
      flows_.erase(f);
    }
    return p;
  }
  return std::nullopt;
}

void DrrQueue::register_metrics(telemetry::MetricRegistry& reg,
                                const std::string& prefix) const {
  QueueDisc::register_metrics(reg, prefix);
  reg.gauge_fn(prefix + ".active_flows",
               [this] { return static_cast<double>(active_flows()); });
}

}  // namespace floc
