#include "baselines/red_queue.h"

#include <algorithm>
#include <cmath>

#include "telemetry/metrics.h"
#include "util/json.h"

namespace floc {

bool RedCore::should_drop(std::size_t q_len, TimeSec now) {
  // Idle decay: while the queue was empty the average decays as if small
  // packets had been serviced the whole time.
  if (q_len == 0 && idle_since_ >= 0.0) {
    const double pkts_serviceable = (now - idle_since_) * cfg_.link_bandwidth /
                                    (kBitsPerByte * cfg_.mean_pkt_bytes);
    avg_ *= std::pow(1.0 - cfg_.weight, pkts_serviceable);
    idle_since_ = -1.0;
  }
  avg_ = (1.0 - cfg_.weight) * avg_ + cfg_.weight * static_cast<double>(q_len);

  if (avg_ < cfg_.min_th) {
    count_ = -1;
    return false;
  }
  double p_b;
  if (avg_ < cfg_.max_th) {
    p_b = cfg_.max_p * (avg_ - cfg_.min_th) / (cfg_.max_th - cfg_.min_th);
  } else if (cfg_.gentle && avg_ < 2.0 * cfg_.max_th) {
    p_b = cfg_.max_p + (1.0 - cfg_.max_p) * (avg_ - cfg_.max_th) / cfg_.max_th;
  } else {
    count_ = 0;
    return true;
  }
  ++count_;
  const double denom = 1.0 - count_ * p_b;
  const double p_a = denom > 0.0 ? p_b / denom : 1.0;
  if (rng_.chance(p_a)) {
    count_ = 0;
    return true;
  }
  return false;
}

bool RedQueue::enqueue(Packet&& p, TimeSec now) {
  if (q_.size() >= cfg_.buffer_packets) {
    note_drop(p, DropReason::kQueueFull, now);
    return false;
  }
  if (core_.should_drop(q_.size(), now)) {
    note_drop(p, DropReason::kRandomEarly, now);
    return false;
  }
  bytes_ += static_cast<std::size_t>(p.size_bytes);
  q_.push_back(std::move(p));
  note_admit();
  return true;
}

std::optional<Packet> RedQueue::dequeue(TimeSec now) {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= static_cast<std::size_t>(p.size_bytes);
  if (q_.empty()) core_.on_queue_empty(now);
  return p;
}

void RedQueue::register_metrics(telemetry::MetricRegistry& reg,
                                const std::string& prefix) const {
  QueueDisc::register_metrics(reg, prefix);
  reg.gauge_fn(prefix + ".avg", [this] { return avg_queue(); });
}

void RedQueue::snapshot_state(json::JsonWriter& w, TimeSec now) const {
  (void)now;
  w.begin_object();
  w.field("scheme", "red");
  w.field("packets", static_cast<std::uint64_t>(packet_count()));
  w.field("bytes", static_cast<std::uint64_t>(byte_count()));
  w.field("drops", drops());
  w.field("admissions", admissions());
  w.field("avg_queue", avg_queue());
  w.field("min_th", cfg_.min_th);
  w.field("max_th", cfg_.max_th);
  w.field("max_p", cfg_.max_p);
  w.field("gentle", cfg_.gentle);
  w.end_object();
}

}  // namespace floc
