// Deficit Round Robin fair queueing (Shreedhar & Varghese, 1995).
//
// A per-flow fair-scheduling baseline: each active flow gets its own FIFO
// and a deficit counter replenished by one quantum per round; flows are
// served round-robin while their deficit covers the head packet. DRR gives
// near-perfect per-flow fairness — and therefore illustrates the paper's
// Section II argument: per-flow fairness alone cannot counter covert
// attacks, because an attacker with many flows owns many queues.
#pragma once

#include <deque>
#include <list>
#include <unordered_map>

#include "netsim/queue_disc.h"

namespace floc {

struct DrrConfig {
  std::size_t buffer_packets = 1000;  // shared across all flow queues
  int quantum_bytes = 1500;           // per-round service per flow
  std::size_t max_flow_queue = 100;   // per-flow cap (bounds one flow's share
                                      // of the buffer)
};

class DrrQueue : public QueueDisc {
 public:
  explicit DrrQueue(DrrConfig cfg) : cfg_(cfg) {}

  bool enqueue(Packet&& p, TimeSec now) override;
  std::optional<Packet> dequeue(TimeSec now) override;
  bool empty() const override { return total_packets_ == 0; }
  std::size_t packet_count() const override { return total_packets_; }
  std::size_t byte_count() const override { return total_bytes_; }

  std::size_t active_flows() const { return flows_.size(); }

  // Generic queue gauges plus "<prefix>.active_flows".
  void register_metrics(telemetry::MetricRegistry& reg,
                        const std::string& prefix) const override;

  // Minimal incident dump: base counters plus per-flow backlog and deficit
  // (sorted by flow id).
  void snapshot_state(json::JsonWriter& w, TimeSec now) const override;

 private:
  struct FlowQueue {
    std::deque<Packet> q;
    int deficit = 0;
    bool in_round = false;
  };

  DrrConfig cfg_;
  std::unordered_map<FlowId, FlowQueue> flows_;
  std::list<FlowId> round_;  // active list (round-robin order)
  std::size_t total_packets_ = 0;
  std::size_t total_bytes_ = 0;
};

}  // namespace floc
