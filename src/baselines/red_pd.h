// RED-PD — RED with Preferential Dropping (Mahajan, Floyd & Wetherall, 2001).
//
// Identifies high-bandwidth flows from the RED drop history: a flow dropped
// in several of the recent "identification epochs" (of length K * target
// RTT) is put on the monitored list and pre-dropped with an adaptive
// probability before entering the RED queue. Monitored probabilities rise
// while the flow keeps taking drops and decay once it behaves, so responsive
// TCP flows shed monitoring quickly while unresponsive attack flows converge
// to high pre-drop rates.
//
// Faithful-shape simplification (documented in DESIGN.md): the original's
// per-epoch quantile-based identification is replaced by a drop-count
// threshold over the epoch history, and the probability update uses
// multiplicative increase / decrease.
#pragma once

#include <deque>
#include <unordered_map>

#include "baselines/red_queue.h"

namespace floc {

struct RedPdConfig {
  RedConfig red;
  TimeSec target_rtt = 0.04;  // R
  double epoch_factor = 2.0;  // K: epoch length = K*R
  int history_epochs = 5;     // sliding identification history
  int epochs_with_drops_to_monitor = 3;
  double initial_drop_prob = 0.05;
  double max_drop_prob = 0.98;
  double increase_factor = 1.5;   // when a monitored flow keeps taking drops
  double decrease_factor = 0.5;   // when it behaves for a whole epoch
  double unmonitor_below = 0.01;
  std::uint64_t rng_seed = 11;
};

class RedPdQueue : public QueueDisc {
 public:
  explicit RedPdQueue(RedPdConfig cfg);

  bool enqueue(Packet&& p, TimeSec now) override;
  std::optional<Packet> dequeue(TimeSec now) override;
  bool empty() const override { return q_.empty(); }
  std::size_t packet_count() const override { return q_.size(); }
  std::size_t byte_count() const override { return bytes_; }

  bool is_monitored(FlowId f) const { return monitored_.count(f) != 0; }
  double monitored_prob(FlowId f) const;
  std::size_t monitored_count() const { return monitored_.size(); }

  // Generic queue gauges plus "<prefix>.avg" and "<prefix>.monitored_flows".
  void register_metrics(telemetry::MetricRegistry& reg,
                        const std::string& prefix) const override;

  // Minimal incident dump: base counters plus the monitored-flow list with
  // per-flow pre-drop probabilities (sorted by flow id).
  void snapshot_state(json::JsonWriter& w, TimeSec now) const override;

 private:
  void rotate_epoch(TimeSec now);

  RedPdConfig cfg_;
  RedCore red_;
  Rng rng_;
  std::deque<Packet> q_;
  std::size_t bytes_ = 0;

  TimeSec epoch_end_ = 0.0;
  // Drop history: for each flow, in how many of the recent epochs it was
  // dropped (bitmask over history_epochs).
  std::unordered_map<FlowId, std::uint32_t> drop_history_;
  std::unordered_map<FlowId, int> drops_this_epoch_;
  struct MonState {
    double prob;
    int drops_this_epoch = 0;
  };
  std::unordered_map<FlowId, MonState> monitored_;
};

}  // namespace floc
