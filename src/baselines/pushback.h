// Pushback — Aggregate-based Congestion Control (Mahajan, Bellovin, Floyd,
// Ioannidis, Paxson & Shenker, 2002).
//
// On sustained congestion the router identifies the traffic aggregates
// responsible (here: clusters of flows sharing an origin-path prefix of
// configurable depth), computes a common rate limit L by water-filling so
// that the post-limit arrival rate fits the link, and drops the aggregates'
// excess before the queue. Rate throttling activates only when the drop
// rate crosses `congestion_threshold`, which reproduces Pushback's
// characteristic lateness against low-rate ("bandwidth soaking") attacks.
// Since limits apply to whole aggregates, legitimate flows inside an attack
// aggregate share the penalty — the collateral damage FLoc eliminates.
//
// Upstream propagation (the "pushback" proper) relocates the drops to
// upstream routers; it does not change bandwidth shares at the congested
// link, so this implementation applies the limiters locally (noted in
// DESIGN.md).
#pragma once

#include <deque>
#include <unordered_map>

#include "netsim/queue_disc.h"
#include "util/rng.h"
#include "util/units.h"

namespace floc {

struct PushbackConfig {
  std::size_t buffer_packets = 1000;
  BitsPerSec link_bandwidth = mbps(500);
  int aggregate_prefix_len = 3;     // origin-path prefix depth for clustering
  TimeSec interval = 1.0;           // ACC decision interval
  double congestion_threshold = 0.1;  // drop ratio that triggers throttling
  double target_utilization = 0.95;   // post-limit arrival target
  int max_limited_aggregates = 8;
  TimeSec limiter_timeout = 5.0;    // release limits after calm period
  std::uint64_t rng_seed = 13;
};

class PushbackQueue : public QueueDisc {
 public:
  // Invoked when an aggregate limit is installed or refreshed; upstream
  // routers use it to install matching RateLimiterQueue limits (the
  // "pushback" propagation proper).
  using PushbackHandler =
      std::function<void(const PathId& prefix, BitsPerSec rate, TimeSec expires)>;
  // Pushback status feedback: bytes shed upstream for `prefix` since the
  // last probe. With upstream shedding, local arrivals understate an
  // aggregate's offered rate; the probe restores the true rate, which is
  // what the original protocol's status messages carry.
  using ShedProbe = std::function<double(const PathId& prefix)>;

  explicit PushbackQueue(PushbackConfig cfg);

  void set_pushback_handler(PushbackHandler h) { handler_ = std::move(h); }
  void set_shed_probe(ShedProbe p) { shed_probe_ = std::move(p); }

  bool enqueue(Packet&& p, TimeSec now) override;
  std::optional<Packet> dequeue(TimeSec now) override;
  bool empty() const override { return q_.empty(); }
  std::size_t packet_count() const override { return q_.size(); }
  std::size_t byte_count() const override { return bytes_; }

  bool throttling_active() const { return !limits_.empty(); }
  std::size_t limited_aggregate_count() const { return limits_.size(); }
  double limit_for(const PathId& path) const;

  // Generic queue gauges plus "<prefix>.limited_aggregates" and
  // "<prefix>.throttling" (0/1).
  void register_metrics(telemetry::MetricRegistry& reg,
                        const std::string& prefix) const override;

  // Minimal incident dump: base counters plus the active aggregate limits
  // (sorted by aggregate key).
  void snapshot_state(json::JsonWriter& w, TimeSec now) const override;

 private:
  std::uint64_t aggregate_key(const PathId& path) const;
  void acc_update(TimeSec now);

  PushbackConfig cfg_;
  Rng rng_;
  std::deque<Packet> q_;
  std::size_t bytes_ = 0;

  // Per-aggregate arrival accounting for the current interval.
  struct AggStat {
    double bytes = 0.0;
  };
  std::unordered_map<std::uint64_t, AggStat> arrivals_;
  // Prefix PathId per aggregate key (learned from traffic) so pushback
  // messages can carry the prefix upstream.
  std::unordered_map<std::uint64_t, PathId> prefix_of_;
  PushbackHandler handler_;
  ShedProbe shed_probe_;
  std::uint64_t drops_interval_ = 0;
  std::uint64_t packets_interval_ = 0;
  TimeSec interval_end_ = 0.0;
  TimeSec last_congested_ = -1.0;

  // Active rate limits: aggregate key -> (rate bps, token bucket state).
  struct Limit {
    double rate_bps;
    double tokens_bytes;
    TimeSec last_refill;
  };
  std::unordered_map<std::uint64_t, Limit> limits_;
};

}  // namespace floc
