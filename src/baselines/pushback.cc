#include "baselines/pushback.h"

#include <algorithm>
#include <vector>

#include "telemetry/metrics.h"
#include "util/json.h"

namespace floc {

PushbackQueue::PushbackQueue(PushbackConfig cfg)
    : cfg_(cfg), rng_(cfg.rng_seed) {}

std::uint64_t PushbackQueue::aggregate_key(const PathId& path) const {
  PathId prefix = path;
  if (prefix.length() > cfg_.aggregate_prefix_len)
    prefix.truncate_to(cfg_.aggregate_prefix_len);
  return prefix.key();
}

double PushbackQueue::limit_for(const PathId& path) const {
  const auto it = limits_.find(aggregate_key(path));
  return it == limits_.end() ? -1.0 : it->second.rate_bps;
}

void PushbackQueue::acc_update(TimeSec now) {
  if (interval_end_ == 0.0) {
    interval_end_ = now + cfg_.interval;
    return;
  }
  if (now < interval_end_) return;
  const TimeSec interval = cfg_.interval;
  interval_end_ = now + interval;

  const double drop_ratio =
      packets_interval_ > 0
          ? static_cast<double>(drops_interval_) /
                static_cast<double>(packets_interval_ + drops_interval_)
          : 0.0;

  // Offered rate per aggregate = local arrivals + upstream-shed traffic
  // (the pushback status feedback). Without the probe the shed component is
  // zero and the estimate degrades to the local view.
  std::vector<std::pair<std::uint64_t, double>> rates;
  double total = 0.0;
  rates.reserve(arrivals_.size());
  for (const auto& [k, s] : arrivals_) {
    double bytes = s.bytes;
    if (shed_probe_) {
      const auto pit = prefix_of_.find(k);
      if (pit != prefix_of_.end()) bytes += shed_probe_(pit->second);
    }
    const double r = bytes * kBitsPerByte / interval;
    rates.emplace_back(k, r);
    total += r;
  }

  const double target = cfg_.target_utilization * cfg_.link_bandwidth;
  const bool congested = drop_ratio > cfg_.congestion_threshold ||
                         (!limits_.empty() && total > target);

  if (congested) {
    last_congested_ = now;
    // Water-filling: find the common limit L over the highest-rate
    // aggregates such that sum(min(rate_i, L)) <= target capacity.
    std::sort(rates.begin(), rates.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });

    if (total > target && !rates.empty()) {
      // Lower L until the limited sum fits, limiting at most
      // max_limited_aggregates of the top senders.
      const int max_n =
          std::min<std::size_t>(rates.size(),
                                static_cast<std::size_t>(cfg_.max_limited_aggregates));
      double rest = total;
      double best_l = rates.front().second;
      int best_n = 0;
      for (int n = 1; n <= max_n; ++n) {
        rest -= rates[static_cast<std::size_t>(n - 1)].second;
        // Limit the top n aggregates to a common L: n*L + rest = target.
        const double l = (target - rest) / n;
        const double next_rate =
            n < static_cast<int>(rates.size()) ? rates[static_cast<std::size_t>(n)].second : 0.0;
        if (l >= next_rate || n == max_n) {
          best_l = std::max(l, 0.0);
          best_n = n;
          if (l >= next_rate) break;
        }
      }
      std::unordered_map<std::uint64_t, Limit> fresh;
      for (int i = 0; i < best_n; ++i) {
        const auto key = rates[static_cast<std::size_t>(i)].first;
        const auto old = limits_.find(key);
        Limit lim{best_l, best_l * interval / kBitsPerByte, now};
        if (old != limits_.end()) {
          lim.tokens_bytes = old->second.tokens_bytes;
          lim.last_refill = old->second.last_refill;
        }
        fresh[key] = lim;
        // Propagate the limit upstream ("pushback"): upstream routers shed
        // the aggregate's excess before it reaches this queue.
        if (handler_) {
          const auto pit = prefix_of_.find(key);
          if (pit != prefix_of_.end()) {
            handler_(pit->second, best_l, now + cfg_.limiter_timeout);
          }
        }
      }
      limits_ = std::move(fresh);
    }
  } else if (last_congested_ >= 0.0 &&
             now - last_congested_ > cfg_.limiter_timeout) {
    limits_.clear();  // calm long enough: release throttles
  }

  arrivals_.clear();
  drops_interval_ = 0;
  packets_interval_ = 0;
}

bool PushbackQueue::enqueue(Packet&& p, TimeSec now) {
  acc_update(now);

  if (p.type == PacketType::kData) {
    const std::uint64_t key = aggregate_key(p.path);
    arrivals_[key].bytes += p.size_bytes;
    if (prefix_of_.count(key) == 0) {
      PathId prefix = p.path;
      if (prefix.length() > cfg_.aggregate_prefix_len)
        prefix.truncate_to(cfg_.aggregate_prefix_len);
      prefix_of_[key] = prefix;
    }
    ++packets_interval_;

    // Enforce active aggregate limit (token bucket at rate L).
    auto it = limits_.find(aggregate_key(p.path));
    if (it != limits_.end()) {
      Limit& lim = it->second;
      const double cap = lim.rate_bps * 0.1 / kBitsPerByte;  // 100 ms burst
      lim.tokens_bytes =
          std::min(cap, lim.tokens_bytes +
                            lim.rate_bps * (now - lim.last_refill) / kBitsPerByte);
      lim.last_refill = now;
      if (lim.tokens_bytes < p.size_bytes) {
        ++drops_interval_;
        note_drop(p, DropReason::kRateLimit, now);
        return false;
      }
      lim.tokens_bytes -= p.size_bytes;
    }
  }

  if (q_.size() >= cfg_.buffer_packets) {
    if (p.type == PacketType::kData) ++drops_interval_;
    note_drop(p, DropReason::kQueueFull, now);
    return false;
  }
  bytes_ += static_cast<std::size_t>(p.size_bytes);
  q_.push_back(std::move(p));
  note_admit();
  return true;
}

std::optional<Packet> PushbackQueue::dequeue(TimeSec) {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= static_cast<std::size_t>(p.size_bytes);
  return p;
}

void PushbackQueue::register_metrics(telemetry::MetricRegistry& reg,
                                     const std::string& prefix) const {
  QueueDisc::register_metrics(reg, prefix);
  reg.gauge_fn(prefix + ".limited_aggregates", [this] {
    return static_cast<double>(limited_aggregate_count());
  });
  reg.gauge_fn(prefix + ".throttling",
               [this] { return throttling_active() ? 1.0 : 0.0; });
}

void PushbackQueue::snapshot_state(json::JsonWriter& w, TimeSec now) const {
  (void)now;
  w.begin_object();
  w.field("scheme", "pushback");
  w.field("packets", static_cast<std::uint64_t>(packet_count()));
  w.field("bytes", static_cast<std::uint64_t>(byte_count()));
  w.field("drops", drops());
  w.field("admissions", admissions());
  w.field("throttling", throttling_active());
  std::vector<std::uint64_t> keys;
  keys.reserve(limits_.size());
  for (const auto& [k, lim] : limits_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  w.key("limits").begin_array();
  for (const std::uint64_t k : keys) {
    const Limit& lim = limits_.at(k);
    w.begin_object();
    w.field("aggregate", k);
    const auto pit = prefix_of_.find(k);
    w.field("prefix", pit != prefix_of_.end() ? pit->second.to_string() : "?");
    w.field("rate_bps", lim.rate_bps);
    w.field("tokens_bytes", lim.tokens_bytes);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace floc
