#include "baselines/rate_limiter.h"

#include <algorithm>
#include <vector>

#include "util/json.h"

namespace floc {

void RateLimiterQueue::install_limit(const PathId& prefix, BitsPerSec rate,
                                     TimeSec expires) {
  auto it = limits_.find(prefix.key());
  if (it == limits_.end()) {
    limits_[prefix.key()] =
        Limit{prefix, rate, rate * 0.1 / kBitsPerByte, 0.0, expires};
  } else {
    it->second.rate_bps = rate;
    it->second.expires = expires;
  }
}

void RateLimiterQueue::release_limit(const PathId& prefix) {
  limits_.erase(prefix.key());
}

double RateLimiterQueue::take_shed_bytes(const PathId& prefix) {
  auto it = limits_.find(prefix.key());
  if (it == limits_.end()) return 0.0;
  const double shed = it->second.shed_bytes;
  it->second.shed_bytes = 0.0;
  return shed;
}

bool RateLimiterQueue::enqueue(Packet&& p, TimeSec now) {
  if (p.type == PacketType::kData && !limits_.empty()) {
    for (auto it = limits_.begin(); it != limits_.end();) {
      if (it->second.expires <= now) {
        it = limits_.erase(it);
        continue;
      }
      Limit& lim = it->second;
      if (p.path.has_prefix(lim.prefix)) {
        const double cap = lim.rate_bps * 0.1 / kBitsPerByte;  // 100 ms burst
        lim.tokens_bytes = std::min(
            cap, lim.tokens_bytes +
                     lim.rate_bps * (now - lim.last_refill) / kBitsPerByte);
        lim.last_refill = now;
        if (lim.tokens_bytes < p.size_bytes) {
          lim.shed_bytes += p.size_bytes;
          note_drop(p, DropReason::kRateLimit, now);
          return false;
        }
        lim.tokens_bytes -= p.size_bytes;
      }
      ++it;
    }
  }
  if (q_.size() >= capacity_) {
    note_drop(p, DropReason::kQueueFull, now);
    return false;
  }
  bytes_ += static_cast<std::size_t>(p.size_bytes);
  q_.push_back(std::move(p));
  note_admit();
  return true;
}

std::optional<Packet> RateLimiterQueue::dequeue(TimeSec) {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= static_cast<std::size_t>(p.size_bytes);
  return p;
}

void RateLimiterQueue::snapshot_state(json::JsonWriter& w, TimeSec now) const {
  w.begin_object();
  w.field("scheme", "rate-limiter");
  w.field("packets", static_cast<std::uint64_t>(packet_count()));
  w.field("bytes", static_cast<std::uint64_t>(byte_count()));
  w.field("drops", drops());
  w.field("admissions", admissions());
  std::vector<std::uint64_t> keys;
  keys.reserve(limits_.size());
  for (const auto& [k, lim] : limits_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  w.key("limits").begin_array();
  for (const std::uint64_t k : keys) {
    const Limit& lim = limits_.at(k);
    w.begin_object();
    w.field("prefix", lim.prefix.to_string());
    w.field("rate_bps", lim.rate_bps);
    w.field("tokens_bytes", lim.tokens_bytes);
    w.field("expires", lim.expires);
    w.field("expired", now >= lim.expires);
    w.field("shed_bytes", lim.shed_bytes);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace floc
