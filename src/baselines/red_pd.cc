#include "baselines/red_pd.h"

#include <algorithm>
#include <bit>
#include <vector>

#include "telemetry/metrics.h"
#include "util/json.h"

namespace floc {

RedPdQueue::RedPdQueue(RedPdConfig cfg)
    : cfg_(cfg), red_(cfg.red), rng_(cfg.rng_seed) {}

double RedPdQueue::monitored_prob(FlowId f) const {
  const auto it = monitored_.find(f);
  return it == monitored_.end() ? 0.0 : it->second.prob;
}

void RedPdQueue::rotate_epoch(TimeSec now) {
  const TimeSec epoch_len = cfg_.epoch_factor * cfg_.target_rtt;
  if (epoch_end_ == 0.0) epoch_end_ = now + epoch_len;
  while (now >= epoch_end_) {
    epoch_end_ += epoch_len;
    const auto mask = (std::uint32_t{1} << cfg_.history_epochs) - 1;
    // Shift histories; newly identified flows become monitored.
    for (auto it = drop_history_.begin(); it != drop_history_.end();) {
      std::uint32_t h = (it->second << 1) & mask;
      const auto de = drops_this_epoch_.find(it->first);
      if (de != drops_this_epoch_.end() && de->second > 0) h |= 1u;
      it->second = h;
      if (h == 0) {
        it = drop_history_.erase(it);
        continue;
      }
      if (std::popcount(h) >= cfg_.epochs_with_drops_to_monitor &&
          monitored_.count(it->first) == 0) {
        monitored_[it->first] = MonState{cfg_.initial_drop_prob};
      }
      ++it;
    }
    // Adapt monitored probabilities: a reference TCP flow takes at most one
    // drop per congestion epoch, so only multiple drops signal persistence;
    // a clean epoch decays the probability.
    for (auto it = monitored_.begin(); it != monitored_.end();) {
      MonState& m = it->second;
      if (m.drops_this_epoch >= 2) {
        m.prob = std::min(cfg_.max_drop_prob, m.prob * cfg_.increase_factor);
      } else if (m.drops_this_epoch == 0) {
        m.prob *= cfg_.decrease_factor;
      }
      m.drops_this_epoch = 0;
      if (m.prob < cfg_.unmonitor_below) {
        it = monitored_.erase(it);
      } else {
        ++it;
      }
    }
    drops_this_epoch_.clear();
  }
}

bool RedPdQueue::enqueue(Packet&& p, TimeSec now) {
  rotate_epoch(now);

  const auto record_drop = [this](FlowId flow) {
    drops_this_epoch_[flow]++;
    drop_history_.try_emplace(flow, 0);
    auto it = monitored_.find(flow);
    if (it != monitored_.end()) it->second.drops_this_epoch++;
  };

  // Pre-filter: monitored flows are preferentially dropped ahead of RED.
  if (p.type == PacketType::kData) {
    auto it = monitored_.find(p.flow);
    if (it != monitored_.end() && rng_.chance(it->second.prob)) {
      record_drop(p.flow);
      note_drop(p, DropReason::kPreferential, now);
      return false;
    }
  }

  if (q_.size() >= cfg_.red.buffer_packets) {
    if (p.type == PacketType::kData) record_drop(p.flow);
    note_drop(p, DropReason::kQueueFull, now);
    return false;
  }
  if (p.type == PacketType::kData && red_.should_drop(q_.size(), now)) {
    record_drop(p.flow);
    note_drop(p, DropReason::kRandomEarly, now);
    return false;
  }

  bytes_ += static_cast<std::size_t>(p.size_bytes);
  q_.push_back(std::move(p));
  note_admit();
  return true;
}

std::optional<Packet> RedPdQueue::dequeue(TimeSec now) {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= static_cast<std::size_t>(p.size_bytes);
  if (q_.empty()) red_.on_queue_empty(now);
  return p;
}

void RedPdQueue::register_metrics(telemetry::MetricRegistry& reg,
                                  const std::string& prefix) const {
  QueueDisc::register_metrics(reg, prefix);
  reg.gauge_fn(prefix + ".avg", [this] { return red_.avg(); });
  reg.gauge_fn(prefix + ".monitored_flows",
               [this] { return static_cast<double>(monitored_count()); });
}

void RedPdQueue::snapshot_state(json::JsonWriter& w, TimeSec now) const {
  (void)now;
  w.begin_object();
  w.field("scheme", "red-pd");
  w.field("packets", static_cast<std::uint64_t>(packet_count()));
  w.field("bytes", static_cast<std::uint64_t>(byte_count()));
  w.field("drops", drops());
  w.field("admissions", admissions());
  w.field("avg_queue", red_.avg());
  std::vector<FlowId> flows;
  flows.reserve(monitored_.size());
  for (const auto& [f, ms] : monitored_) flows.push_back(f);
  std::sort(flows.begin(), flows.end());
  w.key("monitored").begin_array();
  for (const FlowId f : flows) {
    const MonState& ms = monitored_.at(f);
    w.begin_object();
    w.field("flow", f);
    w.field("prob", ms.prob);
    w.field("drops_this_epoch", static_cast<std::int64_t>(ms.drops_this_epoch));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace floc
