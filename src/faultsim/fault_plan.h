// Fault-injection scheduler: a declarative plan of timed adversity —
// link failures/recoveries, wire corruption of capability words, FLoc router
// reboots and capability-key rotations — installed onto a Simulator before a
// run. The defense's claims are only "dependable" if they survive churn
// (cf. CoCo-Beholder's adversity-varied harnesses), so experiments and tests
// describe the churn here instead of hand-rolling schedule_at calls.
//
// All injected randomness (corruption bit positions, per-packet coin flips)
// draws from the plan's own seeded Rng, keeping faulty runs exactly
// reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/floc_queue.h"
#include "netsim/link.h"
#include "netsim/simulator.h"
#include "telemetry/event_journal.h"
#include "util/rng.h"

namespace floc {

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0xFA17ULL) : rng_(seed) {}

  // Take `link` down at `down_at` and restore it at `up_at`.
  void add_link_flap(Link* link, TimeSec down_at, TimeSec up_at,
                     Link::DownQueuePolicy policy = Link::DownQueuePolicy::kPreserve);

  // During [start, end), each data packet serialized onto `link` has its
  // capability words bit-flipped with probability `per_packet_prob`
  // (modeling in-flight corruption of the capability fields).
  void add_corruption_window(Link* link, TimeSec start, TimeSec end,
                             double per_packet_prob);

  // Reboot the FLoc router (wipe its soft state) at `at`.
  void add_reboot(FlocQueue* q, TimeSec at, bool preserve_queue = false);

  // Rotate the router's capability secret at `at`.
  void add_key_rotation(FlocQueue* q, TimeSec at, std::uint64_t new_secret);

  // Arbitrary custom fault.
  void add_event(TimeSec at, std::function<void()> fn,
                 std::string label = "custom");

  // Schedule every planned fault onto `sim`; call once, before the run.
  void install(Simulator* sim);

  struct PlannedEvent {
    TimeSec time;
    std::string label;
  };
  const std::vector<PlannedEvent>& events() const { return events_; }
  std::size_t event_count() const { return events_.size(); }

  // Packets whose capability words a corruption window actually flipped.
  std::uint64_t corrupted_packets() const { return corrupted_; }

  // Record every fault activation as a kFault journal event (detail = the
  // planned label) when it fires. Set before install(); nullptr detaches.
  void set_journal(telemetry::EventJournal* j) { journal_ = j; }

 private:
  void plan(TimeSec at, std::string label, std::function<void()> fn);

  struct Pending {
    TimeSec time;
    std::string label;
    std::function<void()> fn;
  };

  Rng rng_;
  std::vector<PlannedEvent> events_;
  std::vector<Pending> pending_;
  std::uint64_t corrupted_ = 0;
  bool installed_ = false;
  telemetry::EventJournal* journal_ = nullptr;
};

}  // namespace floc
