#include "faultsim/fault_plan.h"

#include <cassert>
#include <utility>

namespace floc {

void FaultPlan::plan(TimeSec at, std::string label, std::function<void()> fn) {
  assert(!installed_ && "fault plan already installed");
  events_.push_back(PlannedEvent{at, label});
  pending_.push_back(Pending{at, std::move(label), std::move(fn)});
}

void FaultPlan::add_link_flap(Link* link, TimeSec down_at, TimeSec up_at,
                              Link::DownQueuePolicy policy) {
  assert(down_at < up_at);
  plan(down_at, "link-down", [link, policy] { link->set_up(false, policy); });
  plan(up_at, "link-up", [link] { link->set_up(true); });
}

void FaultPlan::add_corruption_window(Link* link, TimeSec start, TimeSec end,
                                      double per_packet_prob) {
  assert(start < end);
  plan(start, "corruption-on", [this, link, per_packet_prob] {
    link->set_tamper([this, per_packet_prob](Packet& p) {
      if (p.type != PacketType::kData) return;
      if (!rng_.chance(per_packet_prob)) return;
      // Flip one random bit across the 128 capability-word bits.
      const std::uint64_t bit = rng_.uniform_int(128);
      if (bit < 64) {
        p.cap0 ^= (1ULL << bit);
      } else {
        p.cap1 ^= (1ULL << (bit - 64));
      }
      ++corrupted_;
    });
  });
  plan(end, "corruption-off", [link] { link->set_tamper(nullptr); });
}

void FaultPlan::add_reboot(FlocQueue* q, TimeSec at, bool preserve_queue) {
  plan(at, "router-reboot",
       [q, at, preserve_queue] { q->reboot(at, preserve_queue); });
}

void FaultPlan::add_key_rotation(FlocQueue* q, TimeSec at,
                                 std::uint64_t new_secret) {
  plan(at, "key-rotation", [q, at, new_secret] {
    q->rotate_secret(new_secret, at);
  });
}

void FaultPlan::add_event(TimeSec at, std::function<void()> fn,
                          std::string label) {
  plan(at, std::move(label), std::move(fn));
}

void FaultPlan::install(Simulator* sim) {
  assert(!installed_ && "fault plan already installed");
  installed_ = true;
  for (Pending& p : pending_) {
    if (journal_ != nullptr) {
      sim->schedule_at(
          p.time, [this, t = p.time, label = std::move(p.label),
                   fn = std::move(p.fn)] {
            journal_->record(t, telemetry::EventKind::kFault, "fault-plan",
                             label);
            fn();
          });
    } else {
      sim->schedule_at(p.time, std::move(p.fn));
    }
  }
  pending_.clear();
}

}  // namespace floc
