#include "faultsim/sim_monitor.h"

#include <utility>

#include "telemetry/flight_recorder.h"

namespace floc {

void SimMonitor::add_check(std::string name, Check fn) {
  checks_.push_back(Named{std::move(name), std::move(fn)});
}

void SimMonitor::watch_queue(std::string name, const QueueDisc* q) {
  add_check(std::move(name), [q](TimeSec now, std::string* detail) {
    return q->audit(now, detail);
  });
}

void SimMonitor::run_checks(TimeSec now) {
  for (const Named& c : checks_) {
    ++checks_run_;
    std::string detail;
    if (c.fn(now, &detail)) continue;
    violations_.push_back(Violation{now, c.name, detail});
    if (journal_ != nullptr) {
      journal_->record(now, telemetry::EventKind::kInvariantViolation, c.name,
                       detail);
    }
    if (recorder_ != nullptr) {
      telemetry::IncidentTrigger trig;
      trig.source = telemetry::IncidentTrigger::Source::kInvariant;
      trig.time = now;
      trig.name = c.name;
      trig.detail = detail;
      recorder_->capture(trig);
    }
    if (report_ != nullptr) {
      std::fprintf(report_, "[SimMonitor] t=%.6f invariant '%s' violated: %s\n",
                   now, c.name.c_str(), detail.c_str());
    }
  }
}

void SimMonitor::attach(Simulator* sim, TimeSec period, TimeSec until) {
  run_checks(sim->now());
  // Self-rescheduling tick; stops past `until` so the event queue drains.
  struct Tick {
    SimMonitor* mon;
    Simulator* sim;
    TimeSec period;
    TimeSec until;
    void operator()() const {
      mon->run_checks(sim->now());
      if (sim->now() + period <= until) {
        sim->schedule_in(period, Tick{mon, sim, period, until});
      }
    }
  };
  sim->schedule_in(period, Tick{this, sim, period, until});
}

}  // namespace floc
