// SimMonitor: periodic simulation-wide invariant checking.
//
// A faulty or fault-injected run can corrupt results silently — a queue
// whose byte accounting drifts, a token bucket outside [0, N'], a packet
// that is neither serviced nor dropped nor queued. The monitor re-runs a set
// of registered invariant checks on a fixed period and records every
// violation with its event-time context, so an experiment fails loudly at
// the moment the invariant broke instead of producing quietly wrong numbers.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "netsim/queue_disc.h"
#include "netsim/simulator.h"
#include "telemetry/event_journal.h"

namespace floc {

namespace telemetry {
class FlightRecorder;
}

class SimMonitor {
 public:
  // A check returns true if the invariant holds; on failure it may describe
  // the violation in `detail`.
  using Check = std::function<bool(TimeSec now, std::string* detail)>;

  struct Violation {
    TimeSec time;
    std::string check;
    std::string detail;
  };

  void add_check(std::string name, Check fn);

  // Convenience: audit a queue discipline's internal invariants (byte
  // accounting, token bounds, packet conservation — QueueDisc::audit).
  void watch_queue(std::string name, const QueueDisc* q);

  // Run all checks every `period` seconds on `sim` until `until` (checks
  // also run once at installation time). Call before the run starts.
  void attach(Simulator* sim, TimeSec period, TimeSec until);

  // Run every check once at `now` (also usable standalone, without attach).
  void run_checks(TimeSec now);

  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t checks_run() const { return checks_run_; }

  // Violations are reported here as they happen; nullptr silences reporting
  // (the log is still kept). Default: stderr.
  void set_report_stream(std::FILE* f) { report_ = f; }

  // Also record every violation as a kInvariantViolation journal event
  // (component = check name, detail = violation text). nullptr detaches.
  void set_journal(telemetry::EventJournal* j) { journal_ = j; }

  // Capture an incident bundle on every violation (trigger source
  // kInvariant, name = check name). nullptr detaches.
  void set_flight_recorder(telemetry::FlightRecorder* rec) { recorder_ = rec; }

 private:
  struct Named {
    std::string name;
    Check fn;
  };

  std::vector<Named> checks_;
  std::vector<Violation> violations_;
  std::uint64_t checks_run_ = 0;
  std::FILE* report_ = stderr;
  telemetry::EventJournal* journal_ = nullptr;
  telemetry::FlightRecorder* recorder_ = nullptr;
};

}  // namespace floc
