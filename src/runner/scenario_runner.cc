#include "runner/scenario_runner.h"

#include <algorithm>

namespace floc::runner {

int default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

ScenarioRunner::ScenarioRunner(int jobs) : jobs_(std::max(1, jobs)) {
  if (jobs_ > 1) {
    threads_.reserve(static_cast<std::size_t>(jobs_));
    for (int i = 0; i < jobs_; ++i) {
      threads_.emplace_back([this] { worker(); });
    }
  }
}

ScenarioRunner::~ScenarioRunner() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::size_t ScenarioRunner::submit(std::function<void()> task) {
  if (jobs_ <= 1) {
    // Serial mode: run on the caller's thread, defer errors to wait().
    std::size_t index;
    {
      std::lock_guard<std::mutex> lk(mu_);
      index = next_index_++;
    }
    try {
      task();
    } catch (...) {
      record_exception(index, std::current_exception());
    }
    std::lock_guard<std::mutex> lk(mu_);
    ++completed_;
    return index;
  }
  std::size_t index;
  {
    std::lock_guard<std::mutex> lk(mu_);
    index = next_index_++;
    queue_.emplace_back(index, std::move(task));
  }
  work_cv_.notify_one();
  return index;
}

void ScenarioRunner::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] { return completed_ == next_index_; });
  throw_pending_locked();
}

std::size_t ScenarioRunner::submitted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_index_;
}

void ScenarioRunner::worker() {
  for (;;) {
    std::pair<std::size_t, std::function<void()>> item;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      item.second();
    } catch (...) {
      record_exception(item.first, std::current_exception());
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++completed_;
    }
    done_cv_.notify_all();
  }
}

void ScenarioRunner::record_exception(std::size_t index, std::exception_ptr e) {
  std::lock_guard<std::mutex> lk(mu_);
  // Keep the error of the lowest submission index so which run's failure
  // surfaces does not depend on worker scheduling.
  if (index < error_index_) {
    error_index_ = index;
    error_ = e;
  }
}

void ScenarioRunner::throw_pending_locked() {
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    error_index_ = SIZE_MAX;
    std::rethrow_exception(e);
  }
}

}  // namespace floc::runner
