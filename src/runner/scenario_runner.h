// Parallel scenario-sweep engine with a hard cross-thread determinism
// contract.
//
// A sweep (seed sweep, attack-case grid, topology matrix) is a list of
// independent runs. Each run owns a fully isolated world — its own
// Simulator, Rng streams derived via util/seed.h's (master, index, salt)
// derivation, its own MetricRegistry / Tracer / EventJournal — so no
// simulated byte can depend on scheduling. The runner only decides *when*
// wall-clock work happens:
//
//   * a fixed pool of N worker threads (no work stealing, no dynamic
//     resizing) drains a FIFO task queue;
//   * results are merged in submission order, never completion order;
//   * jobs <= 1 executes inline on the caller's thread, making `--jobs 1`
//     literally the serial program and the golden baseline the parallel
//     paths are pinned against (tests/runner_golden_trace_test.cc).
//
// The contract: for any fixed master seed, every derived artifact (tables,
// journals, span CSVs, time series) is byte-identical for all jobs values.
// Runs therefore must not touch shared mutable state — no static counters,
// no shared Rng, no printing from inside a run; produce values/strings and
// let the caller emit them in merge order.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace floc::runner {

// Pool width for "use the machine": hardware_concurrency with a sane floor.
int default_jobs();

class ScenarioRunner {
 public:
  // `jobs` is clamped to >= 1. With jobs == 1 no threads are created and
  // submit() runs the task inline (exceptions are still deferred to wait(),
  // so error handling is uniform across serial and parallel execution).
  explicit ScenarioRunner(int jobs = 1);
  ~ScenarioRunner();

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  // Enqueue a run; returns its submission index (0-based, dense). Tasks
  // start in FIFO order; completion order is unspecified.
  std::size_t submit(std::function<void()> task);

  // Block until every submitted task has finished. If any task threw, the
  // exception of the *lowest submission index* is rethrown (deterministic
  // regardless of which worker hit its error first). The runner remains
  // usable for further submit()/wait() rounds afterwards.
  void wait();

  int jobs() const { return jobs_; }
  std::size_t submitted() const;

 private:
  void worker();
  void record_exception(std::size_t index, std::exception_ptr e);
  void throw_pending_locked();

  const int jobs_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty or stopping
  std::condition_variable done_cv_;   // wait(): all tasks finished
  std::deque<std::pair<std::size_t, std::function<void()>>> queue_;
  std::size_t next_index_ = 0;
  std::size_t completed_ = 0;
  bool stop_ = false;
  std::size_t error_index_ = SIZE_MAX;
  std::exception_ptr error_;
  std::vector<std::thread> threads_;
};

// Wall-clock seconds spent in `fn()` (steady clock) — for RunManifest
// per-run timings; simulated time is unaffected.
template <typename Fn>
double timed_seconds(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  std::forward<Fn>(fn)();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Run `fn(i)` for every i in [0, count) on `jobs` threads and return the
// results indexed by i — i.e. merged in submission order no matter which
// run finishes first. R needs to be movable, not default-constructible.
template <typename R, typename Fn>
std::vector<R> run_indexed(int jobs, std::size_t count, Fn&& fn) {
  std::vector<std::optional<R>> slots(count);
  ScenarioRunner pool(jobs);
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&slots, &fn, i] { slots[i].emplace(fn(i)); });
  }
  pool.wait();
  std::vector<R> out;
  out.reserve(count);
  for (auto& s : slots) out.push_back(std::move(*s));
  return out;
}

}  // namespace floc::runner
