// Constant-bit-rate attack source (Section VI-A): performs the capability
// handshake like a legitimate client, then transmits at a fixed rate with no
// congestion response.
#pragma once

#include <cstdint>

#include "netsim/network.h"
#include "netsim/node.h"
#include "netsim/simulator.h"
#include "util/units.h"

namespace floc {

struct CbrConfig {
  FlowId flow = 0;
  HostAddr dst = 0;
  PathId path;
  int packet_bytes = 1500;
  BitsPerSec rate = 0.0;
  bool do_handshake = true;  // acquire a capability before blasting
};

class CbrSource : public Agent {
 public:
  CbrSource(Simulator* sim, Host* host, CbrConfig cfg);
  ~CbrSource() override = default;

  void start_at(TimeSec t);
  void stop_at(TimeSec t);

  void on_packet(Packet&& p) override;

  std::uint64_t packets_sent() const { return packets_sent_; }
  FlowId flow() const { return cfg_.flow; }

 protected:
  // Hook for subclasses (Shrew) to gate transmission instants.
  virtual bool gate_open(TimeSec now) const;

  // Feedback hook for closed-loop (adaptive) subclasses: invoked for every
  // SYN-ACK and transport ACK delivered back to this source, after the base
  // class has adopted any re-stamped capability words. `p.ack` carries the
  // sink's cumulative next-expected sequence and `p.sent_time` echoes the
  // timestamp of the packet being acknowledged, so subclasses can measure
  // drops (ack stalls / duplicate acks) and send-to-ACK timing — the only
  // information channel a real flooder has about the defense's decisions.
  virtual void on_feedback(const Packet& p, TimeSec now) {
    (void)p;
    (void)now;
  }

  Simulator* sim() const { return sim_; }
  Host* host() const { return host_; }
  const CbrConfig& config() const { return cfg_; }
  std::uint64_t next_seq() const { return next_seq_; }

 private:
  void begin();
  void tick();
  void send_data();

  Simulator* sim_;
  Host* host_;
  CbrConfig cfg_;
  bool running_ = false;
  bool stopped_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t cap0_ = 0;
  std::uint64_t cap1_ = 0;
  std::uint64_t packets_sent_ = 0;
};

}  // namespace floc
