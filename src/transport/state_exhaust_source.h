// State-exhaustion attacker: floods the DEFENSE'S tables, not the link.
//
// FLoc keeps per-origin-path, per-flow, and per-sender state. A sender that
// rotates its identity — fresh flow id, a forged origin-AS hop appended to
// its real path, optionally a spoofed source address — plants a new entry in
// each of those tables per rotation while offering negligible bandwidth.
// Against unbounded tables this exhausts the router's memory long before any
// queue fills; against bounded tables it stresses the eviction policy
// (trying to push legitimate — or its own verdict — state out) and drives
// the overload machinery.
//
// The source is closed-loop: it watches the delivered fraction of its own
// probe traffic, and when the defense starts shedding it (overload-mode
// capability tightening, coarse-path confinement) it ESCALATES the churn
// rate — the gamble that more identities per second outruns eviction — up to
// a cap. All pacing comes from seeded simulator timers and the feedback
// packets themselves, so runs are exactly reproducible and --jobs-invariant.
//
// Spoofed-sender mode is safe in-sim: SYN-ACK/ACK replies to forged
// addresses are dropped as unroutable/undeliverable by Router/Host, exactly
// like backscatter to spoofed sources in the real network.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/network.h"
#include "netsim/node.h"
#include "netsim/simulator.h"
#include "util/units.h"

namespace floc {

struct StateExhaustConfig {
  FlowId first_flow = 0;      // flow-id pool [first_flow, first_flow + pool)
  HostAddr dst = 0;
  PathId base_path;           // the sender's REAL path; forged hops append
  int packet_bytes = 200;     // small probes: table pressure per byte sent
  BitsPerSec rate = 0.0;      // total send budget (link load stays small)
  int identity_pool = 1 << 12;  // distinct flow ids cycled through
  double churn_per_sec = 50.0;  // initial identity rotations per second
  double churn_max = 2000.0;    // closed-loop escalation ceiling
  std::uint32_t forged_as_base = 900000;  // forged origin-AS space
  bool spoof_sender = false;  // rotate forged source addresses too
  HostAddr spoof_base = 0x40000000;  // forged address space (unrouted)
  bool send_syn = true;       // plant a flow record per identity via SYN
  TimeSec check_interval = 0.5;  // closed-loop cadence
  double starve_ratio = 0.05;    // delivered/sent below this => escalate
};

class StateExhaustSource : public Agent {
 public:
  StateExhaustSource(Simulator* sim, Host* host, StateExhaustConfig cfg);

  void start_at(TimeSec t);
  void stop_at(TimeSec t);
  void on_packet(Packet&& p) override;

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t acks() const { return acks_total_; }
  // Distinct identities minted so far (exceeds identity_pool once flow ids
  // wrap; the forged path hop keeps advancing, so path keys stay distinct).
  std::uint64_t identities_used() const { return identity_; }
  double churn_per_sec() const { return churn_; }
  int escalations() const { return escalations_; }

  // All flow ids this source may ever use (for monitor registration).
  std::vector<FlowId> flow_pool() const;

 private:
  void begin();
  void tick();
  void check();
  void rotate(TimeSec now);
  Packet make_packet(PacketType type, TimeSec now) const;

  Simulator* sim_;
  Host* host_;
  StateExhaustConfig cfg_;
  bool running_ = false;
  bool stopped_ = false;

  std::uint64_t identity_ = 0;   // current identity index (monotone)
  std::uint64_t next_seq_ = 0;
  TimeSec next_rotate_ = 0.0;
  double churn_;

  std::uint64_t packets_sent_ = 0;
  std::uint64_t sent_window_ = 0;  // data packets since the last check
  std::uint64_t acks_window_ = 0;
  std::uint64_t acks_total_ = 0;
  int escalations_ = 0;
};

}  // namespace floc
