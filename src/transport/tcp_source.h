// TCP Reno source model: slow start, congestion avoidance, fast retransmit on
// three duplicate ACKs, exponential-backoff RTO with go-back-N recovery.
//
// This is the "legitimate flow" reference behaviour FLoc's analytical model
// assumes (Section IV-A): AIMD window dynamics with one drop per congestion
// epoch and mean window 3/4 of the peak.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "netsim/network.h"
#include "netsim/node.h"
#include "netsim/simulator.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "telemetry/tracing.h"

namespace floc {

struct TcpSourceConfig {
  FlowId flow = 0;
  HostAddr dst = 0;
  PathId path;                 // domain-path identifier stamped on every packet
  int packet_bytes = 1500;
  std::uint64_t total_packets = 0;  // 0 => persistent (unbounded transfer)
  double max_cwnd = 64.0;      // receiver/window clamp (packets)
  double initial_ssthresh = 64.0;
  TimeSec min_rto = 0.2;
  TimeSec max_rto = 8.0;
};

class TcpSource : public Agent {
 public:
  TcpSource(Simulator* sim, Host* host, TcpSourceConfig cfg);

  // Begin the connection (SYN handshake, then data) at time `t`.
  void start_at(TimeSec t);

  void on_packet(Packet&& p) override;

  bool done() const { return state_ == State::kDone; }
  bool established() const { return state_ == State::kEstablished; }
  double cwnd() const { return cwnd_; }
  TimeSec srtt() const { return srtt_; }
  TimeSec finish_time() const { return finish_time_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t timeouts() const { return timeouts_; }
  FlowId flow() const { return cfg_.flow; }

  // Invoked when the transfer completes (persistent sources never fire it).
  void set_completion_handler(std::function<void(TimeSec)> h) {
    completion_ = std::move(h);
  }

  // Publish connection state as polled gauges under `prefix`: ".cwnd",
  // ".ssthresh", ".srtt", ".packets_sent", ".retransmits", ".timeouts".
  void register_metrics(telemetry::MetricRegistry& reg,
                        const std::string& prefix) const;

  // Feed every RTT sample into `h` (null detaches; one pointer test per ACK).
  void set_rtt_histogram(telemetry::LogHistogram* h) { rtt_hist_ = h; }

  // Attach causal span tracing: the SYN handshake becomes a kTcpHandshake
  // span, and every data segment a kTcpSend span opened at (re)transmission
  // and closed by the covering ACK. Outgoing packets carry the span in
  // Packet::span so downstream queue/link spans parent under it (trace id =
  // flow, pid = source host, tid = flow). Null detaches; detached sends do
  // zero tracing work and zero allocations.
  void set_tracer(telemetry::Tracer* tracer);

  // Attribute on_packet (ACK processing) wall time to a profiler section.
  void set_profiler(telemetry::Profiler::Section* section) {
    prof_on_packet_ = section;
  }

 private:
  enum class State { kIdle, kSynSent, kEstablished, kDone };

  void send_syn();
  void send_available();
  void transmit(std::uint64_t seq, bool is_retransmit);
  void handle_ack(const Packet& p);
  void on_new_ack(std::uint64_t acked_through, TimeSec rtt_sample);
  void enter_fast_retransmit();
  void arm_timer();
  void on_timer();
  void complete();
  TimeSec rto() const;

  // Tracing slow paths; callers gate on `tracer_ != nullptr`.
  void trace_syn(Packet& p);
  void trace_send(Packet& p, std::uint64_t seq, bool is_retransmit);
  void trace_acked(std::uint64_t from_seq, std::uint64_t acked_through);

  Simulator* sim_;
  Host* host_;
  TcpSourceConfig cfg_;

  State state_ = State::kIdle;
  double cwnd_ = 1.0;
  double ssthresh_;
  std::uint64_t next_seq_ = 0;   // next new sequence to send
  std::uint64_t snd_una_ = 0;    // lowest unacknowledged sequence
  std::uint64_t recover_ = 0;    // fast-recovery exit point
  int dupacks_ = 0;
  bool in_recovery_ = false;

  // Capability echoed from the SYN-ACK onto all later packets.
  std::uint64_t cap0_ = 0;
  std::uint64_t cap1_ = 0;

  // RTT estimation (Jacobson/Karels).
  TimeSec srtt_ = 0.0;
  TimeSec rttvar_ = 0.0;
  bool rtt_seeded_ = false;
  std::uint64_t timed_seq_ = 0;
  TimeSec timed_sent_ = -1.0;
  int backoff_ = 1;

  // Timer bookkeeping: one outstanding event, validity by generation.
  std::uint64_t timer_gen_ = 0;
  bool timer_armed_ = false;
  TimeSec last_send_or_ack_ = 0.0;

  TimeSec finish_time_ = -1.0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t timeouts_ = 0;
  std::function<void(TimeSec)> completion_;
  telemetry::LogHistogram* rtt_hist_ = nullptr;

  // Tracing (null = off; populated only while attached).
  telemetry::Tracer* tracer_ = nullptr;
  telemetry::SpanId syn_span_ = 0;
  std::unordered_map<std::uint64_t, telemetry::SpanId> send_spans_;
  telemetry::Profiler::Section* prof_on_packet_ = nullptr;
};

}  // namespace floc
