#include "transport/flow_monitor.h"

#include <cassert>
#include <stdexcept>

namespace floc {

void FlowMonitor::register_flow(FlowId flow, FlowLabel label) {
  assert(index_.count(flow) == 0 && "flow registered twice");
  index_[flow] = labels_.size();
  labels_.push_back(std::move(label));
  cumulative_bytes_.push_back(0.0);
}

const FlowLabel& FlowMonitor::label(FlowId flow) const {
  return labels_[index_.at(flow)];
}

void FlowMonitor::on_deliver(FlowId flow, TimeSec now, double bytes) {
  const auto it = index_.find(flow);
  if (it == index_.end()) return;  // unlabelled flow: ignore
  cumulative_bytes_[it->second] += bytes;
  if (series_enabled_) {
    const FlowLabel& l = labels_[it->second];
    auto& buckets = path_buckets_[l.path_name];
    const auto idx = static_cast<std::size_t>(now / bucket_width_);
    if (buckets.size() <= idx) buckets.resize(idx + 1, 0.0);
    buckets[idx] += bytes;
  }
}

void FlowMonitor::enable_path_series(TimeSec bucket_width) {
  series_enabled_ = true;
  bucket_width_ = bucket_width;
}

void FlowMonitor::snapshot(const std::string& name, TimeSec now) {
  snapshots_[name] = Snapshot{now, cumulative_bytes_};
}

const FlowMonitor::Snapshot& FlowMonitor::snap(const std::string& name) const {
  const auto it = snapshots_.find(name);
  if (it == snapshots_.end())
    throw std::out_of_range("unknown snapshot: " + name);
  return it->second;
}

double FlowMonitor::flow_bps(FlowId flow, const std::string& snap_a,
                             const std::string& snap_b) const {
  const Snapshot& a = snap(snap_a);
  const Snapshot& b = snap(snap_b);
  const double dt = b.time - a.time;
  if (dt <= 0.0) return 0.0;
  const std::size_t i = index_.at(flow);
  const double da = i < a.cumulative.size() ? a.cumulative[i] : 0.0;
  const double db = i < b.cumulative.size() ? b.cumulative[i] : 0.0;
  return (db - da) * 8.0 / dt;
}

Cdf FlowMonitor::bandwidth_cdf(const FlowPredicate& pred,
                               const std::string& snap_a,
                               const std::string& snap_b) const {
  const Snapshot& a = snap(snap_a);
  const Snapshot& b = snap(snap_b);
  const double dt = b.time - a.time;
  Cdf cdf;
  if (dt <= 0.0) return cdf;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (!pred(labels_[i])) continue;
    const double da = i < a.cumulative.size() ? a.cumulative[i] : 0.0;
    const double db = i < b.cumulative.size() ? b.cumulative[i] : 0.0;
    cdf.add((db - da) * 8.0 / dt);
  }
  return cdf;
}

double FlowMonitor::class_bps(const FlowPredicate& pred,
                              const std::string& snap_a,
                              const std::string& snap_b) const {
  const Snapshot& a = snap(snap_a);
  const Snapshot& b = snap(snap_b);
  const double dt = b.time - a.time;
  if (dt <= 0.0) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (!pred(labels_[i])) continue;
    const double da = i < a.cumulative.size() ? a.cumulative[i] : 0.0;
    const double db = i < b.cumulative.size() ? b.cumulative[i] : 0.0;
    total += db - da;
  }
  return total * 8.0 / dt;
}

std::map<std::string, double> FlowMonitor::path_bps(
    const std::string& snap_a, const std::string& snap_b) const {
  const Snapshot& a = snap(snap_a);
  const Snapshot& b = snap(snap_b);
  const double dt = b.time - a.time;
  std::map<std::string, double> out;
  if (dt <= 0.0) return out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    const double da = i < a.cumulative.size() ? a.cumulative[i] : 0.0;
    const double db = i < b.cumulative.size() ? b.cumulative[i] : 0.0;
    out[labels_[i].path_name] += (db - da) * 8.0 / dt;
  }
  return out;
}

std::vector<double> FlowMonitor::path_series_bps(
    const std::string& path_name) const {
  std::vector<double> out;
  const auto it = path_buckets_.find(path_name);
  if (it == path_buckets_.end()) return out;
  out.reserve(it->second.size());
  for (double bytes : it->second) out.push_back(bytes * 8.0 / bucket_width_);
  return out;
}

double FlowMonitor::total_bytes(FlowId flow) const {
  const auto it = index_.find(flow);
  return it == index_.end() ? 0.0 : cumulative_bytes_[it->second];
}

double FlowMonitor::class_cumulative_bytes(const FlowPredicate& pred) const {
  double bytes = 0.0;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (pred(labels_[i])) bytes += cumulative_bytes_[i];
  }
  return bytes;
}

}  // namespace floc
