// Server-side endpoint: answers SYNs (echoing router-issued capabilities),
// generates cumulative ACKs for data (each also echoing the delivered
// segment's seq, SACK-style), and reports delivered goodput to a
// FlowMonitor. One sink instance serves every flow addressed to its host.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>

#include "netsim/network.h"
#include "netsim/node.h"
#include "netsim/simulator.h"

namespace floc {

class FlowMonitor;

class TcpSink : public Agent {
 public:
  TcpSink(Simulator* sim, Host* host, FlowMonitor* monitor = nullptr);

  void on_packet(Packet&& p) override;

  std::uint64_t delivered_packets() const { return delivered_packets_; }
  std::uint64_t duplicate_packets() const { return duplicates_; }

 private:
  struct FlowState {
    std::uint64_t next_expected = 0;
    std::set<std::uint64_t> out_of_order;
  };

  void reply(const Packet& data, PacketType type, std::uint64_t ack);

  Simulator* sim_;
  Host* host_;
  FlowMonitor* monitor_;
  std::unordered_map<FlowId, FlowState> flows_;
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace floc
