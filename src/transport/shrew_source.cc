#include "transport/shrew_source.h"

// Header-only behaviour; the translation unit anchors the vtable.
namespace floc {}
