#include "transport/tcp_sink.h"

#include "netsim/link.h"
#include "transport/flow_monitor.h"
#include "util/units.h"

namespace floc {

TcpSink::TcpSink(Simulator* sim, Host* host, FlowMonitor* monitor)
    : sim_(sim), host_(host), monitor_(monitor) {
  host_->set_default_agent(this);
}

void TcpSink::reply(const Packet& data, PacketType type, std::uint64_t ack) {
  Packet p;
  p.flow = data.flow;
  p.src = host_->addr();
  p.dst = data.src;
  p.type = type;
  p.size_bytes = kAckPacketBytes;
  p.ack = ack;
  p.seq = data.seq;    // echo the delivered segment (SACK-style): cumulative
                       // ack alone freezes at the first hole for flows that
                       // never retransmit, hiding their delivered goodput
  p.cap0 = data.cap0;  // echo router-issued capability back to the client
  p.cap1 = data.cap1;
  p.sent_time = data.sent_time;  // lets the client time the exchange
  Link* out = host_->network()->next_hop(host_->id(), data.src);
  if (out) out->send(std::move(p));
}

void TcpSink::on_packet(Packet&& p) {
  switch (p.type) {
    case PacketType::kSyn: {
      flows_.try_emplace(p.flow);
      reply(p, PacketType::kSynAck, 0);
      break;
    }
    case PacketType::kData: {
      FlowState& st = flows_[p.flow];
      if (p.seq < st.next_expected || st.out_of_order.count(p.seq)) {
        ++duplicates_;
      } else {
        ++delivered_packets_;
        if (monitor_) monitor_->on_deliver(p.flow, sim_->now(), p.size_bytes);
        if (p.seq == st.next_expected) {
          ++st.next_expected;
          auto it = st.out_of_order.begin();
          while (it != st.out_of_order.end() && *it == st.next_expected) {
            ++st.next_expected;
            it = st.out_of_order.erase(it);
          }
        } else {
          st.out_of_order.insert(p.seq);
        }
      }
      reply(p, PacketType::kAck, st.next_expected);
      break;
    }
    default:
      break;
  }
}

}  // namespace floc
