#include "transport/state_exhaust_source.h"

#include <algorithm>
#include <cassert>

namespace floc {

namespace {
// SYN size matches the transport's handshake packets.
constexpr int kSynBytes = 40;
}  // namespace

StateExhaustSource::StateExhaustSource(Simulator* sim, Host* host,
                                       StateExhaustConfig cfg)
    : sim_(sim), host_(host), cfg_(cfg), churn_(cfg.churn_per_sec) {
  assert(cfg_.rate > 0.0);
  assert(cfg_.identity_pool > 0);
  assert(cfg_.churn_per_sec > 0.0);
  // Claim the whole flow-id pool up front: the flow universe is static, so
  // the monitor can classify every id before the run and feedback for any
  // identity — current or rotated-away — still reaches this agent.
  for (int i = 0; i < cfg_.identity_pool; ++i) {
    host_->register_agent(cfg_.first_flow + static_cast<FlowId>(i), this);
  }
}

std::vector<FlowId> StateExhaustSource::flow_pool() const {
  std::vector<FlowId> out;
  out.reserve(static_cast<std::size_t>(cfg_.identity_pool));
  for (int i = 0; i < cfg_.identity_pool; ++i) {
    out.push_back(cfg_.first_flow + static_cast<FlowId>(i));
  }
  return out;
}

void StateExhaustSource::start_at(TimeSec t) {
  sim_->schedule_at(t, [this] { begin(); });
}

void StateExhaustSource::stop_at(TimeSec t) {
  sim_->schedule_at(t, [this] { stopped_ = true; });
}

void StateExhaustSource::begin() {
  if (running_ || stopped_) return;
  running_ = true;
  next_rotate_ = sim_->now();
  rotate(sim_->now());  // mint the first identity (and its SYN)
  tick();
  sim_->schedule_in(cfg_.check_interval, [this] { check(); });
}

Packet StateExhaustSource::make_packet(PacketType type, TimeSec now) const {
  Packet p;
  p.flow = cfg_.first_flow +
           static_cast<FlowId>(identity_ %
                               static_cast<std::uint64_t>(cfg_.identity_pool));
  p.src = cfg_.spoof_sender
              ? cfg_.spoof_base + static_cast<HostAddr>(identity_ & 0xFFFFFF)
              : host_->addr();
  p.dst = cfg_.dst;
  // Forged origin hop: every identity claims to originate one AS deeper,
  // so each rotation's path key is distinct — a fresh origin-path entry in
  // the defense. The identity index (not the wrapped flow id) feeds the AS,
  // so path keys never repeat even after the flow pool wraps.
  p.path = cfg_.base_path;
  if (p.path.length() < PathId::kMaxHops) {
    p.path.push_origin(cfg_.forged_as_base +
                       static_cast<std::uint32_t>(identity_));
  }
  p.type = type;
  p.size_bytes = type == PacketType::kSyn ? kSynBytes : cfg_.packet_bytes;
  p.sent_time = now;
  return p;
}

void StateExhaustSource::rotate(TimeSec now) {
  ++identity_;
  if (cfg_.send_syn) {
    // The SYN plants a flow record (and, replied-to, would carry a
    // capability — but the identity is abandoned before it could use one).
    Packet p = make_packet(PacketType::kSyn, now);
    Link* out = host_->network()->next_hop(host_->id(), cfg_.dst);
    assert(out);
    out->send(std::move(p));
    ++packets_sent_;
  }
}

void StateExhaustSource::tick() {
  if (stopped_) return;
  const TimeSec now = sim_->now();
  // Rotation is paced by the churn rate, decoupled from the send budget:
  // escalation mints identities faster without raising the byte load.
  while (now >= next_rotate_) {
    rotate(now);
    next_rotate_ += 1.0 / churn_;
  }
  Packet p = make_packet(PacketType::kData, now);
  p.seq = next_seq_++;
  Link* out = host_->network()->next_hop(host_->id(), cfg_.dst);
  out->send(std::move(p));
  ++packets_sent_;
  ++sent_window_;
  sim_->schedule_in(transmission_time(cfg_.packet_bytes, cfg_.rate),
                    [this] { tick(); });
}

void StateExhaustSource::check() {
  if (stopped_) return;
  // Closed loop: when the defense sheds (almost) everything this source
  // offers — overload-mode capability tightening, coarse-path confinement —
  // double the churn rate and try to outrun eviction. Spoofed-sender runs
  // never see feedback at all and escalate straight to the ceiling, which is
  // exactly the worst case the state budgets must absorb.
  if (sent_window_ > 0) {
    const double delivered = static_cast<double>(acks_window_) /
                             static_cast<double>(sent_window_);
    if (delivered < cfg_.starve_ratio && churn_ < cfg_.churn_max) {
      churn_ = std::min(cfg_.churn_max, churn_ * 2.0);
      ++escalations_;
    }
  }
  sent_window_ = 0;
  acks_window_ = 0;
  sim_->schedule_in(cfg_.check_interval, [this] { check(); });
}

void StateExhaustSource::on_packet(Packet&& p) {
  // SYN-ACKs are ignored on purpose: the attacker never uses the capability
  // it was offered — completing handshakes would legitimize its traffic.
  if (p.type == PacketType::kAck) {
    ++acks_window_;
    ++acks_total_;
  }
}

}  // namespace floc
