#include "transport/tcp_source.h"

#include <algorithm>
#include <cassert>

#include "netsim/link.h"
#include "util/units.h"

namespace floc {

TcpSource::TcpSource(Simulator* sim, Host* host, TcpSourceConfig cfg)
    : sim_(sim), host_(host), cfg_(cfg), ssthresh_(cfg.initial_ssthresh) {
  host_->register_agent(cfg_.flow, this);
}

void TcpSource::start_at(TimeSec t) {
  sim_->schedule_at(t, [this] {
    if (state_ == State::kIdle) send_syn();
  });
}

void TcpSource::set_tracer(telemetry::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ == nullptr) {
    syn_span_ = 0;
    send_spans_.clear();
  }
}

void TcpSource::trace_syn(Packet& p) {
  if (syn_span_ == 0) {
    syn_span_ = tracer_->begin(sim_->now(), cfg_.flow, /*parent=*/0,
                               telemetry::SpanKind::kTcpHandshake,
                               host_->id(), cfg_.flow, /*seq=*/0,
                               p.size_bytes);
  } else {
    tracer_->annotate(syn_span_, "retx", "1");  // SYN timeout: same span
  }
  p.span = SpanContext{cfg_.flow, syn_span_, 0};
}

void TcpSource::trace_send(Packet& p, std::uint64_t seq, bool is_retransmit) {
  auto it = send_spans_.find(seq);
  if (it == send_spans_.end()) {
    const telemetry::SpanId id = tracer_->begin(
        sim_->now(), cfg_.flow, /*parent=*/0, telemetry::SpanKind::kTcpSend,
        host_->id(), cfg_.flow, seq, p.size_bytes);
    it = send_spans_.emplace(seq, id).first;
  } else if (is_retransmit) {
    tracer_->annotate(it->second, "retx", "1");
  }
  p.span = SpanContext{cfg_.flow, it->second, 0};
}

void TcpSource::trace_acked(std::uint64_t from_seq,
                            std::uint64_t acked_through) {
  for (std::uint64_t seq = from_seq; seq < acked_through; ++seq) {
    const auto it = send_spans_.find(seq);
    if (it == send_spans_.end()) continue;
    tracer_->end(it->second, sim_->now());
    send_spans_.erase(it);
  }
}

void TcpSource::send_syn() {
  state_ = State::kSynSent;
  Packet p;
  p.flow = cfg_.flow;
  p.src = host_->addr();
  p.dst = cfg_.dst;
  p.path = cfg_.path;
  p.type = PacketType::kSyn;
  p.size_bytes = kAckPacketBytes;
  p.sent_time = sim_->now();
  if (tracer_ != nullptr) trace_syn(p);
  Link* out = host_->network()->next_hop(host_->id(), cfg_.dst);
  assert(out && "source host must have a route to the destination");
  out->send(std::move(p));
  last_send_or_ack_ = sim_->now();
  arm_timer();
}

void TcpSource::on_packet(Packet&& p) {
  telemetry::ScopedTimer timer(prof_on_packet_);
  switch (p.type) {
    case PacketType::kSynAck:
      if (state_ == State::kSynSent) {
        state_ = State::kEstablished;
        cap0_ = p.cap0;
        cap1_ = p.cap1;
        if (tracer_ != nullptr && syn_span_ != 0) {
          tracer_->end(syn_span_, sim_->now());
        }
        // The handshake gives the first RTT sample.
        on_new_ack(0, sim_->now() - p.sent_time);
        send_available();
      }
      break;
    case PacketType::kAck:
      if (state_ == State::kEstablished) {
        // Adopt the capability echoed by the receiver: after a router key
        // rotation the re-issued (re-stamped) words come back in ACKs, and
        // switching to them keeps the flow verifiable past the grace window.
        if (p.cap0 != 0 && (p.cap0 != cap0_ || p.cap1 != cap1_)) {
          cap0_ = p.cap0;
          cap1_ = p.cap1;
        }
        handle_ack(p);
      }
      break;
    default:
      break;
  }
}

void TcpSource::send_available() {
  if (state_ != State::kEstablished) return;
  const auto window = static_cast<std::uint64_t>(cwnd_);
  while (next_seq_ - snd_una_ < window &&
         (cfg_.total_packets == 0 || next_seq_ < cfg_.total_packets)) {
    transmit(next_seq_, /*is_retransmit=*/false);
    ++next_seq_;
  }
}

void TcpSource::transmit(std::uint64_t seq, bool is_retransmit) {
  Packet p;
  p.flow = cfg_.flow;
  p.src = host_->addr();
  p.dst = cfg_.dst;
  p.path = cfg_.path;
  p.type = PacketType::kData;
  p.size_bytes = cfg_.packet_bytes;
  p.seq = seq;
  p.cap0 = cap0_;
  p.cap1 = cap1_;
  p.sent_time = sim_->now();
  if (tracer_ != nullptr) trace_send(p, seq, is_retransmit);
  Link* out = host_->network()->next_hop(host_->id(), cfg_.dst);
  out->send(std::move(p));
  ++packets_sent_;
  if (is_retransmit) ++retransmits_;

  // Time one segment per window for RTT sampling (Karn: never a retransmit).
  if (!is_retransmit && timed_sent_ < 0.0) {
    timed_seq_ = seq;
    timed_sent_ = sim_->now();
  }
  last_send_or_ack_ = sim_->now();
  arm_timer();
}

void TcpSource::handle_ack(const Packet& p) {
  if (p.ack > snd_una_) {
    TimeSec rtt_sample = -1.0;
    if (timed_sent_ >= 0.0 && p.ack > timed_seq_) {
      rtt_sample = sim_->now() - timed_sent_;
      timed_sent_ = -1.0;
    }
    if (tracer_ != nullptr) trace_acked(snd_una_, p.ack);
    snd_una_ = p.ack;
    dupacks_ = 0;
    if (in_recovery_) {
      if (snd_una_ >= recover_) {
        in_recovery_ = false;  // full ACK: loss window repaired
      } else {
        // NewReno partial ACK: another segment of the loss window is
        // missing — retransmit it immediately instead of waiting for three
        // more duplicate ACKs or the retransmission timer.
        transmit(snd_una_, /*is_retransmit=*/true);
      }
    }
    on_new_ack(p.ack, rtt_sample);
    if (cfg_.total_packets != 0 && snd_una_ >= cfg_.total_packets) {
      complete();
      return;
    }
    send_available();
  } else if (p.ack == snd_una_) {
    if (next_seq_ == snd_una_) return;  // nothing outstanding; stray ack
    ++dupacks_;
    if (dupacks_ == 3 && !in_recovery_) enter_fast_retransmit();
  }
}

void TcpSource::on_new_ack(std::uint64_t, TimeSec rtt_sample) {
  if (rtt_sample >= 0.0) {
    if (rtt_hist_ != nullptr) rtt_hist_->observe(rtt_sample);
    if (!rtt_seeded_) {
      srtt_ = rtt_sample;
      rttvar_ = rtt_sample / 2.0;
      rtt_seeded_ = true;
    } else {
      rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - rtt_sample);
      srtt_ = 0.875 * srtt_ + 0.125 * rtt_sample;
    }
    backoff_ = 1;
  }
  // Window growth: slow start below ssthresh, else +1/cwnd per ACK. Recovery
  // freezes growth until the loss window is fully acknowledged.
  if (!in_recovery_) {
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;
    } else {
      cwnd_ += 1.0 / cwnd_;
    }
    cwnd_ = std::min(cwnd_, cfg_.max_cwnd);
  }
  last_send_or_ack_ = sim_->now();
}

void TcpSource::enter_fast_retransmit() {
  const double flight = static_cast<double>(next_seq_ - snd_una_);
  ssthresh_ = std::max(flight / 2.0, 2.0);
  cwnd_ = ssthresh_;
  in_recovery_ = true;
  recover_ = next_seq_;
  transmit(snd_una_, /*is_retransmit=*/true);
}

TimeSec TcpSource::rto() const {
  const TimeSec base =
      rtt_seeded_ ? std::max(cfg_.min_rto, srtt_ + 4.0 * rttvar_) : 1.0;
  return std::min(cfg_.max_rto, base * backoff_);
}

void TcpSource::arm_timer() {
  if (timer_armed_) return;
  timer_armed_ = true;
  const std::uint64_t gen = ++timer_gen_;
  sim_->schedule_in(rto(), [this, gen] {
    if (gen != timer_gen_) return;
    timer_armed_ = false;
    on_timer();
  });
}

void TcpSource::on_timer() {
  if (state_ == State::kDone || state_ == State::kIdle) return;
  const TimeSec idle = sim_->now() - last_send_or_ack_;
  if (idle + 1e-12 < rto()) {
    // Activity since the timer was set; re-arm for the remainder.
    timer_armed_ = true;
    const std::uint64_t gen = ++timer_gen_;
    sim_->schedule_in(rto() - idle, [this, gen] {
      if (gen != timer_gen_) return;
      timer_armed_ = false;
      on_timer();
    });
    return;
  }
  ++timeouts_;
  backoff_ = std::min(backoff_ * 2, 64);
  if (state_ == State::kSynSent) {
    send_syn();
    return;
  }
  if (next_seq_ == snd_una_ && cfg_.total_packets != 0 &&
      snd_una_ >= cfg_.total_packets) {
    return;  // raced with completion
  }
  // Timeout: collapse to one segment and go-back-N from the hole.
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
  dupacks_ = 0;
  in_recovery_ = false;
  timed_sent_ = -1.0;
  next_seq_ = snd_una_;
  send_available();
}

void TcpSource::complete() {
  if (state_ == State::kDone) return;
  state_ = State::kDone;
  finish_time_ = sim_->now();
  ++timer_gen_;  // cancel any pending timer
  if (completion_) completion_(finish_time_);
}

void TcpSource::register_metrics(telemetry::MetricRegistry& reg,
                                 const std::string& prefix) const {
  reg.gauge_fn(prefix + ".cwnd", [this] { return cwnd_; });
  reg.gauge_fn(prefix + ".ssthresh", [this] { return ssthresh_; });
  reg.gauge_fn(prefix + ".srtt", [this] { return srtt_; });
  reg.gauge_fn(prefix + ".packets_sent",
               [this] { return static_cast<double>(packets_sent_); });
  reg.gauge_fn(prefix + ".retransmits",
               [this] { return static_cast<double>(retransmits_); });
  reg.gauge_fn(prefix + ".timeouts",
               [this] { return static_cast<double>(timeouts_); });
}

}  // namespace floc
