// FlowMonitor: labels every flow (legitimate/attack, path, path class) and
// records delivered goodput so experiments can report per-flow, per-path and
// per-class bandwidth over arbitrary measurement windows.
//
// Measurement model: the monitor keeps a cumulative delivered-byte counter
// per flow plus named snapshots of all counters; bandwidth over [A, B] is the
// counter difference between snapshots divided by the elapsed time. It can
// additionally bucket per-path bytes into a coarse time series (Fig. 6).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "netsim/packet.h"
#include "util/stats.h"
#include "util/units.h"

namespace floc {

enum class FlowClass : std::uint8_t { kLegitimate, kAttack };

struct FlowLabel {
  FlowClass cls = FlowClass::kLegitimate;
  bool on_attack_path = false;  // originates in a bot-contaminated domain
  std::uint64_t path_key = 0;   // PathId::key() of the flow's domain path
  std::string path_name;        // human-readable path tag
};

class FlowMonitor {
 public:
  void register_flow(FlowId flow, FlowLabel label);
  bool is_registered(FlowId flow) const { return index_.count(flow) != 0; }
  const FlowLabel& label(FlowId flow) const;

  // Delivery callback (invoked by sinks).
  void on_deliver(FlowId flow, TimeSec now, double bytes);

  // Optional per-path time series with the given bucket width (seconds).
  void enable_path_series(TimeSec bucket_width);

  // Capture the cumulative counters under `name` at time `now`.
  void snapshot(const std::string& name, TimeSec now);

  // --- Queries over a window delimited by two snapshots -------------------
  double flow_bps(FlowId flow, const std::string& snap_a,
                  const std::string& snap_b) const;

  using FlowPredicate = std::function<bool(const FlowLabel&)>;

  // CDF of per-flow bandwidth over the window for flows matching `pred`.
  Cdf bandwidth_cdf(const FlowPredicate& pred, const std::string& snap_a,
                    const std::string& snap_b) const;

  // Aggregate bandwidth (bits/s) of all flows matching `pred`.
  double class_bps(const FlowPredicate& pred, const std::string& snap_a,
                   const std::string& snap_b) const;

  // Aggregate bandwidth keyed by path over the window.
  std::map<std::string, double> path_bps(const std::string& snap_a,
                                         const std::string& snap_b) const;

  // Per-path series value: mean bps of path `path_name` in bucket i.
  std::vector<double> path_series_bps(const std::string& path_name) const;

  std::size_t flow_count() const { return labels_.size(); }
  double total_bytes(FlowId flow) const;

  // Cumulative delivered bytes over all flows matching `pred` (no snapshots
  // needed) — the natural feed for a telemetry gauge, which a sampler turns
  // into per-interval goodput via a rate column.
  double class_cumulative_bytes(const FlowPredicate& pred) const;

  // Common predicates.
  static bool is_legit_on_legit_path(const FlowLabel& l) {
    return l.cls == FlowClass::kLegitimate && !l.on_attack_path;
  }
  static bool is_legit_on_attack_path(const FlowLabel& l) {
    return l.cls == FlowClass::kLegitimate && l.on_attack_path;
  }
  static bool is_attack(const FlowLabel& l) { return l.cls == FlowClass::kAttack; }

 private:
  struct Snapshot {
    TimeSec time = 0.0;
    std::vector<double> cumulative;  // by dense flow index
  };
  const Snapshot& snap(const std::string& name) const;

  std::unordered_map<FlowId, std::size_t> index_;  // flow -> dense index
  std::vector<FlowLabel> labels_;
  std::vector<double> cumulative_bytes_;
  std::map<std::string, Snapshot> snapshots_;

  // Per-path bucketed byte series.
  bool series_enabled_ = false;
  TimeSec bucket_width_ = 1.0;
  std::map<std::string, std::vector<double>> path_buckets_;
};

}  // namespace floc
