// Shrew (low-rate, pulsed) attack source [Kuzmanovic & Knightly]: transmits
// at `burst_rate` for `burst_len` seconds out of every `period` seconds
// (Section VI-A uses burst_len = 0.25*RTT, period = RTT). All Shrew sources
// in an experiment share phase so the bursts align, maximizing attack effect.
#pragma once

#include <cmath>

#include "transport/cbr_source.h"

namespace floc {

struct ShrewConfig {
  CbrConfig cbr;          // rate here = burst (peak) rate
  TimeSec burst_len = 0.02;
  TimeSec period = 0.08;
  TimeSec phase = 0.0;    // common phase offset for coordinated bursts
};

class ShrewSource : public CbrSource {
 public:
  ShrewSource(Simulator* sim, Host* host, ShrewConfig cfg)
      : CbrSource(sim, host, cfg.cbr), shrew_(cfg) {}

  bool gate_open(TimeSec now) const override {
    const double t = now - shrew_.phase;
    const double pos = t - shrew_.period * std::floor(t / shrew_.period);
    return pos < shrew_.burst_len;
  }

 private:
  ShrewConfig shrew_;
};

}  // namespace floc
