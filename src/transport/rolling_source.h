// Timed-attack sources (Section II): strategies that evade filter-based
// defenses by changing attack strength or location in a coordinated way.
//
//  * OnOffSource — the whole botnet blasts for `on_time`, goes silent for
//    `off_time` (long-period square wave; distinct from Shrew's sub-RTT
//    pulses). Remote filters installed during the ON phase expire or throttle
//    nothing during OFF, then the next ON phase hits before re-detection.
//  * RollingSource — the botnet is partitioned into `group_count` groups and
//    only one group attacks at a time, rotating every `slot`: the attack
//    "location" keeps moving, so aggregate-history-based defenses keep
//    chasing the previous group.
#pragma once

#include <cmath>

#include "transport/cbr_source.h"

namespace floc {

struct OnOffConfig {
  CbrConfig cbr;        // rate = ON-phase rate
  TimeSec on_time = 4.0;
  TimeSec off_time = 8.0;
  TimeSec phase = 0.0;
};

class OnOffSource : public CbrSource {
 public:
  OnOffSource(Simulator* sim, Host* host, OnOffConfig cfg)
      : CbrSource(sim, host, cfg.cbr), onoff_(cfg) {}

  bool gate_open(TimeSec now) const override {
    const double period = onoff_.on_time + onoff_.off_time;
    const double t = now - onoff_.phase;
    const double pos = t - period * std::floor(t / period);
    return pos < onoff_.on_time;
  }

 private:
  OnOffConfig onoff_;
};

struct RollingConfig {
  CbrConfig cbr;
  int group = 0;        // this source's rotation group
  int group_count = 1;  // total groups
  TimeSec slot = 5.0;   // active time per group
};

class RollingSource : public CbrSource {
 public:
  RollingSource(Simulator* sim, Host* host, RollingConfig cfg)
      : CbrSource(sim, host, cfg.cbr), rolling_(cfg) {}

  bool gate_open(TimeSec now) const override {
    const auto slot_idx = static_cast<long>(now / rolling_.slot);
    return static_cast<int>(slot_idx % rolling_.group_count) == rolling_.group;
  }

 private:
  RollingConfig rolling_;
};

}  // namespace floc
