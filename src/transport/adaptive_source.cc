#include "transport/adaptive_source.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "netsim/link.h"

namespace floc {

// ---------------------------------------------------------------------------
// AdaptiveShrewSource

AdaptiveShrewSource::AdaptiveShrewSource(Simulator* sim, Host* host,
                                         AdaptiveShrewConfig cfg)
    : CbrSource(sim, host, cfg.cbr),
      acfg_(cfg),
      period_(cfg.init_period),
      duty_(cfg.duty),
      duty_hi_(cfg.max_duty) {
  assert(acfg_.min_period > 0.0 && acfg_.min_period <= acfg_.max_period);
  assert(acfg_.min_duty > 0.0 && acfg_.max_duty <= 1.0);
}

bool AdaptiveShrewSource::gate_open(TimeSec now) const {
  const double pos = std::fmod(now, period_);
  return pos < duty_ * period_;
}

void AdaptiveShrewSource::on_feedback(const Packet& p, TimeSec now) {
  if (!epoch_scheduled_) {
    // First feedback (the SYN-ACK): the flow is live, start the adaptation
    // clock. Anchoring it to feedback rather than the constructor keeps
    // sources that never complete a handshake from adapting on no data.
    epoch_scheduled_ = true;
    sim()->schedule_in(acfg_.epoch, [this] { adapt(); });
  }
  if (p.type != PacketType::kAck) return;
  ++delivered_epoch_;
  // The seq echo tells which segment was just delivered; a jump past
  // last_echo_+1 means the segments in between were dropped. Per-flow FIFO
  // paths deliver in order, so a gap is loss, not reordering. Consecutive
  // losses within a fraction of the pulse period belong to the same
  // burst-tail clipping event; the spacing between burst starts is the
  // defense's refill period leaking through.
  const std::uint64_t echo = p.seq;
  const std::uint64_t lost =
      echo_seen_ && echo > last_echo_ + 1 ? echo - last_echo_ - 1 : 0;
  if (echo >= last_echo_ || !echo_seen_) {
    last_echo_ = echo;
    echo_seen_ = true;
  }
  if (lost == 0) return;
  lost_epoch_ += lost;
  const TimeSec gap = std::max(0.05, 0.25 * period_);
  if (last_drop_ < 0.0 || now - last_drop_ > gap) {
    if (last_burst_start_ >= 0.0) {
      const TimeSec spacing = now - last_burst_start_;
      spacing_ewma_ =
          spacing_ewma_ < 0.0 ? spacing : 0.7 * spacing_ewma_ + 0.3 * spacing;
    }
    last_burst_start_ = now;
    ++drop_events_;
  }
  last_drop_ = now;
}

void AdaptiveShrewSource::adapt() {
  const TimeSec old_period = period_;
  const double old_duty = duty_;
  if (delivered_epoch_ > 0 && spacing_ewma_ >= acfg_.min_period &&
      spacing_ewma_ <= acfg_.max_period) {
    // Damped step of the pulse period toward the observed drop-burst spacing
    // (≈ the victim's effective token period T_Si). Full jumps would chase
    // measurement noise; half steps converge geometrically. Fully starved
    // epochs (no ack advancement) are excluded: their drop spacing reflects
    // the latch's preferential dropper, not the refill period.
    period_ += 0.5 * (spacing_ewma_ - period_);
    period_ = std::clamp(period_, acfg_.min_period, acfg_.max_period);
  }
  if (lost_epoch_ > 0) {
    // Bursts are clipping the bucket: remember this duty as the detection
    // ceiling and back off multiplicatively below it.
    duty_hi_ = duty_;
    duty_ = std::max(acfg_.min_duty, duty_ * 0.6);
  } else if (delivered_epoch_ > 0) {
    // Clean epoch: bisect back up toward the last observed ceiling so the
    // search hovers at the admission edge instead of sawtoothing from the
    // floor, and let the ceiling creep so a relaxed defense gets re-probed.
    duty_ = duty_hi_ > duty_
                ? std::min(acfg_.max_duty, 0.5 * (duty_ + duty_hi_))
                : std::min(acfg_.max_duty, duty_ * 1.25);
    duty_hi_ = std::min(acfg_.max_duty, duty_hi_ * 1.05);
  }
  if (std::abs(period_ - old_period) > 1e-9 ||
      std::abs(duty_ - old_duty) > 1e-9) {
    ++adaptations_;
  }
  lost_epoch_ = 0;
  delivered_epoch_ = 0;
  sim()->schedule_in(acfg_.epoch, [this] { adapt(); });
}

// ---------------------------------------------------------------------------
// DutyCycleSource

DutyCycleSource::DutyCycleSource(Simulator* sim, Host* host,
                                 DutyCycleConfig cfg)
    : CbrSource(sim, host, cfg.cbr), dcfg_(cfg), quiet_len_(cfg.quiet_base) {
  assert(dcfg_.check_interval > 0.0);
  assert(dcfg_.quiet_base > 0.0 && dcfg_.quiet_base <= dcfg_.quiet_max);
}

void DutyCycleSource::on_feedback(const Packet& p, TimeSec now) {
  if (!check_scheduled_) {
    check_scheduled_ = true;
    sim()->schedule_in(dcfg_.check_interval, [this] { check(); });
  }
  (void)now;
  // Every ACK is one delivered data packet (the sink acks each delivery);
  // cumulative-ack advancement would freeze at the first hole since this
  // source never retransmits.
  if (p.type == PacketType::kAck) ++acks_window_;
}

void DutyCycleSource::check() {
  const TimeSec now = sim()->now();
  if (quiet_) {
    if (now >= wake_time_) quiet_ = false;
  } else {
    const std::uint64_t sent_window = packets_sent() - last_sent_probe_;
    // A latched path still services the fair share, so "no progress at all"
    // almost never happens; what collapses is the *delivered fraction*. Judge
    // starvation by acked/sent over the window, with a minimum send count so
    // a sparse window can't fake a collapse.
    if (sent_window >= 8) {
      const double ratio = static_cast<double>(acks_window_) /
                           static_cast<double>(sent_window);
      if (ratio < dcfg_.starve_ratio) {
        // Latched: we are blasting and (almost) nothing comes back. Go dark
        // until the defense's calm-streak release should have fired.
        ++latch_detections_;
        if (wake_time_ >= 0.0 && now - wake_time_ < dcfg_.relapse_window) {
          // Starved again right after waking — the quiet period undershot
          // the release hysteresis. Double it (attacker-side binary probe
          // of attack_release).
          quiet_len_ = std::min(dcfg_.quiet_max, quiet_len_ * 2.0);
        }
        quiet_ = true;
        wake_time_ = now + quiet_len_;
      } else if (ratio > 0.9 &&
                 now - std::max(wake_time_, last_shrink_) >
                     dcfg_.recover_after) {
        // Sustained goodput: the estimate may be padded; shrink toward base
        // to reclaim ON-time.
        quiet_len_ = std::max(dcfg_.quiet_base, quiet_len_ * 0.5);
        last_shrink_ = now;
      }
    }
  }
  acks_window_ = 0;
  last_sent_probe_ = packets_sent();
  sim()->schedule_in(dcfg_.check_interval, [this] { check(); });
}

// ---------------------------------------------------------------------------
// ProbingCovertSource

ProbingCovertSource::ProbingCovertSource(Simulator* sim, Host* host,
                                         ProbingCovertConfig cfg)
    : sim_(sim), host_(host), cfg_(cfg) {
  assert(cfg_.rate > 0.0);
  assert(!cfg_.dsts.empty());
  assert(cfg_.active_flows > 0 && cfg_.active_flows <= cfg_.pool);
  // Claim the whole pool up front so the flow universe is static: the
  // monitor can classify every id before the run, and rotation never has to
  // mutate host routing mid-flight.
  for (int i = 0; i < cfg_.pool; ++i) {
    host_->register_agent(cfg_.first_flow + static_cast<FlowId>(i), this);
  }
  for (int i = 0; i < cfg_.active_flows; ++i) {
    FlowState fs;
    fs.flow = cfg_.first_flow + static_cast<FlowId>(next_pool_idx_++);
    fs.dst = cfg_.dsts[next_dst_idx_++ % cfg_.dsts.size()];
    active_.push_back(fs);
  }
}

std::vector<FlowId> ProbingCovertSource::flow_pool() const {
  std::vector<FlowId> out;
  out.reserve(static_cast<std::size_t>(cfg_.pool));
  for (int i = 0; i < cfg_.pool; ++i) {
    out.push_back(cfg_.first_flow + static_cast<FlowId>(i));
  }
  return out;
}

void ProbingCovertSource::start_at(TimeSec t) {
  sim_->schedule_at(t, [this] { begin(); });
}

void ProbingCovertSource::stop_at(TimeSec t) {
  sim_->schedule_at(t, [this] { stopped_ = true; });
}

void ProbingCovertSource::begin() {
  if (running_ || stopped_) return;
  running_ = true;
  for (FlowState& fs : active_) handshake(fs);
  tick();
  sim_->schedule_in(cfg_.probe_interval, [this] { probe(); });
}

void ProbingCovertSource::handshake(FlowState& fs) {
  Packet p;
  p.flow = fs.flow;
  p.src = host_->addr();
  p.dst = fs.dst;
  p.path = cfg_.path;
  p.type = PacketType::kSyn;
  p.size_bytes = kAckPacketBytes;
  p.sent_time = sim_->now();
  Link* out = host_->network()->next_hop(host_->id(), fs.dst);
  assert(out);
  out->send(std::move(p));
  const FlowId flow = fs.flow;
  sim_->schedule_in(1.0, [this, flow] {
    FlowState* cur = find(flow);
    if (cur && !cur->running && !stopped_) handshake(*cur);
  });
}

void ProbingCovertSource::tick() {
  if (stopped_) return;
  // The configured rate is a *total* budget: one packet per tick, dealt
  // round-robin over whichever active flows have completed their handshake.
  std::size_t tried = 0;
  while (tried++ < active_.size()) {
    FlowState& fs = active_[rr_++ % active_.size()];
    if (fs.running) {
      send_data(fs);
      break;
    }
  }
  sim_->schedule_in(transmission_time(cfg_.packet_bytes, cfg_.rate),
                    [this] { tick(); });
}

void ProbingCovertSource::send_data(FlowState& fs) {
  Packet p;
  p.flow = fs.flow;
  p.src = host_->addr();
  p.dst = fs.dst;
  p.path = cfg_.path;
  p.type = PacketType::kData;
  p.size_bytes = cfg_.packet_bytes;
  p.seq = fs.next_seq++;
  p.cap0 = fs.cap0;
  p.cap1 = fs.cap1;
  p.sent_time = sim_->now();
  Link* out = host_->network()->next_hop(host_->id(), fs.dst);
  out->send(std::move(p));
  ++packets_sent_;
}

void ProbingCovertSource::probe() {
  if (stopped_) return;
  // Retire the most-starved flow whose epoch goodput fell below the
  // retire threshold relative to the best performer, and bring a fresh
  // (flow id, destination) pair out of the pool in its place — re-rolling
  // whatever per-flow accounting slot the defense used to punish it. One
  // rotation per probe keeps the churn rate itself below suspicion.
  std::uint64_t best = 0;
  for (const FlowState& fs : active_) best = std::max(best, fs.acks_epoch);
  if (best > 0 && next_pool_idx_ < cfg_.pool) {
    std::size_t worst_idx = active_.size();
    std::uint64_t worst = best;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (!active_[i].running) continue;  // handshake still pending
      if (active_[i].acks_epoch < worst) {
        worst = active_[i].acks_epoch;
        worst_idx = i;
      }
    }
    if (worst_idx < active_.size() &&
        static_cast<double>(worst) <
            cfg_.retire_below * static_cast<double>(best)) {
      FlowState fresh;
      fresh.flow = cfg_.first_flow + static_cast<FlowId>(next_pool_idx_++);
      fresh.dst = cfg_.dsts[next_dst_idx_++ % cfg_.dsts.size()];
      active_[worst_idx] = fresh;
      handshake(active_[worst_idx]);
      ++rotations_;
    }
  }
  for (FlowState& fs : active_) fs.acks_epoch = 0;
  sim_->schedule_in(cfg_.probe_interval, [this] { probe(); });
}

ProbingCovertSource::FlowState* ProbingCovertSource::find(FlowId flow) {
  for (FlowState& fs : active_) {
    if (fs.flow == flow) return &fs;
  }
  return nullptr;
}

void ProbingCovertSource::on_packet(Packet&& p) {
  FlowState* fs = find(p.flow);
  if (!fs) return;  // ack for a retired flow
  if (p.type == PacketType::kSynAck) {
    if (!fs->running) {
      fs->cap0 = p.cap0;
      fs->cap1 = p.cap1;
      fs->running = true;
    }
  } else if (p.type == PacketType::kAck) {
    if (p.cap0 != 0) {
      // Adopt re-stamped capability words after a key rotation.
      fs->cap0 = p.cap0;
      fs->cap1 = p.cap1;
    }
    // Delivered-packet count (one ACK per delivery): cumulative-ack
    // advancement would freeze at the first hole and make every flow look
    // equally starved, disabling rotation.
    ++fs->acks_epoch;
  }
}

}  // namespace floc
