#include "transport/cbr_source.h"

#include <cassert>

#include "netsim/link.h"

namespace floc {

CbrSource::CbrSource(Simulator* sim, Host* host, CbrConfig cfg)
    : sim_(sim), host_(host), cfg_(cfg) {
  assert(cfg_.rate > 0.0);
  host_->register_agent(cfg_.flow, this);
}

void CbrSource::start_at(TimeSec t) {
  sim_->schedule_at(t, [this] { begin(); });
}

void CbrSource::stop_at(TimeSec t) {
  sim_->schedule_at(t, [this] { stopped_ = true; });
}

void CbrSource::begin() {
  if (running_ || stopped_) return;
  if (cfg_.do_handshake) {
    Packet p;
    p.flow = cfg_.flow;
    p.src = host_->addr();
    p.dst = cfg_.dst;
    p.path = cfg_.path;
    p.type = PacketType::kSyn;
    p.size_bytes = kAckPacketBytes;
    p.sent_time = sim_->now();
    Link* out = host_->network()->next_hop(host_->id(), cfg_.dst);
    assert(out);
    out->send(std::move(p));
    // Transmission begins when the SYN-ACK returns (see on_packet); if the
    // handshake is lost in the flood, retry after a second.
    sim_->schedule_in(1.0, [this] {
      if (!running_ && !stopped_) begin();
    });
  } else {
    running_ = true;
    tick();
  }
}

void CbrSource::on_packet(Packet&& p) {
  if (p.type == PacketType::kSynAck && !running_ && !stopped_) {
    cap0_ = p.cap0;
    cap1_ = p.cap1;
    running_ = true;
    tick();
  } else if (p.type == PacketType::kAck && p.cap0 != 0) {
    // Rate-unresponsive, but capability-aware: adopt re-stamped words echoed
    // after a key rotation (a real bot would, too — capabilities identify
    // rather than exclude attack flows).
    cap0_ = p.cap0;
    cap1_ = p.cap1;
  }
  if (p.type == PacketType::kSynAck || p.type == PacketType::kAck) {
    on_feedback(p, sim_->now());
  }
  // Data ACKs otherwise ignored: the base source is unresponsive by design.
}

bool CbrSource::gate_open(TimeSec) const { return true; }

void CbrSource::tick() {
  if (stopped_) return;
  if (gate_open(sim_->now())) send_data();
  sim_->schedule_in(transmission_time(cfg_.packet_bytes, cfg_.rate),
                    [this] { tick(); });
}

void CbrSource::send_data() {
  Packet p;
  p.flow = cfg_.flow;
  p.src = host_->addr();
  p.dst = cfg_.dst;
  p.path = cfg_.path;
  p.type = PacketType::kData;
  p.size_bytes = cfg_.packet_bytes;
  p.seq = next_seq_++;
  p.cap0 = cap0_;
  p.cap1 = cap1_;
  p.sent_time = sim_->now();
  Link* out = host_->network()->next_hop(host_->id(), cfg_.dst);
  out->send(std::move(p));
  ++packets_sent_;
}

}  // namespace floc
