// Closed-loop (adaptive) attack sources: adversaries that observe their own
// feedback — ACK stalls (drops), cumulative-ack goodput, send-to-ACK timing —
// and adapt their strategy to game the defense's detector, in the spirit of
// Kuzmanovic & Knightly's shrew attack on RTO timers.
//
//  * AdaptiveShrewSource — binary-searches its pulse period onto the victim's
//    effective token period T_Si: the spacing between observed drop bursts
//    approximates the bucket refill period, so the source steers its period
//    toward that spacing and sheds burst volume until it fits inside one
//    bucket per period — maximal goodput that never trips the MTD detector.
//  * DutyCycleSource — detects being latched (cumulative-ack progress
//    collapsing while it transmits), goes quiet long enough for the defense's
//    calm-streak release to fire, then resumes blasting. If the quiet period
//    proves too short (starved again right after resuming) it doubles the
//    estimate — an attacker-side binary probe of the release hysteresis.
//  * ProbingCovertSource — drives a pool of low-rate flows fanned out over
//    destinations/flow-ids and rotates away from flows whose goodput
//    collapsed: a hunt for capability/aggregation slots the defense is not
//    (yet) penalizing.
//
// All adaptation state updates from on_feedback() and seeded epoch timers
// only, so adaptive runs stay exactly reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "transport/cbr_source.h"

namespace floc {

struct AdaptiveShrewConfig {
  CbrConfig cbr;               // rate = burst (peak) rate
  TimeSec init_period = 0.2;   // starting pulse period guess
  TimeSec min_period = 0.01;
  // Periods beyond a few token-refill windows are counterproductive: the
  // burst volume grows with the period and clips the (non-accumulating)
  // bucket, so sparse-drop spacing estimates must not drag the period up.
  TimeSec max_period = 0.5;
  double duty = 0.25;          // initial burst fraction of the period
  double min_duty = 0.02;
  double max_duty = 0.5;
  TimeSec epoch = 0.25;        // adaptation cadence
};

class AdaptiveShrewSource : public CbrSource {
 public:
  AdaptiveShrewSource(Simulator* sim, Host* host, AdaptiveShrewConfig cfg);

  bool gate_open(TimeSec now) const override;

  TimeSec period() const { return period_; }
  double duty() const { return duty_; }
  std::uint64_t drop_events() const { return drop_events_; }
  int adaptations() const { return adaptations_; }

 protected:
  void on_feedback(const Packet& p, TimeSec now) override;

 private:
  void adapt();

  AdaptiveShrewConfig acfg_;
  TimeSec period_;
  double duty_;
  double duty_hi_;              // last duty the defense clipped (search ceiling)
  bool epoch_scheduled_ = false;

  // Observation state, fed by the SACK-style seq echo in ACKs (cumulative
  // acks freeze at the first hole for a source that never retransmits).
  std::uint64_t last_echo_ = 0;       // highest delivered seq echoed back
  bool echo_seen_ = false;
  std::uint64_t lost_epoch_ = 0;      // seq-echo gaps this epoch (drops)
  std::uint64_t delivered_epoch_ = 0; // acks (delivered packets) this epoch
  std::uint64_t drop_events_ = 0;     // distinct drop bursts observed
  TimeSec last_drop_ = -1.0;          // last observed-loss time
  TimeSec last_burst_start_ = -1.0;   // start of the current drop burst
  TimeSec spacing_ewma_ = -1.0;       // inter-drop-burst spacing ≈ T_Si
  int adaptations_ = 0;
};

struct DutyCycleConfig {
  CbrConfig cbr;                  // rate = ON-phase blast rate
  TimeSec check_interval = 0.25;  // self-monitoring cadence
  // Acked/sent below this => latched. Set well under the delivered fraction
  // a *confined but unlatched* blast sees (its path allocation over its
  // blast rate): going quiet merely because FLoc confines the path would
  // waste ON-time the defense was going to grant anyway.
  double starve_ratio = 0.05;
  TimeSec quiet_base = 1.5;       // first quiet-period guess
  TimeSec quiet_max = 30.0;
  TimeSec relapse_window = 1.0;   // starved this soon after waking => double
  TimeSec recover_after = 4.0;    // sustained goodput for this long => halve
};

class DutyCycleSource : public CbrSource {
 public:
  DutyCycleSource(Simulator* sim, Host* host, DutyCycleConfig cfg);

  bool gate_open(TimeSec) const override { return !quiet_; }

  bool quiet() const { return quiet_; }
  TimeSec quiet_estimate() const { return quiet_len_; }
  int latch_detections() const { return latch_detections_; }

 protected:
  void on_feedback(const Packet& p, TimeSec now) override;

 private:
  void check();

  DutyCycleConfig dcfg_;
  bool check_scheduled_ = false;
  bool quiet_ = false;
  TimeSec quiet_len_;
  TimeSec wake_time_ = -1.0;       // when the current/last quiet phase ends
  TimeSec last_shrink_ = -1.0;     // last time sustained goodput halved quiet
  std::uint64_t acks_window_ = 0;      // ACKs (delivered pkts) since last check
  std::uint64_t last_sent_probe_ = 0;  // packets_sent at the previous check
  int latch_detections_ = 0;
};

struct ProbingCovertConfig {
  FlowId first_flow = 0;            // pool ids [first_flow, first_flow+pool)
  std::vector<HostAddr> dsts;       // destinations to fan out over
  PathId path;
  int packet_bytes = 1500;
  BitsPerSec rate = 0.0;            // total budget across active flows
  int active_flows = 5;             // concurrently driven flows
  int pool = 15;                    // total flow ids available for rotation
  TimeSec probe_interval = 1.0;     // rotation cadence
  double retire_below = 0.5;        // retire flows under this fraction of
                                    // the best flow's epoch goodput
};

// Not a CbrSource: one agent drives many flows. Each active flow performs
// its own capability handshake, then receives a round-robin share of the
// source's total rate; every probe interval the worst-starved flow is
// retired and a fresh (flow id, destination) pair from the pool takes its
// slot, re-rolling the capability-slot/accounting hash the defense used to
// penalize it.
class ProbingCovertSource : public Agent {
 public:
  ProbingCovertSource(Simulator* sim, Host* host, ProbingCovertConfig cfg);

  void start_at(TimeSec t);
  void stop_at(TimeSec t);
  void on_packet(Packet&& p) override;

  std::uint64_t packets_sent() const { return packets_sent_; }
  int rotations() const { return rotations_; }
  int active_count() const { return static_cast<int>(active_.size()); }

  // All flow ids this source may ever use (for monitor registration).
  std::vector<FlowId> flow_pool() const;

 private:
  struct FlowState {
    FlowId flow = 0;
    HostAddr dst = 0;
    bool running = false;       // handshake completed
    std::uint64_t next_seq = 0;
    std::uint64_t cap0 = 0, cap1 = 0;
    std::uint64_t acks_epoch = 0;  // ACKs (delivered pkts) this probe epoch
  };

  void begin();
  void tick();
  void probe();
  void handshake(FlowState& fs);
  void send_data(FlowState& fs);
  FlowState* find(FlowId flow);

  Simulator* sim_;
  Host* host_;
  ProbingCovertConfig cfg_;
  bool running_ = false;
  bool stopped_ = false;
  std::vector<FlowState> active_;
  int next_pool_idx_ = 0;   // next unused pool slot
  int next_dst_idx_ = 0;
  std::size_t rr_ = 0;      // round-robin cursor over active flows
  std::uint64_t packets_sent_ = 0;
  int rotations_ = 0;
};

}  // namespace floc
