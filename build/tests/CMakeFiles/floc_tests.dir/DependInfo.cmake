
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_drr_test.cc" "tests/CMakeFiles/floc_tests.dir/baselines_drr_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/baselines_drr_test.cc.o.d"
  "/root/repo/tests/baselines_priority_fair_test.cc" "tests/CMakeFiles/floc_tests.dir/baselines_priority_fair_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/baselines_priority_fair_test.cc.o.d"
  "/root/repo/tests/baselines_pushback_test.cc" "tests/CMakeFiles/floc_tests.dir/baselines_pushback_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/baselines_pushback_test.cc.o.d"
  "/root/repo/tests/baselines_rate_limiter_test.cc" "tests/CMakeFiles/floc_tests.dir/baselines_rate_limiter_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/baselines_rate_limiter_test.cc.o.d"
  "/root/repo/tests/baselines_red_pd_test.cc" "tests/CMakeFiles/floc_tests.dir/baselines_red_pd_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/baselines_red_pd_test.cc.o.d"
  "/root/repo/tests/baselines_red_test.cc" "tests/CMakeFiles/floc_tests.dir/baselines_red_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/baselines_red_test.cc.o.d"
  "/root/repo/tests/core_aggregation_test.cc" "tests/CMakeFiles/floc_tests.dir/core_aggregation_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/core_aggregation_test.cc.o.d"
  "/root/repo/tests/core_capability_test.cc" "tests/CMakeFiles/floc_tests.dir/core_capability_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/core_capability_test.cc.o.d"
  "/root/repo/tests/core_conformance_test.cc" "tests/CMakeFiles/floc_tests.dir/core_conformance_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/core_conformance_test.cc.o.d"
  "/root/repo/tests/core_drop_filter_property_test.cc" "tests/CMakeFiles/floc_tests.dir/core_drop_filter_property_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/core_drop_filter_property_test.cc.o.d"
  "/root/repo/tests/core_drop_filter_test.cc" "tests/CMakeFiles/floc_tests.dir/core_drop_filter_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/core_drop_filter_test.cc.o.d"
  "/root/repo/tests/core_floc_covert_test.cc" "tests/CMakeFiles/floc_tests.dir/core_floc_covert_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/core_floc_covert_test.cc.o.d"
  "/root/repo/tests/core_floc_modes_test.cc" "tests/CMakeFiles/floc_tests.dir/core_floc_modes_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/core_floc_modes_test.cc.o.d"
  "/root/repo/tests/core_floc_property_test.cc" "tests/CMakeFiles/floc_tests.dir/core_floc_property_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/core_floc_property_test.cc.o.d"
  "/root/repo/tests/core_floc_queue_test.cc" "tests/CMakeFiles/floc_tests.dir/core_floc_queue_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/core_floc_queue_test.cc.o.d"
  "/root/repo/tests/core_floc_scalable_test.cc" "tests/CMakeFiles/floc_tests.dir/core_floc_scalable_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/core_floc_scalable_test.cc.o.d"
  "/root/repo/tests/core_floc_syn_flood_test.cc" "tests/CMakeFiles/floc_tests.dir/core_floc_syn_flood_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/core_floc_syn_flood_test.cc.o.d"
  "/root/repo/tests/core_model_test.cc" "tests/CMakeFiles/floc_tests.dir/core_model_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/core_model_test.cc.o.d"
  "/root/repo/tests/core_mtd_test.cc" "tests/CMakeFiles/floc_tests.dir/core_mtd_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/core_mtd_test.cc.o.d"
  "/root/repo/tests/core_token_bucket_test.cc" "tests/CMakeFiles/floc_tests.dir/core_token_bucket_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/core_token_bucket_test.cc.o.d"
  "/root/repo/tests/core_traffic_tree_test.cc" "tests/CMakeFiles/floc_tests.dir/core_traffic_tree_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/core_traffic_tree_test.cc.o.d"
  "/root/repo/tests/inetsim_internals_test.cc" "tests/CMakeFiles/floc_tests.dir/inetsim_internals_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/inetsim_internals_test.cc.o.d"
  "/root/repo/tests/inetsim_test.cc" "tests/CMakeFiles/floc_tests.dir/inetsim_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/inetsim_test.cc.o.d"
  "/root/repo/tests/integration_normal_mode_test.cc" "tests/CMakeFiles/floc_tests.dir/integration_normal_mode_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/integration_normal_mode_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/floc_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/netsim_network_test.cc" "tests/CMakeFiles/floc_tests.dir/netsim_network_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/netsim_network_test.cc.o.d"
  "/root/repo/tests/netsim_packet_test.cc" "tests/CMakeFiles/floc_tests.dir/netsim_packet_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/netsim_packet_test.cc.o.d"
  "/root/repo/tests/netsim_simulator_test.cc" "tests/CMakeFiles/floc_tests.dir/netsim_simulator_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/netsim_simulator_test.cc.o.d"
  "/root/repo/tests/netsim_trace_test.cc" "tests/CMakeFiles/floc_tests.dir/netsim_trace_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/netsim_trace_test.cc.o.d"
  "/root/repo/tests/queue_fuzz_test.cc" "tests/CMakeFiles/floc_tests.dir/queue_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/queue_fuzz_test.cc.o.d"
  "/root/repo/tests/topology_bots_test.cc" "tests/CMakeFiles/floc_tests.dir/topology_bots_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/topology_bots_test.cc.o.d"
  "/root/repo/tests/topology_pushback_propagation_test.cc" "tests/CMakeFiles/floc_tests.dir/topology_pushback_propagation_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/topology_pushback_propagation_test.cc.o.d"
  "/root/repo/tests/topology_skitter_test.cc" "tests/CMakeFiles/floc_tests.dir/topology_skitter_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/topology_skitter_test.cc.o.d"
  "/root/repo/tests/topology_timed_attacks_test.cc" "tests/CMakeFiles/floc_tests.dir/topology_timed_attacks_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/topology_timed_attacks_test.cc.o.d"
  "/root/repo/tests/topology_tree_test.cc" "tests/CMakeFiles/floc_tests.dir/topology_tree_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/topology_tree_test.cc.o.d"
  "/root/repo/tests/transport_monitor_test.cc" "tests/CMakeFiles/floc_tests.dir/transport_monitor_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/transport_monitor_test.cc.o.d"
  "/root/repo/tests/transport_sources_test.cc" "tests/CMakeFiles/floc_tests.dir/transport_sources_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/transport_sources_test.cc.o.d"
  "/root/repo/tests/transport_tcp_newreno_test.cc" "tests/CMakeFiles/floc_tests.dir/transport_tcp_newreno_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/transport_tcp_newreno_test.cc.o.d"
  "/root/repo/tests/transport_tcp_test.cc" "tests/CMakeFiles/floc_tests.dir/transport_tcp_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/transport_tcp_test.cc.o.d"
  "/root/repo/tests/transport_timed_sources_test.cc" "tests/CMakeFiles/floc_tests.dir/transport_timed_sources_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/transport_timed_sources_test.cc.o.d"
  "/root/repo/tests/util_rng_test.cc" "tests/CMakeFiles/floc_tests.dir/util_rng_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/util_rng_test.cc.o.d"
  "/root/repo/tests/util_siphash_test.cc" "tests/CMakeFiles/floc_tests.dir/util_siphash_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/util_siphash_test.cc.o.d"
  "/root/repo/tests/util_stats_test.cc" "tests/CMakeFiles/floc_tests.dir/util_stats_test.cc.o" "gcc" "tests/CMakeFiles/floc_tests.dir/util_stats_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/floc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/floc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/floc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/floc_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/floc_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/inetsim/CMakeFiles/floc_inetsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/floc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
