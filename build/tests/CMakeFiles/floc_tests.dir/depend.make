# Empty dependencies file for floc_tests.
# This may be replaced when dependencies are built.
