# Empty compiler generated dependencies file for fig10_covert.
# This may be replaced when dependencies are built.
