file(REMOVE_RECURSE
  "CMakeFiles/fig10_covert.dir/fig10_covert.cc.o"
  "CMakeFiles/fig10_covert.dir/fig10_covert.cc.o.d"
  "fig10_covert"
  "fig10_covert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_covert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
