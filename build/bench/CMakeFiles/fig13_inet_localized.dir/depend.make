# Empty dependencies file for fig13_inet_localized.
# This may be replaced when dependencies are built.
