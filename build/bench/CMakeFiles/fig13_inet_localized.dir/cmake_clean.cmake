file(REMOVE_RECURSE
  "CMakeFiles/fig13_inet_localized.dir/fig13_inet_localized.cc.o"
  "CMakeFiles/fig13_inet_localized.dir/fig13_inet_localized.cc.o.d"
  "fig13_inet_localized"
  "fig13_inet_localized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_inet_localized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
