file(REMOVE_RECURSE
  "CMakeFiles/ablation_inet.dir/ablation_inet.cc.o"
  "CMakeFiles/ablation_inet.dir/ablation_inet.cc.o.d"
  "ablation_inet"
  "ablation_inet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
