# Empty dependencies file for ablation_inet.
# This may be replaced when dependencies are built.
