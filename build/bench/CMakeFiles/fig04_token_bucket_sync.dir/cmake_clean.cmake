file(REMOVE_RECURSE
  "CMakeFiles/fig04_token_bucket_sync.dir/fig04_token_bucket_sync.cc.o"
  "CMakeFiles/fig04_token_bucket_sync.dir/fig04_token_bucket_sync.cc.o.d"
  "fig04_token_bucket_sync"
  "fig04_token_bucket_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_token_bucket_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
