# Empty compiler generated dependencies file for fig04_token_bucket_sync.
# This may be replaced when dependencies are built.
