# Empty dependencies file for fig15_inet_separated.
# This may be replaced when dependencies are built.
