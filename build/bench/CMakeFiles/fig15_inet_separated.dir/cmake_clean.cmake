file(REMOVE_RECURSE
  "CMakeFiles/fig15_inet_separated.dir/fig15_inet_separated.cc.o"
  "CMakeFiles/fig15_inet_separated.dir/fig15_inet_separated.cc.o.d"
  "fig15_inet_separated"
  "fig15_inet_separated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_inet_separated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
