
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig15_inet_separated.cc" "bench/CMakeFiles/fig15_inet_separated.dir/fig15_inet_separated.cc.o" "gcc" "bench/CMakeFiles/fig15_inet_separated.dir/fig15_inet_separated.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/inetsim/CMakeFiles/floc_inetsim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/floc_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/floc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/floc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/floc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/floc_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/floc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
