file(REMOVE_RECURSE
  "CMakeFiles/fig06_attack_confinement.dir/fig06_attack_confinement.cc.o"
  "CMakeFiles/fig06_attack_confinement.dir/fig06_attack_confinement.cc.o.d"
  "fig06_attack_confinement"
  "fig06_attack_confinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_attack_confinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
