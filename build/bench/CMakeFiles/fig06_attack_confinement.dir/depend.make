# Empty dependencies file for fig06_attack_confinement.
# This may be replaced when dependencies are built.
