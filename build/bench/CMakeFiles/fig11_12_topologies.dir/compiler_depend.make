# Empty compiler generated dependencies file for fig11_12_topologies.
# This may be replaced when dependencies are built.
