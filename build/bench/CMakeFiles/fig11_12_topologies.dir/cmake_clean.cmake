file(REMOVE_RECURSE
  "CMakeFiles/fig11_12_topologies.dir/fig11_12_topologies.cc.o"
  "CMakeFiles/fig11_12_topologies.dir/fig11_12_topologies.cc.o.d"
  "fig11_12_topologies"
  "fig11_12_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_12_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
