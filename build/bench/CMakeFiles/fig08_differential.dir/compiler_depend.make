# Empty compiler generated dependencies file for fig08_differential.
# This may be replaced when dependencies are built.
