file(REMOVE_RECURSE
  "CMakeFiles/fig08_differential.dir/fig08_differential.cc.o"
  "CMakeFiles/fig08_differential.dir/fig08_differential.cc.o.d"
  "fig08_differential"
  "fig08_differential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
