# Empty dependencies file for router_design_micro.
# This may be replaced when dependencies are built.
