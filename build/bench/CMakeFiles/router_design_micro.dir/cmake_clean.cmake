file(REMOVE_RECURSE
  "CMakeFiles/router_design_micro.dir/router_design_micro.cc.o"
  "CMakeFiles/router_design_micro.dir/router_design_micro.cc.o.d"
  "router_design_micro"
  "router_design_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_design_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
