# Empty dependencies file for fig02_drop_vs_service.
# This may be replaced when dependencies are built.
