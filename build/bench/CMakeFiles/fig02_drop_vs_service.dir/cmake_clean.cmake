file(REMOVE_RECURSE
  "CMakeFiles/fig02_drop_vs_service.dir/fig02_drop_vs_service.cc.o"
  "CMakeFiles/fig02_drop_vs_service.dir/fig02_drop_vs_service.cc.o.d"
  "fig02_drop_vs_service"
  "fig02_drop_vs_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_drop_vs_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
