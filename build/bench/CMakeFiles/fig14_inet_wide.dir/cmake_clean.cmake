file(REMOVE_RECURSE
  "CMakeFiles/fig14_inet_wide.dir/fig14_inet_wide.cc.o"
  "CMakeFiles/fig14_inet_wide.dir/fig14_inet_wide.cc.o.d"
  "fig14_inet_wide"
  "fig14_inet_wide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_inet_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
