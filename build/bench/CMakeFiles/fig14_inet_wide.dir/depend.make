# Empty dependencies file for fig14_inet_wide.
# This may be replaced when dependencies are built.
