# Empty compiler generated dependencies file for ablation_floc.
# This may be replaced when dependencies are built.
