file(REMOVE_RECURSE
  "CMakeFiles/ablation_floc.dir/ablation_floc.cc.o"
  "CMakeFiles/ablation_floc.dir/ablation_floc.cc.o.d"
  "ablation_floc"
  "ablation_floc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_floc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
