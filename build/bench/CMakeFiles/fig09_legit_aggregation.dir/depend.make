# Empty dependencies file for fig09_legit_aggregation.
# This may be replaced when dependencies are built.
