file(REMOVE_RECURSE
  "CMakeFiles/fig09_legit_aggregation.dir/fig09_legit_aggregation.cc.o"
  "CMakeFiles/fig09_legit_aggregation.dir/fig09_legit_aggregation.cc.o.d"
  "fig09_legit_aggregation"
  "fig09_legit_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_legit_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
