file(REMOVE_RECURSE
  "CMakeFiles/ablation_timed_attacks.dir/ablation_timed_attacks.cc.o"
  "CMakeFiles/ablation_timed_attacks.dir/ablation_timed_attacks.cc.o.d"
  "ablation_timed_attacks"
  "ablation_timed_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_timed_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
