# Empty compiler generated dependencies file for trace_flood.
# This may be replaced when dependencies are built.
