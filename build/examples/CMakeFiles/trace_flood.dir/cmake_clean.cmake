file(REMOVE_RECURSE
  "CMakeFiles/trace_flood.dir/trace_flood.cpp.o"
  "CMakeFiles/trace_flood.dir/trace_flood.cpp.o.d"
  "trace_flood"
  "trace_flood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_flood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
