file(REMOVE_RECURSE
  "CMakeFiles/covert_attack.dir/covert_attack.cpp.o"
  "CMakeFiles/covert_attack.dir/covert_attack.cpp.o.d"
  "covert_attack"
  "covert_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covert_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
