# Empty compiler generated dependencies file for covert_attack.
# This may be replaced when dependencies are built.
