# Empty compiler generated dependencies file for flooding_defense.
# This may be replaced when dependencies are built.
