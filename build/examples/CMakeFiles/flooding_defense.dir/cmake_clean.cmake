file(REMOVE_RECURSE
  "CMakeFiles/flooding_defense.dir/flooding_defense.cpp.o"
  "CMakeFiles/flooding_defense.dir/flooding_defense.cpp.o.d"
  "flooding_defense"
  "flooding_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flooding_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
