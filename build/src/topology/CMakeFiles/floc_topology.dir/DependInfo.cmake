
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/as_graph.cc" "src/topology/CMakeFiles/floc_topology.dir/as_graph.cc.o" "gcc" "src/topology/CMakeFiles/floc_topology.dir/as_graph.cc.o.d"
  "/root/repo/src/topology/bot_distribution.cc" "src/topology/CMakeFiles/floc_topology.dir/bot_distribution.cc.o" "gcc" "src/topology/CMakeFiles/floc_topology.dir/bot_distribution.cc.o.d"
  "/root/repo/src/topology/defense_factory.cc" "src/topology/CMakeFiles/floc_topology.dir/defense_factory.cc.o" "gcc" "src/topology/CMakeFiles/floc_topology.dir/defense_factory.cc.o.d"
  "/root/repo/src/topology/skitter_gen.cc" "src/topology/CMakeFiles/floc_topology.dir/skitter_gen.cc.o" "gcc" "src/topology/CMakeFiles/floc_topology.dir/skitter_gen.cc.o.d"
  "/root/repo/src/topology/tree_scenario.cc" "src/topology/CMakeFiles/floc_topology.dir/tree_scenario.cc.o" "gcc" "src/topology/CMakeFiles/floc_topology.dir/tree_scenario.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/floc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/floc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/floc_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/floc_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/floc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
