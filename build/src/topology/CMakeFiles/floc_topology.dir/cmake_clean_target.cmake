file(REMOVE_RECURSE
  "libfloc_topology.a"
)
