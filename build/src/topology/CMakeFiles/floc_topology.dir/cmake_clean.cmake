file(REMOVE_RECURSE
  "CMakeFiles/floc_topology.dir/as_graph.cc.o"
  "CMakeFiles/floc_topology.dir/as_graph.cc.o.d"
  "CMakeFiles/floc_topology.dir/bot_distribution.cc.o"
  "CMakeFiles/floc_topology.dir/bot_distribution.cc.o.d"
  "CMakeFiles/floc_topology.dir/defense_factory.cc.o"
  "CMakeFiles/floc_topology.dir/defense_factory.cc.o.d"
  "CMakeFiles/floc_topology.dir/skitter_gen.cc.o"
  "CMakeFiles/floc_topology.dir/skitter_gen.cc.o.d"
  "CMakeFiles/floc_topology.dir/tree_scenario.cc.o"
  "CMakeFiles/floc_topology.dir/tree_scenario.cc.o.d"
  "libfloc_topology.a"
  "libfloc_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floc_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
