# Empty dependencies file for floc_topology.
# This may be replaced when dependencies are built.
