# Empty compiler generated dependencies file for floc_baselines.
# This may be replaced when dependencies are built.
