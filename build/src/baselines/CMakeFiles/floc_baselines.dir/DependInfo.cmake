
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/drr_queue.cc" "src/baselines/CMakeFiles/floc_baselines.dir/drr_queue.cc.o" "gcc" "src/baselines/CMakeFiles/floc_baselines.dir/drr_queue.cc.o.d"
  "/root/repo/src/baselines/priority_fair.cc" "src/baselines/CMakeFiles/floc_baselines.dir/priority_fair.cc.o" "gcc" "src/baselines/CMakeFiles/floc_baselines.dir/priority_fair.cc.o.d"
  "/root/repo/src/baselines/pushback.cc" "src/baselines/CMakeFiles/floc_baselines.dir/pushback.cc.o" "gcc" "src/baselines/CMakeFiles/floc_baselines.dir/pushback.cc.o.d"
  "/root/repo/src/baselines/rate_limiter.cc" "src/baselines/CMakeFiles/floc_baselines.dir/rate_limiter.cc.o" "gcc" "src/baselines/CMakeFiles/floc_baselines.dir/rate_limiter.cc.o.d"
  "/root/repo/src/baselines/red_pd.cc" "src/baselines/CMakeFiles/floc_baselines.dir/red_pd.cc.o" "gcc" "src/baselines/CMakeFiles/floc_baselines.dir/red_pd.cc.o.d"
  "/root/repo/src/baselines/red_queue.cc" "src/baselines/CMakeFiles/floc_baselines.dir/red_queue.cc.o" "gcc" "src/baselines/CMakeFiles/floc_baselines.dir/red_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/floc_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/floc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
