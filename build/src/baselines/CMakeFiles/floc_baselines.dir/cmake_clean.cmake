file(REMOVE_RECURSE
  "CMakeFiles/floc_baselines.dir/drr_queue.cc.o"
  "CMakeFiles/floc_baselines.dir/drr_queue.cc.o.d"
  "CMakeFiles/floc_baselines.dir/priority_fair.cc.o"
  "CMakeFiles/floc_baselines.dir/priority_fair.cc.o.d"
  "CMakeFiles/floc_baselines.dir/pushback.cc.o"
  "CMakeFiles/floc_baselines.dir/pushback.cc.o.d"
  "CMakeFiles/floc_baselines.dir/rate_limiter.cc.o"
  "CMakeFiles/floc_baselines.dir/rate_limiter.cc.o.d"
  "CMakeFiles/floc_baselines.dir/red_pd.cc.o"
  "CMakeFiles/floc_baselines.dir/red_pd.cc.o.d"
  "CMakeFiles/floc_baselines.dir/red_queue.cc.o"
  "CMakeFiles/floc_baselines.dir/red_queue.cc.o.d"
  "libfloc_baselines.a"
  "libfloc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
