file(REMOVE_RECURSE
  "libfloc_baselines.a"
)
