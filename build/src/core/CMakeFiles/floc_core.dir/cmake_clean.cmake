file(REMOVE_RECURSE
  "CMakeFiles/floc_core.dir/aggregation.cc.o"
  "CMakeFiles/floc_core.dir/aggregation.cc.o.d"
  "CMakeFiles/floc_core.dir/capability.cc.o"
  "CMakeFiles/floc_core.dir/capability.cc.o.d"
  "CMakeFiles/floc_core.dir/conformance.cc.o"
  "CMakeFiles/floc_core.dir/conformance.cc.o.d"
  "CMakeFiles/floc_core.dir/drop_filter.cc.o"
  "CMakeFiles/floc_core.dir/drop_filter.cc.o.d"
  "CMakeFiles/floc_core.dir/floc_queue.cc.o"
  "CMakeFiles/floc_core.dir/floc_queue.cc.o.d"
  "CMakeFiles/floc_core.dir/flow_table.cc.o"
  "CMakeFiles/floc_core.dir/flow_table.cc.o.d"
  "CMakeFiles/floc_core.dir/model.cc.o"
  "CMakeFiles/floc_core.dir/model.cc.o.d"
  "CMakeFiles/floc_core.dir/mtd_tracker.cc.o"
  "CMakeFiles/floc_core.dir/mtd_tracker.cc.o.d"
  "CMakeFiles/floc_core.dir/token_bucket.cc.o"
  "CMakeFiles/floc_core.dir/token_bucket.cc.o.d"
  "CMakeFiles/floc_core.dir/traffic_tree.cc.o"
  "CMakeFiles/floc_core.dir/traffic_tree.cc.o.d"
  "libfloc_core.a"
  "libfloc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
