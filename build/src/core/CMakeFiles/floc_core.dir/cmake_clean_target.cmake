file(REMOVE_RECURSE
  "libfloc_core.a"
)
