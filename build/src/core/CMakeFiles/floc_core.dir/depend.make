# Empty dependencies file for floc_core.
# This may be replaced when dependencies are built.
