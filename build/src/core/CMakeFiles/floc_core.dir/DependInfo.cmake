
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregation.cc" "src/core/CMakeFiles/floc_core.dir/aggregation.cc.o" "gcc" "src/core/CMakeFiles/floc_core.dir/aggregation.cc.o.d"
  "/root/repo/src/core/capability.cc" "src/core/CMakeFiles/floc_core.dir/capability.cc.o" "gcc" "src/core/CMakeFiles/floc_core.dir/capability.cc.o.d"
  "/root/repo/src/core/conformance.cc" "src/core/CMakeFiles/floc_core.dir/conformance.cc.o" "gcc" "src/core/CMakeFiles/floc_core.dir/conformance.cc.o.d"
  "/root/repo/src/core/drop_filter.cc" "src/core/CMakeFiles/floc_core.dir/drop_filter.cc.o" "gcc" "src/core/CMakeFiles/floc_core.dir/drop_filter.cc.o.d"
  "/root/repo/src/core/floc_queue.cc" "src/core/CMakeFiles/floc_core.dir/floc_queue.cc.o" "gcc" "src/core/CMakeFiles/floc_core.dir/floc_queue.cc.o.d"
  "/root/repo/src/core/flow_table.cc" "src/core/CMakeFiles/floc_core.dir/flow_table.cc.o" "gcc" "src/core/CMakeFiles/floc_core.dir/flow_table.cc.o.d"
  "/root/repo/src/core/model.cc" "src/core/CMakeFiles/floc_core.dir/model.cc.o" "gcc" "src/core/CMakeFiles/floc_core.dir/model.cc.o.d"
  "/root/repo/src/core/mtd_tracker.cc" "src/core/CMakeFiles/floc_core.dir/mtd_tracker.cc.o" "gcc" "src/core/CMakeFiles/floc_core.dir/mtd_tracker.cc.o.d"
  "/root/repo/src/core/token_bucket.cc" "src/core/CMakeFiles/floc_core.dir/token_bucket.cc.o" "gcc" "src/core/CMakeFiles/floc_core.dir/token_bucket.cc.o.d"
  "/root/repo/src/core/traffic_tree.cc" "src/core/CMakeFiles/floc_core.dir/traffic_tree.cc.o" "gcc" "src/core/CMakeFiles/floc_core.dir/traffic_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/floc_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/floc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
