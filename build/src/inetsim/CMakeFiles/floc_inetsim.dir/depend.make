# Empty dependencies file for floc_inetsim.
# This may be replaced when dependencies are built.
