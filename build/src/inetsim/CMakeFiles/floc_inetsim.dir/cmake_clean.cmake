file(REMOVE_RECURSE
  "CMakeFiles/floc_inetsim.dir/inet_experiment.cc.o"
  "CMakeFiles/floc_inetsim.dir/inet_experiment.cc.o.d"
  "CMakeFiles/floc_inetsim.dir/tick_sim.cc.o"
  "CMakeFiles/floc_inetsim.dir/tick_sim.cc.o.d"
  "libfloc_inetsim.a"
  "libfloc_inetsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floc_inetsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
