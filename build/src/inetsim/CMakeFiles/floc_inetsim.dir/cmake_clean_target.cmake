file(REMOVE_RECURSE
  "libfloc_inetsim.a"
)
