
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/cbr_source.cc" "src/transport/CMakeFiles/floc_transport.dir/cbr_source.cc.o" "gcc" "src/transport/CMakeFiles/floc_transport.dir/cbr_source.cc.o.d"
  "/root/repo/src/transport/flow_monitor.cc" "src/transport/CMakeFiles/floc_transport.dir/flow_monitor.cc.o" "gcc" "src/transport/CMakeFiles/floc_transport.dir/flow_monitor.cc.o.d"
  "/root/repo/src/transport/shrew_source.cc" "src/transport/CMakeFiles/floc_transport.dir/shrew_source.cc.o" "gcc" "src/transport/CMakeFiles/floc_transport.dir/shrew_source.cc.o.d"
  "/root/repo/src/transport/tcp_sink.cc" "src/transport/CMakeFiles/floc_transport.dir/tcp_sink.cc.o" "gcc" "src/transport/CMakeFiles/floc_transport.dir/tcp_sink.cc.o.d"
  "/root/repo/src/transport/tcp_source.cc" "src/transport/CMakeFiles/floc_transport.dir/tcp_source.cc.o" "gcc" "src/transport/CMakeFiles/floc_transport.dir/tcp_source.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/floc_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/floc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
