file(REMOVE_RECURSE
  "CMakeFiles/floc_transport.dir/cbr_source.cc.o"
  "CMakeFiles/floc_transport.dir/cbr_source.cc.o.d"
  "CMakeFiles/floc_transport.dir/flow_monitor.cc.o"
  "CMakeFiles/floc_transport.dir/flow_monitor.cc.o.d"
  "CMakeFiles/floc_transport.dir/shrew_source.cc.o"
  "CMakeFiles/floc_transport.dir/shrew_source.cc.o.d"
  "CMakeFiles/floc_transport.dir/tcp_sink.cc.o"
  "CMakeFiles/floc_transport.dir/tcp_sink.cc.o.d"
  "CMakeFiles/floc_transport.dir/tcp_source.cc.o"
  "CMakeFiles/floc_transport.dir/tcp_source.cc.o.d"
  "libfloc_transport.a"
  "libfloc_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floc_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
