# Empty compiler generated dependencies file for floc_transport.
# This may be replaced when dependencies are built.
