file(REMOVE_RECURSE
  "libfloc_transport.a"
)
