file(REMOVE_RECURSE
  "CMakeFiles/floc_util.dir/rng.cc.o"
  "CMakeFiles/floc_util.dir/rng.cc.o.d"
  "CMakeFiles/floc_util.dir/siphash.cc.o"
  "CMakeFiles/floc_util.dir/siphash.cc.o.d"
  "CMakeFiles/floc_util.dir/stats.cc.o"
  "CMakeFiles/floc_util.dir/stats.cc.o.d"
  "libfloc_util.a"
  "libfloc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
