file(REMOVE_RECURSE
  "libfloc_util.a"
)
