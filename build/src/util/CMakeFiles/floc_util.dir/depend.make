# Empty dependencies file for floc_util.
# This may be replaced when dependencies are built.
