file(REMOVE_RECURSE
  "CMakeFiles/floc_netsim.dir/drop_tail.cc.o"
  "CMakeFiles/floc_netsim.dir/drop_tail.cc.o.d"
  "CMakeFiles/floc_netsim.dir/link.cc.o"
  "CMakeFiles/floc_netsim.dir/link.cc.o.d"
  "CMakeFiles/floc_netsim.dir/network.cc.o"
  "CMakeFiles/floc_netsim.dir/network.cc.o.d"
  "CMakeFiles/floc_netsim.dir/node.cc.o"
  "CMakeFiles/floc_netsim.dir/node.cc.o.d"
  "CMakeFiles/floc_netsim.dir/packet.cc.o"
  "CMakeFiles/floc_netsim.dir/packet.cc.o.d"
  "CMakeFiles/floc_netsim.dir/queue_disc.cc.o"
  "CMakeFiles/floc_netsim.dir/queue_disc.cc.o.d"
  "CMakeFiles/floc_netsim.dir/simulator.cc.o"
  "CMakeFiles/floc_netsim.dir/simulator.cc.o.d"
  "CMakeFiles/floc_netsim.dir/trace.cc.o"
  "CMakeFiles/floc_netsim.dir/trace.cc.o.d"
  "libfloc_netsim.a"
  "libfloc_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floc_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
