file(REMOVE_RECURSE
  "libfloc_netsim.a"
)
