# Empty compiler generated dependencies file for floc_netsim.
# This may be replaced when dependencies are built.
