// floc_inspect: read-side CLI for `*.incident.json` flight-recorder bundles.
//
//   floc_inspect summary  BUNDLE.json           what fired, and what moved
//   floc_inspect timeline BUNDLE.json           trigger + journal-tail table
//   floc_inspect diff     A.json B.json         field-level bundle diff
//
// Exit codes (scripting-friendly, perf_compare-style):
//   0  ok (diff: files equivalent)
//   1  diff: files differ materially
//   2  usage error
//   3  could not load/parse an input
#include <cstdio>
#include <cstring>
#include <string>

#include "telemetry/file_util.h"
#include "telemetry/incident_bundle.h"
#include "util/json.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s summary BUNDLE.json\n"
               "       %s timeline BUNDLE.json\n"
               "       %s diff A.json B.json\n",
               argv0, argv0, argv0);
  return 2;
}

// Loads and parses one bundle file; returns false (after reporting) on any
// I/O or JSON error.
bool load(const char* path, floc::json::Value* out) {
  std::string text, err;
  if (!floc::telemetry::read_text_file(path, &text, &err)) {
    std::fprintf(stderr, "floc_inspect: %s\n", err.c_str());
    return false;
  }
  if (!floc::json::parse(text, out, &err)) {
    std::fprintf(stderr, "floc_inspect: %s: %s\n", path, err.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const char* cmd = argv[1];

  if (std::strcmp(cmd, "summary") == 0 || std::strcmp(cmd, "timeline") == 0) {
    if (argc != 3) return usage(argv[0]);
    floc::json::Value v;
    if (!load(argv[2], &v)) return 3;
    const std::string out = std::strcmp(cmd, "summary") == 0
                                ? floc::telemetry::summarize_bundle_file(v)
                                : floc::telemetry::timeline_table(v);
    std::fputs(out.c_str(), stdout);
    return 0;
  }

  if (std::strcmp(cmd, "diff") == 0) {
    if (argc != 4) return usage(argv[0]);
    floc::json::Value a, b;
    if (!load(argv[2], &a) || !load(argv[3], &b)) return 3;
    std::string out;
    const bool differ = floc::telemetry::diff_bundle_files(a, b, &out);
    std::fputs(out.c_str(), stdout);
    return differ ? 1 : 0;
  }

  return usage(argv[0]);
}
