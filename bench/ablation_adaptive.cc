// Closed-loop adversary scorecard: adaptive (detector-gaming) attackers vs
// their open-loop counterparts, with the hardening knobs off and on.
//
// Rows pair each adaptive strategy with its open-loop baseline:
//   shrew          -> adaptive-shrew   (period searched onto T_Si)
//   on-off         -> duty-cycle      (quiet phases probe attack_release)
//   covert         -> probing-covert  (flow ids/destinations rotate away
//                                      from penalized accounting slots)
// plus a flash-crowd row (no attack, a legitimate arrival herd) that checks
// the hardening does not create false positives or tax legitimate traffic.
//
// Hardening = measurement-interval/token-period jitter + exponential-backoff
// release + the per-sender offender blacklist (all FlocConfig knobs).
//
// Scorecard per case: legitimate/attack goodput (fraction of the target
// link), detection latency (first probe after attack start that finds an
// attack-leaf path flagged), evasion half-life (time for windowed attack
// goodput to fall below half its post-start peak), false-positive rate
// (time-averaged fraction of legitimate leaf paths flagged as attack),
// backoff escalations, blacklist additions. Acceptance encoded in the exit
// code:
//   * hardening OFF: each adaptive strategy recovers >= 2x the attack
//     goodput of its open-loop counterpart (the adversaries actually work);
//   * hardening ON: each adaptive strategy is pulled back to <= 1.25x what
//     the *unhardened* defense conceded to the open-loop counterpart (the
//     hardening strips the adaptivity advantage);
//   * flash crowd: legitimate goodput with hardening ON within 10% of OFF,
//     and the false-positive rate within 2 points;
//   * zero SimMonitor invariant violations anywhere.
// Artifacts: per-case telemetry time series + defense-event journals, a
// summary CSV, and the run manifest.
#include <cmath>
#include <vector>

#include "bench/bench_common.h"
#include "faultsim/sim_monitor.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"
#include "telemetry/time_series.h"

using namespace floc;
using namespace floc::bench;

namespace {

constexpr TimeSec kAttackStart = 5.0;
constexpr TimeSec kSeriesBucket = 1.0;  // attack-goodput series resolution

struct Strategy {
  const char* name;       // row label / artifact stem
  AttackType attack;
  int counterpart;        // index of the open-loop baseline row (-1 = none)
};

// Order matters: every adaptive row names its open-loop counterpart.
const Strategy kStrategies[] = {
    {"shrew", AttackType::kShrew, -1},
    {"adaptive-shrew", AttackType::kAdaptiveShrew, 0},
    {"on-off", AttackType::kOnOff, -1},
    {"duty-cycle", AttackType::kDutyCycle, 2},
    {"covert", AttackType::kCovert, -1},
    {"probing-covert", AttackType::kProbingCovert, 4},
    {"flash-crowd", AttackType::kNone, -1},
};
constexpr std::size_t kStrategyCount = std::size(kStrategies);

struct CaseResult {
  double legit_frac = 0.0;     // legit goodput / target link
  double attack_frac = 0.0;    // attack goodput / target link
  double detect_latency = -1.0;  // first flagged probe - attack start (-1 = never)
  double half_life = -1.0;       // -1 = attack goodput never halved
  double fp_rate = 0.0;          // legit-leaf probes found flagged / probes
  std::uint64_t escalations = 0;
  std::uint64_t blacklists = 0;
  std::uint64_t violations = 0;
  std::uint64_t seed = 0;
  double wall_seconds = 0.0;
  std::vector<std::string> artifacts;
};

CaseResult run_case(const Strategy& strat, bool hardened, std::uint64_t seed,
                    const BenchArgs& a) {
  const std::uint64_t t0 = telemetry::clock_ns();
  TreeScenarioConfig cfg = fig5_config(a);
  cfg.scheme = DefenseScheme::kFloc;
  cfg.attack = strat.attack;
  cfg.attack_rate = mbps(2.0);
  cfg.attack_start = kAttackStart;
  cfg.seed = seed;
  // Open-loop pulse parameters double as the adaptive sources' initial
  // guesses: the shrew starts with a deliberately wrong period so the
  // closed-loop search is what finds T_Si.
  cfg.shrew_period = 0.05;
  cfg.shrew_duty = 0.25;
  if (strat.attack == AttackType::kNone) {
    // Flash crowd: 2x the legitimate population arriving as a herd.
    cfg.legit_per_leaf *= 2;
    cfg.legit_start_spread = 0.5;
  }
  if (hardened) {
    cfg.floc.interval_jitter = 0.15;
    cfg.floc.backoff_release = true;
    cfg.floc.backoff_decay = 10.0;
    cfg.floc.enable_blacklist = true;
    cfg.floc.jitter_dip_prob = 0.4;
  }
  TreeScenario s(cfg);
  FlocQueue* fq = s.floc_queue();
  Simulator& sim = s.sim();

  telemetry::Telemetry tel;
  tel.journal.set_enabled(telemetry::EventKind::kDrop, false);
  fq->attach_telemetry(&tel);
  s.target_link()->register_metrics(tel.registry, "link.target");
  sim.register_metrics(tel.registry);
  tel.registry.gauge_fn("legit.bytes_delivered", [&s] {
    return s.monitor().class_cumulative_bytes([](const FlowLabel& l) {
      return l.cls == FlowClass::kLegitimate;
    });
  });
  tel.registry.gauge_fn("attack.bytes_delivered", [&s] {
    return s.monitor().class_cumulative_bytes(
        [](const FlowLabel& l) { return l.cls == FlowClass::kAttack; });
  });
  telemetry::TimeSeriesSampler sampler(&tel.registry,
                                       cfg.floc.control_interval);
  sampler.attach(&sim, cfg.duration);

  char stem[96];
  std::snprintf(stem, sizeof(stem), "ablation_adaptive_%s_%s", strat.name,
                hardened ? "on" : "off");

  // Flight recorder: invariant violations and the never-detected gate
  // freeze the full FlocQueue decision state for post-mortem inspection.
  telemetry::FlightRecorder recorder(&tel.registry);
  recorder.set_journal(&tel.journal);
  recorder.set_bench(stem);
  recorder.add_queue("floc-bottleneck", fq);

  SimMonitor mon;
  mon.set_journal(&tel.journal);
  mon.set_flight_recorder(&recorder);
  mon.watch_queue("floc-bottleneck", fq);
  mon.attach(&sim, 0.5, cfg.duration);

  // Cumulative attack-delivery series for the evasion half-life.
  std::vector<double> attack_bytes;
  for (TimeSec t = 0.0; t <= cfg.duration; t += kSeriesBucket) {
    sim.schedule_at(t, [&s, &attack_bytes] {
      attack_bytes.push_back(s.monitor().class_cumulative_bytes(
          [](const FlowLabel& l) { return l.cls == FlowClass::kAttack; }));
    });
  }

  // Leaf-path probes. Latch journal entries carry *aggregate* keys, which
  // need not match any leaf path once aggregation has merged origins, so
  // attribution goes through FlocQueue::is_attack_path on the origin paths:
  // detection latency is the first post-start probe that finds an
  // attack-leaf path flagged, and the false-positive rate is the
  // time-averaged fraction of legitimate-leaf probes found flagged
  // (including legitimate leaves collaterally merged into attack
  // aggregates).
  std::vector<PathId> attack_paths;
  std::vector<PathId> legit_paths;
  for (int leaf = 0; leaf < s.leaf_count(); ++leaf) {
    (s.leaf_is_attack(leaf) ? attack_paths : legit_paths)
        .push_back(s.leaf_path(leaf));
  }
  double first_detect = -1.0;
  std::uint64_t fp_hits = 0;
  std::uint64_t fp_probes = 0;
  constexpr TimeSec kProbeStep = 0.25;
  for (TimeSec t = kProbeStep; t < cfg.duration; t += kProbeStep) {
    sim.schedule_at(t, [&, t] {
      if (first_detect < 0.0 && t >= cfg.attack_start) {
        for (const PathId& path : attack_paths) {
          if (fq->is_attack_path(path)) {
            first_detect = t;
            break;
          }
        }
      }
      for (const PathId& path : legit_paths) {
        ++fp_probes;
        if (fq->is_attack_path(path)) ++fp_hits;
      }
      recorder.sample(sim.now());
    });
  }

  s.run();

  CaseResult r;
  r.seed = seed;
  const double link = s.scaled_target_bw();
  const auto cb = s.class_bandwidth();
  r.legit_frac = (cb.legit_legit_bps + cb.legit_attack_bps) / link;
  r.attack_frac = cb.attack_bps / link;

  if (first_detect >= 0.0) r.detect_latency = first_detect - cfg.attack_start;
  if (fp_probes > 0) {
    r.fp_rate = static_cast<double>(fp_hits) / static_cast<double>(fp_probes);
  }
  r.escalations = tel.journal.count(telemetry::EventKind::kBackoffEscalate);
  r.blacklists = tel.journal.count(telemetry::EventKind::kBlacklistAdd);
  r.violations = mon.violations().size();

  // In-case gate capture: an attack the defense never flagged is the
  // failure worth a post-mortem bundle here.
  if (strat.attack != AttackType::kNone && r.detect_latency < 0.0) {
    telemetry::IncidentTrigger trig;
    trig.source = telemetry::IncidentTrigger::Source::kGate;
    trig.time = cfg.duration;
    trig.name = "attack_never_detected";
    trig.detail = std::string("strategy=") + strat.name +
                  " hardened=" + (hardened ? "on" : "off");
    recorder.capture(trig);
  }

  // Evasion half-life: windowed attack goodput, peak after attack start,
  // first window at/below half the peak afterwards.
  if (strat.attack != AttackType::kNone && attack_bytes.size() > 2) {
    double peak = 0.0;
    std::size_t peak_i = 0;
    const auto start_i =
        static_cast<std::size_t>(cfg.attack_start / kSeriesBucket) + 1;
    for (std::size_t i = start_i; i < attack_bytes.size(); ++i) {
      const double rate = attack_bytes[i] - attack_bytes[i - 1];
      if (rate > peak) {
        peak = rate;
        peak_i = i;
      }
    }
    for (std::size_t i = peak_i + 1; peak > 0.0 && i < attack_bytes.size();
         ++i) {
      if (attack_bytes[i] - attack_bytes[i - 1] <= 0.5 * peak) {
        r.half_life = static_cast<double>(i - peak_i) * kSeriesBucket;
        break;
      }
    }
  }

  // Artifacts: telemetry series + defense-event journal per case.
  char name[96];
  std::string err;
  sampler.add_rate_column("legit.bytes_delivered");
  sampler.add_rate_column("attack.bytes_delivered");
  std::snprintf(name, sizeof(name), "ablation_adaptive_%s_%s.csv", strat.name,
                hardened ? "on" : "off");
  if (!sampler.save(name, &err)) {
    std::fprintf(stderr, "ablation_adaptive: %s\n", err.c_str());
  }
  r.artifacts.emplace_back(name);
  std::snprintf(name, sizeof(name), "ablation_adaptive_%s_%s.journal.json",
                strat.name, hardened ? "on" : "off");
  if (!tel.journal.save(name, &err)) {
    std::fprintf(stderr, "ablation_adaptive: %s\n", err.c_str());
  }
  r.artifacts.emplace_back(name);
  std::snprintf(name, sizeof(name), "%s.incident.json", stem);
  if (!recorder.save(name, &err)) {
    std::fprintf(stderr, "ablation_adaptive: %s\n", err.c_str());
  }
  r.artifacts.emplace_back(name);
  const std::string mpath = save_metrics(tel.registry, a, stem);
  if (!mpath.empty()) r.artifacts.push_back(mpath);
  r.wall_seconds = static_cast<double>(telemetry::clock_ns() - t0) / 1e9;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs a = BenchArgs::parse(argc, argv);
  header("Adaptive adversaries vs defense hardening",
         "closed-loop attackers beat the static defense (>=2x the goodput of "
         "their open-loop counterparts); interval jitter + backoff release + "
         "the offender blacklist confine them back to within 25% of the "
         "open-loop baseline without taxing flash-crowd traffic",
         a);
  std::printf("%-15s %-5s %7s %8s %8s %8s %7s %6s %7s  %s\n", "strategy",
              "hard", "legit", "attack", "detect", "halflife", "fp", "escal",
              "blist", "violations");

  RunManifest manifest("ablation_adaptive", a);
  // Grid: strategy-major, hardening-minor.
  const std::size_t n_cases = kStrategyCount * 2;
  const auto results = runner::run_indexed<CaseResult>(
      a.jobs, n_cases, [&](std::size_t i) {
        return run_case(kStrategies[i / 2], (i % 2) != 0,
                        a.run_seed(i / 2, kSeedStreamTreeScenario), a);
      });

  std::string csv =
      "strategy,hardened,legit_frac,attack_frac,detect_latency_s,"
      "half_life_s,fp_rate,escalations,blacklists,violations\n";
  std::uint64_t total_violations = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Strategy& strat = kStrategies[i / 2];
    const bool hardened = (i % 2) != 0;
    const CaseResult& r = results[i];
    char detect[16], half[16];
    if (r.detect_latency >= 0.0) {
      std::snprintf(detect, sizeof(detect), "%.2fs", r.detect_latency);
    } else {
      std::snprintf(detect, sizeof(detect), "-");
    }
    if (r.half_life >= 0.0) {
      std::snprintf(half, sizeof(half), "%.0fs", r.half_life);
    } else {
      std::snprintf(half, sizeof(half), "-");
    }
    std::printf("%-15s %-5s %7.3f %8.4f %8s %8s %7.4f %6llu %7llu  %llu\n",
                strat.name, hardened ? "on" : "off", r.legit_frac,
                r.attack_frac, detect, half, r.fp_rate,
                static_cast<unsigned long long>(r.escalations),
                static_cast<unsigned long long>(r.blacklists),
                static_cast<unsigned long long>(r.violations));
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s,%d,%.6f,%.6f,%.3f,%.3f,%.6f,%llu,%llu,%llu\n",
                  strat.name, hardened ? 1 : 0, r.legit_frac, r.attack_frac,
                  r.detect_latency, r.half_life, r.fp_rate,
                  static_cast<unsigned long long>(r.escalations),
                  static_cast<unsigned long long>(r.blacklists),
                  static_cast<unsigned long long>(r.violations));
    csv += buf;
    total_violations += r.violations;
    char label[48];
    std::snprintf(label, sizeof(label), "%s/%s", strat.name,
                  hardened ? "on" : "off");
    manifest.add_run(label, r.seed, r.wall_seconds);
    for (const auto& path : r.artifacts) manifest.add_artifact(path);
    if (i % 2 == 1) std::printf("\n");
  }

  // --- Acceptance ----------------------------------------------------------
  const auto at = [&](std::size_t strategy, bool hardened) -> const CaseResult& {
    return results[strategy * 2 + (hardened ? 1 : 0)];
  };
  bool evasion_works = true;    // adaptive >= 2x open-loop, hardening off
  bool confinement_works = true;  // hardened adaptive <= 1.25x open-loop base
  for (std::size_t i = 0; i < kStrategyCount; ++i) {
    if (kStrategies[i].counterpart < 0) continue;
    const auto base = static_cast<std::size_t>(kStrategies[i].counterpart);
    const double open_off = at(base, false).attack_frac;
    const double adap_off = at(i, false).attack_frac;
    const double adap_on = at(i, true).attack_frac;
    const bool evades = adap_off >= 2.0 * open_off;
    // The hardened adaptive attacker must do no better than what the
    // *unhardened* defense already conceded to its open-loop counterpart —
    // i.e. the hardening strips the whole adaptivity advantage. Absolute
    // floor of 1% of the link so near-zero pairs cannot fail on noise.
    const bool confined = adap_on <= 1.25 * open_off + 0.01;
    std::printf("%-15s evasion x%.2f (off) %s   confinement x%.2f (on) %s\n",
                kStrategies[i].name,
                open_off > 0.0 ? adap_off / open_off : 0.0,
                evades ? "OK" : "FAIL",
                open_off > 0.0 ? adap_on / open_off : 0.0,
                confined ? "OK" : "FAIL");
    evasion_works = evasion_works && evades;
    confinement_works = confinement_works && confined;
  }
  const CaseResult& flash_off = at(kStrategyCount - 1, false);
  const CaseResult& flash_on = at(kStrategyCount - 1, true);
  const bool flash_ok =
      flash_off.legit_frac > 0.0 &&
      std::abs(flash_on.legit_frac - flash_off.legit_frac) <=
          0.10 * flash_off.legit_frac &&
      flash_on.fp_rate <= flash_off.fp_rate + 0.02;
  std::printf("flash-crowd     legit on/off %.3f/%.3f fp %.4f/%.4f %s\n",
              flash_on.legit_frac, flash_off.legit_frac, flash_on.fp_rate,
              flash_off.fp_rate, flash_ok ? "OK" : "FAIL");
  std::printf("invariant violations: %llu\n",
              static_cast<unsigned long long>(total_violations));

  std::string err;
  if (!telemetry::write_text_file("ablation_adaptive.csv", csv, &err)) {
    std::fprintf(stderr, "ablation_adaptive: %s\n", err.c_str());
  }
  manifest.add_artifact("ablation_adaptive.csv");
  manifest.write();
  return (evasion_works && confinement_works && flash_ok &&
          total_violations == 0)
             ? 0
             : 1;
}
