// Fig. 4 (Section IV-A): token consumption under unsynchronized, partially
// synchronized, and fully synchronized TCP flows.
//
// Analytic-simulation harness: n sawtooth sources (the idealized AIMD window
// process) request tokens from a per-path bucket sized by Eqs. IV.1-IV.3.
//   * unsynchronized: sawtooth phases uniform -> ~full token consumption;
//   * synchronized:   identical phases -> only ~3/4 of tokens usable with
//                     the base bucket N, recovered by the increased N';
//   * partial:        in between.
#include <cmath>

#include "bench/bench_common.h"
#include "core/model.h"
#include "core/token_bucket.h"
#include "util/rng.h"

using namespace floc;
using namespace floc::bench;

namespace {

// Fraction of offered demand admitted over `T_total`, where each of n flows
// follows a W/2..W sawtooth and the bucket is refilled per Eq. IV.1/IV.2.
struct SyncResult {
  double utilization;       // admitted / link capacity
  double demand_peak_ratio; // peak demand / mean demand
};

SyncResult run_sync(int n, double sync_degree, bool increased_bucket,
                    std::uint64_t seed) {
  const BitsPerSec c = mbps(100);
  const TimeSec rtt = 0.08;
  const int pkt = 1500;
  const auto params = model::compute_params(c, rtt, n, pkt);
  PathTokenBucket bucket;
  bucket.configure(params, pkt);

  Rng rng(seed);
  // Phase of each flow's sawtooth: sync_degree=1 -> all equal, 0 -> uniform.
  std::vector<double> phase(static_cast<std::size_t>(n));
  for (auto& ph : phase) ph = (1.0 - sync_degree) * rng.uniform();

  const double w_peak = params.peak_window;
  const TimeSec epoch = (w_peak / 2.0) * rtt;  // one sawtooth period
  const TimeSec dt = epoch / 200.0;
  const TimeSec total = 60.0 * epoch;

  double admitted_bytes = 0.0;
  double offered_bytes = 0.0;
  double peak_rate = 0.0;
  std::vector<double> carry(static_cast<std::size_t>(n), 0.0);
  for (TimeSec t = 0.0; t < total; t += dt) {
    double rate_pkts = 0.0;  // aggregate instantaneous send rate in pkts/rtt
    for (int i = 0; i < n; ++i) {
      const double pos =
          std::fmod(t / epoch + phase[static_cast<std::size_t>(i)], 1.0);
      const double w = w_peak / 2.0 + pos * (w_peak / 2.0);  // sawtooth
      rate_pkts += w / rtt;
    }
    peak_rate = std::max(peak_rate, rate_pkts);
    const double demand_bytes = rate_pkts * pkt * dt;
    offered_bytes += demand_bytes;
    double want = demand_bytes + carry[0];
    // Request in whole packets.
    while (want >= pkt) {
      if (bucket.try_consume(pkt, t, increased_bucket)) admitted_bytes += pkt;
      want -= pkt;
    }
    carry[0] = want;
  }
  SyncResult out;
  out.utilization = admitted_bytes * 8.0 / (c * total);
  out.demand_peak_ratio = peak_rate / (offered_bytes * 8.0 / (pkt * 8.0) /
                                       (total) /* mean pkts rate */);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs a = BenchArgs::parse(argc, argv);
  header("Fig. 4 - token consumption vs flow synchronization",
         "unsynchronized flows consume ~all tokens; fully synchronized flows "
         "consume ~3/4 with the base bucket; the increased bucket N' "
         "(Eq. IV.3) restores utilization",
         a);

  const int n = 24;
  std::printf("%-22s %14s %14s %18s\n", "synchronization", "util (base N)",
              "util (incr N')", "tok-used@peak-N");
  RunManifest manifest("fig04", a);
  const double degrees[] = {0.0, 0.5, 1.0};
  struct Row {
    std::string line;
    double wall_seconds = 0.0;
  };
  const auto rows = runner::run_indexed<Row>(
      a.jobs, std::size(degrees), [&](std::size_t i) {
        Row out;
        out.wall_seconds = runner::timed_seconds([&] {
          const double sync = degrees[i];
          // Both variants share one derived seed so they see the same phases.
          const std::uint64_t seed = a.run_seed(i);
          const SyncResult base = run_sync(n, sync, /*increased=*/false, seed);
          const SyncResult incr = run_sync(n, sync, /*increased=*/true, seed);
          char label[32];
          std::snprintf(label, sizeof(label), "degree %.1f%s", sync,
                        sync == 0.0 ? " (unsync)"
                                    : (sync == 1.0 ? " (sync)" : ""));
          // The paper's "3/4 of generated tokens" statement sizes the bucket
          // for the synchronized PEAK (4/3 of the mean): consumed fraction =
          // util/(4/3).
          char line[128];
          std::snprintf(line, sizeof(line), "%-22s %14.3f %14.3f %18.3f\n",
                        label, base.utilization, incr.utilization,
                        incr.utilization * 3.0 / 4.0);
          out.line = line;
        });
        return out;
      });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fputs(rows[i].line.c_str(), stdout);
    char label[32];
    std::snprintf(label, sizeof(label), "degree %.1f", degrees[i]);
    manifest.add_run(label, a.run_seed(i), rows[i].wall_seconds);
  }
  std::printf("\nmodel constants: synchronized utilization = %.2f, "
              "peak/trough request ratio = %.1f\n",
              model::synchronized_utilization(),
              model::synchronized_peak_to_trough());
  manifest.write();
  return 0;
}
