// Shared plumbing for the figure-reproduction harnesses: flag parsing
// (--scale / --paper / --quick), table printing, and the common Section VI
// scenario defaults.
//
// Every bench prints (a) the paper's qualitative expectation for the figure
// and (b) the measured rows, in a layout mirroring the original table/plot,
// so EXPERIMENTS.md can record paper-vs-measured side by side.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "runner/scenario_runner.h"
#include "telemetry/file_util.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "topology/tree_scenario.h"
#include "util/json.h"
#include "util/seed.h"
#include "util/stats.h"

namespace floc::bench {

struct BenchArgs {
  double scale = 0.12;   // default: quick (minutes for the whole suite)
  bool paper = false;    // --paper: publication-scale parameters
  TimeSec duration = 60.0;
  TimeSec measure_start = 20.0;
  std::uint64_t seed = 1;
  int jobs = 1;          // --jobs N: scenario-grid parallelism (0 = auto)
  // --metrics-out csv|json: final-value registry export via save_metrics()
  // ("none" writes nothing).
  std::string metrics_out = "none";

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--paper") == 0) {
        a.paper = true;
        a.scale = 1.0;
        a.duration = 80.0;
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        a.scale = 0.08;
        a.duration = 40.0;
        a.measure_start = 15.0;
      } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
        a.scale = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        a.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
        a.jobs = std::atoi(argv[++i]);
        if (a.jobs <= 0) a.jobs = runner::default_jobs();
      } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc &&
                 (std::strcmp(argv[i + 1], "csv") == 0 ||
                  std::strcmp(argv[i + 1], "json") == 0 ||
                  std::strcmp(argv[i + 1], "none") == 0)) {
        a.metrics_out = argv[++i];
      } else {
        std::fprintf(stderr,
                     "usage: %s [--paper|--quick] [--scale F] [--seed N] "
                     "[--jobs N] [--metrics-out csv|json|none]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return a;
  }

  // Seed of the `index`-th run of logical stream `salt` in this sweep.
  // Runs must derive (never offset) their seeds so every (master, run)
  // world is independent and identical at any --jobs value.
  std::uint64_t run_seed(std::uint64_t index, std::uint64_t salt = 0) const {
    return derive_seed(seed, index, salt);
  }
};

// Source revision of the running binary's checkout, for run provenance.
// "unknown" when git (or the .git directory) is unavailable.
inline std::string git_describe() {
  std::FILE* p = ::popen("git describe --always --dirty --tags 2>/dev/null",
                         "r");
  if (p == nullptr) return "unknown";
  char buf[128] = {};
  std::string out;
  if (std::fgets(buf, sizeof(buf), p) != nullptr) out = buf;
  ::pclose(p);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

// Run manifest: one "<bench>.manifest.json" per bench run recording
// provenance — source revision, configuration, seed, wall time, and the
// artifacts the run produced — so any CSV/trace in a results directory can
// be traced back to the exact code and parameters that made it.
class RunManifest {
 public:
  RunManifest(std::string bench, const BenchArgs& a)
      : bench_(std::move(bench)),
        seed_(a.seed),
        start_unix_(std::time(nullptr)),
        start_ns_(telemetry::clock_ns()) {
    note("scale", a.scale);
    note("paper", a.paper ? "true" : "false");
    note("duration_s", a.duration);
    note("measure_start_s", a.measure_start);
    note("jobs", static_cast<double>(a.jobs));
  }

  void note(const std::string& key, const std::string& value) {
    config_.emplace_back(key, value);
  }
  void note(const std::string& key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", value);
    note(key, std::string(buf));
  }

  void add_artifact(const std::string& path) { artifacts_.push_back(path); }

  // Per-run provenance of a parallel sweep: label, the seed derived for the
  // run, and its wall-clock cost. Appended on the main thread in submission
  // order after the sweep merges, so manifests are byte-stable across
  // --jobs values (apart from the timings themselves). The sum of run walls
  // versus the manifest's total wall_seconds is the sweep's speedup.
  void add_run(const std::string& label, std::uint64_t run_seed,
               double wall_seconds) {
    runs_.push_back({label, run_seed, wall_seconds});
  }

  std::string json() const {
    std::string out = "{\n";
    out += "  \"bench\": \"" + escaped(bench_) + "\",\n";
    out += "  \"git\": \"" + escaped(git_describe()) + "\",\n";
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  \"seed\": %llu,\n",
                  static_cast<unsigned long long>(seed_));
    out += buf;
    std::snprintf(buf, sizeof(buf), "  \"start_unix\": %lld,\n",
                  static_cast<long long>(start_unix_));
    out += buf;
    std::snprintf(buf, sizeof(buf), "  \"wall_seconds\": %.3f,\n",
                  static_cast<double>(telemetry::clock_ns() - start_ns_) / 1e9);
    out += buf;
    out += "  \"config\": {";
    for (std::size_t i = 0; i < config_.size(); ++i) {
      if (i != 0) out += ", ";
      out += "\"" + escaped(config_[i].first) + "\": \"" +
             escaped(config_[i].second) + "\"";
    }
    out += "},\n  \"runs\": [";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      if (i != 0) out += ", ";
      std::snprintf(buf, sizeof(buf), "\"seed\": %llu, \"wall_s\": %.3f}",
                    static_cast<unsigned long long>(runs_[i].seed),
                    runs_[i].wall_seconds);
      out += "{\"label\": \"" + escaped(runs_[i].label) + "\", " + buf;
    }
    out += "],\n  \"artifacts\": [";
    for (std::size_t i = 0; i < artifacts_.size(); ++i) {
      if (i != 0) out += ", ";
      out += "\"" + escaped(artifacts_[i]) + "\"";
    }
    out += "]\n}\n";
    return out;
  }

  // Write "<bench>.manifest.json" next to the other artifacts; returns the
  // path. A manifest failure is reported, never fatal.
  std::string write() const {
    const std::string path = bench_ + ".manifest.json";
    std::string err;
    if (!telemetry::write_text_file(path, json(), &err)) {
      std::fprintf(stderr, "manifest: %s\n", err.c_str());
    }
    return path;
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    return out;
  }

  struct RunRecord {
    std::string label;
    std::uint64_t seed;
    double wall_seconds;
  };

  std::string bench_;
  std::uint64_t seed_;
  std::time_t start_unix_;
  std::uint64_t start_ns_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<RunRecord> runs_;
  std::vector<std::string> artifacts_;
};

// Unified final-value metric export behind --metrics-out, replacing the
// per-bench hand-rolled dumps. Writes "<stem>.metrics.csv" (metric,value
// rows) or "<stem>.metrics.json" (one flat object) in registration order,
// through the registry's scalar view (histograms export their count).
// Returns the artifact path, empty when metrics_out is "none" or the write
// failed — callers feed it straight to the manifest / artifact list.
inline std::string save_metrics(const telemetry::MetricRegistry& reg,
                                const BenchArgs& a, const std::string& stem) {
  if (a.metrics_out == "none") return {};
  std::string path, body;
  if (a.metrics_out == "csv") {
    path = stem + ".metrics.csv";
    body = "metric,value\n";
    char buf[48];
    for (const auto& m : reg.metrics()) {
      std::snprintf(buf, sizeof(buf), ",%.9g\n", reg.value(m->name));
      body += m->name + buf;
    }
  } else {
    path = stem + ".metrics.json";
    json::JsonWriter w;
    w.begin_object();
    for (const auto& m : reg.metrics()) w.field(m->name, reg.value(m->name));
    w.end_object();
    body = w.str() + "\n";
  }
  std::string err;
  if (!telemetry::write_text_file(path, body, &err)) {
    std::fprintf(stderr, "metrics-out: %s\n", err.c_str());
    return {};
  }
  return path;
}

// The Fig. 5 scenario with the bench's scale applied.
inline TreeScenarioConfig fig5_config(const BenchArgs& a) {
  TreeScenarioConfig cfg;
  cfg.scale = a.scale;
  cfg.duration = a.duration;
  cfg.measure_start = a.measure_start;
  cfg.measure_end = a.duration;
  cfg.seed = a.seed;
  return cfg;
}

inline void header(const std::string& title, const std::string& paper_claim,
                   const BenchArgs& a) {
  std::printf("==== %s ====\n", title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("run:   scale=%.2f duration=%.0fs (measured from %.0fs) "
              "jobs=%d%s\n\n",
              a.scale, a.duration, a.measure_start, a.jobs,
              a.paper ? " [PAPER SCALE]" : "");
}

// Number formatting shared with util/stats' format_row so every bench table
// renders values identically.
inline void row(const char* label, const std::vector<double>& values,
                const char* unit = "") {
  char padded[32];
  std::snprintf(padded, sizeof(padded), "%-26s", label);
  std::printf("%s %s\n", format_row(padded, values, 9).c_str(), unit);
}

// Mean/stddev columns of per-sample stats; benches that tabulate multiple
// RunningStats accumulations share this instead of hand-rolled sums.
inline std::vector<double> mean_stddev(const RunningStats& s) {
  return {s.mean(), s.stddev()};
}

}  // namespace floc::bench
