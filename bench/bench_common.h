// Shared plumbing for the figure-reproduction harnesses: flag parsing
// (--scale / --paper / --quick), table printing, and the common Section VI
// scenario defaults.
//
// Every bench prints (a) the paper's qualitative expectation for the figure
// and (b) the measured rows, in a layout mirroring the original table/plot,
// so EXPERIMENTS.md can record paper-vs-measured side by side.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "topology/tree_scenario.h"
#include "util/stats.h"

namespace floc::bench {

struct BenchArgs {
  double scale = 0.12;   // default: quick (minutes for the whole suite)
  bool paper = false;    // --paper: publication-scale parameters
  TimeSec duration = 60.0;
  TimeSec measure_start = 20.0;
  std::uint64_t seed = 1;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--paper") == 0) {
        a.paper = true;
        a.scale = 1.0;
        a.duration = 80.0;
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        a.scale = 0.08;
        a.duration = 40.0;
        a.measure_start = 15.0;
      } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
        a.scale = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        a.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      } else {
        std::fprintf(stderr,
                     "usage: %s [--paper|--quick] [--scale F] [--seed N]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return a;
  }
};

// The Fig. 5 scenario with the bench's scale applied.
inline TreeScenarioConfig fig5_config(const BenchArgs& a) {
  TreeScenarioConfig cfg;
  cfg.scale = a.scale;
  cfg.duration = a.duration;
  cfg.measure_start = a.measure_start;
  cfg.measure_end = a.duration;
  cfg.seed = a.seed;
  return cfg;
}

inline void header(const std::string& title, const std::string& paper_claim,
                   const BenchArgs& a) {
  std::printf("==== %s ====\n", title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("run:   scale=%.2f duration=%.0fs (measured from %.0fs)%s\n\n",
              a.scale, a.duration, a.measure_start,
              a.paper ? " [PAPER SCALE]" : "");
}

// Number formatting shared with util/stats' format_row so every bench table
// renders values identically.
inline void row(const char* label, const std::vector<double>& values,
                const char* unit = "") {
  char padded[32];
  std::snprintf(padded, sizeof(padded), "%-26s", label);
  std::printf("%s %s\n", format_row(padded, values, 9).c_str(), unit);
}

// Mean/stddev columns of per-sample stats; benches that tabulate multiple
// RunningStats accumulations share this instead of hand-rolled sums.
inline std::vector<double> mean_stddev(const RunningStats& s) {
  return {s.mean(), s.stddev()};
}

}  // namespace floc::bench
