// Figs. 11/12 (Section VII-A): Internet-scale simulation topologies.
//
// The paper renders AS graphs built from Skitter maps with CBL-placed bots
// (localized: 100 attack ASes; wide: 300). We print the structural
// statistics that drive the results: size, depth distribution, attack-AS
// placement depth, CBL-style bot concentration, and legit/attack overlap.
#include "bench/inet_bench_common.h"

using namespace floc;
using namespace floc::bench;

int main(int argc, char** argv) {
  BenchArgs a = BenchArgs::parse(argc, argv);
  header("Figs. 11/12 - synthetic Skitter topologies + bot placement",
         "complex AS trees; attack ASes interleaved with legitimate ones "
         "(f-root/h-root) or deeper and better separated (JPN); bots highly "
         "concentrated (CBL: 95% of bots in 1.7% of ASes)",
         a);

  std::printf("%-8s %8s %6s %7s %10s %11s %11s %12s %13s\n", "preset",
              "attackAS", "ASes", "depth", "max depth", "atk depth",
              "legit depth", "bots@top17%", "legit-in-atk");
  RunManifest manifest("fig11_12", a);
  const int attack_cases[] = {100, 300};
  const SkitterPreset presets[] = {SkitterPreset::kFRoot,
                                   SkitterPreset::kHRoot, SkitterPreset::kJpn};
  const std::size_t n_presets = std::size(presets);

  struct CaseOutput {
    std::string row;
    std::uint64_t seed;
    double wall_seconds;
  };
  const auto cases = runner::run_indexed<CaseOutput>(
      a.jobs, std::size(attack_cases) * n_presets, [&](std::size_t i) {
        InetExperimentConfig cfg;
        cfg.preset = presets[i % n_presets];
        cfg.attack_ases = attack_cases[i / n_presets];
        cfg.scale = a.paper ? 1.0 : 0.05;
        // Seed matches the preset's simulated world in Figs. 13-15: the
        // same topologies are rendered here and simulated there.
        cfg.seed = inet_topology_seed(a, i % n_presets);
        CaseOutput out;
        out.seed = cfg.seed;
        out.wall_seconds = runner::timed_seconds([&] {
          const TopologyStats st = topology_stats(cfg);
          char line[192];
          std::snprintf(line, sizeof(line),
                        "%-8s %8d %6d %7.2f %10d %11.2f %11.2f %11.0f%% "
                        "%13d\n",
                        st.preset.c_str(), cfg.attack_ases, st.ases,
                        st.mean_depth, st.max_depth, st.mean_attack_depth,
                        st.mean_legit_depth,
                        100.0 * st.bot_concentration_top17pct,
                        st.legit_in_attack_ases);
          out.row = line;
        });
        return out;
      });
  for (std::size_t i = 0; i < cases.size(); ++i) {
    std::fputs(cases[i].row.c_str(), stdout);
    char label[48];
    std::snprintf(label, sizeof(label), "%s@%d",
                  to_string(presets[i % n_presets]),
                  attack_cases[i / n_presets]);
    manifest.add_run(label, cases[i].seed, cases[i].wall_seconds);
  }
  std::printf("\n(JPN should show the largest mean depth; attack-AS mean "
              "depth >= legit for JPN = better separation)\n");
  manifest.write();
  return 0;
}
