// Figs. 11/12 (Section VII-A): Internet-scale simulation topologies.
//
// The paper renders AS graphs built from Skitter maps with CBL-placed bots
// (localized: 100 attack ASes; wide: 300). We print the structural
// statistics that drive the results: size, depth distribution, attack-AS
// placement depth, CBL-style bot concentration, and legit/attack overlap.
#include "bench/bench_common.h"
#include "inetsim/inet_experiment.h"

using namespace floc;
using namespace floc::bench;

int main(int argc, char** argv) {
  BenchArgs a = BenchArgs::parse(argc, argv);
  header("Figs. 11/12 - synthetic Skitter topologies + bot placement",
         "complex AS trees; attack ASes interleaved with legitimate ones "
         "(f-root/h-root) or deeper and better separated (JPN); bots highly "
         "concentrated (CBL: 95% of bots in 1.7% of ASes)",
         a);

  std::printf("%-8s %8s %6s %7s %10s %11s %11s %12s %13s\n", "preset",
              "attackAS", "ASes", "depth", "max depth", "atk depth",
              "legit depth", "bots@top17%", "legit-in-atk");
  for (int attack_ases : {100, 300}) {
    for (SkitterPreset preset :
         {SkitterPreset::kFRoot, SkitterPreset::kHRoot, SkitterPreset::kJpn}) {
      InetExperimentConfig cfg;
      cfg.preset = preset;
      cfg.attack_ases = attack_ases;
      cfg.scale = a.paper ? 1.0 : 0.05;
      cfg.seed = a.seed + 4;
      const TopologyStats st = topology_stats(cfg);
      std::printf("%-8s %8d %6d %7.2f %10d %11.2f %11.2f %11.0f%% %13d\n",
                  st.preset.c_str(), attack_ases, st.ases, st.mean_depth,
                  st.max_depth, st.mean_attack_depth, st.mean_legit_depth,
                  100.0 * st.bot_concentration_top17pct,
                  st.legit_in_attack_ases);
    }
  }
  std::printf("\n(JPN should show the largest mean depth; attack-AS mean "
              "depth >= legit for JPN = better separation)\n");
  return 0;
}
