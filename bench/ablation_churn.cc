// Dependability under churn: legitimate goodput before / during / after a
// mid-attack fault — (a) a FLoc router reboot that wipes all soft state,
// (b) a capability-key rotation, (c) a target-link flap — for FLoc vs the
// baselines.
//
// The paper evaluates a failure-free router. This ablation quantifies the
// graceful-degradation machinery instead: how many control intervals FLoc
// needs to re-identify the attack paths after a state-losing reboot, and
// whether legitimate goodput re-converges (within 20% of its pre-fault
// level) after each fault. Baselines carry no router soft state in this
// simulator, so reboot/rotation are no-ops for them (their rows double as
// the fault-free reference); the link flap hits every scheme equally.
//
// Every FLoc case additionally samples the full metric registry once per
// control interval and writes the series (FlocQueue mode, per-DropReason
// drops, legitimate goodput, link/simulator gauges) to
// ablation_churn_<fault>.csv in the working directory; the defense-event
// journal (mode transitions, latch/release, fault activations, invariant
// violations) feeds the relatch/interference columns.
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "faultsim/fault_plan.h"
#include "faultsim/sim_monitor.h"
#include "telemetry/telemetry.h"
#include "telemetry/time_series.h"

using namespace floc;
using namespace floc::bench;

namespace {

enum class FaultKind { kReboot, kKeyRotation, kLinkFlap };

const char* to_string(FaultKind f) {
  switch (f) {
    case FaultKind::kReboot: return "reboot";
    case FaultKind::kKeyRotation: return "key-rotation";
    case FaultKind::kLinkFlap: return "link-flap";
  }
  return "?";
}

constexpr TimeSec kFaultTime = 24.0;
constexpr TimeSec kWindow = 6.0;        // pre/during/after goodput windows
constexpr TimeSec kFlapOutage = 0.75;   // link down time for kLinkFlap

// Periodically checks whether every attack-leaf path is attack-flagged
// again; records the first time that happens after a state wipe.
struct RelatchProbe {
  Simulator* sim;
  FlocQueue* fq;
  const std::vector<PathId>* paths;
  TimeSec period;
  TimeSec until;
  double* relatch_time;  // -1 until re-latched

  void operator()() const {
    if (*relatch_time < 0.0) {
      bool all = true;
      for (const PathId& p : *paths) {
        if (!fq->is_attack_path(p)) {
          all = false;
          break;
        }
      }
      if (all) {
        *relatch_time = sim->now();
        return;
      }
    }
    if (sim->now() + period <= until) sim->schedule_in(period, *this);
  }
};

struct CaseResult {
  double pre = 0.0, during = 0.0, after = 0.0;  // legit goodput, link fraction
  int relatch_intervals = -1;                   // reboot only, -1 = n/a
  std::uint64_t reissues = 0;
  std::uint64_t violations = 0;
  std::uint64_t mode_transitions = 0;
  std::uint64_t seed = 0;
  double wall_seconds = 0.0;
  std::vector<std::string> artifacts;  // merged into the manifest in order
};

CaseResult run_case(DefenseScheme scheme, FaultKind fault, std::uint64_t seed,
                    const BenchArgs& a) {
  const std::uint64_t t0 = telemetry::clock_ns();
  TreeScenarioConfig cfg = fig5_config(a);
  cfg.scheme = scheme;
  cfg.attack = AttackType::kCbr;
  cfg.attack_rate = mbps(2.0);
  cfg.attack_start = 5.0;
  cfg.duration = kFaultTime + 2.0 * kWindow + 2.0;
  cfg.measure_start = kFaultTime - kWindow;
  cfg.measure_end = cfg.duration;
  cfg.seed = seed;
  TreeScenario s(cfg);

  FlocQueue* fq = s.floc_queue();
  Simulator& sim = s.sim();

  // Telemetry: every counter of interest is a registry gauge, sampled once
  // per control interval; defense events land in the journal. kDrop events
  // are counted but not stored (a flood records millions of them).
  telemetry::Telemetry tel;
  tel.journal.set_enabled(telemetry::EventKind::kDrop, false);
  if (fq != nullptr) fq->attach_telemetry(&tel);
  s.target_link()->register_metrics(tel.registry, "link.target");
  sim.register_metrics(tel.registry);
  tel.registry.gauge_fn("legit.bytes_delivered", [&s] {
    return s.monitor().class_cumulative_bytes([](const FlowLabel& l) {
      return l.cls == FlowClass::kLegitimate;
    });
  });
  telemetry::TimeSeriesSampler sampler(&tel.registry,
                                       cfg.floc.control_interval);
  sampler.attach(&sim, cfg.duration);

  // Goodput windows as monitor snapshots.
  for (int i = 0; i <= 3; ++i) {
    const TimeSec t = kFaultTime + (i - 1) * kWindow;
    sim.schedule_at(t, [&s, i] {
      s.monitor().snapshot("w" + std::to_string(i), s.sim().now());
    });
  }

  FaultPlan plan(derive_seed(cfg.seed, 0, kSeedStreamFaultPlan));
  plan.set_journal(&tel.journal);
  switch (fault) {
    case FaultKind::kReboot:
      if (fq != nullptr) plan.add_reboot(fq, kFaultTime);
      break;
    case FaultKind::kKeyRotation:
      if (fq != nullptr)
        plan.add_key_rotation(fq, kFaultTime, 0x5EC2E7B007ED5EC2ULL);
      break;
    case FaultKind::kLinkFlap:
      plan.add_link_flap(s.target_link(), kFaultTime, kFaultTime + kFlapOutage);
      break;
  }
  plan.install(&sim);

  // Invariant monitoring across the faulty run.
  SimMonitor mon;
  mon.set_journal(&tel.journal);
  if (fq != nullptr) mon.watch_queue("floc-bottleneck", fq);
  mon.attach(&sim, 0.5, cfg.duration);

  // Attack-path re-latch probe (meaningful after the reboot wipes flags).
  std::vector<PathId> attack_paths;
  for (int leaf = 0; leaf < s.leaf_count(); ++leaf) {
    if (s.leaf_is_attack(leaf)) attack_paths.push_back(s.leaf_path(leaf));
  }
  double relatch_time = -1.0;
  if (fq != nullptr && fault == FaultKind::kReboot) {
    sim.schedule_at(kFaultTime,
                    RelatchProbe{&sim, fq, &attack_paths,
                                 cfg.floc.control_interval, cfg.duration,
                                 &relatch_time});
  }

  s.run();

  const auto legit = [](const FlowLabel& l) {
    return l.cls == FlowClass::kLegitimate;
  };
  CaseResult r;
  r.seed = seed;
  const double link = s.scaled_target_bw();
  r.pre = s.monitor().class_bps(legit, "w0", "w1") / link;
  r.during = s.monitor().class_bps(legit, "w1", "w2") / link;
  r.after = s.monitor().class_bps(legit, "w2", "w3") / link;
  if (relatch_time >= 0.0) {
    r.relatch_intervals = static_cast<int>(
        (relatch_time - kFaultTime) / cfg.floc.control_interval + 0.5);
  }
  if (fq != nullptr) r.reissues = fq->cap_reissues();
  r.violations = mon.violations().size();
  r.mode_transitions = tel.journal.count(telemetry::EventKind::kModeTransition);

  // Per-interval time series + defense-event journal for the FLoc cases:
  // mode, per-reason drops, legitimate goodput, link/sim gauges.
  if (fq != nullptr) {
    sampler.add_rate_column("legit.bytes_delivered");
    char name[64];
    std::string err;
    std::snprintf(name, sizeof(name), "ablation_churn_%s.csv",
                  to_string(fault));
    if (!sampler.save(name, &err)) {
      std::fprintf(stderr, "ablation_churn: %s\n", err.c_str());
    }
    r.artifacts.emplace_back(name);
    std::snprintf(name, sizeof(name), "ablation_churn_%s.journal.json",
                  to_string(fault));
    if (!tel.journal.save(name, &err)) {
      std::fprintf(stderr, "ablation_churn: %s\n", err.c_str());
    }
    r.artifacts.emplace_back(name);
  }
  const std::string mpath =
      save_metrics(tel.registry, a,
                   std::string("ablation_churn_") + floc::to_string(scheme) +
                       "_" + to_string(fault));
  if (!mpath.empty()) r.artifacts.push_back(mpath);
  r.wall_seconds = static_cast<double>(telemetry::clock_ns() - t0) / 1e9;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs a = BenchArgs::parse(argc, argv);
  header("Dependability under churn - reboot / key rotation / link flap",
         "graceful degradation: legitimate goodput re-converges within 20% of "
         "its pre-fault level a bounded number of control intervals after "
         "each fault; attack paths re-latch after a state-losing reboot",
         a);
  std::printf("%-10s %-13s %8s %8s %8s %10s %9s %9s %10s  %s\n", "scheme",
              "fault", "pre", "during", "after", "after/pre", "relatch",
              "reissues", "mode-trans", "invariant-violations");
  RunManifest manifest("ablation_churn", a);
  std::uint64_t total_violations = 0;
  bool floc_reconverged = true;
  const DefenseScheme schemes[] = {DefenseScheme::kFloc,
                                   DefenseScheme::kPushback,
                                   DefenseScheme::kRedPd,
                                   DefenseScheme::kDropTail};
  const FaultKind faults[] = {FaultKind::kReboot, FaultKind::kKeyRotation,
                              FaultKind::kLinkFlap};
  const std::size_t n_faults = std::size(faults);
  const auto results = runner::run_indexed<CaseResult>(
      a.jobs, std::size(schemes) * n_faults, [&](std::size_t i) {
        return run_case(schemes[i / n_faults], faults[i % n_faults],
                        a.run_seed(i, kSeedStreamTreeScenario), a);
      });
  for (std::size_t i = 0; i < results.size(); ++i) {
    const DefenseScheme scheme = schemes[i / n_faults];
    const FaultKind fault = faults[i % n_faults];
    const CaseResult& r = results[i];
    char relatch[16];
    if (r.relatch_intervals >= 0) {
      std::snprintf(relatch, sizeof relatch, "%d ivl", r.relatch_intervals);
    } else {
      std::snprintf(relatch, sizeof relatch, "-");
    }
    const double ratio = r.pre > 0.0 ? r.after / r.pre : 0.0;
    std::printf(
        "%-10s %-13s %8.3f %8.3f %8.3f %10.3f %9s %9llu %10llu  %llu\n",
        floc::to_string(scheme), to_string(fault), r.pre, r.during, r.after,
        ratio, relatch, static_cast<unsigned long long>(r.reissues),
        static_cast<unsigned long long>(r.mode_transitions),
        static_cast<unsigned long long>(r.violations));
    total_violations += r.violations;
    if (scheme == DefenseScheme::kFloc && ratio < 0.8)
      floc_reconverged = false;
    char label[48];
    std::snprintf(label, sizeof(label), "%s/%s", floc::to_string(scheme),
                  to_string(fault));
    manifest.add_run(label, r.seed, r.wall_seconds);
    for (const auto& path : r.artifacts) manifest.add_artifact(path);
    if (i % n_faults == n_faults - 1) std::printf("\n");
  }
  std::printf("goodput = legitimate-flow goodput as a fraction of the target "
              "link;\nfault at t=%.0fs, windows of %.0fs; reboot/rotation are "
              "no-ops for stateless baselines\n",
              kFaultTime, kWindow);
  std::printf("FLoc re-convergence (after within 20%% of pre): %s; "
              "invariant violations: %llu\n",
              floc_reconverged ? "yes" : "NO",
              static_cast<unsigned long long>(total_violations));
  manifest.write();
  return (total_violations == 0 && floc_reconverged) ? 0 : 1;
}
