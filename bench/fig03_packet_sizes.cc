// Fig. 3 (Section III-D): packet-size robustness.
//
// The paper observes that Internet traffic is dominated by 40 B control and
// ~1.3-1.5 KB full-size packets (the 1.3 KB mode coming from VPN tunneling)
// and argues it is sufficient for FLoc to reason in full-size packets since
// those flows "exhibit the same congestion control characteristics". This
// harness floods with different attack packet sizes and verifies FLoc's
// confinement is insensitive to the size mix.
#include "bench/bench_common.h"

using namespace floc;
using namespace floc::bench;

int main(int argc, char** argv) {
  BenchArgs a = BenchArgs::parse(argc, argv);
  header("Fig. 3 - robustness to packet-size mix",
         "confinement of an equal-bit-rate CBR flood is insensitive to the "
         "attacker's packet size (1500 / 1300 / 700 B)",
         a);
  std::printf("%-12s %14s %14s %12s %8s\n", "attack pkt", "legit/legitP",
              "legit/attackP", "attack", "util");
  RunManifest manifest("fig03", a);
  const int sizes[] = {1500, 1300, 700};
  struct Row {
    std::string line;
    double wall_seconds = 0.0;
  };
  const auto rows = runner::run_indexed<Row>(
      a.jobs, std::size(sizes), [&](std::size_t i) {
        Row out;
        out.wall_seconds = runner::timed_seconds([&] {
          TreeScenarioConfig cfg = fig5_config(a);
          cfg.scheme = DefenseScheme::kFloc;
          cfg.attack = AttackType::kCbr;
          cfg.attack_rate = mbps(2.0);
          cfg.attack_packet_bytes = sizes[i];
          cfg.seed = a.run_seed(i, kSeedStreamTreeScenario);
          TreeScenario s(cfg);
          s.run();
          const auto cb = s.class_bandwidth();
          const double link = s.scaled_target_bw();
          char line[128];
          std::snprintf(line, sizeof(line),
                        "%-12d %14.3f %14.3f %12.3f %8.3f\n", sizes[i],
                        cb.legit_legit_bps / link, cb.legit_attack_bps / link,
                        cb.attack_bps / link,
                        (cb.legit_legit_bps + cb.legit_attack_bps +
                         cb.attack_bps) / link);
          out.line = line;
        });
        return out;
      });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fputs(rows[i].line.c_str(), stdout);
    manifest.add_run(std::to_string(sizes[i]) + "B",
                     a.run_seed(i, kSeedStreamTreeScenario),
                     rows[i].wall_seconds);
  }
  std::printf("\n(the legit/attack split should be nearly constant across "
              "rows)\n");
  manifest.write();
  return 0;
}
