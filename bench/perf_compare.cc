// Perf regression gate: diffs two BENCH_perf.json reports (baseline vs
// current) with the per-metric noise-derived tolerances from
// src/telemetry/perf_baseline.h, prints the human delta table, and exits
// nonzero when the gate fails — scripts/check.sh's perf leg and CI run it
// against the committed repo-root baseline after every perf_suite run.
//
// Exit codes:
//   0  gate passed (improvements and ungated drift are fine)
//   1  a gated metric regressed beyond its tolerance
//   2  schema drift: version mismatch or a baseline metric went missing
//   3  could not load/parse an input
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "telemetry/perf_baseline.h"

int main(int argc, char** argv) {
  using floc::telemetry::PerfCompareOptions;
  using floc::telemetry::PerfComparison;
  using floc::telemetry::PerfReport;

  PerfCompareOptions opts;
  const char* paths[2] = {nullptr, nullptr};
  int n_paths = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-rel") == 0 && i + 1 < argc) {
      opts.min_rel = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--noise-mult") == 0 && i + 1 < argc) {
      opts.noise_mult = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--gate-all") == 0) {
      opts.gate_all = true;
    } else if (argv[i][0] != '-' && n_paths < 2) {
      paths[n_paths++] = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s BASELINE.json CURRENT.json [--min-rel F] "
                   "[--noise-mult F] [--gate-all]\n",
                   argv[0]);
      return 3;
    }
  }
  if (n_paths != 2) {
    std::fprintf(stderr, "usage: %s BASELINE.json CURRENT.json\n", argv[0]);
    return 3;
  }

  PerfReport baseline, current;
  std::string err;
  if (!PerfReport::load(paths[0], &baseline, &err)) {
    std::fprintf(stderr, "perf_compare: baseline: %s\n", err.c_str());
    return 3;
  }
  if (!PerfReport::load(paths[1], &current, &err)) {
    std::fprintf(stderr, "perf_compare: current: %s\n", err.c_str());
    return 3;
  }

  std::printf("baseline: %s (%s, git %s)\n", paths[0], baseline.mode.c_str(),
              baseline.git.c_str());
  std::printf("current:  %s (%s, git %s)\n\n", paths[1], current.mode.c_str(),
              current.git.c_str());

  const PerfComparison cmp =
      floc::telemetry::compare_perf(baseline, current, opts);
  std::fputs(cmp.table().c_str(), stdout);

  if (cmp.schema_mismatch || cmp.missing > 0) {
    std::fprintf(stderr,
                 "perf_compare: SCHEMA DRIFT — refresh the committed "
                 "baseline (run perf_suite and commit BENCH_perf.json)\n");
    return 2;
  }
  if (cmp.gated_regressions > 0) {
    std::fprintf(stderr, "perf_compare: GATE FAILED — %d gated metric(s) "
                 "regressed beyond tolerance\n",
                 cmp.gated_regressions);
    return 1;
  }
  std::printf("perf gate: OK\n");
  return 0;
}
