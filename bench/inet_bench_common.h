// Shared driver for the Fig. 13/14/15 Internet-scale harnesses.
//
// The three Skitter topologies are independent worlds, so they run through
// the ScenarioRunner (--jobs N) and their tables are merged in submission
// order — output is byte-identical at any jobs value.
#pragma once

#include <iterator>

#include "bench/bench_common.h"
#include "inetsim/inet_experiment.h"

namespace floc::bench {

// Seed of the `index`-th Internet-scale topology world under this master
// seed. Shared by Figs. 11-15 and the inet ablation so the topologies
// Fig. 11/12 renders are the ones Figs. 13-15 simulate. (Historically this
// was `a.seed + 4`, which collides across adjacent master seeds — master m
// run k and master m+1 run k-1 were the same world; see util/seed.h.)
inline std::uint64_t inet_topology_seed(const BenchArgs& a,
                                        std::uint64_t index = 0) {
  return a.run_seed(index, kSeedStreamInetTopology);
}

inline void run_inet_figure(const char* name, const char* title,
                            const char* claim, int attack_ases, double overlap,
                            const BenchArgs& a) {
  BenchArgs args = a;
  header(title, claim, args);
  RunManifest manifest(name, args);
  manifest.note("attack_ases", static_cast<double>(attack_ases));
  manifest.note("legit_overlap", overlap);
  const double scale = a.paper ? 1.0 : 0.05;
  manifest.note("inet_scale", scale);

  const SkitterPreset presets[] = {SkitterPreset::kFRoot,
                                   SkitterPreset::kHRoot, SkitterPreset::kJpn};

  struct TopoResult {
    std::string table;
    std::uint64_t seed;
    double wall_seconds;
    std::vector<double> floc_legit, floc_util;
  };
  auto results = runner::run_indexed<TopoResult>(
      a.jobs, std::size(presets), [&](std::size_t i) {
        InetExperimentConfig cfg;
        cfg.preset = presets[i];
        cfg.attack_ases = attack_ases;
        cfg.legit_overlap = overlap;
        cfg.scale = scale;
        cfg.ticks = a.paper ? 6000 : 3000;
        cfg.seed = inet_topology_seed(a, i);
        TopoResult out;
        out.seed = cfg.seed;
        out.wall_seconds = runner::timed_seconds([&] {
          char line[160];
          std::snprintf(line, sizeof(line), "--- topology %s ---\n",
                        to_string(cfg.preset));
          out.table += line;
          std::snprintf(line, sizeof(line), "%-8s %16s %17s %10s %8s %7s\n",
                        "policy", "legit(legitAS)%", "legit(attackAS)%",
                        "attack%", "util%", "paths");
          out.table += line;
          for (const auto& row : run_inet_experiment(cfg)) {
            std::snprintf(line, sizeof(line),
                          "%-8s %15.1f%% %16.1f%% %9.1f%% %7.1f%% %7d\n",
                          row.label.c_str(),
                          100.0 * row.results.legit_legit_frac,
                          100.0 * row.results.legit_attack_frac,
                          100.0 * row.results.attack_frac,
                          100.0 * row.results.utilization,
                          row.results.aggregate_count);
            out.table += line;
            // FLoc rows are NA (no guarantee) and A-<n> (n guaranteed paths).
            if (row.label == "NA" || row.label.rfind("A-", 0) == 0) {
              out.floc_legit.push_back(100.0 * row.results.legit_legit_frac);
              out.floc_util.push_back(100.0 * row.results.utilization);
            }
          }
        });
        return out;
      });

  // Merge in submission (preset) order: tables, manifest run records, and
  // the cross-topology spread of the FLoc rows.
  RunningStats floc_legit, floc_util;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TopoResult& r = results[i];
    std::fputs(r.table.c_str(), stdout);
    std::printf("\n");
    manifest.add_run(to_string(presets[i]), r.seed, r.wall_seconds);
    for (double v : r.floc_legit) floc_legit.add(v);
    for (double v : r.floc_util) floc_util.add(v);
  }
  if (floc_legit.count() > 0) {
    std::printf("floc rows (NA, A-*) across topologies: legit(legitAS) "
                "%.1f%% +/- %.1f, util %.1f%% +/- %.1f\n\n",
                floc_legit.mean(), floc_legit.stddev(), floc_util.mean(),
                floc_util.stddev());
  }
  manifest.write();
}

}  // namespace floc::bench
