// Shared driver for the Fig. 13/14/15 Internet-scale harnesses.
#pragma once

#include "bench/bench_common.h"
#include "inetsim/inet_experiment.h"

namespace floc::bench {

inline void run_inet_figure(const char* name, const char* title,
                            const char* claim, int attack_ases, double overlap,
                            const BenchArgs& a) {
  BenchArgs args = a;
  header(title, claim, args);
  RunManifest manifest(name, args);
  manifest.note("attack_ases", static_cast<double>(attack_ases));
  manifest.note("legit_overlap", overlap);
  const double scale = a.paper ? 1.0 : 0.05;
  manifest.note("inet_scale", scale);
  // Cross-topology spread of the FLoc rows, accumulated with the shared
  // RunningStats instead of per-figure sum variables.
  RunningStats floc_legit, floc_util;
  for (SkitterPreset preset :
       {SkitterPreset::kFRoot, SkitterPreset::kHRoot, SkitterPreset::kJpn}) {
    InetExperimentConfig cfg;
    cfg.preset = preset;
    cfg.attack_ases = attack_ases;
    cfg.legit_overlap = overlap;
    cfg.scale = scale;
    cfg.ticks = a.paper ? 6000 : 3000;
    cfg.seed = a.seed + 4;
    std::printf("--- topology %s ---\n", to_string(preset));
    std::printf("%-8s %16s %17s %10s %8s %7s\n", "policy", "legit(legitAS)%",
                "legit(attackAS)%", "attack%", "util%", "paths");
    for (const auto& row : run_inet_experiment(cfg)) {
      std::printf("%-8s %15.1f%% %16.1f%% %9.1f%% %7.1f%% %7d\n",
                  row.label.c_str(), 100.0 * row.results.legit_legit_frac,
                  100.0 * row.results.legit_attack_frac,
                  100.0 * row.results.attack_frac,
                  100.0 * row.results.utilization,
                  row.results.aggregate_count);
      // FLoc rows are NA (no guarantee) and A-<n> (n guaranteed paths).
      if (row.label == "NA" || row.label.rfind("A-", 0) == 0) {
        floc_legit.add(100.0 * row.results.legit_legit_frac);
        floc_util.add(100.0 * row.results.utilization);
      }
    }
    std::printf("\n");
  }
  if (floc_legit.count() > 0) {
    std::printf("floc rows (NA, A-*) across topologies: legit(legitAS) "
                "%.1f%% +/- %.1f, util %.1f%% +/- %.1f\n\n",
                floc_legit.mean(), floc_legit.stddev(), floc_util.mean(),
                floc_util.stddev());
  }
  manifest.write();
}

}  // namespace floc::bench
