// Fig. 7 (Section VI-B): robustness of bandwidth guarantees — CDF of the
// bandwidth received by legitimate flows on legitimate paths under varying
// CBR attack strength, for FLoc vs Pushback vs RED-PD (plus RED, no-attack).
//
// Paper shape: FLoc's CDFs are nearly identical across attack strengths with
// mean close to the ideal fair bandwidth (0.617 Mbps/flow at paper scale);
// Pushback's and RED-PD's CDFs shift left (less bandwidth) as the attack
// grows.
#include "bench/bench_common.h"

using namespace floc;
using namespace floc::bench;

namespace {

Cdf run_case(DefenseScheme scheme, double attack_rate_mbps,
             std::uint64_t seed, const BenchArgs& a) {
  TreeScenarioConfig cfg = fig5_config(a);
  cfg.scheme = scheme;
  cfg.attack = attack_rate_mbps > 0.0 ? AttackType::kCbr : AttackType::kNone;
  cfg.attack_rate = mbps(std::max(attack_rate_mbps, 0.1));
  cfg.seed = seed;
  TreeScenario s(cfg);
  s.run();
  return s.legit_path_flow_cdf();
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs a = BenchArgs::parse(argc, argv);
  header("Fig. 7 - CDF of legit-path flow bandwidth vs attack strength",
         "FLoc CDFs nearly invariant in attack strength, mean ~fair share; "
         "Pushback and RED-PD shift left (starved) as the attack grows",
         a);

  // The per-flow ideal fair bandwidth is scale-invariant: link/(27*legit).
  const double fair_flow = mbps(500) / (27.0 * 30.0);
  std::printf("ideal fair bandwidth per legit flow: %.0f kbps\n\n",
              fair_flow / 1e3);

  const double rates[] = {0.0, 0.5, 1.0, 2.0, 4.0};
  const DefenseScheme schemes[] = {DefenseScheme::kFloc,
                                   DefenseScheme::kPushback,
                                   DefenseScheme::kRedPd};
  // Flattened (scheme x rate) grid; run index == print position, so rows
  // merge back into the per-scheme tables in submission order.
  const std::size_t n_rates = std::size(rates);
  RunManifest manifest("fig07", a);
  struct Case {
    Cdf cdf;
    double wall_seconds = 0.0;
  };
  const auto cases = runner::run_indexed<Case>(
      a.jobs, std::size(schemes) * n_rates, [&](std::size_t i) {
        Case out;
        out.wall_seconds = runner::timed_seconds([&] {
          out.cdf = run_case(schemes[i / n_rates], rates[i % n_rates],
                             a.run_seed(i, kSeedStreamTreeScenario), a);
        });
        return out;
      });
  for (std::size_t i = 0; i < cases.size(); ++i) {
    char label[48];
    std::snprintf(label, sizeof(label), "%s @ %.1f Mbps/bot",
                  to_string(schemes[i / n_rates]), rates[i % n_rates]);
    manifest.add_run(label, a.run_seed(i, kSeedStreamTreeScenario),
                     cases[i].wall_seconds);
  }
  for (std::size_t si = 0; si < std::size(schemes); ++si) {
    std::printf("--- %s ---\n", to_string(schemes[si]));
    std::printf("%-16s %9s %9s %9s %9s %12s\n", "attack rate", "p10", "p50",
                "p90", "mean", "frac>=fair/2");
    for (std::size_t ri = 0; ri < n_rates; ++ri) {
      const double rate = rates[ri];
      const Cdf& cdf = cases[si * n_rates + ri].cdf;
      char label[32];
      std::snprintf(label, sizeof(label),
                    rate == 0.0 ? "no attack" : "%.1f Mbps/bot", rate);
      std::printf("%-16s %9.0f %9.0f %9.0f %9.0f %12.2f\n", label,
                  cdf.quantile(0.1) / 1e3, cdf.quantile(0.5) / 1e3,
                  cdf.quantile(0.9) / 1e3, cdf.mean() / 1e3,
                  1.0 - cdf.fraction_below(fair_flow / 2.0));
    }
    std::printf("\n");
  }
  std::printf("(kbps per flow; frac>=fair/2 = share of legit-path flows at "
              "or above half the ideal fair bandwidth)\n");
  manifest.write();
  return 0;
}
