// Internet-scale ablation: which part of the Section VII result comes from
// which mechanism. Runs the localized f-root scenario with FLoc variants:
//   quotas-only  — per-path fair allocation, no per-flow preferential filter
//   no-spare-pref — spare capacity served uniformly instead of conformant-first
//   full (NA)    — per-path quotas + preferential filter
//   full (A)     — plus conformance-driven aggregation
#include <cmath>

#include "bench/inet_bench_common.h"
#include "topology/bot_distribution.h"

using namespace floc;
using namespace floc::bench;

int main(int argc, char** argv) {
  BenchArgs a = BenchArgs::parse(argc, argv);
  header("Internet-scale ablation (f-root, localized attack)",
         "path quotas alone localize the flood; the preferential filter "
         "squeezes bots inside their quotas; aggregation returns the "
         "contaminated domains' shares to legitimate ones",
         a);

  const double scale = a.paper ? 1.0 : 0.05;
  SkitterConfig scfg;
  scfg.as_count = std::max(300, static_cast<int>(2000 * std::sqrt(scale)));
  // Derived, not offset: `a.seed + 4` collided across adjacent master seeds
  // (util/seed.h); topology/placement/tick are separate streams.
  scfg.seed = inet_topology_seed(a);
  const AsGraph graph = generate_skitter_tree(scfg);
  PlacementConfig pcfg;
  pcfg.legit_sources = std::max(100, static_cast<int>(10000 * scale));
  pcfg.legit_ases = std::max(20, static_cast<int>(200 * std::sqrt(scale)));
  pcfg.attack_sources = std::max(1000, static_cast<int>(100000 * scale));
  pcfg.attack_ases = std::max(10, static_cast<int>(100 * std::sqrt(scale)));
  pcfg.seed = a.run_seed(0, kSeedStreamInetPlacement);
  const SourcePlacement placement = place_sources(graph, pcfg);

  TickConfig base;
  base.bottleneck_capacity = std::max(200, static_cast<int>(16000 * scale));
  base.internal_capacity = 4 * base.bottleneck_capacity;
  base.ticks = a.paper ? 6000 : 3000;
  base.warmup_ticks = base.ticks / 3;
  base.seed = a.run_seed(0, kSeedStreamInetTick);

  struct Variant {
    const char* label;
    TickConfig cfg;
  };
  std::vector<Variant> variants;
  {
    TickConfig c = base;
    c.policy = TickPolicy::kFloc;
    c.attack_over_rate = 1e9;  // filter never triggers: quotas only
    variants.push_back({"quotas-only", c});
  }
  {
    TickConfig c = base;
    c.policy = TickPolicy::kFloc;
    variants.push_back({"full (NA)", c});
  }
  {
    TickConfig c = base;
    c.policy = TickPolicy::kFloc;
    c.guaranteed_paths =
        std::max(4, static_cast<int>((pcfg.legit_ases + pcfg.attack_ases) * 0.6));
    variants.push_back({"full (A)", c});
  }

  std::printf("%-14s %16s %17s %10s %8s\n", "variant", "legit(legitAS)%",
              "legit(attackAS)%", "attack%", "paths");
  RunManifest manifest("ablation_inet", a);
  manifest.note("inet_scale", scale);
  // The graph and placement are shared read-only across the variant runs;
  // each TickSim owns its world (tick state + Rng seeded from v.cfg.seed).
  struct CaseOutput {
    std::string row;
    double wall_seconds;
  };
  const auto cases = runner::run_indexed<CaseOutput>(
      a.jobs, variants.size(), [&](std::size_t i) {
        const Variant& v = variants[i];
        CaseOutput out;
        out.wall_seconds = runner::timed_seconds([&] {
          TickSim sim(graph, placement, v.cfg);
          const TickResults r = sim.run();
          char line[160];
          std::snprintf(line, sizeof(line),
                        "%-14s %15.1f%% %16.1f%% %9.1f%% %8d\n", v.label,
                        100.0 * r.legit_legit_frac,
                        100.0 * r.legit_attack_frac, 100.0 * r.attack_frac,
                        r.aggregate_count);
          out.row = line;
        });
        return out;
      });
  for (std::size_t i = 0; i < cases.size(); ++i) {
    std::fputs(cases[i].row.c_str(), stdout);
    manifest.add_run(variants[i].label, variants[i].cfg.seed,
                     cases[i].wall_seconds);
  }
  std::printf("\n(each mechanism should add legitimate-path bandwidth on top "
              "of the previous row)\n");
  manifest.write();
  return 0;
}
