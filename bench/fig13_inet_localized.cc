// Fig. 13 (Section VII-C): Internet-scale bandwidth guarantees, localized
// attack (bots in 100 ASes, 30% of legitimate sources inside attack ASes).
#include "bench/inet_bench_common.h"

int main(int argc, char** argv) {
  using namespace floc::bench;
  const BenchArgs a = BenchArgs::parse(argc, argv);
  run_inet_figure(
      "fig13",
      "Fig. 13 - Internet-scale, localized attack (100 attack ASes)",
      "ND: legit denied (~0%); FF: legit ~20% (above its ~9% fair share via "
      "priority); FLoc NA: legit-path flows ~70-75%; aggregation (A-*) "
      "raises legit-path bandwidth further and trims legit flows inside "
      "attack ASes; per-flow, legit >> attack",
      /*attack_ases=*/100, /*overlap=*/0.3, a);
  return 0;
}
