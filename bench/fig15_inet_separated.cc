// Section VII-C final experiment: separated topologies — no intentional
// placement of legitimate sources inside attack ASes.
#include "bench/inet_bench_common.h"

int main(int argc, char** argv) {
  using namespace floc::bench;
  const BenchArgs a = BenchArgs::parse(argc, argv);
  run_inet_figure(
      "fig15",
      "Fig. 15 - Internet-scale, separated legit/attack ASes (overlap 0)",
      "with legitimate ASes disjoint from attack ASes, localization is "
      "cleanest: legit-path bandwidth is highest and legit traffic inside "
      "attack ASes ~vanishes; aggregation keeps its advantage",
      /*attack_ases=*/100, /*overlap=*/0.0, a);
  return 0;
}
