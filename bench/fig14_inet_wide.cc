// Fig. 14 (Section VII-C): Internet-scale bandwidth guarantees with widely
// dispersed bots (300 attack ASes).
#include "bench/inet_bench_common.h"

int main(int argc, char** argv) {
  using namespace floc::bench;
  const BenchArgs a = BenchArgs::parse(argc, argv);
  run_inet_figure(
      "fig14",
      "Fig. 14 - Internet-scale, wide attack dispersion (300 attack ASes)",
      "vs Fig. 13: legit-path bandwidth under NA decreases (more active "
      "paths dilute each share, more ASes turn attack) while legit flows in "
      "attack ASes gain; aggregation is MORE effective against dispersed "
      "attacks",
      /*attack_ases=*/300, /*overlap=*/0.3, a);
  return 0;
}
