// Section V router-design micro-benchmarks (google-benchmark).
//
// The paper argues FLoc scales to backbone routers (OC-192) because the
// per-packet work is a few hash computations plus O(1) counter updates, and
// attack state lives in a fixed-size filter (128 MB for m=4, b=24). These
// benchmarks measure the per-operation costs of every data-path component:
// capability issue/verify, token-bucket admission, drop-filter update/query,
// the FLoc queue end-to-end enqueue path, and the control-plane aggregation.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/aggregation.h"
#include "core/capability.h"
#include "core/drop_filter.h"
#include "core/floc_queue.h"
#include "core/token_bucket.h"
#include "telemetry/profiler.h"
#include "telemetry/tracing.h"
#include "util/siphash.h"

namespace floc {
namespace {

void BM_SipHashWords(benchmark::State& state) {
  SipKey key{0x123, 0x456};
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(siphash24_words(key, {i++, 42, 7}));
  }
}
BENCHMARK(BM_SipHashWords);

void BM_CapabilityIssue(benchmark::State& state) {
  CapabilityIssuer issuer(0x5EC, 2);
  const PathId path = PathId::of({1, 2, 3});
  HostAddr src = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(issuer.issue(src++, 99, path));
  }
}
BENCHMARK(BM_CapabilityIssue);

void BM_CapabilityVerify(benchmark::State& state) {
  CapabilityIssuer issuer(0x5EC, 2);
  Packet p;
  p.src = 1;
  p.dst = 99;
  p.path = PathId::of({1, 2, 3});
  const auto caps = issuer.issue(p.src, p.dst, p.path);
  p.cap0 = caps.cap0;
  p.cap1 = caps.cap1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(issuer.verify(p));
  }
}
BENCHMARK(BM_CapabilityVerify);

void BM_TokenBucketConsume(benchmark::State& state) {
  PathTokenBucket bucket;
  bucket.configure(model::compute_params(mbps(100), 0.05, 30, 1500), 1500);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bucket.try_consume(1500, t, true));
    t += 1e-4;
  }
}
BENCHMARK(BM_TokenBucketConsume);

void BM_DropFilterRecord(benchmark::State& state) {
  DropFilterConfig cfg;
  cfg.bits = static_cast<int>(state.range(0));
  ScalableDropFilter filter(cfg);
  double t = 0.0;
  std::uint64_t key = 0;
  for (auto _ : state) {
    filter.record_drop(key++ % 100000, t, 0.1);
    t += 1e-5;
  }
}
BENCHMARK(BM_DropFilterRecord)->Arg(16)->Arg(20)->Arg(24);

void BM_DropFilterQuery(benchmark::State& state) {
  DropFilterConfig cfg;
  cfg.bits = 20;
  ScalableDropFilter filter(cfg);
  for (std::uint64_t k = 0; k < 100000; ++k) filter.record_drop(k, 1.0, 0.1);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.preferential_drop_prob(key++ % 100000, 2.0, 0.1));
  }
}
BENCHMARK(BM_DropFilterQuery);

void run_floc_enqueue_dequeue(benchmark::State& state,
                              telemetry::Telemetry* tel,
                              telemetry::Tracer* tracer = nullptr,
                              telemetry::Profiler* prof = nullptr) {
  FlocConfig cfg;
  cfg.link_bandwidth = gbps(10);
  cfg.buffer_packets = 4096;
  FlocQueue q(cfg);
  if (tel != nullptr) {
    // Counters stay registry-polled; only journal events touch the hot path.
    tel->journal.set_enabled(telemetry::EventKind::kDrop, false);
    q.attach_telemetry(tel);
  }
  if (tracer != nullptr) q.set_tracer(tracer);
  if (prof != nullptr) q.set_profiler(prof);
  const int paths = static_cast<int>(state.range(0));
  std::vector<PathId> ids;
  for (int i = 0; i < paths; ++i)
    ids.push_back(PathId::of({static_cast<AsNumber>(i + 1), static_cast<AsNumber>(100 + i)}));
  double t = 0.0;
  FlowId flow = 0;
  for (auto _ : state) {
    Packet p;
    p.flow = flow % (static_cast<FlowId>(paths) * 50);
    p.src = static_cast<HostAddr>(p.flow + 1);
    p.dst = 9999;
    p.path = ids[static_cast<std::size_t>(flow % static_cast<FlowId>(paths))];
    ++flow;
    telemetry::SpanId span = 0;
    if (tracer != nullptr) {
      // Play the link's role: root a queue-residency span at the hop so the
      // FLoc admission verdict has a span to annotate.
      span = tracer->begin(t, p.flow, 0, telemetry::SpanKind::kQueue,
                           /*pid=*/1, /*tid=*/0, p.seq, p.size_bytes);
      p.span = SpanContext{p.flow, span, 0};
    }
    q.enqueue(std::move(p), t);
    q.dequeue(t);
    if (tracer != nullptr) tracer->end(span, t);
    t += 1.2e-6;  // ~10 Gbps of full-size packets
  }
}

void BM_FlocEnqueueDequeue(benchmark::State& state) {
  run_floc_enqueue_dequeue(state, nullptr);
}
BENCHMARK(BM_FlocEnqueueDequeue)->Arg(8)->Arg(64)->Arg(512);

// Same data path with telemetry attached: the delta over the run above is
// the true per-packet cost of the pointer-null guard plus event journaling.
void BM_FlocEnqueueDequeueTelemetry(benchmark::State& state) {
  telemetry::Telemetry tel;
  run_floc_enqueue_dequeue(state, &tel);
}
BENCHMARK(BM_FlocEnqueueDequeueTelemetry)->Arg(8)->Arg(64)->Arg(512);

// Data path with causal span tracing attached: every packet gets a queue
// span and FLoc annotates its admission verdict. The delta over
// BM_FlocEnqueueDequeue is the attached tracing overhead; the detached cost
// is the null pointer test already included in the baseline run.
void BM_FlocEnqueueDequeueTraced(benchmark::State& state) {
  telemetry::Tracer tracer(/*max_spans=*/4096);
  run_floc_enqueue_dequeue(state, nullptr, &tracer);
}
BENCHMARK(BM_FlocEnqueueDequeueTraced)->Arg(8)->Arg(64)->Arg(512);

// Data path with the wall-clock profiler attached (scoped timers around
// enqueue/dequeue/control/cap-verify). Delta over the baseline = two
// steady-clock reads per packet.
void BM_FlocEnqueueDequeueProfiled(benchmark::State& state) {
  telemetry::Profiler prof;
  run_floc_enqueue_dequeue(state, nullptr, nullptr, &prof);
}
BENCHMARK(BM_FlocEnqueueDequeueProfiled)->Arg(8)->Arg(64)->Arg(512);

void BM_AggregationPlan(benchmark::State& state) {
  const int paths = static_cast<int>(state.range(0));
  std::vector<PathSnapshot> snaps;
  Rng rng(7);
  for (int i = 0; i < paths; ++i) {
    snaps.push_back(PathSnapshot{
        PathId::of({static_cast<AsNumber>(i % 16 + 1),
                    static_cast<AsNumber>(i % 64 + 100),
                    static_cast<AsNumber>(i + 1000)}),
        rng.uniform(), rng.uniform(1.0, 100.0)});
  }
  AggregationConfig cfg;
  cfg.s_max = paths / 2;
  Aggregator agg(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.plan(snaps));
  }
}
BENCHMARK(BM_AggregationPlan)->Arg(64)->Arg(512);

void BM_FilterFalsePositiveMath(benchmark::State& state) {
  double n = 1e5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScalableDropFilter::false_positive_ratio(n, 4, 24));
    n += 1.0;
  }
}
BENCHMARK(BM_FilterFalsePositiveMath);

}  // namespace
}  // namespace floc

// Custom main (instead of benchmark_main) so the run leaves a
// router_design_micro.manifest.json like every other bench: provenance for
// any results directory that collects the google-benchmark output.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  floc::bench::BenchArgs args;  // google-benchmark owns the real flags
  floc::bench::RunManifest manifest("router_design_micro", args);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  manifest.write();
  return 0;
}
