// Bounded-state overload resilience scorecard: identity-churn attackers vs
// the state budgets + overload mode (ISSUE 7 tentpole gate).
//
// Grid (attack-major, bounding-minor):
//   {no-churn baseline, state-exhaust churn} x {budgets OFF, budgets ON}
// where "ON" arms per-table capacities (origin/flow/offense/offender), the
// overload high-watermark machinery, and backoff-release + blacklist so
// every bounded table is live. Scheduled probes record the maximum size of
// every defense table across each run (an RSS proxy: these maps ARE the
// defense's per-path/per-flow/per-sender memory).
//
// A scripted re-latch micro-case rides along: latch a flood path, evict it
// with identity churn (LRU), resume the flood, and measure the time until
// the detector re-latches — the EvictionSketch must restore the verdict
// within one full MTD interval (plus the partial first boundary), not the
// whole hysteresis from zero.
//
// Storm alerting: an AlertEngine watches eviction and packet rates in the
// netdata packets-storm shape (short-window vs long-window average with a
// min-rate floor); firings export as .alerts.json and the whole registry as
// a Prometheus .prom text file per churn case.
//
// Acceptance encoded in the exit code:
//   * pressure is real: with budgets OFF, churn grows the origin table past
//     the ON-case capacity (the attack actually exhausts state);
//   * tables hold: with budgets ON, every probed table size stays <= its
//     budget for the whole run, churn or not;
//   * legitimate traffic survives: legit goodput under churn with budgets ON
//     stays within 15% of the no-churn bounded baseline;
//   * the evicted-then-resuming flood re-latches within one MTD interval;
//   * the eviction-storm alert fires in the bounded churn case;
//   * zero SimMonitor invariant violations anywhere.
// All grid cases run through ScenarioRunner and are byte-identical at any
// --jobs value.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/bench_common.h"
#include "faultsim/sim_monitor.h"
#include "telemetry/alerts.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"
#include "telemetry/time_series.h"

using namespace floc;
using namespace floc::bench;

namespace {

constexpr TimeSec kAttackStart = 5.0;

// Budgets for the bounded rows. Generous enough for the legitimate Fig. 5
// population (27 leaf paths, ~30 flows/leaf at scale 1), tight enough that
// a churn attack must trip eviction and overload.
constexpr std::size_t kOriginBudget = 96;
constexpr std::size_t kFlowBudget = 48;
constexpr std::size_t kOffenseBudget = 64;
constexpr std::size_t kOffenderBudget = 64;

struct CaseResult {
  double legit_frac = 0.0;      // legit goodput / target link
  std::size_t origins_max = 0;  // max probed table sizes (RSS proxy)
  std::size_t flows_max = 0;
  std::size_t offense_max = 0;
  std::size_t offenders_max = 0;
  std::uint64_t evictions = 0;
  std::uint64_t overload_entries = 0;
  std::uint64_t identities = 0;   // identities the attackers minted
  std::uint64_t evict_storm_fires = 0;
  std::uint64_t violations = 0;
  std::uint64_t seed = 0;
  double wall_seconds = 0.0;
  std::vector<std::string> artifacts;
};

CaseResult run_case(bool churn, bool bounded, std::uint64_t seed,
                    const BenchArgs& a) {
  const std::uint64_t t0 = telemetry::clock_ns();
  TreeScenarioConfig cfg = fig5_config(a);
  cfg.scheme = DefenseScheme::kFloc;
  cfg.attack = churn ? AttackType::kStateExhaust : AttackType::kNone;
  cfg.attack_start = kAttackStart;
  cfg.state_churn_per_sec = 100.0;
  cfg.state_identity_pool = 1 << 10;
  cfg.seed = seed;
  if (bounded) {
    cfg.floc.origin_budget.capacity = kOriginBudget;
    cfg.floc.origin_budget.policy = EvictionPolicy::kLru;
    cfg.floc.flow_budget.capacity = kFlowBudget;
    cfg.floc.offense_budget.capacity = kOffenseBudget;
    cfg.floc.offender_budget.capacity = kOffenderBudget;
    cfg.floc.enable_overload_mode = true;
    cfg.floc.backoff_release = true;
    cfg.floc.enable_blacklist = true;
  }
  TreeScenario s(cfg);
  FlocQueue* fq = s.floc_queue();
  Simulator& sim = s.sim();

  telemetry::Telemetry tel;
  tel.journal.set_enabled(telemetry::EventKind::kDrop, false);
  fq->attach_telemetry(&tel);
  s.target_link()->register_metrics(tel.registry, "link.target");

  // Storm alerting in the netdata packets-storm shape, on the simulation
  // clock so firings are deterministic and --jobs-invariant.
  telemetry::AlertEngine alerts(&tel.registry);
  {
    telemetry::AlertRule r;
    r.name = "state_evict_storm";
    r.metric = "floc.state.evictions";
    r.short_window = 2.0;
    r.long_window = 10.0;
    r.ratio = 3.0;
    r.clear_ratio = 1.5;
    r.min_rate = 5.0;
    alerts.add_rule(r);
    telemetry::AlertRule o;
    o.name = "state_pressure";
    o.metric = "floc.state.occupancy";
    o.kind = telemetry::AlertKind::kThreshold;
    o.threshold = 0.9;
    o.clear_threshold = 0.7;
    alerts.add_rule(o);
  }

  const char* akey = churn ? "churn" : "baseline";
  const char* bkey = bounded ? "on" : "off";
  char stem[96];
  std::snprintf(stem, sizeof(stem), "ablation_state_exhaust_%s_%s", akey,
                bkey);

  // Flight recorder: alert fires and invariant violations freeze a bundle
  // with the full FlocQueue decision state (budget occupancy included).
  telemetry::FlightRecorder recorder(&tel.registry);
  recorder.set_journal(&tel.journal);
  recorder.set_bench(stem);
  recorder.add_queue("floc-bottleneck", fq);
  alerts.set_flight_recorder(&recorder);

  SimMonitor mon;
  mon.set_journal(&tel.journal);
  mon.set_flight_recorder(&recorder);
  mon.watch_queue("floc-bottleneck", fq);
  mon.attach(&sim, 0.5, cfg.duration);

  // Table-size probes: the gate is "under budget at EVERY probe", not just
  // at the end, so sample on the control cadence.
  CaseResult r;
  constexpr TimeSec kProbeStep = 0.25;
  for (TimeSec t = kProbeStep; t < cfg.duration; t += kProbeStep) {
    sim.schedule_at(t, [&r, fq, &alerts, &recorder, &sim] {
      r.origins_max = std::max(
          r.origins_max, static_cast<std::size_t>(fq->active_origin_path_count()));
      r.flows_max = std::max(r.flows_max, fq->max_path_flow_count());
      r.offense_max = std::max(r.offense_max, fq->offense_size());
      r.offenders_max = std::max(r.offenders_max, fq->offender_size());
      recorder.sample(sim.now());
      alerts.sample(sim.now());
    });
  }

  s.run();

  r.seed = seed;
  const auto cb = s.class_bandwidth();
  r.legit_frac =
      (cb.legit_legit_bps + cb.legit_attack_bps) / s.scaled_target_bw();
  r.evictions = fq->state_evictions();
  r.overload_entries = fq->overload_entries();
  for (const auto& src : s.state_exhaust_sources()) {
    r.identities += src->identities_used();
  }
  r.evict_storm_fires = alerts.fired("state_evict_storm");
  r.violations = mon.violations().size();

  // In-case gate capture: a bounded table past its budget is THE failure
  // this scorecard exists to catch — freeze the full queue state for it.
  if (bounded &&
      (r.origins_max > kOriginBudget || r.flows_max > kFlowBudget ||
       r.offense_max > kOffenseBudget || r.offenders_max > kOffenderBudget)) {
    telemetry::IncidentTrigger trig;
    trig.source = telemetry::IncidentTrigger::Source::kGate;
    trig.time = cfg.duration;
    trig.name = "bounded_table_over_budget";
    trig.detail = "a bounded defense table exceeded its capacity budget";
    trig.observed = static_cast<double>(r.origins_max);
    recorder.capture(trig);
  }

  // Artifacts: journal, alert history, incidents, and a Prometheus scrape
  // per case.
  char name[96];
  std::string err;
  std::snprintf(name, sizeof(name),
                "ablation_state_exhaust_%s_%s.journal.json", akey, bkey);
  if (!tel.journal.save(name, &err)) {
    std::fprintf(stderr, "ablation_state_exhaust: %s\n", err.c_str());
  }
  r.artifacts.emplace_back(name);
  std::snprintf(name, sizeof(name), "ablation_state_exhaust_%s_%s.alerts.json",
                akey, bkey);
  if (!alerts.save(name, &err)) {
    std::fprintf(stderr, "ablation_state_exhaust: %s\n", err.c_str());
  }
  r.artifacts.emplace_back(name);
  std::snprintf(name, sizeof(name), "ablation_state_exhaust_%s_%s.prom", akey,
                bkey);
  if (!telemetry::write_text_file(
          name, alerts.render_prometheus_with_alerts(), &err)) {
    std::fprintf(stderr, "ablation_state_exhaust: %s\n", err.c_str());
  }
  r.artifacts.emplace_back(name);
  std::snprintf(name, sizeof(name), "%s.incident.json", stem);
  if (!recorder.save(name, &err)) {
    std::fprintf(stderr, "ablation_state_exhaust: %s\n", err.c_str());
  }
  r.artifacts.emplace_back(name);
  const std::string mpath = save_metrics(tel.registry, a, stem);
  if (!mpath.empty()) r.artifacts.push_back(mpath);
  r.wall_seconds = static_cast<double>(telemetry::clock_ns() - t0) / 1e9;
  return r;
}

// Scripted re-latch micro-case, directly against a FlocQueue: latch a flood
// path, evict it via LRU identity churn while the flood is quiet, resume,
// and measure the time to re-latch. Returns the latency in control
// intervals (negative if it never re-latched or never evicted).
double relatch_intervals() {
  FlocConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 60;
  cfg.control_interval = 0.05;
  cfg.default_rtt = 0.05;
  cfg.enable_aggregation = false;
  cfg.origin_budget.capacity = 8;
  cfg.origin_budget.policy = EvictionPolicy::kLru;
  FlocQueue q(cfg);

  const PathId good = PathId::of({1, 10});
  const PathId bad = PathId::of({2, 20});
  const double dt = 1.0 / 2500.0;
  double next_service = 0.0;
  auto step = [&](double t, bool flood) {
    if (flood) {
      Packet p;
      p.flow = 100;
      p.src = 2;
      p.dst = 99;
      p.path = bad;
      p.type = PacketType::kData;
      q.enqueue(std::move(p), t);
    }
    Packet g;
    g.flow = 1;
    g.src = 1;
    g.dst = 99;
    g.path = good;
    g.type = PacketType::kData;
    q.enqueue(std::move(g), t);
    while (next_service <= t) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
  };
  double t = 0.0;
  for (; t < 2.0; t += dt) step(t, true);  // latch the flood
  if (!q.is_attack_path(bad)) return -1.0;
  for (int i = 0; q.is_attack_path(bad) && i < 2500; ++i, t += dt) {
    Packet c;  // identity churn evicts the now-quiet latched origin
    c.flow = 300 + i % 32;
    c.src = 4;
    c.dst = 99;
    c.path = PathId::of({4, 100u + static_cast<unsigned>(i)});
    c.type = PacketType::kSyn;
    c.size_bytes = 40;
    q.enqueue(std::move(c), t);
    step(t, false);
  }
  if (q.is_attack_path(bad) || q.evicted_origins() == 0) return -1.0;
  const double resume = t + 0.2;
  next_service = resume;
  for (int i = 0; i < 2500; ++i) {
    const double tt = resume + i * dt;
    step(tt, true);
    if (q.is_attack_path(bad)) {
      return (tt - resume) / cfg.control_interval;
    }
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs a = BenchArgs::parse(argc, argv);
  header("State exhaustion vs bounded tables + overload mode",
         "identity churn exhausts an unbounded defense's per-path/per-flow/"
         "per-sender state; capacity budgets with deterministic eviction, the "
         "eviction sketch, and overload-mode degradation keep every table "
         "under budget while legitimate goodput stays within 15% of the "
         "no-churn baseline",
         a);
  std::printf("%-10s %-7s %7s %8s %7s %7s %7s %9s %8s %7s  %s\n", "attack",
              "bounded", "legit", "origins", "flows", "offense", "offndr",
              "evicted", "overload", "storms", "violations");

  RunManifest manifest("ablation_state_exhaust", a);
  // Grid: attack-major, bounding-minor.
  const auto results =
      runner::run_indexed<CaseResult>(a.jobs, 4, [&](std::size_t i) {
        return run_case(/*churn=*/i >= 2, /*bounded=*/(i % 2) != 0,
                        a.run_seed(i / 2, kSeedStreamTreeScenario), a);
      });

  std::string csv =
      "attack,bounded,legit_frac,origins_max,flows_max,offense_max,"
      "offenders_max,evictions,overload_entries,identities,storm_fires,"
      "violations\n";
  std::uint64_t total_violations = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const bool churn = i >= 2;
    const bool bounded = (i % 2) != 0;
    const CaseResult& r = results[i];
    std::printf(
        "%-10s %-7s %7.3f %8zu %7zu %7zu %7zu %9llu %8llu %7llu  %llu\n",
        churn ? "churn" : "baseline", bounded ? "on" : "off", r.legit_frac,
        r.origins_max, r.flows_max, r.offense_max, r.offenders_max,
        static_cast<unsigned long long>(r.evictions),
        static_cast<unsigned long long>(r.overload_entries),
        static_cast<unsigned long long>(r.evict_storm_fires),
        static_cast<unsigned long long>(r.violations));
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s,%d,%.6f,%zu,%zu,%zu,%zu,%llu,%llu,%llu,%llu,%llu\n",
                  churn ? "churn" : "baseline", bounded ? 1 : 0, r.legit_frac,
                  r.origins_max, r.flows_max, r.offense_max, r.offenders_max,
                  static_cast<unsigned long long>(r.evictions),
                  static_cast<unsigned long long>(r.overload_entries),
                  static_cast<unsigned long long>(r.identities),
                  static_cast<unsigned long long>(r.evict_storm_fires),
                  static_cast<unsigned long long>(r.violations));
    csv += buf;
    total_violations += r.violations;
    char label[48];
    std::snprintf(label, sizeof(label), "%s/%s", churn ? "churn" : "baseline",
                  bounded ? "on" : "off");
    manifest.add_run(label, r.seed, r.wall_seconds);
    for (const auto& path : r.artifacts) manifest.add_artifact(path);
    if (i % 2 == 1) std::printf("\n");
  }

  // --- Acceptance ----------------------------------------------------------
  const CaseResult& base_on = results[1];   // no churn, bounded
  const CaseResult& churn_off = results[2];  // churn, unbounded
  const CaseResult& churn_on = results[3];   // churn, bounded

  const bool pressure_real = churn_off.origins_max > kOriginBudget;
  const bool tables_hold =
      base_on.origins_max <= kOriginBudget &&
      churn_on.origins_max <= kOriginBudget &&
      base_on.flows_max <= kFlowBudget && churn_on.flows_max <= kFlowBudget &&
      churn_on.offense_max <= kOffenseBudget &&
      churn_on.offenders_max <= kOffenderBudget;
  const bool legit_holds =
      base_on.legit_frac > 0.0 &&
      churn_on.legit_frac >= 0.85 * base_on.legit_frac;
  const double relatch = relatch_intervals();
  // One full measured interval, plus the partial interval before the first
  // control boundary after the flood resumes.
  const bool relatch_ok = relatch >= 0.0 && relatch <= 2.0;
  const bool storm_alerted = churn_on.evict_storm_fires > 0;

  std::printf("pressure   origins unbounded-max %zu vs budget %zu %s\n",
              churn_off.origins_max, kOriginBudget,
              pressure_real ? "OK" : "FAIL");
  std::printf("budgets    every bounded table under budget all run %s\n",
              tables_hold ? "OK" : "FAIL");
  std::printf("legit      churn/no-churn %.3f/%.3f (>= 0.85x) %s\n",
              churn_on.legit_frac, base_on.legit_frac,
              legit_holds ? "OK" : "FAIL");
  std::printf("re-latch   %.2f control intervals (<= 2) %s\n", relatch,
              relatch_ok ? "OK" : "FAIL");
  std::printf("alerting   evict-storm fires (bounded churn) %llu %s\n",
              static_cast<unsigned long long>(churn_on.evict_storm_fires),
              storm_alerted ? "OK" : "FAIL");
  std::printf("invariant violations: %llu\n",
              static_cast<unsigned long long>(total_violations));

  std::string err;
  if (!telemetry::write_text_file("ablation_state_exhaust.csv", csv, &err)) {
    std::fprintf(stderr, "ablation_state_exhaust: %s\n", err.c_str());
  }
  manifest.add_artifact("ablation_state_exhaust.csv");
  manifest.write();
  return (pressure_real && tables_hold && legit_holds && relatch_ok &&
          storm_alerted && total_violations == 0)
             ? 0
             : 1;
}
