// Fig. 10 (Section VI-D): covert attacks — each bot opens k concurrent
// low-rate (fair-bandwidth) connections to k distinct destinations.
//
// Paper shape: FLoc with n_max=2 capability slots classifies a high-fanout
// source as a single high-rate flow and preferentially drops it, capping the
// covert army regardless of k. Pushback reacts far too late (only once the
// aggregate exceeds the link) and RED-PD's per-flow fairness hands the
// attackers bandwidth *proportional to their flow count* — at k=20 the
// "fair" share of 7200 attack flows vs 810 legit flows approaches 90%.
#include "bench/bench_common.h"

using namespace floc;
using namespace floc::bench;

namespace {

void run_case(DefenseScheme scheme, int connections, const BenchArgs& a) {
  TreeScenarioConfig cfg = fig5_config(a);
  cfg.scheme = scheme;
  cfg.attack = AttackType::kCovert;
  cfg.covert_connections = connections;
  cfg.attack_rate = mbps(0.2);  // per connection: exactly one fair share
  cfg.floc.n_max = 2;           // capability slots (Section IV-B.3)
  TreeScenario s(cfg);
  s.run();
  const auto cb = s.class_bandwidth();
  const double link = s.scaled_target_bw();
  std::printf("%-10s %6d %14.3f %14.3f %10.3f\n", to_string(scheme),
              connections,
              (cb.legit_legit_bps + cb.legit_attack_bps) / link,
              cb.attack_bps / link,
              (cb.legit_legit_bps + cb.legit_attack_bps + cb.attack_bps) / link);
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs a = BenchArgs::parse(argc, argv);
  header("Fig. 10 - covert attacks (k legit-looking flows per bot, n_max=2)",
         "FLoc caps the covert army's share as k grows (slot accounting "
         "treats each bot as one high-rate source); Pushback reacts only "
         "when the aggregate exceeds the link; RED-PD hands the attackers "
         "bandwidth proportional to their flow count",
         a);
  std::printf("%-10s %6s %14s %14s %10s\n", "scheme", "k", "legit frac",
              "attack frac", "util");
  for (DefenseScheme scheme :
       {DefenseScheme::kFloc, DefenseScheme::kPushback, DefenseScheme::kRedPd}) {
    for (int k : {1, 2, 5, 10, 20}) run_case(scheme, k, a);
    std::printf("\n");
  }
  std::printf("(fractions of the target link over the measurement window)\n");
  return 0;
}
