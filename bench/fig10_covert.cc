// Fig. 10 (Section VI-D): covert attacks — each bot opens k concurrent
// low-rate (fair-bandwidth) connections to k distinct destinations.
//
// Paper shape: FLoc with n_max=2 capability slots classifies a high-fanout
// source as a single high-rate flow and preferentially drops it, capping the
// covert army regardless of k. Pushback reacts far too late (only once the
// aggregate exceeds the link) and RED-PD's per-flow fairness hands the
// attackers bandwidth *proportional to their flow count* — at k=20 the
// "fair" share of 7200 attack flows vs 810 legit flows approaches 90%.
#include "bench/bench_common.h"

using namespace floc;
using namespace floc::bench;

namespace {

std::string run_case(DefenseScheme scheme, int connections,
                     std::uint64_t seed, const BenchArgs& a) {
  TreeScenarioConfig cfg = fig5_config(a);
  cfg.scheme = scheme;
  cfg.attack = AttackType::kCovert;
  cfg.covert_connections = connections;
  cfg.attack_rate = mbps(0.2);  // per connection: exactly one fair share
  cfg.floc.n_max = 2;           // capability slots (Section IV-B.3)
  cfg.seed = seed;
  TreeScenario s(cfg);
  s.run();
  const auto cb = s.class_bandwidth();
  const double link = s.scaled_target_bw();
  char line[128];
  std::snprintf(line, sizeof(line), "%-10s %6d %14.3f %14.3f %10.3f\n",
                to_string(scheme), connections,
                (cb.legit_legit_bps + cb.legit_attack_bps) / link,
                cb.attack_bps / link,
                (cb.legit_legit_bps + cb.legit_attack_bps + cb.attack_bps) /
                    link);
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs a = BenchArgs::parse(argc, argv);
  header("Fig. 10 - covert attacks (k legit-looking flows per bot, n_max=2)",
         "FLoc caps the covert army's share as k grows (slot accounting "
         "treats each bot as one high-rate source); Pushback reacts only "
         "when the aggregate exceeds the link; RED-PD hands the attackers "
         "bandwidth proportional to their flow count",
         a);
  std::printf("%-10s %6s %14s %14s %10s\n", "scheme", "k", "legit frac",
              "attack frac", "util");
  const DefenseScheme schemes[] = {DefenseScheme::kFloc,
                                   DefenseScheme::kPushback,
                                   DefenseScheme::kRedPd};
  RunManifest manifest("fig10", a);
  const int ks[] = {1, 2, 5, 10, 20};
  const std::size_t n_ks = std::size(ks);
  struct Row {
    std::string line;
    double wall_seconds = 0.0;
  };
  const auto rows = runner::run_indexed<Row>(
      a.jobs, std::size(schemes) * n_ks, [&](std::size_t i) {
        Row out;
        out.wall_seconds = runner::timed_seconds([&] {
          out.line = run_case(schemes[i / n_ks], ks[i % n_ks],
                              a.run_seed(i, kSeedStreamTreeScenario), a);
        });
        return out;
      });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fputs(rows[i].line.c_str(), stdout);
    char label[48];
    std::snprintf(label, sizeof(label), "%s k=%d",
                  to_string(schemes[i / n_ks]), ks[i % n_ks]);
    manifest.add_run(label, a.run_seed(i, kSeedStreamTreeScenario),
                     rows[i].wall_seconds);
    if (i % n_ks == n_ks - 1) std::printf("\n");
  }
  std::printf("(fractions of the target link over the measurement window)\n");
  manifest.write();
  return 0;
}
