// Fig. 6 (Section VI-A): attack confinement under three flooding strategies
// on the Fig. 5 topology with FLoc at the target link.
//
//  (a) high-population TCP attack - per-path bandwidth nearly identical
//      regardless of population;
//  (b) CBR attack (720 Mbps offered vs 500 Mbps link) - legitimate paths get
//      *more* than in (a): attack paths are pinned by fixed buckets;
//  (c) Shrew attack - handled at least as well as CBR, higher variance.
//
// Besides the summary table, each case samples per-path cumulative delivered
// bytes from the metric registry once per second and writes the series (the
// form of the paper's plots) to fig06_<attack>.csv in the working directory:
// one wide row per sample with "path.L<i>.bytes" columns plus their
// ".rate" (bytes/s) derivatives. Each case also records a causal span trace
// (TCP send -> queue residency with the FLoc admission verdict -> link
// transmission) and exports it to fig06_<attack>.trace.json in Chrome
// trace-event format — open it in https://ui.perfetto.dev or
// chrome://tracing. A fig06.manifest.json records provenance + artifacts.
#include <cstdio>

#include "bench/bench_common.h"
#include "telemetry/alerts.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/time_series.h"
#include "telemetry/trace_export.h"
#include "telemetry/tracing.h"

using namespace floc;
using namespace floc::bench;

namespace {

// One fully isolated world per attack case: its own scenario (Simulator +
// Rng), MetricRegistry, Tracer, and Profiler, so the three cases can run on
// pool threads. Nothing is printed here — the caller merges the returned
// rows/artifacts in submission order (the --jobs determinism contract).
struct CaseOutput {
  std::string row;        // summary table line
  std::string profile;    // wall-clock profiler block
  std::vector<std::string> artifacts;
  std::uint64_t seed = 0;
  double wall_seconds = 0.0;
};

CaseOutput run_case(AttackType attack, std::uint64_t seed,
                    const BenchArgs& a) {
  CaseOutput out;
  out.seed = seed;
  const std::uint64_t t0 = telemetry::clock_ns();
  TreeScenarioConfig cfg = fig5_config(a);
  cfg.scheme = DefenseScheme::kFloc;
  cfg.attack = attack;
  cfg.attack_rate = mbps(2.0);
  cfg.seed = seed;
  if (attack == AttackType::kShrew) {
    cfg.shrew_period = 0.05;
    cfg.shrew_duty = 0.25;
  }
  TreeScenario s(cfg);

  telemetry::Telemetry tel;
  tel.journal.set_enabled(telemetry::EventKind::kDrop, false);
  if (s.floc_queue() != nullptr) s.floc_queue()->attach_telemetry(&tel);
  for (int leaf = 0; leaf < s.leaf_count(); ++leaf) {
    const std::string pname = "L" + std::to_string(leaf);
    tel.registry.gauge_fn("path." + pname + ".bytes", [&s, pname] {
      return s.monitor().class_cumulative_bytes(
          [&pname](const FlowLabel& l) { return l.path_name == pname; });
    });
  }
  telemetry::TimeSeriesSampler sampler(&tel.registry, cfg.path_series_bucket);
  sampler.attach(&s.sim(), cfg.duration);

  // Ring-bounded: the export keeps the most recent ~32k spans (~10 MB of
  // JSON) — plenty of full send->queue->link chains without a gigabyte dump.
  telemetry::Tracer tracer(std::size_t{1} << 15);
  s.attach_tracer(&tracer);

  telemetry::Profiler prof(&tel.registry);
  if (s.floc_queue() != nullptr) s.floc_queue()->set_profiler(&prof);
  s.sim().set_profile_section(prof.section("sim.dispatch"));

  // Incident flight recorder: a pre-incident metric ring on the probe
  // cadence, with a deliberately tight drop alert (any drop at the FLoc
  // queue) so every attack case captures a bundle holding the latched
  // paths and their token-bucket levels at the moment the drops began.
  char stem[64];
  std::snprintf(stem, sizeof(stem), "fig06_%s", to_string(attack));
  telemetry::FlightRecorder recorder(&tel.registry);
  recorder.set_journal(&tel.journal);
  recorder.set_tracer(&tracer);
  recorder.set_bench(stem);
  if (s.floc_queue() != nullptr) {
    recorder.add_queue("floc-bottleneck", s.floc_queue());
  }
  recorder.attach(&s.sim(), 0.5, cfg.duration);

  telemetry::AlertEngine alerts(&tel.registry);
  {
    telemetry::AlertRule r;
    r.name = "floc_drops_seen";
    r.metric = "floc.drops.total";
    r.kind = telemetry::AlertKind::kThreshold;
    r.threshold = 1.0;
    r.clear_threshold = 0.0;  // never clears: one fire edge, one capture
    alerts.add_rule(r);
  }
  {
    // Fires when the first path latches as attack — so this bundle's
    // FlocQueue state dump names the latched path with its token-bucket
    // levels.
    telemetry::AlertRule r;
    r.name = "floc_attack_latched";
    r.metric = "floc.paths.attack";
    r.kind = telemetry::AlertKind::kThreshold;
    r.threshold = 1.0;
    r.clear_threshold = 0.0;
    alerts.add_rule(r);
  }
  alerts.set_flight_recorder(&recorder);
  for (TimeSec t = 0.5; t < cfg.duration; t += 0.5) {
    s.sim().schedule_at(t, [&alerts, &s] { alerts.sample(s.sim().now()); });
  }

  s.run();

  for (int leaf = 0; leaf < s.leaf_count(); ++leaf) {
    sampler.add_rate_column("path.L" + std::to_string(leaf) + ".bytes");
  }
  char name[64];
  std::string err;
  std::snprintf(name, sizeof(name), "fig06_%s.csv", to_string(attack));
  if (!sampler.save(name, &err)) {
    std::fprintf(stderr, "fig06: %s\n", err.c_str());
  }
  out.artifacts.emplace_back(name);

  std::snprintf(name, sizeof(name), "fig06_%s.trace.json", to_string(attack));
  telemetry::TraceExportOptions opts;
  opts.process_names.emplace_back(s.target_link()->to()->id(),
                                  "target link (server gateway)");
  if (!telemetry::write_chrome_trace(tracer, name, opts, &err)) {
    std::fprintf(stderr, "fig06: %s\n", err.c_str());
  }
  out.artifacts.emplace_back(name);

  std::snprintf(name, sizeof(name), "fig06_%s.incident.json",
                to_string(attack));
  if (!recorder.save(name, &err)) {
    std::fprintf(stderr, "fig06: %s\n", err.c_str());
  }
  out.artifacts.emplace_back(name);
  const std::string mpath = save_metrics(tel.registry, a, stem);
  if (!mpath.empty()) out.artifacts.push_back(mpath);

  const double fair_path = s.scaled_target_bw() / s.leaf_count();
  const auto per_path = s.per_path_bps();

  RunningStats legit_paths, attack_paths;
  for (int leaf = 0; leaf < s.leaf_count(); ++leaf) {
    const auto it = per_path.find("L" + std::to_string(leaf));
    const double bps = it == per_path.end() ? 0.0 : it->second;
    (s.leaf_is_attack(leaf) ? attack_paths : legit_paths).add(bps / fair_path);
  }
  const auto cb = s.class_bandwidth();

  char line[192];
  std::snprintf(line, sizeof(line),
                "%-18s %11.3f %11.3f %11.3f %11.3f %11.3f\n",
                to_string(attack), legit_paths.mean(), legit_paths.stddev(),
                attack_paths.mean(),
                cb.legit_legit_bps / s.scaled_target_bw(),
                (cb.legit_legit_bps + cb.legit_attack_bps + cb.attack_bps) /
                    s.scaled_target_bw());
  out.row = line;
  out.profile = "\nwall-clock profile (" + std::string(to_string(attack)) +
                "):\n" + prof.report() + "\n";
  out.wall_seconds =
      static_cast<double>(telemetry::clock_ns() - t0) / 1e9;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs a = BenchArgs::parse(argc, argv);
  header("Fig. 6(a-c) - attack confinement (FLoc on the Fig. 5 tree)",
         "per-path bandwidth ~= fair share for all paths under a TCP "
         "population attack; legit paths gain under CBR/Shrew as fixed "
         "buckets pin the attack paths; Shrew handled ~as well as CBR",
         a);
  RunManifest manifest("fig06", a);
  std::printf("%-18s %11s %11s %11s %11s %11s\n", "attack",
              "legit(xfair)", "stdev", "attack(xfair)", "legit link%", "util");
  const AttackType attacks[] = {AttackType::kTcpPopulation, AttackType::kCbr,
                                AttackType::kShrew};
  const auto cases = runner::run_indexed<CaseOutput>(
      a.jobs, std::size(attacks), [&](std::size_t i) {
        return run_case(attacks[i],
                        a.run_seed(i, kSeedStreamTreeScenario), a);
      });
  for (const auto& c : cases) std::fputs(c.row.c_str(), stdout);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    std::fputs(cases[i].profile.c_str(), stdout);
    manifest.add_run(to_string(attacks[i]), cases[i].seed,
                     cases[i].wall_seconds);
    for (const auto& path : cases[i].artifacts) manifest.add_artifact(path);
  }
  std::printf("\n(fair = link/27 per path; legit link%% = legit-path traffic "
              "as a fraction of the link)\n");
  manifest.write();
  return 0;
}
