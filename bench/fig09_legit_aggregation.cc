// Fig. 9 (Section VI-C): legitimate-path aggregation equalizes per-flow
// bandwidth across domains with different populations.
//
// Setup (scaled from the paper): a third of the legitimate domains host 15
// sources, the rest 30, so without aggregation the flows of less-populated
// domains get ~2x the bandwidth of those in populous domains. With
// aggregation the per-flow distribution collapses to a single mode. Attack
// paths stay aggregated (|S|_max = 25) and their legit flows receive less —
// the expected differential.
#include "bench/bench_common.h"

using namespace floc;
using namespace floc::bench;

namespace {

struct CaseResult {
  Cdf legit_path_flows;
  Cdf attack_path_legit_flows;
  double spread;  // p90/p10 of legit-path per-flow bandwidth
};

CaseResult run_case(bool aggregate_legit, std::uint64_t seed,
                    const BenchArgs& a) {
  TreeScenarioConfig cfg = fig5_config(a);
  cfg.seed = seed;
  cfg.scheme = DefenseScheme::kFloc;
  cfg.attack = AttackType::kCbr;
  cfg.attack_rate = mbps(2.0);
  cfg.legit_per_leaf_override = {15, 30, 30};  // every third domain smaller
  cfg.floc.s_max = 25;
  cfg.floc.aggregation_every = 2;
  if (!aggregate_legit) {
    // Disable only the legitimate-path half of aggregation by making the
    // guard unsatisfiable.
    cfg.floc.legit_max_increase = -1.0;
  }
  TreeScenario s(cfg);
  s.run();
  CaseResult out;
  out.legit_path_flows = s.legit_path_flow_cdf();
  out.attack_path_legit_flows = s.monitor().bandwidth_cdf(
      FlowMonitor::is_legit_on_attack_path, "start", "end");
  out.spread = out.legit_path_flows.quantile(0.9) /
               std::max(1.0, out.legit_path_flows.quantile(0.1));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs a = BenchArgs::parse(argc, argv);
  header("Fig. 9 - legitimate-path aggregation (15- vs 30-source domains)",
         "without aggregation ~the bottom 80% of legit-path flows (populous "
         "domains) get ~half the bandwidth of the top 20%; aggregation "
         "removes the bimodality; legit flows of aggregated attack paths get "
         "less than legit-path flows",
         a);

  // Both cases share one derived seed: the comparison is aggregation on/off
  // over the *same* traffic draw.
  RunManifest manifest("fig09", a);
  const bool flags[] = {false, true};
  struct Case {
    CaseResult result;
    double wall_seconds = 0.0;
  };
  const auto results = runner::run_indexed<Case>(
      a.jobs, std::size(flags), [&](std::size_t i) {
        Case out;
        out.wall_seconds = runner::timed_seconds([&] {
          out.result =
              run_case(flags[i], a.run_seed(0, kSeedStreamTreeScenario), a);
        });
        return out;
      });
  for (std::size_t i = 0; i < results.size(); ++i) {
    manifest.add_run(flags[i] ? "aggregation on" : "aggregation off",
                     a.run_seed(0, kSeedStreamTreeScenario),
                     results[i].wall_seconds);
  }
  const CaseResult& off = results[0].result;
  const CaseResult& on = results[1].result;

  std::printf("%-24s %9s %9s %9s %9s %10s\n", "case", "p10", "p50", "p90",
              "mean", "p90/p10");
  std::printf("%-24s %9.0f %9.0f %9.0f %9.0f %10.2f\n", "no aggregation",
              off.legit_path_flows.quantile(0.1) / 1e3,
              off.legit_path_flows.quantile(0.5) / 1e3,
              off.legit_path_flows.quantile(0.9) / 1e3,
              off.legit_path_flows.mean() / 1e3, off.spread);
  std::printf("%-24s %9.0f %9.0f %9.0f %9.0f %10.2f\n", "legit aggregation",
              on.legit_path_flows.quantile(0.1) / 1e3,
              on.legit_path_flows.quantile(0.5) / 1e3,
              on.legit_path_flows.quantile(0.9) / 1e3,
              on.legit_path_flows.mean() / 1e3, on.spread);
  std::printf("\nlegit flows inside (aggregated) attack paths, with "
              "aggregation: mean %.0f kbps vs legit-path mean %.0f kbps\n",
              on.attack_path_legit_flows.mean() / 1e3,
              on.legit_path_flows.mean() / 1e3);
  std::printf("(kbps per flow; spread = p90/p10 of legit-path flows: "
              "aggregation should reduce it)\n");
  manifest.write();
  return 0;
}
