// Fig. 2 (background, Section III-D): at a congested link the packet service
// rate is much higher than the packet drop rate, and the drop *ratio* of a
// TCP flow aggregate follows gamma = 8/(3 W (W+2)), which lets a router infer
// the number of competing flows from drop observations alone (Section V-B.1).
//
// Harness: n persistent TCP flows through one bottleneck; measure service
// rate, drop rate, drop ratio, and the model's flow-count estimate.
#include <cmath>

#include "bench/bench_common.h"
#include "core/model.h"
#include "netsim/drop_tail.h"
#include "transport/flow_monitor.h"
#include "transport/tcp_sink.h"
#include "transport/tcp_source.h"

using namespace floc;
using namespace floc::bench;

namespace {

struct Result {
  double service_pps;
  double drop_pps;
  double drop_ratio;
  double est_flows;
  double mean_window;
  double wall_seconds = 0.0;
};

Result run_flows(int n, BitsPerSec bw, std::uint64_t seed,
                 const BenchArgs& a) {
  Simulator sim;
  Network net(&sim);
  Router* r = net.add_router("r", 2);
  Host* server = net.add_host("server", 3);
  auto bottleneck = net.connect(
      r, server, bw, 0.005,
      std::make_unique<DropTailQueue>(
          static_cast<std::size_t>(std::max(50.0, bw * 0.05 / 12000.0))));
  FlowMonitor monitor;
  TcpSink sink(&sim, server, &monitor);

  std::vector<std::unique_ptr<TcpSource>> sources;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    Host* h = net.add_host("h" + std::to_string(i), 1);
    net.connect(h, r, bw * 4, 0.005);
  }
  net.build_routes();
  for (int i = 0; i < n; ++i) {
    TcpSourceConfig cfg;
    cfg.flow = static_cast<FlowId>(i + 1);
    cfg.dst = server->addr();
    cfg.total_packets = 0;
    auto src = std::make_unique<TcpSource>(
        &sim, net.host_by_addr(static_cast<HostAddr>(i + 2)), cfg);
    src->start_at(rng.uniform(0.0, 2.0));
    monitor.register_flow(cfg.flow, {});
    sources.push_back(std::move(src));
  }

  const double warm = a.duration / 3.0;
  std::uint64_t sent_at_warm = 0, drops_at_warm = 0;
  sim.schedule_at(warm, [&] {
    sent_at_warm = bottleneck.ab->packets_sent();
    drops_at_warm = bottleneck.ab->queue().drops();
  });
  sim.run_until(a.duration);

  const double window = a.duration - warm;
  Result out;
  out.service_pps =
      static_cast<double>(bottleneck.ab->packets_sent() - sent_at_warm) / window;
  out.drop_pps =
      static_cast<double>(bottleneck.ab->queue().drops() - drops_at_warm) / window;
  out.drop_ratio = out.drop_pps / std::max(1.0, out.service_pps + out.drop_pps);
  RunningStats cwnd_stats, rtt_stats;
  for (const auto& s : sources) {
    cwnd_stats.add(s->cwnd());
    rtt_stats.add(s->srtt());
  }
  out.mean_window = cwnd_stats.mean();
  // Scalable-design inversion: flows from (C, RTT, drop rate), using the
  // routers' own RTT estimate (here: the sources' measured srtt mean).
  const double rtt = rtt_stats.mean();
  out.est_flows = model::estimate_flow_count(bw, rtt, out.drop_pps, 1500);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs a = BenchArgs::parse(argc, argv);
  header("Fig. 2 / Sec. V-B.1 - service vs drop rate, flow-count estimation",
         "service rate >> drop rate at a congested link; drop ratio matches "
         "gamma=8/(3W(W+2)); flow count recoverable from drop rate",
         a);

  const BitsPerSec bw = mbps(a.paper ? 100 : 40);
  std::printf("%6s %12s %12s %12s %10s %10s %10s\n", "flows", "service(p/s)",
              "drops(p/s)", "drop ratio", "gamma(W)", "meanW", "est flows");
  RunManifest manifest("fig02", a);
  const int flow_counts[] = {4, 8, 16, 32};
  const auto results = runner::run_indexed<Result>(
      a.jobs, std::size(flow_counts), [&](std::size_t i) {
        Result r;
        r.wall_seconds = runner::timed_seconds(
            [&] { r = run_flows(flow_counts[i], bw, a.run_seed(i), a); });
        return r;
      });
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    manifest.add_run(std::to_string(flow_counts[i]) + " flows",
                     a.run_seed(i), r.wall_seconds);
    // Model drop ratio at the mean measured window (3/4 of peak => peak =
    // 4/3 * mean).
    const double w_peak = r.mean_window * 4.0 / 3.0;
    std::printf("%6d %12.1f %12.2f %12.5f %10.5f %10.1f %10.1f\n",
                flow_counts[i], r.service_pps, r.drop_pps, r.drop_ratio,
                model::drop_ratio(std::max(2.0, w_peak)), r.mean_window,
                r.est_flows);
  }
  std::printf("\nshape check: service/drop ratio large; estimate tracks the "
              "actual flow count within ~2x.\n");
  manifest.write();
  return 0;
}
