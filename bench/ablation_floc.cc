// Ablation study (DESIGN.md section 6): which FLoc mechanism buys what.
//
// Runs the Fig. 5 CBR-flood scenario with individual mechanisms disabled:
//   full            - everything on (reference)
//   no-preferential - Eq. IV.5 off: attack flows inside attack paths are not
//                     individually penalized (collateral damage expected)
//   no-aggregation  - Section IV-C off (irrelevant when |S|_max is loose,
//                     shown for the tight-budget case)
//   base-bucket     - the enlarged bucket N' (Eq. IV.3) replaced by N for
//                     all paths (utilization of legit paths should drop)
//   scalable-filter - per-flow exact MTD replaced by the bloom drop filter
//                     (Section V-B): results should track "full"
//   no-capabilities - capability issuance/verification off
#include "bench/bench_common.h"

using namespace floc;
using namespace floc::bench;

namespace {

std::string run_case(const char* label, std::uint64_t seed,
                     const BenchArgs& a,
                     const std::function<void(TreeScenarioConfig&)>& tweak) {
  TreeScenarioConfig cfg = fig5_config(a);
  cfg.scheme = DefenseScheme::kFloc;
  cfg.attack = AttackType::kCbr;
  cfg.attack_rate = mbps(2.0);
  cfg.floc.s_max = 25;
  cfg.seed = seed;
  tweak(cfg);
  TreeScenario s(cfg);
  s.run();
  const auto cb = s.class_bandwidth();
  const double link = s.scaled_target_bw();
  const Cdf legit_attack = s.monitor().bandwidth_cdf(
      FlowMonitor::is_legit_on_attack_path, "start", "end");
  const Cdf attack = s.monitor().bandwidth_cdf(FlowMonitor::is_attack,
                                               "start", "end");
  char line[160];
  std::snprintf(line, sizeof(line),
                "%-18s %12.3f %12.3f %12.3f %13.0f %13.0f\n", label,
                cb.legit_legit_bps / link, cb.legit_attack_bps / link,
                cb.attack_bps / link, legit_attack.mean() / 1e3,
                attack.mean() / 1e3);
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs a = BenchArgs::parse(argc, argv);
  header("Ablation - contribution of each FLoc mechanism (CBR flood)",
         "disabling preferential drops hurts legit flows inside attack "
         "paths; the scalable filter should track the exact design",
         a);
  std::printf("%-18s %12s %12s %12s %13s %13s\n", "variant", "legit/legitP",
              "legit/attackP", "attack", "legitA kbps/f", "atk kbps/f");

  struct Variant {
    const char* label;
    std::function<void(TreeScenarioConfig&)> tweak;
  };
  const std::vector<Variant> variants = {
      {"full", [](TreeScenarioConfig&) {}},
      {"no-preferential",
       [](TreeScenarioConfig& c) { c.floc.enable_preferential_drop = false; }},
      {"no-aggregation",
       [](TreeScenarioConfig& c) { c.floc.enable_aggregation = false; }},
      {"scalable-filter",
       [](TreeScenarioConfig& c) {
         c.floc.use_scalable_filter = true;
         c.floc.filter.bits = 16;
       }},
      {"flow-estimation",
       [](TreeScenarioConfig& c) { c.floc.estimate_flow_count = true; }},
      {"fully-scalable",
       [](TreeScenarioConfig& c) {
         c.floc.use_scalable_filter = true;
         c.floc.filter.bits = 16;
         c.floc.estimate_flow_count = true;
       }},
      {"no-capabilities",
       [](TreeScenarioConfig& c) { c.floc.enable_capabilities = false; }},
      // N instead of N' (Eq. IV.3 ablated).
      {"base-bucket-only",
       [](TreeScenarioConfig& c) { c.floc.force_base_bucket = true; }},
      // Use the raw over-estimated path RTT.
      {"no-rtt-damping",
       [](TreeScenarioConfig& c) { c.floc.rtt_damping = 1.0; }},
  };
  // Every variant sees the same derived traffic seed: the ablation isolates
  // the mechanism, not the draw.
  RunManifest manifest("ablation_floc", a);
  struct Row {
    std::string line;
    double wall_seconds = 0.0;
  };
  const auto rows = runner::run_indexed<Row>(
      a.jobs, variants.size(), [&](std::size_t i) {
        Row out;
        out.wall_seconds = runner::timed_seconds([&] {
          out.line = run_case(variants[i].label,
                              a.run_seed(0, kSeedStreamTreeScenario), a,
                              variants[i].tweak);
        });
        return out;
      });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fputs(rows[i].line.c_str(), stdout);
    manifest.add_run(variants[i].label,
                     a.run_seed(0, kSeedStreamTreeScenario),
                     rows[i].wall_seconds);
  }
  std::printf("\n(first three columns: fractions of the link; last two: mean "
              "per-flow kbps of legit-in-attack-path vs attack flows)\n");
  manifest.write();
  return 0;
}
