// Canonical perf suite: the one binary that turns the Profiler's numbers
// into a per-PR trajectory. Emits a schema-versioned BENCH_perf.json
// (src/telemetry/perf_baseline.h) that bench/perf_compare diffs against the
// committed repo-root baseline in scripts/check.sh's perf leg and in CI.
//
// Three layers of measurement, all min-of-K with MAD-based noise estimation:
//
//  * micro:   SipHash, capability verify, Bloom drop-filter record/query,
//             token-bucket admission — ns/op of the per-packet primitives;
//  * queue:   each of the seven defense disciplines driven by three
//             synthetic load shapes (steady / cbr flood / shrew pulses) —
//             packets/sec per (scheme, load) cell, plus the machine-portable
//             gated ratios floc-vs-droptail and the fast-path allocation
//             counts from the scoped counting allocator;
//  * macro:   a shrunk fig06 attack sweep (TCP-population / CBR / shrew on
//             the FLoc-defended tree) — events/sec and ns/event from the
//             Simulator, a per-Profiler-section ns breakdown that localizes
//             a regression to cap_verify vs dispatch vs link, and the
//             --jobs 1 vs --jobs N sweep speedup from the same wall times
//             RunManifest records.
//
// Debug hook: FLOC_PERF_HANDICAP=<mult> scales every FLoc-attributed timing
// by <mult> before it is recorded. It exists to prove the regression gate
// closes (tests and the acceptance criteria inject a 2x slowdown and expect
// perf_compare to exit nonzero); it must never be set in a real run.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/capability.h"
#include "core/drop_filter.h"
#include "core/model.h"
#include "core/token_bucket.h"
#include "netsim/simulator.h"
#include "telemetry/alloc_counter.h"
#include "telemetry/perf_baseline.h"
#include "topology/defense_factory.h"
#include "util/siphash.h"

// Real allocation counts for the alloc.* metrics (program-wide operator
// new/delete replacement; see telemetry/alloc_counter.h).
FLOC_DEFINE_COUNTING_ALLOCATOR

namespace floc {
namespace {

using bench::BenchArgs;
using telemetry::PerfReport;

volatile std::uint64_t g_sink = 0;  // defeats dead-code elimination

struct SuiteArgs {
  bool quick = false;
  std::string out = "BENCH_perf.json";
  std::uint64_t seed = 1;
  int jobs = 0;  // sweep-speedup parallel leg; 0 = min(4, hardware)
  int repeats = 5;
  int macro_repeats = 3;

  static SuiteArgs parse(int argc, char** argv) {
    SuiteArgs a;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        a.quick = true;
        a.repeats = 3;
        a.macro_repeats = 2;
      } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        a.out = argv[++i];
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        a.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
        a.jobs = std::atoi(argv[++i]);
      } else {
        std::fprintf(stderr,
                     "usage: %s [--quick] [--out PATH] [--seed N] [--jobs N]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    if (a.jobs <= 0) a.jobs = std::min(4, runner::default_jobs());
    return a;
  }
};

double handicap() {
  static const double h = [] {
    const char* env = std::getenv("FLOC_PERF_HANDICAP");
    const double v = env != nullptr ? std::atof(env) : 1.0;
    return v > 0.0 ? v : 1.0;
  }();
  return h;
}

// --- min-of-K with MAD noise ------------------------------------------------

struct RepeatResult {
  double best = 0.0;   // min (or max when higher is better) over K repeats
  double noise = 0.0;  // relative MAD: median(|x - median|) / median
};

double median_of(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

template <typename Fn>
RepeatResult repeat(int k, bool higher_is_better, Fn&& measure) {
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) xs.push_back(measure());
  RepeatResult r;
  r.best = higher_is_better ? *std::max_element(xs.begin(), xs.end())
                            : *std::min_element(xs.begin(), xs.end());
  const double med = median_of(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) dev.push_back(std::abs(x - med));
  r.noise = med != 0.0 ? median_of(std::move(dev)) / std::abs(med) : 0.0;
  return r;
}

// --- micro benches ----------------------------------------------------------

double ns_siphash(int iters) {
  const SipKey key{0x123, 0x456};
  std::uint64_t acc = 0;
  const std::uint64_t t0 = telemetry::clock_ns();
  for (int i = 0; i < iters; ++i) {
    acc ^= siphash24_words(key, {static_cast<std::uint64_t>(i), 42, 7});
  }
  const std::uint64_t t1 = telemetry::clock_ns();
  g_sink += acc;
  return static_cast<double>(t1 - t0) / iters;
}

double ns_cap_verify(int iters) {
  CapabilityIssuer issuer(0x5EC, 2);
  Packet p;
  p.src = 1;
  p.dst = 99;
  p.path = PathId::of({1, 2, 3});
  const auto caps = issuer.issue(p.src, p.dst, p.path);
  p.cap0 = caps.cap0;
  p.cap1 = caps.cap1;
  std::uint64_t acc = 0;
  const std::uint64_t t0 = telemetry::clock_ns();
  for (int i = 0; i < iters; ++i) acc += issuer.verify(p) ? 1 : 0;
  const std::uint64_t t1 = telemetry::clock_ns();
  g_sink += acc;
  return static_cast<double>(t1 - t0) / iters;
}

double ns_bloom_record(int iters) {
  DropFilterConfig cfg;
  cfg.bits = 20;
  ScalableDropFilter filter(cfg);
  double t = 0.0;
  const std::uint64_t t0 = telemetry::clock_ns();
  for (int i = 0; i < iters; ++i) {
    filter.record_drop(static_cast<std::uint64_t>(i) % 100000, t, 0.1);
    t += 1e-5;
  }
  const std::uint64_t t1 = telemetry::clock_ns();
  return static_cast<double>(t1 - t0) / iters;
}

double ns_bloom_query(int iters) {
  DropFilterConfig cfg;
  cfg.bits = 20;
  ScalableDropFilter filter(cfg);
  for (std::uint64_t k = 0; k < 100000; ++k) filter.record_drop(k, 1.0, 0.1);
  double acc = 0.0;
  const std::uint64_t t0 = telemetry::clock_ns();
  for (int i = 0; i < iters; ++i) {
    acc += filter.preferential_drop_prob(static_cast<std::uint64_t>(i) % 100000,
                                         2.0, 0.1);
  }
  const std::uint64_t t1 = telemetry::clock_ns();
  g_sink += static_cast<std::uint64_t>(acc);
  return static_cast<double>(t1 - t0) / iters;
}

double ns_token_bucket(int iters) {
  PathTokenBucket bucket;
  bucket.configure(model::compute_params(mbps(100), 0.05, 30, 1500), 1500);
  double t = 0.0;
  std::uint64_t acc = 0;
  const std::uint64_t t0 = telemetry::clock_ns();
  for (int i = 0; i < iters; ++i) {
    acc += bucket.try_consume(1500, t, true) ? 1 : 0;
    t += 1e-4;
  }
  const std::uint64_t t1 = telemetry::clock_ns();
  g_sink += acc;
  return static_cast<double>(t1 - t0) / iters;
}

// --- scheduler dispatch micro (engine matrix) --------------------------------

// Self-rescheduling inline-capture functor: each firing schedules the next,
// so the measured loop is exactly one schedule_in + one dispatch per event —
// the Simulator's steady-state hot path with no queue-discipline work mixed
// in. 64 concurrent chains at staggered periods keep several wheel levels
// (and a realistically deep heap) live.
struct DispatchTicker {
  Simulator* sim;
  TimeSec dt;
  std::uint64_t* fuel;
  void operator()() const {
    if (*fuel == 0) return;
    --*fuel;
    sim->schedule_in(dt, DispatchTicker{*this});
  }
};
static_assert(Simulator::Callback::fits_inline<DispatchTicker>());

void seed_dispatch_chains(Simulator& sim, std::uint64_t* fuel) {
  for (int i = 0; i < 64; ++i) {
    sim.schedule_in(1e-6 * (i + 1),
                    DispatchTicker{&sim, 1e-5 + 1.7e-7 * i, fuel});
  }
}

double sim_dispatch_ns(SimEngine engine, int events) {
  Simulator sim(engine);
  auto fuel = static_cast<std::uint64_t>(events);
  seed_dispatch_chains(sim, &fuel);
  sim.run_until(0.002);  // warm: arena chunks, engine vectors at high-water
  const std::uint64_t before = sim.events_processed();
  const std::uint64_t t0 = telemetry::clock_ns();
  sim.run();
  const std::uint64_t t1 = telemetry::clock_ns();
  const std::uint64_t done = sim.events_processed() - before;
  g_sink += done;
  return static_cast<double>(t1 - t0) / static_cast<double>(done);
}

double sim_dispatch_allocs_per_kevent(SimEngine engine, int events) {
  Simulator sim(engine);
  auto fuel = static_cast<std::uint64_t>(events);
  seed_dispatch_chains(sim, &fuel);
  sim.run_until(0.002);
  const std::uint64_t before = sim.events_processed();
  telemetry::ScopedAllocCount guard;
  sim.run();
  const std::uint64_t done = sim.events_processed() - before;
  return static_cast<double>(guard.allocs()) * 1000.0 /
         static_cast<double>(done);
}

// --- queue-discipline matrix ------------------------------------------------

enum class Load { kSteady, kCbr, kShrew };
const char* to_string(Load l) {
  switch (l) {
    case Load::kSteady: return "steady";
    case Load::kCbr: return "cbr";
    case Load::kShrew: return "shrew";
  }
  return "?";
}
constexpr Load kLoads[] = {Load::kSteady, Load::kCbr, Load::kShrew};
constexpr DefenseScheme kSchemes[] = {
    DefenseScheme::kDropTail, DefenseScheme::kRed,  DefenseScheme::kRedPd,
    DefenseScheme::kPushback, DefenseScheme::kPriorityFair,
    DefenseScheme::kDrr,      DefenseScheme::kFloc};

std::unique_ptr<QueueDisc> make_queue(DefenseScheme scheme,
                                      std::uint64_t seed) {
  DefenseFactoryConfig cfg;
  cfg.link_bandwidth = mbps(500);
  cfg.buffer_packets = 1024;
  cfg.seed = seed;
  cfg.legit_classifier = [](FlowId f) { return f < 1000; };
  return make_defense_queue(scheme, cfg);
}

// Drives enqueue+dequeue with a deterministic arrival pattern; returns
// wall ns per offered packet. `paths` 0..5 are legitimate, 6..7 carry the
// flood when the load shape has one.
double queue_workload_ns(QueueDisc& q, Load load, int packets) {
  PathId paths[8];
  for (int i = 0; i < 8; ++i) {
    paths[i] = PathId::of({static_cast<AsNumber>(i + 1),
                           static_cast<AsNumber>(100 + i)});
  }
  const double dt = 1500.0 * 8.0 / mbps(500);  // one full packet at link rate
  double t = 0.0;
  const std::uint64_t t0 = telemetry::clock_ns();
  switch (load) {
    case Load::kSteady:
      // Offered load == link rate, spread over legitimate paths/flows.
      for (int i = 0; i < packets; ++i) {
        Packet p;
        p.flow = static_cast<FlowId>(i % 192);
        p.src = static_cast<HostAddr>(p.flow + 1);
        p.dst = 9999;
        p.path = paths[i % 6];
        q.enqueue(std::move(p), t);
        q.dequeue(t);
        t += dt;
      }
      break;
    case Load::kCbr:
      // 3x overload: two flood paths offer twice the legitimate volume, the
      // drain keeps link pace, so the drop/admission machinery runs hot.
      for (int i = 0; i < packets; ++i) {
        Packet p;
        const bool attack = i % 3 != 0;
        p.flow = attack ? static_cast<FlowId>(1000 + i % 32)
                        : static_cast<FlowId>(i % 192);
        p.src = static_cast<HostAddr>(p.flow + 1);
        p.dst = 9999;
        p.path = attack ? paths[6 + i % 2] : paths[i % 6];
        q.enqueue(std::move(p), t);
        if (i % 3 == 0) q.dequeue(t);
        t += dt / 3.0;
      }
      break;
    case Load::kShrew:
      // Pulses: 48-packet bursts at 8x link pace, then a quiet gap that
      // drains the queue and refills the token buckets.
      for (int i = 0; i < packets; ++i) {
        Packet p;
        const bool burst_pkt = i % 64 < 48;
        p.flow = burst_pkt ? static_cast<FlowId>(1000 + i % 16)
                           : static_cast<FlowId>(i % 192);
        p.src = static_cast<HostAddr>(p.flow + 1);
        p.dst = 9999;
        p.path = burst_pkt ? paths[6 + i % 2] : paths[i % 6];
        q.enqueue(std::move(p), t);
        q.dequeue(t);
        t += burst_pkt ? dt / 8.0 : dt;
        if (i % 64 == 63) {
          t += 0.005;  // inter-pulse gap
          while (q.dequeue(t).has_value()) {
          }
        }
      }
      break;
  }
  const std::uint64_t t1 = telemetry::clock_ns();
  g_sink += q.drops() + q.admissions();
  return static_cast<double>(t1 - t0) / packets;
}

// --- macro: shrunk fig06 sweep ---------------------------------------------

TreeScenarioConfig macro_config(AttackType attack, std::uint64_t seed,
                                bool quick,
                                SimEngine engine = Simulator::default_engine()) {
  TreeScenarioConfig cfg;
  cfg.tree_degree = 3;
  cfg.tree_height = 2;  // 9 leaves
  cfg.legit_per_leaf = 2;
  cfg.attack_leaf_count = 2;
  cfg.attack_per_leaf = 3;
  cfg.target_link = mbps(10);
  cfg.internal_link = mbps(40);
  cfg.access_link = mbps(5);
  cfg.legit_file_bytes = 200'000;
  cfg.legit_start_spread = 1.0;
  cfg.attack = attack;
  cfg.attack_rate = mbps(2.0);
  cfg.attack_start = 2.0;
  cfg.scheme = DefenseScheme::kFloc;
  cfg.duration = quick ? 8.0 : 14.0;
  cfg.measure_start = 2.0;
  cfg.measure_end = cfg.duration;
  cfg.seed = seed;
  cfg.engine = engine;
  if (attack == AttackType::kShrew) {
    cfg.shrew_period = 0.05;
    cfg.shrew_duty = 0.25;
  }
  return cfg;
}

struct SectionStats {
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
};

struct SweepResult {
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::map<std::string, SectionStats> sections;  // aggregated across cases
};

SweepResult run_macro_sweep(const SuiteArgs& a, int jobs,
                            std::uint64_t sweep_salt,
                            SimEngine engine = Simulator::default_engine()) {
  const AttackType attacks[] = {AttackType::kTcpPopulation, AttackType::kCbr,
                                AttackType::kShrew};
  struct CaseOut {
    std::uint64_t events = 0;
    std::vector<std::pair<std::string, SectionStats>> sections;
  };
  SweepResult out;
  out.wall_seconds = runner::timed_seconds([&] {
    const auto cases = runner::run_indexed<CaseOut>(
        jobs, std::size(attacks), [&](std::size_t i) {
          TreeScenario s(macro_config(
              attacks[i],
              derive_seed(a.seed, i + sweep_salt, kSeedStreamTreeScenario),
              a.quick, engine));
          telemetry::Profiler prof;
          if (s.floc_queue() != nullptr) s.floc_queue()->set_profiler(&prof);
          s.target_link()->set_profiler(prof.section("link.enqueue"),
                                        prof.section("link.dequeue"));
          s.sim().set_profile_section(prof.section("sim.dispatch"));
          s.run();
          CaseOut c;
          c.events = s.sim().events_processed();
          for (const auto& sec : prof.sections()) {
            c.sections.emplace_back(sec->name,
                                    SectionStats{sec->calls, sec->total_ns});
          }
          return c;
        });
    for (const auto& c : cases) {
      out.events += c.events;
      for (const auto& [name, st] : c.sections) {
        SectionStats& agg = out.sections[name];
        agg.calls += st.calls;
        agg.total_ns += st.total_ns;
      }
    }
  });
  return out;
}

// --- suite ------------------------------------------------------------------

int run_suite(const SuiteArgs& a) {
  PerfReport report;
  report.git = bench::git_describe();
  report.mode = a.quick ? "quick" : "full";
  report.seed = a.seed;
  report.repeats = a.repeats;

  bench::BenchArgs margs;
  margs.seed = a.seed;
  margs.jobs = a.jobs;
  margs.scale = a.quick ? 0.08 : 0.12;
  bench::RunManifest manifest("perf_suite", margs);
  manifest.note("mode", report.mode);
  manifest.note("handicap", handicap());

  const int micro_iters = a.quick ? 200'000 : 1'000'000;
  const int queue_pkts = a.quick ? 60'000 : 200'000;

  std::printf("== perf_suite (%s, seed %llu, %d repeats) ==\n",
              report.mode.c_str(), static_cast<unsigned long long>(a.seed),
              a.repeats);
  if (handicap() != 1.0) {
    std::printf("!! FLOC_PERF_HANDICAP=%g: FLoc timings are artificially "
                "scaled — debug runs only\n",
                handicap());
  }

  // Micro: per-packet primitives.
  struct Micro {
    const char* name;
    double (*fn)(int);
  };
  const Micro micros[] = {
      {"micro.siphash.ns_per_op", ns_siphash},
      {"micro.cap_verify.ns_per_op", ns_cap_verify},
      {"micro.bloom_record.ns_per_op", ns_bloom_record},
      {"micro.bloom_query.ns_per_op", ns_bloom_query},
      {"micro.token_bucket.ns_per_op", ns_token_bucket},
  };
  for (const Micro& m : micros) {
    const RepeatResult r = repeat(a.repeats, /*higher_is_better=*/false,
                                  [&] { return m.fn(micro_iters); });
    report.add(m.name, r.best, "ns/op", r.noise, false, /*gate=*/false);
    std::printf("%-38s %10.1f ns/op  (noise %.1f%%)\n", m.name, r.best,
                100.0 * r.noise);
  }

  // Scheduler dispatch matrix: pure schedule->fire throughput per engine.
  // The gated metric is the machine-portable wheel/heap speed ratio; the
  // absolute events/sec rows track the trajectory (ISSUE 10 target: >= 3x
  // the seed engine's dispatch rate, which the wheel row shows directly
  // against pre-PR baselines).
  const int dispatch_events = a.quick ? 300'000 : 1'000'000;
  {
    double heap_ns = 0.0, heap_noise = 0.0;
    double wheel_ns = 0.0, wheel_noise = 0.0;
    for (const SimEngine engine : {SimEngine::kHeap, SimEngine::kWheel}) {
      const RepeatResult r =
          repeat(a.repeats, /*higher_is_better=*/false,
                 [&] { return sim_dispatch_ns(engine, dispatch_events); });
      if (engine == SimEngine::kHeap) {
        heap_ns = r.best;
        heap_noise = r.noise;
      } else {
        wheel_ns = r.best;
        wheel_noise = r.noise;
      }
      char name[96];
      std::snprintf(name, sizeof(name), "sim.dispatch.%s.events_per_sec",
                    to_string(engine));
      report.add(name, 1e9 / r.best, "events/s", r.noise,
                 /*higher_is_better=*/true, /*gate=*/false);
      std::printf("%-38s %10.0f events/s (noise %.1f%%)\n", name, 1e9 / r.best,
                  100.0 * r.noise);

      const RepeatResult alloc =
          repeat(a.repeats, /*higher_is_better=*/false, [&] {
            return sim_dispatch_allocs_per_kevent(engine, dispatch_events / 4);
          });
      std::snprintf(name, sizeof(name),
                    "alloc.sim_dispatch.%s.allocs_per_kevent",
                    to_string(engine));
      report.add(name, alloc.best, "allocs/kevent", alloc.noise, false,
                 /*gate=*/true);
      std::printf("%-38s %10.2f allocs/kevent (noise %.1f%%)\n", name,
                  alloc.best, 100.0 * alloc.noise);
    }
    report.add("ratio.sim_dispatch.wheel_vs_heap", heap_ns / wheel_ns, "x",
               heap_noise + wheel_noise, /*higher_is_better=*/true,
               /*gate=*/true);
    std::printf("%-38s %10.2f x\n", "ratio.sim_dispatch.wheel_vs_heap",
                heap_ns / wheel_ns);
  }

  // Queue matrix: 7 disciplines x 3 load shapes. FLoc timings take the
  // handicap; the gated metric is the machine-portable floc/droptail ratio.
  for (const Load load : kLoads) {
    double droptail_ns = 0.0, droptail_noise = 0.0;
    double floc_ns = 0.0, floc_noise = 0.0;
    for (const DefenseScheme scheme : kSchemes) {
      const RepeatResult r =
          repeat(a.repeats, /*higher_is_better=*/false, [&] {
            auto q = make_queue(scheme, a.seed);
            queue_workload_ns(*q, load, queue_pkts / 10);  // warm-up
            return queue_workload_ns(*q, load, queue_pkts);
          });
      double ns = r.best;
      if (scheme == DefenseScheme::kFloc) ns *= handicap();
      if (scheme == DefenseScheme::kDropTail) {
        droptail_ns = ns;
        droptail_noise = r.noise;
      }
      if (scheme == DefenseScheme::kFloc) {
        floc_ns = ns;
        floc_noise = r.noise;
      }
      char name[96];
      std::snprintf(name, sizeof(name), "queue.%s.%s.pkts_per_sec",
                    to_string(scheme), to_string(load));
      report.add(name, 1e9 / ns, "pkts/s", r.noise, /*higher_is_better=*/true,
                 /*gate=*/false);
      std::printf("%-38s %10.0f pkts/s (noise %.1f%%)\n", name, 1e9 / ns,
                  100.0 * r.noise);
    }
    char name[96];
    std::snprintf(name, sizeof(name), "ratio.floc_vs_droptail.%s",
                  to_string(load));
    // Noise of a ratio of two min-of-K measurements: conservatively the sum
    // of the operands' measured noise (first-order error propagation).
    report.add(name, floc_ns / droptail_ns, "ratio",
               floc_noise + droptail_noise, false, /*gate=*/true);
    std::printf("%-38s %10.2f x\n", name, floc_ns / droptail_ns);
  }

  // Fast-path allocation counts (counting allocator; machine-portable).
  for (const DefenseScheme scheme :
       {DefenseScheme::kDropTail, DefenseScheme::kFloc}) {
    const RepeatResult r = repeat(a.repeats, /*higher_is_better=*/false, [&] {
      auto q = make_queue(scheme, a.seed);
      queue_workload_ns(*q, Load::kSteady, queue_pkts / 10);  // warm tables
      telemetry::ScopedAllocCount guard;
      queue_workload_ns(*q, Load::kSteady, queue_pkts);
      return static_cast<double>(guard.allocs()) * 1000.0 / queue_pkts;
    });
    char name[96];
    std::snprintf(name, sizeof(name), "alloc.%s_steady.allocs_per_kpkt",
                  to_string(scheme));
    report.add(name, r.best, "allocs/kpkt", r.noise, false, /*gate=*/true);
    std::printf("%-38s %10.2f allocs/kpkt (noise %.1f%%)\n", name, r.best,
                100.0 * r.noise);
  }

  // Macro: shrunk fig06 sweep — events/sec, section breakdown, speedup, and
  // the whole-scenario engine ratio (same derived seeds on both engines, so
  // identical simulated worlds; the wall-clock ratio is the end-to-end win).
  std::vector<double> serial_walls, parallel_walls, events_per_sec;
  std::vector<double> heap_walls;
  SweepResult best_serial;
  for (int rep = 0; rep < a.macro_repeats; ++rep) {
    const std::uint64_t salt = static_cast<std::uint64_t>(rep) * 1000;
    SweepResult serial = run_macro_sweep(a, 1, salt, SimEngine::kWheel);
    const SweepResult parallel = run_macro_sweep(a, a.jobs, salt,
                                                 SimEngine::kWheel);
    heap_walls.push_back(
        run_macro_sweep(a, 1, salt, SimEngine::kHeap).wall_seconds);
    serial_walls.push_back(serial.wall_seconds);
    parallel_walls.push_back(parallel.wall_seconds);
    events_per_sec.push_back(static_cast<double>(serial.events) /
                             serial.wall_seconds);
    if (rep == 0 || serial.wall_seconds < best_serial.wall_seconds) {
      best_serial = std::move(serial);
    }
  }
  {
    const double best_eps =
        *std::max_element(events_per_sec.begin(), events_per_sec.end());
    const double med = median_of(events_per_sec);
    std::vector<double> dev;
    for (double x : events_per_sec) dev.push_back(std::abs(x - med));
    const double noise = med != 0.0 ? median_of(std::move(dev)) / med : 0.0;
    report.add("macro.fig06.events_per_sec", best_eps, "events/s", noise,
               /*higher_is_better=*/true, /*gate=*/false);
    report.add("macro.fig06.ns_per_event", 1e9 / best_eps, "ns/event", noise,
               false, /*gate=*/false);
    const double speedup = median_of(serial_walls) / median_of(parallel_walls);
    report.add("sweep.fig06.speedup", speedup, "x", noise,
               /*higher_is_better=*/true, /*gate=*/false);
    report.add("sweep.fig06.jobs", static_cast<double>(a.jobs), "jobs", 0.0,
               true, /*gate=*/false);
    std::printf("%-38s %10.0f events/s (noise %.1f%%)\n",
                "macro.fig06.events_per_sec", best_eps, 100.0 * noise);
    std::printf("%-38s %10.2f x (--jobs %d)\n", "sweep.fig06.speedup", speedup,
                a.jobs);
    // Gated so a change that makes the wheel slower than the heap engine on
    // real scenario workloads (not just the dispatch micro) fails the perf
    // leg even if both absolute rates drifted.
    const double engine_ratio =
        median_of(heap_walls) / median_of(serial_walls);
    report.add("ratio.fig06.wheel_vs_heap_events", engine_ratio, "x",
               2.0 * noise, /*higher_is_better=*/true, /*gate=*/true);
    std::printf("%-38s %10.2f x\n", "ratio.fig06.wheel_vs_heap_events",
                engine_ratio);
  }
  for (const auto& [sec, st] : best_serial.sections) {
    if (st.calls == 0) continue;
    double ns = static_cast<double>(st.total_ns) / static_cast<double>(st.calls);
    std::string prom = sec;
    if (prom.rfind("floc.", 0) == 0) ns *= handicap();
    const std::string name = "profile." + prom + ".ns_per_call";
    // Section means wobble with scheduler noise; trajectory only.
    report.add(name, ns, "ns/call", 0.10, false, /*gate=*/false);
    std::printf("%-38s %10.1f ns/call (%llu calls)\n", name.c_str(), ns,
                static_cast<unsigned long long>(st.calls));
  }

  std::string err;
  if (!report.save(a.out, &err)) {
    std::fprintf(stderr, "perf_suite: %s\n", err.c_str());
    return 1;
  }
  manifest.add_artifact(a.out);
  manifest.write();
  std::printf("\nwrote %s (%zu metrics)\n", a.out.c_str(),
              report.metrics.size());
  return 0;
}

}  // namespace
}  // namespace floc

int main(int argc, char** argv) {
  return floc::run_suite(floc::SuiteArgs::parse(argc, argv));
}
