// Fig. 8 (Section VI-C): differential bandwidth guarantees under path
// aggregation (|S|_max = 25 of 27 paths), across attack rates 0.2-4.0 Mbps,
// for FLoc vs Pushback vs RED-PD.
//
// Paper shape: with FLoc, legit-path flows hold >~80% of the link (~=
// their share of guaranteed paths) at every attack rate; as the attack rate
// grows, attack flows are squeezed harder and legit flows inside attack
// paths gain. Pushback only recovers once the flood dominates and always
// sacrifices legit flows inside attack aggregates; RED-PD protects those but
// loses legit-path bandwidth at high rates.
#include "bench/bench_common.h"

using namespace floc;
using namespace floc::bench;

namespace {

struct CaseOutput {
  std::string row;
  std::uint64_t seed = 0;
  double wall_seconds = 0.0;
};

CaseOutput run_case(DefenseScheme scheme, double rate_mbps,
                    std::uint64_t seed, const BenchArgs& a) {
  CaseOutput out;
  out.seed = seed;
  out.wall_seconds = runner::timed_seconds([&] {
    TreeScenarioConfig cfg = fig5_config(a);
    cfg.scheme = scheme;
    cfg.attack = AttackType::kCbr;
    cfg.attack_rate = mbps(rate_mbps);
    cfg.floc.s_max = 25;  // forces aggregation of >= 4 of the 6 attack paths
    cfg.floc.aggregation_every = 2;
    cfg.seed = seed;
    TreeScenario s(cfg);
    s.run();
    const auto cb = s.class_bandwidth();
    const double link = s.scaled_target_bw();
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-10s %8.1f %14.3f %14.3f %14.3f %8.3f\n",
                  to_string(scheme), rate_mbps, cb.legit_legit_bps / link,
                  cb.legit_attack_bps / link, cb.attack_bps / link,
                  (cb.legit_legit_bps + cb.legit_attack_bps + cb.attack_bps) /
                      link);
    out.row = line;
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs a = BenchArgs::parse(argc, argv);
  header("Fig. 8 - differential guarantees with |S|_max = 25",
         "FLoc: legit-path flows hold >~0.8 of the link at all attack rates "
         "(~21/25 path shares); rising attack rates squeeze attack flows. "
         "Pushback loses legit-in-attack-path flows; RED-PD loses legit-path "
         "bandwidth at high rates",
         a);
  std::printf("%-10s %8s %14s %14s %14s %8s\n", "scheme", "Mbps/bot",
              "legit/legitP", "legit/attackP", "attack", "util");
  RunManifest manifest("fig08", a);
  const DefenseScheme schemes[] = {DefenseScheme::kFloc,
                                   DefenseScheme::kPushback,
                                   DefenseScheme::kRedPd};
  const double rates[] = {0.2, 0.4, 0.8, 1.6, 2.4, 3.2, 4.0};
  const std::size_t n_rates = std::size(rates);
  const auto cases = runner::run_indexed<CaseOutput>(
      a.jobs, std::size(schemes) * n_rates, [&](std::size_t i) {
        return run_case(schemes[i / n_rates], rates[i % n_rates],
                        a.run_seed(i, kSeedStreamTreeScenario), a);
      });
  for (std::size_t i = 0; i < cases.size(); ++i) {
    std::fputs(cases[i].row.c_str(), stdout);
    if (i % n_rates == n_rates - 1) std::printf("\n");
    char label[48];
    std::snprintf(label, sizeof(label), "%s@%.1f",
                  to_string(schemes[i / n_rates]), rates[i % n_rates]);
    manifest.add_run(label, cases[i].seed, cases[i].wall_seconds);
  }
  std::printf("(fractions of the target-link bandwidth)\n");
  manifest.write();
  return 0;
}
