// Timed attacks (Section II): on-off and rolling strategies designed to
// evade filter-installing defenses.
//
// Paper claim: "installing filters at remote routers can be susceptible to
// timed attacks, whereby a bot network changes attack strength (on-off) or
// location (rolling) in a coordinated manner to avoid detection". FLoc's
// per-interval token-bucket control re-converges each control interval, so
// neither strategy helps the attacker; Pushback's rate throttles chase the
// previous phase/location.
#include "bench/bench_common.h"

using namespace floc;
using namespace floc::bench;

namespace {

std::string run_case(DefenseScheme scheme, AttackType attack,
                     std::uint64_t seed, const BenchArgs& a) {
  TreeScenarioConfig cfg = fig5_config(a);
  cfg.scheme = scheme;
  cfg.attack = attack;
  cfg.seed = seed;
  // Peak rate scaled so the time-average matches a steady 2 Mbps/bot flood.
  if (attack == AttackType::kOnOff) {
    cfg.onoff_on = 4.0;
    cfg.onoff_off = 8.0;
    cfg.attack_rate = mbps(6.0);  // avg = 6 * 4/12 = 2 Mbps
  } else if (attack == AttackType::kRolling) {
    cfg.rolling_slot = 5.0;
    cfg.attack_rate = mbps(12.0);  // one of 6 groups at a time: avg 2 Mbps
  } else {
    cfg.attack_rate = mbps(2.0);
  }
  TreeScenario s(cfg);
  s.run();
  const auto cb = s.class_bandwidth();
  const double link = s.scaled_target_bw();
  char line[128];
  std::snprintf(line, sizeof(line), "%-10s %-10s %14.3f %14.3f %12.3f\n",
                to_string(scheme), to_string(attack),
                cb.legit_legit_bps / link, cb.legit_attack_bps / link,
                cb.attack_bps / link);
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs a = BenchArgs::parse(argc, argv);
  header("Timed attacks - on-off and rolling strategies vs steady CBR",
         "FLoc holds its guarantees under strength/location changes; "
         "filter-based defenses (Pushback) chase the previous phase",
         a);
  std::printf("%-10s %-10s %14s %14s %12s\n", "scheme", "attack",
              "legit/legitP", "legit/attackP", "attack");
  const DefenseScheme schemes[] = {DefenseScheme::kFloc,
                                   DefenseScheme::kPushback};
  const AttackType attacks[] = {AttackType::kCbr, AttackType::kOnOff,
                                AttackType::kRolling};
  const std::size_t n_attacks = std::size(attacks);
  RunManifest manifest("ablation_timed_attacks", a);
  struct Row {
    std::string line;
    double wall_seconds = 0.0;
  };
  const auto rows = runner::run_indexed<Row>(
      a.jobs, std::size(schemes) * n_attacks, [&](std::size_t i) {
        Row out;
        out.wall_seconds = runner::timed_seconds([&] {
          out.line = run_case(schemes[i / n_attacks], attacks[i % n_attacks],
                              a.run_seed(i, kSeedStreamTreeScenario), a);
        });
        return out;
      });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fputs(rows[i].line.c_str(), stdout);
    char label[48];
    std::snprintf(label, sizeof(label), "%s/%s",
                  to_string(schemes[i / n_attacks]),
                  to_string(attacks[i % n_attacks]));
    manifest.add_run(label, a.run_seed(i, kSeedStreamTreeScenario),
                     rows[i].wall_seconds);
    if (i % n_attacks == n_attacks - 1) std::printf("\n");
  }
  std::printf("(equal time-averaged attack strength in all three rows of a "
              "scheme; lower attack share + higher legit share = better)\n");
  manifest.write();
  return 0;
}
