// TimeSeriesSampler: alignment with simulated time, late-metric backfill,
// derived rate columns, histogram column expansion, CSV/JSON export.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.h"
#include "telemetry/time_series.h"

namespace floc::telemetry {
namespace {

// Minimal scheduler double satisfying the attach() contract: now() and
// schedule_at(t, cb), executing callbacks in time order.
struct FakeSched {
  TimeSec now_ = 0.0;
  std::vector<std::pair<TimeSec, std::function<void()>>> pending;

  TimeSec now() const { return now_; }
  void schedule_at(TimeSec t, std::function<void()> cb) {
    pending.emplace_back(t, std::move(cb));
  }
  void run() {
    while (!pending.empty()) {
      auto [t, cb] = std::move(pending.front());
      pending.erase(pending.begin());
      now_ = t;
      cb();
    }
  }
};

TEST(Sampler, PeriodAlignedWithSimulatedTime) {
  MetricRegistry reg;
  reg.gauge("g")->set(1.0);
  TimeSeriesSampler s(&reg, 0.25);

  FakeSched sched;
  sched.now_ = 0.5;
  s.attach(&sched, 2.0);
  sched.run();

  ASSERT_EQ(s.rows(), 7u);  // 0.5, 0.75, ..., 2.0
  for (std::size_t k = 0; k < s.rows(); ++k) {
    // Exactly t0 + k*period — computed, not accumulated, so no fp drift.
    EXPECT_DOUBLE_EQ(s.times()[k], 0.5 + static_cast<double>(k) * 0.25);
  }
}

TEST(Sampler, ManySamplesStayAligned) {
  MetricRegistry reg;
  reg.gauge("g");
  // A period with no exact binary representation: accumulation would drift.
  TimeSeriesSampler s(&reg, 0.1);
  FakeSched sched;
  s.attach(&sched, 1000.0);
  sched.run();
  ASSERT_EQ(s.rows(), 10001u);
  EXPECT_DOUBLE_EQ(s.times().back(), 0.0 + 10000.0 * 0.1);
}

TEST(Sampler, RateColumns) {
  MetricRegistry reg;
  Counter* c = reg.counter("bytes");
  TimeSeriesSampler s(&reg, 1.0);
  s.sample(0.0);
  c->add(10);
  s.sample(2.0);
  c->add(30);
  s.sample(4.0);

  s.add_rate_column("bytes");
  EXPECT_TRUE(std::isnan(s.value(0, "bytes.rate")));
  EXPECT_DOUBLE_EQ(s.value(1, "bytes.rate"), 5.0);   // 10 over 2s
  EXPECT_DOUBLE_EQ(s.value(2, "bytes.rate"), 15.0);  // 30 over 2s
}

TEST(Sampler, LateMetricsBackfillNaN) {
  MetricRegistry reg;
  reg.gauge("early")->set(1.0);
  TimeSeriesSampler s(&reg, 1.0);
  s.sample(0.0);
  reg.gauge("late")->set(2.0);
  s.sample(1.0);

  EXPECT_DOUBLE_EQ(s.value(0, "early"), 1.0);
  EXPECT_TRUE(std::isnan(s.value(0, "late")));
  EXPECT_DOUBLE_EQ(s.value(1, "late"), 2.0);
  EXPECT_TRUE(std::isnan(s.value(0, "no-such-column")));
}

TEST(Sampler, HistogramExpandsToQuantileColumns) {
  MetricRegistry reg;
  LogHistogram* h = reg.histogram("lat");
  for (int i = 1; i <= 100; ++i) h->observe(static_cast<double>(i));
  TimeSeriesSampler s(&reg, 1.0);
  s.sample(0.0);

  EXPECT_DOUBLE_EQ(s.value(0, "lat.count"), 100.0);
  EXPECT_NEAR(s.value(0, "lat.p50"), 50.0, 50.0 * 0.02);
  EXPECT_NEAR(s.value(0, "lat.p90"), 90.0, 90.0 * 0.02);
  EXPECT_NEAR(s.value(0, "lat.p99"), 99.0, 99.0 * 0.02);
  EXPECT_NEAR(s.value(0, "lat.p999"), 100.0, 100.0 * 0.02);
}

TEST(Sampler, CsvAndJsonExport) {
  MetricRegistry reg;
  Counter* c = reg.counter("n");
  TimeSeriesSampler s(&reg, 1.0);
  s.sample(0.0);
  reg.gauge("late")->set(7.0);
  c->add(3);
  s.sample(1.0);

  const std::string csv = s.to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "time,n,late");
  // NaN backfill renders as an empty CSV cell and a JSON null.
  EXPECT_NE(csv.find("0,0,\n"), std::string::npos) << csv;  // row 0: late NaN
  EXPECT_NE(csv.find("1,3,7"), std::string::npos) << csv;   // row 1 complete
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"late\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"n\": 3"), std::string::npos) << json;
}

TEST(Sampler, WriteCsvRoundTrips) {
  MetricRegistry reg;
  reg.gauge("g")->set(5.0);
  TimeSeriesSampler s(&reg, 1.0);
  s.sample(0.0);
  const std::string path = ::testing::TempDir() + "floc_sampler_test.csv";
  ASSERT_TRUE(s.write_csv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256] = {};
  std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(std::string(buf).find("time,g"), std::string::npos);
}

}  // namespace
}  // namespace floc::telemetry
