// Covert-attack defense at the queue level (Section IV-B.3): capability
// slots collapse a source's fan-out into n_max accounting flows.
#include <gtest/gtest.h>

#include <cmath>

#include "core/floc_queue.h"

namespace floc {
namespace {

FlocConfig covert_cfg(int n_max) {
  FlocConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 100;
  cfg.control_interval = 0.1;
  cfg.default_rtt = 0.05;
  cfg.enable_aggregation = false;
  cfg.n_max = n_max;
  return cfg;
}

Packet data(FlowId flow, HostAddr src, HostAddr dst, const PathId& path) {
  Packet p;
  p.flow = flow;
  p.src = src;
  p.dst = dst;
  p.path = path;
  p.type = PacketType::kData;
  return p;
}

TEST(FlocCovert, FanOutCollapsesToSlots) {
  FlocQueue q(covert_cfg(2));
  const PathId path = PathId::of({1});
  // One source, 20 flows to 20 destinations: at most 2 accounting flows.
  for (int d = 0; d < 20; ++d) {
    q.enqueue(data(static_cast<FlowId>(100 + d), /*src=*/7,
                   static_cast<HostAddr>(200 + d), path),
              0.01 * d);
  }
  EXPECT_LE(q.path_flow_count(path), 2u);
}

TEST(FlocCovert, DistinctSourcesKeepDistinctAccounting) {
  FlocQueue q(covert_cfg(2));
  const PathId path = PathId::of({1});
  for (int s = 0; s < 10; ++s) {
    q.enqueue(data(static_cast<FlowId>(100 + s), static_cast<HostAddr>(1 + s),
                   99, path),
              0.01 * s);
  }
  // Ten sources, one destination each: >= 10 accounting flows... but slot
  // hashing is per (src, slot), so each source contributes one.
  EXPECT_EQ(q.path_flow_count(path), 10u);
}

TEST(FlocCovert, SlotsOffUsesTransportFlows) {
  FlocQueue q(covert_cfg(0));
  const PathId path = PathId::of({1});
  for (int d = 0; d < 20; ++d) {
    q.enqueue(data(static_cast<FlowId>(100 + d), 7,
                   static_cast<HostAddr>(200 + d), path),
              0.01 * d);
  }
  EXPECT_EQ(q.path_flow_count(path), 20u);
}

// A covert source's aggregate MTD builds up across its flows: the slot key
// accumulates drops from every member flow, so the *source* looks like one
// high-rate flow (the mechanism that defeats the covert strategy).
TEST(FlocCovert, SlotAggregatesDropsAcrossDestinations) {
  FlocConfig cfg = covert_cfg(1);  // single slot: everything collapses
  cfg.buffer_packets = 30;
  FlocQueue q(cfg);
  const PathId path = PathId::of({2});
  double t = 0.0;
  // 20 destinations, round-robin, combined far above fair rate.
  for (int i = 0; i < 20000; ++i) {
    t = i * 0.0002;
    q.enqueue(data(static_cast<FlowId>(100 + i % 20), 7,
                   static_cast<HostAddr>(200 + i % 20), path),
              t);
    if (i % 3 == 0) q.dequeue(t);
  }
  q.run_control(t + 0.01);
  ASSERT_EQ(q.path_flow_count(path), 1u);
  // The single accounting flow must show a finite, small MTD.
  const std::uint64_t key = q.issuer().accounting_key(
      data(100, 7, 200, path));
  EXPECT_TRUE(std::isfinite(q.flow_mtd(path, key, t)));
}

}  // namespace
}  // namespace floc
