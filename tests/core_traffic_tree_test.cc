#include "core/traffic_tree.h"

#include <gtest/gtest.h>

namespace floc {
namespace {

std::vector<PathSnapshot> sample_paths() {
  // Tree:        root
  //             /    \
  //           1        2
  //          / \      / \
  //        1,3 1,4  2,5 2,6
  return {
      {PathId::of({1, 3}), 0.9, 10.0},
      {PathId::of({1, 4}), 0.3, 20.0},
      {PathId::of({2, 5}), 0.2, 30.0},
      {PathId::of({2, 6}), 0.4, 40.0},
  };
}

TEST(TrafficTree, BuildsPrefixStructure) {
  TrafficTree t(sample_paths());
  // root + {1} + {1,3} + {1,4} + {2} + {2,5} + {2,6} = 7 nodes.
  EXPECT_EQ(t.node_count(), 7);
  EXPECT_EQ(t.node(t.root()).leaf_count, 4);
  EXPECT_EQ(t.node(t.root()).children.size(), 2u);
}

TEST(TrafficTree, SubtreeAccumulations) {
  TrafficTree t(sample_paths());
  // Find node {1}.
  int n1 = -1;
  for (int i = 0; i < t.node_count(); ++i) {
    if (t.node(i).prefix == PathId::of({1})) n1 = i;
  }
  ASSERT_GE(n1, 0);
  EXPECT_EQ(t.node(n1).leaf_count, 2);
  EXPECT_DOUBLE_EQ(t.node(n1).conf_sum, 1.2);
  EXPECT_DOUBLE_EQ(t.node(n1).flow_sum, 30.0);
  EXPECT_DOUBLE_EQ(t.mean_conformance(n1), 0.6);
}

TEST(TrafficTree, ReductionCounts) {
  TrafficTree t(sample_paths());
  EXPECT_EQ(t.reduction(t.root()), 3);  // 4 paths -> 1
  for (int i = 0; i < t.node_count(); ++i) {
    if (t.node(i).leaf_index >= 0) EXPECT_EQ(t.reduction(i), 0);
  }
}

TEST(TrafficTree, AncestorRelation) {
  TrafficTree t(sample_paths());
  int n1 = -1, n13 = -1, n2 = -1;
  for (int i = 0; i < t.node_count(); ++i) {
    if (t.node(i).prefix == PathId::of({1})) n1 = i;
    if (t.node(i).prefix == PathId::of({1, 3})) n13 = i;
    if (t.node(i).prefix == PathId::of({2})) n2 = i;
  }
  EXPECT_TRUE(t.is_ancestor(t.root(), n13));
  EXPECT_TRUE(t.is_ancestor(n1, n13));
  EXPECT_TRUE(t.is_ancestor(n1, n1));
  EXPECT_FALSE(t.is_ancestor(n13, n1));
  EXPECT_FALSE(t.is_ancestor(n2, n13));
}

TEST(TrafficTree, InternalNodes) {
  TrafficTree t(sample_paths());
  const auto internal = t.internal_nodes();
  // {1} and {2} have two leaves each; leaves themselves excluded.
  EXPECT_EQ(internal.size(), 2u);
  const auto with_root = t.internal_nodes(/*include_root=*/true);
  EXPECT_EQ(with_root.size(), 3u);
}

TEST(TrafficTree, PathsUnder) {
  TrafficTree t(sample_paths());
  int n2 = -1;
  for (int i = 0; i < t.node_count(); ++i) {
    if (t.node(i).prefix == PathId::of({2})) n2 = i;
  }
  auto under = t.paths_under(n2);
  std::sort(under.begin(), under.end());
  EXPECT_EQ(under, (std::vector<int>{2, 3}));
}

TEST(TrafficTree, LegitAggregationCostEqIV8) {
  // Equal conformance => cost 0 (mean == weighted mean).
  TrafficTree eq({{PathId::of({1, 2}), 0.8, 10.0}, {PathId::of({1, 3}), 0.8, 40.0}});
  int n1 = -1;
  for (int i = 0; i < eq.node_count(); ++i) {
    if (eq.node(i).prefix == PathId::of({1})) n1 = i;
  }
  EXPECT_NEAR(eq.legit_aggregation_cost(n1), 0.0, 1e-12);

  // Low-conformance path with MORE flows: weighted mean < mean => positive
  // cost (aggregation would hurt), Eq. IV.8.
  TrafficTree bad({{PathId::of({1, 2}), 1.0, 10.0}, {PathId::of({1, 3}), 0.2, 90.0}});
  for (int i = 0; i < bad.node_count(); ++i) {
    if (bad.node(i).prefix == PathId::of({1})) n1 = i;
  }
  EXPECT_GT(bad.legit_aggregation_cost(n1), 0.0);

  // Low-conformance path with FEWER flows: weighted mean > mean => negative
  // cost (aggregation improves flow-weighted conformance).
  TrafficTree good({{PathId::of({1, 2}), 1.0, 90.0}, {PathId::of({1, 3}), 0.2, 10.0}});
  for (int i = 0; i < good.node_count(); ++i) {
    if (good.node(i).prefix == PathId::of({1})) n1 = i;
  }
  EXPECT_LT(good.legit_aggregation_cost(n1), 0.0);
}

TEST(TrafficTree, PathTerminatingAtInternalNode) {
  // {1} is both a full path and a prefix of {1,2}.
  TrafficTree t({{PathId::of({1}), 0.5, 5.0}, {PathId::of({1, 2}), 0.9, 5.0}});
  int n1 = -1;
  for (int i = 0; i < t.node_count(); ++i) {
    if (t.node(i).prefix == PathId::of({1})) n1 = i;
  }
  ASSERT_GE(n1, 0);
  EXPECT_EQ(t.node(n1).leaf_index, 0);
  EXPECT_EQ(t.node(n1).leaf_count, 2);
}

TEST(TrafficTree, SinglePathDegenerate) {
  TrafficTree t({{PathId::of({1, 2, 3}), 0.7, 3.0}});
  EXPECT_EQ(t.node(t.root()).leaf_count, 1);
  EXPECT_TRUE(t.internal_nodes().empty());
  EXPECT_EQ(t.reduction(t.root()), 0);
}

}  // namespace
}  // namespace floc
