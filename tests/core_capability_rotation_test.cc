// Capability-key rotation: the dual-secret grace window (old-key words keep
// verifying for one control interval, during which misses are re-stamped
// instead of dropped) and its hard edge (after the window, pre-rotation
// capabilities are violations like any forgery).
#include <gtest/gtest.h>

#include "core/capability.h"
#include "core/floc_queue.h"

namespace floc {
namespace {

Packet capped_data(std::uint64_t cap0, std::uint64_t cap1) {
  Packet p;
  p.flow = 1;
  p.src = 1;
  p.dst = 99;
  p.path = PathId::of({1, 2});
  p.type = PacketType::kData;
  p.cap0 = cap0;
  p.cap1 = cap1;
  return p;
}

TEST(CapabilityRotation, IssuerGraceWindowSemantics) {
  CapabilityIssuer issuer(0xAAAAULL, /*n_max=*/0);
  const PathId path = PathId::of({1, 2});
  const auto old_caps = issuer.issue(1, 99, path);
  Packet old_pkt = capped_data(old_caps.cap0, old_caps.cap1);
  ASSERT_EQ(issuer.verify_at(old_pkt, 0.0), CapabilityIssuer::VerifyResult::kOk);
  EXPECT_FALSE(issuer.in_grace(0.0));

  issuer.rotate(0xBBBBULL, /*now=*/10.0, /*grace_window=*/0.25);
  EXPECT_EQ(issuer.rotations(), 1u);
  EXPECT_TRUE(issuer.in_grace(10.1));

  // Old words: previous-keys verdict inside the window, failure past it.
  EXPECT_EQ(issuer.verify_at(old_pkt, 10.1),
            CapabilityIssuer::VerifyResult::kOkPrevious);
  EXPECT_FALSE(issuer.verify(old_pkt));  // current-keys-only check fails now
  EXPECT_FALSE(issuer.in_grace(10.25));
  EXPECT_EQ(issuer.verify_at(old_pkt, 10.25),
            CapabilityIssuer::VerifyResult::kFail);

  // Fresh issues are under the new secret and unaffected by the window.
  const auto new_caps = issuer.issue(1, 99, path);
  EXPECT_NE(new_caps.cap0, old_caps.cap0);
  Packet new_pkt = capped_data(new_caps.cap0, new_caps.cap1);
  EXPECT_EQ(issuer.verify_at(new_pkt, 10.1),
            CapabilityIssuer::VerifyResult::kOk);
  EXPECT_EQ(issuer.verify_at(new_pkt, 99.0),
            CapabilityIssuer::VerifyResult::kOk);

  // A second rotation invalidates the first-generation words immediately
  // (only one previous key set is kept).
  issuer.rotate(0xCCCCULL, 20.0, 0.25);
  EXPECT_EQ(issuer.rotations(), 2u);
  EXPECT_EQ(issuer.verify_at(old_pkt, 20.1),
            CapabilityIssuer::VerifyResult::kFail);
  EXPECT_EQ(issuer.verify_at(new_pkt, 20.1),
            CapabilityIssuer::VerifyResult::kOkPrevious);
}

FlocConfig rot_cfg() {
  FlocConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 100;
  cfg.control_interval = 0.1;  // grace window = one control interval
  cfg.default_rtt = 0.05;
  cfg.enable_aggregation = false;
  return cfg;
}

// Fetch the capability words a FLoc queue stamps into a SYN.
CapabilityIssuer::Caps syn_caps(FlocQueue& q, TimeSec now) {
  Packet s;
  s.flow = 1;
  s.src = 1;
  s.dst = 99;
  s.path = PathId::of({1, 2});
  s.type = PacketType::kSyn;
  s.size_bytes = 40;
  EXPECT_TRUE(q.enqueue(std::move(s), now));
  auto out = q.dequeue(now);
  EXPECT_TRUE(out.has_value());
  return {out->cap0, out->cap1};
}

TEST(CapabilityRotation, QueueReissuesDuringGraceThenEnforces) {
  FlocQueue q(rot_cfg());
  const auto caps = syn_caps(q, 0.0);
  ASSERT_TRUE(q.enqueue(capped_data(caps.cap0, caps.cap1), 1.0));
  q.dequeue(1.0);
  ASSERT_EQ(q.capability_violations(), 0u);

  q.rotate_secret(0x5EC2E7ULL, /*now=*/2.0);  // grace until 2.1

  // Inside the window: the old-key packet is admitted and re-stamped under
  // the new secret instead of dropped.
  ASSERT_TRUE(q.enqueue(capped_data(caps.cap0, caps.cap1), 2.05));
  EXPECT_EQ(q.cap_reissues(), 1u);
  EXPECT_EQ(q.capability_violations(), 0u);
  auto restamped = q.dequeue(2.05);
  ASSERT_TRUE(restamped.has_value());
  EXPECT_NE(restamped->cap0, caps.cap0);
  EXPECT_TRUE(q.issuer().verify(*restamped));

  // A flow that adopted the re-stamped words stays verifiable past the
  // window; one still echoing pre-rotation words is cut off.
  EXPECT_TRUE(
      q.enqueue(capped_data(restamped->cap0, restamped->cap1), 2.5));
  EXPECT_FALSE(q.enqueue(capped_data(caps.cap0, caps.cap1), 2.5));
  EXPECT_EQ(q.capability_violations(), 1u);
  EXPECT_EQ(q.drops_by_reason(DropReason::kCapability), 1u);
}

TEST(CapabilityRotation, CorruptedCapabilityIsViolationNotCrash) {
  FlocQueue q(rot_cfg());
  const auto caps = syn_caps(q, 0.0);

  // Single bit-flips anywhere in either word (what a corruption window
  // injects) are counted violations, never crashes or admissions.
  int rejected = 0;
  for (int bit = 0; bit < 64; bit += 7) {
    if (!q.enqueue(capped_data(caps.cap0 ^ (1ULL << bit), caps.cap1), 0.5)) {
      ++rejected;
    }
    if (!q.enqueue(capped_data(caps.cap0, caps.cap1 ^ (1ULL << bit)), 0.5)) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 20);
  EXPECT_EQ(q.capability_violations(), 20u);

  // During a rotation grace window the same corruption degrades to a
  // re-stamp (fail-open toward continuity); after it, violations again.
  q.rotate_secret(0xD00DULL, 1.0);
  EXPECT_TRUE(q.enqueue(capped_data(caps.cap0 ^ 1ULL, caps.cap1), 1.05));
  EXPECT_EQ(q.cap_reissues(), 1u);
  EXPECT_FALSE(q.enqueue(capped_data(caps.cap0 ^ 1ULL, caps.cap1), 1.2));
  EXPECT_EQ(q.capability_violations(), 21u);
}

}  // namespace
}  // namespace floc
