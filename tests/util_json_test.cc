// util/json: the minimal parser behind perf_compare and the artifact
// well-formedness tests. Pins the accepted subset (objects, arrays, strings
// with simple escapes, numbers, booleans, null), the typed accessors, and
// the rejection behavior (trailing garbage, truncation, bad escapes) with
// byte-offset error messages.
#include <string>

#include <gtest/gtest.h>

#include "util/json.h"

namespace floc::json {
namespace {

TEST(Json, ParsesScalarsAndContainers) {
  Value v;
  ASSERT_TRUE(parse(R"({"a": 1.5, "b": "x", "c": true, "d": null,
                        "e": [1, 2, 3], "f": {"nested": -2e3}})",
                    &v));
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.get("a")->number, 1.5);
  EXPECT_EQ(v.get("b")->str, "x");
  EXPECT_TRUE(v.get("c")->boolean);
  EXPECT_EQ(v.get("d")->kind, Value::kNull);
  ASSERT_TRUE(v.get("e")->is_array());
  ASSERT_EQ(v.get("e")->items.size(), 3u);
  EXPECT_DOUBLE_EQ(v.get("e")->items[1].number, 2.0);
  EXPECT_DOUBLE_EQ(v.get("f")->get("nested")->number, -2000.0);
}

TEST(Json, TypedAccessorsFallBackOnMissingOrWrongKind) {
  Value v;
  ASSERT_TRUE(parse(R"({"n": 3, "s": "hi", "flag": false})", &v));
  EXPECT_DOUBLE_EQ(v.number_or("n", -1.0), 3.0);
  EXPECT_DOUBLE_EQ(v.number_or("absent", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(v.number_or("s", -1.0), -1.0);  // wrong kind
  EXPECT_EQ(v.string_or("s", "dflt"), "hi");
  EXPECT_EQ(v.string_or("n", "dflt"), "dflt");
  EXPECT_FALSE(v.bool_or("flag", true));
  EXPECT_TRUE(v.bool_or("absent", true));
}

TEST(Json, StringEscapes) {
  Value v;
  ASSERT_TRUE(parse(R"({"k": "a\"b\\c\nd\te\/f"})", &v));
  EXPECT_EQ(v.get("k")->str, "a\"b\\c\nd\te/f");
}

TEST(Json, GetOnNonObjectReturnsNull) {
  Value v;
  ASSERT_TRUE(parse("[1, 2]", &v));
  EXPECT_EQ(v.get("anything"), nullptr);
}

TEST(Json, RejectsMalformedInputWithOffset) {
  const char* bad[] = {
      "",                    // empty
      "{\"a\": }",           // missing value
      "{\"a\": 1",           // unterminated object
      "[1, 2",               // unterminated array
      "\"unterminated",      // unterminated string
      "{\"a\": 1} extra",    // trailing garbage
      "{\"a\" 1}",           // missing colon
      "{\"e\": \"\\q\"}",    // unsupported escape
      "nul",                 // truncated literal
  };
  for (const char* text : bad) {
    Value v;
    std::string err;
    EXPECT_FALSE(parse(text, &v, &err)) << text;
    EXPECT_NE(err.find("offset"), std::string::npos) << text << " -> " << err;
  }
}

TEST(Json, FirstKeyWinsOnDuplicates) {
  Value v;
  ASSERT_TRUE(parse(R"({"k": 1, "k": 2})", &v));
  EXPECT_DOUBLE_EQ(v.get("k")->number, 1.0);
}

}  // namespace
}  // namespace floc::json
