// util/json: the minimal parser behind perf_compare and the artifact
// well-formedness tests. Pins the accepted subset (objects, arrays, strings
// with simple escapes, numbers, booleans, null), the typed accessors, and
// the rejection behavior (trailing garbage, truncation, bad escapes) with
// byte-offset error messages.
#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "util/json.h"

namespace floc::json {
namespace {

TEST(Json, ParsesScalarsAndContainers) {
  Value v;
  ASSERT_TRUE(parse(R"({"a": 1.5, "b": "x", "c": true, "d": null,
                        "e": [1, 2, 3], "f": {"nested": -2e3}})",
                    &v));
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.get("a")->number, 1.5);
  EXPECT_EQ(v.get("b")->str, "x");
  EXPECT_TRUE(v.get("c")->boolean);
  EXPECT_EQ(v.get("d")->kind, Value::kNull);
  ASSERT_TRUE(v.get("e")->is_array());
  ASSERT_EQ(v.get("e")->items.size(), 3u);
  EXPECT_DOUBLE_EQ(v.get("e")->items[1].number, 2.0);
  EXPECT_DOUBLE_EQ(v.get("f")->get("nested")->number, -2000.0);
}

TEST(Json, TypedAccessorsFallBackOnMissingOrWrongKind) {
  Value v;
  ASSERT_TRUE(parse(R"({"n": 3, "s": "hi", "flag": false})", &v));
  EXPECT_DOUBLE_EQ(v.number_or("n", -1.0), 3.0);
  EXPECT_DOUBLE_EQ(v.number_or("absent", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(v.number_or("s", -1.0), -1.0);  // wrong kind
  EXPECT_EQ(v.string_or("s", "dflt"), "hi");
  EXPECT_EQ(v.string_or("n", "dflt"), "dflt");
  EXPECT_FALSE(v.bool_or("flag", true));
  EXPECT_TRUE(v.bool_or("absent", true));
}

TEST(Json, StringEscapes) {
  Value v;
  ASSERT_TRUE(parse(R"({"k": "a\"b\\c\nd\te\/f"})", &v));
  EXPECT_EQ(v.get("k")->str, "a\"b\\c\nd\te/f");
}

TEST(Json, GetOnNonObjectReturnsNull) {
  Value v;
  ASSERT_TRUE(parse("[1, 2]", &v));
  EXPECT_EQ(v.get("anything"), nullptr);
}

TEST(Json, RejectsMalformedInputWithOffset) {
  const char* bad[] = {
      "",                    // empty
      "{\"a\": }",           // missing value
      "{\"a\": 1",           // unterminated object
      "[1, 2",               // unterminated array
      "\"unterminated",      // unterminated string
      "{\"a\": 1} extra",    // trailing garbage
      "{\"a\" 1}",           // missing colon
      "{\"e\": \"\\q\"}",    // unsupported escape
      "nul",                 // truncated literal
  };
  for (const char* text : bad) {
    Value v;
    std::string err;
    EXPECT_FALSE(parse(text, &v, &err)) << text;
    EXPECT_NE(err.find("offset"), std::string::npos) << text << " -> " << err;
  }
}

TEST(Json, FirstKeyWinsOnDuplicates) {
  Value v;
  ASSERT_TRUE(parse(R"({"k": 1, "k": 2})", &v));
  EXPECT_DOUBLE_EQ(v.get("k")->number, 1.0);
}

TEST(JsonWriter, EmitsCompactDocumentTheParserAccepts) {
  JsonWriter w;
  w.begin_object();
  w.key("mode").value("flooding");
  w.key("tokens").value(1234.5);
  w.key("drops").value(std::uint64_t{42});
  w.key("latched").value(true);
  w.key("none").value_null();
  w.key("members").begin_array().value(7).value(9).end_array();
  w.key("nested").begin_object().field("depth", 2).end_object();
  w.end_object();
  EXPECT_TRUE(w.ok());
  EXPECT_EQ(w.str(),
            R"({"mode":"flooding","tokens":1234.5,"drops":42,"latched":true,)"
            R"("none":null,"members":[7,9],"nested":{"depth":2}})");
  Value v;
  std::string err;
  ASSERT_TRUE(parse(w.str(), &v, &err)) << err;
  EXPECT_EQ(v.string_or("mode", ""), "flooding");
  EXPECT_DOUBLE_EQ(v.number_or("tokens", 0), 1234.5);
  ASSERT_EQ(v.get("members")->items.size(), 2u);
}

TEST(JsonWriter, EscapesExactlyWhatTheParserUnescapes) {
  JsonWriter w;
  w.begin_object().field("k", std::string("a\"b\\c\nd\te\rf")).end_object();
  EXPECT_TRUE(w.ok());
  Value v;
  std::string err;
  ASSERT_TRUE(parse(w.str(), &v, &err)) << err;
  EXPECT_EQ(v.get("k")->str, "a\"b\\c\nd\te\rf");
}

TEST(JsonWriter, NumberFormattingIsDeterministic) {
  // Integral doubles and u64/i64 print as integers; the rest through one
  // fixed format. Two structurally identical emissions are byte-identical —
  // the property the --jobs determinism contract leans on.
  JsonWriter a;
  a.begin_array()
      .value(0.0)
      .value(-3.0)
      .value(1e6)
      .value(0.125)
      .value(std::uint64_t{18446744073709551615ULL})
      .value(std::int64_t{-9000000000LL})
      .end_array();
  EXPECT_EQ(a.str(), "[0,-3,1000000,0.125,18446744073709551615,-9000000000]");
  JsonWriter b;
  b.begin_array()
      .value(0.0)
      .value(-3.0)
      .value(1e6)
      .value(0.125)
      .value(std::uint64_t{18446744073709551615ULL})
      .value(std::int64_t{-9000000000LL})
      .end_array();
  EXPECT_EQ(a.str(), b.str());
}

TEST(JsonWriter, NonFiniteDoublesEmitNull) {
  JsonWriter w;
  w.begin_array()
      .value(std::numeric_limits<double>::infinity())
      .value(std::numeric_limits<double>::quiet_NaN())
      .end_array();
  EXPECT_EQ(w.str(), "[null,null]");
  EXPECT_TRUE(w.ok());
}

TEST(JsonWriter, RawSplicesPrerenderedSubdocument) {
  JsonWriter inner;
  inner.begin_object().field("x", 1).end_object();
  JsonWriter w;
  w.begin_object().key("sub").raw(inner.str()).end_object();
  EXPECT_TRUE(w.ok());
  Value v;
  ASSERT_TRUE(parse(w.str(), &v));
  EXPECT_DOUBLE_EQ(v.get("sub")->number_or("x", 0), 1.0);
}

TEST(JsonWriter, StructuralMisuseClearsOkButStaysWellFormed) {
  {
    JsonWriter w;  // value in object without key
    w.begin_object().value(1).end_object();
    EXPECT_FALSE(w.ok());
  }
  {
    JsonWriter w;  // mismatched close
    w.begin_array().end_object();
    EXPECT_FALSE(w.ok());
  }
  {
    JsonWriter w;  // unclosed container at the point of asking
    w.begin_object();
    EXPECT_FALSE(w.ok());
    EXPECT_EQ(w.depth(), 1u);
    w.end_object();
    EXPECT_TRUE(w.ok());
  }
  {
    JsonWriter w;  // two top-level values
    w.value(1);
    EXPECT_TRUE(w.ok());
    w.value(2);
    EXPECT_FALSE(w.ok());
  }
}

}  // namespace
}  // namespace floc::json
