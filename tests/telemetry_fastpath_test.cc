// Telemetry-disabled fast path: a FlocQueue that has never had telemetry
// attached — or had it detached again — must do the exact same work as the
// seed queue. We pin that down two ways:
//
//  1. Allocation parity. Global operator new/delete are replaced with the
//     shared counting versions from telemetry/alloc_counter.h (which is why
//     this test lives in its own binary: the replacement is program-wide,
//     same opt-in as bench/perf_suite). A detached queue must allocate
//     exactly as much as a never-attached one over an identical workload,
//     and a steady-state enqueue/dequeue loop must allocate (almost)
//     nothing per packet.
//
//  2. A generous wall-clock bound, as a smoke check that the pointer-null
//     guard did not accidentally put a slow path (string formatting,
//     journal append) on the packet path.
#include <chrono>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "core/floc_queue.h"
#include "telemetry/alloc_counter.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/profiler.h"
#include "telemetry/telemetry.h"
#include "telemetry/tracing.h"

FLOC_DEFINE_COUNTING_ALLOCATOR

namespace floc {
namespace {

using telemetry::ScopedAllocCount;

FlocConfig bench_cfg() {
  FlocConfig cfg;
  cfg.link_bandwidth = gbps(10);
  cfg.buffer_packets = 4096;
  return cfg;
}

Packet make_packet(FlowId flow, const PathId& path) {
  Packet p;
  p.flow = flow;
  p.src = static_cast<HostAddr>(flow + 1);
  p.dst = 9999;
  p.path = path;
  p.type = PacketType::kData;
  return p;
}

// The router_design_micro workload: a fixed flow population cycling
// enqueue/dequeue at ~10 Gbps pacing. Returns total admitted.
std::uint64_t run_workload(FlocQueue& q, int packets) {
  const PathId paths[4] = {PathId::of({1, 101}), PathId::of({2, 102}),
                           PathId::of({3, 103}), PathId::of({4, 104})};
  double t = 0.0;
  std::uint64_t admitted = 0;
  for (int i = 0; i < packets; ++i) {
    Packet p = make_packet(static_cast<FlowId>(i % 200),
                           paths[static_cast<std::size_t>(i % 4)]);
    if (q.enqueue(std::move(p), t)) ++admitted;
    q.dequeue(t);
    t += 1.2e-6;
  }
  return admitted;
}

TEST(TelemetryFastPath, DetachedQueueAllocatesExactlyLikeSeedQueue) {
  constexpr int kPackets = 50000;

  // Baseline: telemetry never attached.
  FlocQueue plain(bench_cfg());
  ScopedAllocCount guard;
  const std::uint64_t plain_admitted = run_workload(plain, kPackets);
  const std::uint64_t plain_allocs = guard.allocs();

  // Attached then detached: registration may allocate, but once journal_
  // is null again the packet path must be byte-for-byte the seed path.
  FlocQueue detached(bench_cfg());
  {
    telemetry::Telemetry tel;
    detached.attach_telemetry(&tel);
    detached.attach_telemetry(nullptr);
  }
  guard.reset();
  const std::uint64_t detached_admitted = run_workload(detached, kPackets);
  const std::uint64_t detached_allocs = guard.allocs();

  EXPECT_EQ(plain_admitted, detached_admitted);
  EXPECT_EQ(plain.drops(), detached.drops());
  EXPECT_EQ(plain_allocs, detached_allocs);
}

TEST(TelemetryFastPath, AttachedButQuiescentAddsNoAllocations) {
  // The seed queue's std::deque churns one block per handful of packets as
  // the enqueue/dequeue ring walks through memory; that is pre-existing and
  // not what this test polices. What telemetry must guarantee: with the
  // journal attached but quiescent (no mode transitions, no journaled
  // events), the packet path allocates EXACTLY as much as the seed queue —
  // the gauge_fn closures are polled, never pushed, and the null/quiet
  // guard allocates nothing.
  FlocQueue plain(bench_cfg());
  run_workload(plain, 50000);  // warm up flow tables, deque blocks
  ScopedAllocCount guard;
  run_workload(plain, 50000);
  const std::uint64_t plain_steady = guard.allocs();

  FlocQueue attached(bench_cfg());
  telemetry::Telemetry tel;
  run_workload(attached, 50000);
  attached.attach_telemetry(&tel);  // after warmup: registration is cold
  const std::uint64_t before_events = tel.journal.total();
  guard.reset();
  run_workload(attached, 50000);
  const std::uint64_t attached_steady = guard.allocs();

  // Quiescent run: nothing was journaled, so nothing may have allocated.
  ASSERT_EQ(tel.journal.total(), before_events);
  EXPECT_EQ(attached_steady, plain_steady);
  // And the shared baseline is bounded by deque block churn alone.
  EXPECT_LT(plain_steady, 50000u / 2);
}

TEST(TelemetryFastPath, DetachedTracerAndProfilerAllocateLikeSeedQueue) {
  constexpr int kPackets = 50000;

  FlocQueue plain(bench_cfg());
  run_workload(plain, kPackets);  // warm up flow tables, deque blocks
  ScopedAllocCount guard;
  const std::uint64_t plain_admitted = run_workload(plain, kPackets);
  const std::uint64_t plain_steady = guard.allocs();

  // Tracer and profiler attached, then detached again: the packet path must
  // be byte-for-byte the seed path (one pointer test per hook site).
  FlocQueue detached(bench_cfg());
  run_workload(detached, kPackets);
  {
    telemetry::Tracer tracer;
    telemetry::Profiler prof;
    detached.set_tracer(&tracer);
    detached.set_profiler(&prof);
    detached.set_tracer(nullptr);
    detached.set_profiler(nullptr);
  }
  guard.reset();
  const std::uint64_t detached_admitted = run_workload(detached, kPackets);
  const std::uint64_t detached_steady = guard.allocs();

  EXPECT_EQ(plain_admitted, detached_admitted);
  EXPECT_EQ(plain_steady, detached_steady);
}

TEST(TelemetryFastPath, AttachedTracerIgnoresUntracedPackets) {
  // A tracer may be attached while most packets carry no span (tracing is
  // opt-in per packet via Packet::span). Untraced packets must not allocate
  // beyond the seed path: the guard is `tracer != null && span.active()`.
  constexpr int kPackets = 50000;

  FlocQueue plain(bench_cfg());
  run_workload(plain, kPackets);
  ScopedAllocCount guard;
  run_workload(plain, kPackets);
  const std::uint64_t plain_steady = guard.allocs();

  FlocQueue traced(bench_cfg());
  telemetry::Tracer tracer;
  run_workload(traced, kPackets);
  traced.set_tracer(&tracer);
  guard.reset();
  run_workload(traced, kPackets);
  const std::uint64_t traced_steady = guard.allocs();

  EXPECT_EQ(tracer.begun(), 0u);
  EXPECT_EQ(traced_steady, plain_steady);
}

TEST(ScopedAllocCount, CountsHeapTrafficInThisBinary) {
  // This binary placed FLOC_DEFINE_COUNTING_ALLOCATOR, so new/delete tick
  // the shared counters and the guard sees real deltas. The runtime-sized
  // vector stops the optimizer from eliding the allocation outright
  // (new-expression elision is legal since C++14).
  volatile std::size_t n = 64;
  ScopedAllocCount guard;
  {
    std::vector<std::uint64_t> v(n);
    v[0] = 7;
  }
  EXPECT_GE(guard.allocs(), 1u);
  EXPECT_GE(guard.frees(), 1u);
  EXPECT_GE(guard.bytes(), 64 * sizeof(std::uint64_t));
}

TEST(ScopedAllocCount, GuardItselfAllocatesNothing) {
  // The guard is snapshot/load only — constructing, resetting, and reading
  // one must not itself touch the heap, or it could not sit on a fast path.
  ScopedAllocCount outer;
  {
    ScopedAllocCount inner;
    inner.reset();
    (void)inner.allocs();
    (void)inner.frees();
    (void)inner.bytes();
  }
  EXPECT_EQ(outer.allocs(), 0u);
  EXPECT_EQ(outer.frees(), 0u);
}

TEST(TelemetryFastPath, IdleFlightRecorderAddsNoPacketPathAllocations) {
  // A FlightRecorder is pure control plane: it polls the registry from
  // sample()/capture() and the queue never sees it. With a recorder fully
  // wired (registry, journal, queue state dump registered) but not sampling,
  // the packet path must allocate exactly like the telemetry-attached
  // steady-state baseline.
  constexpr int kPackets = 50000;

  FlocQueue plain(bench_cfg());
  telemetry::Telemetry plain_tel;
  run_workload(plain, kPackets);
  plain.attach_telemetry(&plain_tel);
  ScopedAllocCount guard;
  run_workload(plain, kPackets);
  const std::uint64_t plain_steady = guard.allocs();

  FlocQueue recorded(bench_cfg());
  telemetry::Telemetry tel;
  run_workload(recorded, kPackets);
  recorded.attach_telemetry(&tel);
  telemetry::FlightRecorder rec(&tel.registry);
  rec.set_journal(&tel.journal);
  rec.add_queue("floc", &recorded);
  guard.reset();
  run_workload(recorded, kPackets);
  const std::uint64_t recorded_steady = guard.allocs();

  EXPECT_EQ(rec.ring_rows(), 0u) << "no sample() ran on the packet path";
  EXPECT_EQ(recorded_steady, plain_steady);
}

TEST(TelemetryFastPath, PerPacketCostStaysBounded) {
  FlocQueue q(bench_cfg());
  run_workload(q, 10000);  // warm up

  constexpr int kPackets = 100000;
  const auto start = std::chrono::steady_clock::now();
  run_workload(q, kPackets);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double ns_per_pkt =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      kPackets;
  // Seed-queue enqueue+dequeue measures ~100-300 ns/packet in release
  // builds. The bound is two orders of magnitude above that so debug and
  // sanitizer builds pass; it still catches an accidental string-format or
  // journal append on the disabled path (~microseconds each).
  EXPECT_LT(ns_per_pkt, 50000.0);
}

}  // namespace
}  // namespace floc
