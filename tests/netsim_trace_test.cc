#include "netsim/trace.h"

#include <gtest/gtest.h>

#include "netsim/drop_tail.h"

namespace floc {
namespace {

Packet pkt(FlowId f, int bytes = 1500) {
  Packet p;
  p.flow = f;
  p.size_bytes = bytes;
  p.path = PathId::of({1, 2});
  return p;
}

TEST(Trace, RecordsEnqueueDequeueDrop) {
  TraceRecorder rec;
  TracedQueue q(std::make_unique<DropTailQueue>(2), &rec);
  EXPECT_TRUE(q.enqueue(pkt(1), 0.1));
  EXPECT_TRUE(q.enqueue(pkt(2), 0.2));
  EXPECT_FALSE(q.enqueue(pkt(3), 0.3));  // buffer full -> drop
  q.dequeue(0.4);

  EXPECT_EQ(rec.count(TraceEvent::kEnqueue), 2u);
  EXPECT_EQ(rec.count(TraceEvent::kDrop), 1u);
  EXPECT_EQ(rec.count(TraceEvent::kDequeue), 1u);
  EXPECT_EQ(rec.total(), 4u);
  ASSERT_EQ(rec.records().size(), 4u);
  EXPECT_EQ(rec.records()[2].event, TraceEvent::kDrop);
  EXPECT_EQ(rec.records()[2].flow, 3u);
  EXPECT_EQ(rec.records()[2].reason, DropReason::kQueueFull);
}

TEST(Trace, DecoratorPreservesQueueBehaviour) {
  TraceRecorder rec;
  TracedQueue q(std::make_unique<DropTailQueue>(5), &rec);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.enqueue(pkt(1), 0.0));
  EXPECT_EQ(q.packet_count(), 5u);
  EXPECT_EQ(q.byte_count(), 5 * 1500u);
  int served = 0;
  while (q.dequeue(1.0).has_value()) ++served;
  EXPECT_EQ(served, 5);
  EXPECT_TRUE(q.empty());
  // Decorator-level statistics mirror the inner queue's.
  EXPECT_EQ(q.drops(), 0u);
  EXPECT_EQ(q.admissions(), 5u);
}

TEST(Trace, RingBufferBounded) {
  TraceRecorder rec(/*max_records=*/10);
  TracedQueue q(std::make_unique<DropTailQueue>(1000), &rec);
  for (int i = 0; i < 100; ++i) q.enqueue(pkt(static_cast<FlowId>(i)), i * 0.01);
  EXPECT_EQ(rec.records().size(), 10u);
  EXPECT_TRUE(rec.overflowed());
  EXPECT_EQ(rec.count(TraceEvent::kEnqueue), 100u);  // counts not truncated
  // Oldest evicted: the remaining records are the last ten flows.
  EXPECT_EQ(rec.records().front().flow, 90u);
}

TEST(Trace, FilterSelectsEvents) {
  TraceRecorder rec;
  rec.set_filter([](const TraceRecord& r) { return r.event == TraceEvent::kDrop; });
  TracedQueue q(std::make_unique<DropTailQueue>(1), &rec);
  q.enqueue(pkt(1), 0.0);
  q.enqueue(pkt(2), 0.0);  // dropped
  EXPECT_EQ(rec.records().size(), 1u);
  EXPECT_EQ(rec.records()[0].event, TraceEvent::kDrop);
  EXPECT_EQ(rec.count(TraceEvent::kEnqueue), 1u);  // still counted
}

TEST(Trace, DumpFormat) {
  TraceRecorder rec;
  rec.record(TraceRecord{1.25, TraceEvent::kDrop, 7, 0, PacketType::kData,
                         1500, DropReason::kToken});
  const std::string line = TraceRecorder::format(rec.records()[0]);
  EXPECT_EQ(line, "1.250000 d flow=7 DATA 1500 token");
  EXPECT_NE(rec.dump().find('\n'), std::string::npos);
}

TEST(Trace, ClearResets) {
  TraceRecorder rec;
  rec.record(TraceRecord{});
  rec.clear();
  EXPECT_TRUE(rec.records().empty());
  EXPECT_EQ(rec.total(), 0u);
  EXPECT_FALSE(rec.overflowed());
}

TEST(Trace, DropsByReasonAggregated) {
  TraceRecorder rec(/*max_records=*/2);  // tiny ring: counts must survive
  rec.set_filter([](const TraceRecord& r) {
    return r.event != TraceEvent::kDrop;  // and so must filtered-out drops
  });
  for (int i = 0; i < 3; ++i) {
    rec.record(TraceRecord{0.1 * i, TraceEvent::kDrop, 1, 0,
                           PacketType::kData, 1500, DropReason::kToken});
  }
  rec.record(TraceRecord{0.5, TraceEvent::kDrop, 2, 0, PacketType::kSyn,
                         40, DropReason::kQueueFull});
  rec.record(TraceRecord{0.6, TraceEvent::kEnqueue, 3, 0, PacketType::kData,
                         1500, DropReason::kQueueFull});  // not a drop

  EXPECT_EQ(rec.drops_by_reason(DropReason::kToken), 3u);
  EXPECT_EQ(rec.drops_by_reason(DropReason::kQueueFull), 1u);
  EXPECT_EQ(rec.drops_by_reason(DropReason::kCapability), 0u);
  rec.clear();
  EXPECT_EQ(rec.drops_by_reason(DropReason::kToken), 0u);
}

TEST(Trace, DumpIncludesDropReasonFooter) {
  TraceRecorder rec;
  TracedQueue q(std::make_unique<DropTailQueue>(1), &rec);
  q.enqueue(pkt(1), 0.0);
  q.enqueue(pkt(2), 0.1);  // queue-full drop
  const std::string dump = rec.dump();
  EXPECT_NE(dump.find("# drops by reason:"), std::string::npos) << dump;
  EXPECT_NE(dump.find("queue-full=1"), std::string::npos) << dump;
  // No footer when nothing was dropped.
  TraceRecorder clean;
  TracedQueue q2(std::make_unique<DropTailQueue>(10), &clean);
  q2.enqueue(pkt(1), 0.0);
  EXPECT_EQ(clean.dump().find("# drops by reason:"), std::string::npos);
}

}  // namespace
}  // namespace floc
