#include "baselines/drr_queue.h"

#include <gtest/gtest.h>

#include <map>

namespace floc {
namespace {

Packet pkt(FlowId f, int bytes = 1500) {
  Packet p;
  p.flow = f;
  p.size_bytes = bytes;
  return p;
}

DrrConfig small_cfg() {
  DrrConfig cfg;
  cfg.buffer_packets = 100;
  cfg.quantum_bytes = 1500;
  cfg.max_flow_queue = 30;
  return cfg;
}

TEST(DrrQueue, EmptyDequeue) {
  DrrQueue q(small_cfg());
  EXPECT_FALSE(q.dequeue(0.0).has_value());
  EXPECT_TRUE(q.empty());
}

TEST(DrrQueue, SingleFlowFifo) {
  DrrQueue q(small_cfg());
  for (int i = 0; i < 5; ++i) {
    Packet p = pkt(1);
    p.seq = static_cast<std::uint64_t>(i);
    q.enqueue(std::move(p), 0.0);
  }
  for (int i = 0; i < 5; ++i) {
    auto out = q.dequeue(0.0);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->seq, static_cast<std::uint64_t>(i));
  }
}

TEST(DrrQueue, RoundRobinFairness) {
  DrrQueue q(small_cfg());
  // Flow 1 queues 20 packets, flow 2 queues 20: service alternates.
  for (int i = 0; i < 20; ++i) {
    q.enqueue(pkt(1), 0.0);
    q.enqueue(pkt(2), 0.0);
  }
  std::map<FlowId, int> served;
  for (int i = 0; i < 20; ++i) served[q.dequeue(0.0)->flow]++;
  EXPECT_EQ(served[1], 10);
  EXPECT_EQ(served[2], 10);
}

TEST(DrrQueue, BacklogCannotStarveNewFlow) {
  DrrQueue q(small_cfg());
  for (int i = 0; i < 25; ++i) q.enqueue(pkt(1), 0.0);
  q.enqueue(pkt(2), 0.0);
  // Within the first two dequeues, flow 2 must be served once.
  bool seen2 = false;
  for (int i = 0; i < 2; ++i) {
    if (q.dequeue(0.0)->flow == 2) seen2 = true;
  }
  EXPECT_TRUE(seen2);
}

TEST(DrrQueue, SmallPacketsShareByBytesNotPackets) {
  DrrConfig cfg = small_cfg();
  DrrQueue q(cfg);
  // Flow 1 sends 1500 B packets, flow 2 sends 500 B packets: per quantum
  // (1500 B) flow 2 should get ~3 packets for each of flow 1's.
  for (int i = 0; i < 10; ++i) q.enqueue(pkt(1, 1500), 0.0);
  for (int i = 0; i < 30; ++i) q.enqueue(pkt(2, 500), 0.0);
  std::map<FlowId, int> bytes;
  for (int i = 0; i < 20; ++i) {
    auto p = q.dequeue(0.0);
    ASSERT_TRUE(p.has_value());
    bytes[p->flow] += p->size_bytes;
  }
  EXPECT_NEAR(bytes[1], bytes[2], 1600);
}

TEST(DrrQueue, PerFlowQueueCap) {
  DrrConfig cfg = small_cfg();
  cfg.max_flow_queue = 5;
  DrrQueue q(cfg);
  int admitted = 0;
  for (int i = 0; i < 20; ++i) admitted += q.enqueue(pkt(1), 0.0);
  EXPECT_EQ(admitted, 5);
  EXPECT_EQ(q.drops(), 15u);
}

TEST(DrrQueue, SharedBufferCap) {
  DrrConfig cfg = small_cfg();
  cfg.buffer_packets = 10;
  cfg.max_flow_queue = 10;
  DrrQueue q(cfg);
  int admitted = 0;
  for (FlowId f = 1; f <= 4; ++f) {
    for (int i = 0; i < 5; ++i) admitted += q.enqueue(pkt(f), 0.0);
  }
  EXPECT_EQ(admitted, 10);
  EXPECT_EQ(q.packet_count(), 10u);
}

TEST(DrrQueue, ByteAccounting) {
  DrrQueue q(small_cfg());
  q.enqueue(pkt(1, 700), 0.0);
  q.enqueue(pkt(2, 1500), 0.0);
  EXPECT_EQ(q.byte_count(), 2200u);
  q.dequeue(0.0);
  q.dequeue(0.0);
  EXPECT_EQ(q.byte_count(), 0u);
  EXPECT_EQ(q.active_flows(), 0u);
}

}  // namespace
}  // namespace floc
