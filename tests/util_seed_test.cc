// Seed-derivation regression tests (util/seed.h).
//
// The benches used to derive per-run seeds as `master + k`, which collides
// across adjacent master seeds: run k of master m and run k-1 of master m+1
// simulated the exact same world. derive_seed() mixes master, run index and
// stream salt through SplitMix64 finalizers, so nearby inputs map to
// unrelated outputs.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "util/rng.h"
#include "util/seed.h"

namespace floc {
namespace {

TEST(UtilSeed, Mix64MatchesSplitMix64Reference) {
  // splitmix64 with state 0: first output is finalize(0 + golden_gamma).
  EXPECT_EQ(mix64(0x9E3779B97F4A7C15ULL), 0xE220A8397B1DCDAFULL);
  // Avalanche sanity: single-bit input changes flip ~half the output bits.
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t d = mix64(0) ^ mix64(1ULL << bit);
    int flipped = 0;
    for (int b = 0; b < 64; ++b) flipped += (d >> b) & 1u;
    EXPECT_GE(flipped, 16) << "weak diffusion from input bit " << bit;
    EXPECT_LE(flipped, 48) << "weak diffusion from input bit " << bit;
  }
}

TEST(UtilSeed, DeriveSeedIsPure) {
  static_assert(derive_seed(42, 3, kSeedStreamTreeScenario) ==
                derive_seed(42, 3, kSeedStreamTreeScenario));
  EXPECT_EQ(derive_seed(42, 3), derive_seed(42, 3));
  EXPECT_NE(derive_seed(42, 3), derive_seed(42, 4));
  EXPECT_NE(derive_seed(42, 3), derive_seed(43, 3));
  EXPECT_NE(derive_seed(42, 3, 0), derive_seed(42, 3, 1));
}

// The exact failure mode of the old `a.seed + k` scheme: the (master, index)
// anti-diagonal master + index == const all mapped to one seed.
TEST(UtilSeed, AdjacentMastersDoNotCollide) {
  for (std::uint64_t m = 0; m < 64; ++m) {
    for (std::uint64_t k = 1; k < 16; ++k) {
      ASSERT_EQ(m + k, (m + 1) + (k - 1));  // the old scheme's collision
      EXPECT_NE(derive_seed(m, k), derive_seed(m + 1, k - 1))
          << "master=" << m << " index=" << k;
      EXPECT_NE(derive_seed(m, k, kSeedStreamInetTopology),
                derive_seed(m + 1, k - 1, kSeedStreamInetTopology));
    }
  }
}

TEST(UtilSeed, GridOfMastersIndicesAndStreamsIsCollisionFree) {
  std::set<std::uint64_t> seen;
  std::size_t n = 0;
  for (std::uint64_t m = 0; m < 32; ++m) {
    for (std::uint64_t k = 0; k < 32; ++k) {
      for (std::uint64_t salt :
           {std::uint64_t{0}, kSeedStreamTreeScenario, kSeedStreamInetTopology,
            kSeedStreamInetPlacement, kSeedStreamInetTick,
            kSeedStreamFaultPlan}) {
        seen.insert(derive_seed(m, k, salt));
        ++n;
      }
    }
  }
  EXPECT_EQ(seen.size(), n);
}

// Derived seeds must reseed the simulator Rng into visibly distinct streams,
// not merely distinct 64-bit values.
TEST(UtilSeed, DerivedSeedsYieldDistinctRngStreams) {
  Rng a(derive_seed(7, 0, kSeedStreamTreeScenario));
  Rng b(derive_seed(7, 1, kSeedStreamTreeScenario));
  bool differs = false;
  for (int i = 0; i < 8 && !differs; ++i) differs = a.next_u64() != b.next_u64();
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace floc
