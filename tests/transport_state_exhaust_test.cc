// StateExhaustSource: static flow pool, identity-churn pacing, distinct
// per-identity path keys, closed-loop escalation when starved (including the
// spoofed-sender worst case, whose backscatter dies as unroutable), and the
// TreeScenario kStateExhaust wiring.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "netsim/network.h"
#include "transport/flow_monitor.h"
#include "transport/state_exhaust_source.h"
#include "transport/tcp_sink.h"
#include "topology/tree_scenario.h"

namespace floc {
namespace {

// Forwards to the real sink only while open; closing it starves the sender
// of feedback without touching routing.
struct GateSink : Agent {
  TcpSink* inner = nullptr;
  bool open = true;
  void on_packet(Packet&& p) override {
    if (open) inner->on_packet(std::move(p));
  }
};

struct World {
  Simulator sim;
  Network net{&sim};
  Host* client;
  Host* server;
  FlowMonitor monitor;
  std::unique_ptr<TcpSink> sink;
  GateSink gate;

  World() {
    client = net.add_host("c", 1);
    Router* r = net.add_router("r", 2);
    server = net.add_host("s", 3);
    net.connect(client, r, mbps(100), 0.001);
    net.connect(r, server, mbps(100), 0.001);
    net.build_routes();
    sink = std::make_unique<TcpSink>(&sim, server, &monitor);
    gate.inner = sink.get();
    server->set_default_agent(&gate);
  }
};

StateExhaustConfig base_cfg(const World& w) {
  StateExhaustConfig cfg;
  cfg.first_flow = 100;
  cfg.dst = w.server->addr();
  cfg.base_path = PathId::of({5, 50});
  cfg.rate = mbps(1);
  cfg.identity_pool = 64;
  cfg.churn_per_sec = 50.0;
  cfg.churn_max = 800.0;
  return cfg;
}

TEST(StateExhaustSource, FlowPoolIsStatic) {
  World w;
  StateExhaustConfig cfg = base_cfg(w);
  StateExhaustSource src(&w.sim, w.client, cfg);
  const auto pool = src.flow_pool();
  ASSERT_EQ(pool.size(), 64u);
  EXPECT_EQ(pool.front(), 100u);
  EXPECT_EQ(pool.back(), 163u);
  EXPECT_EQ(src.identities_used(), 0u);
}

TEST(StateExhaustSource, ChurnsAtConfiguredRateWhileServiced) {
  World w;
  StateExhaustConfig cfg = base_cfg(w);
  StateExhaustSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  w.sim.run_until(4.0);
  // ~50 rotations/s for 4s; the exact count depends only on timer phase.
  EXPECT_NEAR(static_cast<double>(src.identities_used()), 200.0, 10.0);
  EXPECT_GT(src.packets_sent(), 0u);
  EXPECT_GT(src.acks(), 0u);
  // Probes are delivered and acked: the closed loop never escalates.
  EXPECT_EQ(src.escalations(), 0);
  EXPECT_DOUBLE_EQ(src.churn_per_sec(), cfg.churn_per_sec);
}

TEST(StateExhaustSource, EveryIdentityForgesADistinctPathKey) {
  World w;
  StateExhaustConfig cfg = base_cfg(w);
  StateExhaustSource src(&w.sim, w.client, cfg);

  // Capture at the server: every rotation plants a SYN, and each identity
  // must present a fresh origin path even after the 64-wide flow pool wraps.
  // (The collector never ACKs, so the closed loop escalates — rotations can
  // then outnumber data sends, which is why the SYNs carry the count.)
  struct Collector : Agent {
    std::set<std::uint64_t> path_keys;
    std::set<FlowId> flows;
    void on_packet(Packet&& p) override {
      path_keys.insert(p.path.key());
      flows.insert(p.flow);
    }
  } col;
  w.server->set_default_agent(&col);

  src.start_at(0.0);
  src.stop_at(4.0);
  w.sim.run_until(4.5);  // let the last SYNs land before counting
  EXPECT_GT(src.identities_used(), 100u) << "pool (64) has wrapped";
  EXPECT_EQ(col.path_keys.size(), src.identities_used());
  EXPECT_LE(col.flows.size(), 64u);
}

TEST(StateExhaustSource, EscalatesChurnWhenStarved) {
  World w;
  StateExhaustConfig cfg = base_cfg(w);
  cfg.check_interval = 0.25;
  StateExhaustSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  w.sim.schedule_at(1.0, [&w] { w.gate.open = false; });
  w.sim.run_until(6.0);
  // Starved from t=1: the delivered fraction collapses and churn doubles
  // every check until the ceiling.
  EXPECT_GT(src.escalations(), 0);
  EXPECT_DOUBLE_EQ(src.churn_per_sec(), cfg.churn_max);
  // Escalation mints identities faster than the base rate would have.
  EXPECT_GT(src.identities_used(), 50u * 6u);
}

TEST(StateExhaustSource, SpoofedSenderGetsNoFeedbackAndMaxesOut) {
  World w;
  StateExhaustConfig cfg = base_cfg(w);
  cfg.spoof_sender = true;
  cfg.check_interval = 0.25;
  StateExhaustSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  // Replies go to forged, unroutable addresses — they must vanish without
  // crashing the sim, and the attacker, seeing nothing, escalates fully.
  w.sim.run_until(5.0);
  EXPECT_EQ(src.acks(), 0u);
  EXPECT_DOUBLE_EQ(src.churn_per_sec(), cfg.churn_max);
}

TEST(StateExhaustSource, StopAtHaltsEverything) {
  World w;
  StateExhaustConfig cfg = base_cfg(w);
  StateExhaustSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  src.stop_at(1.0);
  w.sim.run_until(1.0);
  const std::uint64_t sent = src.packets_sent();
  w.sim.run_until(5.0);
  EXPECT_EQ(src.packets_sent(), sent);
}

// --- TreeScenario wiring -----------------------------------------------------

TEST(TreeScenarioStateExhaust, BuildsRunsAndPressuresTheDefense) {
  TreeScenarioConfig cfg;
  cfg.scale = 0.1;
  cfg.attack = AttackType::kStateExhaust;
  cfg.state_churn_per_sec = 100.0;
  cfg.state_identity_pool = 256;
  cfg.duration = 12.0;
  cfg.measure_start = 4.0;
  cfg.measure_end = 12.0;
  cfg.attack_start = 2.0;
  cfg.floc.origin_budget.capacity = 128;
  cfg.floc.flow_budget.capacity = 32;
  TreeScenario s(cfg);
  s.run();

  ASSERT_FALSE(s.state_exhaust_sources().empty());
  std::uint64_t identities = 0;
  for (const auto& src : s.state_exhaust_sources()) {
    identities += src->identities_used();
  }
  EXPECT_GT(identities, 100u);

  FlocQueue* q = s.floc_queue();
  ASSERT_NE(q, nullptr);
  // The churn planted far more identities than the budget admits, yet the
  // tables stayed bounded (and some eviction pressure was exercised).
  EXPECT_LE(q->active_origin_path_count(), 128);
  EXPECT_LE(q->max_path_flow_count(), 32u);
  EXPECT_GT(q->evicted_origins() + q->evicted_flows(), 0u);
  // Legitimate transfers still complete under identity churn.
  EXPECT_GT(s.class_bandwidth().legit_legit_bps, 0.0);
}

TEST(TreeScenarioStateExhaust, AttackTypeNameRoundTrips) {
  EXPECT_STREQ(to_string(AttackType::kStateExhaust), "state-exhaust");
  AttackType out;
  ASSERT_TRUE(from_string("state-exhaust", &out));
  EXPECT_EQ(out, AttackType::kStateExhaust);
}

}  // namespace
}  // namespace floc
