// Bounded-state overload resilience at the FlocQueue level:
//  * arming huge budgets + overload mode that never trips is bit-identical
//    to the unbounded baseline (default-off contract),
//  * identity churn keeps every table under budget while the state gauges
//    and kStateEvict journal entries track the pressure,
//  * crossing the high-watermark enters overload mode (journaled), coarsens
//    newly learned paths, sheds non-capability data, and exits with
//    hysteresis once the churned state expires,
//  * an evicted-while-guilty path re-latches within one control interval of
//    resuming (the EvictionSketch), and an evicted active blacklist sentence
//    is restored on the sender's first post-eviction strike.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/floc_queue.h"
#include "core/state_budget.h"
#include "telemetry/telemetry.h"

namespace floc {
namespace {

FlocConfig base_cfg() {
  FlocConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 60;
  cfg.control_interval = 0.05;
  cfg.default_rtt = 0.05;
  cfg.enable_aggregation = false;
  return cfg;
}

Packet data(FlowId flow, const PathId& path, HostAddr src) {
  Packet p;
  p.flow = flow;
  p.src = src;
  p.dst = 99;
  p.path = path;
  p.type = PacketType::kData;
  return p;
}

Packet syn(FlowId flow, const PathId& path, HostAddr src) {
  Packet p = data(flow, path, src);
  p.type = PacketType::kSyn;
  p.size_bytes = 40;
  return p;
}

// Floods `bad` at 3x the link while `good` sends conformantly; services at
// link rate. Returns the number of admitted `good` packets.
int drive_flood(FlocQueue& q, double t0, double t1, const PathId& bad,
                const PathId& good, bool flood_on = true,
                HostAddr bad_src = 2, FlowId bad_flow = 100) {
  const double dt = 1.0 / 2500.0;
  double next_service = t0;
  int good_admitted = 0;
  const int steps = static_cast<int>((t1 - t0) / dt);
  for (int i = 0; i < steps; ++i) {
    const double t = t0 + i * dt;
    if (flood_on) q.enqueue(data(bad_flow, bad, bad_src), t);
    if (i % 8 == 0 && q.enqueue(data(1, good, /*src=*/1), t)) ++good_admitted;
    while (next_service <= t) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
  }
  return good_admitted;
}

// --- Default-off / never-tripped contract -----------------------------------

// Arming every budget with huge capacities plus overload mode whose
// watermarks are never crossed must not perturb a single admission verdict,
// drop reason, or journal event relative to the unbounded baseline. This is
// the "observability of the knobs is zero until they act" contract that
// keeps bounded runs byte-identical with historical traces.
TEST(FlocOverload, ArmedButIdleBudgetsAreBitIdenticalToBaseline) {
  FlocConfig armed = base_cfg();
  armed.origin_budget.capacity = 1u << 20;
  armed.flow_budget.capacity = 1u << 20;
  armed.offense_budget.capacity = 1u << 20;
  armed.offender_budget.capacity = 1u << 20;
  armed.enable_overload_mode = true;  // watermarks unreachable at 2^20
  armed.backoff_release = true;
  armed.enable_blacklist = true;
  armed.blacklist_strikes = 3;
  FlocConfig baseline = base_cfg();
  baseline.backoff_release = true;
  baseline.enable_blacklist = true;
  baseline.blacklist_strikes = 3;

  FlocQueue qa(baseline), qb(armed);
  telemetry::Telemetry ta, tb;
  qa.attach_telemetry(&ta);
  qb.attach_telemetry(&tb);

  const PathId good = PathId::of({1, 10});
  const PathId bad = PathId::of({2, 20});
  std::vector<char> verdicts_a, verdicts_b;
  const double dt = 1.0 / 2500.0;
  double next_service = 0.0;
  for (int i = 0; i < 3 * 2500; ++i) {
    const double t = i * dt;
    // Flood + conformant traffic + a modest identity trickle: enough churn
    // to exercise every map, nowhere near 2^20 entries.
    verdicts_a.push_back(qa.enqueue(data(100, bad, 2), t) ? 1 : 0);
    verdicts_b.push_back(qb.enqueue(data(100, bad, 2), t) ? 1 : 0);
    if (i % 8 == 0) {
      verdicts_a.push_back(qa.enqueue(data(1, good, 1), t) ? 1 : 0);
      verdicts_b.push_back(qb.enqueue(data(1, good, 1), t) ? 1 : 0);
    }
    if (i % 25 == 0) {
      const PathId churn = PathId::of({3, 1000u + static_cast<unsigned>(i)});
      const FlowId f = 500 + i;
      verdicts_a.push_back(qa.enqueue(syn(f, churn, 3), t) ? 1 : 0);
      verdicts_b.push_back(qb.enqueue(syn(f, churn, 3), t) ? 1 : 0);
    }
    while (next_service <= t) {
      auto pa = qa.dequeue(next_service);
      auto pb = qb.dequeue(next_service);
      ASSERT_EQ(pa.has_value(), pb.has_value());
      next_service += 1.0 / 833.0;
    }
  }

  EXPECT_EQ(verdicts_a, verdicts_b);
  for (int r = 0; r < static_cast<int>(kDropReasonCount); ++r) {
    const auto reason = static_cast<DropReason>(r);
    EXPECT_EQ(qa.drops_by_reason(reason), qb.drops_by_reason(reason))
        << to_string(reason);
  }
  EXPECT_EQ(ta.journal.dump(), tb.journal.dump());
  EXPECT_FALSE(qb.overloaded());
  EXPECT_EQ(qb.state_evictions(), 0u);
  EXPECT_EQ(tb.journal.count(telemetry::EventKind::kStateEvict), 0u);
  EXPECT_EQ(tb.journal.count(telemetry::EventKind::kOverloadEnter), 0u);
}

// --- Bounded tables under identity churn ------------------------------------

TEST(FlocOverload, IdentityChurnStaysUnderBudgetAndIsJournaled) {
  FlocConfig cfg = base_cfg();
  cfg.origin_budget.capacity = 64;
  cfg.flow_budget.capacity = 16;
  cfg.offense_budget.capacity = 32;
  cfg.offender_budget.capacity = 32;
  cfg.backoff_release = true;
  cfg.enable_blacklist = true;
  FlocQueue q(cfg);
  telemetry::Telemetry tel;
  q.attach_telemetry(&tel);

  const double dt = 1.0 / 2000.0;
  double next_service = 0.0;
  for (int i = 0; i < 8000; ++i) {
    const double t = i * dt;
    // Every packet is a brand-new identity: fresh origin path, fresh flow.
    const PathId path = PathId::of({7, 1000u + static_cast<unsigned>(i)});
    const FlowId f = 1 + (i % 4096);
    if (i % 4 == 0) {
      q.enqueue(syn(f, path, static_cast<HostAddr>(1 + i % 997)), t);
    } else {
      q.enqueue(data(f, path, static_cast<HostAddr>(1 + i % 997)), t);
    }
    ASSERT_LE(q.active_origin_path_count(), 64);
    ASSERT_LE(q.offense_size(), 32u);
    ASSERT_LE(q.offender_size(), 32u);
    ASSERT_LE(q.max_path_flow_count(), 16u);
    while (next_service <= t) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
  }
  EXPECT_GT(q.evicted_origins(), 0u);
  EXPECT_GT(q.state_evictions(), 0u);
  EXPECT_GT(tel.journal.count(telemetry::EventKind::kStateEvict), 0u);

  // The state gauges report live table sizes through the registry.
  EXPECT_EQ(tel.registry.value("floc.origins"),
            static_cast<double>(q.active_origin_path_count()));
  EXPECT_EQ(tel.registry.value("floc.offense"),
            static_cast<double>(q.offense_size()));
  EXPECT_EQ(tel.registry.value("floc.offenders"),
            static_cast<double>(q.offender_size()));
  EXPECT_EQ(tel.registry.value("flow_table.size"),
            static_cast<double>(q.flow_record_count()));
  EXPECT_EQ(tel.registry.value("floc.state.evictions"),
            static_cast<double>(q.state_evictions()));
  EXPECT_GT(tel.registry.value("floc.state.occupancy"), 0.0);

  std::string err;
  EXPECT_TRUE(q.audit(4.0, &err)) << err;
}

// --- Overload mode: enter, coarsen, shed, exit -------------------------------

TEST(FlocOverload, EntersCoarsensShedsAndExitsWithHysteresis) {
  FlocConfig cfg = base_cfg();
  cfg.origin_budget.capacity = 40;
  cfg.enable_overload_mode = true;
  cfg.overload_enter = 0.9;
  cfg.overload_exit = 0.5;
  cfg.overload_path_prefix = 1;
  cfg.flow_timeout = 0.5;  // fast idle-path expiry so the test can see exit
  FlocQueue q(cfg);
  telemetry::Telemetry tel;
  q.attach_telemetry(&tel);

  const PathId good = PathId::of({1, 10});
  const double dt = 1.0 / 2000.0;
  double next_service = 0.0;
  int churned = 0;
  bool saw_coarse = false;
  for (int i = 0; i < 4000; ++i) {
    const double t = i * dt;
    if (i % 4 == 0) q.enqueue(data(1, good, 1), t);
    if (i % 2 == 0) {
      // Identity churn: distinct second hop under origin AS 9 every packet.
      ++churned;
      const PathId path = PathId::of({9, 5000u + static_cast<unsigned>(churned)});
      q.enqueue(syn(200 + churned % 64, path, 3), t);
    }
    if (q.overloaded() && !saw_coarse) {
      // A path learned DURING overload is truncated to its origin-AS prefix:
      // its flow record lands under the coarse {9} origin.
      const std::size_t before = q.path_flow_count(PathId::of({9}));
      q.enqueue(syn(400, PathId::of({9, 77777}), 4), t);
      EXPECT_GT(q.path_flow_count(PathId::of({9})), before);
      // Non-capability data is shed while overloaded.
      const std::uint64_t shed = q.drops_by_reason(DropReason::kOverload);
      q.enqueue(data(401, PathId::of({9, 88888}), 4), t);
      EXPECT_GT(q.drops_by_reason(DropReason::kOverload), shed);
      saw_coarse = true;
    }
    while (next_service <= t) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
  }
  EXPECT_TRUE(saw_coarse) << "overload never entered under churn";
  EXPECT_GE(q.overload_entries(), 1u);
  EXPECT_GT(tel.journal.count(telemetry::EventKind::kOverloadEnter), 0u);

  // Churn stops; idle churned paths expire and occupancy falls through the
  // low-watermark. Keep the good flow running to drive control ticks.
  for (int i = 0; i < 4000; ++i) {
    const double t = 2.0 + i * dt;
    if (i % 4 == 0) q.enqueue(data(1, good, 1), t);
    while (next_service <= t) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
  }
  EXPECT_FALSE(q.overloaded());
  EXPECT_GT(tel.journal.count(telemetry::EventKind::kOverloadExit), 0u);
  // Out of overload, fine-grained paths are learned again.
  q.enqueue(syn(500, PathId::of({9, 99999}), 5), 4.0);
  EXPECT_EQ(q.path_flow_count(PathId::of({9, 99999})), 1u);

  std::string err;
  EXPECT_TRUE(q.audit(4.1, &err)) << err;
}

// --- Eviction-safe re-latch ---------------------------------------------------

// A latched flood path is evicted by identity churn (LRU: the flood went
// quiet, so it is the stalest entry). When the flood resumes, the
// EvictionSketch seeds the relearned aggregate one streak short of the
// latch: detection must return within one full control interval — not the
// full latch hysteresis from zero.
TEST(FlocOverload, EvictedAttackPathRelatchesWithinOneInterval) {
  FlocConfig cfg = base_cfg();
  cfg.origin_budget.capacity = 8;
  cfg.origin_budget.policy = EvictionPolicy::kLru;
  FlocQueue q(cfg);

  const PathId good = PathId::of({1, 10});
  const PathId bad = PathId::of({2, 20});
  drive_flood(q, 0.0, 2.0, bad, good);
  ASSERT_TRUE(q.is_attack_path(bad));

  // Flood quiet; churn distinct identities until the latched origin is the
  // LRU victim. The good path stays fresh throughout.
  double t = 2.0;
  const double dt = 1.0 / 2500.0;
  double next_service = t;
  for (int i = 0; i < 2500 && q.is_attack_path(bad); ++i) {
    q.enqueue(syn(300 + i % 32, PathId::of({4, 100u + static_cast<unsigned>(i)}), 4),
              t);
    if (i % 8 == 0) q.enqueue(data(1, good, 1), t);
    while (next_service <= t) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
    t += dt;
  }
  ASSERT_FALSE(q.is_attack_path(bad)) << "latched origin was never evicted";
  ASSERT_GT(q.evicted_origins(), 0u);

  // Resume the flood; measure time-to-relatch. One partial interval may
  // elapse before the first control boundary, then ONE full measured
  // interval must be enough (streak seeded at attack_latch - 1).
  const double resume = t + 0.2;
  next_service = resume;
  double latched_at = -1.0;
  for (int i = 0; i < 2500; ++i) {
    const double tt = resume + i * dt;
    q.enqueue(data(100, bad, 2), tt);
    if (i % 8 == 0) q.enqueue(data(1, good, 1), tt);
    while (next_service <= tt) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
    if (q.is_attack_path(bad)) {
      latched_at = tt;
      break;
    }
  }
  ASSERT_GT(latched_at, 0.0) << "flood never re-latched";
  EXPECT_LE(latched_at - resume, 2.0 * cfg.control_interval + dt)
      << "re-latch took " << latched_at - resume
      << "s; sketch seeding should need at most one full interval";
}

// Without the sketch (budget disabled => relatch path off), a fresh latch
// needs the full hysteresis — the control experiment for the test above.
TEST(FlocOverload, FreshLatchNeedsFullHysteresis) {
  FlocConfig cfg = base_cfg();
  FlocQueue q(cfg);
  const PathId good = PathId::of({1, 10});
  const PathId bad = PathId::of({2, 20});
  const double dt = 1.0 / 2500.0;
  double next_service = 0.0;
  double latched_at = -1.0;
  for (int i = 0; i < 2500; ++i) {
    const double t = i * dt;
    q.enqueue(data(100, bad, 2), t);
    if (i % 8 == 0) q.enqueue(data(1, good, 1), t);
    while (next_service <= t) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
    if (q.is_attack_path(bad)) {
      latched_at = t;
      break;
    }
  }
  ASSERT_GT(latched_at, 0.0);
  // attack_latch consecutive intervals of condition, minus the partial
  // first boundary: strictly more than (latch - 1) intervals.
  EXPECT_GT(latched_at, (cfg.attack_latch - 1) * cfg.control_interval);
}

// An offender whose ACTIVE sentence is evicted re-enters one strike short
// of the threshold: the first post-eviction strike restores the blacklist.
TEST(FlocOverload, EvictedBlacklistSentenceRestoredOnNextStrike) {
  FlocConfig cfg = base_cfg();
  cfg.enable_blacklist = true;
  cfg.blacklist_strikes = 3;
  cfg.blacklist_duration = 30.0;
  cfg.offender_budget.capacity = 1;  // every new offender evicts the old one
  FlocQueue q(cfg);

  const PathId good = PathId::of({1, 10});
  const PathId pathA = PathId::of({2, 20});
  const PathId pathB = PathId::of({3, 30});

  // Sender 2 floods pathA until sentenced.
  drive_flood(q, 0.0, 2.0, pathA, good, true, /*bad_src=*/2, /*bad_flow=*/100);
  ASSERT_TRUE(q.is_attack_path(pathA));
  ASSERT_TRUE(q.is_blacklisted(2, 2.0));

  // Sender 3 floods pathB; its strike record displaces sender 2's active
  // sentence (capacity 1), which marks the sketch on the way out.
  drive_flood(q, 2.0, 4.0, pathB, good, true, /*bad_src=*/3, /*bad_flow=*/101);
  ASSERT_FALSE(q.is_blacklisted(2, 4.0)) << "sentence record not evicted";
  ASSERT_GT(q.evicted_offenders(), 0u);

  // Sender 2 resumes: its first strike re-inserts at strikes-1 and that same
  // strike crosses the threshold — blacklisted again almost immediately.
  double t = 4.0;
  const double dt = 1.0 / 2500.0;
  double next_service = t;
  double resentenced_at = -1.0;
  for (int i = 0; i < 5000; ++i) {
    q.enqueue(data(100, pathA, 2), t);
    if (i % 8 == 0) q.enqueue(data(1, good, 1), t);
    while (next_service <= t) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
    if (q.is_blacklisted(2, t)) {
      resentenced_at = t;
      break;
    }
    t += dt;
  }
  ASSERT_GT(resentenced_at, 0.0) << "evicted offender never re-blacklisted";
  // Re-detection bound: the path released while quiet, so the resumed flood
  // pays the full latch hysteresis (4 intervals) before strikes resume —
  // then ONE strike restores the sentence. A from-scratch count would need
  // three rate-limited strikes on top of the latch (>= 0.29s here).
  EXPECT_LE(resentenced_at - 4.0, 5.0 * cfg.control_interval)
      << "re-sentencing took " << resentenced_at - 4.0 << "s";
}

}  // namespace
}  // namespace floc
