// Pushback upstream propagation: the congested queue's aggregate limits are
// installed at upstream rate limiters, moving drops one hop earlier while
// status feedback preserves the control loop's view of offered rates.
#include <gtest/gtest.h>

#include "topology/tree_scenario.h"

namespace floc {
namespace {

TreeScenarioConfig pb_cfg(bool upstream) {
  TreeScenarioConfig cfg;
  cfg.scale = 0.1;
  cfg.duration = 40.0;
  cfg.measure_start = 15.0;
  cfg.measure_end = 40.0;
  cfg.scheme = DefenseScheme::kPushback;
  cfg.attack = AttackType::kCbr;
  cfg.attack_rate = mbps(2.0);
  cfg.pushback_upstream = upstream;
  cfg.seed = 21;
  return cfg;
}

TEST(PushbackPropagation, UpstreamMatchesLocalOutcome) {
  TreeScenario local(pb_cfg(false));
  local.run();
  TreeScenario upstream(pb_cfg(true));
  upstream.run();

  const auto cl = local.class_bandwidth();
  const auto cu = upstream.class_bandwidth();
  // Relocating the drops must not change who gets the bandwidth (within
  // tolerance): the status feedback keeps the ACC loop converged.
  EXPECT_NEAR(cu.legit_legit_bps, cl.legit_legit_bps,
              0.25 * local.scaled_target_bw());
  EXPECT_LT(cu.attack_bps, 0.5 * upstream.scaled_target_bw());
}

TEST(PushbackPropagation, DropsMoveUpstream) {
  TreeScenario s(pb_cfg(true));
  s.run();
  // With propagation active, a large share of rate-limit drops happens at
  // the upstream limiters, not at the congested queue.
  const auto* pb = static_cast<PushbackQueue*>(&s.bottleneck_queue());
  EXPECT_TRUE(pb->throttling_active());
  // The congested queue still functions and the link carries traffic.
  EXPECT_GT(s.target_link()->packets_sent(), 1000u);
}

TEST(PushbackPropagation, CleanTrafficUnaffected) {
  TreeScenarioConfig cfg = pb_cfg(true);
  cfg.attack = AttackType::kNone;
  TreeScenario s(cfg);
  s.run();
  const auto* pb = static_cast<PushbackQueue*>(&s.bottleneck_queue());
  EXPECT_FALSE(pb->throttling_active());
  EXPECT_GT(s.class_bandwidth().legit_legit_bps,
            0.5 * s.scaled_target_bw());
}

}  // namespace
}  // namespace floc
