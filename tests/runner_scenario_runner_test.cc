// ScenarioRunner semantics: submission-order merge under adversarial
// completion order, deterministic exception selection, inline serial mode,
// and pool reuse across wait() rounds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runner/scenario_runner.h"

namespace floc::runner {
namespace {

TEST(ScenarioRunner, JobsClampToAtLeastOne) {
  EXPECT_EQ(ScenarioRunner(0).jobs(), 1);
  EXPECT_EQ(ScenarioRunner(-3).jobs(), 1);
  EXPECT_EQ(ScenarioRunner(4).jobs(), 4);
  EXPECT_GE(default_jobs(), 1);
}

TEST(ScenarioRunner, SerialModeRunsInlineInSubmissionOrder) {
  ScenarioRunner pool(1);
  std::vector<int> order;
  const auto caller = std::this_thread::get_id();
  for (int i = 0; i < 8; ++i) {
    const std::size_t idx = pool.submit([&order, i, caller] {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      order.push_back(i);
    });
    EXPECT_EQ(idx, static_cast<std::size_t>(i));
  }
  pool.wait();
  EXPECT_EQ(pool.submitted(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

// Later submissions finish first (earlier indices sleep longer), yet the
// merged results must land at their submission index.
TEST(RunIndexed, MergesInSubmissionOrderNotCompletionOrder) {
  constexpr std::size_t kRuns = 12;
  std::atomic<int> completions{0};
  std::vector<int> completion_rank(kRuns, -1);
  const auto results = run_indexed<std::size_t>(4, kRuns, [&](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kRuns - i));
    completion_rank[i] = completions.fetch_add(1);
    return i;
  });
  ASSERT_EQ(results.size(), kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) EXPECT_EQ(results[i], i);
  // Sanity that the sleep ladder actually produced out-of-order completion
  // (first-submitted must not have completed first given a 4-wide pool).
  EXPECT_NE(completion_rank[0], 0);
}

TEST(RunIndexed, WorksWithMoveOnlyNonDefaultConstructibleResults) {
  struct Result {
    explicit Result(std::string v) : value(std::move(v)) {}
    Result(Result&&) = default;
    Result& operator=(Result&&) = default;
    Result(const Result&) = delete;
    std::string value;
  };
  const auto results = run_indexed<Result>(
      3, 5, [](std::size_t i) { return Result("run" + std::to_string(i)); });
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(results[i].value, "run" + std::to_string(i));
}

// Two runs throw; wait() must surface the lowest submission index no matter
// which worker faulted first.
TEST(ScenarioRunner, WaitRethrowsLowestSubmissionIndexError) {
  for (int jobs : {1, 4}) {
    ScenarioRunner pool(jobs);
    for (int i = 0; i < 8; ++i) {
      pool.submit([i] {
        if (i == 5) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          throw std::runtime_error("boom 5");
        }
        if (i == 2) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          throw std::runtime_error("boom 2");
        }
      });
    }
    try {
      pool.wait();
      FAIL() << "wait() did not rethrow (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 2") << "jobs=" << jobs;
    }
  }
}

TEST(ScenarioRunner, ReusableAfterWaitAndAfterError) {
  ScenarioRunner pool(2);
  std::atomic<int> ran{0};
  pool.submit([&] { ++ran; });
  pool.submit([&] { throw std::runtime_error("first round"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error was consumed; a fresh round runs clean on the same pool.
  for (int i = 0; i < 4; ++i) pool.submit([&] { ++ran; });
  pool.wait();
  EXPECT_EQ(ran.load(), 5);
  EXPECT_EQ(pool.submitted(), 6u);
}

TEST(ScenarioRunner, TimedSecondsIsNonNegativeAndRuns) {
  bool ran = false;
  const double s = timed_seconds([&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_GE(s, 0.0);
}

}  // namespace
}  // namespace floc::runner
