#include "topology/bot_distribution.h"

#include <gtest/gtest.h>

#include "topology/skitter_gen.h"

namespace floc {
namespace {

AsGraph test_graph() {
  SkitterConfig cfg;
  cfg.as_count = 1000;
  cfg.seed = 5;
  return generate_skitter_tree(cfg);
}

TEST(BotDistribution, TotalsMatchConfig) {
  const AsGraph g = test_graph();
  PlacementConfig cfg;
  cfg.legit_sources = 1000;
  cfg.legit_ases = 50;
  cfg.attack_sources = 5000;
  cfg.attack_ases = 30;
  const SourcePlacement p = place_sources(g, cfg);
  EXPECT_EQ(p.total_legit(), 1000);
  EXPECT_EQ(p.total_bots(), 5000);
  EXPECT_LE(static_cast<int>(p.attack_as_ids.size()), 30);
}

TEST(BotDistribution, OverlapApproximatelyConfigured) {
  const AsGraph g = test_graph();
  PlacementConfig cfg;
  cfg.legit_sources = 2000;
  cfg.attack_sources = 5000;
  cfg.legit_overlap = 0.3;
  const SourcePlacement p = place_sources(g, cfg);
  EXPECT_NEAR(static_cast<double>(p.legit_in_attack_ases()) / 2000.0, 0.3,
              0.05);
}

TEST(BotDistribution, ZeroOverlapSeparatesPopulations) {
  const AsGraph g = test_graph();
  PlacementConfig cfg;
  cfg.legit_sources = 1000;
  cfg.attack_sources = 5000;
  cfg.legit_overlap = 0.0;
  const SourcePlacement p = place_sources(g, cfg);
  // Random legit ASes can still coincide with attack ASes; only the
  // *intentional* placement is zero, so overlap should be small.
  EXPECT_LT(static_cast<double>(p.legit_in_attack_ases()) / 1000.0, 0.3);
}

TEST(BotDistribution, BotPlacementIsSkewed) {
  const AsGraph g = test_graph();
  PlacementConfig cfg;
  cfg.attack_sources = 100000;
  cfg.attack_ases = 100;
  cfg.bot_zipf_s = 1.2;
  const SourcePlacement p = place_sources(g, cfg);
  // CBL-like skew: the top 17% of attack ASes hold well over half the bots.
  EXPECT_GT(p.bot_concentration(0.17), 0.5);
}

TEST(BotDistribution, Deterministic) {
  const AsGraph g = test_graph();
  PlacementConfig cfg;
  cfg.seed = 44;
  const SourcePlacement a = place_sources(g, cfg);
  const SourcePlacement b = place_sources(g, cfg);
  EXPECT_EQ(a.bots_per_as, b.bots_per_as);
  EXPECT_EQ(a.legit_per_as, b.legit_per_as);
}

TEST(BotDistribution, AttackAsIdsConsistent) {
  const AsGraph g = test_graph();
  PlacementConfig cfg;
  const SourcePlacement p = place_sources(g, cfg);
  for (int as : p.attack_as_ids) {
    EXPECT_GT(p.bots_per_as[static_cast<std::size_t>(as)], 0);
  }
  int with_bots = 0;
  for (int c : p.bots_per_as) with_bots += (c > 0);
  EXPECT_EQ(with_bots, static_cast<int>(p.attack_as_ids.size()));
}

}  // namespace
}  // namespace floc
