// MetricRegistry and LogHistogram unit + property tests. The histogram's
// contract — every quantile within `relative_error` of the exact order
// statistic — is checked against a sorted reference across distributions
// spanning nine orders of magnitude.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.h"
#include "util/rng.h"

namespace floc::telemetry {
namespace {

TEST(MetricRegistry, CounterGaugeBasics) {
  MetricRegistry reg;
  Counter* c = reg.counter("floc.drops.total");
  c->add();
  c->add(4);
  EXPECT_EQ(c->value(), 5u);
  EXPECT_EQ(reg.counter("floc.drops.total"), c);  // same handle on re-register
  EXPECT_DOUBLE_EQ(reg.value("floc.drops.total"), 5.0);

  Gauge* g = reg.gauge("floc.queue.packets");
  g->set(17.0);
  EXPECT_DOUBLE_EQ(reg.value("floc.queue.packets"), 17.0);

  double polled = 3.0;
  reg.gauge_fn("sim.pending", [&polled] { return polled; });
  EXPECT_DOUBLE_EQ(reg.value("sim.pending"), 3.0);
  polled = 8.0;
  EXPECT_DOUBLE_EQ(reg.value("sim.pending"), 8.0);
  // Re-registering a gauge_fn replaces the callback.
  reg.gauge_fn("sim.pending", [] { return -1.0; });
  EXPECT_DOUBLE_EQ(reg.value("sim.pending"), -1.0);

  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.find("nope"), nullptr);
  EXPECT_DOUBLE_EQ(reg.value("nope"), 0.0);
  // Registration order is stable.
  EXPECT_EQ(reg.metrics()[0]->name, "floc.drops.total");
  EXPECT_EQ(reg.metrics()[2]->name, "sim.pending");
}

TEST(LogHistogram, BasicMoments) {
  LogHistogram h(0.01);
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogram, ZeroAndNegativeLandInZeroBucket) {
  LogHistogram h(0.01);
  h.observe(0.0);
  h.observe(-5.0);
  h.observe(1e-12);  // below min_value
  h.observe(10.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_NEAR(h.quantile(1.0), 10.0, 10.0 * 0.011);
}

// Exact reference: the same order statistic quantile() targets.
double exact_quantile(std::vector<double> sorted, double q) {
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

void check_distribution(const std::vector<double>& values, double eps) {
  LogHistogram h(eps);
  for (double v : values) h.observe(v);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    const double exact = exact_quantile(sorted, q);
    const double est = h.quantile(q);
    if (exact < 1e-9) {
      EXPECT_DOUBLE_EQ(est, 0.0) << "q=" << q;
    } else {
      // eps plus a little fp slack.
      EXPECT_NEAR(est, exact, exact * (eps * 1.01 + 1e-12))
          << "q=" << q << " exact=" << exact << " est=" << est;
    }
  }
}

TEST(LogHistogramProperty, UniformWithinRelativeError) {
  Rng rng(1);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng.uniform(1.0, 100.0));
  check_distribution(v, 0.01);
}

TEST(LogHistogramProperty, LogUniformNineDecades) {
  Rng rng(2);
  std::vector<double> v;
  // Event-processing latencies span ns..s: 1e-9 .. 1e0.
  for (int i = 0; i < 20000; ++i)
    v.push_back(std::pow(10.0, rng.uniform(-9.0, 0.0)));
  check_distribution(v, 0.01);
  check_distribution(v, 0.05);
}

TEST(LogHistogramProperty, ExponentialTail) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i)
    v.push_back(-std::log(1.0 - rng.uniform()) * 0.05);
  check_distribution(v, 0.02);
}

TEST(LogHistogramProperty, ConstantAndMixtureWithZeros) {
  std::vector<double> constant(1000, 42.0);
  check_distribution(constant, 0.01);

  Rng rng(4);
  std::vector<double> mix;
  for (int i = 0; i < 5000; ++i) {
    mix.push_back(rng.chance(0.2) ? 0.0 : rng.uniform(0.5, 2.0));
  }
  check_distribution(mix, 0.01);
}

TEST(HistogramRegistry, RegisteredByNameWithChosenError) {
  MetricRegistry reg;
  LogHistogram* h = reg.histogram("sim.event_ns", 0.02);
  EXPECT_DOUBLE_EQ(h->relative_error(), 0.02);
  h->observe(100.0);
  EXPECT_EQ(reg.histogram("sim.event_ns"), h);
  EXPECT_DOUBLE_EQ(reg.value("sim.event_ns"), 1.0);  // scalar view = count
}

}  // namespace
}  // namespace floc::telemetry
