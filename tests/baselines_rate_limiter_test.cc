#include "baselines/rate_limiter.h"

#include <gtest/gtest.h>

namespace floc {
namespace {

Packet pkt(const PathId& path) {
  Packet p;
  p.flow = 1;
  p.path = path;
  return p;
}

TEST(RateLimiter, PassThroughWithoutLimits) {
  RateLimiterQueue q(10);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.enqueue(pkt(PathId::of({1})), 0.0));
  EXPECT_FALSE(q.enqueue(pkt(PathId::of({1})), 0.0));  // buffer full
}

TEST(RateLimiter, EnforcesInstalledLimit) {
  RateLimiterQueue q(1000);
  // 1 Mbps limit on prefix {5}: ~83 full packets/s.
  q.install_limit(PathId::of({5}), mbps(1), /*expires=*/100.0);
  int admitted = 0;
  for (int i = 0; i < 1000; ++i) {
    const double t = i * 0.001;  // 1000 pkt/s offered for 1 s
    if (q.enqueue(pkt(PathId::of({5, 9})), t)) ++admitted;
    while (!q.empty()) q.dequeue(t);
  }
  EXPECT_NEAR(admitted, 83, 20);
}

TEST(RateLimiter, OnlyMatchingPrefixLimited) {
  RateLimiterQueue q(1000);
  q.install_limit(PathId::of({5}), kbps(1), 100.0);
  int admitted_other = 0;
  for (int i = 0; i < 100; ++i) {
    if (q.enqueue(pkt(PathId::of({6, 9})), i * 0.001)) ++admitted_other;
    while (!q.empty()) q.dequeue(i * 0.001);
  }
  EXPECT_EQ(admitted_other, 100);
}

TEST(RateLimiter, LimitsExpire) {
  RateLimiterQueue q(1000);
  q.install_limit(PathId::of({5}), kbps(1), /*expires=*/1.0);
  // After expiry everything passes again.
  int admitted = 0;
  for (int i = 0; i < 50; ++i) {
    if (q.enqueue(pkt(PathId::of({5, 9})), 2.0 + i * 0.001)) ++admitted;
    while (!q.empty()) q.dequeue(2.0);
  }
  EXPECT_EQ(admitted, 50);
  EXPECT_EQ(q.active_limits(), 0u);
}

TEST(RateLimiter, ReleaseRemovesLimit) {
  RateLimiterQueue q(1000);
  q.install_limit(PathId::of({5}), kbps(1), 100.0);
  EXPECT_EQ(q.active_limits(), 1u);
  q.release_limit(PathId::of({5}));
  EXPECT_EQ(q.active_limits(), 0u);
}

TEST(RateLimiter, ControlPacketsBypassLimits) {
  RateLimiterQueue q(1000);
  q.install_limit(PathId::of({5}), kbps(1), 100.0);
  Packet syn = pkt(PathId::of({5, 9}));
  syn.type = PacketType::kSyn;
  for (int i = 0; i < 20; ++i) {
    Packet c = syn;
    EXPECT_TRUE(q.enqueue(std::move(c), 0.001 * i));
  }
}

}  // namespace
}  // namespace floc
