#include "core/floc_queue.h"

#include <gtest/gtest.h>

#include <cmath>

namespace floc {
namespace {

FlocConfig small_cfg() {
  FlocConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 100;  // Q_min = 20
  cfg.control_interval = 0.1;
  cfg.default_rtt = 0.05;
  cfg.enable_aggregation = false;
  return cfg;
}

Packet data(FlowId flow, const PathId& path, HostAddr src = 1,
            HostAddr dst = 99) {
  Packet p;
  p.flow = flow;
  p.src = src;
  p.dst = dst;
  p.path = path;
  p.type = PacketType::kData;
  return p;
}

Packet syn(FlowId flow, const PathId& path, HostAddr src = 1,
           HostAddr dst = 99) {
  Packet p = data(flow, path, src, dst);
  p.type = PacketType::kSyn;
  p.size_bytes = 40;
  return p;
}

TEST(FlocQueue, FifoOrderPreserved) {
  FlocQueue q(small_cfg());
  for (FlowId f = 1; f <= 5; ++f) {
    EXPECT_TRUE(q.enqueue(data(f, PathId::of({1})), 0.001 * static_cast<double>(f)));
  }
  for (FlowId f = 1; f <= 5; ++f) {
    auto p = q.dequeue(0.01);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->flow, f);
  }
  EXPECT_TRUE(q.empty());
}

TEST(FlocQueue, ByteCountTracksContents) {
  FlocQueue q(small_cfg());
  EXPECT_TRUE(q.enqueue(data(1, PathId::of({1})), 0.0));
  EXPECT_EQ(q.byte_count(), 1500u);
  q.dequeue(0.0);
  EXPECT_EQ(q.byte_count(), 0u);
}

TEST(FlocQueue, UncongestedModeAdmitsEverything) {
  FlocQueue q(small_cfg());
  // Below Q_min (20 packets) nothing is dropped.
  for (int i = 0; i < 19; ++i) {
    EXPECT_TRUE(q.enqueue(data(1, PathId::of({1})), 0.001 * i));
  }
  EXPECT_EQ(q.drops(), 0u);
  EXPECT_EQ(q.mode(), FlocQueue::Mode::kUncongested);
}

TEST(FlocQueue, BufferOverflowDrops) {
  FlocQueue q(small_cfg());
  int admitted = 0;
  for (int i = 0; i < 300; ++i) {
    if (q.enqueue(data(1, PathId::of({1})), 0.0001 * i)) ++admitted;
  }
  EXPECT_LE(q.packet_count(), 100u);
  EXPECT_GT(q.drops(), 0u);
}

TEST(FlocQueue, SynReceivesCapability) {
  FlocQueue q(small_cfg());
  Packet p = syn(1, PathId::of({1, 2}));
  EXPECT_TRUE(q.enqueue(std::move(p), 0.0));
  auto out = q.dequeue(0.0);
  ASSERT_TRUE(out.has_value());
  EXPECT_NE(out->cap0, 0u);
  EXPECT_NE(out->cap1, 0u);
  EXPECT_TRUE(q.issuer().verify(*out));
}

TEST(FlocQueue, ForgedCapabilityDropped) {
  FlocQueue q(small_cfg());
  Packet p = data(1, PathId::of({1, 2}));
  p.cap0 = 0xBAD;
  p.cap1 = 0xBAD;
  EXPECT_FALSE(q.enqueue(std::move(p), 0.0));
  EXPECT_EQ(q.capability_violations(), 1u);
  EXPECT_EQ(q.drops_by_reason(DropReason::kCapability), 1u);
}

TEST(FlocQueue, UncapabilityTrafficStillControlled) {
  // Packets with cap0 == 0 (no capability) are not capability-dropped.
  FlocQueue q(small_cfg());
  EXPECT_TRUE(q.enqueue(data(1, PathId::of({1})), 0.0));
}

TEST(FlocQueue, TracksOriginPathsAndFlows) {
  FlocQueue q(small_cfg());
  q.enqueue(data(1, PathId::of({1, 10})), 0.0);
  q.enqueue(data(2, PathId::of({1, 10})), 0.0);
  q.enqueue(data(3, PathId::of({2, 20})), 0.0);
  EXPECT_EQ(q.active_origin_path_count(), 2);
  EXPECT_EQ(q.path_flow_count(PathId::of({1, 10})), 2u);
  EXPECT_EQ(q.path_flow_count(PathId::of({2, 20})), 1u);
}

TEST(FlocQueue, FlowsExpireAfterTimeout) {
  FlocConfig cfg = small_cfg();
  cfg.flow_timeout = 1.0;
  FlocQueue q(cfg);
  q.enqueue(data(1, PathId::of({1})), 0.0);
  while (!q.empty()) q.dequeue(0.0);
  // Idle past the timeout; a control pass prunes flow and path.
  q.run_control(5.0);
  EXPECT_EQ(q.active_origin_path_count(), 0);
}

TEST(FlocQueue, TokenParamsReflectBandwidthSplit) {
  FlocConfig cfg = small_cfg();
  FlocQueue q(cfg);
  // Two paths, one flow each.
  q.enqueue(data(1, PathId::of({1})), 0.0);
  q.enqueue(data(2, PathId::of({2})), 0.0);
  q.run_control(0.2);
  const auto* p1 = q.params_for(PathId::of({1}));
  const auto* p2 = q.params_for(PathId::of({2}));
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  // Equal split: identical parameters for symmetrical paths.
  EXPECT_DOUBLE_EQ(p1->period, p2->period);
  EXPECT_DOUBLE_EQ(p1->bucket_packets, p2->bucket_packets);
}

// Drive the queue with an over-rate "attack" path and a conformant path and
// verify attack identification + preferential dropping engage.
TEST(FlocQueue, AttackPathIdentifiedAndPenalized) {
  FlocConfig cfg = small_cfg();
  cfg.buffer_packets = 60;
  cfg.control_interval = 0.05;
  FlocQueue q(cfg);
  const PathId good = PathId::of({1, 10});
  const PathId bad = PathId::of({2, 20});

  // 10 Mbps link = ~833 full packets/s. Attack path offers 3x the link; the
  // good path offers a fifth of it. Service drains at link rate.
  const double dt = 1.0 / 2500.0;  // attack packet interarrival
  double next_service = 0.0;
  double t = 0.0;
  std::uint64_t good_sent = 0, good_admitted = 0;
  for (int i = 0; i < 12500; ++i) {  // 5 seconds
    t = i * dt;
    if (q.enqueue(data(100, bad, /*src=*/2), t)) {
    }
    if (i % 15 == 0) {
      ++good_sent;
      if (q.enqueue(data(1, good, /*src=*/1), t)) ++good_admitted;
    }
    while (next_service <= t) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
  }
  q.run_control(t + 0.01);
  EXPECT_TRUE(q.is_attack_path(bad));
  EXPECT_FALSE(q.is_attack_path(good));
  // Conformance of the attack path collapses, good path stays high.
  EXPECT_LT(q.conformance(bad), 0.6);
  EXPECT_GT(q.conformance(good), 0.8);
  // Preferential drops engaged against the attack flow.
  EXPECT_GT(q.drops_by_reason(DropReason::kPreferential), 0u);
  // The good path's flow kept most of its (modest) traffic.
  EXPECT_GT(static_cast<double>(good_admitted) / static_cast<double>(good_sent),
            0.5);
}

TEST(FlocQueue, MtdMeasuredPerFlow) {
  FlocConfig cfg = small_cfg();
  cfg.buffer_packets = 30;
  FlocQueue q(cfg);
  const PathId path = PathId::of({3});
  double t = 0.0;
  for (int i = 0; i < 5000; ++i) {
    t = i * 0.0005;
    q.enqueue(data(7, path), t);
    if (i % 3 == 0) q.dequeue(t);
  }
  // The over-rate flow must show a finite MTD (it has been dropped).
  EXPECT_TRUE(std::isfinite(q.flow_mtd(path, 7, t)));
}

TEST(FlocQueue, AggregationReducesIdentifierCount) {
  FlocConfig cfg = small_cfg();
  cfg.enable_aggregation = true;
  cfg.s_max = 3;
  cfg.e_th = 0.5;
  cfg.control_interval = 0.05;
  cfg.aggregation_every = 1;
  cfg.buffer_packets = 40;
  FlocQueue q(cfg);

  // Four sibling attack paths hammer the queue; one legit path trickles.
  std::vector<PathId> bad;
  for (AsNumber i = 0; i < 4; ++i) bad.push_back(PathId::of({5, 50 + i}));
  const PathId good = PathId::of({1, 10});

  double t = 0.0;
  double next_service = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t = i * 0.0002;  // 5000 pkt/s offered across attack paths
    q.enqueue(data(200 + (i % 4), bad[static_cast<std::size_t>(i % 4)],
                   /*src=*/static_cast<HostAddr>(10 + i % 4)),
              t);
    if (i % 10 == 0) q.enqueue(data(1, good), t);
    while (next_service <= t) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
  }
  q.run_control(t + 0.01);
  // 5 origin paths must have been squeezed into <= s_max identifiers.
  EXPECT_EQ(q.active_origin_path_count(), 5);
  EXPECT_LE(q.active_aggregate_count(), 3);
  EXPECT_TRUE(q.is_aggregated(bad[0]));
  EXPECT_FALSE(q.is_aggregated(good));
}

TEST(FlocQueue, ScalableFilterModeWorks) {
  FlocConfig cfg = small_cfg();
  cfg.use_scalable_filter = true;
  cfg.filter.bits = 12;
  cfg.buffer_packets = 40;
  FlocQueue q(cfg);
  const PathId path = PathId::of({4});
  double t = 0.0;
  for (int i = 0; i < 10000; ++i) {
    t = i * 0.0003;
    q.enqueue(data(9, path), t);
    if (i % 3 == 0) q.dequeue(t);
  }
  q.run_control(t + 0.01);
  // Over-rate flow visible through the filter-backed MTD.
  EXPECT_LT(q.flow_mtd(path, 9, t), 1e9);
}

TEST(FlocQueue, ControlPassIsIdempotentWhenIdle) {
  FlocQueue q(small_cfg());
  q.enqueue(data(1, PathId::of({1})), 0.0);
  q.run_control(0.5);
  const auto* p1 = q.params_for(PathId::of({1}));
  ASSERT_NE(p1, nullptr);
  const double period = p1->period;
  q.run_control(0.6);
  const auto* p2 = q.params_for(PathId::of({1}));
  ASSERT_NE(p2, nullptr);
  EXPECT_DOUBLE_EQ(p2->period, period);
}

}  // namespace
}  // namespace floc
