// StateBudgetConfig / enforce_budget / EvictionSketch: capacity semantics,
// per-policy victim selection as a pure function of table contents
// (iteration-order independence), enum round-trips, and sketch
// mark/test/rotate behavior.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/state_budget.h"

namespace floc {
namespace {

struct Entry {
  double score = 0.0;
  std::uint64_t recency = 0;
};

using Map = std::unordered_map<std::uint64_t, Entry>;

std::vector<std::uint64_t> evict(Map& map, const StateBudgetConfig& budget,
                                 std::uint64_t salt = 0) {
  std::vector<std::uint64_t> victims;
  enforce_budget(
      map, budget, salt,
      [](std::uint64_t, const Entry& e) {
        return EvictRank{e.score, e.recency};
      },
      [&](std::uint64_t key, const Entry&) { victims.push_back(key); });
  return victims;
}

TEST(StateBudget, DisabledBudgetNeverEvicts) {
  Map map;
  for (std::uint64_t k = 0; k < 1000; ++k) map[k] = Entry{0.0, k};
  StateBudgetConfig off;  // capacity 0 = unbounded
  EXPECT_FALSE(off.enabled());
  EXPECT_TRUE(evict(map, off).empty());
  EXPECT_EQ(map.size(), 1000u);
}

TEST(StateBudget, EnforcesOnlyAtCapacityAndShrinksToTarget) {
  StateBudgetConfig b;
  b.capacity = 100;
  b.evict_to = 0.9;
  EXPECT_EQ(b.shrink_target(), 90u);

  Map map;
  for (std::uint64_t k = 0; k < 99; ++k) map[k] = Entry{0.0, k};
  EXPECT_TRUE(evict(map, b).empty()) << "below capacity: no eviction";

  map[99] = Entry{0.0, 99};  // now AT capacity
  const auto victims = evict(map, b);
  EXPECT_EQ(victims.size(), 10u);
  EXPECT_EQ(map.size(), 90u);
  // Post-insert invariant: caller inserts one entry after enforcement, so
  // the table never exceeds capacity at any observable point.
  EXPECT_LE(map.size() + 1, b.capacity);
}

TEST(StateBudget, ShrinkTargetAlwaysBelowCapacity) {
  StateBudgetConfig b;
  b.capacity = 10;
  b.evict_to = 1.0;  // degenerate: target must still leave room to insert
  EXPECT_LT(b.shrink_target(), b.capacity);
  b.capacity = 1;
  b.evict_to = 0.9;
  EXPECT_EQ(b.shrink_target(), 0u);
}

TEST(StateBudget, LruEvictsOldestTouches) {
  StateBudgetConfig b;
  b.capacity = 10;
  b.evict_to = 0.5;
  Map map;
  for (std::uint64_t k = 0; k < 10; ++k) map[k] = Entry{0.0, 100 + k};
  auto victims = evict(map, b);
  ASSERT_EQ(victims.size(), 5u);
  std::sort(victims.begin(), victims.end());
  EXPECT_EQ(victims, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  // Victim callback order is deterministic: oldest recency first.
}

TEST(StateBudget, LowestOffenseFirstPinsHighScores) {
  StateBudgetConfig b;
  b.capacity = 10;
  b.evict_to = 0.5;
  b.policy = EvictionPolicy::kLowestOffenseFirst;
  Map map;
  // Keys 0-4 are heavy offenders (high score), 5-9 innocents — recency says
  // the opposite (offenders are stale), but score is the primary key.
  for (std::uint64_t k = 0; k < 5; ++k) map[k] = Entry{10.0, k};
  for (std::uint64_t k = 5; k < 10; ++k) map[k] = Entry{0.0, 100 + k};
  auto victims = evict(map, b);
  ASSERT_EQ(victims.size(), 5u);
  std::sort(victims.begin(), victims.end());
  EXPECT_EQ(victims, (std::vector<std::uint64_t>{5, 6, 7, 8, 9}))
      << "innocents evict first; offenders stay pinned";
}

TEST(StateBudget, VictimSetIndependentOfInsertionOrder) {
  StateBudgetConfig b;
  b.capacity = 64;
  b.evict_to = 0.75;
  for (const EvictionPolicy policy :
       {EvictionPolicy::kLru, EvictionPolicy::kLowestOffenseFirst,
        EvictionPolicy::kProbabilisticDecay}) {
    b.policy = policy;
    Map forward, backward;
    for (std::uint64_t k = 0; k < 64; ++k) {
      forward[k] = Entry{static_cast<double>(k % 7), 1000 + k};
    }
    for (std::uint64_t k = 64; k-- > 0;) {
      backward[k] = Entry{static_cast<double>(k % 7), 1000 + k};
    }
    auto v1 = evict(forward, b, /*salt=*/42);
    auto v2 = evict(backward, b, /*salt=*/42);
    // Same contents => same victim set AND same callback order, regardless
    // of hash-table history. This is what makes bounded runs byte-identical
    // at --jobs 1 vs N.
    EXPECT_EQ(v1, v2) << "policy " << to_string(policy);
  }
}

TEST(StateBudget, DecaySaltVariesVictims) {
  StateBudgetConfig b;
  b.capacity = 64;
  b.evict_to = 0.9;
  b.policy = EvictionPolicy::kProbabilisticDecay;
  Map m1, m2;
  for (std::uint64_t k = 0; k < 64; ++k) {
    m1[k] = Entry{0.0, k};
    m2[k] = Entry{0.0, k};
  }
  const auto v1 = evict(m1, b, /*salt=*/1);
  const auto v2 = evict(m2, b, /*salt=*/2);
  EXPECT_FALSE(v1.empty());
  // Different salts re-target different victims (overwhelmingly likely with
  // 64 keys and 6 victims); repeated pressure cannot stalk fixed survivors.
  EXPECT_NE(v1, v2);
}

TEST(StateBudget, PolicyNamesRoundTrip) {
  for (std::size_t i = 0; i < kEvictionPolicyCount; ++i) {
    const EvictionPolicy p = static_cast<EvictionPolicy>(i);
    const std::string name = to_string(p);
    EXPECT_NE(name, "?");
    EvictionPolicy back;
    ASSERT_TRUE(from_string(name, &back)) << name;
    EXPECT_EQ(back, p);
  }
  EvictionPolicy out;
  EXPECT_FALSE(from_string("bogus", &out));
}

TEST(EvictionSketch, MarkTestRotateLifecycle) {
  EvictionSketch sk(/*seed=*/7);
  EXPECT_FALSE(sk.test(123));
  sk.mark(123);
  EXPECT_TRUE(sk.test(123));
  EXPECT_FALSE(sk.test(124));
  EXPECT_EQ(sk.marks(), 1u);

  // A mark survives ONE rotation (it moved to the stale bank)...
  sk.rotate();
  EXPECT_TRUE(sk.test(123));
  // ...but not two (the stale bank is retired).
  sk.rotate();
  EXPECT_FALSE(sk.test(123));

  sk.mark(55);
  sk.clear();
  EXPECT_FALSE(sk.test(55));
}

TEST(EvictionSketch, LowFalsePositiveRateAtRealisticLoad) {
  EvictionSketch sk(/*seed=*/3);
  for (std::uint64_t k = 0; k < 500; ++k) sk.mark(k * 2654435761ULL);
  int fp = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; ++i) {
    if (sk.test(0xABCDEF00ULL + static_cast<std::uint64_t>(i))) ++fp;
  }
  // 500 marks into 2x65536 bits, 2 probes: expected FP rate well under 1%.
  EXPECT_LT(fp, probes / 100) << fp << " false positives";
}

}  // namespace
}  // namespace floc
