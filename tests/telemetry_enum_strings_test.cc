// Exhaustive to_string/from_string round-trips for every observability enum:
// DropReason, TraceEvent, journal EventKind, tracing SpanKind, and the
// scenario AttackType. Each enum
// carries a k*Count constant; iterating [0, count) catches a newly added
// enumerator whose to_string case was forgotten (it would print "?" and fail
// the round-trip), and unknown names must be rejected without touching *out.
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "netsim/queue_disc.h"
#include "netsim/trace.h"
#include "telemetry/event_journal.h"
#include "telemetry/tracing.h"
#include "topology/tree_scenario.h"

namespace floc {
namespace {

// Shared exhaustive round-trip: every ordinal prints a unique, non-"?" name
// and parses back to itself; garbage names are rejected and leave the
// output enum untouched.
template <typename E, typename ToString, typename FromString>
void check_round_trip(std::size_t count, ToString&& to_str,
                      FromString&& from_str) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < count; ++i) {
    const E e = static_cast<E>(i);
    const std::string name = to_str(e);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?") << "missing to_string case for ordinal " << i;
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate name '" << name << "' at ordinal " << i;

    E parsed = static_cast<E>(count - 1 - i);  // some other value
    ASSERT_TRUE(from_str(name, &parsed)) << name;
    EXPECT_EQ(parsed, e) << name;
  }
  for (const char* bogus : {"", "?", "nonsense", "Drop", "QUEUE"}) {
    E sentinel = static_cast<E>(0);
    EXPECT_FALSE(from_str(bogus, &sentinel)) << bogus;
    EXPECT_EQ(sentinel, static_cast<E>(0)) << "*out modified for " << bogus;
  }
}

TEST(EnumStrings, DropReasonRoundTrips) {
  check_round_trip<DropReason>(
      kDropReasonCount, [](DropReason r) { return to_string(r); },
      [](const std::string& s, DropReason* out) { return from_string(s, out); });
}

TEST(EnumStrings, TraceEventRoundTrips) {
  check_round_trip<TraceEvent>(
      kTraceEventCount, [](TraceEvent e) { return to_string(e); },
      [](const std::string& s, TraceEvent* out) { return from_string(s, out); });
}

TEST(EnumStrings, EventKindRoundTrips) {
  check_round_trip<telemetry::EventKind>(
      telemetry::kEventKindCount,
      [](telemetry::EventKind k) { return telemetry::to_string(k); },
      [](const std::string& s, telemetry::EventKind* out) {
        return telemetry::from_string(s, out);
      });
}

TEST(EnumStrings, AttackTypeRoundTrips) {
  check_round_trip<AttackType>(
      kAttackTypeCount, [](AttackType a) { return to_string(a); },
      [](const std::string& s, AttackType* out) { return from_string(s, out); });
}

TEST(EnumStrings, SpanKindRoundTrips) {
  check_round_trip<telemetry::SpanKind>(
      telemetry::kSpanKindCount,
      [](telemetry::SpanKind k) { return telemetry::to_string(k); },
      [](const std::string& s, telemetry::SpanKind* out) {
        return telemetry::from_string(s, out);
      });
}

// The specific names are load-bearing: exporters and the CSV schema use
// them, so renames must be deliberate.
TEST(EnumStrings, LoadBearingNamesStayStable) {
  EXPECT_STREQ(to_string(DropReason::kQueueFull), "queue-full");
  EXPECT_STREQ(telemetry::to_string(telemetry::SpanKind::kLinkTx), "link.tx");
  EXPECT_STREQ(telemetry::to_string(telemetry::SpanKind::kQueue), "queue");
}

}  // namespace
}  // namespace floc
