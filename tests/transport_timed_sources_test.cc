#include "transport/rolling_source.h"

#include <gtest/gtest.h>

#include "netsim/drop_tail.h"
#include "transport/flow_monitor.h"
#include "transport/tcp_sink.h"

namespace floc {
namespace {

struct World {
  Simulator sim;
  Network net{&sim};
  Host* client;
  Host* server;
  FlowMonitor monitor;
  std::unique_ptr<TcpSink> sink;

  World() {
    client = net.add_host("c", 1);
    Router* r = net.add_router("r", 2);
    server = net.add_host("s", 3);
    net.connect(client, r, mbps(100), 0.001);
    net.connect(r, server, mbps(100), 0.001);
    net.build_routes();
    sink = std::make_unique<TcpSink>(&sim, server, &monitor);
  }
};

TEST(OnOffSource, GateFollowsDutyCycle) {
  World w;
  OnOffConfig cfg;
  cfg.cbr.flow = 1;
  cfg.cbr.dst = w.server->addr();
  cfg.cbr.rate = mbps(1);
  cfg.on_time = 2.0;
  cfg.off_time = 6.0;
  OnOffSource src(&w.sim, w.client, cfg);
  EXPECT_TRUE(src.gate_open(0.5));
  EXPECT_TRUE(src.gate_open(1.9));
  EXPECT_FALSE(src.gate_open(2.5));
  EXPECT_FALSE(src.gate_open(7.9));
  EXPECT_TRUE(src.gate_open(8.5));  // next period
}

TEST(OnOffSource, MeanRateMatchesDuty) {
  World w;
  OnOffConfig cfg;
  cfg.cbr.flow = 1;
  cfg.cbr.dst = w.server->addr();
  cfg.cbr.rate = mbps(3);
  cfg.on_time = 1.0;
  cfg.off_time = 2.0;  // duty 1/3 -> mean 1 Mbps
  OnOffSource src(&w.sim, w.client, cfg);
  w.monitor.register_flow(1, {});
  src.start_at(0.0);
  w.sim.schedule_at(0.5, [&] { w.monitor.snapshot("a", w.sim.now()); });
  w.sim.schedule_at(24.5, [&] { w.monitor.snapshot("b", w.sim.now()); });
  w.sim.run_until(24.5);
  EXPECT_NEAR(w.monitor.flow_bps(1, "a", "b"), mbps(1), 0.2 * mbps(1));
}

TEST(RollingSource, OnlyOneGroupActiveAtATime) {
  World w;
  std::vector<std::unique_ptr<RollingSource>> sources;
  for (int g = 0; g < 3; ++g) {
    RollingConfig cfg;
    cfg.cbr.flow = static_cast<FlowId>(g + 1);
    cfg.cbr.dst = w.server->addr();
    cfg.cbr.rate = mbps(1);
    cfg.group = g;
    cfg.group_count = 3;
    cfg.slot = 2.0;
    sources.push_back(std::make_unique<RollingSource>(&w.sim, w.client, cfg));
  }
  for (double t : {0.5, 2.5, 4.5, 6.5}) {
    int open = 0;
    for (const auto& s : sources) open += s->gate_open(t);
    EXPECT_EQ(open, 1) << "t=" << t;
  }
  // Rotation order: group 0 at t in [0,2), group 1 at [2,4), ...
  EXPECT_TRUE(sources[0]->gate_open(0.5));
  EXPECT_TRUE(sources[1]->gate_open(2.5));
  EXPECT_TRUE(sources[2]->gate_open(4.5));
  EXPECT_TRUE(sources[0]->gate_open(6.5));
}

TEST(RollingSource, DeliversOnlyDuringOwnSlot) {
  World w;
  RollingConfig cfg;
  cfg.cbr.flow = 1;
  cfg.cbr.dst = w.server->addr();
  cfg.cbr.rate = mbps(2);
  cfg.group = 1;
  cfg.group_count = 2;
  cfg.slot = 2.0;
  RollingSource src(&w.sim, w.client, cfg);
  w.monitor.register_flow(1, {});
  src.start_at(0.0);
  // Group 1's slots are [2,4), [6,8)...
  w.sim.schedule_at(0.2, [&] { w.monitor.snapshot("a", w.sim.now()); });
  w.sim.schedule_at(1.8, [&] { w.monitor.snapshot("b", w.sim.now()); });
  w.sim.schedule_at(2.4, [&] { w.monitor.snapshot("c", w.sim.now()); });
  w.sim.schedule_at(3.8, [&] { w.monitor.snapshot("d", w.sim.now()); });
  w.sim.run_until(4.0);
  EXPECT_NEAR(w.monitor.flow_bps(1, "a", "b"), 0.0, 1e4);
  EXPECT_GT(w.monitor.flow_bps(1, "c", "d"), mbps(1.5));
}

}  // namespace
}  // namespace floc
