// End-to-end integration tests: the Section VI scenario at reduced scale,
// checking the paper's qualitative claims hold in the packet-level simulator.
#include <gtest/gtest.h>

#include "faultsim/sim_monitor.h"
#include "topology/tree_scenario.h"

namespace floc {
namespace {

TreeScenarioConfig base_cfg() {
  TreeScenarioConfig cfg;
  cfg.tree_degree = 3;
  cfg.tree_height = 2;   // 9 leaves to keep runtime low
  cfg.legit_per_leaf = 4;
  cfg.attack_leaf_count = 2;
  cfg.attack_per_leaf = 8;
  cfg.target_link = mbps(20);
  cfg.internal_link = mbps(60);
  cfg.attack_rate = mbps(1.0);
  cfg.duration = 25.0;
  cfg.attack_start = 3.0;
  cfg.measure_start = 8.0;
  cfg.measure_end = 25.0;
  cfg.seed = 17;
  return cfg;
}

double total(const TreeScenario::ClassBandwidth& cb) {
  return cb.legit_legit_bps + cb.legit_attack_bps + cb.attack_bps;
}

TEST(Integration, FlocConfinesCbrAttack) {
  TreeScenarioConfig cfg = base_cfg();
  cfg.scheme = DefenseScheme::kFloc;
  cfg.attack = AttackType::kCbr;
  TreeScenario s(cfg);
  // The bottleneck queue's invariants (byte accounting, token bounds,
  // packet conservation) must hold throughout the attack.
  SimMonitor mon;
  mon.watch_queue("floc-bottleneck", s.floc_queue());
  mon.attach(&s.sim(), 0.5, cfg.duration);
  s.run();
  const auto cb = s.class_bandwidth();
  EXPECT_GT(mon.checks_run(), 0u);
  EXPECT_TRUE(mon.violations().empty());

  // 7 of 9 paths are legitimate: with per-path guarantees legit-path flows
  // should hold the majority of the link.
  EXPECT_GT(cb.legit_legit_bps, 0.5 * s.scaled_target_bw());
  // The attack (16 bots at 1 Mbps = 16 Mbps offered through 2 of 9 path
  // shares) must be confined to roughly its paths' allocation.
  EXPECT_LT(cb.attack_bps, 0.35 * s.scaled_target_bw());
  // Link well utilized.
  EXPECT_GT(total(cb), 0.6 * s.scaled_target_bw());
}

TEST(Integration, DropTailCollapsesUnderSameAttack) {
  TreeScenarioConfig cfg = base_cfg();
  cfg.scheme = DefenseScheme::kDropTail;
  cfg.attack = AttackType::kCbr;
  TreeScenario s(cfg);
  s.run();
  const auto cb = s.class_bandwidth();
  // Unresponsive CBR dominates a plain FIFO: attack takes most bandwidth.
  EXPECT_GT(cb.attack_bps, cb.legit_legit_bps);
}

TEST(Integration, FlocBeatsDropTailForLegitTraffic) {
  TreeScenarioConfig floc_cfg = base_cfg();
  floc_cfg.scheme = DefenseScheme::kFloc;
  TreeScenario floc_s(floc_cfg);
  floc_s.run();

  TreeScenarioConfig dt_cfg = base_cfg();
  dt_cfg.scheme = DefenseScheme::kDropTail;
  TreeScenario dt_s(dt_cfg);
  dt_s.run();

  EXPECT_GT(floc_s.class_bandwidth().legit_legit_bps,
            1.5 * dt_s.class_bandwidth().legit_legit_bps);
}

TEST(Integration, FlocProtectsLegitFlowsInsideAttackPaths) {
  TreeScenarioConfig cfg = base_cfg();
  cfg.scheme = DefenseScheme::kFloc;
  cfg.attack = AttackType::kCbr;
  TreeScenario s(cfg);
  s.run();
  // Differential guarantee (2): per-flow, legit flows in attack paths beat
  // attack flows of the same paths.
  const auto legit_cdf = s.monitor().bandwidth_cdf(
      FlowMonitor::is_legit_on_attack_path, "start", "end");
  const auto attack_cdf =
      s.monitor().bandwidth_cdf(FlowMonitor::is_attack, "start", "end");
  ASSERT_GT(legit_cdf.count(), 0u);
  ASSERT_GT(attack_cdf.count(), 0u);
  EXPECT_GT(legit_cdf.mean(), attack_cdf.mean());
}

TEST(Integration, PerPathBandwidthRoughlyEqualUnderFloc) {
  TreeScenarioConfig cfg = base_cfg();
  cfg.scheme = DefenseScheme::kFloc;
  cfg.attack = AttackType::kTcpPopulation;  // Fig. 6(a) situation
  TreeScenario s(cfg);
  s.run();
  const auto per_path = s.per_path_bps();
  ASSERT_EQ(per_path.size(), 9u);
  double mn = 1e18, mx = 0.0;
  for (const auto& [name, bps] : per_path) {
    mn = std::min(mn, bps);
    mx = std::max(mx, bps);
  }
  // High-population TCP attack: per-path bandwidth nearly identical
  // regardless of population (Fig. 6(a) claim) — allow 3x spread at this
  // small scale.
  EXPECT_LT(mx / std::max(mn, 1.0), 3.0);
}

TEST(Integration, ShrewAttackHandledAtLeastAsWellAsCbr) {
  TreeScenarioConfig cbr = base_cfg();
  cbr.scheme = DefenseScheme::kFloc;
  cbr.attack = AttackType::kCbr;
  TreeScenario s_cbr(cbr);
  s_cbr.run();

  TreeScenarioConfig shrew = base_cfg();
  shrew.scheme = DefenseScheme::kFloc;
  shrew.attack = AttackType::kShrew;
  shrew.shrew_period = 0.05;
  shrew.shrew_duty = 0.25;
  TreeScenario s_shrew(shrew);
  s_shrew.run();

  // Fig. 6(c): legit bandwidth under Shrew within ~25% of the CBR case.
  EXPECT_GT(s_shrew.class_bandwidth().legit_legit_bps,
            0.75 * s_cbr.class_bandwidth().legit_legit_bps);
}

TEST(Integration, CapabilitiesIssuedOnRealTraffic) {
  TreeScenarioConfig cfg = base_cfg();
  cfg.scheme = DefenseScheme::kFloc;
  cfg.duration = 10.0;
  cfg.measure_start = 2.0;
  cfg.measure_end = 10.0;
  TreeScenario s(cfg);
  SimMonitor mon;
  mon.watch_queue("floc-bottleneck", s.floc_queue());
  mon.attach(&s.sim(), 0.5, cfg.duration);
  s.run();
  // No forged capabilities exist in a clean run.
  EXPECT_EQ(s.floc_queue()->capability_violations(), 0u);
  // Paths and flows were observed by the queue.
  EXPECT_GT(s.floc_queue()->active_origin_path_count(), 0);
  EXPECT_TRUE(mon.violations().empty());
}

}  // namespace
}  // namespace floc
