// Normal (non-attack) mode behaviour: FLoc must act like a good AQM — high
// utilization, per-flow fairness comparable to RED, no harm done (Section
// III-B, Fig. 7(c)'s "no attack" reference).
#include <gtest/gtest.h>

#include "topology/tree_scenario.h"

namespace floc {
namespace {

TreeScenarioConfig calm_cfg(DefenseScheme scheme) {
  TreeScenarioConfig cfg;
  cfg.tree_degree = 3;
  cfg.tree_height = 2;
  cfg.legit_per_leaf = 4;
  cfg.attack_leaf_count = 0;
  cfg.attack = AttackType::kNone;
  cfg.target_link = mbps(20);
  cfg.internal_link = mbps(60);
  cfg.duration = 30.0;
  cfg.measure_start = 10.0;
  cfg.measure_end = 30.0;
  cfg.scheme = scheme;
  cfg.seed = 51;
  return cfg;
}

TEST(NormalMode, FlocUtilizationHigh) {
  TreeScenario s(calm_cfg(DefenseScheme::kFloc));
  s.run();
  EXPECT_GT(s.class_bandwidth().legit_legit_bps, 0.8 * s.scaled_target_bw());
}

TEST(NormalMode, FlocFairnessComparableToRed) {
  TreeScenario floc_s(calm_cfg(DefenseScheme::kFloc));
  floc_s.run();
  TreeScenario red_s(calm_cfg(DefenseScheme::kRed));
  red_s.run();

  const double j_floc = jain_fairness(floc_s.legit_path_flow_cdf().samples());
  const double j_red = jain_fairness(red_s.legit_path_flow_cdf().samples());
  EXPECT_GT(j_floc, 0.8);
  EXPECT_GT(j_floc, j_red - 0.15);  // within RED's ballpark
}

TEST(NormalMode, NoPathFlaggedAttack) {
  TreeScenario s(calm_cfg(DefenseScheme::kFloc));
  s.run();
  for (int leaf = 0; leaf < s.leaf_count(); ++leaf) {
    EXPECT_FALSE(s.floc_queue()->is_attack_path(s.leaf_path(leaf)))
        << "leaf " << leaf;
  }
  EXPECT_EQ(s.floc_queue()->drops_by_reason(DropReason::kPreferential), 0u);
}

TEST(NormalMode, ConformanceStaysHigh) {
  TreeScenario s(calm_cfg(DefenseScheme::kFloc));
  s.run();
  for (int leaf = 0; leaf < s.leaf_count(); ++leaf) {
    EXPECT_GT(s.floc_queue()->conformance(s.leaf_path(leaf)), 0.8)
        << "leaf " << leaf;
  }
}

TEST(NormalMode, DeterministicAcrossRuns) {
  TreeScenario a(calm_cfg(DefenseScheme::kFloc));
  a.run();
  TreeScenario b(calm_cfg(DefenseScheme::kFloc));
  b.run();
  EXPECT_DOUBLE_EQ(a.class_bandwidth().legit_legit_bps,
                   b.class_bandwidth().legit_legit_bps);
}

TEST(NormalMode, SeedChangesOutcomeSlightly) {
  TreeScenarioConfig c1 = calm_cfg(DefenseScheme::kFloc);
  TreeScenarioConfig c2 = calm_cfg(DefenseScheme::kFloc);
  c2.seed = 52;
  TreeScenario a(c1), b(c2);
  a.run();
  b.run();
  // Different random start times -> different packet interleavings, but
  // the aggregate outcome stays in the same band.
  EXPECT_NE(a.class_bandwidth().legit_legit_bps,
            b.class_bandwidth().legit_legit_bps);
  EXPECT_NEAR(a.class_bandwidth().legit_legit_bps,
              b.class_bandwidth().legit_legit_bps,
              0.2 * a.scaled_target_bw());
}

}  // namespace
}  // namespace floc
