#include "transport/flow_monitor.h"

#include <gtest/gtest.h>

namespace floc {
namespace {

FlowLabel legit(const std::string& path, bool attack_path = false) {
  return FlowLabel{FlowClass::kLegitimate, attack_path, 0, path};
}
FlowLabel attacker(const std::string& path) {
  return FlowLabel{FlowClass::kAttack, true, 0, path};
}

TEST(FlowMonitor, FlowBpsBetweenSnapshots) {
  FlowMonitor m;
  m.register_flow(1, legit("p0"));
  m.on_deliver(1, 0.5, 1000.0);
  m.snapshot("a", 1.0);
  m.on_deliver(1, 1.5, 3000.0);
  m.snapshot("b", 3.0);
  EXPECT_DOUBLE_EQ(m.flow_bps(1, "a", "b"), 3000.0 * 8.0 / 2.0);
}

TEST(FlowMonitor, IgnoresUnregisteredFlows) {
  FlowMonitor m;
  m.register_flow(1, legit("p0"));
  m.on_deliver(99, 0.5, 1000.0);
  m.snapshot("a", 0.0);
  m.snapshot("b", 1.0);
  EXPECT_DOUBLE_EQ(m.flow_bps(1, "a", "b"), 0.0);
}

TEST(FlowMonitor, ClassBpsByPredicate) {
  FlowMonitor m;
  m.register_flow(1, legit("p0"));
  m.register_flow(2, legit("p1", /*attack_path=*/true));
  m.register_flow(3, attacker("p1"));
  m.snapshot("a", 0.0);
  m.on_deliver(1, 0.5, 1000.0);
  m.on_deliver(2, 0.5, 2000.0);
  m.on_deliver(3, 0.5, 4000.0);
  m.snapshot("b", 1.0);
  EXPECT_DOUBLE_EQ(m.class_bps(FlowMonitor::is_legit_on_legit_path, "a", "b"),
                   8000.0);
  EXPECT_DOUBLE_EQ(m.class_bps(FlowMonitor::is_legit_on_attack_path, "a", "b"),
                   16000.0);
  EXPECT_DOUBLE_EQ(m.class_bps(FlowMonitor::is_attack, "a", "b"), 32000.0);
}

TEST(FlowMonitor, BandwidthCdf) {
  FlowMonitor m;
  for (FlowId f = 1; f <= 4; ++f) m.register_flow(f, legit("p"));
  m.snapshot("a", 0.0);
  for (FlowId f = 1; f <= 4; ++f) m.on_deliver(f, 0.5, 1000.0 * static_cast<double>(f));
  m.snapshot("b", 1.0);
  Cdf c = m.bandwidth_cdf(FlowMonitor::is_legit_on_legit_path, "a", "b");
  EXPECT_EQ(c.count(), 4u);
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 8000.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 32000.0);
}

TEST(FlowMonitor, PathBps) {
  FlowMonitor m;
  m.register_flow(1, legit("p0"));
  m.register_flow(2, legit("p0"));
  m.register_flow(3, legit("p1"));
  m.snapshot("a", 0.0);
  m.on_deliver(1, 0.1, 500.0);
  m.on_deliver(2, 0.2, 500.0);
  m.on_deliver(3, 0.3, 1000.0);
  m.snapshot("b", 1.0);
  const auto by_path = m.path_bps("a", "b");
  EXPECT_DOUBLE_EQ(by_path.at("p0"), 8000.0);
  EXPECT_DOUBLE_EQ(by_path.at("p1"), 8000.0);
}

TEST(FlowMonitor, PathSeries) {
  FlowMonitor m;
  m.enable_path_series(1.0);
  m.register_flow(1, legit("p0"));
  m.on_deliver(1, 0.5, 1000.0);
  m.on_deliver(1, 2.5, 2000.0);
  const auto series = m.path_series_bps("p0");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], 8000.0);
  EXPECT_DOUBLE_EQ(series[1], 0.0);
  EXPECT_DOUBLE_EQ(series[2], 16000.0);
}

TEST(FlowMonitor, SnapshotMissingThrows) {
  FlowMonitor m;
  m.register_flow(1, legit("p0"));
  m.snapshot("a", 0.0);
  EXPECT_THROW(m.flow_bps(1, "a", "nope"), std::out_of_range);
}

TEST(FlowMonitor, FlowsRegisteredAfterSnapshotCountFromZero) {
  FlowMonitor m;
  m.register_flow(1, legit("p0"));
  m.snapshot("a", 0.0);
  m.register_flow(2, legit("p0"));
  m.on_deliver(2, 0.5, 1000.0);
  m.snapshot("b", 1.0);
  EXPECT_DOUBLE_EQ(m.flow_bps(2, "a", "b"), 8000.0);
}

}  // namespace
}  // namespace floc
