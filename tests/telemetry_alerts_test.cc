// AlertEngine: rate-ratio storm detection with min-rate floor and
// fire/clear hysteresis, threshold rules, JSON export, and the Prometheus
// text rendering (name sanitization, counter/gauge/histogram shapes).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/alerts.h"
#include "telemetry/metrics.h"

namespace floc::telemetry {
namespace {

AlertRule storm_rule() {
  AlertRule r;
  r.name = "pkt_storm";
  r.metric = "link.packets";
  r.kind = AlertKind::kRateRatio;
  r.short_window = 10.0;
  r.long_window = 60.0;
  r.ratio = 3.0;
  r.clear_ratio = 1.5;
  r.min_rate = 10.0;
  return r;
}

TEST(Alerts, RateRatioFiresOnBurstAndClearsWithHysteresis) {
  MetricRegistry reg;
  Counter* pkts = reg.counter("link.packets");
  AlertEngine eng(&reg);
  eng.add_rule(storm_rule());

  // 120s of steady 20 pkt/s baseline: never fires.
  double t = 0.0;
  for (; t < 120.0; t += 1.0) {
    pkts->add(20);
    eng.sample(t);
    ASSERT_FALSE(eng.firing("pkt_storm")) << "t=" << t;
  }
  EXPECT_EQ(eng.fired("pkt_storm"), 0u);

  // Burst to 200 pkt/s: short-window rate races ahead of the long average.
  for (; t < 140.0; t += 1.0) {
    pkts->add(200);
    eng.sample(t);
  }
  EXPECT_TRUE(eng.firing("pkt_storm"));
  EXPECT_EQ(eng.fired("pkt_storm"), 1u);

  // Rate hovers at 2x the (now elevated) long average: above clear_ratio,
  // so the alert stays latched — no flapping.
  const std::uint64_t edges_at_peak = eng.fired_total();
  for (; t < 150.0; t += 1.0) {
    pkts->add(80);
    eng.sample(t);
  }
  EXPECT_EQ(eng.fired_total(), edges_at_peak) << "alert flapped";

  // Back to baseline: short rate falls under clear_ratio x long — clears.
  for (; t < 220.0; t += 1.0) {
    pkts->add(20);
    eng.sample(t);
  }
  EXPECT_FALSE(eng.firing("pkt_storm"));
  EXPECT_EQ(eng.fired("pkt_storm"), 1u);  // one full fire/clear cycle
  // History holds both edges, in order.
  ASSERT_GE(eng.history().size(), 2u);
  EXPECT_TRUE(eng.history().front().firing);
  EXPECT_FALSE(eng.history().back().firing);
}

TEST(Alerts, MinRateFloorSuppressesIdleNoise) {
  MetricRegistry reg;
  Counter* pkts = reg.counter("link.packets");
  AlertEngine eng(&reg);
  eng.add_rule(storm_rule());  // min_rate = 10/s

  // From a dead-idle baseline, a trickle of 5 pkt/s is an infinite ratio —
  // but under the floor, so it must not page.
  double t = 0.0;
  for (; t < 90.0; t += 1.0) {
    eng.sample(t);  // zero traffic
  }
  for (; t < 120.0; t += 1.0) {
    pkts->add(5);
    eng.sample(t);
    ASSERT_FALSE(eng.firing("pkt_storm")) << "t=" << t;
  }

  // A genuine burst from idle exceeds the floor and fires even though the
  // long average is ~0 (the floor alone gates burst-from-idle).
  for (; t < 135.0; t += 1.0) {
    pkts->add(100);
    eng.sample(t);
  }
  EXPECT_TRUE(eng.firing("pkt_storm"));
}

TEST(Alerts, ThresholdRuleWithHysteresis) {
  MetricRegistry reg;
  double occupancy = 0.0;
  reg.gauge_fn("floc.state.occupancy", [&] { return occupancy; });

  AlertRule r;
  r.name = "state_pressure";
  r.metric = "floc.state.occupancy";
  r.kind = AlertKind::kThreshold;
  r.threshold = 0.9;
  r.clear_threshold = 0.7;
  AlertEngine eng(&reg);
  eng.add_rule(r);

  occupancy = 0.5;
  eng.sample(1.0);
  EXPECT_FALSE(eng.firing("state_pressure"));
  occupancy = 0.95;
  eng.sample(2.0);
  EXPECT_TRUE(eng.firing("state_pressure"));
  occupancy = 0.8;  // between clear and fire: stays latched
  eng.sample(3.0);
  EXPECT_TRUE(eng.firing("state_pressure"));
  occupancy = 0.6;
  eng.sample(4.0);
  EXPECT_FALSE(eng.firing("state_pressure"));
  EXPECT_EQ(eng.fired("state_pressure"), 1u);
}

TEST(Alerts, UnknownMetricReadsAsZero) {
  MetricRegistry reg;
  AlertEngine eng(&reg);
  AlertRule r = storm_rule();
  r.metric = "never.registered";
  eng.add_rule(r);
  for (double t = 0.0; t < 200.0; t += 1.0) eng.sample(t);
  EXPECT_FALSE(eng.firing("pkt_storm"));
  EXPECT_EQ(eng.fired_total(), 0u);
}

TEST(Alerts, JsonExportAndSave) {
  MetricRegistry reg;
  Counter* pkts = reg.counter("link.packets");
  AlertEngine eng(&reg);
  eng.add_rule(storm_rule());
  double t = 0.0;
  for (; t < 90.0; t += 1.0) {
    pkts->add(20);
    eng.sample(t);
  }
  for (; t < 110.0; t += 1.0) {
    pkts->add(300);
    eng.sample(t);
  }
  ASSERT_TRUE(eng.firing("pkt_storm"));

  const std::string json = eng.to_json();
  EXPECT_NE(json.find("\"rules\""), std::string::npos);
  EXPECT_NE(json.find("\"pkt_storm\""), std::string::npos);
  EXPECT_NE(json.find("\"rate-ratio\""), std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("\"firing\": true"), std::string::npos);

  const std::string path = "alerts_test_out.alerts.json";
  std::string err;
  ASSERT_TRUE(eng.save(path, &err)) << err;
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), json);
  std::remove(path.c_str());
}

TEST(Alerts, PrometheusRenderingSanitizesAndTypesMetrics) {
  MetricRegistry reg;
  reg.counter("floc.drops.total")->add(7);
  reg.gauge_fn("floc.state.occupancy", [] { return 0.25; });
  auto* h = reg.histogram("queue.delay");
  h->observe(1.0);
  h->observe(3.0);

  const std::string text = AlertEngine::render_prometheus(reg);
  // Dots become underscores; counters get _total (without doubling one
  // that is already there), histograms expose _count/_sum and quantiles.
  EXPECT_NE(text.find("floc_drops_total 7"), std::string::npos) << text;
  EXPECT_EQ(text.find("floc_drops_total_total"), std::string::npos) << text;
  EXPECT_NE(text.find("floc_state_occupancy 0.25"), std::string::npos);
  EXPECT_NE(text.find("queue_delay_count 2"), std::string::npos);
  EXPECT_NE(text.find("queue_delay_sum"), std::string::npos);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);

  AlertEngine eng(&reg);
  AlertRule r;
  r.name = "storm";
  r.metric = "floc.drops.total";
  eng.add_rule(r);
  const std::string with_alerts = eng.render_prometheus_with_alerts();
  EXPECT_NE(with_alerts.find("floc_alert_firing{alert=\"storm\"} 0"),
            std::string::npos)
      << with_alerts;
}

// Pins the Prometheus text-exposition grammar: every `# TYPE` is preceded
// by a `# HELP` for the same series, every exported name is legal
// ([a-zA-Z_:][a-zA-Z0-9_:]*), and help text references the original dotted
// registry name so a scrape can be traced back to its source metric.
TEST(Alerts, PrometheusExpositionGrammar) {
  MetricRegistry reg;
  reg.counter("floc.caps.issued")->add(3);
  reg.gauge("floc.window.size")->set(12.0);
  reg.histogram("floc.verify.ns")->observe(100.0);

  const std::string text = AlertEngine::render_prometheus(reg);

  std::istringstream in(text);
  std::string line;
  std::string last_help_name;
  while (std::getline(in, line)) {
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string rest = line.substr(7);
      const size_t sp = rest.find(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      last_help_name = rest.substr(0, sp);
      // Help text must mention the dotted source name.
      EXPECT_NE(rest.find("floc."), std::string::npos) << line;
    } else if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const size_t sp = rest.find(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      const std::string name = rest.substr(0, sp);
      EXPECT_EQ(name, last_help_name) << "TYPE without preceding HELP: "
                                      << line;
      const std::string type = rest.substr(sp + 1);
      EXPECT_TRUE(type == "counter" || type == "gauge") << line;
    } else if (!line.empty()) {
      // Sample line: legal metric name, optional {labels}, space, value.
      const size_t sp = line.find(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      const size_t brace = line.find('{');
      const std::string name = line.substr(0, brace < sp ? brace : sp);
      ASSERT_FALSE(name.empty());
      auto legal_first = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == ':';
      };
      EXPECT_TRUE(legal_first(name[0])) << line;
      for (char c : name) {
        const bool ok = legal_first(c) || (c >= '0' && c <= '9');
        EXPECT_TRUE(ok) << "illegal char in exported name: " << line;
      }
      EXPECT_EQ(name.find('.'), std::string::npos) << line;
    }
  }
  // All three kinds actually rendered.
  EXPECT_NE(text.find("# HELP floc_caps_issued_total"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# HELP floc_window_size"), std::string::npos);
  EXPECT_NE(text.find("# HELP floc_verify_ns_p99"), std::string::npos);
}

// Label values in the exposition format admit any UTF-8 as long as
// backslash, double-quote and newline are escaped (\\, \", \n). Alert rule
// names flow into floc_alert_firing{alert="..."} verbatim, so hostile names
// must come out escaped and every sample must stay on one line.
TEST(Alerts, PrometheusLabelValuesEscapeHostileRuleNames) {
  MetricRegistry reg;
  reg.counter("floc.drops")->add(1);
  AlertEngine eng(&reg);
  const char* hostile[] = {
      "quote\"inject",         // " would close the label value
      "back\\slash",           // \ would start a bogus escape
      "line\nbreak",           // a raw newline would split the sample line
      "tab\tpass",             // tabs are legal raw inside label values
  };
  for (const char* name : hostile) {
    AlertRule r;
    r.name = name;
    r.metric = "floc.drops";
    r.kind = AlertKind::kThreshold;
    r.threshold = 1000.0;
    eng.add_rule(r);
  }

  const std::string text = eng.render_prometheus_with_alerts();
  EXPECT_NE(text.find("floc_alert_firing{alert=\"quote\\\"inject\"} 0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("floc_alert_firing{alert=\"back\\\\slash\"} 0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("floc_alert_firing{alert=\"line\\nbreak\"} 0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("floc_alert_firing{alert=\"tab\tpass\"} 0"),
            std::string::npos)
      << text;

  // No label value may smuggle a raw newline, an unescaped quote, or a lone
  // backslash: every non-comment line must still parse as name{...} value.
  std::istringstream in(text);
  std::string line;
  std::size_t alert_lines = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t brace = line.find('{');
    if (brace == std::string::npos) continue;
    ++alert_lines;
    // The line still ends with `"} <value>` — nothing broke out of the
    // quoted label value.
    EXPECT_NE(line.find("\"} "), std::string::npos) << line;
    // Any quote inside the value is preceded by a backslash.
    const size_t open = line.find('"', brace);
    const size_t close = line.rfind('"');
    ASSERT_NE(open, std::string::npos) << line;
    for (size_t i = open + 1; i < close; ++i) {
      if (line[i] == '"') {
        EXPECT_EQ(line[i - 1], '\\') << line;
      }
    }
  }
  EXPECT_EQ(alert_lines, 4u) << "a hostile name split or dropped a sample";
}

TEST(Alerts, KindNamesExist) {
  EXPECT_STREQ(to_string(AlertKind::kRateRatio), "rate-ratio");
  EXPECT_STREQ(to_string(AlertKind::kThreshold), "threshold");
}

}  // namespace
}  // namespace floc::telemetry
