#include "transport/tcp_source.h"

#include <gtest/gtest.h>

#include "netsim/drop_tail.h"
#include "transport/flow_monitor.h"
#include "transport/tcp_sink.h"

namespace floc {
namespace {

struct World {
  Simulator sim;
  Network net{&sim};
  Host* client;
  Host* server;
  FlowMonitor monitor;
  std::unique_ptr<TcpSink> sink;
  Network::Duplex bottleneck;

  explicit World(BitsPerSec bw = mbps(10), std::size_t qlen = 50) {
    client = net.add_host("c", 1);
    Router* r = net.add_router("r", 2);
    server = net.add_host("s", 3);
    net.connect(client, r, bw * 10, 0.001);
    bottleneck = net.connect(r, server, bw, 0.005,
                             std::make_unique<DropTailQueue>(qlen));
    net.build_routes();
    sink = std::make_unique<TcpSink>(&sim, server, &monitor);
  }
};

TEST(TcpSource, CompletesSmallTransfer) {
  World w;
  TcpSourceConfig cfg;
  cfg.flow = 1;
  cfg.dst = w.server->addr();
  cfg.total_packets = 100;
  TcpSource src(&w.sim, w.client, cfg);
  w.monitor.register_flow(1, {});
  src.start_at(0.0);
  w.sim.run_until(30.0);
  EXPECT_TRUE(src.done());
  EXPECT_GT(src.finish_time(), 0.0);
  EXPECT_EQ(w.sink->delivered_packets(), 100u);
}

TEST(TcpSource, CompletionHandlerFires) {
  World w;
  TcpSourceConfig cfg;
  cfg.flow = 1;
  cfg.dst = w.server->addr();
  cfg.total_packets = 10;
  TcpSource src(&w.sim, w.client, cfg);
  double done_at = -1.0;
  src.set_completion_handler([&](TimeSec t) { done_at = t; });
  src.start_at(0.5);
  w.sim.run_until(30.0);
  EXPECT_GT(done_at, 0.5);
}

TEST(TcpSource, SingleFlowFillsLink) {
  World w(mbps(10));
  TcpSourceConfig cfg;
  cfg.flow = 1;
  cfg.dst = w.server->addr();
  cfg.total_packets = 0;  // persistent
  TcpSource src(&w.sim, w.client, cfg);
  w.monitor.register_flow(1, {});
  src.start_at(0.0);
  w.sim.schedule_at(5.0, [&] { w.monitor.snapshot("a", w.sim.now()); });
  w.sim.schedule_at(15.0, [&] { w.monitor.snapshot("b", w.sim.now()); });
  w.sim.run_until(15.0);
  const double bps = w.monitor.flow_bps(1, "a", "b");
  // A single Reno flow should reach at least 70% of a 10 Mbps bottleneck.
  EXPECT_GT(bps, 0.7 * mbps(10));
  EXPECT_LT(bps, 1.05 * mbps(10));
}

TEST(TcpSource, TwoFlowsShareFairly) {
  World w(mbps(10));
  TcpSourceConfig c1, c2;
  c1.flow = 1;
  c2.flow = 2;
  c1.dst = c2.dst = w.server->addr();
  c1.total_packets = c2.total_packets = 0;
  TcpSource s1(&w.sim, w.client, c1);
  TcpSource s2(&w.sim, w.client, c2);  // both flows share the client host
  w.monitor.register_flow(1, {});
  w.monitor.register_flow(2, {});
  s1.start_at(0.0);
  s2.start_at(0.1);
  w.sim.schedule_at(10.0, [&] { w.monitor.snapshot("a", w.sim.now()); });
  w.sim.schedule_at(30.0, [&] { w.monitor.snapshot("b", w.sim.now()); });
  w.sim.run_until(30.0);
  const double b1 = w.monitor.flow_bps(1, "a", "b");
  const double b2 = w.monitor.flow_bps(2, "a", "b");
  EXPECT_GT(b1 + b2, 0.7 * mbps(10));
  // Jain fairness for 2 flows should be high.
  const double jain = (b1 + b2) * (b1 + b2) / (2.0 * (b1 * b1 + b2 * b2));
  EXPECT_GT(jain, 0.8);
}

TEST(TcpSource, RecoversFromDropsViaRetransmission) {
  World w(mbps(2), /*qlen=*/8);  // tight queue forces drops
  TcpSourceConfig cfg;
  cfg.flow = 1;
  cfg.dst = w.server->addr();
  cfg.total_packets = 500;
  TcpSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  w.sim.run_until(60.0);
  EXPECT_TRUE(src.done());
  EXPECT_GT(src.retransmits() + src.timeouts(), 0u);
  EXPECT_EQ(w.sink->delivered_packets(), 500u);
}

TEST(TcpSource, RttEstimateReasonable) {
  World w;
  TcpSourceConfig cfg;
  cfg.flow = 1;
  cfg.dst = w.server->addr();
  cfg.total_packets = 200;
  TcpSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  w.sim.run_until(30.0);
  // Physical RTT is 2*(1+5) ms = 12 ms plus queueing.
  EXPECT_GT(src.srtt(), 0.010);
  EXPECT_LT(src.srtt(), 0.2);
}

TEST(TcpSource, CwndBoundedByMax) {
  World w(mbps(100));
  TcpSourceConfig cfg;
  cfg.flow = 1;
  cfg.dst = w.server->addr();
  cfg.total_packets = 0;
  cfg.max_cwnd = 16.0;
  TcpSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  w.sim.run_until(10.0);
  EXPECT_LE(src.cwnd(), 16.0 + 1e-9);
}

TEST(TcpSink, DuplicatesDetected) {
  World w;
  TcpSourceConfig cfg;
  cfg.flow = 1;
  cfg.dst = w.server->addr();
  cfg.total_packets = 50;
  TcpSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  w.sim.run_until(30.0);
  // With no drops there should be no duplicates.
  EXPECT_EQ(w.sink->duplicate_packets(), 0u);
}

}  // namespace
}  // namespace floc
