// Reboot survival: a FLoc router that loses all soft state mid-flood must
// come back, relearn, and re-confine the attack within a bounded number of
// control intervals — degrading per the configured RecoveryPolicy meanwhile.
#include <gtest/gtest.h>

#include <string>

#include "core/floc_queue.h"

namespace floc {
namespace {

FlocConfig churn_cfg() {
  FlocConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 60;
  cfg.control_interval = 0.05;
  cfg.default_rtt = 0.05;
  cfg.enable_aggregation = false;
  return cfg;
}

Packet data(FlowId flow, const PathId& path, HostAddr src) {
  Packet p;
  p.flow = flow;
  p.src = src;
  p.dst = 99;
  p.path = path;
  p.type = PacketType::kData;
  return p;
}

// Drives an over-rate attack path plus a conformant path through [t0, t1)
// at the same rates as core_floc_queue_test's latching recipe: attack at 3x
// the link, good at a fifth of it, service at link rate.
void drive_flood(FlocQueue& q, double t0, double t1, const PathId& bad,
                 const PathId& good) {
  const double dt = 1.0 / 2500.0;
  double next_service = t0;
  const int steps = static_cast<int>((t1 - t0) / dt);
  for (int i = 0; i < steps; ++i) {
    const double t = t0 + i * dt;
    q.enqueue(data(100, bad, /*src=*/2), t);
    if (i % 15 == 0) q.enqueue(data(1, good, /*src=*/1), t);
    while (next_service <= t) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
  }
}

TEST(FlocReboot, WipesSoftStateAndEntersRecovery) {
  FlocConfig cfg = churn_cfg();
  FlocQueue q(cfg);
  const PathId good = PathId::of({1, 10});
  const PathId bad = PathId::of({2, 20});
  drive_flood(q, 0.0, 5.0, bad, good);
  q.run_control(5.0);
  ASSERT_TRUE(q.is_attack_path(bad));
  ASSERT_GT(q.active_origin_path_count(), 0);
  // Leave a few packets buffered so the wipe has something to flush.
  for (int i = 0; i < 3; ++i) q.enqueue(data(1, good, 1), 5.0);
  ASSERT_FALSE(q.empty());

  q.reboot(5.0);

  EXPECT_EQ(q.reboots(), 1u);
  EXPECT_EQ(q.active_origin_path_count(), 0);
  EXPECT_EQ(q.active_aggregate_count(), 0);
  EXPECT_FALSE(q.is_attack_path(bad));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.byte_count(), 0u);
  EXPECT_TRUE(q.in_recovery(5.0));
  const double recovery_end =
      5.0 + cfg.recovery_intervals * cfg.control_interval;
  EXPECT_TRUE(q.in_recovery(recovery_end - 1e-9));
  EXPECT_FALSE(q.in_recovery(recovery_end));
  // Packet conservation survives the wipe (audit folds flushed packets in).
  std::string why;
  EXPECT_TRUE(q.audit(5.0, &why)) << why;
}

TEST(FlocReboot, PreserveQueueKeepsBufferedPackets) {
  FlocQueue q(churn_cfg());
  const PathId path = PathId::of({1});
  for (int i = 0; i < 5; ++i) q.enqueue(data(1, path, 1), 0.001 * i);
  const std::size_t pkts = q.packet_count();
  const std::size_t bytes = q.byte_count();
  ASSERT_GT(pkts, 0u);

  q.reboot(1.0, /*preserve_queue=*/true);

  EXPECT_EQ(q.packet_count(), pkts);
  EXPECT_EQ(q.byte_count(), bytes);
  EXPECT_EQ(q.active_origin_path_count(), 0);
  std::string why;
  EXPECT_TRUE(q.audit(1.0, &why)) << why;
  // The surviving packets still drain normally.
  for (std::size_t i = 0; i < pkts; ++i) EXPECT_TRUE(q.dequeue(1.1).has_value());
  EXPECT_TRUE(q.empty());
}

TEST(FlocReboot, AttackRelatchesWithinBoundedIntervals) {
  FlocConfig cfg = churn_cfg();
  FlocQueue q(cfg);
  const PathId good = PathId::of({1, 10});
  const PathId bad = PathId::of({2, 20});
  drive_flood(q, 0.0, 5.0, bad, good);
  q.run_control(5.0);
  ASSERT_TRUE(q.is_attack_path(bad));

  q.reboot(5.0);
  ASSERT_FALSE(q.is_attack_path(bad));

  // Same flood continues; probe the flag once per control interval.
  double relatch_time = -1.0;
  for (int k = 0; k < 60 && relatch_time < 0.0; ++k) {
    const double t0 = 5.0 + k * cfg.control_interval;
    drive_flood(q, t0, t0 + cfg.control_interval, bad, good);
    if (q.is_attack_path(bad)) relatch_time = t0 + cfg.control_interval;
  }
  ASSERT_GT(relatch_time, 0.0) << "attack path never re-latched";
  const int intervals =
      static_cast<int>((relatch_time - 5.0) / cfg.control_interval + 0.5);
  // Relearning takes the recovery grace plus the latch hysteresis, plus a
  // little slack for parameter re-estimation from cold state.
  EXPECT_LE(intervals, cfg.recovery_intervals + cfg.attack_latch + 6);
  // The conformant path is not collateral damage of the relearn.
  EXPECT_FALSE(q.is_attack_path(good));
  std::string why;
  EXPECT_TRUE(q.audit(relatch_time, &why)) << why;
}

// During the recovery window, fail-closed enforces strict token admission
// (kToken drops) while fail-open degrades to the neutral random-threshold
// policy only — no token-reason drops at all.
TEST(FlocReboot, RecoveryPolicyPicksFailureDirection) {
  for (RecoveryPolicy policy :
       {RecoveryPolicy::kFailOpen, RecoveryPolicy::kFailClosed}) {
    FlocConfig cfg = churn_cfg();
    cfg.recovery_policy = policy;
    cfg.recovery_intervals = 40;  // 2 s: the whole drive stays in recovery
    FlocQueue q(cfg);
    const PathId path = PathId::of({7});
    // Warm up briefly under-rate (no drops), then reboot into the long
    // recovery window.
    for (int i = 0; i < 100; ++i) {
      q.enqueue(data(5, path, 5), i * 0.002);
      q.dequeue(i * 0.002);
    }
    q.reboot(0.2);
    ASSERT_TRUE(q.in_recovery(0.2));

    // Over-rate single path (3x link) with slow service: the queue climbs
    // past Q_min and token shortfalls occur while still in recovery.
    const double dt = 1.0 / 2500.0;
    double next_service = 0.2;
    for (int i = 0; i < 2500; ++i) {  // one second
      const double t = 0.2 + i * dt;
      q.enqueue(data(5, path, 5), t);
      while (next_service <= t) {
        q.dequeue(next_service);
        next_service += 1.0 / 833.0;
      }
    }
    ASSERT_TRUE(q.in_recovery(1.2));
    if (policy == RecoveryPolicy::kFailClosed) {
      EXPECT_GT(q.drops_by_reason(DropReason::kToken), 0u)
          << "fail-closed recovery must enforce strict token admission";
    } else {
      EXPECT_EQ(q.drops_by_reason(DropReason::kToken), 0u)
          << "fail-open recovery must not token-drop";
    }
  }
}

}  // namespace
}  // namespace floc
