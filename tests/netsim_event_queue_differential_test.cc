// Differential scheduler-testing harness: drives a heap-engine Simulator and
// a wheel-engine Simulator in lockstep through identical randomized op
// scripts and requires bit-identical observable behavior — same fire order,
// same per-event clock readings, same late/cancelled/processed counters,
// same final clock. This is the proof obligation for swapping the event
// engine under every scenario in the repo: any divergence in (time, seq)
// ordering, late-event clamping, lazy-cancel discard, calendar-horizon
// refill, or reentrant same-tick scheduling shows up as a log mismatch with
// the first divergent index.
//
// Volume contract (ISSUE 10): >= 32 seeds x 32'000 scripted
// schedule/cancel/clamp/run ops = > 1e6 randomized ops, before counting the
// reentrant children the scripted events spawn.

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "netsim/simulator.h"
#include "util/rng.h"

namespace floc {
namespace {

// Deterministic per-event hash used by callbacks to decide reentrant
// children. Both engines see the same event ids, so they derive the same
// children — unless their fire order diverges, which the logs then catch.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct Fire {
  std::uint64_t id;
  TimeSec at;
  bool operator==(const Fire& o) const { return id == o.id && at == o.at; }
};

// One simulator under test plus everything the script needs to drive it.
struct Lane {
  explicit Lane(SimEngine e) : sim(e) {}
  Simulator sim;
  std::vector<Fire> log;
  std::vector<Simulator::TimerHandle> handles;  // index-aligned across lanes
};

class Harness {
 public:
  Harness() : heap_(SimEngine::kHeap), wheel_(SimEngine::kWheel) {}

  // Schedule event `id` at absolute time `t` on both lanes. Depth-limited
  // reentrancy: when fired, an event may schedule children at deterministic
  // offsets derived from its id (including dt=0 same-time children, which
  // must fire FIFO after everything already queued at that instant).
  void schedule_at(TimeSec t, std::uint64_t id, int depth) {
    for (Lane* lane : lanes()) {
      lane->handles.push_back(
          lane->sim.schedule_at(t, make_event(lane, id, depth)));
    }
  }

  void schedule_in(TimeSec dt, std::uint64_t id, int depth) {
    // Lanes can only diverge if clocks diverged, which check_synced pins.
    for (Lane* lane : lanes()) {
      lane->handles.push_back(
          lane->sim.schedule_in(dt, make_event(lane, id, depth)));
    }
  }

  // Cancel the handle at `index` on both lanes; the outcomes must agree
  // (true iff still pending — identically stale otherwise).
  void cancel(std::size_t index) {
    const bool a = heap_.sim.cancel(heap_.handles[index]);
    const bool b = wheel_.sim.cancel(wheel_.handles[index]);
    ASSERT_EQ(a, b) << "cancel(" << index << ") diverged";
  }

  void run_until(TimeSec t) {
    heap_.sim.run_until(t);
    wheel_.sim.run_until(t);
    check_synced();
  }

  void run() {
    heap_.sim.run();
    wheel_.sim.run();
    check_synced();
  }

  void check_synced() {
    ASSERT_EQ(heap_.sim.now(), wheel_.sim.now());
    ASSERT_EQ(heap_.sim.events_processed(), wheel_.sim.events_processed());
    ASSERT_EQ(heap_.sim.late_events(), wheel_.sim.late_events());
    ASSERT_EQ(heap_.sim.cancelled_events(), wheel_.sim.cancelled_events());
    ASSERT_EQ(heap_.sim.pending_events(), wheel_.sim.pending_events());
    ASSERT_EQ(heap_.log.size(), wheel_.log.size());
    for (std::size_t i = 0; i < heap_.log.size(); ++i) {
      ASSERT_TRUE(heap_.log[i] == wheel_.log[i])
          << "first divergence at fire #" << i << ": heap=(id "
          << heap_.log[i].id << " @ " << heap_.log[i].at << ") wheel=(id "
          << wheel_.log[i].id << " @ " << wheel_.log[i].at << ")";
    }
  }

  Lane& heap() { return heap_; }
  Lane& wheel() { return wheel_; }
  std::size_t handle_count() const { return heap_.handles.size(); }

 private:
  std::array<Lane*, 2> lanes() { return {&heap_, &wheel_}; }

  Simulator::Callback make_event(Lane* lane, std::uint64_t id, int depth) {
    return Simulator::Callback([this, lane, id, depth] {
      lane->log.push_back(Fire{id, lane->sim.now()});
      if (depth <= 0) return;
      const std::uint64_t h = mix(id);
      // 0-2 children at id-derived offsets; h==... cases include dt=0
      // (same-instant FIFO) and sub-tick offsets (same wheel tick,
      // different double time).
      const int kids = static_cast<int>(h % 3);
      for (int k = 0; k < kids; ++k) {
        const std::uint64_t hk = mix(h + static_cast<std::uint64_t>(k));
        TimeSec dt;
        switch (hk % 4) {
          case 0: dt = 0.0; break;                              // same instant
          case 1: dt = static_cast<double>(hk % 997) * 1e-9; break;  // sub-tick
          case 2: dt = static_cast<double>(hk % 1009) * 1e-5; break;
          default: dt = static_cast<double>(hk % 97) * 0.5; break;
        }
        const std::uint64_t kid_id = id * 8 + 1 + static_cast<std::uint64_t>(k);
        lane->handles.push_back(lane->sim.schedule_in(
            dt, make_event(lane, kid_id, depth - 1)));
      }
    });
  }

  Lane heap_;
  Lane wheel_;
};

constexpr int kScriptOps = 32'000;
constexpr int kSeeds = 32;

class EngineDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineDifferential, LockstepFuzz) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  Harness h;
  std::uint64_t next_id = 1;
  int ops = 0;
  for (int op = 0; op < kScriptOps; ++op) {
    ++ops;
    const double roll = rng.uniform();
    const TimeSec now = h.heap().sim.now();
    if (roll < 0.45) {
      // Future schedule, mixed magnitudes: sub-tick collisions, in-wheel
      // level 0..5, beyond-horizon calendar parking, and absurd far-future.
      TimeSec dt;
      const double mag = rng.uniform();
      if (mag < 0.25) {
        dt = rng.uniform() * 1e-6;            // sub-tick / tick collisions
      } else if (mag < 0.30) {
        dt = 0.0;                             // same-instant FIFO
      } else if (mag < 0.70) {
        dt = rng.uniform() * 2.0;             // wheel levels 0-3
      } else if (mag < 0.90) {
        dt = rng.uniform() * 5e4;             // upper wheel levels
      } else if (mag < 0.98) {
        dt = 7e4 + rng.uniform() * 1e6;       // beyond the ~68719 s horizon
      } else {
        dt = 1e12 + rng.uniform() * 1e12;     // deep calendar
      }
      h.schedule_in(dt, next_id++ * 8, rng.uniform() < 0.3 ? 2 : 0);
    } else if (roll < 0.55) {
      // Past/clamp schedule: must fire at `now`, counted in late_events.
      h.schedule_at(now - rng.uniform() * (now + 1.0), next_id++ * 8, 0);
    } else if (roll < 0.75) {
      // Cancel a random handle: pending, fired, already-cancelled, or a
      // recycled node — outcomes must agree lane-to-lane.
      if (h.handle_count() > 0) {
        h.cancel(rng.uniform_int(h.handle_count()));
      }
    } else if (roll < 0.97) {
      // Bounded run slice. Often lands between queued ticks, leaving the
      // wheel clock peeked ahead of the Simulator clock — the regime that
      // forces behind-clock placement on later schedules.
      h.run_until(now + rng.uniform() * rng.uniform() * 20.0);
      if (::testing::Test::HasFatalFailure()) return;
    } else {
      // Long jump: drains most of the wheel, occasionally into calendar
      // refill territory.
      h.run_until(now + rng.uniform() * 2e5);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  h.run();
  if (::testing::Test::HasFatalFailure()) return;
  // Everything non-cancelled fired, identically, on both lanes.
  EXPECT_EQ(h.heap().sim.pending_events(), 0u);
  EXPECT_GT(h.heap().sim.late_events(), 0u);
  EXPECT_GT(h.heap().sim.cancelled_events(), 0u);
  EXPECT_GE(ops, kScriptOps);
  EXPECT_EQ(h.heap().log.size(), h.heap().sim.events_processed());
}

std::vector<std::uint64_t> seeds() {
  std::vector<std::uint64_t> s;
  for (std::uint64_t i = 1; i <= kSeeds; ++i) s.push_back(i * 7919);
  return s;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferential,
                         ::testing::ValuesIn(seeds()));

// Directed: a same-instant storm. N events at exactly t=1.0 scheduled in
// insertion order, interleaved with dt=0 reentrant children, must fire FIFO
// on both engines.
TEST(EngineDifferentialDirected, SameInstantFifo) {
  Harness h;
  for (std::uint64_t i = 0; i < 500; ++i) h.schedule_at(1.0, 8 * (i + 1), 1);
  h.run();
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_GE(h.heap().log.size(), 500u);
  // The 500 scripted events fire in insertion order before any children
  // (children of event k are scheduled only once k fires, hence after it).
  for (std::uint64_t i = 0; i + 1 < 500; ++i) {
    EXPECT_EQ(h.heap().log[i].at, 1.0);
  }
}

// Directed: cancelling from inside a callback, including the event that is
// next to fire in the same tick.
TEST(EngineDifferentialDirected, ReentrantCancel) {
  Simulator heap(SimEngine::kHeap);
  Simulator wheel(SimEngine::kWheel);
  for (Simulator* sim : {&heap, &wheel}) {
    std::vector<int> fired;
    Simulator::TimerHandle victim;  // filled after the canceller is queued
    sim->schedule_at(1.0, [&] {
      fired.push_back(1);
      EXPECT_TRUE(sim->cancel(victim));   // same-tick later event
      EXPECT_FALSE(sim->cancel(victim));  // idempotent
    });
    victim = sim->schedule_at(1.0, [&] { fired.push_back(2); });
    sim->schedule_at(1.0, [&] { fired.push_back(3); });
    sim->run();
    EXPECT_EQ(sim->events_processed(), 2u);
    EXPECT_EQ(sim->cancelled_events(), 1u);
    ASSERT_EQ(fired.size(), 2u) << to_string(sim->engine());
    EXPECT_EQ(fired[0], 1);
    EXPECT_EQ(fired[1], 3);
  }
}

// Directed: the wheel's peek-ahead regime. A bounded run_until whose limit
// falls short of the earliest event advances the wheel's internal clock but
// not the Simulator clock; schedules issued afterwards (legal: time >= now)
// carry ticks behind the wheel clock and must still fire in exact time
// order.
TEST(EngineDifferentialDirected, ScheduleBehindPeekedClock) {
  Harness h;
  h.schedule_at(10.0, 8, 0);
  h.run_until(5.0);  // peeks at the t=10 event; wheel clock advances
  if (::testing::Test::HasFatalFailure()) return;
  // Contract (unchanged from the seed engine): a bounded run leaves now()
  // untouched while events remain pending beyond the limit.
  EXPECT_EQ(h.heap().sim.now(), 0.0);
  h.schedule_at(6.0, 16, 0);   // behind the peeked wheel clock
  h.schedule_at(6.0, 24, 0);   // FIFO partner at the same instant
  h.schedule_at(5.0, 32, 0);   // earlier still, also behind the peek
  h.run();
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_EQ(h.heap().log.size(), 4u);
  EXPECT_EQ(h.heap().log[0].id, 32u);
  EXPECT_EQ(h.heap().log[1].id, 16u);
  EXPECT_EQ(h.heap().log[2].id, 24u);
  EXPECT_EQ(h.heap().log[3].id, 8u);
}

// Directed: calendar-horizon boundary. Events straddling the 2^36-tick wheel
// horizon (~68719 s) must interleave correctly with near events and with
// each other across calendar buckets.
TEST(EngineDifferentialDirected, CalendarHorizonInterleaving) {
  Harness h;
  const double horizon = 68719.476736;  // 2^36 ticks at 1 µs
  h.schedule_at(horizon * 3 + 0.5, 8, 0);
  h.schedule_at(1.0, 16, 0);
  h.schedule_at(horizon + 0.25, 24, 0);
  h.schedule_at(horizon - 0.25, 32, 0);
  h.schedule_at(horizon + 0.25, 40, 0);  // FIFO partner in a calendar bucket
  h.schedule_at(horizon * 2, 48, 0);
  h.run();
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_EQ(h.heap().log.size(), 6u);
  const std::uint64_t want[] = {16, 32, 24, 40, 48, 8};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(h.heap().log[i].id, want[i]) << "position " << i;
  }
}

}  // namespace
}  // namespace floc
