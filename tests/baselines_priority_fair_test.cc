#include "baselines/priority_fair.h"

#include <gtest/gtest.h>

#include <set>

namespace floc {
namespace {

PriorityFairConfig small_cfg() {
  PriorityFairConfig cfg;
  cfg.buffer_packets = 50;
  cfg.link_bandwidth = mbps(10);
  cfg.rate_interval = 0.1;
  return cfg;
}

Packet pkt(FlowId f) {
  Packet p;
  p.flow = f;
  return p;
}

TEST(PriorityFairQueue, LegitServicedBeforeAttackExcess) {
  std::set<FlowId> legit{1};
  PriorityFairQueue q(small_cfg(),
                      [&legit](FlowId f) { return legit.count(f) != 0; });
  double t = 0.0;
  // Warm one interval so flows_seen_ reflects both flows.
  for (int i = 0; i < 200; ++i) {
    t = i * 0.001;
    q.enqueue(pkt(1), t);
    q.enqueue(pkt(2), t);
    q.dequeue(t);
    q.dequeue(t);
  }
  // Flood with attack packets beyond the flow's fair share (fair is ~41
  // packets per 0.1 s interval at 10 Mbps / 2 flows), then one legit packet:
  // it must be serviced ahead of the attack flow's out-of-profile backlog.
  while (!q.empty()) q.dequeue(t);
  const int kFlood = 45;
  for (int i = 0; i < kFlood; ++i) q.enqueue(pkt(2), t + 0.001);
  q.enqueue(pkt(1), t + 0.002);
  int position = -1;
  for (int i = 0; i <= kFlood; ++i) {
    auto out = q.dequeue(t + 0.003);
    ASSERT_TRUE(out.has_value());
    if (out->flow == 1) {
      position = i;
      break;
    }
  }
  ASSERT_GE(position, 0);
  EXPECT_LT(position, kFlood);  // ahead of the low-priority tail
}

TEST(PriorityFairQueue, HighPriorityEvictsLowOnOverflow) {
  std::set<FlowId> legit{1};
  PriorityFairQueue q(small_cfg(),
                      [&legit](FlowId f) { return legit.count(f) != 0; });
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {  // teach it the flow population
    t = i * 0.001;
    q.enqueue(pkt(1), t);
    q.enqueue(pkt(2), t);
    q.dequeue(t);
    q.dequeue(t);
  }
  while (!q.empty()) q.dequeue(t);
  // Fill the buffer with attack traffic (some of it out-of-profile, hence
  // low priority), then offer legit packets: while low-priority packets
  // remain, each legit arrival evicts one instead of being dropped.
  for (int i = 0; i < 60; ++i) q.enqueue(pkt(2), t + 0.001);
  ASSERT_EQ(q.packet_count(), 50u);
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (q.enqueue(pkt(1), t + 0.002)) ++admitted;
  }
  EXPECT_GE(admitted, 5);
  EXPECT_EQ(q.packet_count(), 50u);  // buffer never exceeded
}

TEST(PriorityFairQueue, EmptyDequeue) {
  PriorityFairQueue q(small_cfg(), [](FlowId) { return true; });
  EXPECT_FALSE(q.dequeue(0.0).has_value());
}

TEST(PriorityFairQueue, CountsBytes) {
  PriorityFairQueue q(small_cfg(), [](FlowId) { return true; });
  q.enqueue(pkt(1), 0.0);
  EXPECT_EQ(q.byte_count(), 1500u);
  q.dequeue(0.0);
  EXPECT_EQ(q.byte_count(), 0u);
}

}  // namespace
}  // namespace floc
