// Scenario-level behaviour of the timed attacks (Section II evasion
// strategies) under FLoc: time-averaged strength equalized to a steady CBR,
// the defense must keep legitimate-path bandwidth in the same band.
#include <gtest/gtest.h>

#include "topology/tree_scenario.h"

namespace floc {
namespace {

TreeScenarioConfig timed_cfg(AttackType attack) {
  TreeScenarioConfig cfg;
  cfg.tree_degree = 3;
  cfg.tree_height = 2;
  cfg.legit_per_leaf = 4;
  cfg.attack_leaf_count = 3;
  cfg.attack_per_leaf = 6;
  cfg.target_link = mbps(20);
  cfg.internal_link = mbps(60);
  cfg.scheme = DefenseScheme::kFloc;
  cfg.attack = attack;
  cfg.duration = 40.0;
  cfg.attack_start = 3.0;
  cfg.measure_start = 10.0;
  cfg.measure_end = 40.0;
  cfg.seed = 61;
  switch (attack) {
    case AttackType::kOnOff:
      cfg.onoff_on = 3.0;
      cfg.onoff_off = 6.0;
      cfg.attack_rate = mbps(3.0);  // avg 1 Mbps
      break;
    case AttackType::kRolling:
      cfg.rolling_slot = 4.0;
      cfg.attack_rate = mbps(3.0);  // one of 3 groups active: avg 1 Mbps
      break;
    default:
      cfg.attack_rate = mbps(1.0);
      break;
  }
  return cfg;
}

TEST(TimedAttacks, RegistersCorrectFlowCounts) {
  TreeScenario onoff(timed_cfg(AttackType::kOnOff));
  // 9 leaves * 4 legit + 3 attack leaves * 6 bots = 54.
  EXPECT_EQ(onoff.monitor().flow_count(), 54u);
  TreeScenario rolling(timed_cfg(AttackType::kRolling));
  EXPECT_EQ(rolling.monitor().flow_count(), 54u);
}

TEST(TimedAttacks, OnOffConfinedComparablyToCbr) {
  TreeScenario cbr(timed_cfg(AttackType::kCbr));
  cbr.run();
  TreeScenario onoff(timed_cfg(AttackType::kOnOff));
  onoff.run();
  const double link = cbr.scaled_target_bw();
  // The on-off strategy costs some legit bandwidth (detection re-latches
  // each ON phase) but stays in the same band as steady CBR — the attacker
  // cannot turn phase changes into link takeover.
  EXPECT_GT(onoff.class_bandwidth().legit_legit_bps, 0.5 * link);
  EXPECT_NEAR(onoff.class_bandwidth().legit_legit_bps,
              cbr.class_bandwidth().legit_legit_bps, 0.35 * link);
  EXPECT_LT(onoff.class_bandwidth().attack_bps, 0.4 * link);
}

TEST(TimedAttacks, RollingConfined) {
  TreeScenario rolling(timed_cfg(AttackType::kRolling));
  rolling.run();
  const double link = rolling.scaled_target_bw();
  EXPECT_GT(rolling.class_bandwidth().legit_legit_bps, 0.45 * link);
  EXPECT_LT(rolling.class_bandwidth().attack_bps, 0.45 * link);
}

TEST(TimedAttacks, AttackPacketSizeIrrelevant) {
  TreeScenarioConfig big = timed_cfg(AttackType::kCbr);
  TreeScenarioConfig small = timed_cfg(AttackType::kCbr);
  small.attack_packet_bytes = 700;
  TreeScenario sb(big), ss(small);
  sb.run();
  ss.run();
  EXPECT_NEAR(ss.class_bandwidth().legit_legit_bps,
              sb.class_bandwidth().legit_legit_bps,
              0.15 * sb.scaled_target_bw());
}

}  // namespace
}  // namespace floc
