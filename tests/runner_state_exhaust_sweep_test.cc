// State-exhaustion sweep determinism: bounded tables, eviction, overload
// mode, and the churn attacker itself all run on pool threads through the
// ScenarioRunner, and every byte of output — journal dumps, goodput totals,
// eviction counters, alert firings — must be identical at --jobs 1 and
// --jobs N. Eviction victim selection is a pure function of table contents
// (no unordered_map iteration order, no shared RNG), so any divergence here
// is a real determinism bug, not scheduling noise.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "runner/scenario_runner.h"
#include "telemetry/alerts.h"
#include "telemetry/telemetry.h"
#include "topology/tree_scenario.h"
#include "transport/flow_monitor.h"
#include "util/seed.h"
#include "util/siphash.h"

namespace floc {
namespace {

constexpr std::uint64_t kMaster = 20100617;
constexpr SipKey kHashKey{0x464C6F6353544154ULL, 0x4558484155535421ULL};

std::uint64_t hash_bytes(const std::string& s) {
  return siphash24(kHashKey,
                   std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(s.data()),
                       s.size()));
}

struct CaseResult {
  std::uint64_t seed = 0;
  std::uint64_t journal_hash = 0;
  std::uint64_t alerts_hash = 0;
  std::uint64_t evictions = 0;
  std::uint64_t overload_entries = 0;
  double legit_bytes = 0.0;
};

// One churn case per eviction policy: the sweep exercises every victim-
// selection path under a live identity-churn attack with overload armed.
CaseResult run_case(EvictionPolicy policy, std::uint64_t seed) {
  TreeScenarioConfig cfg;
  cfg.scale = 0.05;
  cfg.duration = 12.0;
  cfg.measure_start = 6.0;
  cfg.measure_end = 12.0;
  cfg.scheme = DefenseScheme::kFloc;
  cfg.attack = AttackType::kStateExhaust;
  cfg.state_churn_per_sec = 200.0;
  cfg.state_identity_pool = 256;
  cfg.seed = seed;
  cfg.floc.origin_budget.capacity = 96;
  cfg.floc.origin_budget.policy = policy;
  cfg.floc.flow_budget.capacity = 24;
  cfg.floc.offense_budget.capacity = 64;
  cfg.floc.offender_budget.capacity = 64;
  cfg.floc.enable_overload_mode = true;
  cfg.floc.backoff_release = true;
  cfg.floc.enable_blacklist = true;
  TreeScenario s(cfg);

  telemetry::Telemetry tel;
  s.floc_queue()->attach_telemetry(&tel);

  // Storm alerting rides the same deterministic clock: sample on a fixed
  // cadence via the simulator so firings are --jobs-invariant too.
  telemetry::AlertEngine alerts(&tel.registry);
  telemetry::AlertRule evict_storm;
  evict_storm.name = "state_evict_storm";
  evict_storm.metric = "floc.state.evictions";
  evict_storm.short_window = 2.0;
  evict_storm.long_window = 8.0;
  evict_storm.min_rate = 5.0;
  alerts.add_rule(evict_storm);
  for (double t = 0.5; t < cfg.duration; t += 0.5) {
    s.sim().schedule_at(t, [&alerts, &s] { alerts.sample(s.sim().now()); });
  }

  s.run();

  CaseResult r;
  r.seed = seed;
  r.journal_hash = hash_bytes(tel.journal.dump());
  r.alerts_hash = hash_bytes(alerts.to_json());
  r.evictions = s.floc_queue()->state_evictions();
  r.overload_entries = s.floc_queue()->overload_entries();
  r.legit_bytes = s.monitor().class_cumulative_bytes(
      [](const FlowLabel& l) { return l.cls == FlowClass::kLegitimate; });
  return r;
}

std::vector<CaseResult> sweep(int jobs) {
  return runner::run_indexed<CaseResult>(
      jobs, kEvictionPolicyCount, [&](std::size_t i) {
        return run_case(static_cast<EvictionPolicy>(i),
                        derive_seed(kMaster, i, kSeedStreamTreeScenario));
      });
}

TEST(StateExhaustSweep, BoundedParallelSweepMatchesSerial) {
  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].seed, parallel[i].seed) << "case " << i;
    EXPECT_EQ(serial[i].journal_hash, parallel[i].journal_hash)
        << "case " << i << ": bounded-state journal diverged across --jobs";
    EXPECT_EQ(serial[i].alerts_hash, parallel[i].alerts_hash) << "case " << i;
    EXPECT_EQ(serial[i].evictions, parallel[i].evictions) << "case " << i;
    EXPECT_EQ(serial[i].overload_entries, parallel[i].overload_entries)
        << "case " << i;
    EXPECT_EQ(serial[i].legit_bytes, parallel[i].legit_bytes) << "case " << i;
  }
  // The shrunk cases genuinely exercise the bounded-state machinery.
  for (const auto& r : serial) {
    EXPECT_GT(r.evictions, 0u) << "churn never hit a budget";
    EXPECT_GT(r.legit_bytes, 0.0);
  }
}

TEST(StateExhaustSweep, RepeatedParallelSweepsReproduce) {
  const auto first = sweep(4);
  const auto second = sweep(4);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].journal_hash, second[i].journal_hash) << "case " << i;
    EXPECT_EQ(first[i].alerts_hash, second[i].alerts_hash) << "case " << i;
    EXPECT_EQ(first[i].legit_bytes, second[i].legit_bytes) << "case " << i;
  }
}

}  // namespace
}  // namespace floc
