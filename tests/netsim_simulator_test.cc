#include "netsim/simulator.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace floc {
namespace {

// The core contract tests run against BOTH engines: the heap reference and
// the shipping timer wheel must be observationally identical.
class SimulatorContract : public ::testing::TestWithParam<SimEngine> {
 protected:
  Simulator sim{GetParam()};
};

TEST_P(SimulatorContract, RunsEventsInTimeOrder) {
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST_P(SimulatorContract, FifoAmongSameTimeEvents) {
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST_P(SimulatorContract, ScheduleInIsRelative) {
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST_P(SimulatorContract, RunUntilStopsAtBoundary) {
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(static_cast<double>(i), [&] { ++count; });
  }
  sim.run_until(5.0);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run_until(10.0);
  EXPECT_EQ(count, 10);
}

TEST_P(SimulatorContract, RunUntilAdvancesClockWhenIdle) {
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST_P(SimulatorContract, PastEventsClampToNowAndAreCounted) {
  std::vector<double> fired_at;
  sim.schedule_at(5.0, [&] {
    // A fault handler computing an absolute time from stale state may land
    // in the past; it must run "immediately" instead of corrupting order.
    sim.schedule_at(1.0, [&] { fired_at.push_back(sim.now()); });
    sim.schedule_at(6.0, [&] { fired_at.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(fired_at.size(), 2u);
  EXPECT_DOUBLE_EQ(fired_at[0], 5.0);
  EXPECT_DOUBLE_EQ(fired_at[1], 6.0);
  EXPECT_EQ(sim.late_events(), 1u);
}

TEST_P(SimulatorContract, OnTimeEventsAreNotLate) {
  sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_EQ(sim.late_events(), 0u);
}

TEST_P(SimulatorContract, EventsCanCascade) {
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_in(0.001, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.events_processed(), 100u);
}

TEST_P(SimulatorContract, MoveOnlyCapturesAreFirstClass) {
  // The seed engine's std::function required copyable callables, forcing
  // shared_ptr workarounds for owned state. InlineFunction is move-only by
  // design: a unique_ptr capture schedules directly.
  auto owned = std::make_unique<int>(7);
  int got = 0;
  sim.schedule_at(1.0, [&got, p = std::move(owned)] { got = *p; });
  sim.run();
  EXPECT_EQ(got, 7);
}

// Counts copies/moves of its capture state through the scheduler. The seed
// engine copied the std::function out of priority_queue::top() on EVERY
// dispatch (top() is const, so pop-by-move was impossible); the node-based
// engines must never copy — one move into the event node at schedule time,
// one move out at dispatch, zero copies.
struct CopyCounter {
  int* copies;
  int* moves;
  CopyCounter(int* c, int* m) : copies(c), moves(m) {}
  CopyCounter(const CopyCounter& o) : copies(o.copies), moves(o.moves) {
    ++*copies;
  }
  CopyCounter(CopyCounter&& o) noexcept : copies(o.copies), moves(o.moves) {
    ++*moves;
  }
  void operator()() const {}
};

TEST_P(SimulatorContract, DispatchNeverCopiesTheCallback) {
  int copies = 0;
  int moves = 0;
  sim.schedule_at(1.0, CopyCounter(&copies, &moves));
  sim.schedule_at(2.0, CopyCounter(&copies, &moves));
  sim.run();
  EXPECT_EQ(sim.events_processed(), 2u);
  EXPECT_EQ(copies, 0) << "dispatch copied a callback (seed-engine "
                          "priority_queue::top() regression)";
  // Exactly two moves per event: into the arena node, out at dispatch.
  EXPECT_EQ(moves, 2 * 2);
}

TEST_P(SimulatorContract, CancelPreventsFiringAndIsCounted) {
  int fired = 0;
  auto h1 = sim.schedule_at(1.0, [&] { ++fired; });
  auto h2 = sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(static_cast<bool>(h1));
  EXPECT_EQ(sim.pending_events(), 2u);
  EXPECT_TRUE(sim.cancel(h1));
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_FALSE(sim.cancel(h1)) << "double cancel must be a no-op";
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.events_processed(), 1u);
  EXPECT_EQ(sim.cancelled_events(), 1u);
  EXPECT_FALSE(sim.cancel(h2)) << "handle to a fired event is stale";
  // A cancelled event neither advances the clock to its own time nor runs.
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST_P(SimulatorContract, StaleHandleToRecycledNodeIsRejected) {
  int fired = 0;
  auto h = sim.schedule_at(1.0, [&] { ++fired; });
  sim.run();  // fires; the node returns to the arena freelist
  // The next schedule typically reuses the same node; the old handle's
  // generation no longer matches and must not cancel the new event.
  auto h2 = sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_FALSE(sim.cancel(h));
  EXPECT_TRUE(static_cast<bool>(h2));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST_P(SimulatorContract, PendingCallbacksReleaseOwnedStateOnDestruction) {
  // run_until early exit leaves events queued; destroying the Simulator
  // must destroy their captured state (the arena's chunks own the nodes).
  auto tracked = std::make_shared<int>(1);
  ASSERT_EQ(tracked.use_count(), 1);
  {
    Simulator inner(GetParam());
    inner.schedule_at(100.0, [keep = tracked] { (void)*keep; });
    inner.schedule_at(200.0, [keep = tracked] { (void)*keep; });
    inner.run_until(1.0);  // early exit: both events still pending
    EXPECT_EQ(tracked.use_count(), 3);
  }
  EXPECT_EQ(tracked.use_count(), 1) << "queued callback leaked its capture";
}

TEST_P(SimulatorContract, CancelledCallbackStateIsReleasedWhenDiscarded) {
  auto tracked = std::make_shared<int>(1);
  auto h = sim.schedule_at(1.0, [keep = tracked] { (void)*keep; });
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_EQ(tracked.use_count(), 2) << "lazy cancel keeps the node queued";
  sim.run_until(2.0);  // pops and discards the cancelled node
  EXPECT_EQ(tracked.use_count(), 1);
  EXPECT_EQ(sim.events_processed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Engines, SimulatorContract,
                         ::testing::Values(SimEngine::kHeap,
                                           SimEngine::kWheel),
                         [](const ::testing::TestParamInfo<SimEngine>& info) {
                           return to_string(info.param);
                         });

TEST(SimEngineSelection, DefaultIsWheelAndEnvAndSetterOverride) {
  // Note: FLOC_SIM_ENGINE is consulted only when no programmatic default is
  // set; tests restore the programmatic default to wheel when done.
  EXPECT_EQ(std::string(to_string(SimEngine::kHeap)), "heap");
  EXPECT_EQ(std::string(to_string(SimEngine::kWheel)), "wheel");
  Simulator def;
  EXPECT_EQ(def.engine(), Simulator::default_engine());
  Simulator::set_default_engine(SimEngine::kHeap);
  EXPECT_EQ(Simulator::default_engine(), SimEngine::kHeap);
  Simulator heap_default;
  EXPECT_EQ(heap_default.engine(), SimEngine::kHeap);
  Simulator::set_default_engine(SimEngine::kWheel);
  EXPECT_EQ(Simulator::default_engine(), SimEngine::kWheel);
}

}  // namespace
}  // namespace floc
