#include "netsim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace floc {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, FifoAmongSameTimeEvents) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(static_cast<double>(i), [&] { ++count; });
  }
  sim.run_until(5.0);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run_until(10.0);
  EXPECT_EQ(count, 10);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, PastEventsClampToNowAndAreCounted) {
  Simulator sim;
  std::vector<double> fired_at;
  sim.schedule_at(5.0, [&] {
    // A fault handler computing an absolute time from stale state may land
    // in the past; it must run "immediately" instead of corrupting order.
    sim.schedule_at(1.0, [&] { fired_at.push_back(sim.now()); });
    sim.schedule_at(6.0, [&] { fired_at.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(fired_at.size(), 2u);
  EXPECT_DOUBLE_EQ(fired_at[0], 5.0);
  EXPECT_DOUBLE_EQ(fired_at[1], 6.0);
  EXPECT_EQ(sim.late_events(), 1u);
}

TEST(Simulator, OnTimeEventsAreNotLate) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_EQ(sim.late_events(), 0u);
}

TEST(Simulator, EventsCanCascade) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_in(0.001, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.events_processed(), 100u);
}

}  // namespace
}  // namespace floc
