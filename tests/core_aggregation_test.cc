#include "core/aggregation.h"

#include <gtest/gtest.h>

#include <set>

namespace floc {
namespace {

int distinct_aggregates(const AggregationPlan& plan) {
  std::set<std::uint64_t> keys;
  for (const auto& [k, e] : plan.mapping) keys.insert(e.aggregate.key());
  return static_cast<int>(keys.size());
}

TEST(Aggregator, IdentityWhenUnderBudget) {
  AggregationConfig cfg;
  cfg.s_max = 100;
  cfg.aggregate_legit = false;
  Aggregator agg(cfg);
  const auto plan = agg.plan({{PathId::of({1, 2}), 0.1, 10.0},
                              {PathId::of({1, 3}), 0.9, 10.0}});
  EXPECT_EQ(plan.identifier_count, 2);
  EXPECT_EQ(plan.attack_aggregations, 0);
  EXPECT_EQ(plan.entry_for(PathId::of({1, 2})).aggregate, PathId::of({1, 2}));
}

TEST(Aggregator, AttackPathsAggregatedToMeetBudget) {
  AggregationConfig cfg;
  cfg.s_max = 3;  // 2 legit + 4 attack -> attack must shrink to 1
  cfg.e_th = 0.5;
  cfg.aggregate_legit = false;
  Aggregator agg(cfg);
  const auto plan = agg.plan({
      {PathId::of({1, 10}), 0.9, 10.0},  // legit
      {PathId::of({2, 11}), 0.95, 10.0}, // legit
      {PathId::of({3, 20}), 0.1, 50.0},  // attack, shared prefix {3}
      {PathId::of({3, 21}), 0.2, 50.0},
      {PathId::of({3, 22}), 0.15, 50.0},
      {PathId::of({3, 23}), 0.1, 50.0},
  });
  EXPECT_LE(distinct_aggregates(plan), 3);
  // Legit paths untouched.
  EXPECT_EQ(plan.entry_for(PathId::of({1, 10})).aggregate, PathId::of({1, 10}));
  // Attack paths collapsed onto the shared {3} prefix with ONE share.
  const auto& e = plan.entry_for(PathId::of({3, 20}));
  EXPECT_TRUE(e.is_attack);
  EXPECT_EQ(e.aggregate, PathId::of({3}));
  EXPECT_DOUBLE_EQ(e.share_weight, 1.0);
  EXPECT_GE(plan.attack_aggregations, 1);
}

TEST(Aggregator, GreedyPicksLowestConformanceSubtree) {
  AggregationConfig cfg;
  cfg.s_max = 3;  // 4 attack paths, 0 legit: need reduction 1
  cfg.e_th = 0.5;
  cfg.aggregate_legit = false;
  Aggregator agg(cfg);
  const auto plan = agg.plan({
      {PathId::of({1, 10}), 0.40, 10.0},  // subtree {1}: mean E = 0.40
      {PathId::of({1, 11}), 0.40, 10.0},
      {PathId::of({2, 20}), 0.05, 10.0},  // subtree {2}: mean E = 0.05
      {PathId::of({2, 21}), 0.05, 10.0},
  });
  // The {2} subtree (lowest mean conformance) must be the one aggregated.
  EXPECT_EQ(plan.entry_for(PathId::of({2, 20})).aggregate, PathId::of({2}));
  EXPECT_EQ(plan.entry_for(PathId::of({1, 10})).aggregate, PathId::of({1, 10}));
}

TEST(Aggregator, ReplacementPrefersSingleCoveringNode) {
  // Needing a large reduction, one ancestor aggregation covering everything
  // should replace multiple sibling aggregations when cheaper in total.
  AggregationConfig cfg;
  cfg.s_max = 1;
  cfg.e_th = 0.5;
  cfg.aggregate_legit = false;
  Aggregator agg(cfg);
  const auto plan = agg.plan({
      {PathId::of({9, 1, 10}), 0.1, 1.0},
      {PathId::of({9, 1, 11}), 0.1, 1.0},
      {PathId::of({9, 2, 20}), 0.2, 1.0},
      {PathId::of({9, 2, 21}), 0.2, 1.0},
  });
  EXPECT_EQ(distinct_aggregates(plan), 1);
  EXPECT_EQ(plan.entry_for(PathId::of({9, 1, 10})).aggregate, PathId::of({9}));
}

TEST(Aggregator, LegitAggregationEqualizesPerFlowBandwidth) {
  // Two sibling legit domains with 15 and 30 sources (Fig. 9 setup):
  // cost is 0 (equal E) and the bandwidth guard passes (factor 1.33 < 1.5),
  // so they merge with combined shares.
  AggregationConfig cfg;
  cfg.s_max = 100;
  cfg.legit_max_increase = 0.5;
  Aggregator agg(cfg);
  const auto plan = agg.plan({
      {PathId::of({1, 2}), 1.0, 15.0},
      {PathId::of({1, 3}), 1.0, 30.0},
  });
  const auto& e = plan.entry_for(PathId::of({1, 2}));
  EXPECT_EQ(e.aggregate, PathId::of({1}));
  EXPECT_DOUBLE_EQ(e.share_weight, 2.0);  // keeps both paths' shares
  EXPECT_FALSE(e.is_attack);
  EXPECT_EQ(plan.legit_aggregations, 1);
}

TEST(Aggregator, CovertGuardBlocksWideFlowImbalance) {
  // A "legitimate-looking" covert path with 600 flows must not merge with a
  // 30-flow path: its per-flow gain would be 2*600/630 = 1.9 > 1.5.
  AggregationConfig cfg;
  cfg.legit_max_increase = 0.5;
  Aggregator agg(cfg);
  const auto plan = agg.plan({
      {PathId::of({1, 2}), 1.0, 30.0},
      {PathId::of({1, 3}), 1.0, 600.0},
  });
  EXPECT_EQ(plan.legit_aggregations, 0);
  EXPECT_EQ(plan.entry_for(PathId::of({1, 3})).aggregate, PathId::of({1, 3}));
}

TEST(Aggregator, LegitAggregationSkippedWhenCostPositive) {
  // Low-conformance sibling with more flows: merging lowers flow-weighted
  // conformance (Eq. IV.8 positive cost) -> no aggregation.
  AggregationConfig cfg;
  cfg.e_th = 0.5;
  Aggregator agg(cfg);
  const auto plan = agg.plan({
      {PathId::of({1, 2}), 1.0, 10.0},
      {PathId::of({1, 3}), 0.6, 90.0},  // still above e_th (legit tree)
  });
  EXPECT_EQ(plan.legit_aggregations, 0);
}

TEST(Aggregator, EveryInputPathAppearsInMapping) {
  AggregationConfig cfg;
  cfg.s_max = 2;
  Aggregator agg(cfg);
  std::vector<PathSnapshot> snaps;
  for (AsNumber i = 0; i < 20; ++i) {
    snaps.push_back({PathId::of({i % 4 + 1, 100 + i}), i < 10 ? 0.1 : 0.9,
                     5.0});
  }
  const auto plan = agg.plan(snaps);
  for (const auto& s : snaps) {
    EXPECT_EQ(plan.mapping.count(s.path.key()), 1u) << s.path.to_string();
  }
}

TEST(Aggregator, RootFallbackWhenNoSharedPrefix) {
  // Attack paths with disjoint prefixes can only aggregate at the root
  // (empty prefix), which still satisfies the budget.
  AggregationConfig cfg;
  cfg.s_max = 1;
  cfg.e_th = 0.5;
  cfg.aggregate_legit = false;
  Aggregator agg(cfg);
  const auto plan = agg.plan({
      {PathId::of({1, 10}), 0.1, 1.0},
      {PathId::of({2, 20}), 0.1, 1.0},
      {PathId::of({3, 30}), 0.1, 1.0},
  });
  EXPECT_EQ(distinct_aggregates(plan), 1);
  EXPECT_EQ(plan.entry_for(PathId::of({1, 10})).aggregate.length(), 0);
}

TEST(Aggregator, AttackDisabledLeavesAttackPathsAlone) {
  AggregationConfig cfg;
  cfg.s_max = 1;
  cfg.aggregate_attack = false;
  cfg.aggregate_legit = false;
  Aggregator agg(cfg);
  const auto plan = agg.plan({
      {PathId::of({1, 10}), 0.1, 1.0},
      {PathId::of({1, 11}), 0.1, 1.0},
  });
  EXPECT_EQ(distinct_aggregates(plan), 2);
}

}  // namespace
}  // namespace floc
